module hnp

go 1.22
