// Package hnp (Hierarchical Network Partitions) is a distributed
// stream-query optimization library reproducing "Optimizing Multiple
// Distributed Stream Queries Using Hierarchical Network Partitions"
// (Seshadri, Kumar, Cooper, Liu — IPDPS 2007).
//
// It jointly chooses query plans (bushy join orders) and deployments
// (operator-to-node assignments) for continuous select-project-join
// queries over distributed stream sources, using a virtual clustering
// hierarchy of the network to keep the search tractable and stream
// advertisements to reuse operators across queries.
//
// The essential workflow:
//
//	g := hnp.TransitStubNetwork(128, 1)       // or build your own Graph
//	sys, _ := hnp.NewSystem(g, 32, 1)          // hierarchy with max_cs=32
//	flights := sys.AddStream("FLIGHTS", 40, 17)
//	weather := sys.AddStream("WEATHER", 25, 93)
//	sys.SetSelectivity(flights, weather, 0.01)
//	dep, _ := sys.Deploy([]hnp.StreamID{flights, weather}, 5, hnp.AlgoTopDown)
//	fmt.Println(dep.Plan, dep.Cost)
//
// Deployed operators are advertised automatically, so later Deploy calls
// reuse them whenever that is cheaper than duplicating work.
package hnp

import (
	"fmt"
	"math/rand"
	"sync"

	"hnp/internal/ads"
	"hnp/internal/baseline"
	"hnp/internal/core"
	"hnp/internal/cql"
	"hnp/internal/hierarchy"
	"hnp/internal/load"
	"hnp/internal/netgraph"
	"hnp/internal/obs"
	"hnp/internal/query"
	"hnp/internal/query/rewrite"
)

// Re-exported substrate types. Aliases keep one set of method sets and let
// the examples and external tooling use the library without touching
// internal packages directly.
type (
	// Graph is the physical network: nodes joined by links with per-byte
	// costs and propagation delays.
	Graph = netgraph.Graph
	// NodeID identifies a physical network node.
	NodeID = netgraph.NodeID
	// StreamID identifies a registered base stream.
	StreamID = query.StreamID
	// Query is a continuous SPJ query over base streams.
	Query = query.Query
	// PlanNode is a deployed operator tree.
	PlanNode = query.PlanNode
	// Result carries a plan, its cost, and search-space accounting.
	Result = core.Result
	// Hierarchy is the virtual clustering hierarchy of network partitions.
	Hierarchy = hierarchy.Hierarchy
	// Registry is the stream-advertisement registry enabling reuse.
	Registry = ads.Registry
	// Range is a predicate interval over an attribute's [0,1] domain.
	Range = query.Range
	// Pred constrains one attribute of one stream.
	Pred = query.Pred
	// PredSet is a conjunction of predicates; deployed operators computed
	// under weaker predicates are reusable by stricter queries through
	// residual filters (query containment).
	PredSet = query.PredSet
	// AggSpec describes a windowed aggregation over a query's result.
	AggSpec = query.AggSpec
	// Attr is one attribute of a stream schema: a name and its byte width.
	Attr = query.Attr
	// Schema is the ordered attribute list of a base stream; declaring one
	// makes the planners price every edge at rate×width and lets the
	// rewrite pipeline prune unreferenced columns.
	Schema = query.Schema
	// RewriteOutcome is the audit of the logical optimizer pipeline's run
	// over one query: rules applied, per-rule trace, planned bytes
	// before/after pushdown.
	RewriteOutcome = rewrite.Outcome
	// Snapshot is a point-in-time copy of a system's telemetry (see
	// System.Snapshot); counters, gauges and histogram summaries detached
	// from the live metrics.
	Snapshot = obs.Snapshot
)

// EnableTelemetry turns on metric recording process-wide. Telemetry is off
// by default; when off, every instrumentation point reduces to one atomic
// load (see the ≤2% bound asserted by BenchmarkDeploy).
func EnableTelemetry() { obs.Enable() }

// DisableTelemetry turns metric recording back off. Recorded values are
// retained, not reset.
func DisableTelemetry() { obs.Disable() }

// MustPredSet builds a normalized predicate set, panicking on
// contradictions — convenient for literals.
func MustPredSet(preds ...Pred) PredSet { return query.MustPredSet(preds...) }

// Metric selects what the optimizers minimize.
type Metric = netgraph.Metric

const (
	// MetricCost optimizes communication cost (rate × per-byte link cost),
	// the paper's primary objective.
	MetricCost = netgraph.MetricCost
	// MetricDelay optimizes response time: the hierarchy clusters by
	// inter-node delay and plans minimize rate-weighted path latency, as
	// the paper prescribes for response-time objectives ("if the metric is
	// response-time, we cluster based on inter-node delays").
	MetricDelay = netgraph.MetricDelay
)

// NewGraph returns an empty network with n nodes; add links with AddLink.
func NewGraph(n int) *Graph { return netgraph.New(n) }

// TransitStubNetwork generates the paper's standard Internet-style
// topology with exactly n nodes (transit backbone plus cheap stub
// domains), deterministically from the seed.
func TransitStubNetwork(n int, seed int64) *Graph {
	return netgraph.MustTransitStub(n, rand.New(rand.NewSource(seed)))
}

// Algorithm selects the optimizer Deploy runs.
type Algorithm int

const (
	// AlgoTopDown is the paper's Top-Down algorithm: bounded
	// sub-optimality, plans recursively down the hierarchy.
	AlgoTopDown Algorithm = iota
	// AlgoBottomUp is the paper's Bottom-Up algorithm: smaller search
	// space and faster deployments, weaker guarantees.
	AlgoBottomUp
	// AlgoOptimal is the exhaustive joint optimum (DP over the whole
	// network) — exact but unscalable; useful as a baseline.
	AlgoOptimal
	// AlgoPlanThenDeploy is the conventional phased baseline:
	// selectivity-only planning followed by optimal placement.
	AlgoPlanThenDeploy
)

func (a Algorithm) String() string {
	switch a {
	case AlgoTopDown:
		return "top-down"
	case AlgoBottomUp:
		return "bottom-up"
	case AlgoOptimal:
		return "optimal"
	case AlgoPlanThenDeploy:
		return "plan-then-deploy"
	}
	return "unknown"
}

// System ties a network, its clustering hierarchy, a stream catalog and
// an advertisement registry into one optimization endpoint.
//
// Concurrency contract: Plan, PlanWhere, PlanCQL, Deploy, DeployWhere,
// DeployCQL, DeployAggregate, Refresh, SetLoadPenalty, AddLoad and
// NodeLoad are safe to call from multiple goroutines. Planning runs under
// a shared read lock, so any number of Plan/Deploy calls proceed in
// parallel; Refresh (and SetLoadPenalty) take the write lock and briefly
// exclude planners while the path snapshot and hierarchy are swapped. The
// advertisement registry and the load tracker are internally locked, so
// concurrent deployments interleave safely — though which deployment sees
// which earlier advertisement then depends on scheduling. Catalog
// mutation (AddStream, SetSelectivity) is setup-phase API: do not call it
// concurrently with planning. Mutating Graph directly must likewise be
// externally serialized with planning, followed by Refresh.
type System struct {
	Graph     *Graph
	Paths     *netgraph.Paths
	Hierarchy *Hierarchy
	Catalog   *query.Catalog
	Registry  *Registry

	// Obs is the system's private telemetry registry: every component of
	// this system records there (metric catalog in README), so concurrent
	// systems — e.g. parallel experiments — never share counters. Recording
	// only happens while EnableTelemetry is in effect.
	Obs *obs.Registry

	metric Metric

	// mu guards the Paths/Hierarchy snapshot swap (Refresh) and loadAlpha
	// against in-flight planning, which holds it in read mode.
	mu sync.RWMutex
	// qmu guards query ID allocation.
	qmu       sync.Mutex
	nextQuery int

	loadAlpha float64
	tracker   *load.Tracker
}

// allocQueryID hands out a unique query ID. Every planned query gets its
// own ID — including what-if plans that are never deployed — so plan
// objects, advertisements and runtime deployments never collide.
func (s *System) allocQueryID() int {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	id := s.nextQuery
	s.nextQuery++
	return id
}

// NewSystem builds the hierarchy (cluster size cap maxCS) over g for the
// communication-cost objective and returns a ready-to-use system. The
// seed drives clustering only; identical inputs give identical
// hierarchies.
func NewSystem(g *Graph, maxCS int, seed int64) (*System, error) {
	return NewSystemWithMetric(g, maxCS, seed, MetricCost)
}

// NewSystemWithMetric is NewSystem with an explicit optimization metric:
// MetricDelay clusters the hierarchy by inter-node delay and every
// planner minimizes rate-weighted latency instead of transfer cost.
func NewSystemWithMetric(g *Graph, maxCS int, seed int64, m Metric) (*System, error) {
	reg := obs.NewRegistry()
	paths := g.ShortestPaths(m)
	sp := obs.StartSpan(reg, "hierarchy.build")
	h, err := hierarchy.Build(g, paths, maxCS, rand.New(rand.NewSource(seed)))
	sp.End()
	if err != nil {
		return nil, err
	}
	s := &System{
		Graph:     g,
		Paths:     paths,
		Hierarchy: h,
		Catalog:   query.NewCatalog(0.01),
		Registry:  ads.NewRegistry(),
		Obs:       reg,
		metric:    m,
		tracker:   load.NewTracker(),
	}
	s.Hierarchy.BindObs(reg)
	s.Registry.BindObs(reg)
	s.tracker.BindObs(reg)
	return s, nil
}

// Snapshot returns a point-in-time copy of the system's telemetry,
// detached from the live metrics. With telemetry disabled it is empty.
func (s *System) Snapshot() Snapshot { return s.Obs.Snapshot() }

// SetLoadPenalty enables load-aware planning: placing an operator on a
// node already processing load L costs an extra alpha×L×inputRate in the
// planning objective, steering new deployments away from overloaded
// nodes (the paper's "node N2 may be overloaded" scenario). Zero disables
// it. Deployed plans feed the load ledger automatically; use AddLoad for
// background load from other applications.
func (s *System) SetLoadPenalty(alpha float64) {
	s.mu.Lock()
	s.loadAlpha = alpha
	s.mu.Unlock()
}

// AddLoad records synthetic background processing load on a node.
func (s *System) AddLoad(v NodeID, inRate float64) { s.tracker.AddRaw(v, inRate) }

// NodeLoad returns the tracked processing load (input rate) on a node.
func (s *System) NodeLoad(v NodeID) float64 { return s.tracker.Load(v) }

// AddStream registers a base stream producing rate cost-units per unit
// time at the given node.
func (s *System) AddStream(name string, rate float64, source NodeID) StreamID {
	return s.Catalog.Add(name, rate, source)
}

// SetSelectivity records the pairwise join selectivity between streams.
func (s *System) SetSelectivity(a, b StreamID, sel float64) {
	s.Catalog.SetSelectivity(a, b, sel)
}

// SetSchema declares a stream's attribute schema. With schemas declared,
// planners cost every edge at rate×width instead of rate alone, and CQL
// projections prune columns no operator references (shrinking per-edge
// tuple widths). Setup-phase API, like AddStream: declare schemas before
// planning or deploying.
func (s *System) SetSchema(id StreamID, schema Schema) {
	s.Catalog.SetSchema(id, schema)
}

// SetPushdown toggles the logical optimizer pipeline (predicate pushdown,
// column pruning, constant folding) globally — the A/B kill switch.
// Default on. Schema widths continue to apply either way; only the
// rewrites stop.
func SetPushdown(enabled bool) { rewrite.SetPushdown(enabled) }

// Deployment is the outcome of deploying one query.
type Deployment struct {
	Query *Query
	Result
	// Rewrite is the logical optimizer pipeline's audit for CQL-planned
	// queries (nil when the pipeline is disabled or the query was built
	// programmatically). When Rewrite.NoOp is set the query is provably
	// empty: Plan is nil and nothing was deployed.
	Rewrite *RewriteOutcome
}

// Plan plans a query without deploying it (no advertisements recorded):
// useful for what-if comparisons. Every planned query receives its own
// unique query ID, so consecutive what-if plans never collide.
func (s *System) Plan(sources []StreamID, sink NodeID, algo Algorithm) (Deployment, error) {
	return s.PlanWhere(sources, sink, algo, PredSet{})
}

// PlanWhere is Plan with selection predicates.
func (s *System) PlanWhere(sources []StreamID, sink NodeID, algo Algorithm, preds PredSet) (Deployment, error) {
	q, err := query.NewQueryPred(s.allocQueryID(), sources, sink, preds)
	if err != nil {
		return Deployment{}, err
	}
	res, err := s.run(q, algo)
	if err != nil {
		return Deployment{}, err
	}
	return Deployment{Query: q, Result: res}, nil
}

// Deploy plans a query with the chosen algorithm — considering reuse of
// every previously deployed operator — and advertises the new plan's
// operators for future queries. The returned cost is the marginal
// communication cost per unit time this deployment adds.
func (s *System) Deploy(sources []StreamID, sink NodeID, algo Algorithm) (Deployment, error) {
	return s.DeployWhere(sources, sink, algo, PredSet{})
}

// DeployWhere is Deploy with selection predicates: stricter queries can
// reuse previously deployed weaker operators through residual filters.
func (s *System) DeployWhere(sources []StreamID, sink NodeID, algo Algorithm, preds PredSet) (Deployment, error) {
	d, err := s.PlanWhere(sources, sink, algo, preds)
	if err != nil {
		return Deployment{}, err
	}
	s.deployRecord(d.Query, d.Result)
	return d, nil
}

// Undeploy retracts a finalized deployment, reversing deployRecord: the
// advertisements its plan created leave the registry (so planners stop
// being offered streams nobody produces anymore) and its processing load
// leaves the ledger. Advertisements the plan merely reused belong to the
// deployment that created them and stay. It returns the number of
// retracted advertisements. Planning-level bookkeeping only — tearing
// down live operators (with reference counting for shared subtrees) is
// the IFLOW runtime's Undeploy.
func (s *System) Undeploy(d Deployment) int {
	if d.Query == nil || d.Plan == nil {
		return 0
	}
	removed := s.Registry.Prune(func(ad ads.Ad) bool { return ad.QueryID != d.Query.ID })
	s.tracker.RemovePlan(d.Plan)
	if obs.On() {
		s.Obs.Counter("system.undeploys").Inc()
	}
	return removed
}

// DeployCQL parses a SQL-like continuous query (the paper's query
// syntax; see internal/cql for the grammar) against the catalog, plans it
// with the chosen algorithm — predicates, containment and aggregates
// included — and deploys it toward the sink:
//
//	sys.DeployCQL(`SELECT FLIGHTS.STATUS, CHECK-INS.STATUS
//	               FROM FLIGHTS, CHECK-INS
//	               WHERE FLIGHTS.DEPARTING = 'ATLANTA'
//	                 AND FLIGHTS.NUM = CHECK-INS.FLNUM`, sink, hnp.AlgoTopDown)
func (s *System) DeployCQL(stmt string, sink NodeID, algo Algorithm) (Deployment, error) {
	d, err := s.PlanCQL(stmt, sink, algo)
	if err != nil {
		return Deployment{}, err
	}
	if d.Plan == nil {
		// Provably-empty query (contradictory WHERE folded to a no-op):
		// nothing to advertise, load, or run.
		return d, nil
	}
	s.deployRecord(d.Query, d.Result)
	return d, nil
}

// PlanCQL parses and plans a SQL-like query without deploying it (no
// advertisements or load recorded) — what-if analysis for query text.
func (s *System) PlanCQL(stmt string, sink NodeID, algo Algorithm) (Deployment, error) {
	st, err := cql.Parse(s.Catalog, stmt)
	if err != nil {
		return Deployment{}, err
	}
	q, err := st.Query(s.allocQueryID(), sink)
	if err != nil {
		return Deployment{}, err
	}
	if st.Contradiction && !rewrite.Enabled() {
		// With the pipeline killed there is no constant folding to turn a
		// provably-empty WHERE into a no-op plan; restore the pre-pipeline
		// behavior of rejecting the statement rather than silently planning
		// an unfiltered query.
		return Deployment{}, fmt.Errorf("cql: %w", query.ErrContradiction)
	}
	var rw *RewriteOutcome
	if rewrite.Enabled() {
		out := rewrite.Apply(s.Catalog, q, st.Pushdown())
		rw = &out
		if obs.On() {
			s.Obs.Counter("rewrite.rules_applied").Add(int64(out.RulesApplied))
			s.Obs.Gauge("rewrite.bytes_saved").Add(out.BytesSaved())
		}
		if tr := s.Obs.Tracer(); tr.On() && out.RulesApplied > 0 {
			tr.Emit(obs.Event{
				Kind: obs.KindRewriteApplied, Trace: obs.QueryTrace(q.ID),
				Query: q.ID, Node: obs.NoID,
				Value: out.BytesSaved(), Aux: float64(out.RulesApplied),
				Detail: out.TraceString(),
			})
		}
		if out.NoOp {
			return Deployment{Query: q, Rewrite: rw}, nil
		}
	}
	res, err := s.run(q, algo)
	if err != nil {
		return Deployment{}, err
	}
	return Deployment{Query: q, Result: res, Rewrite: rw}, nil
}

// DeployAggregate deploys a query whose join result is reduced by a
// windowed aggregation before delivery; the aggregate is placed jointly
// with the rest of the plan (usually on the join root, collapsing the
// downstream rate).
func (s *System) DeployAggregate(sources []StreamID, sink NodeID, algo Algorithm,
	preds PredSet, agg AggSpec) (Deployment, error) {
	q, err := query.NewQueryAgg(s.allocQueryID(), sources, sink, preds, agg)
	if err != nil {
		return Deployment{}, err
	}
	res, err := s.run(q, algo)
	if err != nil {
		return Deployment{}, err
	}
	s.deployRecord(q, res)
	return Deployment{Query: q, Result: res}, nil
}

// deployRecord finalizes a deployment: the plan's operators are advertised
// for future reuse and its processing load is accounted. With telemetry
// enabled the reuse outcome is classified first, against the registry
// state the planner saw: every derived leaf the plan consumes is a hit
// ("ads.reuse_hits"); a deployment that was offered reuse candidates yet
// consumed none is a miss ("ads.reuse_misses" — duplicating the work was
// cheaper).
func (s *System) deployRecord(q *Query, res Result) {
	if obs.On() {
		hits := derivedLeaves(res.Plan)
		s.Obs.Counter("ads.reuse_hits").Add(int64(hits))
		if hits == 0 && s.reuseWasOffered(q, res) {
			s.Obs.Counter("ads.reuse_misses").Inc()
		}
	}
	s.Registry.AdvertisePlan(q, res.Plan)
	s.tracker.AddPlan(res.Plan)
}

// reuseWasOffered reports whether the planner saw at least one applicable
// advertisement: from the planning trace when there is one, otherwise
// (baseline planners) by re-running the advertisement lookup.
func (s *System) reuseWasOffered(q *Query, res Result) bool {
	if res.Trace != nil {
		offered := 0
		var walk func(st *core.PlanStep)
		walk = func(st *core.PlanStep) {
			if st == nil {
				return
			}
			offered += st.ReuseOffered
			for _, ch := range st.Children {
				walk(ch)
			}
		}
		walk(res.Trace)
		return offered > 0
	}
	return len(s.Registry.InputsFor(q, query.BuildRates(s.Catalog, q), nil)) > 0
}

// derivedLeaves counts the plan leaves satisfied by reused (previously
// advertised) derived streams.
func derivedLeaves(n *PlanNode) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		if n.In != nil && n.In.Derived {
			return 1
		}
		return 0
	}
	return derivedLeaves(n.L) + derivedLeaves(n.R)
}

func (s *System) run(q *query.Query, algo Algorithm) (Result, error) {
	// Planning holds the read lock: many planners run in parallel, while
	// Refresh's snapshot swap excludes them all.
	s.mu.RLock()
	defer s.mu.RUnlock()
	opts := core.Options{Obs: s.Obs}
	if s.loadAlpha > 0 {
		opts.Penalty = s.tracker.Penalty(s.loadAlpha)
	}
	switch algo {
	case AlgoTopDown:
		return core.TopDownOpts(s.Hierarchy, s.Catalog, q, s.Registry, opts)
	case AlgoBottomUp:
		return core.BottomUpOpts(s.Hierarchy, s.Catalog, q, s.Registry, opts)
	case AlgoOptimal:
		return core.OptimalOpts(s.Graph, s.Paths, s.Catalog, q, s.Registry, opts)
	case AlgoPlanThenDeploy:
		// The phased baseline predates load awareness; it ignores opts.
		return baseline.PlanThenDeploy(s.Graph, s.Paths, s.Catalog, q, s.Registry)
	}
	return Result{}, fmt.Errorf("hnp: unknown algorithm %d", algo)
}

// Refresh brings the path snapshot up to date and re-binds the hierarchy
// after the graph changed (link cost updates; node churn is handled via
// the hierarchy's AddNode/RemoveNode). The refresh is incremental where
// the graph's mutation log permits — only the source rows that actually
// moved are recomputed, and only clusters touching them re-audited — and
// falls back to a full recompute otherwise; either way the resulting
// snapshot is bit-identical to a fresh one. The published snapshot is
// shared with concurrently running planners, so retired snapshots are
// never recycled here.
func (s *System) Refresh() {
	// Compute outside the write lock: planners keep running against the
	// old snapshot until the swap below.
	s.mu.RLock()
	old := s.Paths
	s.mu.RUnlock()
	paths, stats := old.RefreshFrom(s.Graph, nil)
	switch stats.Mode {
	case netgraph.RefreshIncremental:
		s.Obs.Counter("paths.refresh_incremental").Inc()
	case netgraph.RefreshFull:
		s.Obs.Counter("paths.refresh_full").Inc()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if paths == old {
		return // graph unchanged since the snapshot was taken
	}
	if err := s.Hierarchy.RebindRows(paths, stats.Rows); err != nil {
		// Unreachable: a just-computed snapshot cannot be stale.
		panic(err)
	}
	s.Paths = paths
}
