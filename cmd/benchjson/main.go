// Command benchjson runs the repo's fixed-seed benchmarks and emits a
// machine-readable trajectory file (see internal/benchfmt), the record
// this and future perf PRs are tracked against. It has two modes:
//
// Planner mode (default) runs the planner hot-path benchmarks and writes
// BENCH_planner.json. The workloads are seeded identically on every run
// (and identical to the corresponding go-test benchmarks:
// BenchmarkSolveK4/K6, BenchmarkDeploy, BenchmarkAPSP,
// BenchmarkPathsDeltaRefresh, BenchmarkChaosDriftMaintain,
// BenchmarkMigrate, BenchmarkAdaptControl), so the measured code path is
// reproducible; only the wall-clock figures move with the hardware. CI
// runs it with short iterations and uploads the artifact:
//
//	go run ./cmd/benchjson -benchtime 10x -o BENCH_planner.json
//
// Serving mode (-serving) runs the query-serving load scenarios instead
// (internal/serve.BenchScenarios): each boots a sharded in-process smqd,
// replays a seed-pinned synthesized trace through the ReqBench-style
// harness over real HTTP, and records p50/p95/p99 plan latency,
// deploys/sec and admission rejections into BENCH_serving.json:
//
//	go run ./cmd/benchjson -serving -o BENCH_serving.json
//
// With -compare the fresh run is diffed against a committed baseline and
// the process exits non-zero on regression — more than 25% ns/op or
// serving p95/p99 (tune with -threshold) or ANY allocs/op increase:
//
//	go run ./cmd/benchjson -benchtime 100x -compare BENCH_planner.json
//	go run ./cmd/benchjson -serving -compare BENCH_serving.json
//
// Compare two files with the trajectory in mind: ns_per_op, the serving
// quantiles and plans_per_sec are hardware-relative, allocs_per_op and
// bytes_per_op are not — an allocs/op regression is a real regression on
// any machine. That asymmetry is why the ns/op gate carries a generous
// tolerance while the allocs/op gate carries none.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"hnp"
	"hnp/internal/adapt"
	"hnp/internal/baseline"
	"hnp/internal/benchfmt"
	"hnp/internal/chaos"
	"hnp/internal/core"
	"hnp/internal/hierarchy"
	"hnp/internal/iflow"
	"hnp/internal/netgraph"
	"hnp/internal/query"
	"hnp/internal/serve"
)

const seed = 7

// solveProblem mirrors the fixture of BenchmarkSolveK4/K6 in bench_test.go.
func solveProblem(k, n int) core.Problem {
	rng := rand.New(rand.NewSource(seed))
	g := netgraph.MustTransitStub(n, rng)
	paths := g.ShortestPaths(netgraph.MetricCost)
	cat := query.NewCatalog(0.01)
	ids := make([]query.StreamID, k)
	for i := range ids {
		ids[i] = cat.Add("s", 1+rng.Float64()*50, netgraph.NodeID(rng.Intn(n)))
	}
	q, err := query.NewQuery(0, ids, netgraph.NodeID(rng.Intn(n)))
	if err != nil {
		panic(err)
	}
	rt := query.BuildRates(cat, q)
	return core.Problem{
		Inputs: core.BaseInputs(cat, q, rt),
		Sites:  baseline.AllNodes(g),
		Dist:   paths.Dist,
		Rates:  rt,
		Goal:   q.All(),
		Sink:   q.Sink, Deliver: true,
	}
}

// migratePlans mirrors the fixture of BenchmarkMigrate in bench_test.go:
// a 32-node network, a K=6 left-deep query, and two plans differing in a
// single join placement (the third join moves node 7 -> 10).
func migratePlans() (*netgraph.Graph, *query.Catalog, *query.Query, *query.PlanNode, *query.PlanNode) {
	rng := rand.New(rand.NewSource(8))
	g := netgraph.MustTransitStub(32, rng)
	cat := query.NewCatalog(0.01)
	ids := make([]query.StreamID, 6)
	for i := range ids {
		ids[i] = cat.Add("s", 1+rng.Float64()*20, netgraph.NodeID(rng.Intn(32)))
	}
	q, err := query.NewQuery(0, ids, 3)
	if err != nil {
		panic(err)
	}
	rt := query.BuildRates(cat, q)
	leftDeep := func(locs []netgraph.NodeID) *query.PlanNode {
		leaf := func(pos int) *query.PlanNode {
			m := query.Mask(1 << uint(pos))
			return query.Leaf(query.Input{
				Mask: m, Rate: rt.Rate(m), Loc: cat.Stream(ids[pos]).Source, Sig: q.SigOf(m),
			})
		}
		cur := leaf(0)
		for i := 1; i < q.K(); i++ {
			cur = query.Join(cur, leaf(i), locs[i-1], rt.Rate(cur.Mask|query.Mask(1<<uint(i))))
		}
		return cur
	}
	planA := leftDeep([]netgraph.NodeID{5, 6, 7, 8, 9})
	planB := leftDeep([]netgraph.NodeID{5, 6, 10, 8, 9})
	return g, cat, q, planA, planB
}

// driftLink mirrors bench_test.go's benchDriftLink: probe every link with
// a mild wiggle to just under its endpoints' path distance, refresh a
// throwaway snapshot, revert (reverts coalesce out of the delta log), and
// keep the link an incremental refresh absorbs with the fewest recomputed
// rows. Leaf links legitimately force full recomputes and are skipped.
func driftLink(g *netgraph.Graph) (netgraph.Link, float64) {
	fresh := g.ShortestPaths(netgraph.MetricCost)
	n := g.NumNodes()
	var best netgraph.Link
	bestBase, bestRows := 0.0, n
	set := func(a, b netgraph.NodeID, c float64) {
		if err := g.SetLinkCost(a, b, c); err != nil {
			panic(err)
		}
	}
	for _, cand := range g.Links() {
		orig, _ := g.LinkCost(cand.A, cand.B)
		d := fresh.Dist(cand.A, cand.B)
		set(cand.A, cand.B, d*0.95)
		_, s1 := fresh.RefreshFrom(g, nil)
		set(cand.A, cand.B, d*0.90)
		_, s2 := fresh.RefreshFrom(g, nil)
		set(cand.A, cand.B, orig)
		rows := s1.RowsRecomputed
		if s2.RowsRecomputed > rows {
			rows = s2.RowsRecomputed
		}
		if s1.Mode == netgraph.RefreshIncremental && s2.Mode == netgraph.RefreshIncremental &&
			s1.RowsRecomputed > 0 && s2.RowsRecomputed > 0 && rows < bestRows {
			best, bestBase, bestRows = cand, d, rows
		}
	}
	if bestRows > n/8 {
		panic(fmt.Sprintf("no link with a small drift blast radius (best repairs %d/%d rows)", bestRows, n))
	}
	return best, bestBase
}

// driftWarmup matches bench_test.go: enough single-link mutations to carry
// the delta log past its overflow point so log, recycle pair and scratch
// reach steady-state capacity before the timer starts.
const driftWarmup = 2048

// rewriteWorkload is the figure workload with attribute schemas declared:
// three 100-byte streams whose wide blob columns (MANIFEST, RADAR,
// PASSENGER) the optimizer pipeline prunes, plus the selective/projecting
// statement grid planned against them (mirrors the root pushdown tests).
func rewriteWorkload() (*hnp.System, hnp.NodeID, []string) {
	g := hnp.TransitStubNetwork(64, 3)
	sys, err := hnp.NewSystem(g, 8, 3)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fl := sys.AddStream("FLIGHTS", 40, 17)
	we := sys.AddStream("WEATHER", 25, 41)
	ck := sys.AddStream("CHECKINS", 30, 55)
	sys.SetSelectivity(fl, we, 0.01)
	sys.SetSelectivity(fl, ck, 0.02)
	sys.SetSelectivity(we, ck, 0.005)
	sys.SetSchema(fl, hnp.Schema{
		{Name: "num", Width: 8}, {Name: "status", Width: 16},
		{Name: "origin", Width: 12}, {Name: "manifest", Width: 64},
	})
	sys.SetSchema(we, hnp.Schema{
		{Name: "city", Width: 8}, {Name: "temp", Width: 8}, {Name: "radar", Width: 84},
	})
	sys.SetSchema(ck, hnp.Schema{
		{Name: "flight", Width: 8}, {Name: "status", Width: 16}, {Name: "passenger", Width: 76},
	})
	stmts := []string{
		`SELECT FLIGHTS.STATUS, WEATHER.TEMP FROM FLIGHTS, WEATHER
		 WHERE FLIGHTS.NUM = WEATHER.CITY AND FLIGHTS.STATUS > 0.8`,
		`SELECT FLIGHTS.NUM, CHECKINS.STATUS FROM FLIGHTS, WEATHER, CHECKINS
		 WHERE FLIGHTS.NUM = WEATHER.CITY AND FLIGHTS.NUM = CHECKINS.FLIGHT
		   AND CHECKINS.STATUS < 0.4`,
		`SELECT WEATHER.TEMP FROM FLIGHTS, WEATHER
		 WHERE FLIGHTS.NUM = WEATHER.CITY`,
		`SELECT * FROM FLIGHTS, WEATHER
		 WHERE FLIGHTS.NUM = WEATHER.CITY AND FLIGHTS.STATUS > 0.9`,
	}
	return sys, 9, stmts
}

// measure runs fn under testing.Benchmark and records it. plansPerOp, when
// non-zero, is the number of plan candidates one op examines.
func measure(out *[]benchfmt.Result, name string, plansPerOp float64, fn func(b *testing.B)) {
	r := testing.Benchmark(fn)
	br := benchfmt.Result{
		Name:       name,
		Iterations: r.N,
		NsPerOp:    r.NsPerOp(),
		AllocsOp:   r.AllocsPerOp(),
		BytesOp:    r.AllocedBytesPerOp(),
	}
	if plansPerOp > 0 && r.T > 0 {
		br.PlansPerSec = plansPerOp * float64(r.N) / r.T.Seconds()
	}
	*out = append(*out, br)
	fmt.Fprintf(os.Stderr, "%-12s %12d ns/op %8d allocs/op %10d B/op\n",
		name, br.NsPerOp, br.AllocsOp, br.BytesOp)
}

func main() {
	var (
		benchtime = flag.String("benchtime", "1s", "per-benchmark budget (testing syntax: 1s, 100x, ...); planner mode only")
		outPath   = flag.String("o", "", "output file ('-' for stdout; default BENCH_planner.json, or BENCH_serving.json with -serving)")
		compare   = flag.String("compare", "", "baseline trajectory to diff this run against; exit 3 on regression")
		threshold = flag.Float64("threshold", 0.25, "ns/op (and serving p95/p99) regression tolerance for -compare, as a fraction (allocs/op tolerates nothing)")
		serving   = flag.Bool("serving", false, "run the query-serving load scenarios instead of the planner benchmarks")
	)
	testing.Init()
	flag.Parse()
	if *outPath == "" {
		if *serving {
			*outPath = "BENCH_serving.json"
		} else {
			*outPath = "BENCH_planner.json"
		}
	}
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: bad -benchtime: %v\n", err)
		os.Exit(1)
	}

	traj := benchfmt.Trajectory{
		Schema:    benchfmt.Schema,
		Tool:      "cmd/benchjson",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Seed:      seed,
		Benchtime: *benchtime,
	}
	if *serving {
		traj.Tool = "cmd/benchjson -serving"
		traj.Benchtime = "trace"
		for _, sc := range serve.BenchScenarios(seed) {
			res, rep, err := serve.RunBench(sc)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", sc.Name, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "%-12s %s\n", sc.Name, rep)
			traj.Benchmarks = append(traj.Benchmarks, res)
		}
		finish(traj, *outPath, *compare, *threshold)
		return
	}

	// SolveK4/K6: the in-cluster DP kernel over all 32 sites.
	for _, k := range []int{4, 6} {
		prob := solveProblem(k, 32)
		plans := core.SolveWork(k, len(prob.Sites))
		measure(&traj.Benchmarks, fmt.Sprintf("SolveK%d", k), plans, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Solve(prob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// SolveCostK6: the zero-alloc scoring entry point on the same problem.
	{
		prob := solveProblem(6, 32)
		plans := core.SolveWork(6, len(prob.Sites))
		measure(&traj.Benchmarks, "SolveCostK6", plans, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.SolveCost(prob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Paths: the all-pairs snapshot every optimizer plans against.
	{
		rng := rand.New(rand.NewSource(seed))
		g := netgraph.MustTransitStub(128, rng)
		measure(&traj.Benchmarks, "Paths128", 0, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.ShortestPaths(netgraph.MetricCost)
			}
		})
	}

	// PathsDeltaRefresh: absorbing a single-link cost drift by delta
	// repair of the standing snapshot over a recycled ping-pong pair —
	// the steady state of iflow/chaos maintenance (mirrors
	// BenchmarkPathsDeltaRefresh/incremental; Paths128 above is the full
	// recompute every drift event used to cost). Zero allocs_per_op is a
	// hardware-independent invariant here: steady-state drift must be
	// absorbed without touching the allocator, and -compare gates it.
	{
		rng := rand.New(rand.NewSource(9))
		g := netgraph.MustTransitStub(128, rng)
		l, base := driftLink(g)
		measure(&traj.Benchmarks, "PathsDeltaRefresh", 0, func(b *testing.B) {
			b.ReportAllocs()
			cur, spare := g.ShortestPaths(netgraph.MetricCost), (*netgraph.Paths)(nil)
			flip := 0
			for ; flip < driftWarmup; flip++ {
				if err := g.SetLinkCost(l.A, l.B, base*(0.90+0.05*float64(flip%2))); err != nil {
					b.Fatal(err)
				}
				old := cur
				cur, _ = cur.RefreshFrom(g, spare)
				spare = old
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := g.SetLinkCost(l.A, l.B, base*(0.90+0.05*float64(flip%2))); err != nil {
					b.Fatal(err)
				}
				flip++
				old := cur
				next, stats := cur.RefreshFrom(g, spare)
				if stats.Mode != netgraph.RefreshIncremental || stats.RowsRecomputed == 0 {
					b.Fatalf("steady-state refresh = %+v, want incremental with rows", stats)
				}
				cur, spare = next, old
			}
		})
	}

	// ChaosDriftMaintain: the whole maintenance path one chaos link-drift
	// event triggers — incremental path repair plus the scoped hierarchy
	// rebind over the changed rows (mirrors BenchmarkChaosDriftMaintain/
	// delta). Same zero-alloc invariant as PathsDeltaRefresh.
	{
		rng := rand.New(rand.NewSource(10))
		g := netgraph.MustTransitStub(128, rng)
		l, base := driftLink(g)
		paths := g.ShortestPaths(netgraph.MetricCost)
		h, err := hierarchy.Build(g, paths, 32, rng)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		measure(&traj.Benchmarks, "ChaosDriftMaintain", 0, func(b *testing.B) {
			b.ReportAllocs()
			cur, spare := paths, (*netgraph.Paths)(nil)
			flip := 0
			for ; flip < driftWarmup; flip++ {
				if err := g.SetLinkCost(l.A, l.B, base*(0.90+0.05*float64(flip%2))); err != nil {
					b.Fatal(err)
				}
				old := cur
				cur, _ = cur.RefreshFrom(g, spare)
				spare = old
			}
			if err := h.Rebind(cur); err != nil {
				b.Fatal(err)
			}
			// Empty (non-nil) row set: audits nothing, but primes the
			// hierarchy's lazily allocated row-mark scratch.
			if err := h.RebindRows(cur, []netgraph.NodeID{}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := g.SetLinkCost(l.A, l.B, base*(0.90+0.05*float64(flip%2))); err != nil {
					b.Fatal(err)
				}
				flip++
				old := cur
				next, stats := cur.RefreshFrom(g, spare)
				cur, spare = next, old
				if err := h.RebindRows(next, stats.Rows); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Deploy: the full System planning path (Top-Down, 128 nodes,
	// max_cs=32 — the paper's standard setting), telemetry off. Plans per
	// second uses the measured per-query search-space accounting.
	{
		g := hnp.TransitStubNetwork(128, 1)
		sys, err := hnp.NewSystem(g, 32, 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		rng := rand.New(rand.NewSource(2))
		ids := make([]hnp.StreamID, 6)
		for i := range ids {
			ids[i] = sys.AddStream("s", 1+rng.Float64()*50, hnp.NodeID(rng.Intn(128)))
		}
		for i := range ids {
			for j := i + 1; j < len(ids); j++ {
				sys.SetSelectivity(ids[i], ids[j], 0.005+0.01*rng.Float64())
			}
		}
		var plansPerOp float64
		measure(&traj.Benchmarks, "Deploy", 0, func(b *testing.B) {
			b.ReportAllocs()
			plans := 0.0
			for i := 0; i < b.N; i++ {
				k := 3 + i%3
				d, err := sys.Plan(ids[:k], hnp.NodeID(i%128), hnp.AlgoTopDown)
				if err != nil {
					b.Fatal(err)
				}
				plans += d.PlansConsidered
			}
			plansPerOp = plans / float64(b.N)
		})
		last := &traj.Benchmarks[len(traj.Benchmarks)-1]
		if last.NsPerOp > 0 {
			last.PlansPerSec = plansPerOp / (float64(last.NsPerOp) / 1e9)
		}
	}

	// RewritePushdown: the figure workload's CQL statements end to end —
	// parse, logical optimizer pipeline (constant folding, predicate
	// pushdown, column pruning) and Top-Down planning over schema-bearing
	// 100-byte streams. rewrite_bytes_frac records the planned
	// bytes-on-wire of these statements relative to planning them with
	// the pipeline killed (seed-pinned; below 1.0 means pushdown wins).
	{
		sys, sink, stmts := rewriteWorkload()
		planAll := func() float64 {
			total := 0.0
			for _, s := range stmts {
				d, err := sys.PlanCQL(s, sink, hnp.AlgoTopDown)
				if err != nil {
					fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
					os.Exit(1)
				}
				total += d.Plan.PlannedBytes(sink)
			}
			return total
		}
		measure(&traj.Benchmarks, "RewritePushdown", 0, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				planAll()
			}
		})
		onBytes := planAll()
		hnp.SetPushdown(false)
		offBytes := planAll()
		hnp.SetPushdown(true)
		last := &traj.Benchmarks[len(traj.Benchmarks)-1]
		if offBytes > 0 {
			last.RewriteBytesFrac = onBytes / offBytes
		}
		fmt.Fprintf(os.Stderr, "%-12s planned bytes on/off = %.4g/%.4g (frac %.3f)\n",
			"", onBytes, offBytes, last.RewriteBytesFrac)
	}

	// MigrateDelta vs MigrateTeardown: replacing a running K=6 plan after
	// a single placement change, as a diff-based migration and as the
	// undeploy+redeploy it replaces. ns/op is local planning bookkeeping;
	// ops_churned_per_op is the deployed-system cost the diff machinery
	// exists to shrink (~2 vs ~2K operators).
	{
		g, cat, q, planA, planB := migratePlans()
		const until = 1e6

		rt := iflow.New(g, iflow.DefaultConfig(), 1)
		if err := rt.Deploy(q, planA, cat, until); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		var churnPerOp float64
		measure(&traj.Benchmarks, "MigrateDelta", 0, func(b *testing.B) {
			b.ReportAllocs()
			churn := 0
			for i := 0; i < b.N; i++ {
				target := planB
				if i%2 == 1 {
					target = planA
				}
				rep, err := rt.Migrate(q, target, cat, until)
				if err != nil {
					b.Fatal(err)
				}
				churn += rep.Delta()
			}
			churnPerOp = float64(churn) / float64(b.N)
		})
		traj.Benchmarks[len(traj.Benchmarks)-1].OpsChurnedPerOp = churnPerOp

		rt = iflow.New(g, iflow.DefaultConfig(), 1)
		if err := rt.Deploy(q, planA, cat, until); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		measure(&traj.Benchmarks, "MigrateTeardown", 0, func(b *testing.B) {
			b.ReportAllocs()
			churn := 0
			for i := 0; i < b.N; i++ {
				target := planB
				if i%2 == 1 {
					target = planA
				}
				torn := rt.NumOperators()
				if err := rt.Undeploy(q.ID); err != nil {
					b.Fatal(err)
				}
				torn -= rt.NumOperators()
				if err := rt.Deploy(q, target, cat, until); err != nil {
					b.Fatal(err)
				}
				churn += torn + rt.NumOperators()
			}
			churnPerOp = float64(churn) / float64(b.N)
		})
		traj.Benchmarks[len(traj.Benchmarks)-1].OpsChurnedPerOp = churnPerOp
	}

	// AdaptStep: one closed-loop control interval on a live deployment —
	// windowed drift measurement, calibration, re-plan, diff and marginal
	// byte-gain prediction — with migration disabled so every iteration
	// pays the full decision path (mirrors BenchmarkAdaptControl/step).
	{
		g, cat, q, planA, planB := migratePlans()
		const until = 1e9
		rt := iflow.New(g, iflow.DefaultConfig(), 1)
		if err := rt.Deploy(q, planA, cat, until); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		acfg := adapt.DefaultConfig()
		acfg.Mode = adapt.ModeNever
		acfg.DriftThreshold = 1e-9
		ctl := adapt.New(rt, cat, func(*query.Query) (*query.PlanNode, error) {
			return planB, nil
		}, acfg)
		ctl.Track(q, planA)
		rt.RunFor(5)
		measure(&traj.Benchmarks, "AdaptStep", 0, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				rt.RunFor(1)
				b.StartTimer()
				ctl.Step()
			}
		})
	}

	// AdaptControl: the pinned chaos rate-shift seed replayed under
	// never-migrate, always-remigrate and the gated controller; the
	// recorded ratios are the controller's byte totals against each
	// baseline (mirrors BenchmarkAdaptControl/compare).
	// One iteration suffices: the comparison is seed-deterministic, so
	// every repeat reproduces the identical ratios — only wall-clock
	// (which nobody tracks here) would accumulate.
	{
		if err := flag.Set("test.benchtime", "1x"); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		var vsNever, vsAlways float64
		iters := 0
		measure(&traj.Benchmarks, "AdaptControl", 0, func(b *testing.B) {
			vsNever, vsAlways, iters = 0, 0, 0
			for i := 0; i < b.N; i++ {
				out, err := chaos.CompareAdaptPolicies(chaos.RateShiftConfig(3))
				if err != nil {
					b.Fatal(err)
				}
				never, always, ctl := out[0], out[1], out[2]
				if ctl.Report.Oscillations != 0 {
					b.Fatalf("controller oscillated %d times", ctl.Report.Oscillations)
				}
				vsNever += ctl.Bytes() / never.Bytes()
				vsAlways += ctl.Bytes() / always.Bytes()
				iters++
			}
		})
		last := &traj.Benchmarks[len(traj.Benchmarks)-1]
		if iters > 0 {
			last.BytesVsNever = vsNever / float64(iters)
			last.BytesVsAlways = vsAlways / float64(iters)
		}
	}

	finish(traj, *outPath, *compare, *threshold)
}

// finish writes the trajectory and, with -compare, diffs it against the
// baseline, exiting 3 on regression.
func finish(traj benchfmt.Trajectory, outPath, compare string, threshold float64) {
	if err := benchfmt.Write(outPath, traj); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if outPath != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	}

	if compare != "" {
		base, err := benchfmt.Load(compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -compare: %v\n", err)
			os.Exit(1)
		}
		if regressions := benchfmt.Diff(os.Stdout, base, traj, threshold); regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed vs %s\n", regressions, compare)
			os.Exit(3)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no regressions vs %s\n", compare)
	}
}
