// Command smq regenerates the paper's evaluation figures. Each figure is
// printed as an aligned text table with headline notes comparing measured
// numbers against the paper's claims.
//
// Usage:
//
//	smq -fig all                 # every figure at paper scale
//	smq -fig 7                   # one figure
//	smq -fig 5,6 -workloads 3    # reduced averaging for quick runs
//	smq -fig 9 -seed 7           # different randomness
//	smq -fig all -parallel=false # single-goroutine run (same output)
//
// By default figures are computed concurrently (and each figure's
// internal sweeps fan out across cores); output is bit-identical to a
// serial run and always rendered in figure order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"hnp/internal/exp"
)

func main() {
	var (
		figs      = flag.String("fig", "all", "comma-separated figure ids (2,5,6,7,8,9,10,11) or 'all'")
		seed      = flag.Int64("seed", 42, "random seed")
		workloads = flag.Int("workloads", 10, "workloads averaged in figs 5-8")
		queries   = flag.Int("queries", 20, "queries per workload in figs 5-8")
		format    = flag.String("format", "table", "output format: table or csv")
		parallel  = flag.Bool("parallel", true, "compute figures and their sweeps concurrently (output is identical either way)")
	)
	flag.Parse()

	cfg := exp.DefaultConfig()
	cfg.Seed = *seed
	cfg.Workloads = *workloads
	cfg.Queries = *queries
	cfg.Serial = !*parallel

	harness := map[string]func(exp.Config) (*exp.Figure, error){
		"2": exp.Fig2, "5": exp.Fig5, "6": exp.Fig6, "7": exp.Fig7,
		"8": exp.Fig8, "9": exp.Fig9, "10": exp.Fig10, "11": exp.Fig11,
	}
	order := []string{"2", "5", "6", "7", "8", "9", "10", "11"}

	var wanted []string
	if *figs == "all" {
		wanted = order
	} else {
		for _, f := range strings.Split(*figs, ",") {
			f = strings.TrimSpace(f)
			if _, ok := harness[f]; !ok {
				fmt.Fprintf(os.Stderr, "smq: unknown figure %q (known: %s, all)\n", f, strings.Join(order, ","))
				os.Exit(2)
			}
			wanted = append(wanted, f)
		}
	}

	if *format != "csv" && *format != "table" {
		fmt.Fprintf(os.Stderr, "smq: unknown format %q\n", *format)
		os.Exit(2)
	}

	// Compute every requested figure (concurrently unless -parallel=false),
	// then render in request order so output is stable.
	type result struct {
		fig *exp.Figure
		err error
	}
	results := make([]result, len(wanted))
	if *parallel {
		var wg sync.WaitGroup
		for i, id := range wanted {
			i, id := i, id
			wg.Add(1)
			go func() {
				defer wg.Done()
				fig, err := harness[id](cfg)
				results[i] = result{fig, err}
			}()
		}
		wg.Wait()
	} else {
		for i, id := range wanted {
			fig, err := harness[id](cfg)
			results[i] = result{fig, err}
		}
	}

	for i, id := range wanted {
		if results[i].err != nil {
			fmt.Fprintf(os.Stderr, "smq: figure %s: %v\n", id, results[i].err)
			os.Exit(1)
		}
		if *format == "csv" {
			results[i].fig.RenderCSV(os.Stdout)
		} else {
			results[i].fig.Render(os.Stdout)
		}
	}
}
