// Command smq regenerates the paper's evaluation figures. Each figure is
// printed as an aligned text table with headline notes comparing measured
// numbers against the paper's claims.
//
// Usage:
//
//	smq -fig all                 # every figure at paper scale
//	smq -fig 7                   # one figure
//	smq -fig 5,6 -workloads 3    # reduced averaging for quick runs
//	smq -fig 9 -seed 7           # different randomness
//	smq -fig all -parallel=false # single-goroutine run (same output)
//	smq -explain                 # annotated per-level planner search trace
//	smq -explain -trace          # + causal lifecycle timeline per query
//	smq -fig all -debug-addr :6060  # live /metrics, /flight, /trace, expvar, pprof
//
// By default figures are computed concurrently (and each figure's
// internal sweeps fan out across cores); output is bit-identical to a
// serial run and always rendered in figure order. Each completed figure
// prints a one-line timing summary to stderr.
//
// -explain runs a canned two-query scenario (128-node transit-stub
// network, max_cs=32) through both hierarchical optimizers and prints
// each planning step — cluster level, coordinator, inputs joined, reuse
// candidates offered, candidates examined, local search time, chosen cost
// — then runs the chosen plan in the IFLOW runtime, shifts a stream rate
// mid-flight and applies the re-planned tree as a diff-based live
// migration (printing what it kept, churned and carried), hands the
// deployment to the closed-loop adaptation controller for the rest of
// the horizon (printing each gate decision and migration it makes),
// followed by the telemetry snapshot, and exits.
//
// -debug-addr serves expvar (/debug/vars, including the process-wide
// telemetry under "hnp"), pprof (/debug/pprof/) and a JSON telemetry
// snapshot (/metrics) while figures compute; it also turns telemetry on,
// so per-figure progress counters (exp.fig*.units_done) tick live. With
// -trace it additionally serves the flight recorder: /flight dumps the
// ring as JSONL and /trace?query=N renders one query's causal timeline.
// Figure harnesses use private registries, so the recorder is populated
// by the -explain scenario (combine -explain -trace -debug-addr; the
// server stays up after the narrative so the recording can be queried).
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hnp"
	"hnp/internal/adapt"
	"hnp/internal/exp"
	"hnp/internal/iflow"
	"hnp/internal/obs"
	"hnp/internal/query"
)

func main() {
	var (
		figs      = flag.String("fig", "all", "comma-separated figure ids (2,5,6,7,8,9,10,11) or 'all'")
		seed      = flag.Int64("seed", 42, "random seed")
		workloads = flag.Int("workloads", 10, "workloads averaged in figs 5-8")
		queries   = flag.Int("queries", 20, "queries per workload in figs 5-8")
		format    = flag.String("format", "table", "output format: table or csv")
		parallel  = flag.Bool("parallel", true, "compute figures and their sweeps concurrently (output is identical either way)")
		explain   = flag.Bool("explain", false, "print an annotated planner search narrative for a canned scenario and exit")
		trace     = flag.Bool("trace", false, "arm the causal flight recorder; with -explain appends per-query lifecycle timelines, with -debug-addr serves the recording at /flight and /trace")
		debugAddr = flag.String("debug-addr", "", "serve expvar, pprof, /metrics, /flight and /trace?query=N on this address (e.g. :6060) while running")
	)
	flag.Parse()

	if *trace {
		obs.Default.Tracer().Enable()
	}
	if *debugAddr != "" {
		hnp.EnableTelemetry()
		serveDebug(*debugAddr)
	}
	if *explain {
		if err := runExplain(*seed, *trace); err != nil {
			fmt.Fprintf(os.Stderr, "smq: explain: %v\n", err)
			os.Exit(1)
		}
		if *debugAddr != "" {
			// Keep serving so the recorded flight can be queried after the
			// narrative finishes: /flight and /trace?query=N now read the
			// explain scenario's registry.
			fmt.Fprintf(os.Stderr, "smq: explain done; debug surface still serving on %s (interrupt to exit)\n", *debugAddr)
			select {}
		}
		return
	}

	cfg := exp.DefaultConfig()
	cfg.Seed = *seed
	cfg.Workloads = *workloads
	cfg.Queries = *queries
	cfg.Serial = !*parallel

	harness := map[string]func(exp.Config) (*exp.Figure, error){
		"2": exp.Fig2, "5": exp.Fig5, "6": exp.Fig6, "7": exp.Fig7,
		"8": exp.Fig8, "9": exp.Fig9, "10": exp.Fig10, "11": exp.Fig11,
	}
	order := []string{"2", "5", "6", "7", "8", "9", "10", "11"}

	var wanted []string
	if *figs == "all" {
		wanted = order
	} else {
		for _, f := range strings.Split(*figs, ",") {
			f = strings.TrimSpace(f)
			if _, ok := harness[f]; !ok {
				fmt.Fprintf(os.Stderr, "smq: unknown figure %q (known: %s, all)\n", f, strings.Join(order, ","))
				os.Exit(2)
			}
			wanted = append(wanted, f)
		}
	}

	if *format != "csv" && *format != "table" {
		fmt.Fprintf(os.Stderr, "smq: unknown format %q\n", *format)
		os.Exit(2)
	}

	// Compute every requested figure (concurrently unless -parallel=false),
	// then render in request order so output is stable. Timing lines go to
	// stderr as figures finish, keeping stdout machine-parseable.
	type result struct {
		fig     *exp.Figure
		err     error
		elapsed time.Duration
	}
	results := make([]result, len(wanted))
	compute := func(i int, id string) {
		start := time.Now()
		fig, err := harness[id](cfg)
		results[i] = result{fig, err, time.Since(start)}
		fmt.Fprintf(os.Stderr, "smq: figure %s computed in %s\n", id, results[i].elapsed.Round(time.Millisecond))
	}
	if *parallel {
		var wg sync.WaitGroup
		for i, id := range wanted {
			i, id := i, id
			wg.Add(1)
			go func() {
				defer wg.Done()
				compute(i, id)
			}()
		}
		wg.Wait()
	} else {
		for i, id := range wanted {
			compute(i, id)
		}
	}

	for i, id := range wanted {
		if results[i].err != nil {
			fmt.Fprintf(os.Stderr, "smq: figure %s: %v\n", id, results[i].err)
			os.Exit(1)
		}
		if *format == "csv" {
			results[i].fig.RenderCSV(os.Stdout)
		} else {
			results[i].fig.Render(os.Stdout)
		}
	}
}

// traceSrc points at the registry whose flight recorder the debug
// endpoints serve: the process-wide default, switched to the explain
// scenario's private registry once -explain builds its system.
var traceSrc atomic.Pointer[obs.Registry]

func init() { traceSrc.Store(obs.Default) }

// runExplain deploys two overlapping queries on a canned 128-node system
// with both hierarchical algorithms and prints each planner's annotated
// search narrative, demonstrates a diff-based live migration after a
// mid-flight rate shift, then prints the system telemetry snapshot.
// With trace armed, it closes with the flight recorder's causal timeline
// for each query: planned → deployed → calibrated → gated → migrated.
func runExplain(seed int64, trace bool) error {
	hnp.EnableTelemetry()
	g := hnp.TransitStubNetwork(128, seed)
	sys, err := hnp.NewSystem(g, 32, seed)
	if err != nil {
		return err
	}
	if trace {
		sys.Obs.Tracer().Enable()
		traceSrc.Store(sys.Obs)
	}
	a := sys.AddStream("FLIGHTS", 40, 17)
	b := sys.AddStream("WEATHER", 25, 93)
	c := sys.AddStream("CHECKINS", 30, 55)
	sys.SetSelectivity(a, b, 0.01)
	sys.SetSelectivity(a, c, 0.02)
	sys.SetSelectivity(b, c, 0.005)

	// The first deployment fills the advertisement registry; the second,
	// overlapping it, shows reuse candidates inside the narrative.
	warm, err := sys.Deploy([]hnp.StreamID{a, b}, 9, hnp.AlgoTopDown)
	if err != nil {
		return err
	}
	fmt.Printf("=== warm-up deploy: FLIGHTS⋈WEATHER via top-down (cost %.4g) ===\n", warm.Cost)
	warm.ExplainTo(os.Stdout)

	plans := map[hnp.Algorithm]hnp.Deployment{}
	for _, algo := range []hnp.Algorithm{hnp.AlgoTopDown, hnp.AlgoBottomUp} {
		d, err := sys.Plan([]hnp.StreamID{a, b, c}, 9, algo)
		if err != nil {
			return err
		}
		plans[algo] = d
		fmt.Printf("\n=== FLIGHTS⋈WEATHER⋈CHECKINS via %v (cost %.4g) ===\n", algo, d.Cost)
		d.ExplainTo(os.Stdout)
	}

	// Migration demo: run the top-down plan in the IFLOW runtime, collapse
	// the CHECKINS rate at t=30s, replan, and apply the fresh plan as a
	// diff-based migration — operators both plans share keep running, only
	// the changed subtree churns, and the report quantifies what a full
	// teardown would have cost instead. The warm-up query runs too: the
	// 3-way plans consume its advertised FLIGHTS⋈WEATHER stream, so its
	// producer must be live.
	td := plans[hnp.AlgoTopDown]
	rt := iflow.New(g, iflow.DefaultConfig(), seed)
	rt.BindObs(sys.Obs) // migration counters land in the snapshot below
	const horizon = 60.0
	if err := rt.Deploy(warm.Query, warm.Plan, sys.Catalog, horizon); err != nil {
		return err
	}
	if err := rt.Deploy(td.Query, td.Plan, sys.Catalog, horizon); err != nil {
		return err
	}
	rt.RunFor(30)
	sys.Catalog.SetRate(c, 0.5)
	sys.Refresh()
	fresh, err := sys.Plan([]hnp.StreamID{a, b, c}, 9, hnp.AlgoTopDown)
	if err != nil {
		return err
	}
	rep, err := rt.Migrate(td.Query, fresh.Plan, sys.Catalog, horizon)
	if err != nil {
		return err
	}
	fmt.Printf("\n=== live migration at t=30s: CHECKINS collapses to 0.5 tuples/s, replan and diff ===\n")
	fmt.Printf("old: %s\nnew: %s\n%s\n", td.Plan, fresh.Plan, rep)

	// Closed-loop section: the same kind of drift, handled by the
	// adaptive controller instead of an operator at a keyboard. The
	// catalog now claims CHECKINS runs at 0.5 tuples/s while the live tap
	// still emits 30/s — exactly the observed-vs-assumed gap the
	// controller watches. Hand it the deployment and the rest of the
	// horizon: each control interval it measures windowed rates,
	// recalibrates the catalog, re-plans past the drift gate, and weighs
	// the predicted marginal byte gain against migration churn before
	// touching anything.
	ctl := adapt.New(rt, sys.Catalog, func(q *query.Query) (*query.PlanNode, error) {
		d, err := sys.Plan([]hnp.StreamID{a, b, c}, 9, hnp.AlgoTopDown)
		if err != nil {
			return nil, err
		}
		return d.Plan, nil
	}, adapt.DefaultConfig())
	ctl.BindObs(sys.Obs)
	ctl.Track(td.Query, fresh.Plan)
	ctl.OnMigrate = func(q *query.Query, old, new *query.PlanNode, mrep iflow.MigrationReport) {
		fmt.Printf("t=%-3.0fs controller migrated q%d: %s -> %s\n       %s\n",
			rt.Sim.Now(), q.ID, old, new, mrep)
	}
	fmt.Printf("\n=== closed-loop controller takes over, t=30..%.0fs ===\n", horizon)
	ctl.Run(horizon)
	rt.RunFor(horizon - rt.Sim.Now())
	st := ctl.Stats()
	fmt.Printf("checks=%d replans=%d migrations=%d suppressed=%d (deadband=%d hysteresis=%d cooldown=%d revert=%d)\n",
		st.Checks, st.Replans, st.Migrations, st.Suppressed(),
		st.SuppressedDeadband, st.SuppressedHysteresis, st.SuppressedCooldown, st.SuppressedRevert)
	fmt.Printf("predicted savings %.0f bytes/s; final plan %s\n",
		st.PredictedSavings, ctl.Plan(td.Query.ID))

	if err := explainRewrite(sys, a, b, c); err != nil {
		return err
	}

	if trace {
		evs := sys.Obs.Tracer().Snapshot()
		for _, qid := range []int{warm.Query.ID, td.Query.ID} {
			fmt.Printf("\n=== causal timeline: query %d ===\n", qid)
			if err := obs.RenderTimeline(os.Stdout, obs.FilterTrace(evs, obs.QueryTrace(qid))); err != nil {
				return err
			}
		}
	}

	fmt.Println("\n=== telemetry snapshot ===")
	return obs.TextSink{W: os.Stdout}.Emit(sys.Snapshot())
}

// explainRewrite narrates the logical optimizer pipeline: per-attribute
// schemas are declared for the three streams, a selective CQL statement
// is planned twice — pipeline on, then off via the kill switch — and the
// per-rule audit trace plus the planned bytes-on-wire both ways are
// printed. A contradictory statement closes the section, folding to a
// no-op plan instead of shipping tuples nobody can match.
func explainRewrite(sys *hnp.System, a, b, c hnp.StreamID) error {
	fmt.Println("\n=== logical optimizer: schema-aware predicate/projection pushdown ===")
	sys.SetSchema(a, hnp.Schema{
		{Name: "num", Width: 8}, {Name: "status", Width: 16},
		{Name: "origin", Width: 12}, {Name: "manifest", Width: 64},
	})
	sys.SetSchema(b, hnp.Schema{
		{Name: "city", Width: 8}, {Name: "temp", Width: 8}, {Name: "radar", Width: 84},
	})
	sys.SetSchema(c, hnp.Schema{
		{Name: "flight", Width: 8}, {Name: "status", Width: 16}, {Name: "passenger", Width: 76},
	})
	const stmt = `SELECT FLIGHTS.STATUS, WEATHER.TEMP FROM FLIGHTS, WEATHER ` +
		`WHERE FLIGHTS.NUM = WEATHER.CITY AND FLIGHTS.STATUS > 0.8 AND WEATHER.TEMP BETWEEN 0 AND 1`
	fmt.Printf("statement: %s\n", stmt)

	const sink = hnp.NodeID(9)
	on, err := sys.PlanCQL(stmt, sink, hnp.AlgoTopDown)
	if err != nil {
		return err
	}
	if on.Rewrite != nil {
		fmt.Println("rewrite trace:")
		for _, line := range strings.Split(on.Rewrite.TraceString(), "\n") {
			fmt.Printf("  %s\n", line)
		}
		fmt.Printf("planned source bytes: %.4g -> %.4g per unit time (%.4g saved)\n",
			on.Rewrite.BytesBefore, on.Rewrite.BytesAfter, on.Rewrite.BytesSaved())
	}

	hnp.SetPushdown(false)
	off, err := sys.PlanCQL(stmt, sink, hnp.AlgoTopDown)
	hnp.SetPushdown(true)
	if err != nil {
		return err
	}
	fmt.Printf("plan (pushdown on):  %s\n     cost %.4g, %.4g planned bytes/s on wire\n",
		on.Plan, on.Cost, on.Plan.PlannedBytes(sink))
	fmt.Printf("plan (pushdown off): %s\n     cost %.4g, %.4g planned bytes/s on wire\n",
		off.Plan, off.Cost, off.Plan.PlannedBytes(sink))

	empty, err := sys.PlanCQL(`SELECT FLIGHTS.STATUS FROM FLIGHTS `+
		`WHERE FLIGHTS.STATUS < 0.2 AND FLIGHTS.STATUS > 0.7`, sink, hnp.AlgoTopDown)
	if err != nil {
		return err
	}
	if empty.Rewrite != nil && empty.Rewrite.NoOp {
		fmt.Printf("contradictory WHERE folds to a no-op: plan=%s, nothing deployed\n", empty.Plan)
	}
	return nil
}

// serveDebug exposes expvar, pprof, a JSON telemetry snapshot, and the
// flight recorder (raw JSONL at /flight, causal timelines at
// /trace?query=N) in the background for the lifetime of the process.
func serveDebug(addr string) {
	obs.PublishExpvar("hnp", obs.Default)
	http.HandleFunc("/metrics", obs.MetricsHandler(obs.Default.Snapshot))
	tracer := func() *obs.Tracer { return traceSrc.Load().Tracer() }
	http.HandleFunc("/flight", obs.FlightHandler(tracer))
	http.HandleFunc("/trace", obs.TraceHandler(tracer))
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "smq: debug server: %v\n", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "smq: debug surface on http://%s (/debug/vars, /debug/pprof/, /metrics, /flight, /trace?query=N)\n", addr)
}
