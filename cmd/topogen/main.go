// Command topogen generates transit-stub network topologies (the GT-ITM
// model the paper evaluates on) and prints them as an edge list:
//
//	topogen -n 128 -seed 1
//
// Output lines are "a b cost delay", preceded by a comment header, so the
// topology can be piped into other tools or inspected by hand.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"hnp/internal/netgraph"
)

func main() {
	var (
		n       = flag.Int("n", 128, "total number of nodes")
		seed    = flag.Int64("seed", 1, "random seed")
		transit = flag.Int("transit", 4, "transit (backbone) domain size")
		stubs   = flag.Int("stubs", 4, "stub domains per transit node")
	)
	flag.Parse()

	cfg := netgraph.DefaultTransitStub(*n)
	cfg.TransitNodes = *transit
	cfg.StubsPerTransit = *stubs
	g, err := netgraph.TransitStub(cfg, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("# transit-stub topology, seed %d\n", *seed)
	if err := netgraph.WriteEdgeList(os.Stdout, g); err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}
}
