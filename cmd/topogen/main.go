// Command topogen generates transit-stub network topologies (the GT-ITM
// model the paper evaluates on) and prints them as an edge list:
//
//	topogen -n 128 -seed 1
//
// Output lines are "a b cost delay", preceded by a comment header, so the
// topology can be piped into other tools or inspected by hand.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"hnp/internal/netgraph"
)

func main() {
	var (
		n       = flag.Int("n", 128, "total number of nodes")
		seed    = flag.Int64("seed", 1, "random seed")
		transit = flag.Int("transit", 4, "transit (backbone) domain size")
		stubs   = flag.Int("stubs", 4, "stub domains per transit node")
	)
	flag.Parse()

	cfg := netgraph.DefaultTransitStub(*n)
	cfg.TransitNodes = *transit
	cfg.StubsPerTransit = *stubs
	g, err := netgraph.TransitStub(cfg, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "# transit-stub topology: %d nodes, %d links, seed %d\n",
		g.NumNodes(), g.NumLinks(), *seed)
	fmt.Fprintf(w, "# columns: nodeA nodeB costPerByte delaySeconds\n")
	for _, l := range g.Links() {
		fmt.Fprintf(w, "%d %d %.4f %.4f\n", l.A, l.B, l.Cost, l.Delay)
	}
}
