// Command smqbench is the ReqBench-style serving load harness. In its
// default in-process mode it runs the pinned serving scenarios
// (internal/serve.BenchScenarios) — each boots a sharded smqd in-process,
// replays a seed-deterministic synthesized trace (bursty arrivals,
// Zipf-skewed query mix, tenant multiplexing) through concurrent senders
// over real HTTP, and records p50/p95/p99 plan latency, deploys/sec and
// admission rejections into a benchfmt trajectory:
//
//	go run ./cmd/smqbench -o BENCH_serving.json
//	go run ./cmd/smqbench -compare BENCH_serving.json
//
// With -addr it instead drives an already-running external smqd with one
// custom trace, printing the collector's report (no trajectory file):
//
//	go run ./cmd/smqbench -addr http://127.0.0.1:8080 \
//	    -duration 30 -rate 100 -senders 8 -speedup 1
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"hnp/internal/benchfmt"
	"hnp/internal/serve"
	"hnp/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", "", "drive an external server at this base URL instead of the in-process scenarios")
		seed      = flag.Int64("seed", 7, "scenario/trace seed")
		outPath   = flag.String("o", "BENCH_serving.json", "trajectory output ('-' for stdout; in-process mode)")
		compare   = flag.String("compare", "", "baseline BENCH_serving.json to diff against; exit 3 on regression")
		threshold = flag.Float64("threshold", 0.25, "latency regression tolerance for -compare, as a fraction")

		// External-mode trace shape.
		duration = flag.Float64("duration", 10, "trace length in seconds (-addr mode)")
		rate     = flag.Float64("rate", 50, "mean arrival rate in events/sec (-addr mode)")
		senders  = flag.Int("senders", 8, "concurrent sender goroutines (-addr mode)")
		speedup  = flag.Float64("speedup", 1, "trace-time compression factor (-addr mode)")
		streams  = flag.Int("streams", 24, "catalog size the trace references (-addr mode; must match the server)")
		nodes    = flag.Int("nodes", 128, "sink range the trace draws from (-addr mode; must match the server)")
	)
	flag.Parse()

	if *addr != "" {
		tc := workload.DefaultTrace(*seed)
		tc.Duration = *duration
		tc.Rate = *rate
		names := make([]string, *streams)
		for i := range names {
			names[i] = fmt.Sprintf("stream-%d", i)
		}
		tr, err := workload.SynthesizeTrace(tc, names, *nodes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smqbench: %v\n", err)
			os.Exit(1)
		}
		rep, err := serve.RunLoad(*addr, tr, serve.LoadOptions{Senders: *senders, Speedup: *speedup})
		if err != nil {
			fmt.Fprintf(os.Stderr, "smqbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep)
		return
	}

	traj := benchfmt.Trajectory{
		Schema:    benchfmt.Schema,
		Tool:      "cmd/smqbench",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Seed:      *seed,
		Benchtime: "trace",
	}
	for _, sc := range serve.BenchScenarios(*seed) {
		res, rep, err := serve.RunBench(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smqbench: %s: %v\n", sc.Name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%-12s %s\n", sc.Name, rep)
		traj.Benchmarks = append(traj.Benchmarks, res)
	}
	if err := benchfmt.Write(*outPath, traj); err != nil {
		fmt.Fprintf(os.Stderr, "smqbench: %v\n", err)
		os.Exit(1)
	}
	if *outPath != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *outPath)
	}
	if *compare != "" {
		base, err := benchfmt.Load(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smqbench: -compare: %v\n", err)
			os.Exit(1)
		}
		if regressions := benchfmt.Diff(os.Stdout, base, traj, *threshold); regressions > 0 {
			fmt.Fprintf(os.Stderr, "smqbench: %d scenario(s) regressed vs %s\n", regressions, *compare)
			os.Exit(3)
		}
		fmt.Fprintf(os.Stderr, "smqbench: no regressions vs %s\n", *compare)
	}
}
