// Command smqd is the long-running query-serving daemon: it boots a
// sharded set of hnp.Systems over a seeded transit-stub topology and a
// synthesized stream catalog, then serves the CQL lifecycle over HTTP
// (see internal/serve for the endpoint and admission-control design).
//
//	go run ./cmd/smqd -addr :8080 -shards 4 -nodes 128 -max-cs 32
//
// Endpoints:
//
//	POST /deploy    {"cql": "SELECT * FROM stream-1, stream-4", "sink": 7,
//	                 "algo": "top-down", "tenant": "t0"}
//	POST /undeploy  ?id=N or {"id": N}
//	GET  /explain   ?id=N          annotated per-level planning trace
//	GET  /snapshot  [?shard=N]     serving + per-shard telemetry snapshots
//	GET  /metrics                  serving counters/gauges/histograms
//	GET  /flight    [?shard=N]     a shard's causal flight recorder
//	GET  /healthz
//
// Overloaded shards answer 429 with a Retry-After header (admission
// control); the rejection count is in /metrics as "serving.rejected".
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"hnp/internal/serve"
)

func main() {
	cfg := serve.DefaultConfig()
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		algoName = flag.String("algo", "top-down", "default planning algorithm (top-down, bottom-up, optimal, plan-then-deploy)")
	)
	flag.IntVar(&cfg.Shards, "shards", cfg.Shards, "independent planning shards")
	flag.IntVar(&cfg.Nodes, "nodes", cfg.Nodes, "network size per shard")
	flag.IntVar(&cfg.MaxCS, "max-cs", cfg.MaxCS, "max cluster size for the hierarchy")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "topology/catalog seed (identical on every shard)")
	flag.IntVar(&cfg.Streams, "streams", cfg.Streams, "synthesized catalog size")
	flag.IntVar(&cfg.MaxInFlight, "max-inflight", cfg.MaxInFlight, "in-flight plans per shard before 429s")
	flag.Int64Var(&cfg.MaxBody, "max-body", cfg.MaxBody, "request body limit in bytes")
	flag.BoolVar(&cfg.FlightRecorder, "flight", cfg.FlightRecorder, "arm per-shard flight recorders")
	flag.Parse()

	algo, ok := serve.ParseAlgo(*algoName)
	if !ok {
		fmt.Fprintf(os.Stderr, "smqd: unknown -algo %q\n", *algoName)
		os.Exit(2)
	}
	cfg.DefaultAlgo = algo

	s, err := serve.NewServer(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smqd: %v\n", err)
		os.Exit(1)
	}
	log.Printf("smqd: serving on http://%s (%d shards × %d nodes, max_cs=%d, %d streams, %d in-flight plans/shard)",
		*addr, cfg.Shards, cfg.Nodes, cfg.MaxCS, cfg.Streams, cfg.MaxInFlight)
	log.Fatal(http.ListenAndServe(*addr, s))
}
