// Command cqlsh is an interactive shell for the stream-query optimizer:
// it builds a transit-stub network and its clustering hierarchy, lets you
// register streams, and deploys SQL-like continuous queries, printing the
// chosen plan, its cost, and the search-space size.
//
//	$ go run ./cmd/cqlsh -nodes 64 -maxcs 16
//	> stream FLIGHTS 60 12
//	> stream CHECK-INS 45 13
//	> sel FLIGHTS CHECK-INS 0.004
//	> deploy 14 td SELECT * FROM FLIGHTS, CHECK-INS \
//	       WHERE FLIGHTS.NUM = CHECK-INS.FLNUM
//	plan: (s[0]@12 ⋈@13 s[1]@13)   cost: 22.8   plans examined: 48
//
// Lines ending in '\' continue on the next line. Type help for commands.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hnp"
)

func main() {
	var (
		nodes = flag.Int("nodes", 64, "network size")
		maxCS = flag.Int("maxcs", 16, "max cluster size")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	g := hnp.TransitStubNetwork(*nodes, *seed)
	sys, err := hnp.NewSystem(g, *maxCS, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cqlsh: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("hnp cqlsh — %d-node transit-stub network, max_cs %d. Type help.\n", *nodes, *maxCS)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() > 0 {
			fmt.Print("... ")
		} else {
			fmt.Print("> ")
		}
	}
	for prompt(); sc.Scan(); prompt() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasSuffix(line, `\`) {
			pending.WriteString(strings.TrimSuffix(line, `\`))
			pending.WriteByte(' ')
			continue
		}
		pending.WriteString(line)
		cmd := strings.TrimSpace(pending.String())
		pending.Reset()
		if cmd == "" {
			continue
		}
		if cmd == "quit" || cmd == "exit" {
			return
		}
		if err := execute(sys, cmd); err != nil {
			fmt.Printf("error: %v\n", err)
		}
	}
}

func execute(sys *hnp.System, cmd string) error {
	fields := strings.Fields(cmd)
	switch strings.ToLower(fields[0]) {
	case "help":
		fmt.Print(`commands:
  stream NAME RATE NODE          register a base stream
  sel NAME1 NAME2 SELECTIVITY    set a pairwise join selectivity
  deploy SINK ALGO SELECT ...    deploy a query (algo: td | bu | opt | ptd)
  plan SINK ALGO SELECT ...      plan without deploying (what-if)
  penalty ALPHA                  enable load-aware planning
  load NODE RATE                 add background load to a node
  ads                            list advertised derived streams
  quit
`)
		return nil
	case "stream":
		if len(fields) != 4 {
			return fmt.Errorf("usage: stream NAME RATE NODE")
		}
		rate, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return err
		}
		node, err := strconv.Atoi(fields[3])
		if err != nil {
			return err
		}
		if node < 0 || node >= sys.Graph.NumNodes() {
			return fmt.Errorf("node %d out of range", node)
		}
		id := sys.AddStream(strings.ToUpper(fields[1]), rate, hnp.NodeID(node))
		fmt.Printf("stream %s registered as #%d at node %d\n", strings.ToUpper(fields[1]), id, node)
		return nil
	case "sel":
		if len(fields) != 4 {
			return fmt.Errorf("usage: sel NAME1 NAME2 SELECTIVITY")
		}
		a, err := lookup(sys, fields[1])
		if err != nil {
			return err
		}
		b, err := lookup(sys, fields[2])
		if err != nil {
			return err
		}
		s, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return err
		}
		sys.SetSelectivity(a, b, s)
		return nil
	case "penalty":
		if len(fields) != 2 {
			return fmt.Errorf("usage: penalty ALPHA")
		}
		alpha, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return err
		}
		sys.SetLoadPenalty(alpha)
		fmt.Printf("load penalty alpha = %g\n", alpha)
		return nil
	case "load":
		if len(fields) != 3 {
			return fmt.Errorf("usage: load NODE RATE")
		}
		node, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		rate, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return err
		}
		sys.AddLoad(hnp.NodeID(node), rate)
		return nil
	case "ads":
		all := sys.Registry.All()
		if len(all) == 0 {
			fmt.Println("(no advertisements)")
		}
		for _, ad := range all {
			fmt.Printf("  [%s] at node %d (rate %.2f, query %d)\n", ad.Sig, ad.Node, ad.Rate, ad.QueryID)
		}
		return nil
	case "deploy", "plan":
		if len(fields) < 4 {
			return fmt.Errorf("usage: %s SINK ALGO SELECT ...", fields[0])
		}
		sink, err := strconv.Atoi(fields[1])
		if err != nil || sink < 0 || sink >= sys.Graph.NumNodes() {
			return fmt.Errorf("bad sink %q", fields[1])
		}
		algo, err := parseAlgo(fields[2])
		if err != nil {
			return err
		}
		stmt := strings.Join(fields[3:], " ")
		var d hnp.Deployment
		if strings.EqualFold(fields[0], "deploy") {
			d, err = sys.DeployCQL(stmt, hnp.NodeID(sink), algo)
		} else {
			// What-if: parse through the same path, then discard by using
			// Plan-level API (no advertisement). DeployCQL always
			// advertises, so reuse Plan on a parsed statement instead.
			d, err = planCQL(sys, stmt, hnp.NodeID(sink), algo)
		}
		if err != nil {
			return err
		}
		fmt.Printf("plan: %s\ncost: %.2f per unit time   plans examined: %.0f\n",
			d.Plan, d.Cost, d.PlansConsidered)
		return nil
	}
	return fmt.Errorf("unknown command %q (try help)", fields[0])
}

func lookup(sys *hnp.System, name string) (hnp.StreamID, error) {
	want := strings.ToUpper(name)
	for i := 0; i < sys.Catalog.NumStreams(); i++ {
		if sys.Catalog.Stream(hnp.StreamID(i)).Name == want {
			return hnp.StreamID(i), nil
		}
	}
	return 0, fmt.Errorf("unknown stream %q", name)
}

func parseAlgo(s string) (hnp.Algorithm, error) {
	switch strings.ToLower(s) {
	case "td", "topdown", "top-down":
		return hnp.AlgoTopDown, nil
	case "bu", "bottomup", "bottom-up":
		return hnp.AlgoBottomUp, nil
	case "opt", "optimal":
		return hnp.AlgoOptimal, nil
	case "ptd", "plan-then-deploy":
		return hnp.AlgoPlanThenDeploy, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (td|bu|opt|ptd)", s)
}

func planCQL(sys *hnp.System, stmt string, sink hnp.NodeID, algo hnp.Algorithm) (hnp.Deployment, error) {
	return sys.PlanCQL(stmt, sink, algo)
}
