// Command chaos runs the seed-deterministic fault/churn harness against
// the full stack: for each seed it builds a transit-stub network, its
// clustering hierarchy, and a query workload, then drives a randomized
// adversarial schedule — node crashes and recoveries, link-cost drift,
// query arrival/teardown, stream-rate shifts — through the planners and
// the IFLOW runtime, checking every cross-stack invariant after every
// event.
//
//	$ go run ./cmd/chaos -seeds 20 -events 200
//	$ go run ./cmd/chaos -migrate -seeds 10 -events 300
//	$ go run ./cmd/chaos -seed0 42 -seeds 1 -events 500 -v
//	$ go run ./cmd/chaos -adapt -seed0 3 -seeds 1
//
// With -migrate the schedule also re-plans deployed queries and applies
// the fresh plans as diff-based migrations (iflow.Migrate): shared
// operators keep running, only changed subtrees churn, and the invariants
// additionally police sink-statistic carry-over across migrations.
//
// With -adapt each seed switches to the rate-shift profile and runs the
// closed-loop re-optimization comparison: the same event schedule is
// replayed under never-migrate, always-remigrate, and the gated
// controller, printing total bytes for each. A controller oscillation
// (A→B→A plan flap) or an invariant violation fails the run; with
// -strict the controller must also strictly beat both baselines on
// bytes, which holds on the pinned validation seeds (3, 6, 8, 9).
//
// A violation prints the offending seed and its full replayable event
// trace, dumps the flight recorder's causal event history (the decision
// chain behind the failure) to <flight-dir>/chaos-flight-seed<N>.jsonl,
// and exits non-zero; re-running with -seed0 <seed> -seeds 1 reproduces
// the identical run, event for event.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hnp/internal/chaos"
	"hnp/internal/obs"
)

func main() {
	var (
		seeds     = flag.Int("seeds", 20, "number of consecutive seeds to run")
		seed0     = flag.Int64("seed0", 1, "first seed")
		events    = flag.Int("events", 200, "events per run")
		nodes     = flag.Int("nodes", 24, "network size")
		maxcs     = flag.Int("maxcs", 6, "hierarchy cluster size cap")
		streams   = flag.Int("streams", 8, "base streams in the catalog")
		queries   = flag.Int("queries", 10, "query pool size")
		step      = flag.Float64("step", 0.4, "mean virtual seconds between events")
		migrate   = flag.Bool("migrate", false, "add plan-migration churn: deployed queries are re-planned and diff-migrated in place")
		adapt     = flag.Bool("adapt", false, "run the rate-shift adaptation comparison: never-migrate vs always-remigrate vs gated controller on a shared schedule")
		strict    = flag.Bool("strict", false, "with -adapt, fail unless the controller strictly beats both baselines on total bytes")
		verbose   = flag.Bool("v", false, "print every run's event trace")
		flightDir = flag.String("flight-dir", ".", "directory for flight-recorder JSONL dumps on invariant violations")
	)
	flag.Parse()

	if *adapt {
		os.Exit(runAdapt(*seed0, *seeds, *strict, *flightDir))
	}

	failures := 0
	for i := 0; i < *seeds; i++ {
		cfg := chaos.DefaultConfig(*seed0 + int64(i))
		cfg.Events = *events
		cfg.Nodes = *nodes
		cfg.MaxCS = *maxcs
		cfg.Streams = *streams
		cfg.Queries = *queries
		cfg.MeanStep = *step
		cfg.Migrate = *migrate

		w, err := chaos.New(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: build failed: %v\n", cfg.Seed, err)
			os.Exit(2)
		}
		rep, err := w.Run()
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL %v\ntrace:\n%s\n", err, rep.TraceString())
			dumpFlight(*flightDir, cfg.Seed, rep.Flight)
			continue
		}
		fmt.Printf("seed %-4d ok  events=%d %s transferred=%d delivered=%d dropped=%d deployed=%d cost=%.1f\n",
			rep.Seed, rep.Events, countString(rep.Counts),
			rep.Stats.TuplesTransferred, rep.Delivered, rep.Stats.TuplesDropped,
			rep.Deployed, rep.Stats.TotalCost)
		if *verbose {
			fmt.Println(rep.TraceString())
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d/%d seeds violated invariants\n", failures, *seeds)
		os.Exit(1)
	}
}

// runAdapt replays each seed's rate-shift schedule under the three
// migration policies and reports the byte totals side by side. Returns
// the process exit code: non-zero on invariant violations, controller
// oscillation, or (with strict) a failure to beat either baseline.
func runAdapt(seed0 int64, seeds int, strict bool, flightDir string) int {
	failures := 0
	for i := 0; i < seeds; i++ {
		cfg := chaos.RateShiftConfig(seed0 + int64(i))
		out, err := chaos.CompareAdaptPolicies(cfg)
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL seed %d: %v\n", cfg.Seed, err)
			// The last outcome with a flight is the run that failed.
			for j := len(out) - 1; j >= 0; j-- {
				if len(out[j].Report.Flight) > 0 {
					dumpFlight(flightDir, cfg.Seed, out[j].Report.Flight)
					break
				}
			}
			continue
		}
		never, always, ctl := out[0], out[1], out[2]
		verdict := "ok"
		switch {
		case ctl.Report.Oscillations != 0:
			verdict = "OSCILLATED"
			failures++
		case ctl.Bytes() < never.Bytes() && ctl.Bytes() < always.Bytes():
			verdict = "win"
		default:
			verdict = "no-win"
			if strict {
				failures++
			}
		}
		fmt.Printf("seed %-4d %-10s never=%.0f always=%.0f controller=%.0f migrations=%d suppressed=%d\n",
			cfg.Seed, verdict, never.Bytes(), always.Bytes(), ctl.Bytes(),
			ctl.Report.Adapt.Migrations, ctl.Report.Adapt.Suppressed())
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d/%d adapt seeds failed\n", failures, seeds)
		return 1
	}
	return 0
}

// dumpFlight writes a violated run's flight-recorder history as JSONL so
// the causal chain behind the failure survives the process (CI uploads
// these as artifacts).
func dumpFlight(dir string, seed int64, events []obs.Event) {
	if len(events) == 0 {
		return
	}
	path := fmt.Sprintf("%s/chaos-flight-seed%d.jsonl", dir, seed)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: flight dump: %v\n", err)
		return
	}
	defer f.Close()
	if err := obs.WriteEventsJSONL(f, events); err != nil {
		fmt.Fprintf(os.Stderr, "chaos: flight dump: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "flight recorder dumped to %s (%d events)\n", path, len(events))
}

func countString(counts map[string]int) string {
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	s := ""
	for _, k := range kinds {
		s += fmt.Sprintf("%s=%d ", k, counts[k])
	}
	if len(s) > 0 {
		s = s[:len(s)-1]
	}
	return s
}
