// Command chaos runs the seed-deterministic fault/churn harness against
// the full stack: for each seed it builds a transit-stub network, its
// clustering hierarchy, and a query workload, then drives a randomized
// adversarial schedule — node crashes and recoveries, link-cost drift,
// query arrival/teardown, stream-rate shifts — through the planners and
// the IFLOW runtime, checking every cross-stack invariant after every
// event.
//
//	$ go run ./cmd/chaos -seeds 20 -events 200
//	$ go run ./cmd/chaos -migrate -seeds 10 -events 300
//	$ go run ./cmd/chaos -seed0 42 -seeds 1 -events 500 -v
//
// With -migrate the schedule also re-plans deployed queries and applies
// the fresh plans as diff-based migrations (iflow.Migrate): shared
// operators keep running, only changed subtrees churn, and the invariants
// additionally police sink-statistic carry-over across migrations.
//
// A violation prints the offending seed and its full replayable event
// trace and exits non-zero; re-running with -seed0 <seed> -seeds 1
// reproduces the identical run, event for event.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hnp/internal/chaos"
)

func main() {
	var (
		seeds   = flag.Int("seeds", 20, "number of consecutive seeds to run")
		seed0   = flag.Int64("seed0", 1, "first seed")
		events  = flag.Int("events", 200, "events per run")
		nodes   = flag.Int("nodes", 24, "network size")
		maxcs   = flag.Int("maxcs", 6, "hierarchy cluster size cap")
		streams = flag.Int("streams", 8, "base streams in the catalog")
		queries = flag.Int("queries", 10, "query pool size")
		step    = flag.Float64("step", 0.4, "mean virtual seconds between events")
		migrate = flag.Bool("migrate", false, "add plan-migration churn: deployed queries are re-planned and diff-migrated in place")
		verbose = flag.Bool("v", false, "print every run's event trace")
	)
	flag.Parse()

	failures := 0
	for i := 0; i < *seeds; i++ {
		cfg := chaos.DefaultConfig(*seed0 + int64(i))
		cfg.Events = *events
		cfg.Nodes = *nodes
		cfg.MaxCS = *maxcs
		cfg.Streams = *streams
		cfg.Queries = *queries
		cfg.MeanStep = *step
		cfg.Migrate = *migrate

		w, err := chaos.New(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: build failed: %v\n", cfg.Seed, err)
			os.Exit(2)
		}
		rep, err := w.Run()
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL %v\ntrace:\n%s\n", err, rep.TraceString())
			continue
		}
		fmt.Printf("seed %-4d ok  events=%d %s transferred=%d delivered=%d dropped=%d deployed=%d cost=%.1f\n",
			rep.Seed, rep.Events, countString(rep.Counts),
			rep.Stats.TuplesTransferred, rep.Delivered, rep.Stats.TuplesDropped,
			rep.Deployed, rep.Stats.TotalCost)
		if *verbose {
			fmt.Println(rep.TraceString())
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d/%d seeds violated invariants\n", failures, *seeds)
		os.Exit(1)
	}
}

func countString(counts map[string]int) string {
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	s := ""
	for _, k := range kinds {
		s += fmt.Sprintf("%s=%d ", k, counts[k])
	}
	if len(s) > 0 {
		s = s[:len(s)-1]
	}
	return s
}
