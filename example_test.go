package hnp_test

import (
	"fmt"

	"hnp"
)

// Deploying a three-way join: the optimizer picks a bushy join order and
// operator placements jointly.
func ExampleSystem_Deploy() {
	g := hnp.TransitStubNetwork(64, 1)
	sys, _ := hnp.NewSystem(g, 8, 1)
	orders := sys.AddStream("ORDERS", 80, 10)
	inventory := sys.AddStream("INVENTORY", 35, 33)
	sys.SetSelectivity(orders, inventory, 0.004)

	d, _ := sys.Deploy([]hnp.StreamID{orders, inventory}, 7, hnp.AlgoTopDown)
	fmt.Println(d.Plan)
	// Output: (s[0]@10 ⋈@10 s[1]@33)
}

// Queries can be written in the paper's SQL-like syntax; predicates join
// the signature, so operators computed under different predicates never
// alias and stricter queries reuse weaker ones via residual filters.
func ExampleSystem_DeployCQL() {
	g := hnp.TransitStubNetwork(64, 1)
	sys, _ := hnp.NewSystem(g, 8, 1)
	sys.AddStream("FLIGHTS", 60, 12)
	sys.AddStream("CHECK-INS", 45, 13)

	d, err := sys.DeployCQL(`SELECT FLIGHTS.STATUS, CHECK-INS.STATUS
	                         FROM FLIGHTS, CHECK-INS
	                         WHERE FLIGHTS.NUM = CHECK-INS.FLNUM
	                           AND FLIGHTS.DP_TIME < 0.5`, 14, hnp.AlgoTopDown)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(d.Query.K(), "streams,", len(d.Plan.Operators()), "operator")
	// Output: 2 streams, 1 operator
}

// Comparing the search spaces: the hierarchical algorithms examine a tiny
// fraction of the exhaustive joint space (Lemma 1) at near-optimal cost.
func ExampleSystem_Plan() {
	g := hnp.TransitStubNetwork(128, 1)
	sys, _ := hnp.NewSystem(g, 32, 1)
	a := sys.AddStream("A", 50, 3)
	b := sys.AddStream("B", 40, 60)
	c := sys.AddStream("C", 30, 100)
	sys.SetSelectivity(a, b, 0.01)
	sys.SetSelectivity(a, c, 0.01)
	sys.SetSelectivity(b, c, 0.01)

	td, _ := sys.Plan([]hnp.StreamID{a, b, c}, 9, hnp.AlgoTopDown)
	opt, _ := sys.Plan([]hnp.StreamID{a, b, c}, 9, hnp.AlgoOptimal)
	fmt.Printf("top-down examined %.4f%% of the exhaustive space\n",
		100*td.PlansConsidered/opt.PlansConsidered)
	fmt.Println("within optimal:", td.Cost <= opt.Cost*1.25)
	// Output:
	// top-down examined 0.1709% of the exhaustive space
	// within optimal: true
}
