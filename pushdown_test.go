package hnp

import (
	"errors"
	"strings"
	"testing"

	"hnp/internal/iflow"
	"hnp/internal/query"
)

// newSchemaSystem builds the figure-workload system with full attribute
// schemas declared: three 100-byte streams whose columns split so that
// typical projections prune most of the payload (FLIGHTS.MANIFEST,
// WEATHER.RADAR, CHECKINS.PASSENGER are the wide blobs).
func newSchemaSystem(t testing.TB) (*System, NodeID) {
	t.Helper()
	g := TransitStubNetwork(64, 3)
	sys, err := NewSystem(g, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	fl := sys.AddStream("FLIGHTS", 40, 17)
	we := sys.AddStream("WEATHER", 25, 41)
	ck := sys.AddStream("CHECKINS", 30, 55)
	sys.SetSelectivity(fl, we, 0.01)
	sys.SetSelectivity(fl, ck, 0.02)
	sys.SetSelectivity(we, ck, 0.005)
	sys.SetSchema(fl, Schema{
		{Name: "num", Width: 8}, {Name: "status", Width: 16},
		{Name: "origin", Width: 12}, {Name: "manifest", Width: 64},
	})
	sys.SetSchema(we, Schema{
		{Name: "city", Width: 8}, {Name: "temp", Width: 8}, {Name: "radar", Width: 84},
	})
	sys.SetSchema(ck, Schema{
		{Name: "flight", Width: 8}, {Name: "status", Width: 16}, {Name: "passenger", Width: 76},
	})
	return sys, 9
}

// The statement grid: selective/projecting queries where the pipeline
// should bite, in two- and three-way forms.
var pushdownStatements = []string{
	`SELECT FLIGHTS.STATUS, WEATHER.TEMP FROM FLIGHTS, WEATHER
	 WHERE FLIGHTS.NUM = WEATHER.CITY AND FLIGHTS.STATUS > 0.8`,
	`SELECT FLIGHTS.NUM, CHECKINS.STATUS FROM FLIGHTS, WEATHER, CHECKINS
	 WHERE FLIGHTS.NUM = WEATHER.CITY AND FLIGHTS.NUM = CHECKINS.FLIGHT
	   AND CHECKINS.STATUS < 0.4`,
	`SELECT WEATHER.TEMP FROM FLIGHTS, WEATHER
	 WHERE FLIGHTS.NUM = WEATHER.CITY`,
	`SELECT * FROM FLIGHTS, WEATHER
	 WHERE FLIGHTS.NUM = WEATHER.CITY AND FLIGHTS.STATUS > 0.9`,
}

// TestPushdownPlannedBytesMonotonic: for every statement and every
// planner, the pipeline never plans more bytes-on-wire than planning the
// same statement with the pipeline killed, and across the grid it saves
// strictly — the acceptance property "planned bytes are never higher with
// the pipeline on".
func TestPushdownPlannedBytesMonotonic(t *testing.T) {
	t.Cleanup(func() { SetPushdown(true) })
	algos := []Algorithm{AlgoTopDown, AlgoBottomUp, AlgoOptimal, AlgoPlanThenDeploy}
	var sumOn, sumOff float64
	for _, algo := range algos {
		for si, stmt := range pushdownStatements {
			sys, sink := newSchemaSystem(t)

			SetPushdown(true)
			on, err := sys.PlanCQL(stmt, sink, algo)
			if err != nil {
				t.Fatalf("%v stmt %d (on): %v", algo, si, err)
			}
			SetPushdown(false)
			off, err := sys.PlanCQL(stmt, sink, algo)
			if err != nil {
				t.Fatalf("%v stmt %d (off): %v", algo, si, err)
			}

			if on.Rewrite == nil {
				t.Fatalf("%v stmt %d: pipeline on but no rewrite audit", algo, si)
			}
			if off.Rewrite != nil {
				t.Fatalf("%v stmt %d: pipeline off yet rewrite ran", algo, si)
			}
			if on.Rewrite.BytesAfter > on.Rewrite.BytesBefore+1e-9 {
				t.Errorf("%v stmt %d: rewrite grew source bytes %g → %g",
					algo, si, on.Rewrite.BytesBefore, on.Rewrite.BytesAfter)
			}
			bOn := on.Plan.PlannedBytes(sink)
			bOff := off.Plan.PlannedBytes(sink)
			if bOn > bOff+1e-6 {
				t.Errorf("%v stmt %d: pipeline increased planned wire bytes %g → %g\non:  %s\noff: %s",
					algo, si, bOff, bOn, on.Plan, off.Plan)
			}
			sumOn += bOn
			sumOff += bOff
		}
	}
	if sumOn >= sumOff {
		t.Errorf("pipeline never reduced planned bytes across the grid: %g on vs %g off", sumOn, sumOff)
	}
	t.Logf("planned wire bytes across %d plans: %.4g (on) vs %.4g (off), %.1f%% saved",
		len(algos)*len(pushdownStatements), sumOn, sumOff, 100*(1-sumOn/sumOff))
}

// TestPushdownIdentityPlans: predicate-free full-projection statements
// must produce bit-identical plans and placements whether the pipeline is
// on or off — the rewrite rules have nothing to do, and doing nothing must
// be byte-for-byte nothing.
func TestPushdownIdentityPlans(t *testing.T) {
	t.Cleanup(func() { SetPushdown(true) })
	stmts := []string{
		`SELECT * FROM FLIGHTS, WEATHER WHERE FLIGHTS.NUM = WEATHER.CITY`,
		`SELECT * FROM FLIGHTS, WEATHER, CHECKINS
		 WHERE FLIGHTS.NUM = WEATHER.CITY AND FLIGHTS.NUM = CHECKINS.FLIGHT`,
	}
	for _, algo := range []Algorithm{AlgoTopDown, AlgoBottomUp, AlgoOptimal, AlgoPlanThenDeploy} {
		for si, stmt := range stmts {
			sys, sink := newSchemaSystem(t)
			SetPushdown(true)
			on, err := sys.PlanCQL(stmt, sink, algo)
			if err != nil {
				t.Fatalf("%v stmt %d (on): %v", algo, si, err)
			}
			SetPushdown(false)
			off, err := sys.PlanCQL(stmt, sink, algo)
			if err != nil {
				t.Fatalf("%v stmt %d (off): %v", algo, si, err)
			}
			if onS, offS := on.Plan.String(), off.Plan.String(); onS != offS {
				t.Errorf("%v stmt %d: identity plan diverged\non:  %s\noff: %s", algo, si, onS, offS)
			}
			if on.Cost != off.Cost {
				t.Errorf("%v stmt %d: identity cost diverged %g vs %g", algo, si, on.Cost, off.Cost)
			}
			if on.Rewrite != nil && on.Rewrite.RulesApplied != 0 {
				t.Errorf("%v stmt %d: %d rules fired on an identity query", algo, si, on.Rewrite.RulesApplied)
			}
		}
	}
}

// TestPushdownContradiction: a provably-empty WHERE folds to a no-op with
// the pipeline on — nil plan, nothing advertised or loaded — and is
// rejected outright with the pipeline off (the pre-pipeline behavior).
func TestPushdownContradiction(t *testing.T) {
	t.Cleanup(func() { SetPushdown(true) })
	stmt := `SELECT FLIGHTS.STATUS FROM FLIGHTS
	         WHERE FLIGHTS.STATUS < 0.2 AND FLIGHTS.STATUS > 0.7`
	sys, sink := newSchemaSystem(t)
	d, err := sys.DeployCQL(stmt, sink, AlgoTopDown)
	if err != nil {
		t.Fatalf("contradiction should fold, not fail: %v", err)
	}
	if d.Plan != nil {
		t.Fatalf("no-op query got a plan: %s", d.Plan)
	}
	if d.Rewrite == nil || !d.Rewrite.NoOp {
		t.Fatalf("rewrite audit = %+v, want NoOp", d.Rewrite)
	}
	if d.Rewrite.BytesSaved() <= 0 {
		t.Errorf("folding an entire query saved %g bytes", d.Rewrite.BytesSaved())
	}
	if got := d.Plan.String(); !strings.Contains(got, "empty") {
		t.Errorf("nil plan renders %q", got)
	}
	if n := sys.Undeploy(d); n != 0 {
		t.Errorf("no-op deployment advertised %d streams", n)
	}

	SetPushdown(false)
	if _, err := sys.DeployCQL(stmt, sink, AlgoTopDown); !errors.Is(err, query.ErrContradiction) {
		t.Fatalf("pipeline off: err = %v, want ErrContradiction", err)
	}
}

// stripPlanWidths deep-copies a plan with every width zeroed: the same
// tree as the pre-width planner would have deployed it.
func stripPlanWidths(p *PlanNode) *PlanNode {
	if p == nil {
		return nil
	}
	cp := *p
	cp.Width = 0
	if p.In != nil {
		in := *p.In
		in.Width = 0
		cp.In = &in
	}
	cp.L = stripPlanWidths(p.L)
	cp.R = stripPlanWidths(p.R)
	return &cp
}

// TestPushdownFlowEquivalence is the end-to-end semantic-preservation
// property, asserted via the IFLOW transport ledger across pinned seeds:
//
//  1. The optimized plan and its width-stripped twin (the identical tree
//     as an unoptimized runtime would host it) deliver exactly the same
//     tuples to the sink — pruning changes bytes per tuple, never which
//     tuples flow.
//  2. The optimized plan moves strictly fewer bytes than planning the
//     same statement with the pipeline killed — the measurable
//     bytes-on-wire reduction, on the wire rather than on paper.
func TestPushdownFlowEquivalence(t *testing.T) {
	t.Cleanup(func() { SetPushdown(true) })
	stmt := pushdownStatements[0]
	for _, seed := range []int64{1, 7, 42} {
		sys, sink := newSchemaSystem(t)
		SetPushdown(true)
		on, err := sys.PlanCQL(stmt, sink, AlgoTopDown)
		if err != nil {
			t.Fatal(err)
		}
		SetPushdown(false)
		off, err := sys.PlanCQL(stmt, sink, AlgoTopDown)
		if err != nil {
			t.Fatal(err)
		}

		deploy := func(q *Query, plan *PlanNode) *iflow.Runtime {
			rt := iflow.New(sys.Graph, iflow.DefaultConfig(), 1000+seed)
			if err := rt.Deploy(q, plan, sys.Catalog, 80); err != nil {
				t.Fatalf("seed %d: deploy: %v", seed, err)
			}
			rt.RunFor(80)
			if err := rt.CheckInvariants(nil); err != nil {
				t.Fatalf("seed %d: invariants: %v", seed, err)
			}
			return rt
		}

		rtOn := deploy(on.Query, on.Plan)
		rtTwin := deploy(on.Query, stripPlanWidths(on.Plan))
		rtOff := deploy(off.Query, off.Plan)

		sOn, sTwin, sOff := rtOn.Sink(on.Query.ID), rtTwin.Sink(on.Query.ID), rtOff.Sink(off.Query.ID)
		if sOn.Tuples == 0 || sOff.Tuples == 0 {
			t.Fatalf("seed %d: vacuous run: on=%d off=%d tuples", seed, sOn.Tuples, sOff.Tuples)
		}
		if sOn.Tuples != sTwin.Tuples {
			t.Errorf("seed %d: pruning changed delivered tuples: %d vs %d (twin)", seed, sOn.Tuples, sTwin.Tuples)
		}
		if rtOn.TuplesTransferred != rtTwin.TuplesTransferred {
			t.Errorf("seed %d: pruning changed transfer counts: %d vs %d (twin)",
				seed, rtOn.TuplesTransferred, rtTwin.TuplesTransferred)
		}
		if rtOn.TotalBytes >= rtOff.TotalBytes {
			t.Errorf("seed %d: pipeline on moved %g bytes, off moved %g — no wire reduction",
				seed, rtOn.TotalBytes, rtOff.TotalBytes)
		}
	}
}

// TestRewriteTelemetry: the pipeline's obs counters and the bytes-saved
// gauge accumulate per planned query when telemetry is on.
func TestRewriteTelemetry(t *testing.T) {
	EnableTelemetry()
	t.Cleanup(DisableTelemetry)
	t.Cleanup(func() { SetPushdown(true) })
	sys, sink := newSchemaSystem(t)
	if _, err := sys.PlanCQL(pushdownStatements[0], sink, AlgoTopDown); err != nil {
		t.Fatal(err)
	}
	snap := sys.Snapshot()
	if got := snap.Counter("rewrite.rules_applied"); got <= 0 {
		t.Errorf("rewrite.rules_applied = %d", got)
	}
	if got := snap.Gauge("rewrite.bytes_saved"); got <= 0 {
		t.Errorf("rewrite.bytes_saved = %g", got)
	}
}
