package hnp

import (
	"runtime"
	"sync"
	"testing"
)

// TestPlanAllocatesUniqueQueryIDs is the regression test for the
// duplicate-ID bug: consecutive what-if plans used to share s.nextQuery
// without advancing it, so two Plan calls produced queries with the same
// ID.
func TestPlanAllocatesUniqueQueryIDs(t *testing.T) {
	sys, ids := newTestSystem(t)
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		d, err := sys.Plan(ids, 9, AlgoTopDown)
		if err != nil {
			t.Fatal(err)
		}
		if seen[d.Query.ID] {
			t.Fatalf("plan %d reused query ID %d", i, d.Query.ID)
		}
		seen[d.Query.ID] = true
	}
	// Mixed Plan / Deploy / PlanCQL traffic keeps IDs unique too.
	d, err := sys.Deploy(ids, 9, AlgoTopDown)
	if err != nil {
		t.Fatal(err)
	}
	if seen[d.Query.ID] {
		t.Fatalf("deploy reused query ID %d", d.Query.ID)
	}
	seen[d.Query.ID] = true
	p, err := sys.PlanCQL("SELECT * FROM A, B WHERE A.X = B.X", 9, AlgoTopDown)
	if err != nil {
		t.Fatal(err)
	}
	if seen[p.Query.ID] {
		t.Fatalf("PlanCQL reused query ID %d", p.Query.ID)
	}
}

// TestConcurrentDeploy drives the System's concurrency contract: many
// goroutines deploying against one System must be data-race-free (run
// under -race), produce unique query IDs, and leave the registry and load
// ledger consistent.
func TestConcurrentDeploy(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	sys, ids := newTestSystem(t)
	sys.SetLoadPenalty(0.01) // exercise the tracker-backed penalty path too

	const (
		goroutines = 8
		perG       = 4
	)
	var wg sync.WaitGroup
	idCh := make(chan int, goroutines*perG)
	errCh := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sink := NodeID((g*7 + i*3) % sys.Graph.NumNodes())
				d, err := sys.Deploy(ids, sink, AlgoTopDown)
				if err != nil {
					errCh <- err
					return
				}
				idCh <- d.Query.ID
			}
		}()
	}
	wg.Wait()
	close(idCh)
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	n := 0
	for id := range idCh {
		if seen[id] {
			t.Fatalf("duplicate query ID %d across concurrent deploys", id)
		}
		seen[id] = true
		n++
	}
	if n != goroutines*perG {
		t.Fatalf("%d deployments succeeded, want %d", n, goroutines*perG)
	}
	if sys.Registry.Len() == 0 {
		t.Fatal("no advertisements after concurrent deploys")
	}
}

// TestConcurrentPlanWithRefresh interleaves what-if planning with Refresh
// after graph mutations: the snapshot swap must never race in-flight
// planners.
func TestConcurrentPlanWithRefresh(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	sys, ids := newTestSystem(t)
	links := sys.Graph.Links()

	stop := make(chan struct{})
	refresherDone := make(chan struct{})
	go func() {
		defer close(refresherDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			l := links[i%len(links)]
			// Graph mutation + Refresh; the link keeps its original cost
			// (SetLinkCost to the same value still bumps the version), so
			// planner results stay sane while snapshots churn.
			if err := sys.Graph.SetLinkCost(l.A, l.B, l.Cost); err != nil {
				t.Error(err)
				return
			}
			sys.Refresh()
		}
	}()

	var planners sync.WaitGroup
	for g := 0; g < 4; g++ {
		planners.Add(1)
		go func() {
			defer planners.Done()
			for i := 0; i < 5; i++ {
				if _, err := sys.Plan(ids, 9, AlgoTopDown); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	planners.Wait()
	close(stop)
	<-refresherDone
}
