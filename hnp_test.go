package hnp

import (
	"math"
	"testing"
)

func newTestSystem(t *testing.T) (*System, []StreamID) {
	t.Helper()
	g := TransitStubNetwork(64, 3)
	sys, err := NewSystem(g, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := sys.AddStream("A", 40, 4)
	b := sys.AddStream("B", 30, 20)
	c := sys.AddStream("C", 25, 50)
	sys.SetSelectivity(a, b, 0.01)
	sys.SetSelectivity(a, c, 0.02)
	sys.SetSelectivity(b, c, 0.005)
	return sys, []StreamID{a, b, c}
}

func TestDeployAllAlgorithms(t *testing.T) {
	for _, algo := range []Algorithm{AlgoTopDown, AlgoBottomUp, AlgoOptimal, AlgoPlanThenDeploy} {
		sys, ids := newTestSystem(t)
		d, err := sys.Deploy(ids, 9, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if d.Plan == nil || d.Cost <= 0 {
			t.Fatalf("%v: bad deployment %+v", algo, d.Result)
		}
		if err := d.Plan.Validate(); err != nil {
			t.Errorf("%v: %v", algo, err)
		}
	}
}

func TestHeuristicsBoundedByOptimal(t *testing.T) {
	sys, ids := newTestSystem(t)
	opt, err := sys.Plan(ids, 9, AlgoOptimal)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoTopDown, AlgoBottomUp, AlgoPlanThenDeploy} {
		d, err := sys.Plan(ids, 9, algo)
		if err != nil {
			t.Fatal(err)
		}
		if d.Cost < opt.Cost-1e-6 {
			t.Errorf("%v cost %g beats optimal %g", algo, d.Cost, opt.Cost)
		}
	}
}

func TestDeployAdvertisesAndReuses(t *testing.T) {
	sys, ids := newTestSystem(t)
	first, err := sys.Deploy(ids, 9, AlgoTopDown)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Registry.Len() == 0 {
		t.Fatal("no advertisements after deploy")
	}
	// Same query again: full reuse caps the marginal cost at shipping the
	// existing root output to the sink.
	second, err := sys.Deploy(ids, 9, AlgoTopDown)
	if err != nil {
		t.Fatal(err)
	}
	cap := second.Plan.Rate * sys.Paths.Dist(first.Plan.Loc, 9)
	if second.Cost > cap+1e-6 {
		t.Errorf("second deploy cost %g > reuse cap %g", second.Cost, cap)
	}
	if second.Query.ID == first.Query.ID {
		t.Error("query IDs not advancing")
	}
}

func TestPlanDoesNotAdvertise(t *testing.T) {
	sys, ids := newTestSystem(t)
	if _, err := sys.Plan(ids, 9, AlgoTopDown); err != nil {
		t.Fatal(err)
	}
	if sys.Registry.Len() != 0 {
		t.Error("Plan recorded advertisements")
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	sys, ids := newTestSystem(t)
	if _, err := sys.Plan(ids, 9, Algorithm(99)); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if Algorithm(99).String() != "unknown" {
		t.Error("String for unknown")
	}
	if AlgoTopDown.String() != "top-down" || AlgoBottomUp.String() != "bottom-up" ||
		AlgoOptimal.String() != "optimal" || AlgoPlanThenDeploy.String() != "plan-then-deploy" {
		t.Error("Algorithm.String labels wrong")
	}
}

func TestRefreshAfterLinkChange(t *testing.T) {
	sys, ids := newTestSystem(t)
	before, err := sys.Plan(ids, 9, AlgoOptimal)
	if err != nil {
		t.Fatal(err)
	}
	// Make one of the plan's transfer links expensive and re-optimize.
	links := sys.Graph.Links()
	for _, l := range links {
		if err := sys.Graph.SetLinkCost(l.A, l.B, l.Cost*3); err != nil {
			t.Fatal(err)
		}
	}
	sys.Refresh()
	after, err := sys.Plan(ids, 9, AlgoOptimal)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after.Cost-3*before.Cost) > 0.5*before.Cost {
		t.Errorf("uniform 3x link costs: cost %g -> %g (expected ~3x)", before.Cost, after.Cost)
	}
}

func TestNewSystemErrors(t *testing.T) {
	if _, err := NewSystem(NewGraph(4), 1, 1); err == nil {
		t.Error("maxCS=1 accepted")
	}
}

func TestDelayMetricSystem(t *testing.T) {
	g := TransitStubNetwork(64, 5)
	sys, err := NewSystemWithMetric(g, 8, 5, MetricDelay)
	if err != nil {
		t.Fatal(err)
	}
	a := sys.AddStream("A", 40, 4)
	b := sys.AddStream("B", 30, 20)
	sys.SetSelectivity(a, b, 0.01)
	d, err := sys.Deploy([]StreamID{a, b}, 9, AlgoTopDown)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cost <= 0 {
		t.Fatal("non-positive delay cost")
	}
	// The plan's cost must be measured in delay units: it equals the plan
	// re-costed against delay paths, not cost paths.
	delayPaths := g.ShortestPaths(MetricDelay)
	if got := d.Plan.Cost(delayPaths.Dist, 9); got != d.Cost {
		t.Errorf("cost %g not in delay units (%g)", d.Cost, got)
	}
	// Refresh must stay on the delay metric.
	links := g.Links()
	if err := g.SetLinkCost(links[0].A, links[0].B, links[0].Cost*2); err != nil {
		t.Fatal(err)
	}
	sys.Refresh()
	if sys.Paths.Metric() != MetricDelay {
		t.Error("Refresh switched metrics")
	}
}

func TestLoadAwareDeployAvoidsHotNode(t *testing.T) {
	sys, ids := newTestSystem(t)
	// Find where the load-oblivious plan puts its operators.
	plain, err := sys.Plan(ids, 9, AlgoTopDown)
	if err != nil {
		t.Fatal(err)
	}
	ops := plain.Plan.Operators()
	if len(ops) == 0 {
		t.Skip("no operators")
	}
	hot := ops[0].Loc
	// Saturate that node and enable load-aware planning.
	sys.SetLoadPenalty(10)
	sys.AddLoad(hot, 1e6)
	aware, err := sys.Plan(ids, 9, AlgoTopDown)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range aware.Plan.Operators() {
		if op.Loc == hot {
			t.Errorf("load-aware plan still uses overloaded node %d", hot)
		}
	}
	// Deployments feed the ledger.
	before := sys.NodeLoad(aware.Plan.Operators()[0].Loc)
	if _, err := sys.Deploy(ids, 9, AlgoTopDown); err != nil {
		t.Fatal(err)
	}
	grew := false
	for _, op := range aware.Plan.Operators() {
		if sys.NodeLoad(op.Loc) > before {
			grew = true
		}
	}
	if !grew {
		t.Error("deploy did not record load")
	}
}

func TestDeployAggregate(t *testing.T) {
	sys, ids := newTestSystem(t)
	agg := AggSpec{Fn: "count", Window: 30, OutRate: 0.2}
	// Price the un-aggregated query first (before any reuse exists).
	plain, err := sys.Plan(ids, 9, AlgoTopDown)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sys.DeployAggregate(ids, 9, AlgoTopDown, PredSet{}, agg)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Plan.IsUnary() {
		t.Fatalf("plan root not an aggregate: %s", d.Plan)
	}
	if d.Cost > plain.Cost+1e-6 {
		t.Errorf("aggregation raised cost %g -> %g", plain.Cost, d.Cost)
	}
	// Invalid specs are rejected.
	if _, err := sys.DeployAggregate(ids, 9, AlgoTopDown, PredSet{}, AggSpec{}); err == nil {
		t.Error("invalid agg spec accepted")
	}
}

func TestDeployCQL(t *testing.T) {
	g := TransitStubNetwork(32, 7)
	sys, err := NewSystem(g, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys.AddStream("WEATHER", 18, 5)
	sys.AddStream("FLIGHTS", 60, 12)
	sys.AddStream("CHECK-INS", 45, 13)

	// The paper's Q2.
	q2 := `SELECT FLIGHTS.STATUS, CHECK-INS.STATUS
	       FROM FLIGHTS, CHECK-INS
	       WHERE FLIGHTS.DEPARTING = 'ATLANTA'
	         AND FLIGHTS.NUM = CHECK-INS.FLNUM
	         AND FLIGHTS.DP_TIME < 0.5`
	d2, err := sys.DeployCQL(q2, 14, AlgoTopDown)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Query.K() != 2 || d2.Cost <= 0 {
		t.Fatalf("Q2 deployment: %+v", d2.Result)
	}

	// The paper's Q1 shares Q2's predicates on FLIGHTS ⋈ CHECK-INS, so its
	// deployment can reuse Q2's operator.
	q1 := `SELECT FLIGHTS.STATUS, WEATHER.FORECAST, CHECK-INS.STATUS
	       FROM FLIGHTS, WEATHER, CHECK-INS
	       WHERE FLIGHTS.DEPARTING = 'ATLANTA'
	         AND FLIGHTS.DESTN = WEATHER.CITY
	         AND FLIGHTS.NUM = CHECK-INS.FLNUM
	         AND FLIGHTS.DP_TIME < 0.5`
	d1, err := sys.DeployCQL(q1, 9, AlgoTopDown)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Query.K() != 3 {
		t.Fatalf("Q1 sources = %d", d1.Query.K())
	}
	// Aggregated CQL.
	agg := `SELECT * FROM FLIGHTS, WEATHER WHERE FLIGHTS.DESTN = WEATHER.CITY
	        WINDOW 60 AGGREGATE COUNT`
	da, err := sys.DeployCQL(agg, 3, AlgoTopDown)
	if err != nil {
		t.Fatal(err)
	}
	if !da.Plan.IsUnary() {
		t.Error("aggregate clause lost")
	}
	// Parse errors surface.
	if _, err := sys.DeployCQL("SELECT FROM", 0, AlgoTopDown); err == nil {
		t.Error("bad CQL accepted")
	}
}
