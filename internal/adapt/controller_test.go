package adapt

import (
	"math"
	"math/rand"
	"testing"

	"hnp/internal/core"
	"hnp/internal/hierarchy"
	"hnp/internal/iflow"
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// ctlWorld is the standard three-stream testbed for controller tests: a
// 32-node transit-stub network, a hierarchy for Top-Down planning, and a
// deployed Top-Down plan under a runtime.
type ctlWorld struct {
	g    *netgraph.Graph
	h    *hierarchy.Hierarchy
	cat  *query.Catalog
	q    *query.Query
	plan *query.PlanNode
	rt   *iflow.Runtime
}

func makeCtlWorld(t *testing.T, seed int64, horizon float64) *ctlWorld {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := netgraph.MustTransitStub(32, rng)
	paths := g.ShortestPaths(netgraph.MetricCost)
	h, err := hierarchy.Build(g, paths, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	cat := query.NewCatalog(0.05)
	a := cat.Add("A", 20, 4)
	b := cat.Add("B", 15, 20)
	c := cat.Add("C", 10, 28)
	q, err := query.NewQuery(0, []query.StreamID{a, b, c}, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.TopDown(h, cat, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt := iflow.New(g, iflow.DefaultConfig(), seed)
	if err := rt.Deploy(q, res.Plan, cat, horizon); err != nil {
		t.Fatal(err)
	}
	return &ctlWorld{g: g, h: h, cat: cat, q: q, plan: res.Plan, rt: rt}
}

func (w *ctlWorld) replan() iflow.ReplanFunc {
	return func(q *query.Query) (*query.PlanNode, error) {
		res, err := core.TopDown(w.h, w.cat, q, nil)
		if err != nil {
			return nil, err
		}
		return res.Plan, nil
	}
}

// baseLeaf returns the plan leaf tapping the given catalog stream.
func (w *ctlWorld) baseLeaf(t *testing.T, id query.StreamID) *query.PlanNode {
	t.Helper()
	for _, l := range w.plan.Leaves() {
		if l.In.Derived {
			continue
		}
		ids := w.q.StreamsOf(l.Mask)
		if len(ids) == 1 && ids[0] == id {
			return l
		}
	}
	t.Fatalf("no base leaf for stream %d", id)
	return nil
}

// CostWith under the plan's own annotation rates must agree with the
// plan's native Cost.
func TestCostWithMatchesPlanCost(t *testing.T) {
	w := makeCtlWorld(t, 1, 100)
	rates := query.BuildRates(w.cat, w.q)
	dist := w.rt.Cost.Dist
	native := w.plan.Cost(dist, w.q.Sink)
	got := CostWith(w.plan, rates, dist, w.q.Sink)
	if math.Abs(got-native) > 1e-6*math.Max(math.Abs(native), 1) {
		t.Errorf("CostWith = %g, plan.Cost = %g", got, native)
	}
}

// A drastic live rate shift must flow through the whole loop: drift
// detection, catalog calibration, re-plan, and a migration to a plan
// that fits the new rates — while the query keeps flowing.
func TestControllerClosesTheLoop(t *testing.T) {
	const horizon = 600.0
	w := makeCtlWorld(t, 3, horizon)
	ctl := New(w.rt, w.cat, w.replan(), Config{Interval: 15, Horizon: 60})
	ctl.Track(w.q, w.plan)

	var history []string
	ctl.OnMigrate = func(q *query.Query, old, new *query.PlanNode, rep iflow.MigrationReport) {
		history = append(history, new.String())
	}

	// Warm up at assumed rates, then shift stream C's tap 20×: the heavy
	// stream is now C, so placements serving the old rates are wrong.
	w.rt.RunFor(50)
	cID := w.q.Sources[2]
	leaf := w.baseLeaf(t, cID)
	if err := w.rt.SetSourceRate(leaf.In.Sig, leaf.Loc, w.cat.Stream(cID).Rate*20); err != nil {
		t.Fatal(err)
	}
	ctl.Run(horizon)
	w.rt.RunFor(horizon - w.rt.Sim.Now())

	st := ctl.Stats()
	if st.Checks == 0 {
		t.Fatal("controller never checked")
	}
	// The calibrated catalog must track the shifted rate.
	if got := w.cat.Stream(cID).Rate; got < 100 {
		t.Errorf("catalog rate for shifted stream = %g, want ~200", got)
	}
	if st.Migrations == 0 {
		t.Fatal("controller never migrated despite a 20x rate shift")
	}
	// Anti-oscillation: no plan may reappear immediately after being
	// migrated away from (A→B→A pair).
	for i := 2; i < len(history); i++ {
		if history[i] == history[i-2] && history[i] != history[i-1] {
			t.Fatalf("oscillation: plan %q revisited at migrations %d and %d", history[i], i-2, i)
		}
	}
	// Migrations must be sparse, not once-per-interval churn.
	if st.Migrations > 4 {
		t.Errorf("%d migrations for one rate shift — controller is churning", st.Migrations)
	}
	if w.rt.Sink(w.q.ID).Tuples == 0 {
		t.Error("query starved under control")
	}
	if err := w.rt.CheckInvariants(nil); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// Under stable conditions (no drift, no graph change) the controller
// must not even re-plan: the drift gate is the cheap path.
func TestControllerIdleWhenStable(t *testing.T) {
	const horizon = 300.0
	w := makeCtlWorld(t, 5, horizon)
	ctl := New(w.rt, w.cat, w.replan(), Config{Interval: 15})
	ctl.Track(w.q, w.plan)
	ctl.Run(horizon)
	w.rt.RunFor(horizon)
	st := ctl.Stats()
	if st.Migrations != 0 {
		t.Errorf("%d migrations under stable conditions", st.Migrations)
	}
	// Poisson noise stays under the default 20% drift threshold over
	// 15-second windows at these rates, so the replan path stays cold.
	if st.Replans > st.Checks/2 {
		t.Errorf("replanned %d of %d checks despite no drift", st.Replans, st.Checks)
	}
}

// ModeNever measures but never migrates; ModeAlways migrates whenever
// the fresh plan differs. Both must keep flowing.
func TestControllerModes(t *testing.T) {
	const horizon = 400.0
	for _, mode := range []Mode{ModeNever, ModeAlways} {
		w := makeCtlWorld(t, 7, horizon)
		ctl := New(w.rt, w.cat, w.replan(), Config{Interval: 15, Mode: mode})
		ctl.Track(w.q, w.plan)
		w.rt.RunFor(30)
		cID := w.q.Sources[2]
		leaf := w.baseLeaf(t, cID)
		if err := w.rt.SetSourceRate(leaf.In.Sig, leaf.Loc, w.cat.Stream(cID).Rate*20); err != nil {
			t.Fatal(err)
		}
		ctl.Run(horizon)
		w.rt.RunFor(horizon - w.rt.Sim.Now())
		st := ctl.Stats()
		if mode == ModeNever && st.Migrations != 0 {
			t.Errorf("ModeNever migrated %d times", st.Migrations)
		}
		if st.Checks == 0 {
			t.Errorf("mode %v never checked", mode)
		}
		if w.rt.Sink(w.q.ID).Tuples == 0 {
			t.Errorf("mode %v starved the query", mode)
		}
		if err := w.rt.CheckInvariants(nil); err != nil {
			t.Fatalf("mode %v invariants: %v", mode, err)
		}
	}
}

// Untrack must drop the query from control; SetPlan must retarget it.
func TestTrackUntrack(t *testing.T) {
	w := makeCtlWorld(t, 9, 100)
	ctl := New(w.rt, w.cat, w.replan(), Config{})
	ctl.Track(w.q, w.plan)
	if ctl.Plan(w.q.ID) != w.plan {
		t.Error("tracked plan mismatch")
	}
	ctl.Untrack(w.q.ID)
	if ctl.Plan(w.q.ID) != nil {
		t.Error("untracked query still has a plan")
	}
	ctl.Untrack(999) // harmless
	ctl.Track(w.q, w.plan)
	other := w.plan
	ctl.SetPlan(w.q.ID, other)
	if ctl.Plan(w.q.ID) != other {
		t.Error("SetPlan did not retarget")
	}
}
