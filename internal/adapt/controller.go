// Package adapt closes the paper's re-optimization loop: "changes in
// stream rates ... may render the deployed network sub-optimal, and the
// middleware layer may decide to re-optimize". A Controller watches each
// deployed query's observed stream rates against the catalog the planner
// assumed, recalibrates the catalog from windowed runtime measurements,
// re-costs the running plan under the calibrated statistics, and triggers
// the runtime's incremental Migrate only when the predicted savings beat
// a churn-cost hysteresis derived from the measured cost of migrating.
//
// The decision chain per query and control interval:
//
//	drift gate      — skip quiescent queries: no stream drifted past
//	                  DriftThreshold, the network graph is unchanged, and
//	                  no suppressed candidate is pending. (Calibration
//	                  erases drift — once the catalog tracks the observed
//	                  rates a stale plan stops drifting without getting
//	                  fixed, so a candidate the later gates suppressed
//	                  stays hot until it either migrates or stops paying.)
//	re-cost         — both the running plan and a fresh optimization are
//	                  evaluated under the same calibrated rate table: cost
//	                  (CostWith, the paper's rate×distance objective) and
//	                  transport byte rate (BytesWith, bytes crossing links
//	                  per second — the metric migrations are judged by,
//	                  since shipped state is paid in bytes too).
//	deadband        — relative byte gains below MinRelGain are noise.
//	hysteresis      — predicted byte savings over Horizon seconds must
//	                  exceed Hysteresis × (ops churned × per-op shipped
//	                  bytes); the per-op estimate is an EWMA of
//	                  BytesShipped/Delta over this controller's own
//	                  migrations, floored at the PerOpShipBytes seed.
//	cooldown        — at most one migration per query per Cooldown.
//	revert holdoff  — a plan we just migrated away from cannot return
//	                  within RevertHoldoff: A→B→A flapping is structurally
//	                  impossible inside the holdoff window.
//
// The Never and Always modes keep every measurement and re-planning step
// (equal overhead, equal rng consumption) but pin the migration decision
// to "never" / "whenever the fresh plan differs" — the two baselines the
// controller is validated against in the chaos harness.
package adapt

import (
	"math"

	"hnp/internal/iflow"
	"hnp/internal/netgraph"
	"hnp/internal/obs"
	"hnp/internal/query"
)

// Mode selects the migration policy; measurement and re-planning are
// identical across modes so baseline comparisons isolate the decision.
type Mode int

const (
	// ModeController applies the full gate chain (the real policy).
	ModeController Mode = iota
	// ModeNever measures and re-plans but never migrates.
	ModeNever
	// ModeAlways migrates whenever the fresh plan differs from the
	// running one, with no gates — the churn-blind baseline.
	ModeAlways
)

// Config tunes the controller. DefaultConfig documents each knob's
// rationale; zero values are replaced by defaults in New.
type Config struct {
	// Interval is the control period in virtual seconds.
	Interval float64
	// DriftThreshold is the relative observed-vs-assumed rate drift above
	// which a query is re-planned (drift gate).
	DriftThreshold float64
	// MinRelGain is the deadband: predicted relative byte gains at or
	// below it never trigger a migration.
	MinRelGain float64
	// Hysteresis scales the churn cost a predicted gain must beat.
	Hysteresis float64
	// Horizon is the payback window in virtual seconds: savings accrue as
	// gain × Horizon when weighed against one-time migration cost.
	Horizon float64
	// Cooldown is the minimum spacing between migrations of one query.
	Cooldown float64
	// RevertHoldoff is how long a query's previous plan stays banned
	// after migrating away from it.
	RevertHoldoff float64
	// PerOpShipBytes seeds (and floors) the measured per-operator
	// migration churn EWMA, in bytes shipped per churned operator. A
	// moved join ships its buffered windows (≈ input rate × window ×
	// tuple size), so the seed only matters until the first real
	// migration is measured.
	PerOpShipBytes float64
	// Mode selects the migration policy.
	Mode Mode
}

// DefaultConfig returns the tuning used by cmd/smq and the chaos harness.
func DefaultConfig() Config {
	return Config{
		Interval:       10,
		DriftThreshold: 0.2,
		MinRelGain:     0.05,
		Hysteresis:     1.5,
		Horizon:        60,
		Cooldown:       20,
		RevertHoldoff:  120,
		PerOpShipBytes: 2000,
		Mode:           ModeController,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Interval <= 0 {
		c.Interval = d.Interval
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = d.DriftThreshold
	}
	if c.MinRelGain <= 0 {
		c.MinRelGain = d.MinRelGain
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = d.Hysteresis
	}
	if c.Horizon <= 0 {
		c.Horizon = d.Horizon
	}
	if c.Cooldown <= 0 {
		c.Cooldown = d.Cooldown
	}
	if c.RevertHoldoff <= 0 {
		c.RevertHoldoff = d.RevertHoldoff
	}
	if c.PerOpShipBytes <= 0 {
		c.PerOpShipBytes = d.PerOpShipBytes
	}
	return c
}

// Stats counts what the controller did, with per-gate suppression
// attribution so a run's decisions can be audited.
type Stats struct {
	Checks     int
	Replans    int
	Migrations int
	// Suppressed* count candidate migrations each gate stopped.
	SuppressedDeadband   int
	SuppressedHysteresis int
	SuppressedCooldown   int
	SuppressedRevert     int
	// PredictedSavings accumulates the predicted byte-rate gain (bytes/s)
	// at decision time for every triggered migration; RealizedSavings the
	// measured byte-rate change across the following control window
	// (approximate: other activity in the window is attributed too).
	PredictedSavings float64
	RealizedSavings  float64
}

// Suppressed returns the total candidate migrations the gates stopped.
func (s Stats) Suppressed() int {
	return s.SuppressedDeadband + s.SuppressedHysteresis + s.SuppressedCooldown + s.SuppressedRevert
}

// tracked is one query under control.
type tracked struct {
	q           *query.Query
	plan        *query.PlanNode
	lastMigrate float64
	prevSig     string // rendering of the plan last migrated away from
	// pending marks a candidate a gate suppressed while a real gain was
	// on the table: it keeps the query past the drift gate on later steps
	// even after calibration has erased its apparent drift.
	pending bool
}

// Controller is the closed-loop re-optimization policy over one runtime.
// It is driven either by Run (self-scheduling on the runtime's virtual
// clock) or by explicit Step calls from a harness.
type Controller struct {
	rt     *iflow.Runtime
	cat    *query.Catalog
	cfg    Config
	replan iflow.ReplanFunc

	// OnMigrate, when set, observes every applied migration — harnesses
	// use it to mirror plan tables, advertisement registries and load
	// ledgers synchronously with the runtime.
	OnMigrate func(q *query.Query, old, new *query.PlanNode, rep iflow.MigrationReport)

	tracked map[int]*tracked
	order   []int // deterministic iteration: insertion order
	win     *iflow.StatsWindow

	perOpBytes  float64 // EWMA of measured BytesShipped/Delta, floored at cfg.PerOpShipBytes
	lastVersion int     // graph version at the previous step
	until       float64 // source lifetime bound handed to Migrate

	migratedLastStep bool
	preRate          float64 // window byte rate before the last migration step
	lastWindowBytes  float64 // TotalBytes at the last window roll

	stats Stats

	obsChecks     *obs.Counter
	obsReplans    *obs.Counter
	obsTriggered  *obs.Counter
	obsSuppressed *obs.Counter
	obsDrift      *obs.Gauge
	obsPredicted  *obs.Gauge
	obsRealized   *obs.Gauge

	// tr is the flight recorder shared with the binding registry; every
	// calibration window and gate decision is emitted there, causally
	// chained measurement → gates → migration.
	tr *obs.Tracer
}

// New builds a controller over a runtime. replan produces a fresh plan
// for a query against the current (calibrated) catalog; it must be
// deterministic for reproducible runs.
func New(rt *iflow.Runtime, cat *query.Catalog, replan iflow.ReplanFunc, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		rt:          rt,
		cat:         cat,
		cfg:         cfg,
		replan:      replan,
		tracked:     map[int]*tracked{},
		win:         rt.NewStatsWindow(),
		perOpBytes:  cfg.PerOpShipBytes,
		lastVersion: rt.G.Version(),
		until:       math.Inf(1),
	}
}

// BindObs connects the controller to a telemetry registry: control
// activity ("adapt.checks", "adapt.replans" counters), decisions
// ("adapt.migrations_triggered", "adapt.migrations_suppressed"), the
// maximum observed rate drift ("adapt.drift" gauge) and the savings
// ledger ("adapt.predicted_savings", "adapt.realized_savings" gauges).
func (c *Controller) BindObs(reg *obs.Registry) {
	c.obsChecks = reg.Counter("adapt.checks")
	c.obsReplans = reg.Counter("adapt.replans")
	c.obsTriggered = reg.Counter("adapt.migrations_triggered")
	c.obsSuppressed = reg.Counter("adapt.migrations_suppressed")
	c.obsDrift = reg.Gauge("adapt.drift")
	c.obsPredicted = reg.Gauge("adapt.predicted_savings")
	c.obsRealized = reg.Gauge("adapt.realized_savings")
	c.tr = reg.Tracer()
}

// Track places a deployed query under control. The plan must be the one
// currently running (rt.DeployedPlan(q.ID)).
func (c *Controller) Track(q *query.Query, plan *query.PlanNode) {
	if _, ok := c.tracked[q.ID]; !ok {
		c.order = append(c.order, q.ID)
	}
	c.tracked[q.ID] = &tracked{q: q, plan: plan}
}

// Untrack removes a query from control (undeployed or failed). Harmless
// for unknown IDs.
func (c *Controller) Untrack(qid int) {
	if _, ok := c.tracked[qid]; !ok {
		return
	}
	delete(c.tracked, qid)
	for i, id := range c.order {
		if id == qid {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// Plan returns the plan the controller believes a tracked query runs, or
// nil.
func (c *Controller) Plan(qid int) *query.PlanNode {
	if t := c.tracked[qid]; t != nil {
		return t.plan
	}
	return nil
}

// SetPlan updates the controller's view after an external migration
// (failure recovery, operator-initiated replan).
func (c *Controller) SetPlan(qid int, plan *query.PlanNode) {
	if t := c.tracked[qid]; t != nil {
		t.plan = plan
	}
}

// Stats returns a copy of the decision counters.
func (c *Controller) Stats() Stats { return c.stats }

// Run installs the control loop on the runtime's virtual clock: one Step
// every Interval until the horizon, which also bounds the lifetime of
// sources created by migrations.
func (c *Controller) Run(until float64) {
	c.until = until
	var tick func()
	tick = func() {
		if c.rt.Sim.Now() >= until {
			return
		}
		c.Step()
		c.rt.Sim.Schedule(c.cfg.Interval, tick)
	}
	c.rt.Sim.Schedule(c.cfg.Interval, tick)
}

// Step runs one control interval: settle realized savings, measure every
// tracked query's drift over the window (all of them, before any
// calibration — calibrating a shared stream for the first query would
// erase later queries' apparent drift), recalibrate the catalog, then
// walk candidates through the gate chain. The window rolls at the end so
// the next step measures a fresh interval.
func (c *Controller) Step() {
	now := c.rt.Sim.Now()
	elapsed := now - c.win.Start()
	if elapsed <= 0 {
		return
	}

	// Realized savings: the byte-rate change from the window preceding
	// the migrations to the window after them.
	curRate := (c.rt.TotalBytes - c.lastWindowBytes) / elapsed
	if c.migratedLastStep {
		realized := (c.preRate - curRate) * c.cfg.Horizon
		c.stats.RealizedSavings += realized
		c.obsRealized.Set(c.stats.RealizedSavings)
		c.migratedLastStep = false
	}
	defer func() {
		c.lastWindowBytes = c.rt.TotalBytes
		c.win.Roll(c.rt)
	}()

	drifts := make(map[int]float64, len(c.order))
	maxDrift := 0.0
	for _, qid := range c.order {
		d := c.drift(c.tracked[qid])
		drifts[qid] = d
		if d > maxDrift {
			maxDrift = d
		}
	}
	c.obsDrift.Set(maxDrift)

	traceOn := c.tr.On()
	var measEvs map[int]uint64
	if traceOn {
		measEvs = make(map[int]uint64, len(c.order))
	}
	for _, qid := range c.order {
		t := c.tracked[qid]
		updated := c.rt.Calibrate(c.cat, t.q, t.plan, c.win)
		if traceOn {
			// The measurement is the root of this query's decision chain
			// for the interval: drift observed over the window and the
			// number of catalog statistics recalibrated from it.
			measEvs[qid] = c.tr.Emit(obs.Event{
				Kind: obs.KindCalibrationWindow, Trace: obs.QueryTrace(qid),
				Query: qid, Node: obs.NoID, VTime: now,
				Value: drifts[qid], Aux: float64(updated),
			})
		}
	}

	graphChanged := c.rt.G.Version() != c.lastVersion
	c.lastVersion = c.rt.G.Version()

	migrated := false
	tupleSize := c.rt.Config().TupleSize
	for _, qid := range c.order {
		t := c.tracked[qid]
		c.stats.Checks++
		c.obsChecks.Inc()
		chain := measEvs[qid] // 0 when the recorder is disarmed
		if c.cfg.Mode != ModeAlways && drifts[qid] < c.cfg.DriftThreshold &&
			!graphChanged && !t.pending {
			c.emitGate(&chain, qid, now, "drift", false, drifts[qid], c.cfg.DriftThreshold)
			continue
		}
		c.emitGate(&chain, qid, now, "drift", true, drifts[qid], c.cfg.DriftThreshold)

		rates := query.BuildRates(c.cat, t.q)
		fresh, err := c.replan(t.q)
		if err != nil {
			continue
		}
		c.stats.Replans++
		c.obsReplans.Inc()

		diff := t.q.Diff(t.plan, fresh)
		if diff.Delta() == 0 {
			t.pending = false
			c.emitGate(&chain, qid, now, "delta", false, 0, 0)
			continue // the fresh plan is the running plan
		}
		// The decision is byte-denominated end to end: migrations are
		// judged (and validated) on total bytes moved, and their churn is
		// paid in shipped bytes, so predicted transport byte rates are
		// the commensurable currency. The gain is marginal, not a
		// whole-plan comparison: edges shared with other deployments keep
		// flowing after this query leaves them, so only edges the
		// migration actually starts or stops count. CostWith remains the
		// planner-side objective; the gain here is what the runtime's
		// TotalBytes will actually see.
		rateOf := c.rateOf(t.q, rates)
		curBytes := BytesWith(t.plan, rateOf, tupleSize, t.q.Sink)
		gain := c.marginalGain(t.q, t.plan, fresh, rateOf, tupleSize)
		if c.cfg.Mode == ModeNever {
			continue
		}
		if c.cfg.Mode == ModeController {
			if gain <= c.cfg.MinRelGain*math.Abs(curBytes) {
				t.pending = false // noise, not a deferred opportunity
				c.suppress(&c.stats.SuppressedDeadband)
				c.emitGate(&chain, qid, now, "deadband", false, gain, c.cfg.MinRelGain*math.Abs(curBytes))
				continue
			}
			c.emitGate(&chain, qid, now, "deadband", true, gain, c.cfg.MinRelGain*math.Abs(curBytes))
			// Price the migration's churn from what it would actually
			// ship: each moved operator's live state, measured now, plus
			// the per-operator overhead EWMA for the rest of the delta.
			// The seed EWMA alone blinds the gate to moves of hot joins
			// whose windows dwarf the per-op constant.
			churn := float64(diff.Delta()) * c.perOpBytes
			if ship := c.predictShipBytes(t.q, diff, tupleSize); ship > churn {
				churn = ship
			}
			if gain*c.cfg.Horizon <= c.cfg.Hysteresis*churn {
				t.pending = true
				c.suppress(&c.stats.SuppressedHysteresis)
				c.emitGate(&chain, qid, now, "hysteresis", false, gain*c.cfg.Horizon, c.cfg.Hysteresis*churn)
				continue
			}
			c.emitGate(&chain, qid, now, "hysteresis", true, gain*c.cfg.Horizon, c.cfg.Hysteresis*churn)
			if t.lastMigrate > 0 && now-t.lastMigrate < c.cfg.Cooldown {
				t.pending = true
				c.suppress(&c.stats.SuppressedCooldown)
				c.emitGate(&chain, qid, now, "cooldown", false, now-t.lastMigrate, c.cfg.Cooldown)
				continue
			}
			c.emitGate(&chain, qid, now, "cooldown", true, now-t.lastMigrate, c.cfg.Cooldown)
			if t.prevSig != "" && fresh.String() == t.prevSig && now-t.lastMigrate < c.cfg.RevertHoldoff {
				t.pending = true
				c.suppress(&c.stats.SuppressedRevert)
				c.emitGate(&chain, qid, now, "revert", false, now-t.lastMigrate, c.cfg.RevertHoldoff)
				continue
			}
			c.emitGate(&chain, qid, now, "revert", true, now-t.lastMigrate, c.cfg.RevertHoldoff)
		}

		// Parent the runtime's MigrationApplied/RolledBack event on the
		// last gate decision, closing the causal chain measurement →
		// gates → migration.
		c.rt.SetTraceParent(chain)
		rep, err := c.rt.Migrate(t.q, fresh, c.cat, c.until)
		if err != nil {
			continue
		}
		old := t.plan
		t.prevSig = old.String()
		t.plan = fresh
		t.lastMigrate = now
		t.pending = false
		migrated = true
		c.stats.Migrations++
		c.stats.PredictedSavings += gain
		c.obsTriggered.Inc()
		c.obsPredicted.Set(c.stats.PredictedSavings)

		// Learn the measured per-operator migration churn. Pure
		// create/retire migrations ship nothing (BytesShipped 0); folding
		// those into the EWMA would decay the hysteresis to nothing, so
		// the estimate is floored at the configured seed.
		if rep.Delta() > 0 {
			per := rep.BytesShipped / float64(rep.Delta())
			if per < c.cfg.PerOpShipBytes {
				per = c.cfg.PerOpShipBytes
			}
			c.perOpBytes = 0.7*c.perOpBytes + 0.3*per
		}
		if c.OnMigrate != nil {
			c.OnMigrate(t.q, old, fresh, rep)
		}
	}
	if migrated {
		c.migratedLastStep = true
		c.preRate = curRate
	}
}

func (c *Controller) suppress(counter *int) {
	*counter++
	c.obsSuppressed.Inc()
}

// emitGate records one gate decision in the flight recorder, chained on
// the previous event of the query's decision chain, and advances the
// chain to the new event. A disarmed recorder costs one atomic load and
// leaves the chain untouched.
func (c *Controller) emitGate(chain *uint64, qid int, now float64, gate string, pass bool, value, aux float64) {
	if !c.tr.On() {
		return
	}
	*chain = c.tr.Emit(obs.Event{
		Kind: obs.KindGateDecision, Parent: *chain, Trace: obs.QueryTrace(qid),
		Query: qid, Node: obs.NoID, VTime: now,
		Gate: gate, Pass: pass, Value: value, Aux: aux,
	})
}

// drift returns the worst relative observed-vs-assumed rate drift across
// a query's base streams over the current window. Streams with no
// observations in the window (sources quiesced) report no drift.
func (c *Controller) drift(t *tracked) float64 {
	max := 0.0
	for _, leaf := range t.plan.Leaves() {
		if leaf.In.Derived {
			continue
		}
		ids := t.q.StreamsOf(leaf.Mask)
		if len(ids) != 1 {
			continue
		}
		assumed := c.cat.Stream(ids[0]).Rate
		if assumed <= 0 {
			continue
		}
		observed := c.rt.WindowedRate(c.win, leaf.In.Sig, leaf.Loc)
		if observed <= 0 {
			continue
		}
		if d := math.Abs(observed-assumed) / assumed; d > max {
			max = d
		}
	}
	return max
}

// CostWith re-costs a placed plan under a fresh rate table: every leaf
// and join node's output rate is looked up by mask (so calibrated
// statistics apply), unary nodes keep their annotated rate (aggregation
// output rates are period-bound, not selectivity-bound). This is how the
// controller compares the running plan — whose annotations are stale by
// definition — against a fresh optimization on equal terms.
func CostWith(plan *query.PlanNode, rates query.RateTable, dist query.DistFunc, sink netgraph.NodeID) float64 {
	rate := func(n *query.PlanNode) float64 {
		if n.IsUnary() {
			return n.Rate
		}
		return rates.Rate(n.Mask)
	}
	var walk func(n *query.PlanNode) float64
	walk = func(n *query.PlanNode) float64 {
		if n.IsLeaf() {
			return 0
		}
		if n.IsUnary() {
			return walk(n.L) + rate(n.L)*dist(n.L.Loc, n.Loc)
		}
		return walk(n.L) + walk(n.R) +
			rate(n.L)*dist(n.L.Loc, n.Loc) +
			rate(n.R)*dist(n.R.Loc, n.Loc)
	}
	return walk(plan) + rate(plan)*dist(plan.Loc, sink)
}

// BytesWith predicts a placed plan's transport byte rate under a per-node
// rate estimate: bytes crossing links per second. Unlike CostWith it
// ignores distance — the runtime accounts TotalBytes once per remote
// transfer, so only whether an edge crosses nodes matters, not how far.
// Node-local handoffs are free. This is the estimate migration decisions
// are gated on, because the controller is validated against exactly this
// runtime counter.
func BytesWith(plan *query.PlanNode, rate func(*query.PlanNode) float64, tupleSize float64, sink netgraph.NodeID) float64 {
	cross := func(n *query.PlanNode, to netgraph.NodeID) float64 {
		if n.Loc == to {
			return 0
		}
		w := n.Width
		if w == 0 {
			w = tupleSize
		}
		return rate(n) * w
	}
	var walk func(n *query.PlanNode) float64
	walk = func(n *query.PlanNode) float64 {
		if n.IsLeaf() {
			return 0
		}
		if n.IsUnary() {
			return walk(n.L) + cross(n.L, n.Loc)
		}
		return walk(n.L) + walk(n.R) +
			cross(n.L, n.Loc) +
			cross(n.R, n.Loc)
	}
	return walk(plan) + cross(plan, sink)
}

// marginalGain predicts the change in the runtime's transport byte rate
// (bytes/s saved; negative means the migration adds traffic) of replacing
// old with fresh, accounting for operator sharing. A whole-plan
// BytesWith(old) − BytesWith(fresh) comparison is wrong under reuse in
// both directions: edges into an old operator another deployment still
// references keep flowing after this query migrates away (phantom
// savings), and a fresh plan that attaches to an already-running shared
// operator adds no input edges (phantom costs). So the prediction walks
// the IR diff edge by edge:
//
//   - input edges of an old operator stop flowing only if the operator
//     will actually be collected — it leaves the new plan AND no other
//     deployment holds a reference on it (Operator.Refs beyond this
//     plan's own holds);
//   - input edges of a new operator start flowing only if the operator
//     will actually be created — absent from the old plan AND not
//     already running at that node (reuse attaches to existing wiring);
//   - kept operators whose producer set changes swap exactly the edges
//     the rewire swaps;
//   - the root→sink edge always belongs to this query alone.
//
// Node-local edges are free, matching the runtime's TotalBytes
// accounting.
func (c *Controller) marginalGain(q *query.Query, old, fresh *query.PlanNode, est func(*query.PlanNode) float64, tupleSize float64) float64 {
	oldIR, newIR := q.IR(old), q.IR(fresh)
	rate := make(map[query.OpRef]float64, len(oldIR)+len(newIR))
	width := make(map[query.OpRef]float64, len(oldIR)+len(newIR))
	oldByRef := make(map[query.OpRef]query.IROp, len(oldIR))
	holds := make(map[query.OpRef]int, len(oldIR))
	note := func(op query.IROp) {
		if _, ok := rate[op.Ref]; ok {
			return
		}
		rate[op.Ref] = est(op.Node)
		if w := op.Node.Width; w > 0 {
			width[op.Ref] = w
		} else {
			width[op.Ref] = tupleSize
		}
	}
	for _, op := range oldIR {
		oldByRef[op.Ref] = op
		holds[op.Ref]++
		note(op)
	}
	newByRef := make(map[query.OpRef]query.IROp, len(newIR))
	for _, op := range newIR {
		newByRef[op.Ref] = op
		note(op)
	}
	cross := func(in query.OpRef, at netgraph.NodeID) float64 {
		if in.Loc == at {
			return 0
		}
		return rate[in] * width[in]
	}
	// Collection cascades top-down: an operator is only collected when
	// nothing subscribes to it, and its old-plan consumer's subscription
	// disappears only if that consumer is itself collected (or kept but
	// rewired away — a kept consumer still using it would have kept it in
	// the new plan too). So a retired operator survives if it is shared
	// (references beyond this plan's own holds) OR its retired parent
	// survives; reverse post-order visits parents before children.
	survive := make(map[query.OpRef]bool, len(oldIR))
	consumer := make(map[query.OpRef]query.OpRef, len(oldIR))
	for _, op := range oldIR {
		for _, in := range op.Inputs {
			consumer[in] = op.Ref
		}
	}
	for i := len(oldIR) - 1; i >= 0; i-- {
		op := oldIR[i]
		if _, kept := newByRef[op.Ref]; kept {
			survive[op.Ref] = true
			continue
		}
		live := c.rt.Operator(op.Ref.Sig, op.Ref.Loc)
		if live == nil || live.Refs() > holds[op.Ref] {
			survive[op.Ref] = true // already gone, or shared: no flow stops
			continue
		}
		par, hasPar := consumer[op.Ref]
		psig, ploc := "", netgraph.NodeID(-1)
		if hasPar {
			psig, ploc = par.Sig, par.Loc
		}
		if live.SubscribedBeyond(psig, ploc, q.ID) {
			// A subscriber outside this plan (a containment residual
			// filter, another query's sink) holds no reference but keeps
			// the operator running all the same.
			survive[op.Ref] = true
			continue
		}
		if hasPar {
			pnew, parKept := newByRef[par]
			if parKept && pnew.Leaf {
				// The parent is kept but demoted to a leaf (the fresh plan
				// consumes it as an already-materialized stream): leaves own
				// no upstream wiring, so the subscription — and this whole
				// subtree — keeps running.
				survive[op.Ref] = true
				continue
			}
			if !parKept && survive[par] {
				survive[op.Ref] = true // surviving retired parent keeps subscribing
				continue
			}
		}
	}
	removed, added := 0.0, 0.0
	for _, op := range oldIR {
		if op.Leaf {
			continue
		}
		if _, kept := newByRef[op.Ref]; kept {
			continue
		}
		if survive[op.Ref] {
			continue // keeps running; its inputs keep flowing
		}
		for _, in := range op.Inputs {
			removed += cross(in, op.Ref.Loc)
		}
	}
	for _, op := range newIR {
		if op.Leaf {
			continue
		}
		if _, wasOld := oldByRef[op.Ref]; wasOld {
			continue
		}
		if c.rt.Operator(op.Ref.Sig, op.Ref.Loc) != nil {
			continue // reused: the producing deployment already pays its inputs
		}
		for _, in := range op.Inputs {
			added += cross(in, op.Ref.Loc)
		}
	}
	for _, nop := range newIR {
		oop, kept := oldByRef[nop.Ref]
		if !kept || nop.Leaf || oop.Leaf {
			continue
		}
		for i, in := range nop.Inputs {
			if i < len(oop.Inputs) && oop.Inputs[i] == in {
				continue
			}
			added += cross(in, nop.Ref.Loc)
		}
		for i, in := range oop.Inputs {
			if i < len(nop.Inputs) && nop.Inputs[i] == in {
				continue
			}
			removed += cross(in, oop.Ref.Loc)
		}
	}
	oldRoot, newRoot := oldIR[len(oldIR)-1], newIR[len(newIR)-1]
	if oldRoot.Ref != newRoot.Ref {
		removed += cross(oldRoot.Ref, q.Sink)
		added += cross(newRoot.Ref, q.Sink)
	}
	return removed - added
}

// predictShipBytes prices a candidate migration's state shipping: every
// Move whose destination does not exist yet (Migrate only copies state
// into operators it creates) ships the source operator's live window and
// accumulator state across the link. Mirrors Migrate's shipping rules,
// filters excluded.
func (c *Controller) predictShipBytes(q *query.Query, diff query.PlanDiff, tupleSize float64) float64 {
	var ship float64
	for _, mv := range diff.Move {
		if c.rt.Operator(mv.Sig, mv.To) != nil {
			continue // pre-existing destination keeps its own state
		}
		src := c.rt.Operator(mv.Sig, mv.From)
		if src == nil {
			continue
		}
		ship += src.StateBytes(tupleSize)
	}
	return ship
}

// rateOf returns a per-node output-rate estimator for plans of q,
// measured-first: a node whose operator is live right now (every node of
// the running plan, and any advertised derived stream a fresh plan would
// reuse) reports its windowed measured rate; a join that does not exist
// yet composes its children's estimates with ONE calibrated pairwise
// selectivity per join step. The analytic RateTable multiplies one
// selectivity per stream pair, which underestimates deep intermediates by
// orders of magnitude against the runtime's per-step window join — biased
// estimates there made every plan that ships reused intermediates look
// free, which is precisely the migration decision this estimator exists
// to get right.
func (c *Controller) rateOf(q *query.Query, rates query.RateTable) func(*query.PlanNode) float64 {
	var est func(n *query.PlanNode) float64
	est = func(n *query.PlanNode) float64 {
		sig := ""
		switch {
		case n.IsLeaf():
			sig = n.In.Sig
		case !n.IsUnary():
			sig = q.SigOf(n.Mask)
		}
		if sig != "" {
			if r := c.rt.WindowedRate(c.win, sig, n.Loc); r > 0 {
				return r
			}
		}
		switch {
		case n.IsLeaf():
			if n.In.Derived {
				// A containment reuse's residual filter may not exist yet,
				// but its physical output is determined: the measured base
				// stream thinned by the pass probability the runtime will
				// derive from the annotations. The annotation alone can be
				// off by the full pass-probability factor.
				if n.In.BaseSig != "" {
					if base := c.rt.Operator(n.In.BaseSig, n.Loc); base != nil {
						if br := c.rt.WindowedRate(c.win, n.In.BaseSig, n.Loc); br > 0 {
							return br * iflow.ResidualPassProb(n.Rate, base.ExpRate())
						}
					}
				}
				return n.Rate // not live and not measurable: trust the annotation
			}
			return rates.Rate(n.Mask) // calibrated base rate (× predicate selectivity)
		case n.IsUnary():
			return n.Rate
		}
		lp := n.L.Mask.Positions()
		rp := n.R.Mask.Positions()
		sel := c.cat.Selectivity(q.Sources[lp[0]], q.Sources[rp[0]])
		return est(n.L) * est(n.R) * sel
	}
	return est
}
