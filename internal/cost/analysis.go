// Package cost provides the closed-form search-space and sub-optimality
// analysis of the paper: the exhaustive solution-space size (Lemma 1), the
// hierarchical reduction factor β (Theorems 2 and 4), and the Top-Down
// sub-optimality bound (Theorem 3).
package cost

import (
	"math"

	"hnp/internal/query"
)

// Lemma1 returns O_exhaustive, the size of the exhaustive joint
// plan+placement search space for a query over K sources on N nodes:
//
//	O_exhaustive = K(K−1)(K+1)/6 × N^(K−1)
//
// Values grow astronomically, hence the float64 return.
func Lemma1(k, n int) float64 {
	if k <= 1 {
		return 1
	}
	trees := float64(k) * float64(k-1) * float64(k+1) / 6
	return trees * math.Pow(float64(n), float64(k-1))
}

// Beta returns the Theorem 2/4 bound on the ratio of the hierarchical
// algorithms' search space to the exhaustive one:
//
//	β = h × (max_cs / N)^(K−1)
func Beta(k, n, maxCS, height int) float64 {
	if k <= 1 {
		return 1
	}
	return float64(height) * math.Pow(float64(maxCS)/float64(n), float64(k-1))
}

// HierarchicalSpaceBound returns β·O_exhaustive, the worst-case number of
// solutions examined by Top-Down or Bottom-Up.
func HierarchicalSpaceBound(k, n, maxCS, height int) float64 {
	return Beta(k, n, maxCS, height) * Lemma1(k, n)
}

// ClusterSpace returns the nominal size of the exhaustive search inside a
// single cluster: all join trees over k inputs times all placements of the
// k−1 operators on m member nodes. Both hierarchical algorithms report
// their "plans considered" as the sum of this quantity over every cluster
// they plan in, which is what Figure 9 plots.
func ClusterSpace(k, m int) float64 {
	if k <= 1 {
		return 1
	}
	return float64(query.NumTrees(k)) * math.Pow(float64(m), float64(k-1))
}

// Theorem3Bound returns the additive sub-optimality bound of the Top-Down
// algorithm: Σ_{e∈E_Q} s_e × Σ_{i<h} 2·d_i, where edgeRates are the stream
// rates s_e flowing on the chosen query tree's edges and sumD is the
// hierarchy's Σ 2·d_i at the top level (Hierarchy.SumD(height)).
func Theorem3Bound(edgeRates []float64, sumD float64) float64 {
	total := 0.0
	for _, s := range edgeRates {
		total += s * sumD
	}
	return total
}

// EdgeRates extracts the stream rates on every edge of a plan tree,
// including the root→sink delivery edge — the s_k terms of Theorem 3.
func EdgeRates(root *query.PlanNode) []float64 {
	var out []float64
	var walk func(n *query.PlanNode)
	walk = func(n *query.PlanNode) {
		if n == nil || n.IsLeaf() {
			return
		}
		walk(n.L)
		out = append(out, n.L.Rate)
		if n.R != nil {
			walk(n.R)
			out = append(out, n.R.Rate)
		}
	}
	walk(root)
	out = append(out, root.Rate)
	return out
}
