package cost

import (
	"math"
	"testing"

	"hnp/internal/query"
)

func TestLemma1(t *testing.T) {
	// K=2: 2*1*3/6 * N = N.
	if got := Lemma1(2, 64); got != 64 {
		t.Errorf("Lemma1(2,64) = %g", got)
	}
	// K=4, N=10: 4*3*5/6 * 10^3 = 10 * 1000.
	if got := Lemma1(4, 10); got != 10000 {
		t.Errorf("Lemma1(4,10) = %g", got)
	}
	if got := Lemma1(1, 100); got != 1 {
		t.Errorf("Lemma1(1,100) = %g", got)
	}
}

func TestBetaPaperExample(t *testing.T) {
	// The paper: query over 4 streams, 1000 nodes, max_cs 10 -> β ≈ .015
	// with h = log_10(1000) = 3.
	got := Beta(4, 1000, 10, 3)
	// h*(max_cs/N)^(K-1) = 3 * (0.01)^3 = 3e-6.
	if math.Abs(got-3e-6) > 1e-15 {
		t.Errorf("Beta = %g, want 3e-6", got)
	}
	if Beta(1, 100, 10, 2) != 1 {
		t.Error("Beta(K=1) != 1")
	}
}

func TestBetaShrinksExponentially(t *testing.T) {
	// As max_cs/N decreases linearly, β decreases exponentially in K-1.
	b1 := Beta(5, 100, 50, 2)
	b2 := Beta(5, 100, 25, 2)
	if math.Abs(b2/b1-math.Pow(0.5, 4)) > 1e-12 {
		t.Errorf("ratio %g, want %g", b2/b1, math.Pow(0.5, 4))
	}
}

func TestHierarchicalSpaceBoundBelowExhaustive(t *testing.T) {
	// For max_cs << N the bound must be orders of magnitude below Lemma 1.
	ex := Lemma1(4, 1024)
	hb := HierarchicalSpaceBound(4, 1024, 32, 2)
	if hb >= ex/100 {
		t.Errorf("bound %g not ≪ exhaustive %g", hb, ex)
	}
}

func TestClusterSpace(t *testing.T) {
	// 3 inputs on 4 sites: 3 trees × 4^2 placements = 48.
	if got := ClusterSpace(3, 4); got != 48 {
		t.Errorf("ClusterSpace(3,4) = %g", got)
	}
	if got := ClusterSpace(1, 9); got != 1 {
		t.Errorf("ClusterSpace(1,9) = %g", got)
	}
}

func TestTheorem3BoundAndEdgeRates(t *testing.T) {
	l0 := query.Leaf(query.Input{Mask: 0b01, Rate: 10, Loc: 0})
	l1 := query.Leaf(query.Input{Mask: 0b10, Rate: 20, Loc: 1})
	root := query.Join(l0, l1, 2, 4)
	rates := EdgeRates(root)
	// Edges: l0->join (10), l1->join (20), root->sink (4).
	if len(rates) != 3 {
		t.Fatalf("EdgeRates = %v", rates)
	}
	sum := 0.0
	for _, r := range rates {
		sum += r
	}
	if sum != 34 {
		t.Errorf("edge rate sum = %g, want 34", sum)
	}
	if got := Theorem3Bound(rates, 2); got != 68 {
		t.Errorf("Theorem3Bound = %g, want 68", got)
	}
}
