package core

import (
	"fmt"

	"hnp/internal/ads"
	costpkg "hnp/internal/cost"
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// Optimal computes the minimum-cost joint plan+placement over the whole
// network — the "exhaustive search / DP" baseline of the paper's Figures 7
// and 8. It considers every bushy join order and every placement of every
// operator on any node, plus reuse of every advertised derived stream when
// a registry is given. PlansConsidered reports the Lemma 1 size of the
// solution space this search covers (the paper plots the same closed form
// for the exhaustive line).
func Optimal(g *netgraph.Graph, paths *netgraph.Paths, cat *query.Catalog, q *query.Query, reg *ads.Registry) (Result, error) {
	return OptimalOpts(g, paths, cat, q, reg, Options{})
}

// OptimalOpts is Optimal with explicit Options.
func OptimalOpts(g *netgraph.Graph, paths *netgraph.Paths, cat *query.Catalog, q *query.Query, reg *ads.Registry, opts Options) (Result, error) {
	rt := query.BuildRates(cat, q)
	wt := query.BuildWidths(cat, q)
	inputs := BaseInputs(cat, q, rt)
	if reg != nil {
		inputs = append(inputs, reg.InputsFor(q, rt, nil)...)
	}
	sites := make([]netgraph.NodeID, g.NumNodes())
	for i := range sites {
		sites[i] = netgraph.NodeID(i)
	}
	plan, _, err := Solve(Problem{
		Inputs: inputs, Sites: sites, Dist: paths.Dist, Rates: rt, Widths: wt,
		Goal: q.All(), Sink: q.Sink, Deliver: true, Penalty: opts.Penalty,
	})
	if err != nil {
		return Result{}, fmt.Errorf("optimal: %w", err)
	}
	plan = AttachAggregate(q, plan, sites, paths.Dist, opts.Penalty)
	wt.Stamp(plan)
	return Result{
		Plan: plan,
		// Cost reports communication cost only, like the other optimizers;
		// with a load penalty the chosen plan may trade some of it away.
		Cost:            plan.Cost(paths.Dist, q.Sink),
		PlansConsidered: costpkg.Lemma1(q.K(), g.NumNodes()),
		ClustersPlanned: 1,
		LevelsVisited:   1,
	}, nil
}
