package core

import (
	"testing"

	"hnp/internal/query"
)

// TestSolveWorkMatchesEnumeration cross-checks the closed-form candidate
// count against a direct walk of the DP's loops: the same submask order
// Solve uses, the same canonical-split filter, the same m×m ship fold and
// root scan. If Solve's enumeration structure ever changes, this is the
// test that forces SolveWork to change with it.
func TestSolveWorkMatchesEnumeration(t *testing.T) {
	for k := 1; k <= 8; k++ {
		for _, m := range []int{1, 3, 5, 32} {
			goal := query.Mask(1<<uint(k)) - 1
			count := 0.0
			for _, s := range appendSubmasksByPopcount(nil, goal) {
				if s.Count() == 1 {
					count += float64(m) // the one matching input, into every site
					continue
				}
				low := s & -s
				splits := 0
				for m1 := (s - 1) & s; m1 > 0; m1 = (m1 - 1) & s {
					if m1&low == 0 {
						continue
					}
					splits++
				}
				count += float64(m*splits + m*m)
			}
			if k >= 2 {
				count += float64(m) // root scans the goal's operator placements
			} else {
				count++ // root picks the lone covering input
			}
			if got := SolveWork(k, m); got != count {
				t.Errorf("SolveWork(%d, %d) = %g, enumeration says %g", k, m, got, count)
			}
		}
	}
}

// TestSolveWorkMagnitude pins the benchmark fixture's figure so the
// trajectory numbers in BENCH_planner.json have a documented anchor.
func TestSolveWorkMagnitude(t *testing.T) {
	if got := SolveWork(6, 32); got != 68224 {
		t.Errorf("SolveWork(6, 32) = %g, want 68224", got)
	}
	if SolveWork(0, 32) != 0 || SolveWork(4, 0) != 0 {
		t.Error("degenerate shapes should report zero work")
	}
}
