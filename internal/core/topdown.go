package core

import (
	"fmt"
	"time"

	"hnp/internal/ads"
	costpkg "hnp/internal/cost"
	"hnp/internal/hierarchy"
	"hnp/internal/netgraph"
	"hnp/internal/obs"
	"hnp/internal/query"
)

// TopDown runs the paper's Top-Down algorithm: the query enters at the top
// of the hierarchy, where the coordinator exhaustively searches join
// orders and operator assignments over its cluster members using
// per-level cost estimates; the chosen assignment partitions the query
// into views, each recursively planned inside the member's underlying
// cluster, down to physical nodes at level 1. Derived-stream
// advertisements visible inside each cluster are offered to every search,
// so operator reuse is considered during planning, not after. Pass a nil
// registry to disable reuse.
func TopDown(h *hierarchy.Hierarchy, cat *query.Catalog, q *query.Query, reg *ads.Registry) (Result, error) {
	return TopDownOpts(h, cat, q, reg, Options{})
}

// Options tunes the hierarchical optimizers beyond the paper's defaults.
type Options struct {
	// Penalty adds a processing-load placement term (see Problem.Penalty);
	// nil disables load awareness.
	Penalty func(v netgraph.NodeID, inRate float64) float64
	// Obs, when non-nil and obs.Enabled, receives planner telemetry:
	// per-level search spans, candidates examined, reuse inputs offered
	// (metric names "core.<algo>.*"). Its flight recorder, when armed,
	// additionally receives PlanStarted/PlanChosen trace events.
	Obs *obs.Registry
	// TraceParent, when nonzero, is the trace event that caused this
	// search (the adaptation controller sets it to its gate-decision
	// event, so re-plans link back to the decision that triggered them).
	TraceParent uint64
}

// TopDownOpts is TopDown with explicit Options.
func TopDownOpts(h *hierarchy.Hierarchy, cat *query.Catalog, q *query.Query, reg *ads.Registry, opts Options) (Result, error) {
	sp := obs.StartSpan(opts.Obs, "core.topdown.plan")
	defer sp.End()
	started := emitPlanStarted(opts, q, "topdown")
	rt := query.BuildRates(cat, q)
	wt := query.BuildWidths(cat, q)
	td := &tdPlanner{h: h, q: q, rt: rt, wt: wt, reg: reg, opts: opts, obs: newPlannerObs(opts.Obs, "topdown")}
	plan, trace, err := td.planView(h.Top(), BaseInputs(cat, q, rt), q.Sink, true)
	if err != nil {
		return Result{}, fmt.Errorf("top-down: %w", err)
	}
	plan = AttachAggregate(q, plan, h.Cover(h.Top()), h.Paths().Dist, opts.Penalty)
	wt.Stamp(plan)
	if err := plan.Validate(); err != nil {
		return Result{}, fmt.Errorf("top-down: invalid plan: %w", err)
	}
	res := Result{
		Plan:            plan,
		Cost:            plan.Cost(h.Paths().Dist, q.Sink),
		PlansConsidered: td.plans,
		ClustersPlanned: td.clusters,
		LevelsVisited:   h.Height(),
		Trace:           trace,
	}
	emitPlanChosen(opts, q, started, res)
	return res, nil
}

type tdPlanner struct {
	h        *hierarchy.Hierarchy
	q        *query.Query
	rt       query.RateTable
	wt       query.WidthTable
	reg      *ads.Registry
	opts     Options
	obs      plannerObs
	plans    float64
	clusters int
	// cover is the current view's cluster cover as a bitset, reused across
	// every planView call of the query (each view fully consumes it before
	// recursing into child views).
	cover nodeBitset
}

// planView plans one view (a sub-query given by its leaves) within cluster
// c, shipping the result toward out (costed when deliver is set), and
// recursively refines operator placements down to physical nodes.
func (td *tdPlanner) planView(c *hierarchy.Cluster, leaves []query.Input, out netgraph.NodeID, deliver bool) (*query.PlanNode, *PlanStep, error) {
	start := time.Now()
	step := &PlanStep{Level: c.Level, Coordinator: c.Coordinator}
	goal := unionMask(leaves)
	if len(leaves) == 1 && leaves[0].Mask == goal {
		// Nothing to join; the stream flows to its consumer directly. The
		// step examines no candidates (Plans stays 0), keeping the trace's
		// totals equal to the search-space accounting.
		step.Elapsed = time.Since(start)
		return query.Leaf(leaves[0]), step, nil
	}

	td.cover.fill(td.h.Cover(c), td.h.Graph().NumNodes())
	coverSet := &td.cover
	inputs := append([]query.Input(nil), leaves...)
	if td.reg != nil {
		for _, in := range td.reg.InputsFor(td.q, td.rt, func(n netgraph.NodeID) bool { return coverSet.has(n) }) {
			if in.Mask&goal == in.Mask {
				inputs = append(inputs, in)
				step.ReuseOffered++
			}
		}
	}

	// Per-level estimated distances: endpoints inside this cluster's cover
	// are seen through their level-l representatives; remote endpoints
	// (streams entering the cluster) keep their physical location.
	level := c.Level
	paths := td.h.Paths()
	rep := func(n netgraph.NodeID) netgraph.NodeID {
		if coverSet.has(n) {
			return td.h.Rep(n, level)
		}
		return n
	}
	est := func(a, b netgraph.NodeID) float64 { return paths.Dist(rep(a), rep(b)) }

	plan0, cost0, err := Solve(Problem{
		Inputs: inputs, Sites: c.Members, Dist: est, Rates: td.rt, Widths: td.wt,
		Goal: goal, Sink: out, Deliver: deliver, Penalty: td.opts.Penalty,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("level %d: %w", level, err)
	}
	step.Plans = costpkg.ClusterSpace(len(leaves), len(c.Members))
	step.Inputs = len(inputs)
	step.BestCost = cost0
	step.Elapsed = time.Since(start) // local search only; children time themselves
	td.plans += step.Plans
	td.clusters++
	td.obs.search(step)

	if level == 1 || plan0.IsLeaf() {
		// Placements are physical (level 1) or the goal was met by a
		// single reused stream; no refinement needed.
		return plan0, step, nil
	}

	// The assignment partitions the query into views: maximal connected
	// operator groups assigned to the same member. Refine each view inside
	// the member's underlying cluster, producers before consumers.
	comps := splitComponents(plan0)
	resolved := map[*component]*query.PlanNode{}
	var resolve func(cp *component) (*query.PlanNode, error)
	resolve = func(cp *component) (*query.PlanNode, error) {
		if got, ok := resolved[cp]; ok {
			return got, nil
		}
		var compLeaves []query.Input
		childTrees := map[query.Mask]*query.PlanNode{}
		for _, x := range cp.externalChildren {
			if x.IsLeaf() {
				compLeaves = append(compLeaves, *x.In)
				continue
			}
			// Output of a view assigned to another member: resolve the
			// producer first so its true physical location is known.
			sub, err := resolve(comps.byRoot[x])
			if err != nil {
				return nil, err
			}
			childTrees[x.Mask] = sub
			compLeaves = append(compLeaves, query.Input{
				Mask: x.Mask, Rate: x.Rate, Loc: sub.Loc, Sig: td.q.SigOf(x.Mask),
				Width: x.Width,
			})
		}
		// Ship toward the consumer: the final sink for the root view, the
		// consuming member's node otherwise.
		cOut, cDeliver := out, deliver
		if cp.consumer != nil {
			cOut, cDeliver = cp.consumer.Loc, true
		}
		sub, childStep, err := td.planView(td.h.ChildCluster(cp.member, level), compLeaves, cOut, cDeliver)
		if err != nil {
			return nil, err
		}
		step.Children = append(step.Children, childStep)
		sub = substituteLeaves(sub, childTrees)
		resolved[cp] = sub
		return sub, nil
	}
	plan, err := resolve(comps.byRoot[rootOp(plan0)])
	if err != nil {
		return nil, nil, err
	}
	return plan, step, nil
}

// component is a maximal connected group of operators assigned to the same
// cluster member.
type component struct {
	member netgraph.NodeID
	root   *query.PlanNode
	// externalChildren are the streams entering the component: plan leaves
	// or roots of components at other members.
	externalChildren []*query.PlanNode
	// consumer is the operator (in another component) consuming this
	// component's root output; nil for the root component.
	consumer *query.PlanNode
}

type componentSet struct {
	all    []*component
	byRoot map[*query.PlanNode]*component
}

func rootOp(plan *query.PlanNode) *query.PlanNode { return plan }

// splitComponents groups the operators of a placed plan into per-member
// views. The plan's root must be an operator.
func splitComponents(plan *query.PlanNode) *componentSet {
	cs := &componentSet{byRoot: map[*query.PlanNode]*component{}}
	var build func(op *query.PlanNode, consumer *query.PlanNode) *component
	var grow func(cp *component, op *query.PlanNode)
	grow = func(cp *component, op *query.PlanNode) {
		for _, child := range []*query.PlanNode{op.L, op.R} {
			switch {
			case child.IsLeaf():
				cp.externalChildren = append(cp.externalChildren, child)
			case child.Loc == cp.member:
				grow(cp, child)
			default:
				sub := build(child, op)
				cp.externalChildren = append(cp.externalChildren, sub.root)
			}
		}
	}
	build = func(op *query.PlanNode, consumer *query.PlanNode) *component {
		cp := &component{member: op.Loc, root: op, consumer: consumer}
		cs.all = append(cs.all, cp)
		cs.byRoot[op] = cp
		grow(cp, op)
		return cp
	}
	build(plan, nil)
	return cs
}
