// Package core implements the paper's optimization algorithms: the joint
// plan+placement search performed inside one cluster (the building block
// both heuristics share), the Top-Down and Bottom-Up hierarchical
// algorithms, and the exhaustive/DP optimal baseline.
package core

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// Problem is one joint plan+placement search: cover Goal by joining the
// available Inputs, placing every operator on one of Sites, minimizing
// communication cost per unit time under Dist. Derived inputs model
// operator reuse: they arrive free of upstream cost.
type Problem struct {
	// Inputs are the available streams. Inputs whose mask is not a subset
	// of Goal are ignored. Several inputs may cover the same mask (e.g. a
	// base pair and an advertised derived stream); the search picks freely.
	Inputs []query.Input
	// Sites are the candidate processing nodes for operators.
	Sites []netgraph.NodeID
	// Dist measures traversal cost between physical nodes. It must be a
	// metric (shortest-path costs are); relaying through intermediate
	// sites is therefore never modeled explicitly.
	Dist query.DistFunc
	// Rates gives the expected output rate of every sub-join.
	Rates query.RateTable
	// Widths gives the byte width of every sub-join's output tuples; nil
	// means no width information and every edge prices at rate×distance,
	// the pre-schema model. With widths, every edge prices at
	// rate×width×distance, so the search trades placements on actual
	// bytes-on-wire. Load penalties stay on raw tuple rates (processing
	// load tracks tuples, not bytes).
	Widths query.WidthTable
	// Goal is the set of source positions the plan must cover.
	Goal query.Mask
	// Sink receives the root output when Deliver is set; with Deliver
	// false the root's location is chosen to minimize internal cost only
	// and no delivery edge is costed.
	Sink    netgraph.NodeID
	Deliver bool
	// Penalty, when non-nil, adds a processing-load term for placing an
	// operator with the given total input rate on a node — how the
	// optimizers avoid overloaded nodes (load.Tracker builds these).
	Penalty func(v netgraph.NodeID, inRate float64) float64
}

const inf = math.MaxFloat64

// solveScratch holds every buffer one DP run needs, pooled so repeated
// per-cluster solves (Top-Down recursion, Bottom-Up level sweeps, the
// figure experiments re-planning hundreds of deployments) stop allocating.
// All DP state lives in flat contiguous slabs indexed by int(S)*m+v — one
// cache-friendly block per table instead of a fresh []float64 per
// sub-cluster mask.
type solveScratch struct {
	ins  []query.Input // usable inputs (masks ⊆ goal)
	subs []query.Mask  // submask enumeration, reused run to run

	// Materialized distances: the DP probes these flat tables instead of
	// calling Problem.Dist per probe. sdist is the m×m site-to-site
	// matrix; idist the len(ins)×m input-location-to-site matrix. Each
	// needed pair is computed exactly once per solve, which also turns
	// hierarchy-estimate DistFuncs from a per-probe rep walk into a
	// one-time materialization.
	sdist []float64
	idist []float64

	// DP tables, slab-indexed by int(S)*m+v.
	avail   []float64    // cheapest way to have sub-join S at site v
	availCh []int32      // >=0: input index; <0: -(u+2) op at site u
	opCost  []float64    // op producing S placed at v
	opSplit []query.Mask // left part of the best split (holds lowest bit)
}

var solvePool = sync.Pool{New: func() interface{} { return new(solveScratch) }}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growMasks(s []query.Mask, n int) []query.Mask {
	if cap(s) < n {
		return make([]query.Mask, n)
	}
	return s[:n]
}

// Solve finds the minimum-cost plan for p using dynamic programming over
// source subsets: avail[S][v] is the cheapest way to have the sub-join S
// materialized at site v, either shipped from an input or produced by an
// operator placed at some site. The DP examines exactly the solutions an
// exhaustive tree×placement enumeration would (validated against the
// naive enumerator in tests) at a fraction of the time.
func Solve(p Problem) (*query.PlanNode, float64, error) {
	sc := solvePool.Get().(*solveScratch)
	plan, cost, err := sc.solve(p, true)
	solvePool.Put(sc)
	return plan, cost, err
}

// SolveCost runs the same DP as Solve but skips plan reconstruction,
// returning only the optimal cost. In steady state it performs zero heap
// allocations (pinned by TestSolveCostAllocFree), which makes it the right
// entry point for search loops that score many candidate problems and
// materialize a plan only for the winner.
func SolveCost(p Problem) (float64, error) {
	sc := solvePool.Get().(*solveScratch)
	_, cost, err := sc.solve(p, false)
	solvePool.Put(sc)
	return cost, err
}

// solve runs the DP inside sc's buffers. The returned plan (when buildPlan
// is set) is freshly allocated and shares nothing with sc, so the caller
// can return sc to the pool immediately.
func (sc *solveScratch) solve(p Problem, buildPlan bool) (*query.PlanNode, float64, error) {
	if p.Goal == 0 {
		return nil, 0, fmt.Errorf("core: empty goal")
	}
	// Collect usable inputs.
	ins := sc.ins[:0]
	for _, in := range p.Inputs {
		if in.Mask != 0 && in.Mask&p.Goal == in.Mask {
			ins = append(ins, in)
		}
	}
	sc.ins = ins
	covered := query.Mask(0)
	for i := range ins {
		covered |= ins[i].Mask
	}
	if covered != p.Goal {
		return nil, 0, fmt.Errorf("core: goal %b not coverable (inputs cover %b)", p.Goal, covered)
	}

	sites := dedupeSites(p.Sites)
	m := len(sites)
	if m == 0 {
		return nil, 0, fmt.Errorf("core: no candidate sites")
	}

	size := 1 << uint(bits.Len32(uint32(p.Goal)))
	slab := size * m
	sc.avail = growFloats(sc.avail, slab)
	sc.availCh = growInt32(sc.availCh, slab)
	sc.opCost = growFloats(sc.opCost, slab)
	sc.opSplit = growMasks(sc.opSplit, slab)
	// Only rows of actual submasks of Goal are written and read, so the
	// slabs need no clearing between runs.

	// Materialize every distance the DP will probe, once.
	sc.sdist = growFloats(sc.sdist, m*m)
	for u := 0; u < m; u++ {
		row := sc.sdist[u*m : u*m+m]
		su := sites[u]
		for v := range row {
			row[v] = p.Dist(su, sites[v])
		}
	}
	sc.idist = growFloats(sc.idist, len(ins)*m)
	for i := range ins {
		row := sc.idist[i*m : i*m+m]
		loc := ins[i].Loc
		for v := range row {
			row[v] = p.Dist(loc, sites[v])
		}
	}

	// Enumerate submasks of Goal in increasing popcount order.
	subs := appendSubmasksByPopcount(sc.subs[:0], p.Goal)
	sc.subs = subs
	avail, availCh := sc.avail, sc.availCh
	for _, s := range subs {
		base := int(s) * m
		av := avail[base : base+m]
		ch := availCh[base : base+m]
		for v := range av {
			av[v], ch[v] = inf, math.MinInt32
		}
		// Direct inputs.
		for i := range ins {
			if ins[i].Mask != s {
				continue
			}
			rate := ins[i].Rate * inputWidth(&ins[i], p.Widths)
			irow := sc.idist[i*m : i*m+m]
			for v := range av {
				if c := rate * irow[v]; c < av[v] {
					av[v], ch[v] = c, int32(i)
				}
			}
		}
		if s.Count() >= 2 {
			oc := sc.opCost[base : base+m]
			os := sc.opSplit[base : base+m]
			low := s & -s
			for v := 0; v < m; v++ {
				best, bestSplit := inf, query.Mask(0)
				for m1 := (s - 1) & s; m1 > 0; m1 = (m1 - 1) & s {
					if m1&low == 0 {
						continue // canonical: left part holds the lowest bit
					}
					m2 := s ^ m1
					a1, a2 := avail[int(m1)*m+v], avail[int(m2)*m+v]
					if a1 == inf || a2 == inf {
						continue
					}
					c := a1 + a2
					if p.Penalty != nil {
						c += p.Penalty(sites[v], p.Rates.Rate(m1)+p.Rates.Rate(m2))
					}
					if c < best {
						best, bestSplit = c, m1
					}
				}
				oc[v], os[v] = best, bestSplit
			}
			// Fold "operator at u, result shipped to v" into avail.
			rate := p.Rates.Rate(s) * p.Widths.Width(s)
			for u := 0; u < m; u++ {
				ocu := oc[u]
				if ocu == inf {
					continue
				}
				srow := sc.sdist[u*m : u*m+m]
				for v := range av {
					if c := ocu + rate*srow[v]; c < av[v] {
						av[v], ch[v] = c, int32(-(u + 2))
					}
				}
			}
		}
	}

	// Choose the root realization.
	rate := p.Rates.Rate(p.Goal) * p.Widths.Width(p.Goal)
	best := inf
	bestInput, bestSite := -1, -1
	for i := range ins {
		if ins[i].Mask != p.Goal {
			continue
		}
		c := 0.0
		if p.Deliver {
			c = ins[i].Rate * inputWidth(&ins[i], p.Widths) * p.Dist(ins[i].Loc, p.Sink)
		}
		if c < best {
			best, bestInput, bestSite = c, i, -1
		}
	}
	if p.Goal.Count() >= 2 {
		gbase := int(p.Goal) * m
		for u := 0; u < m; u++ {
			ocu := sc.opCost[gbase+u]
			if ocu == inf {
				continue
			}
			c := ocu
			if p.Deliver {
				c += rate * p.Dist(sites[u], p.Sink)
			}
			if c < best {
				best, bestInput, bestSite = c, -1, u
			}
		}
	}
	if best == inf {
		return nil, 0, fmt.Errorf("core: goal %b unachievable from available inputs", p.Goal)
	}
	if !buildPlan {
		return nil, best, nil
	}

	r := rebuilder{rates: p.Rates, widths: p.Widths, ins: ins, sites: sites, m: m, availCh: sc.availCh, opSplit: sc.opSplit}
	var root *query.PlanNode
	if bestInput >= 0 {
		root = r.leaf(ins[bestInput])
	} else {
		root = r.buildOp(p.Goal, bestSite)
	}
	return root, best, nil
}

// inputWidth returns the byte width of an input's tuples: its own
// declared width when set (a derived producer's actual output), else the
// width table's entry for its mask, else 1.
func inputWidth(in *query.Input, widths query.WidthTable) float64 {
	if in.Width > 0 {
		return in.Width
	}
	return widths.Width(in.Mask)
}

// rebuilder reconstructs the optimal plan from the flat DP tables. It must
// finish before the scratch returns to the pool; the tree it builds copies
// every input it references, so nothing aliases the scratch afterwards.
type rebuilder struct {
	rates   query.RateTable
	widths  query.WidthTable
	ins     []query.Input
	sites   []netgraph.NodeID
	m       int
	availCh []int32
	opSplit []query.Mask
}

// leaf builds a leaf node, stamping its tuple width from the table when
// the input carries none of its own.
func (r *rebuilder) leaf(in query.Input) *query.PlanNode {
	if in.Width == 0 && r.widths != nil {
		in.Width = r.widths.Width(in.Mask)
	}
	return query.Leaf(in)
}

// buildOp reconstructs the operator producing sub-join s placed at site
// index u.
func (r *rebuilder) buildOp(s query.Mask, u int) *query.PlanNode {
	m1 := r.opSplit[int(s)*r.m+u]
	m2 := s ^ m1
	l := r.buildAvail(m1, u)
	rt := r.buildAvail(m2, u)
	n := query.Join(l, rt, r.sites[u], r.rates.Rate(s))
	if r.widths != nil {
		n.Width = r.widths.Width(s)
	}
	return n
}

// buildAvail reconstructs the realization of sub-join s whose output feeds
// a consumer at site index v.
func (r *rebuilder) buildAvail(s query.Mask, v int) *query.PlanNode {
	ch := r.availCh[int(s)*r.m+v]
	if ch >= 0 {
		return r.leaf(r.ins[ch])
	}
	return r.buildOp(s, int(-(ch + 2)))
}

var dedupePool = sync.Pool{New: func() interface{} { return new(nodeBitset) }}

// dedupeSites drops duplicate site IDs, preserving first-occurrence order.
// Site lists are almost always already unique (cluster members never
// repeat), so duplicates are detected with a pooled bitset and the input
// slice is returned as-is — no map, no copy, no allocation — unless a
// duplicate actually appears. Callers treat the result as read-only.
func dedupeSites(sites []netgraph.NodeID) []netgraph.NodeID {
	maxID := netgraph.NodeID(-1)
	for _, s := range sites {
		if s < 0 || s >= 1<<22 {
			return dedupeSitesMap(sites) // exotic IDs: fall back to the map
		}
		if s > maxID {
			maxID = s
		}
	}
	if len(sites) == 0 {
		return sites
	}
	bs := dedupePool.Get().(*nodeBitset)
	bs.reset(int(maxID) + 1)
	out := sites
	unique := true
	for i, s := range sites {
		if bs.has(s) {
			if unique {
				// First duplicate: copy the unique prefix, compact from here.
				out = make([]netgraph.NodeID, i, len(sites))
				copy(out, sites[:i])
				unique = false
			}
			continue
		}
		bs.add(s)
		if !unique {
			out = append(out, s)
		}
	}
	dedupePool.Put(bs)
	return out
}

// dedupeSitesMap is the defensive slow path for site IDs a bitset cannot
// index (negative or absurdly large — nothing in the repo produces them).
func dedupeSitesMap(sites []netgraph.NodeID) []netgraph.NodeID {
	seen := map[netgraph.NodeID]bool{}
	out := make([]netgraph.NodeID, 0, len(sites))
	for _, s := range sites {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// submasksByPopcount lists all non-empty submasks of goal, smallest
// cardinality first, so DP dependencies are always ready.
func submasksByPopcount(goal query.Mask) []query.Mask {
	return appendSubmasksByPopcount(nil, goal)
}

// appendSubmasksByPopcount is submasksByPopcount into a caller-provided
// buffer, so the pooled solver enumerates without allocating.
func appendSubmasksByPopcount(subs []query.Mask, goal query.Mask) []query.Mask {
	for s := goal; s > 0; s = (s - 1) & goal {
		subs = append(subs, s)
	}
	// Insertion sort by popcount (lists are tiny: 2^K−1 entries).
	for i := 1; i < len(subs); i++ {
		for j := i; j > 0 && subs[j].Count() < subs[j-1].Count(); j-- {
			subs[j], subs[j-1] = subs[j-1], subs[j]
		}
	}
	return subs
}
