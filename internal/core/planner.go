// Package core implements the paper's optimization algorithms: the joint
// plan+placement search performed inside one cluster (the building block
// both heuristics share), the Top-Down and Bottom-Up hierarchical
// algorithms, and the exhaustive/DP optimal baseline.
package core

import (
	"fmt"
	"math"
	"math/bits"

	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// Problem is one joint plan+placement search: cover Goal by joining the
// available Inputs, placing every operator on one of Sites, minimizing
// communication cost per unit time under Dist. Derived inputs model
// operator reuse: they arrive free of upstream cost.
type Problem struct {
	// Inputs are the available streams. Inputs whose mask is not a subset
	// of Goal are ignored. Several inputs may cover the same mask (e.g. a
	// base pair and an advertised derived stream); the search picks freely.
	Inputs []query.Input
	// Sites are the candidate processing nodes for operators.
	Sites []netgraph.NodeID
	// Dist measures traversal cost between physical nodes. It must be a
	// metric (shortest-path costs are); relaying through intermediate
	// sites is therefore never modeled explicitly.
	Dist query.DistFunc
	// Rates gives the expected output rate of every sub-join.
	Rates query.RateTable
	// Goal is the set of source positions the plan must cover.
	Goal query.Mask
	// Sink receives the root output when Deliver is set; with Deliver
	// false the root's location is chosen to minimize internal cost only
	// and no delivery edge is costed.
	Sink    netgraph.NodeID
	Deliver bool
	// Penalty, when non-nil, adds a processing-load term for placing an
	// operator with the given total input rate on a node — how the
	// optimizers avoid overloaded nodes (load.Tracker builds these).
	Penalty func(v netgraph.NodeID, inRate float64) float64
}

// Solve finds the minimum-cost plan for p using dynamic programming over
// source subsets: avail[S][v] is the cheapest way to have the sub-join S
// materialized at site v, either shipped from an input or produced by an
// operator placed at some site. The DP examines exactly the solutions an
// exhaustive tree×placement enumeration would (validated against the
// naive enumerator in tests) at a fraction of the time.
func Solve(p Problem) (*query.PlanNode, float64, error) {
	if p.Goal == 0 {
		return nil, 0, fmt.Errorf("core: empty goal")
	}
	// Collect usable inputs.
	var ins []query.Input
	for _, in := range p.Inputs {
		if in.Mask != 0 && in.Mask&p.Goal == in.Mask {
			ins = append(ins, in)
		}
	}
	covered := query.Mask(0)
	for _, in := range ins {
		covered |= in.Mask
	}
	if covered != p.Goal {
		return nil, 0, fmt.Errorf("core: goal %b not coverable (inputs cover %b)", p.Goal, covered)
	}

	sites := dedupeSites(p.Sites)
	m := len(sites)
	if m == 0 {
		return nil, 0, fmt.Errorf("core: no candidate sites")
	}

	size := 1 << uint(bits.Len32(uint32(p.Goal)))
	const inf = math.MaxFloat64
	avail := make([][]float64, size)  // avail[S][v]
	availCh := make([][]int32, size)  // >=0: input index; <0: -(u+2) op at site u
	opCost := make([][]float64, size) // op placed at v
	opSplit := make([][]query.Mask, size)

	newF := func() []float64 {
		f := make([]float64, m)
		for i := range f {
			f[i] = inf
		}
		return f
	}

	// Enumerate submasks of Goal in increasing popcount order.
	subs := submasksByPopcount(p.Goal)
	for _, s := range subs {
		av, ch := newF(), make([]int32, m)
		for i := range ch {
			ch[i] = math.MinInt32
		}
		// Direct inputs.
		for i, in := range ins {
			if in.Mask != s {
				continue
			}
			for v, sv := range sites {
				if c := in.Rate * p.Dist(in.Loc, sv); c < av[v] {
					av[v], ch[v] = c, int32(i)
				}
			}
		}
		if s.Count() >= 2 {
			oc, os := newF(), make([]query.Mask, m)
			low := s & -s
			for v := 0; v < m; v++ {
				best, bestSplit := inf, query.Mask(0)
				for m1 := (s - 1) & s; m1 > 0; m1 = (m1 - 1) & s {
					if m1&low == 0 {
						continue // canonical: left part holds the lowest bit
					}
					m2 := s ^ m1
					a1, a2 := avail[m1][v], avail[m2][v]
					if a1 == inf || a2 == inf {
						continue
					}
					c := a1 + a2
					if p.Penalty != nil {
						c += p.Penalty(sites[v], p.Rates.Rate(m1)+p.Rates.Rate(m2))
					}
					if c < best {
						best, bestSplit = c, m1
					}
				}
				oc[v], os[v] = best, bestSplit
			}
			opCost[s], opSplit[s] = oc, os
			// Fold "operator at u, result shipped to v" into avail.
			rate := p.Rates.Rate(s)
			for u := 0; u < m; u++ {
				if oc[u] == inf {
					continue
				}
				for v := 0; v < m; v++ {
					if c := oc[u] + rate*p.Dist(sites[u], sites[v]); c < av[v] {
						av[v], ch[v] = c, int32(-(u + 2))
					}
				}
			}
		}
		avail[s], availCh[s] = av, ch
	}

	// Choose the root realization.
	rate := p.Rates.Rate(p.Goal)
	best := inf
	bestInput, bestSite := -1, -1
	for i, in := range ins {
		if in.Mask != p.Goal {
			continue
		}
		c := 0.0
		if p.Deliver {
			c = in.Rate * p.Dist(in.Loc, p.Sink)
		}
		if c < best {
			best, bestInput, bestSite = c, i, -1
		}
	}
	if oc := opCost[p.Goal]; oc != nil {
		for u := 0; u < m; u++ {
			if oc[u] == inf {
				continue
			}
			c := oc[u]
			if p.Deliver {
				c += rate * p.Dist(sites[u], p.Sink)
			}
			if c < best {
				best, bestInput, bestSite = c, -1, u
			}
		}
	}
	if best == inf {
		return nil, 0, fmt.Errorf("core: goal %b unachievable from available inputs", p.Goal)
	}

	r := rebuilder{p: p, ins: ins, sites: sites, avail: avail, availCh: availCh, opSplit: opSplit}
	var root *query.PlanNode
	if bestInput >= 0 {
		root = query.Leaf(ins[bestInput])
	} else {
		root = r.buildOp(p.Goal, bestSite)
	}
	return root, best, nil
}

type rebuilder struct {
	p       Problem
	ins     []query.Input
	sites   []netgraph.NodeID
	avail   [][]float64
	availCh [][]int32
	opSplit [][]query.Mask
}

// buildOp reconstructs the operator producing sub-join s placed at site
// index u.
func (r *rebuilder) buildOp(s query.Mask, u int) *query.PlanNode {
	m1 := r.opSplit[s][u]
	m2 := s ^ m1
	l := r.buildAvail(m1, u)
	rt := r.buildAvail(m2, u)
	return query.Join(l, rt, r.sites[u], r.p.Rates.Rate(s))
}

// buildAvail reconstructs the realization of sub-join s whose output feeds
// a consumer at site index v.
func (r *rebuilder) buildAvail(s query.Mask, v int) *query.PlanNode {
	ch := r.availCh[s][v]
	if ch >= 0 {
		return query.Leaf(r.ins[ch])
	}
	return r.buildOp(s, int(-(ch + 2)))
}

func dedupeSites(sites []netgraph.NodeID) []netgraph.NodeID {
	seen := map[netgraph.NodeID]bool{}
	out := make([]netgraph.NodeID, 0, len(sites))
	for _, s := range sites {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// submasksByPopcount lists all non-empty submasks of goal, smallest
// cardinality first, so DP dependencies are always ready.
func submasksByPopcount(goal query.Mask) []query.Mask {
	var subs []query.Mask
	for s := goal; s > 0; s = (s - 1) & goal {
		subs = append(subs, s)
	}
	// Insertion sort by popcount (lists are tiny: 2^K−1 entries).
	for i := 1; i < len(subs); i++ {
		for j := i; j > 0 && subs[j].Count() < subs[j-1].Count(); j-- {
			subs[j], subs[j-1] = subs[j-1], subs[j]
		}
	}
	return subs
}
