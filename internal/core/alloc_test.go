package core

import (
	"testing"

	"hnp/internal/netgraph"
)

// TestSolveCostAllocFree pins the pooled DP kernel at zero steady-state
// heap allocations: once the solve scratch is warm, scoring a Problem
// must not allocate at all. This is the regression guard for the flat-slab
// kernel — any map, closure-escape, or per-submask slice that sneaks back
// into the hot path shows up here as a non-zero count.
func TestSolveCostAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the pin is only meaningful without it")
	}
	p, _, _ := problemFixture(1, true)
	p.Sites = dedupeSitesMap(p.Sites) // unique sites: the zero-alloc fast path
	if _, err := SolveCost(p); err != nil {
		t.Fatal(err)
	}
	// A GC between runs can evict the pooled scratch and force a one-off
	// re-allocation; retry a couple of times before calling it a leak.
	var allocs float64
	for attempt := 0; attempt < 3; attempt++ {
		allocs = testing.AllocsPerRun(100, func() {
			if _, err := SolveCost(p); err != nil {
				t.Fatal(err)
			}
		})
		if allocs == 0 {
			return
		}
	}
	t.Errorf("SolveCost allocates %v objects per run, want 0", allocs)
}

// TestSolveSteadyStateAllocsOnlyPlan asserts the full Solve (including
// plan reconstruction) allocates nothing beyond the returned plan tree:
// its allocation count must not grow with sites or DP table size. The
// fixture's plan is a handful of nodes; 24 objects is far below the
// hundreds the pre-kernel implementation spent on DP tables alone.
func TestSolveSteadyStateAllocsOnlyPlan(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the pin is only meaningful without it")
	}
	p, _, _ := problemFixture(1, true)
	p.Sites = dedupeSitesMap(p.Sites)
	if _, _, err := Solve(p); err != nil {
		t.Fatal(err)
	}
	var allocs float64
	for attempt := 0; attempt < 3; attempt++ {
		allocs = testing.AllocsPerRun(100, func() {
			if _, _, err := Solve(p); err != nil {
				t.Fatal(err)
			}
		})
		if allocs <= 24 {
			return
		}
	}
	t.Errorf("Solve allocates %v objects per run, want only the plan tree (<= 24)", allocs)
}

// TestDedupeSitesUniqueNoCopy asserts the common case — already-unique
// site lists — returns the input slice itself without allocating.
func TestDedupeSitesUniqueNoCopy(t *testing.T) {
	in := []netgraph.NodeID{7, 3, 0, 12, 5, 64, 129}
	out := dedupeSites(in)
	if len(out) != len(in) || &out[0] != &in[0] {
		t.Fatalf("unique sites were copied")
	}
	allocs := testing.AllocsPerRun(100, func() { dedupeSites(in) })
	if allocs != 0 {
		t.Errorf("dedupeSites allocates %v objects on unique input, want 0", allocs)
	}
	// Duplicates still compact to first-occurrence order, like the map did.
	dup := append(append([]netgraph.NodeID(nil), in...), in[0], in[2], in[6])
	out = dedupeSites(dup)
	if len(out) != len(in) {
		t.Fatalf("dedupe kept %d of %d unique sites", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("dedupe reordered sites: %v vs %v", out, in)
		}
	}
	// Exotic IDs take the defensive map path but agree on the result.
	weird := []netgraph.NodeID{-3, 5, -3, 1 << 30, 5}
	out = dedupeSites(weird)
	want := []netgraph.NodeID{-3, 5, 1 << 30}
	if len(out) != len(want) {
		t.Fatalf("weird dedupe = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("weird dedupe = %v, want %v", out, want)
		}
	}
}
