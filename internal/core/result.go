package core

import (
	"time"

	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// Result is the outcome of one optimizer run for one query.
type Result struct {
	// Plan is the chosen operator tree with physical placements.
	Plan *query.PlanNode
	// Cost is the communication cost per unit time of the plan measured
	// on the actual network (not the hierarchy's estimates), including
	// delivery to the sink.
	Cost float64
	// PlansConsidered is the size of the search space examined, counted
	// as the nominal exhaustive tree×placement enumeration the algorithm
	// performs in each cluster it plans in (the quantity Figure 9 plots).
	PlansConsidered float64
	// ClustersPlanned counts cluster-level searches performed.
	ClustersPlanned int
	// LevelsVisited counts hierarchy levels traversed by the deployment
	// protocol; the IFLOW runtime derives protocol latency from it.
	LevelsVisited int
	// Trace is the tree of planning steps the deployment protocol
	// performed: which coordinator planned, at which level, examining how
	// many candidate solutions, and which plannings it triggered next.
	// The IFLOW runtime replays it to measure deployment time.
	Trace *PlanStep
}

// PlanStep is one coordinator-local planning action in a deployment.
type PlanStep struct {
	// Level is the hierarchy level the planning cluster lives at.
	Level int
	// Coordinator is the physical node that performed the search.
	Coordinator netgraph.NodeID
	// Plans is the nominal number of solutions examined. Pass-through
	// steps (a single stream flowing to its consumer) examine nothing and
	// report 0, so summing Plans over the trace always reproduces the
	// Result's PlansConsidered accounting exactly.
	Plans float64
	// Inputs is the number of streams the step joined over (leaves of the
	// view plus any reuse candidates offered to the search).
	Inputs int
	// ReuseOffered is how many advertised derived streams were offered to
	// this step's search.
	ReuseOffered int
	// BestCost is the estimated cost of the solution the step chose,
	// measured with the per-level distance estimates it planned under (0
	// for pass-through steps).
	BestCost float64
	// Elapsed is the wall-clock (monotonic) time the step's search took.
	Elapsed time.Duration
	// Children are the plannings triggered by this step (views handed to
	// lower-level coordinators for Top-Down, the next level's rewrite for
	// Bottom-Up).
	Children []*PlanStep
}

// BaseInputs builds the planner inputs for a query's base streams, located
// at their source nodes.
func BaseInputs(cat *query.Catalog, q *query.Query, rt query.RateTable) []query.Input {
	out := make([]query.Input, q.K())
	for i, id := range q.Sources {
		m := query.Mask(1 << uint(i))
		out[i] = query.Input{
			Mask: m,
			Rate: rt.Rate(m),
			Loc:  cat.Stream(id).Source,
			Sig:  q.SigOf(m),
		}
	}
	return out
}

// substituteLeaves replaces every non-derived leaf whose mask and location
// match an assembled subtree with that subtree, linking independently
// planned plan fragments into one tree. It returns the (possibly new)
// root.
func substituteLeaves(root *query.PlanNode, subs map[query.Mask]*query.PlanNode) *query.PlanNode {
	if root == nil {
		return nil
	}
	if root.IsLeaf() {
		if sub, ok := subs[root.Mask]; ok && !root.In.Derived && root.In.Loc == sub.Loc {
			return sub
		}
		return root
	}
	root.L = substituteLeaves(root.L, subs)
	root.R = substituteLeaves(root.R, subs)
	return root
}

func unionMask(inputs []query.Input) query.Mask {
	var m query.Mask
	for _, in := range inputs {
		m |= in.Mask
	}
	return m
}
