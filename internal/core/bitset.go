package core

import "hnp/internal/netgraph"

// nodeBitset is a membership set over physical NodeIDs, one bit per node.
// The planners use it where a map[NodeID]bool used to be rebuilt from
// Cover on every view of every query: a reset is a word-sized memclr over
// existing capacity and a probe is one shift and mask, with no hashing and
// no per-view allocation once warmed up.
type nodeBitset struct {
	words []uint64
}

// reset clears the set and sizes it to hold IDs in [0, n).
func (b *nodeBitset) reset(n int) {
	w := (n + 63) / 64
	if cap(b.words) < w {
		b.words = make([]uint64, w)
		return
	}
	b.words = b.words[:w]
	for i := range b.words {
		b.words[i] = 0
	}
}

// fill resets the set for IDs in [0, n) and adds every given node.
func (b *nodeBitset) fill(nodes []netgraph.NodeID, n int) {
	b.reset(n)
	for _, v := range nodes {
		b.add(v)
	}
}

func (b *nodeBitset) add(v netgraph.NodeID) {
	b.words[v>>6] |= 1 << (uint(v) & 63)
}

// has reports membership; IDs outside the sized range (including negative
// ones) are simply absent, matching the map semantics it replaces.
func (b *nodeBitset) has(v netgraph.NodeID) bool {
	w := int(v >> 6)
	return w >= 0 && w < len(b.words) && b.words[w]&(1<<(uint(v)&63)) != 0
}
