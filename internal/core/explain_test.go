package core

import (
	"math/rand"
	"strings"
	"testing"

	"hnp/internal/ads"
	"hnp/internal/hierarchy"
	"hnp/internal/netgraph"
	"hnp/internal/obs"
	"hnp/internal/workload"
)

func explainWorld(t *testing.T) (*hierarchy.Hierarchy, *workload.Workload) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	g := netgraph.MustTransitStub(64, rng)
	paths := g.ShortestPaths(netgraph.MetricCost)
	h, err := hierarchy.Build(g, paths, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(workload.Default(12, 10), 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	return h, w
}

// TestTraceTotalsMatchAccounting is the -explain invariant: summing the
// examined-candidate counts over the trace must reproduce the Result's
// search-space accounting exactly, for both hierarchical algorithms, with
// and without reuse.
func TestTraceTotalsMatchAccounting(t *testing.T) {
	h, w := explainWorld(t)
	for _, reuse := range []bool{false, true} {
		var reg *ads.Registry
		if reuse {
			reg = ads.NewRegistry()
		}
		for _, q := range w.Queries {
			td, err := TopDown(h, w.Catalog, q, reg)
			if err != nil {
				t.Fatal(err)
			}
			bu, err := BottomUp(h, w.Catalog, q, reg)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range []struct {
				name string
				res  Result
			}{{"top-down", td}, {"bottom-up", bu}} {
				plans, searches := c.res.TraceTotals()
				if !sameCount(plans, c.res.PlansConsidered) {
					t.Fatalf("%s (reuse=%v) q%d: trace plans %g != PlansConsidered %g",
						c.name, reuse, q.ID, plans, c.res.PlansConsidered)
				}
				if searches != c.res.ClustersPlanned {
					t.Fatalf("%s (reuse=%v) q%d: trace searches %d != ClustersPlanned %d",
						c.name, reuse, q.ID, searches, c.res.ClustersPlanned)
				}
			}
			if reg != nil {
				reg.AdvertisePlan(q, td.Plan)
			}
		}
	}
}

func TestExplainRendering(t *testing.T) {
	h, w := explainWorld(t)
	q := w.Queries[0]
	res, err := TopDown(h, w.Catalog, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Explain()
	for _, want := range []string{"level", "examined", "candidates", "totals:", "consistent"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "MISMATCH") {
		t.Fatalf("explain reports accounting mismatch:\n%s", out)
	}
	// A Result without a trace still renders.
	empty := Result{}
	if got := empty.Explain(); !strings.Contains(got, "no planning trace") {
		t.Fatalf("empty explain = %q", got)
	}
}

// TestPlannerObsRecords checks the per-algorithm metrics land in the
// Options.Obs registry and agree with the Result accounting.
func TestPlannerObsRecords(t *testing.T) {
	prev := obs.Enabled.Load()
	obs.Enable()
	defer obs.Enabled.Store(prev)

	h, w := explainWorld(t)
	reg := obs.NewRegistry()
	q := w.Queries[1]
	td, err := TopDownOpts(h, w.Catalog, q, nil, Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	bu, err := BottomUpOpts(h, w.Catalog, q, nil, Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Gauge("core.topdown.plans_considered"); got != td.PlansConsidered {
		t.Fatalf("topdown plans gauge %g != %g", got, td.PlansConsidered)
	}
	if got := snap.Counter("core.topdown.clusters_planned"); got != int64(td.ClustersPlanned) {
		t.Fatalf("topdown clusters %d != %d", got, td.ClustersPlanned)
	}
	if got := snap.Gauge("core.bottomup.plans_considered"); got != bu.PlansConsidered {
		t.Fatalf("bottomup plans gauge %g != %g", got, bu.PlansConsidered)
	}
	if snap.Counter("core.topdown.plan.calls") != 1 || snap.Counter("core.bottomup.plan.calls") != 1 {
		t.Fatal("plan spans not recorded")
	}
	if snap.Histograms["core.topdown.level_seconds"].Count != int64(td.ClustersPlanned) {
		t.Fatalf("level span count %d != clusters %d",
			snap.Histograms["core.topdown.level_seconds"].Count, td.ClustersPlanned)
	}
}
