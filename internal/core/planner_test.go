package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// problemFixture builds a random Problem over a random connected graph.
// Inputs are base streams at random nodes plus, with reuse, a couple of
// derived streams covering random pairs.
func problemFixture(seed int64, reuse bool) (Problem, *query.Query, *query.Catalog) {
	rng := rand.New(rand.NewSource(seed))
	n := 5 + rng.Intn(6)
	g := netgraph.Random(n, 2.5, netgraph.CostRange{Lo: 1, Hi: 10}, netgraph.CostRange{}, rng)
	paths := g.ShortestPaths(netgraph.MetricCost)

	cat := query.NewCatalog(0.01)
	k := 2 + rng.Intn(3) // 2-4 sources
	ids := make([]query.StreamID, k)
	for i := range ids {
		ids[i] = cat.Add("s", 1+rng.Float64()*50, netgraph.NodeID(rng.Intn(n)))
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			cat.SetSelectivity(ids[i], ids[j], 0.01+rng.Float64()*0.2)
		}
	}
	q, err := query.NewQuery(0, ids, netgraph.NodeID(rng.Intn(n)))
	if err != nil {
		panic(err)
	}
	rt := query.BuildRates(cat, q)

	var inputs []query.Input
	for i, id := range ids {
		m := query.Mask(1 << uint(i))
		inputs = append(inputs, query.Input{
			Mask: m, Rate: rt.Rate(m), Loc: cat.Stream(id).Source, Sig: q.SigOf(m),
		})
	}
	if reuse && k >= 3 {
		m := query.Mask(0b011)
		inputs = append(inputs, query.Input{
			Mask: m, Rate: rt.Rate(m), Loc: netgraph.NodeID(rng.Intn(n)),
			Derived: true, Sig: q.SigOf(m),
		})
	}

	// A handful of candidate sites (kept small so NaiveSolve stays cheap).
	nSites := 2 + rng.Intn(3)
	sites := make([]netgraph.NodeID, nSites)
	for i := range sites {
		sites[i] = netgraph.NodeID(rng.Intn(n))
	}
	return Problem{
		Inputs:  inputs,
		Sites:   sites,
		Dist:    paths.Dist,
		Rates:   rt,
		Goal:    q.All(),
		Sink:    q.Sink,
		Deliver: true,
	}, q, cat
}

// The DP must return exactly the optimum found by brute-force enumeration,
// with or without derived inputs, with or without final delivery.
func TestSolveMatchesNaive(t *testing.T) {
	check := func(seed int64, reuse, deliver bool) bool {
		p, _, _ := problemFixture(seed, reuse)
		p.Deliver = deliver
		dpPlan, dpCost, err := Solve(p)
		if err != nil {
			return false
		}
		_, naiveCost, _, err := NaiveSolve(p)
		if err != nil {
			return false
		}
		if math.Abs(dpCost-naiveCost) > 1e-6*(1+naiveCost) {
			t.Logf("seed=%d reuse=%v deliver=%v: dp=%g naive=%g plan=%s",
				seed, reuse, deliver, dpCost, naiveCost, dpPlan)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The cost the DP reports must equal the cost of the plan it reconstructs.
func TestSolveCostMatchesPlan(t *testing.T) {
	check := func(seed int64, reuse bool) bool {
		p, _, _ := problemFixture(seed, reuse)
		plan, cost, err := Solve(p)
		if err != nil {
			return false
		}
		if err := plan.Validate(); err != nil {
			return false
		}
		actual := plan.Cost(p.Dist, p.Sink)
		return math.Abs(actual-cost) <= 1e-6*(1+cost)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolvePlanCoversGoal(t *testing.T) {
	check := func(seed int64) bool {
		p, _, _ := problemFixture(seed, true)
		plan, _, err := Solve(p)
		if err != nil {
			return false
		}
		return plan.Mask == p.Goal
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolveErrors(t *testing.T) {
	p, _, _ := problemFixture(1, false)
	bad := p
	bad.Goal = 0
	if _, _, err := Solve(bad); err == nil {
		t.Error("empty goal accepted")
	}
	bad = p
	bad.Inputs = p.Inputs[:1]
	if _, _, err := Solve(bad); err == nil {
		t.Error("uncoverable goal accepted")
	}
	bad = p
	bad.Sites = nil
	if _, _, err := Solve(bad); err == nil {
		t.Error("no sites accepted")
	}
	if _, _, _, err := NaiveSolve(bad); err == nil {
		t.Error("naive: no sites accepted")
	}
	bad = p
	bad.Goal = 0
	if _, _, _, err := NaiveSolve(bad); err == nil {
		t.Error("naive: empty goal accepted")
	}
}

func TestSolveSingleInputGoal(t *testing.T) {
	// A derived stream covering the whole goal: plan is just the leaf.
	dist := func(a, b netgraph.NodeID) float64 { return math.Abs(float64(a - b)) }
	rt := query.RateTable{0, 1, 1, 5}
	p := Problem{
		Inputs:  []query.Input{{Mask: 0b11, Rate: 5, Loc: 2, Derived: true, Sig: "0|1"}},
		Sites:   []netgraph.NodeID{0, 1, 2, 3},
		Dist:    dist,
		Rates:   rt,
		Goal:    0b11,
		Sink:    4,
		Deliver: true,
	}
	plan, cost, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.IsLeaf() || plan.Loc != 2 {
		t.Errorf("plan = %s", plan)
	}
	if cost != 10 { // 5 * |2-4|
		t.Errorf("cost = %g, want 10", cost)
	}
}

func TestSolvePrefersCheapReuse(t *testing.T) {
	// Base streams far from the sink; a derived stream for their join sits
	// next to the sink. Reuse must win.
	g := netgraph.Line(10, 0)
	paths := g.ShortestPaths(netgraph.MetricCost)
	rt := query.RateTable{0, 100, 100, 50}
	inputs := []query.Input{
		{Mask: 0b01, Rate: 100, Loc: 0, Sig: "0"},
		{Mask: 0b10, Rate: 100, Loc: 1, Sig: "1"},
		{Mask: 0b11, Rate: 50, Loc: 8, Derived: true, Sig: "0|1"},
	}
	sites := []netgraph.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	plan, cost, err := Solve(Problem{
		Inputs: inputs, Sites: sites, Dist: paths.Dist, Rates: rt,
		Goal: 0b11, Sink: 9, Deliver: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.IsLeaf() || !plan.In.Derived {
		t.Errorf("expected reuse, got %s (cost %g)", plan, cost)
	}
	if cost != 50 { // 50 * dist(8,9)
		t.Errorf("cost = %g, want 50", cost)
	}
}

func TestSolveDuplicatesBadReuse(t *testing.T) {
	// Derived stream at the far end of the line: duplicating the operator
	// near the sources must beat reuse ("if it is cheaper to duplicate
	// operators rather than reuse existing ones, the coordinator will do
	// so").
	g := netgraph.Line(20, 0)
	paths := g.ShortestPaths(netgraph.MetricCost)
	rt := query.RateTable{0, 10, 10, 1}
	inputs := []query.Input{
		{Mask: 0b01, Rate: 10, Loc: 0, Sig: "0"},
		{Mask: 0b10, Rate: 10, Loc: 1, Sig: "1"},
		{Mask: 0b11, Rate: 1, Loc: 19, Derived: true, Sig: "0|1"},
	}
	var sites []netgraph.NodeID
	for i := 0; i < 20; i++ {
		sites = append(sites, netgraph.NodeID(i))
	}
	plan, _, err := Solve(Problem{
		Inputs: inputs, Sites: sites, Dist: paths.Dist, Rates: rt,
		Goal: 0b11, Sink: 2, Deliver: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.IsLeaf() {
		t.Errorf("expected a fresh join, got reuse: %s", plan)
	}
}

func TestNaiveExaminedCountsMatchFormula(t *testing.T) {
	// Without reuse the naive enumerator examines exactly
	// NumTrees(k) × sites^(k-1) plans.
	p, q, _ := problemFixture(3, false)
	_, _, examined, err := NaiveSolve(p)
	if err != nil {
		t.Fatal(err)
	}
	k := q.K()
	m := len(dedupeSites(p.Sites))
	want := query.NumTrees(k)
	for i := 1; i < k; i++ {
		want *= int64(m)
	}
	if examined != want {
		t.Errorf("examined = %d, want %d (k=%d m=%d)", examined, want, k, m)
	}
}

func TestSubmasksByPopcount(t *testing.T) {
	subs := submasksByPopcount(0b1011)
	if len(subs) != 7 {
		t.Fatalf("len = %d", len(subs))
	}
	for i := 1; i < len(subs); i++ {
		if subs[i].Count() < subs[i-1].Count() {
			t.Fatalf("not sorted by popcount: %v", subs)
		}
	}
}

// With a load penalty, the DP must still match brute force exactly.
func TestSolveWithPenaltyMatchesNaive(t *testing.T) {
	check := func(seed int64) bool {
		p, _, _ := problemFixture(seed, true)
		// Deterministic pseudo-random per-node load factors.
		p.Penalty = func(v netgraph.NodeID, inRate float64) float64 {
			return float64((int(v)*2654435761)%97) / 10 * inRate
		}
		_, dpCost, err := Solve(p)
		if err != nil {
			return false
		}
		_, naiveCost, _, err := NaiveSolve(p)
		if err != nil {
			return false
		}
		return math.Abs(dpCost-naiveCost) <= 1e-6*(1+naiveCost)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// A crushing penalty on one node must push operators off it.
func TestPenaltySteersPlacement(t *testing.T) {
	p, _, _ := problemFixture(5, false)
	plan, _, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	ops := plan.Operators()
	if len(ops) == 0 {
		t.Skip("single-join fixture degenerated")
	}
	hot := ops[0].Loc
	p.Penalty = func(v netgraph.NodeID, inRate float64) float64 {
		if v == hot {
			return 1e12
		}
		return 0
	}
	plan2, _, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range plan2.Operators() {
		if op.Loc == hot {
			t.Errorf("operator stayed on the overloaded node %d", hot)
		}
	}
}
