package core

import (
	"hnp/internal/obs"
	"hnp/internal/query"
)

// plannerObs carries the pre-bound telemetry handles one optimizer run
// records into. The zero value (nil handles) is a no-op, so planners
// instrument unconditionally and pay nothing when observation is off.
type plannerObs struct {
	// plans accumulates fractional search-space counts, so it is a gauge
	// used as a float accumulator rather than an integer counter.
	plans    *obs.Gauge
	clusters *obs.Counter
	levels   *obs.Histogram
	reuse    *obs.Counter
}

// newPlannerObs binds the per-algorithm metric handles ("core.<algo>.*").
// A nil registry — or observation being disabled — yields the no-op zero
// value without touching the registry.
func newPlannerObs(reg *obs.Registry, algo string) plannerObs {
	if reg == nil || !obs.On() {
		return plannerObs{}
	}
	return plannerObs{
		plans:    reg.Gauge("core." + algo + ".plans_considered"),
		clusters: reg.Counter("core." + algo + ".clusters_planned"),
		levels:   reg.Histogram("core."+algo+".level_seconds", nil),
		reuse:    reg.Counter("core." + algo + ".reuse_offered"),
	}
}

// search records one completed cluster-level search step.
func (po plannerObs) search(s *PlanStep) {
	po.plans.Add(s.Plans)
	po.clusters.Inc()
	po.levels.Observe(s.Elapsed.Seconds())
	po.reuse.Add(int64(s.ReuseOffered))
}

// emitPlanStarted records the start of one optimizer search in the
// registry's flight recorder and returns the event ID (0 when the
// recorder is disarmed). The event is parented on opts.TraceParent so
// controller-triggered re-plans chain back to the gate decision that
// caused them.
func emitPlanStarted(opts Options, q *query.Query, algo string) uint64 {
	tr := opts.Obs.Tracer()
	if !tr.On() {
		return 0
	}
	return tr.Emit(obs.Event{
		Kind:   obs.KindPlanStarted,
		Parent: opts.TraceParent,
		Trace:  obs.QueryTrace(q.ID),
		Query:  q.ID,
		Node:   int(q.Sink),
		Detail: algo,
	})
}

// emitPlanChosen records the completed search: chosen plan cost, search
// space examined, and the root operator's placement.
func emitPlanChosen(opts Options, q *query.Query, started uint64, res Result) {
	tr := opts.Obs.Tracer()
	if !tr.On() {
		return
	}
	tr.Emit(obs.Event{
		Kind:   obs.KindPlanChosen,
		Parent: started,
		Trace:  obs.QueryTrace(q.ID),
		Query:  q.ID,
		Node:   int(res.Plan.Loc),
		Value:  res.Cost,
		Aux:    res.PlansConsidered,
	})
}
