package core

import (
	"fmt"
	"math"

	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// NaiveSolve solves the same Problem as Solve by brute force: it
// enumerates every exact disjoint input cover of the goal, every (bushy)
// join tree over the chosen inputs, and every assignment of operators to
// sites, evaluating each candidate's cost directly. It returns the best
// plan, its cost, and the number of complete solutions examined. It exists
// to validate the DP and to measure the true exhaustive search on tiny
// instances; its cost is exponential in every dimension.
func NaiveSolve(p Problem) (*query.PlanNode, float64, int64, error) {
	if p.Goal == 0 {
		return nil, 0, 0, fmt.Errorf("core: empty goal")
	}
	var ins []query.Input
	for _, in := range p.Inputs {
		if in.Mask != 0 && in.Mask&p.Goal == in.Mask {
			ins = append(ins, in)
		}
	}
	sites := dedupeSites(p.Sites)
	if len(sites) == 0 {
		return nil, 0, 0, fmt.Errorf("core: no candidate sites")
	}

	best := math.MaxFloat64
	var bestPlan *query.PlanNode
	var examined int64

	consider := func(root *query.PlanNode) {
		examined++
		c := root.InternalCost(p.Dist)
		if p.Deliver {
			c += root.Rate * root.WidthOr1() * p.Dist(root.Loc, p.Sink)
		}
		if p.Penalty != nil {
			for _, op := range root.Operators() {
				c += p.Penalty(op.Loc, op.InputRate())
			}
		}
		if c < best {
			best, bestPlan = c, root
		}
	}

	// Enumerate exact disjoint covers of the goal.
	var chosen []query.Input
	var covers func(remaining query.Mask)
	covers = func(remaining query.Mask) {
		if remaining == 0 {
			forEachTree(chosen, sites, p.Rates, p.Widths, consider)
			return
		}
		low := remaining & -remaining
		for _, in := range ins {
			if in.Mask&low == 0 || in.Mask&remaining != in.Mask {
				continue
			}
			chosen = append(chosen, in)
			covers(remaining &^ in.Mask)
			chosen = chosen[:len(chosen)-1]
		}
	}
	covers(p.Goal)

	if bestPlan == nil {
		return nil, 0, examined, fmt.Errorf("core: goal %b unachievable from available inputs", p.Goal)
	}
	return bestPlan, best, examined, nil
}

// forEachTree enumerates every bushy join tree over the given inputs and
// every placement of its operators on sites, invoking consider on each
// fully-placed plan.
func forEachTree(inputs []query.Input, sites []netgraph.NodeID, rates query.RateTable, widths query.WidthTable, consider func(*query.PlanNode)) {
	leaves := make([]*query.PlanNode, len(inputs))
	for i, in := range inputs {
		if in.Width == 0 && widths != nil {
			in.Width = widths.Width(in.Mask)
		}
		leaves[i] = query.Leaf(in)
	}
	if len(leaves) == 1 {
		consider(leaves[0])
		return
	}
	forEachShape(leaves, func(shape *treeShape) {
		ops := shape.opCount()
		placeOps(shape, sites, rates, widths, make([]netgraph.NodeID, ops), 0, consider)
	})
}

// treeShape is an unplaced binary tree over leaves.
type treeShape struct {
	leaf *query.PlanNode
	l, r *treeShape
}

func (t *treeShape) opCount() int {
	if t.leaf != nil {
		return 0
	}
	return 1 + t.l.opCount() + t.r.opCount()
}

// forEachShape enumerates all full binary trees over the leaf set using
// the canonical "first leaf goes left" recursion, yielding (2k−3)!! shapes.
func forEachShape(leaves []*query.PlanNode, yield func(*treeShape)) {
	if len(leaves) == 1 {
		yield(&treeShape{leaf: leaves[0]})
		return
	}
	first, rest := leaves[0], leaves[1:]
	n := len(rest)
	// Choose the non-empty proper subset of rest joining first on the left.
	for sub := 0; sub < (1 << uint(n)); sub++ {
		var left, right []*query.PlanNode
		left = append(left, first)
		for i := 0; i < n; i++ {
			if sub&(1<<uint(i)) != 0 {
				left = append(left, rest[i])
			} else {
				right = append(right, rest[i])
			}
		}
		if len(right) == 0 {
			continue
		}
		forEachShape(left, func(ls *treeShape) {
			forEachShape(right, func(rs *treeShape) {
				yield(&treeShape{l: ls, r: rs})
			})
		})
	}
}

// placeOps enumerates site assignments for each operator of the shape.
func placeOps(shape *treeShape, sites []netgraph.NodeID, rates query.RateTable, widths query.WidthTable, slots []netgraph.NodeID, idx int, consider func(*query.PlanNode)) {
	if idx == len(slots) {
		next := 0
		consider(materialize(shape, rates, widths, slots, &next))
		return
	}
	for _, s := range sites {
		slots[idx] = s
		placeOps(shape, sites, rates, widths, slots, idx+1, consider)
	}
}

// materialize turns a shape plus operator placements (assigned in
// post-order) into a PlanNode tree, with join rates from the rate table
// and output widths from the width table (left unset for nil tables).
func materialize(t *treeShape, rates query.RateTable, widths query.WidthTable, slots []netgraph.NodeID, next *int) *query.PlanNode {
	if t.leaf != nil {
		return t.leaf
	}
	l := materialize(t.l, rates, widths, slots, next)
	r := materialize(t.r, rates, widths, slots, next)
	loc := slots[*next]
	*next++
	n := query.Join(l, r, loc, rates.Rate(l.Mask|r.Mask))
	if widths != nil {
		n.Width = widths.Width(n.Mask)
	}
	return n
}
