package core

import (
	"testing"

	"hnp/internal/query"
)

// splitComponents must group connected same-member operators and expose
// exactly the streams crossing component boundaries.
func TestSplitComponents(t *testing.T) {
	l0 := query.Leaf(query.Input{Mask: 1, Rate: 1, Loc: 0, Sig: "0"})
	l1 := query.Leaf(query.Input{Mask: 2, Rate: 1, Loc: 1, Sig: "1"})
	l2 := query.Leaf(query.Input{Mask: 4, Rate: 1, Loc: 2, Sig: "2"})
	l3 := query.Leaf(query.Input{Mask: 8, Rate: 1, Loc: 3, Sig: "3"})
	// ((l0 ⋈@A l1) ⋈@A (l2 ⋈@B l3)): two ops at member A, one at member B.
	jB := query.Join(l2, l3, 20, 1)
	jA1 := query.Join(l0, l1, 10, 1)
	root := query.Join(jA1, jB, 10, 1)

	cs := splitComponents(root)
	if len(cs.all) != 2 {
		t.Fatalf("components = %d", len(cs.all))
	}
	rootComp := cs.byRoot[root]
	if rootComp == nil || rootComp.member != 10 || rootComp.consumer != nil {
		t.Fatalf("root component %+v", rootComp)
	}
	// Root component externals: l0, l1 (leaves) and jB (other member).
	if len(rootComp.externalChildren) != 3 {
		t.Fatalf("externals = %d", len(rootComp.externalChildren))
	}
	bComp := cs.byRoot[jB]
	if bComp == nil || bComp.member != 20 || bComp.consumer != root {
		t.Fatalf("B component %+v", bComp)
	}
	if len(bComp.externalChildren) != 2 {
		t.Errorf("B externals = %d", len(bComp.externalChildren))
	}
}
