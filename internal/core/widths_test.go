package core

import (
	"math"
	"testing"
	"testing/quick"

	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// widthProblem extends problemFixture with a per-stream width model: every
// stream gets a schema whose total width is seed-dependent, the query gets
// pruned source widths on even positions, and the Problem carries the
// resulting width table.
func widthProblem(seed int64, reuse bool) (Problem, *query.Query) {
	p, q, cat := problemFixture(seed, reuse)
	for i, sid := range q.Sources {
		w := 8 + float64((int(seed)*31+i*17)%120)
		cat.SetSchema(sid, query.Schema{{Name: "a", Width: w / 2}, {Name: "b", Width: w - w/2}})
		if i%2 == 0 {
			q.SrcWidths = append(q.SrcWidths, w/2) // pruned to one column
		} else {
			q.SrcWidths = append(q.SrcWidths, 0) // full schema width
		}
	}
	p.Widths = query.BuildWidths(cat, q)
	return p, q
}

// The DP must still return exactly the brute-force optimum when every
// edge is priced at rate×width instead of rate alone.
func TestSolveWithWidthsMatchesNaive(t *testing.T) {
	check := func(seed int64, reuse, deliver bool) bool {
		p, _ := widthProblem(seed, reuse)
		p.Deliver = deliver
		dpPlan, dpCost, err := Solve(p)
		if err != nil {
			return false
		}
		_, naiveCost, _, err := NaiveSolve(p)
		if err != nil {
			return false
		}
		if math.Abs(dpCost-naiveCost) > 1e-6*(1+naiveCost) {
			t.Logf("seed=%d reuse=%v deliver=%v: dp=%g naive=%g plan=%s",
				seed, reuse, deliver, dpCost, naiveCost, dpPlan)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The cost the width-aware DP reports must equal recomputing the
// reconstructed (width-stamped) plan's cost from scratch.
func TestSolveWithWidthsCostMatchesPlan(t *testing.T) {
	check := func(seed int64, reuse bool) bool {
		p, _ := widthProblem(seed, reuse)
		plan, cost, err := Solve(p)
		if err != nil {
			return false
		}
		if err := plan.Validate(); err != nil {
			return false
		}
		actual := plan.Cost(p.Dist, p.Sink)
		return math.Abs(actual-cost) <= 1e-6*(1+cost)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// With a load penalty on top of width pricing, DP and brute force must
// still agree — the penalty stays in raw tuple rates while transfers are
// priced in bytes, and both solvers must mix the two identically.
func TestSolveWidthsAndPenaltyMatchesNaive(t *testing.T) {
	check := func(seed int64) bool {
		p, _ := widthProblem(seed, true)
		p.Penalty = func(v netgraph.NodeID, inRate float64) float64 {
			return float64((int(v)*2654435761)%97) / 10 * inRate
		}
		_, dpCost, err := Solve(p)
		if err != nil {
			return false
		}
		_, naiveCost, _, err := NaiveSolve(p)
		if err != nil {
			return false
		}
		return math.Abs(dpCost-naiveCost) <= 1e-6*(1+naiveCost)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestWidthsSteerPlacement pins the qualitative behavior the width model
// exists for: on a line, the join gravitates toward the heavier (in
// bytes, not tuples) source, so flipping which stream is wide flips the
// placement — with equal tuple rates, a rate-only model can't tell the
// two configurations apart.
func TestWidthsSteerPlacement(t *testing.T) {
	g := netgraph.Line(20, 0)
	paths := g.ShortestPaths(netgraph.MetricCost)
	rt := query.RateTable{0, 10, 10, 1}
	var sites []netgraph.NodeID
	for i := 0; i < 20; i++ {
		sites = append(sites, netgraph.NodeID(i))
	}
	base := Problem{
		Inputs: []query.Input{
			{Mask: 0b01, Rate: 10, Loc: 0, Sig: "0"},
			{Mask: 0b10, Rate: 10, Loc: 19, Sig: "1"},
		},
		Sites: sites, Dist: paths.Dist, Rates: rt,
		Goal: 0b11, Sink: 10, Deliver: true,
	}

	solveAt := func(widths query.WidthTable) netgraph.NodeID {
		p := base
		p.Inputs = append([]query.Input(nil), base.Inputs...)
		p.Widths = widths
		plan, _, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		return plan.Loc
	}

	wideLeft := solveAt(query.WidthTable{0, 500, 1, 501})
	wideRight := solveAt(query.WidthTable{0, 1, 500, 501})
	if wideLeft >= wideRight {
		t.Errorf("join placed at %d with the wide stream left, %d with it right — widths never steered placement",
			wideLeft, wideRight)
	}
	if wideLeft > 2 {
		t.Errorf("wide-left join at node %d, want near node 0", wideLeft)
	}
	if wideRight < 17 {
		t.Errorf("wide-right join at node %d, want near node 19", wideRight)
	}
}

// TestNilWidthsUnchanged: a Problem without a width table must solve to
// the same plan and cost as before the width model existed (widths
// degrade to 1 everywhere). The fixture-based quick checks above run the
// same seeds as the legacy tests; this pins one concrete case.
func TestNilWidthsUnchanged(t *testing.T) {
	p, _, _ := problemFixture(11, true)
	planA, costA, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.Widths != nil {
		t.Fatal("fixture unexpectedly carries widths")
	}
	// An explicit all-unit-width table beyond the root mask is NOT the
	// same as nil (join widths add), so nil must stay the degenerate case.
	if planA == nil || costA <= 0 {
		t.Fatalf("plan=%v cost=%g", planA, costA)
	}
	for _, n := range append(planA.Operators(), planA.Leaves()...) {
		if n.Width != 0 {
			t.Errorf("width-free solve stamped width %g on %s", n.Width, n)
		}
	}
}
