package core

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// TraceTotals sums the examined-candidate accounting over the planning
// trace: the total number of candidate solutions and the number of
// cluster-level searches performed (pass-through steps, which examine
// nothing, are excluded). For Top-Down and Bottom-Up results these totals
// equal Result.PlansConsidered and Result.ClustersPlanned exactly — the
// trace is the accounting, not a parallel estimate.
func (r *Result) TraceTotals() (plans float64, searches int) {
	var walk func(s *PlanStep)
	walk = func(s *PlanStep) {
		if s == nil {
			return
		}
		plans += s.Plans
		if s.Plans > 0 {
			searches++
		}
		for _, ch := range s.Children {
			walk(ch)
		}
	}
	walk(r.Trace)
	return plans, searches
}

// ExplainTo renders the planning trace as an annotated per-level search
// narrative: one line per coordinator-local planning step, indented by
// protocol depth, followed by a totals line tying the narrative back to
// the Result's search-space accounting.
func (r *Result) ExplainTo(w io.Writer) {
	if r.Trace == nil {
		fmt.Fprintln(w, "no planning trace (baseline or exhaustive planner)")
		return
	}
	var walk func(s *PlanStep, depth int)
	walk = func(s *PlanStep, depth int) {
		indent := strings.Repeat("  ", depth)
		if s.Plans == 0 {
			fmt.Fprintf(w, "%slevel %d @node %d: pass-through (single stream, nothing to join)\n",
				indent, s.Level, s.Coordinator)
		} else {
			fmt.Fprintf(w, "%slevel %d @node %d: joined %d inputs (%d reuse ads offered), examined %s candidates in %v, best est. cost %.4g\n",
				indent, s.Level, s.Coordinator, s.Inputs, s.ReuseOffered,
				fmtPlans(s.Plans), s.Elapsed.Round(0), s.BestCost)
		}
		for _, ch := range s.Children {
			walk(ch, depth+1)
		}
	}
	walk(r.Trace, 0)
	plans, searches := r.TraceTotals()
	status := "consistent"
	if !sameCount(plans, r.PlansConsidered) || searches != r.ClustersPlanned {
		status = fmt.Sprintf("MISMATCH vs Result accounting (PlansConsidered=%s, ClustersPlanned=%d)",
			fmtPlans(r.PlansConsidered), r.ClustersPlanned)
	}
	fmt.Fprintf(w, "totals: %s candidates across %d cluster searches, %d levels visited, final cost %.4g — %s\n",
		fmtPlans(plans), searches, r.LevelsVisited, r.Cost, status)
}

// Explain returns ExplainTo's narrative as a string.
func (r *Result) Explain() string {
	var b strings.Builder
	r.ExplainTo(&b)
	return b.String()
}

// sameCount compares two search-space counts up to float rounding (they
// are sums of the same terms in different orders).
func sameCount(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*scale
}

// fmtPlans prints a search-space count: exact integers below 1e15, 3-digit
// scientific notation for the astronomically large.
func fmtPlans(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}
