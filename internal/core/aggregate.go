package core

import (
	"math"

	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// AttachAggregate wraps a planned join tree with the query's aggregation
// operator, placed at the site minimizing the transfer of the full-rate
// join output into the aggregate plus the (tiny) summary stream's trip to
// the sink — usually right on the join root, but load penalties or
// asymmetric links can move it. It returns the plan unchanged when the
// query has no aggregate.
func AttachAggregate(q *query.Query, plan *query.PlanNode, sites []netgraph.NodeID,
	dist query.DistFunc, penalty func(v netgraph.NodeID, inRate float64) float64) *query.PlanNode {
	if q.Agg == nil {
		return plan
	}
	best, bestCost := plan.Loc, math.Inf(1)
	w := plan.WidthOr1()
	consider := func(v netgraph.NodeID) {
		c := plan.Rate*w*dist(plan.Loc, v) + q.Agg.OutRate*w*dist(v, q.Sink)
		if penalty != nil {
			c += penalty(v, plan.Rate)
		}
		if c < bestCost {
			best, bestCost = v, c
		}
	}
	consider(plan.Loc)
	for _, v := range sites {
		consider(v)
	}
	un := query.NewUnary(plan, query.UnarySpec{Agg: *q.Agg, Sig: q.AggSig()}, best, q.Agg.OutRate)
	un.Width = plan.Width
	return un
}
