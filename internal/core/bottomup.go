package core

import (
	"fmt"
	"math"
	"time"

	"hnp/internal/ads"
	costpkg "hnp/internal/cost"
	"hnp/internal/hierarchy"
	"hnp/internal/netgraph"
	"hnp/internal/obs"
	"hnp/internal/query"
)

// BottomUp runs the paper's Bottom-Up algorithm: the query is registered
// at its sink and propagates up the sink's coordinator chain. At each
// level, the coordinator rewrites the query into a locally-available view
// (base and derived streams inside its cluster's cover) and a remote
// remainder, deploys the local view — an exhaustive search restricted to
// the current cluster, with operator placements refined down the
// partition hierarchy exactly as in Top-Down — and hands the rewritten
// query to the next level. What Bottom-Up never does is reconsider join
// orderings across levels: joins committed low in the hierarchy stay
// committed, which is why its sub-optimality, unlike Top-Down's, cannot
// be bounded (only its placement of the chosen ordering can). Pass a nil
// registry to disable reuse.
func BottomUp(h *hierarchy.Hierarchy, cat *query.Catalog, q *query.Query, reg *ads.Registry) (Result, error) {
	return BottomUpOpts(h, cat, q, reg, Options{})
}

// BottomUpOpts is BottomUp with explicit Options.
func BottomUpOpts(h *hierarchy.Hierarchy, cat *query.Catalog, q *query.Query, reg *ads.Registry, opts Options) (Result, error) {
	sp := obs.StartSpan(opts.Obs, "core.bottomup.plan")
	defer sp.End()
	started := emitPlanStarted(opts, q, "bottomup")
	po := newPlannerObs(opts.Obs, "bottomup")
	rt := query.BuildRates(cat, q)
	wt := query.BuildWidths(cat, q)
	full := q.All()
	pending := BaseInputs(cat, q, rt)
	assembled := map[query.Mask]*query.PlanNode{}

	var plans float64
	clusters := 0
	levels := 0
	var traceRoot, traceTip *PlanStep
	// coverSet is reused across the level sweep: each level fully consumes
	// it before the next iteration refills it.
	var coverSet nodeBitset

	for l := 1; l <= h.Height(); l++ {
		start := time.Now()
		c := h.ClusterOf(h.Rep(q.Sink, l), l)
		if c == nil {
			return Result{}, fmt.Errorf("bottom-up: sink %d has no cluster at level %d", q.Sink, l)
		}
		coverSet.fill(h.Cover(c), h.Graph().NumNodes())
		top := l == h.Height()

		var avail []query.Input
		for _, in := range pending {
			if coverSet.has(in.Loc) {
				avail = append(avail, in)
			}
		}
		leaves := append([]query.Input(nil), avail...)
		goal := unionMask(avail)
		// A derived stream materialized locally makes even remote base
		// positions locally available; extend the view with disjoint ads.
		if reg != nil {
			for _, in := range reg.InputsFor(q, rt, func(n netgraph.NodeID) bool { return coverSet.has(n) }) {
				if in.Mask&goal == 0 {
					leaves = append(leaves, in)
					goal |= in.Mask
				}
			}
		}
		if goal == 0 || len(leaves) < 2 {
			continue // nothing to join locally yet
		}
		if single(pending, goal) {
			if top {
				break // fully joined below the top; deliver the stream as is
			}
			continue // a lone local view: its joins happen higher up
		}

		// Offer every locally advertised derived stream to the search.
		inputs := append([]query.Input(nil), leaves...)
		reuseOffered := 0
		if reg != nil {
			for _, in := range reg.InputsFor(q, rt, func(n netgraph.NodeID) bool { return coverSet.has(n) }) {
				if in.Mask&goal == in.Mask {
					inputs = append(inputs, in)
					reuseOffered++
				}
			}
		}

		// The local view's result ultimately flows toward the sink the
		// query was registered at (always inside this cluster's cover
		// along the sink's coordinator chain), so placement is biased by
		// delivery toward it; the delivery edge itself is costed once, on
		// the assembled plan. Unlike Top-Down, the view is planned once,
		// over this cluster's members, and operator placements are then
		// refined greedily into the members' sub-clusters — no recursive
		// re-enumeration, which is what keeps Bottom-Up's search space and
		// deployment time small.
		plan, cost0, err := Solve(Problem{
			Inputs: inputs, Sites: c.Members, Dist: h.Paths().Dist, Rates: rt, Widths: wt,
			Goal: goal, Sink: q.Sink, Deliver: true, Penalty: opts.Penalty,
		})
		if err != nil {
			return Result{}, fmt.Errorf("bottom-up: level %d: %w", l, err)
		}
		step := &PlanStep{
			Level:        l,
			Coordinator:  c.Coordinator,
			Plans:        costpkg.ClusterSpace(len(avail), len(c.Members)),
			Inputs:       len(inputs),
			ReuseOffered: reuseOffered,
			BestCost:     cost0,
		}
		step.Plans += refinePlacements(h, c, plan, q.Sink, opts.Penalty)
		step.Elapsed = time.Since(start)
		plans += step.Plans
		clusters++
		po.search(step)
		if traceTip == nil {
			traceRoot, traceTip = step, step
		} else {
			traceTip.Children = append(traceTip.Children, step)
			traceTip = step
		}
		levels = l

		plan = substituteLeaves(plan, assembled)
		assembled[goal] = plan

		var next []query.Input
		for _, in := range pending {
			if in.Mask&goal == 0 {
				next = append(next, in)
			} else if in.Mask&goal != in.Mask {
				return Result{}, fmt.Errorf("bottom-up: pending input %b straddles goal %b", in.Mask, goal)
			}
		}
		joined := query.Input{
			Mask: goal, Rate: rt.Rate(goal), Loc: plan.Loc, Sig: q.SigOf(goal),
		}
		if wt != nil {
			joined.Width = wt.Width(goal)
		}
		next = append(next, joined)
		pending = next
	}

	if len(pending) != 1 || pending[0].Mask != full {
		return Result{}, fmt.Errorf("bottom-up: query not fully joined (pending %d views)", len(pending))
	}
	final, ok := assembled[full]
	if !ok {
		final = query.Leaf(pending[0])
	}
	final = AttachAggregate(q, final, h.Cover(h.Top()), h.Paths().Dist, opts.Penalty)
	wt.Stamp(final)
	if err := final.Validate(); err != nil {
		return Result{}, fmt.Errorf("bottom-up: invalid plan: %w", err)
	}
	if levels == 0 {
		levels = 1 // single-source query: registration only
	}
	res := Result{
		Plan:            final,
		Cost:            final.Cost(h.Paths().Dist, q.Sink),
		PlansConsidered: plans,
		ClustersPlanned: clusters,
		LevelsVisited:   levels,
		Trace:           traceRoot,
	}
	emitPlanChosen(opts, q, started, res)
	return res, nil
}

// refinePlacements resolves every operator of a coarse plan (placed on
// cluster members, i.e. sub-cluster coordinators) down to a physical node
// by greedy hierarchical descent: at each level the operator moves to the
// best member of its current node's child cluster under a local objective
// — pull the children's streams in, push the output toward the consumer.
// Each descent step chooses with exact inter-member costs but cannot undo
// the coarser choice above it, so the Theorem 1 approximation accumulates
// with hierarchy depth, exactly as the paper's cluster-size experiments
// show. It mutates the plan in place and returns the number of candidate
// placements examined, which Bottom-Up adds to its search-space count.
func refinePlacements(h *hierarchy.Hierarchy, c *hierarchy.Cluster, plan *query.PlanNode, sink netgraph.NodeID,
	penalty func(v netgraph.NodeID, inRate float64) float64) float64 {
	if c.Level < 2 {
		return 0 // members are physical nodes already
	}
	dist := h.Paths().Dist
	examined := 0.0
	var sweep func(n *query.PlanNode, consumer netgraph.NodeID)
	sweep = func(n *query.PlanNode, consumer netgraph.NodeID) {
		if n.IsLeaf() || n.IsUnary() {
			return
		}
		sweep(n.L, n.Loc)
		sweep(n.R, n.Loc)
		objective := func(v netgraph.NodeID) float64 {
			c := n.L.Rate*n.L.WidthOr1()*dist(n.L.Loc, v) +
				n.R.Rate*n.R.WidthOr1()*dist(n.R.Loc, v) +
				n.Rate*n.WidthOr1()*dist(v, consumer)
			if penalty != nil {
				c += penalty(v, n.L.Rate+n.R.Rate)
			}
			return c
		}
		cur := n.Loc
		for lev := c.Level; lev >= 2; lev-- {
			child := h.ChildCluster(cur, lev)
			if child == nil {
				break
			}
			best, bestCost := cur, math.MaxFloat64
			for _, v := range child.Members {
				examined++
				if cost := objective(v); cost < bestCost {
					best, bestCost = v, cost
				}
			}
			cur = best
		}
		n.Loc = cur
	}
	sweep(plan, sink)
	sweep(plan, sink)
	return examined
}

// single reports whether some pending view already covers the whole goal.
func single(pending []query.Input, goal query.Mask) bool {
	for _, in := range pending {
		if in.Mask == goal {
			return true
		}
	}
	return false
}
