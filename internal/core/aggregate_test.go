package core

import (
	"math"
	"testing"

	"hnp/internal/netgraph"
	"hnp/internal/query"
)

func aggQuery(t *testing.T, w *world, id int, sink netgraph.NodeID) *query.Query {
	t.Helper()
	q, err := query.NewQueryAgg(id, []query.StreamID{1, 3, 5}, sink,
		query.PredSet{}, query.AggSpec{Fn: "count", Window: 10, OutRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestAggregateAttachedByAllOptimizers(t *testing.T) {
	w := makeWorld(t, 31, 64, 8, 10, 0)
	q := aggQuery(t, w, 0, 9)
	for name, run := range map[string]func() (Result, error){
		"topdown":  func() (Result, error) { return TopDown(w.h, w.cat, q, nil) },
		"bottomup": func() (Result, error) { return BottomUp(w.h, w.cat, q, nil) },
		"optimal":  func() (Result, error) { return Optimal(w.g, w.paths, w.cat, q, nil) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Plan.IsUnary() {
			t.Fatalf("%s: root is not the aggregate: %s", name, res.Plan)
		}
		if res.Plan.Rate != 0.5 {
			t.Errorf("%s: aggregate rate %g", name, res.Plan.Rate)
		}
		if err := res.Plan.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if math.Abs(res.Cost-res.Plan.Cost(w.paths.Dist, q.Sink)) > 1e-6*res.Cost {
			t.Errorf("%s: cost mismatch", name)
		}
	}
}

// The aggregate's placement must be the argmin of its local objective.
func TestAttachAggregatePlacement(t *testing.T) {
	w := makeWorld(t, 32, 32, 4, 6, 0)
	q := aggQuery(t, w, 0, 9)
	res, err := Optimal(w.g, w.paths, w.cat, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	agg := res.Plan
	join := agg.L
	bestCost := math.Inf(1)
	for v := 0; v < w.g.NumNodes(); v++ {
		c := join.Rate*w.paths.Dist(join.Loc, netgraph.NodeID(v)) +
			q.Agg.OutRate*w.paths.Dist(netgraph.NodeID(v), q.Sink)
		if c < bestCost {
			bestCost = c
		}
	}
	got := join.Rate*w.paths.Dist(join.Loc, agg.Loc) + q.Agg.OutRate*w.paths.Dist(agg.Loc, q.Sink)
	if math.Abs(got-bestCost) > 1e-9 {
		t.Errorf("aggregate at %d costs %g, argmin %g", agg.Loc, got, bestCost)
	}
}

// An aggregation can only reduce the total cost when the summary rate is
// below the join output rate (the usual case by orders of magnitude).
func TestAggregateReducesDeliveryCost(t *testing.T) {
	w := makeWorld(t, 33, 64, 8, 10, 0)
	plain, err := query.NewQuery(0, []query.StreamID{1, 3, 5}, 9)
	if err != nil {
		t.Fatal(err)
	}
	plainRes, err := TopDown(w.h, w.cat, plain, nil)
	if err != nil {
		t.Fatal(err)
	}
	agg := aggQuery(t, w, 1, 9)
	aggRes, err := TopDown(w.h, w.cat, agg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if aggRes.Cost > plainRes.Cost+1e-6 {
		t.Errorf("aggregation raised cost %g -> %g", plainRes.Cost, aggRes.Cost)
	}
}

// Load penalties move the aggregate off a hot node.
func TestAggregateAvoidsHotNode(t *testing.T) {
	w := makeWorld(t, 34, 32, 4, 6, 0)
	q := aggQuery(t, w, 0, 9)
	res, err := Optimal(w.g, w.paths, w.cat, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	hot := res.Plan.Loc
	pen := func(v netgraph.NodeID, inRate float64) float64 {
		if v == hot {
			return 1e12
		}
		return 0
	}
	res2, err := OptimalOpts(w.g, w.paths, w.cat, q, nil, Options{Penalty: pen})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Plan.Loc == hot {
		t.Error("aggregate stayed on penalized node")
	}
}

func TestNewQueryAggValidation(t *testing.T) {
	if _, err := query.NewQueryAgg(0, []query.StreamID{1, 2}, 0, query.PredSet{},
		query.AggSpec{}); err == nil {
		t.Error("invalid agg accepted")
	}
	if _, err := query.NewQueryAgg(0, []query.StreamID{1, 2}, 0, query.PredSet{},
		query.AggSpec{Fn: "count", Window: -1, OutRate: 1}); err == nil {
		t.Error("negative window accepted")
	}
	q, err := query.NewQueryAgg(0, []query.StreamID{1, 2}, 0, query.PredSet{},
		query.AggSpec{Fn: "count", Window: 5, OutRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if q.AggSig() == q.SigOf(q.All()) {
		t.Error("agg sig aliases join sig")
	}
}

// BatchCost must price aggregated plans without error, counting the agg
// edge once.
func TestBatchCostWithAggregate(t *testing.T) {
	w := makeWorld(t, 35, 32, 4, 6, 0)
	q := aggQuery(t, w, 0, 9)
	res, err := TopDown(w.h, w.cat, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	total, _, err := BatchCost(w.paths.Dist, []*query.Query{q}, []*query.PlanNode{res.Plan}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-res.Cost) > 1e-6*(1+res.Cost) {
		t.Errorf("batch cost %g != plan cost %g", total, res.Cost)
	}
}
