package core

// SolveWork returns the number of candidate plan fragments one
// Solve/SolveCost call examines for a k-way join whose inputs are the k
// base streams, placed over m candidate sites. It mirrors the DP's loop
// structure exactly (validated against a direct enumeration of the loops
// in tests):
//
//   - each of the k single-stream submasks relaxes its input into every
//     site: k·m candidates;
//   - each submask s with |s| = j ≥ 2 — there are C(k,j) of them —
//     enumerates its 2^(j−1)−1 canonical splits at each of the m sites,
//     then folds "operator at u, shipped to v" into availability with an
//     m×m sweep: C(k,j)·(m·(2^(j−1)−1) + m²) candidates;
//   - the root realization scans the goal's m operator placements.
//
// This is the honest "plans considered" figure for the Solve benchmarks.
// The DP covers the nominal exhaustive tree×placement space
// (cost.ClusterSpace = NumTrees(k)·m^(k−1), ≈3×10⁹ at k=6, m=32) while
// examining only SolveWork(k, m) candidates (≈68K at k=6, m=32) — shared
// subproblems are the whole point of the formulation. Dividing
// ClusterSpace by wall-clock time, as the benchmarks once did, yields
// absurd 10¹⁴ plans/s figures that measure the size of the space the DP
// avoids enumerating, not the rate at which it does anything.
func SolveWork(k, m int) float64 {
	if k < 1 || m < 1 {
		return 0
	}
	mf := float64(m)
	if k == 1 {
		// Relax the lone input into every site, then pick it at the root.
		return mf + 1
	}
	work := float64(k) * mf
	binom := float64(k) // C(k, 1)
	for j := 2; j <= k; j++ {
		binom = binom * float64(k-j+1) / float64(j) // C(k, j)
		splits := float64(int(1)<<uint(j-1)) - 1
		work += binom * (mf*splits + mf*mf)
	}
	return work + mf // root: the goal's operator placements
}
