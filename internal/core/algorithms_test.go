package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hnp/internal/ads"
	costpkg "hnp/internal/cost"
	"hnp/internal/hierarchy"
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// world bundles a network, hierarchy, catalog and random queries.
type world struct {
	g     *netgraph.Graph
	paths *netgraph.Paths
	h     *hierarchy.Hierarchy
	cat   *query.Catalog
	qs    []*query.Query
}

func makeWorld(t testing.TB, seed int64, n, maxCS, nStreams, nQueries int) *world {
	rng := rand.New(rand.NewSource(seed))
	g := netgraph.MustTransitStub(n, rng)
	paths := g.ShortestPaths(netgraph.MetricCost)
	h, err := hierarchy.Build(g, paths, maxCS, rng)
	if err != nil {
		t.Fatal(err)
	}
	cat := query.NewCatalog(0.01)
	ids := make([]query.StreamID, nStreams)
	for i := range ids {
		ids[i] = cat.Add("s", 1+rng.Float64()*99, netgraph.NodeID(rng.Intn(n)))
	}
	for i := 0; i < nStreams; i++ {
		for j := i + 1; j < nStreams; j++ {
			cat.SetSelectivity(ids[i], ids[j], 0.001+rng.Float64()*0.02)
		}
	}
	var qs []*query.Query
	for qi := 0; qi < nQueries; qi++ {
		k := 3 + rng.Intn(3) // 2-5 joins per query
		perm := rng.Perm(nStreams)
		srcs := make([]query.StreamID, k)
		for i := 0; i < k; i++ {
			srcs[i] = ids[perm[i]]
		}
		q, err := query.NewQuery(qi, srcs, netgraph.NodeID(rng.Intn(n)))
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	return &world{g: g, paths: paths, h: h, cat: cat, qs: qs}
}

func TestTopDownProducesValidPlans(t *testing.T) {
	w := makeWorld(t, 1, 64, 8, 20, 15)
	for _, q := range w.qs {
		res, err := TopDown(w.h, w.cat, q, nil)
		if err != nil {
			t.Fatalf("query %d: %v", q.ID, err)
		}
		if res.Plan.Mask != q.All() {
			t.Errorf("query %d: plan covers %b, want %b", q.ID, res.Plan.Mask, q.All())
		}
		if res.Cost <= 0 {
			t.Errorf("query %d: cost %g", q.ID, res.Cost)
		}
		if math.Abs(res.Cost-res.Plan.Cost(w.paths.Dist, q.Sink)) > 1e-6*res.Cost {
			t.Errorf("query %d: reported cost %g != plan cost", q.ID, res.Cost)
		}
		// All operators must be placed on real nodes.
		for _, op := range res.Plan.Operators() {
			if int(op.Loc) < 0 || int(op.Loc) >= w.g.NumNodes() {
				t.Errorf("query %d: operator at invalid node %d", q.ID, op.Loc)
			}
		}
		if res.LevelsVisited != w.h.Height() {
			t.Errorf("LevelsVisited = %d, want %d", res.LevelsVisited, w.h.Height())
		}
	}
}

func TestBottomUpProducesValidPlans(t *testing.T) {
	w := makeWorld(t, 2, 64, 8, 20, 15)
	for _, q := range w.qs {
		res, err := BottomUp(w.h, w.cat, q, nil)
		if err != nil {
			t.Fatalf("query %d: %v", q.ID, err)
		}
		if res.Plan.Mask != q.All() {
			t.Errorf("query %d: plan covers %b", q.ID, res.Plan.Mask)
		}
		if err := res.Plan.Validate(); err != nil {
			t.Errorf("query %d: %v", q.ID, err)
		}
		if math.Abs(res.Cost-res.Plan.Cost(w.paths.Dist, q.Sink)) > 1e-6*res.Cost {
			t.Errorf("query %d: reported cost mismatch", q.ID)
		}
	}
}

// Neither heuristic may beat the DP optimum, and Top-Down's gap is bounded
// by Theorem 3.
func TestHeuristicsNeverBeatOptimal(t *testing.T) {
	w := makeWorld(t, 3, 64, 8, 16, 10)
	for _, q := range w.qs {
		opt, err := Optimal(w.g, w.paths, w.cat, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		td, err := TopDown(w.h, w.cat, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		bu, err := BottomUp(w.h, w.cat, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if td.Cost < opt.Cost-1e-6 {
			t.Errorf("query %d: top-down %g beats optimal %g", q.ID, td.Cost, opt.Cost)
		}
		if bu.Cost < opt.Cost-1e-6 {
			t.Errorf("query %d: bottom-up %g beats optimal %g", q.ID, bu.Cost, opt.Cost)
		}
	}
}

// Single-source queries are routed directly from source to sink by every
// algorithm at identical (optimal) cost.
func TestSingleSourceQuery(t *testing.T) {
	w := makeWorld(t, 4, 32, 4, 5, 0)
	q, err := query.NewQuery(0, []query.StreamID{2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := w.cat.Stream(2).Rate * w.paths.Dist(w.cat.Stream(2).Source, 9)
	for name, run := range map[string]func() (Result, error){
		"topdown":  func() (Result, error) { return TopDown(w.h, w.cat, q, nil) },
		"bottomup": func() (Result, error) { return BottomUp(w.h, w.cat, q, nil) },
		"optimal":  func() (Result, error) { return Optimal(w.g, w.paths, w.cat, q, nil) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(res.Cost-want) > 1e-9 {
			t.Errorf("%s: cost %g, want %g", name, res.Cost, want)
		}
	}
}

// Reuse can only reduce cost, and a perfectly placed derived stream must
// actually be reused.
func TestReuseReducesCost(t *testing.T) {
	w := makeWorld(t, 5, 64, 8, 12, 8)
	reg := ads.NewRegistry()
	// Deploy the first queries without reuse and advertise their operators.
	for _, q := range w.qs[:4] {
		res, err := TopDown(w.h, w.cat, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		reg.AdvertisePlan(q, res.Plan)
	}
	for _, q := range w.qs[4:] {
		plain, err := TopDown(w.h, w.cat, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		reused, err := TopDown(w.h, w.cat, q, reg)
		if err != nil {
			t.Fatal(err)
		}
		if reused.Cost > plain.Cost+1e-6 {
			t.Errorf("query %d: reuse increased cost %g -> %g", q.ID, plain.Cost, reused.Cost)
		}
		bplain, err := BottomUp(w.h, w.cat, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		breused, err := BottomUp(w.h, w.cat, q, reg)
		if err != nil {
			t.Fatal(err)
		}
		// Bottom-Up is a heuristic: ads change its level-by-level goals, so
		// reuse is not guaranteed to help on every query — but it must not
		// blow cost up catastrophically, and on average it helps (checked
		// by the Figure 7 experiment).
		if breused.Cost > 3*bplain.Cost+1e-6 {
			t.Errorf("query %d: bottom-up reuse tripled cost %g -> %g", q.ID, bplain.Cost, breused.Cost)
		}
	}
}

func TestIdenticalQueryIsFullyReused(t *testing.T) {
	w := makeWorld(t, 6, 64, 8, 12, 1)
	q := w.qs[0]
	reg := ads.NewRegistry()
	first, err := TopDown(w.h, w.cat, q, reg)
	if err != nil {
		t.Fatal(err)
	}
	reg.AdvertisePlan(q, first.Plan)
	// The same query again, same sink: the whole root can be reused; cost
	// is at most delivering the root output from its existing location.
	q2, _ := query.NewQuery(1, q.Sources, q.Sink)
	second, err := TopDown(w.h, w.cat, q2, reg)
	if err != nil {
		t.Fatal(err)
	}
	rt := query.BuildRates(w.cat, q2)
	cap := rt.Rate(q2.All()) * w.paths.Dist(first.Plan.Loc, q2.Sink)
	if second.Cost > cap+1e-6 {
		t.Errorf("second deployment cost %g exceeds full-reuse cost %g", second.Cost, cap)
	}
}

// The search space actually examined must respect the Theorem 2/4 flavor
// of accounting: orders of magnitude below Lemma 1 for realistic settings.
func TestSearchSpaceReduction(t *testing.T) {
	w := makeWorld(t, 7, 128, 32, 20, 10)
	for _, q := range w.qs {
		td, err := TopDown(w.h, w.cat, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		bu, err := BottomUp(w.h, w.cat, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Optimal(w.g, w.paths, w.cat, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		// The paper's ≥99% reduction is for its 4-stream queries; smaller
		// queries have proportionally smaller exhaustive spaces, so scale
		// the required reduction with K.
		frac := 0.01
		if q.K() <= 3 {
			frac = 0.06
		}
		if td.PlansConsidered >= opt.PlansConsidered*frac {
			t.Errorf("query %d (K=%d): top-down considered %g, exhaustive %g",
				q.ID, q.K(), td.PlansConsidered, opt.PlansConsidered)
		}
		if bu.PlansConsidered >= opt.PlansConsidered*frac {
			t.Errorf("query %d (K=%d): bottom-up considered %g of exhaustive %g", q.ID,
				q.K(), bu.PlansConsidered, opt.PlansConsidered)
		}
	}
}

// On a degenerate single-level hierarchy (max_cs >= N), Top-Down IS the
// exhaustive search and must equal the optimum.
func TestTopDownDegeneratesToOptimal(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(10)
		g := netgraph.MustTransitStub(n, rng)
		paths := g.ShortestPaths(netgraph.MetricCost)
		h, err := hierarchy.Build(g, paths, n+1, rng)
		if err != nil || h.Height() != 1 {
			return false
		}
		cat := query.NewCatalog(0.01)
		var ids []query.StreamID
		for i := 0; i < 4; i++ {
			ids = append(ids, cat.Add("s", 1+rng.Float64()*50, netgraph.NodeID(rng.Intn(n))))
		}
		q, err := query.NewQuery(0, ids, netgraph.NodeID(rng.Intn(n)))
		if err != nil {
			return false
		}
		td, err := TopDown(h, cat, q, nil)
		if err != nil {
			return false
		}
		opt, err := Optimal(g, paths, cat, q, nil)
		if err != nil {
			return false
		}
		return math.Abs(td.Cost-opt.Cost) <= 1e-6*(1+opt.Cost)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Bottom-Up must also match the optimum on a single-level hierarchy.
func TestBottomUpDegeneratesToOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := netgraph.MustTransitStub(12, rng)
	paths := g.ShortestPaths(netgraph.MetricCost)
	h, err := hierarchy.Build(g, paths, 13, rng)
	if err != nil {
		t.Fatal(err)
	}
	cat := query.NewCatalog(0.05)
	var ids []query.StreamID
	for i := 0; i < 3; i++ {
		ids = append(ids, cat.Add("s", 10+rng.Float64()*10, netgraph.NodeID(rng.Intn(12))))
	}
	q, _ := query.NewQuery(0, ids, 3)
	bu, err := BottomUp(h, cat, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimal(g, paths, cat, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bu.Cost-opt.Cost) > 1e-6*(1+opt.Cost) {
		t.Errorf("bottom-up %g != optimal %g on flat hierarchy", bu.Cost, opt.Cost)
	}
}

// Theorem 3: Top-Down's gap to the optimum is bounded by
// Σ_e s_e × Σ_i 2·d_i over the edges of its chosen tree.
func TestTheorem3BoundHolds(t *testing.T) {
	for seed := int64(40); seed < 48; seed++ {
		w := makeWorld(t, seed, 64, 8, 12, 6)
		sumD := w.h.SumD(w.h.Height())
		for _, q := range w.qs {
			td, err := TopDown(w.h, w.cat, q, nil)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := Optimal(w.g, w.paths, w.cat, q, nil)
			if err != nil {
				t.Fatal(err)
			}
			bound := costpkg.Theorem3Bound(costpkg.EdgeRates(td.Plan), sumD)
			if td.Cost > opt.Cost+bound+1e-6 {
				t.Errorf("seed %d query %d: td %g > opt %g + bound %g",
					seed, q.ID, td.Cost, opt.Cost, bound)
			}
		}
	}
}
