package core

import (
	"fmt"

	"hnp/internal/ads"
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// This file implements the paper's multi-query extension: "The Top-Down
// algorithm can be easily extended to perform multi-query optimization by
// constructing a consolidated query ... and then applying the algorithm to
// this consolidated query" (§2.2, and analogously §2.3 for Bottom-Up).
// OptimizeBatch realizes the consolidation as iterated re-planning of the
// batch against its own advertisements: every member sees every other
// member's operators as reusable derived streams, a plan change is kept
// only if it lowers the batch's true total cost (shared operators counted
// once), and the process repeats to a fixed point.

// PlanFunc plans one query against a registry of reusable streams — the
// signature shared by TopDown, BottomUp and Optimal once partially
// applied.
type PlanFunc func(q *query.Query, reg *ads.Registry) (Result, error)

// Batch is a jointly optimized set of continuous queries.
type Batch struct {
	Queries []*query.Query
	// Plans holds each query's final operator tree; derived leaves may
	// reference operators computed by other batch members.
	Plans []*query.PlanNode
	// Results carries each query's last planning result (the Cost field
	// there is the marginal cost as seen during planning; TotalCost below
	// is the authoritative batch figure).
	Results []Result
	// TotalCost is the communication cost per unit time of the whole
	// deployment with every shared operator and transfer counted once.
	TotalCost float64
	// SharedOps counts operators used by more than one batch member.
	SharedOps int
	// PlansConsidered sums the search-space sizes of every planning call
	// made while optimizing the batch.
	PlansConsidered float64
	// Passes is the number of improvement passes executed (excluding the
	// sequential warm start).
	Passes int
}

// OptimizeBatch jointly optimizes a batch of queries with the given
// per-query planner. external carries pre-existing advertisements (from
// earlier deployments); it may be nil. passes bounds the improvement
// rounds after the sequential warm start.
func OptimizeBatch(pf PlanFunc, dist query.DistFunc,
	qs []*query.Query, external *ads.Registry, passes int) (*Batch, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	b := &Batch{
		Queries: qs,
		Plans:   make([]*query.PlanNode, len(qs)),
		Results: make([]Result, len(qs)),
	}

	// registryExcept assembles the streams visible to query i: external
	// ads plus the operators of every *other* member's current plan (a
	// query must not "reuse" work that exists only because of itself).
	registryExcept := func(i int) *ads.Registry {
		reg := ads.NewRegistry()
		reg.AddAll(external)
		for j, p := range b.Plans {
			if j == i || p == nil {
				continue
			}
			reg.AdvertisePlan(qs[j], p)
		}
		return reg
	}

	// Sequential warm start: classic incremental deployment.
	for i, q := range qs {
		res, err := pf(q, registryExcept(i))
		if err != nil {
			return nil, fmt.Errorf("core: batch warm start, query %d: %w", q.ID, err)
		}
		b.Plans[i] = res.Plan
		b.Results[i] = res
		b.PlansConsidered += res.PlansConsidered
	}
	total, shared, err := BatchCost(dist, qs, b.Plans, external)
	if err != nil {
		return nil, fmt.Errorf("core: batch warm start: %w", err)
	}
	b.TotalCost, b.SharedOps = total, shared

	// Improvement passes: re-plan each member against the rest of the
	// batch; keep a new plan only if the true batch cost drops. BatchCost
	// also rejects plans that would orphan a stream some other member
	// reuses, so referential integrity is preserved by construction.
	for pass := 0; pass < passes; pass++ {
		improved := false
		for i, q := range qs {
			res, err := pf(q, registryExcept(i))
			if err != nil {
				continue // an unplannable variation is simply not adopted
			}
			b.PlansConsidered += res.PlansConsidered
			old, oldRes := b.Plans[i], b.Results[i]
			b.Plans[i] = res.Plan
			b.Results[i] = res
			newTotal, newShared, err := BatchCost(dist, qs, b.Plans, external)
			if err != nil || newTotal >= b.TotalCost-1e-9 {
				b.Plans[i], b.Results[i] = old, oldRes
				continue
			}
			b.TotalCost, b.SharedOps = newTotal, newShared
			improved = true
		}
		b.Passes = pass + 1
		if !improved {
			break
		}
	}
	return b, nil
}

// opIdent identifies a deployed operator or stream: its canonical
// signature and the node materializing it.
type opIdent struct {
	sig  string
	node netgraph.NodeID
}

// BatchCost prices a set of plans as one deployment: each distinct
// operator (signature at node) is computed once, each distinct transfer
// edge is paid once, and each query pays its own delivery edge. It also
// verifies referential integrity: every derived leaf must resolve to an
// operator computed inside the batch or advertised externally. The second
// result counts operators used by more than one query.
func BatchCost(dist query.DistFunc, qs []*query.Query,
	plans []*query.PlanNode, external *ads.Registry) (float64, int, error) {
	if len(qs) != len(plans) {
		return 0, 0, fmt.Errorf("core: %d queries but %d plans", len(qs), len(plans))
	}
	computed := map[opIdent]bool{}
	usedBy := map[opIdent]int{}
	type edge struct {
		from opIdent
		loc  netgraph.NodeID
	}
	edges := map[edge]float64{}
	var derived []opIdent

	for qi, plan := range plans {
		if plan == nil {
			return 0, 0, fmt.Errorf("core: query %d has no plan", qs[qi].ID)
		}
		q := qs[qi]
		seen := map[opIdent]bool{}
		var walk func(n *query.PlanNode) opIdent
		walk = func(n *query.PlanNode) opIdent {
			id := opIdent{sig: q.SigOf(n.Mask), node: n.Loc}
			if n.IsLeaf() {
				if n.In.Derived {
					derived = append(derived, id)
					if !seen[id] {
						seen[id] = true
						usedBy[id]++
					}
				}
				return id
			}
			if n.IsUnary() {
				id = opIdent{sig: n.Unary.Sig, node: n.Loc}
				l := walk(n.L)
				computed[id] = true
				if !seen[id] {
					seen[id] = true
					usedBy[id]++
				}
				edges[edge{l, n.Loc}] = n.L.Rate * n.L.WidthOr1() * dist(n.L.Loc, n.Loc)
				return id
			}
			l := walk(n.L)
			r := walk(n.R)
			computed[id] = true
			if !seen[id] {
				seen[id] = true
				usedBy[id]++
			}
			edges[edge{l, n.Loc}] = n.L.Rate * n.L.WidthOr1() * dist(n.L.Loc, n.Loc)
			edges[edge{r, n.Loc}] = n.R.Rate * n.R.WidthOr1() * dist(n.R.Loc, n.Loc)
			return id
		}
		root := walk(plan)
		// Delivery is per query (each sink is a distinct consumer).
		edges[edge{opIdent{sig: root.sig + "->" + fmt.Sprint(q.ID), node: root.node}, q.Sink}] =
			plan.Rate * plan.WidthOr1() * dist(plan.Loc, q.Sink)
	}

	// Referential integrity for reused streams.
	for _, id := range derived {
		if computed[id] {
			continue
		}
		ok := false
		if external != nil {
			for _, ad := range external.Lookup(id.sig) {
				if ad.Node == id.node {
					ok = true
					break
				}
			}
		}
		if !ok {
			return 0, 0, fmt.Errorf("core: reused stream %s@%d is computed nowhere", id.sig, id.node)
		}
	}

	total := 0.0
	for _, c := range edges {
		total += c
	}
	shared := 0
	for id, n := range usedBy {
		if computed[id] && n > 1 {
			shared++
		}
	}
	return total, shared, nil
}
