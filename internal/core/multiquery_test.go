package core

import (
	"math"
	"testing"

	"hnp/internal/ads"
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

func batchPlanner(w *world) PlanFunc {
	return func(q *query.Query, reg *ads.Registry) (Result, error) {
		return TopDown(w.h, w.cat, q, reg)
	}
}

// sequentialCost deploys the queries one at a time with reuse and prices
// the result with the same batch accounting, for apples-to-apples
// comparison.
func sequentialCost(t *testing.T, w *world, qs []*query.Query) float64 {
	t.Helper()
	reg := ads.NewRegistry()
	plans := make([]*query.PlanNode, len(qs))
	for i, q := range qs {
		res, err := TopDown(w.h, w.cat, q, reg)
		if err != nil {
			t.Fatal(err)
		}
		plans[i] = res.Plan
		reg.AdvertisePlan(q, res.Plan)
	}
	total, _, err := BatchCost(w.paths.Dist, qs, plans, nil)
	if err != nil {
		t.Fatal(err)
	}
	return total
}

func TestOptimizeBatchNeverWorseThanSequential(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		w := makeWorld(t, seed, 64, 8, 8, 10) // 8 streams: heavy overlap
		b, err := OptimizeBatch(batchPlanner(w), w.paths.Dist, w.qs, nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		seq := sequentialCost(t, w, w.qs)
		if b.TotalCost > seq+1e-6 {
			t.Errorf("seed %d: batch %g worse than sequential %g", seed, b.TotalCost, seq)
		}
		if b.TotalCost <= 0 {
			t.Errorf("seed %d: non-positive batch cost", seed)
		}
		for i, p := range b.Plans {
			if p == nil {
				t.Fatalf("seed %d: query %d unplanned", seed, i)
			}
			if err := p.Validate(); err != nil {
				t.Errorf("seed %d: query %d: %v", seed, i, err)
			}
		}
	}
}

func TestOptimizeBatchSharesOperators(t *testing.T) {
	w := makeWorld(t, 9, 64, 8, 6, 8) // 6 streams, 8 queries: forced overlap
	b, err := OptimizeBatch(batchPlanner(w), w.paths.Dist, w.qs, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.SharedOps == 0 {
		t.Error("no shared operators in a heavily overlapping batch")
	}
	if b.Passes < 1 {
		t.Error("no improvement passes recorded")
	}
}

func TestOptimizeBatchIdenticalQueries(t *testing.T) {
	// Two identical queries to different sinks: the batch must compute the
	// join once; total cost stays below twice a solo deployment.
	w := makeWorld(t, 10, 64, 8, 10, 0)
	q1, err := query.NewQuery(0, []query.StreamID{1, 3, 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := query.NewQuery(1, []query.StreamID{1, 3, 5}, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OptimizeBatch(batchPlanner(w), w.paths.Dist, []*query.Query{q1, q2}, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := TopDown(w.h, w.cat, q1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalCost >= 2*solo.Cost {
		t.Errorf("batch %g not cheaper than 2x solo %g", b.TotalCost, 2*solo.Cost)
	}
	if b.SharedOps == 0 {
		t.Error("identical queries share nothing")
	}
}

func TestOptimizeBatchErrors(t *testing.T) {
	w := makeWorld(t, 11, 32, 4, 5, 1)
	if _, err := OptimizeBatch(batchPlanner(w), w.paths.Dist, nil, nil, 2); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestBatchCostCountsSharedOnce(t *testing.T) {
	dist := func(a, b netgraph.NodeID) float64 { return math.Abs(float64(a - b)) }
	q1, _ := query.NewQuery(0, []query.StreamID{0, 1}, 5)
	q2, _ := query.NewQuery(1, []query.StreamID{0, 1}, 9)
	// q1 computes 0⋈1 at node 2; q2 reuses it.
	l0 := query.Leaf(query.Input{Mask: 1, Rate: 10, Loc: 0, Sig: query.SigOf([]query.StreamID{0})})
	l1 := query.Leaf(query.Input{Mask: 2, Rate: 10, Loc: 4, Sig: query.SigOf([]query.StreamID{1})})
	join := query.Join(l0, l1, 2, 3)
	reuse := query.Leaf(query.Input{
		Mask: 0b11, Rate: 3, Loc: 2, Derived: true, Sig: query.SigOf([]query.StreamID{0, 1}),
	})
	total, shared, err := BatchCost(dist, []*query.Query{q1, q2},
		[]*query.PlanNode{join, reuse}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Edges: 0->2 (10*2), 4->2 (10*2), delivery q1 2->5 (3*3), q2 2->9 (3*7).
	want := 20.0 + 20 + 9 + 21
	if math.Abs(total-want) > 1e-9 {
		t.Errorf("total = %g, want %g", total, want)
	}
	if shared != 1 {
		t.Errorf("shared = %d, want 1", shared)
	}
}

func TestBatchCostDetectsDanglingReuse(t *testing.T) {
	dist := func(a, b netgraph.NodeID) float64 { return 1 }
	q, _ := query.NewQuery(0, []query.StreamID{0, 1}, 5)
	orphan := query.Leaf(query.Input{
		Mask: 0b11, Rate: 3, Loc: 2, Derived: true, Sig: query.SigOf([]query.StreamID{0, 1}),
	})
	if _, _, err := BatchCost(dist, []*query.Query{q}, []*query.PlanNode{orphan}, nil); err == nil {
		t.Error("dangling derived leaf accepted")
	}
	// The same leaf resolves once an external registry advertises it.
	ext := ads.NewRegistry()
	ext.Advertise(ads.Ad{Sig: query.SigOf([]query.StreamID{0, 1}), Streams: []query.StreamID{0, 1}, Node: 2, Rate: 3})
	if _, _, err := BatchCost(dist, []*query.Query{q}, []*query.PlanNode{orphan}, ext); err != nil {
		t.Errorf("externally backed reuse rejected: %v", err)
	}
	// Mismatched lengths.
	if _, _, err := BatchCost(dist, []*query.Query{q}, nil, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	// Nil plan.
	if _, _, err := BatchCost(dist, []*query.Query{q}, []*query.PlanNode{nil}, nil); err == nil {
		t.Error("nil plan accepted")
	}
}
