//go:build race

package core

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation adds heap allocations of its own and
// makes exact allocation-count pins meaningless.
const raceEnabled = true
