package core

import (
	"testing"

	"hnp/internal/ads"
	"hnp/internal/query"
)

// Containment end-to-end: a query with weak predicates is deployed; a
// stricter query over the same streams must be able to reuse the weaker
// operator through a residual filter, and the reverse direction must not
// reuse.
func TestContainmentReuse(t *testing.T) {
	w := makeWorld(t, 21, 64, 8, 10, 0)
	weakPreds := query.MustPredSet(
		query.Pred{Stream: 2, Attr: "dep", Range: query.Range{Lo: 0, Hi: 0.8}},
	)
	strongPreds := query.MustPredSet(
		query.Pred{Stream: 2, Attr: "dep", Range: query.Range{Lo: 0.1, Hi: 0.3}},
	)
	weakQ, err := query.NewQueryPred(0, []query.StreamID{2, 5, 7}, 9, weakPreds)
	if err != nil {
		t.Fatal(err)
	}
	strongQ, err := query.NewQueryPred(1, []query.StreamID{2, 5, 7}, 30, strongPreds)
	if err != nil {
		t.Fatal(err)
	}

	reg := ads.NewRegistry()
	weakRes, err := TopDown(w.h, w.cat, weakQ, reg)
	if err != nil {
		t.Fatal(err)
	}
	reg.AdvertisePlan(weakQ, weakRes.Plan)

	// The stricter query sees the weaker operators as containment inputs.
	rt := query.BuildRates(w.cat, strongQ)
	ins := reg.InputsFor(strongQ, rt, nil)
	if len(ins) == 0 {
		t.Fatal("no containment inputs offered")
	}
	foundFiltered := false
	for _, in := range ins {
		if in.BaseSig != "" {
			foundFiltered = true
			if in.Sig == in.BaseSig {
				t.Error("filtered input aliases its base")
			}
			if in.Rate >= rt.Rate(in.Mask)+1e-9 {
				t.Errorf("filtered rate %g not from the strict query's table", in.Rate)
			}
		}
	}
	if !foundFiltered {
		t.Error("no residual-filter input offered")
	}

	strongRes, err := TopDown(w.h, w.cat, strongQ, reg)
	if err != nil {
		t.Fatal(err)
	}
	// Reuse can only help relative to planning without the registry.
	fresh, err := TopDown(w.h, w.cat, strongQ, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strongRes.Cost > fresh.Cost+1e-6 {
		t.Errorf("containment reuse raised cost %g -> %g", fresh.Cost, strongRes.Cost)
	}

	// Reverse direction: the weaker query must NOT be offered the stricter
	// operators.
	reg2 := ads.NewRegistry()
	strongFirst, err := TopDown(w.h, w.cat, strongQ, reg2)
	if err != nil {
		t.Fatal(err)
	}
	reg2.AdvertisePlan(strongQ, strongFirst.Plan)
	wrt := query.BuildRates(w.cat, weakQ)
	for _, in := range reg2.InputsFor(weakQ, wrt, nil) {
		t.Errorf("weak query offered stricter stream %s", in.Sig)
	}
}

// Identical predicates reuse exactly (no residual filter).
func TestExactPredicateReuseHasNoFilter(t *testing.T) {
	w := makeWorld(t, 22, 64, 8, 10, 0)
	preds := query.MustPredSet(
		query.Pred{Stream: 1, Attr: "x", Range: query.Range{Lo: 0.2, Hi: 0.6}},
	)
	q1, err := query.NewQueryPred(0, []query.StreamID{1, 4}, 3, preds)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := query.NewQueryPred(1, []query.StreamID{1, 4}, 17, preds)
	if err != nil {
		t.Fatal(err)
	}
	reg := ads.NewRegistry()
	res, err := TopDown(w.h, w.cat, q1, reg)
	if err != nil {
		t.Fatal(err)
	}
	reg.AdvertisePlan(q1, res.Plan)
	rt := query.BuildRates(w.cat, q2)
	ins := reg.InputsFor(q2, rt, nil)
	if len(ins) == 0 {
		t.Fatal("identical-predicate reuse not offered")
	}
	for _, in := range ins {
		if in.BaseSig != "" {
			t.Errorf("exact match got a residual filter: %s from %s", in.Sig, in.BaseSig)
		}
	}
}

// Operators computed under different predicates must never alias in the
// registry or in plans.
func TestPredicateSignaturesDoNotAlias(t *testing.T) {
	w := makeWorld(t, 23, 32, 4, 6, 0)
	p1 := query.MustPredSet(query.Pred{Stream: 0, Attr: "x", Range: query.Range{Lo: 0, Hi: 0.5}})
	p2 := query.MustPredSet(query.Pred{Stream: 0, Attr: "x", Range: query.Range{Lo: 0.5, Hi: 1}})
	q1, _ := query.NewQueryPred(0, []query.StreamID{0, 1}, 2, p1)
	q2, _ := query.NewQueryPred(1, []query.StreamID{0, 1}, 2, p2)
	if q1.SigOf(q1.All()) == q2.SigOf(q2.All()) {
		t.Fatal("different predicates alias")
	}
	reg := ads.NewRegistry()
	r1, err := TopDown(w.h, w.cat, q1, reg)
	if err != nil {
		t.Fatal(err)
	}
	reg.AdvertisePlan(q1, r1.Plan)
	// q2's predicates are disjoint from q1's: no reuse possible.
	rt := query.BuildRates(w.cat, q2)
	if ins := reg.InputsFor(q2, rt, nil); len(ins) != 0 {
		t.Errorf("disjoint predicates offered reuse: %v", ins)
	}
}
