// Package load tracks the processing load deployed operators place on
// physical nodes and turns it into a planning penalty, implementing the
// paper's motivating scenario "node N2 may be overloaded ... the network
// conditions dictate a more efficient join ordering": optimizers that plan
// with a load penalty steer new operators away from hot nodes.
package load

import (
	"sync"

	"hnp/internal/netgraph"
	"hnp/internal/obs"
	"hnp/internal/query"
)

// Tracker accumulates per-node processing load, measured as the total
// input rate of the operators placed on each node (the work a symmetric
// hash join performs is proportional to its input rates). A Tracker is
// internally locked: concurrent deployments may record load while
// in-flight planners read penalties.
type Tracker struct {
	mu   sync.Mutex
	load map[netgraph.NodeID]float64

	// Telemetry handles (nil until BindObs; all nil-safe no-ops then).
	obsTotal   *obs.Gauge
	obsNodes   *obs.Gauge
	obsPenalty *obs.Counter
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{load: map[netgraph.NodeID]float64{}}
}

// BindObs connects the tracker to a telemetry registry: the aggregate
// tracked load ("load.total_rate" gauge), the number of loaded nodes
// ("load.loaded_nodes" gauge), and how often planners consulted the
// penalty ("load.penalty_calls" counter) are recorded there.
func (t *Tracker) BindObs(reg *obs.Registry) {
	t.obsTotal = reg.Gauge("load.total_rate")
	t.obsNodes = reg.Gauge("load.loaded_nodes")
	t.obsPenalty = reg.Counter("load.penalty_calls")
}

// publishLocked refreshes the gauges; callers hold t.mu.
func (t *Tracker) publishLocked() {
	if t.obsTotal == nil {
		return
	}
	total := 0.0
	for _, r := range t.load {
		total += r
	}
	t.obsTotal.Set(total)
	t.obsNodes.Set(float64(len(t.load)))
}

// Load returns the tracked input rate on a node.
func (t *Tracker) Load(v netgraph.NodeID) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.load[v]
}

// AddPlan accounts a deployed plan: every operator adds its children's
// output rates to its node. Derived leaves add nothing (the reused
// operator's load is already accounted by its own deployment).
func (t *Tracker) AddPlan(plan *query.PlanNode) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, op := range plan.Operators() {
		t.load[op.Loc] += op.InputRate()
	}
	t.publishLocked()
}

// RemovePlan reverses AddPlan for an undeployed plan.
func (t *Tracker) RemovePlan(plan *query.PlanNode) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, op := range plan.Operators() {
		t.load[op.Loc] -= op.InputRate()
		if t.load[op.Loc] <= 1e-12 {
			delete(t.load, op.Loc)
		}
	}
	t.publishLocked()
}

// ApplyDelta folds a per-node load change into the ledger — the
// accounting path for plan migrations. A migration keeps shared operators
// running, so the whole-plan RemovePlan+AddPlan pair is wrong for it: in
// between the two calls the kept operators' load is absent (any
// concurrent penalty reads a hole), and operators the old and new plan
// book at different rates (recalibrated statistics) leave residue.
// Folding iflow.MigrationReport.LoadDelta moves exactly the changed
// operators' load in one locked step. Entries that cancel to ~zero are
// removed so unchanged nodes never accumulate float dust.
func (t *Tracker) ApplyDelta(delta map[netgraph.NodeID]float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for v, d := range delta {
		next := t.load[v] + d
		if next <= 1e-12 && next >= -1e-12 {
			delete(t.load, v)
			continue
		}
		t.load[v] = next
	}
	t.publishLocked()
}

// Snapshot returns a copy of the per-node ledger, for audits that
// recompute expected load from live deployments and assert equality (the
// chaos harness does this after every migration).
func (t *Tracker) Snapshot() map[netgraph.NodeID]float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[netgraph.NodeID]float64, len(t.load))
	for v, r := range t.load {
		out[v] = r
	}
	return out
}

// AddRaw adds synthetic background load to a node (e.g. an overloaded
// enterprise server).
func (t *Tracker) AddRaw(v netgraph.NodeID, inRate float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.load[v] += inRate
	t.publishLocked()
}

// Penalty returns a planning penalty function: placing an operator with
// the given input rate on node v costs alpha × currentLoad(v) × inRate
// extra — linear congestion pricing. Pass the result as core.Options.
// Penalty. The returned closure reads the tracker live, so penalties
// follow deployments.
func (t *Tracker) Penalty(alpha float64) func(v netgraph.NodeID, inRate float64) float64 {
	return func(v netgraph.NodeID, inRate float64) float64 {
		t.obsPenalty.Inc()
		return alpha * t.Load(v) * inRate
	}
}
