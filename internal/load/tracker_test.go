package load

import (
	"math"
	"testing"

	"hnp/internal/query"
)

func samplePlan() *query.PlanNode {
	l0 := query.Leaf(query.Input{Mask: 1, Rate: 10, Loc: 0, Sig: "0"})
	l1 := query.Leaf(query.Input{Mask: 2, Rate: 20, Loc: 4, Sig: "1"})
	j := query.Join(l0, l1, 2, 5)
	l2 := query.Leaf(query.Input{Mask: 4, Rate: 7, Loc: 6, Sig: "2"})
	return query.Join(j, l2, 2, 1)
}

func TestAddRemovePlan(t *testing.T) {
	tr := NewTracker()
	p := samplePlan()
	tr.AddPlan(p)
	// Node 2 hosts both joins: inputs 10+20 and 5+7.
	if got := tr.Load(2); math.Abs(got-42) > 1e-9 {
		t.Errorf("Load(2) = %g, want 42", got)
	}
	if tr.Load(0) != 0 {
		t.Error("leaf node accrued load")
	}
	tr.RemovePlan(p)
	if tr.Load(2) != 0 {
		t.Errorf("load not released: %g", tr.Load(2))
	}
}

func TestDerivedLeafAddsNothing(t *testing.T) {
	tr := NewTracker()
	d := query.Leaf(query.Input{Mask: 3, Rate: 5, Loc: 1, Derived: true, Sig: "0|1"})
	l2 := query.Leaf(query.Input{Mask: 4, Rate: 7, Loc: 6, Sig: "2"})
	p := query.Join(d, l2, 3, 1)
	tr.AddPlan(p)
	if tr.Load(1) != 0 {
		t.Error("derived leaf charged its producer again")
	}
	if got := tr.Load(3); math.Abs(got-12) > 1e-9 {
		t.Errorf("Load(3) = %g, want 12", got)
	}
}

func TestPenaltyLinearInLoad(t *testing.T) {
	tr := NewTracker()
	tr.AddRaw(5, 100)
	pen := tr.Penalty(0.5)
	if got := pen(5, 10); math.Abs(got-0.5*100*10) > 1e-9 {
		t.Errorf("penalty = %g", got)
	}
	if pen(6, 10) != 0 {
		t.Error("unloaded node penalized")
	}
	// Live view: growing load grows the penalty through the same closure.
	tr.AddRaw(5, 100)
	if got := pen(5, 10); math.Abs(got-1000) > 1e-9 {
		t.Errorf("closure not live: %g", got)
	}
}
