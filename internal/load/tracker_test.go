package load

import (
	"math"
	"testing"

	"hnp/internal/netgraph"
	"hnp/internal/query"
)

func samplePlan() *query.PlanNode {
	l0 := query.Leaf(query.Input{Mask: 1, Rate: 10, Loc: 0, Sig: "0"})
	l1 := query.Leaf(query.Input{Mask: 2, Rate: 20, Loc: 4, Sig: "1"})
	j := query.Join(l0, l1, 2, 5)
	l2 := query.Leaf(query.Input{Mask: 4, Rate: 7, Loc: 6, Sig: "2"})
	return query.Join(j, l2, 2, 1)
}

func TestAddRemovePlan(t *testing.T) {
	tr := NewTracker()
	p := samplePlan()
	tr.AddPlan(p)
	// Node 2 hosts both joins: inputs 10+20 and 5+7.
	if got := tr.Load(2); math.Abs(got-42) > 1e-9 {
		t.Errorf("Load(2) = %g, want 42", got)
	}
	if tr.Load(0) != 0 {
		t.Error("leaf node accrued load")
	}
	tr.RemovePlan(p)
	if tr.Load(2) != 0 {
		t.Errorf("load not released: %g", tr.Load(2))
	}
}

func TestDerivedLeafAddsNothing(t *testing.T) {
	tr := NewTracker()
	d := query.Leaf(query.Input{Mask: 3, Rate: 5, Loc: 1, Derived: true, Sig: "0|1"})
	l2 := query.Leaf(query.Input{Mask: 4, Rate: 7, Loc: 6, Sig: "2"})
	p := query.Join(d, l2, 3, 1)
	tr.AddPlan(p)
	if tr.Load(1) != 0 {
		t.Error("derived leaf charged its producer again")
	}
	if got := tr.Load(3); math.Abs(got-12) > 1e-9 {
		t.Errorf("Load(3) = %g, want 12", got)
	}
}

// ApplyDelta must equal the remove-then-add outcome without ever passing
// through the intermediate hole, and cancel-to-zero entries must leave
// the ledger (no float dust on unchanged nodes).
func TestApplyDeltaMatchesRecompute(t *testing.T) {
	tr := NewTracker()
	old := samplePlan()
	tr.AddPlan(old)

	// A "migration": the top join (inputs 5+7) moves from node 2 to 3.
	l0 := query.Leaf(query.Input{Mask: 1, Rate: 10, Loc: 0, Sig: "0"})
	l1 := query.Leaf(query.Input{Mask: 2, Rate: 20, Loc: 4, Sig: "1"})
	j := query.Join(l0, l1, 2, 5)
	l2 := query.Leaf(query.Input{Mask: 4, Rate: 7, Loc: 6, Sig: "2"})
	new := query.Join(j, l2, 3, 1)

	tr.ApplyDelta(map[netgraph.NodeID]float64{2: -12, 3: 12})

	// The ledger now equals a fresh AddPlan of the new plan.
	want := NewTracker()
	want.AddPlan(new)
	got, exp := tr.Snapshot(), want.Snapshot()
	if len(got) != len(exp) {
		t.Fatalf("ledger %v, recompute %v", got, exp)
	}
	for v, r := range exp {
		if math.Abs(got[v]-r) > 1e-9 {
			t.Errorf("Load(%d) = %g, recompute %g", v, got[v], r)
		}
	}

	// Reversing the move cancels node 3 exactly: the entry is deleted,
	// not left as ±1e-16 residue.
	tr.ApplyDelta(map[netgraph.NodeID]float64{3: -12, 2: 12})
	if _, ok := tr.Snapshot()[3]; ok {
		t.Error("cancelled node 3 still in the ledger")
	}
}

// Snapshot is a copy: mutating it must not touch the tracker.
func TestSnapshotIsolated(t *testing.T) {
	tr := NewTracker()
	tr.AddRaw(1, 10)
	s := tr.Snapshot()
	s[1] = 999
	if got := tr.Load(1); got != 10 {
		t.Errorf("snapshot mutation leaked: Load(1) = %g", got)
	}
}

func TestPenaltyLinearInLoad(t *testing.T) {
	tr := NewTracker()
	tr.AddRaw(5, 100)
	pen := tr.Penalty(0.5)
	if got := pen(5, 10); math.Abs(got-0.5*100*10) > 1e-9 {
		t.Errorf("penalty = %g", got)
	}
	if pen(6, 10) != 0 {
		t.Error("unloaded node penalized")
	}
	// Live view: growing load grows the penalty through the same closure.
	tr.AddRaw(5, 100)
	if got := pen(5, 10); math.Abs(got-1000) > 1e-9 {
		t.Errorf("closure not live: %g", got)
	}
}
