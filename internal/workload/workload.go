// Package workload generates the synthetic workloads of the paper's
// evaluation: uniformly random stream rates, selectivities and source
// placements, and queries with a bounded number of joins and random sink
// placements.
package workload

import (
	"fmt"
	"math/rand"

	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// Config parameterizes one workload.
type Config struct {
	// Streams is the number of base stream sources.
	Streams int
	// Queries is the number of queries to generate.
	Queries int
	// MinSources/MaxSources bound the number of streams per query
	// (joins per query = sources − 1; the paper uses 2-5 joins).
	MinSources, MaxSources int
	// RateLo/RateHi bound the uniform stream rates.
	RateLo, RateHi float64
	// SelLo/SelHi bound the uniform pairwise selectivities.
	SelLo, SelHi float64
}

// Default returns the paper's standard workload shape: rates and
// selectivities uniform, 2-5 joins per query.
func Default(streams, queries int) Config {
	return Config{
		Streams: streams, Queries: queries,
		MinSources: 3, MaxSources: 6, // 2-5 joins
		RateLo: 1, RateHi: 100,
		SelLo: 0.001, SelHi: 0.02,
	}
}

// Workload is a generated catalog plus query set over a given network.
type Workload struct {
	Catalog *query.Catalog
	Queries []*query.Query
	Streams []query.StreamID
}

// Generate draws a workload for a network with n nodes. Identical seeds
// give identical workloads.
func Generate(cfg Config, n int, rng *rand.Rand) (*Workload, error) {
	if cfg.Streams < 1 || n < 1 {
		return nil, fmt.Errorf("workload: need at least one stream and one node")
	}
	if cfg.MinSources < 1 || cfg.MaxSources < cfg.MinSources {
		return nil, fmt.Errorf("workload: bad source bounds [%d,%d]", cfg.MinSources, cfg.MaxSources)
	}
	if cfg.MaxSources > cfg.Streams {
		return nil, fmt.Errorf("workload: queries over %d sources exceed %d streams",
			cfg.MaxSources, cfg.Streams)
	}
	if cfg.MaxSources > query.MaxSources {
		return nil, fmt.Errorf("workload: MaxSources %d exceeds limit %d", cfg.MaxSources, query.MaxSources)
	}
	cat := query.NewCatalog((cfg.SelLo + cfg.SelHi) / 2)
	w := &Workload{Catalog: cat}
	for i := 0; i < cfg.Streams; i++ {
		rate := cfg.RateLo + rng.Float64()*(cfg.RateHi-cfg.RateLo)
		src := netgraph.NodeID(rng.Intn(n))
		w.Streams = append(w.Streams, cat.Add(fmt.Sprintf("stream-%d", i), rate, src))
	}
	for i := 0; i < cfg.Streams; i++ {
		for j := i + 1; j < cfg.Streams; j++ {
			sel := cfg.SelLo + rng.Float64()*(cfg.SelHi-cfg.SelLo)
			cat.SetSelectivity(w.Streams[i], w.Streams[j], sel)
		}
	}
	for qi := 0; qi < cfg.Queries; qi++ {
		k := cfg.MinSources
		if cfg.MaxSources > cfg.MinSources {
			k += rng.Intn(cfg.MaxSources - cfg.MinSources + 1)
		}
		perm := rng.Perm(cfg.Streams)
		srcs := make([]query.StreamID, k)
		for i := range srcs {
			srcs[i] = w.Streams[perm[i]]
		}
		q, err := query.NewQuery(qi, srcs, netgraph.NodeID(rng.Intn(n)))
		if err != nil {
			return nil, err
		}
		w.Queries = append(w.Queries, q)
	}
	return w, nil
}
