// Package workload generates the synthetic workloads of the paper's
// evaluation: uniformly random stream rates, selectivities and source
// placements, and queries with a bounded number of joins and random sink
// placements.
package workload

import (
	"fmt"
	"math/rand"

	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// Config parameterizes one workload.
type Config struct {
	// Streams is the number of base stream sources.
	Streams int
	// Queries is the number of queries to generate.
	Queries int
	// MinSources/MaxSources bound the number of streams per query
	// (joins per query = sources − 1; the paper uses 2-5 joins).
	MinSources, MaxSources int
	// RateLo/RateHi bound the uniform stream rates.
	RateLo, RateHi float64
	// SelLo/SelHi bound the uniform pairwise selectivities.
	SelLo, SelHi float64
}

// Default returns the paper's standard workload shape: rates and
// selectivities uniform, 2-5 joins per query.
func Default(streams, queries int) Config {
	return Config{
		Streams: streams, Queries: queries,
		MinSources: 3, MaxSources: 6, // 2-5 joins
		RateLo: 1, RateHi: 100,
		SelLo: 0.001, SelHi: 0.02,
	}
}

// Workload is a generated catalog plus query set over a given network.
type Workload struct {
	Catalog *query.Catalog
	Queries []*query.Query
	Streams []query.StreamID
}

// StreamSpec describes one synthesized base stream: CatalogSpec's output,
// ready to register into any catalog (query.Catalog.Add or
// hnp.System.AddStream).
type StreamSpec struct {
	Name   string
	Rate   float64
	Source netgraph.NodeID
}

// SelSpec is one synthesized pairwise selectivity, by stream index into
// the corresponding StreamSpec slice.
type SelSpec struct {
	I, J int
	Sel  float64
}

// CatalogSpec draws the stream catalog of a workload — names, rates,
// source placements and pairwise selectivities — without binding it to a
// concrete catalog object, so library users (Generate) and the serving
// layer (smqd shards, which must all build the identical catalog from one
// seed) share one definition. Identical seeds give identical specs; the
// rng consumption order is part of the contract, since Generate continues
// drawing queries from the same rng.
func CatalogSpec(cfg Config, n int, rng *rand.Rand) ([]StreamSpec, []SelSpec, error) {
	if cfg.Streams < 1 || n < 1 {
		return nil, nil, fmt.Errorf("workload: need at least one stream and one node")
	}
	streams := make([]StreamSpec, cfg.Streams)
	for i := range streams {
		rate := cfg.RateLo + rng.Float64()*(cfg.RateHi-cfg.RateLo)
		src := netgraph.NodeID(rng.Intn(n))
		streams[i] = StreamSpec{Name: fmt.Sprintf("stream-%d", i), Rate: rate, Source: src}
	}
	var sels []SelSpec
	for i := 0; i < cfg.Streams; i++ {
		for j := i + 1; j < cfg.Streams; j++ {
			sel := cfg.SelLo + rng.Float64()*(cfg.SelHi-cfg.SelLo)
			sels = append(sels, SelSpec{I: i, J: j, Sel: sel})
		}
	}
	return streams, sels, nil
}

// Generate draws a workload for a network with n nodes. Identical seeds
// give identical workloads.
func Generate(cfg Config, n int, rng *rand.Rand) (*Workload, error) {
	if cfg.MinSources < 1 || cfg.MaxSources < cfg.MinSources {
		return nil, fmt.Errorf("workload: bad source bounds [%d,%d]", cfg.MinSources, cfg.MaxSources)
	}
	if cfg.MaxSources > cfg.Streams {
		return nil, fmt.Errorf("workload: queries over %d sources exceed %d streams",
			cfg.MaxSources, cfg.Streams)
	}
	if cfg.MaxSources > query.MaxSources {
		return nil, fmt.Errorf("workload: MaxSources %d exceeds limit %d", cfg.MaxSources, query.MaxSources)
	}
	specs, sels, err := CatalogSpec(cfg, n, rng)
	if err != nil {
		return nil, err
	}
	cat := query.NewCatalog((cfg.SelLo + cfg.SelHi) / 2)
	w := &Workload{Catalog: cat}
	for _, sp := range specs {
		w.Streams = append(w.Streams, cat.Add(sp.Name, sp.Rate, sp.Source))
	}
	for _, s := range sels {
		cat.SetSelectivity(w.Streams[s.I], w.Streams[s.J], s.Sel)
	}
	for qi := 0; qi < cfg.Queries; qi++ {
		k := cfg.MinSources
		if cfg.MaxSources > cfg.MinSources {
			k += rng.Intn(cfg.MaxSources - cfg.MinSources + 1)
		}
		perm := rng.Perm(cfg.Streams)
		srcs := make([]query.StreamID, k)
		for i := range srcs {
			srcs[i] = w.Streams[perm[i]]
		}
		q, err := query.NewQuery(qi, srcs, netgraph.NodeID(rng.Intn(n)))
		if err != nil {
			return nil, err
		}
		w.Queries = append(w.Queries, q)
	}
	return w, nil
}
