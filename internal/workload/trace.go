package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// TraceConfig parameterizes one synthesized serving trace: a timestamped
// sequence of deploy/undeploy requests, the serving-layer counterpart of
// Config's one-shot query batches. Everything is drawn from one seed, so
// a trace is bit-identical across runs and machines — the load harness
// and its committed baseline replay the same request sequence forever.
type TraceConfig struct {
	// Seed drives every random choice in the trace.
	Seed int64
	// Duration is the trace horizon in seconds of trace time (the load
	// harness replays it at a configurable speedup).
	Duration float64
	// Rate is the base arrival rate in requests per second of trace time;
	// inter-arrival gaps are exponential (Poisson arrivals).
	Rate float64
	// BurstEvery/BurstLen/BurstFactor shape arrival bursts: every
	// BurstEvery seconds the arrival rate is multiplied by BurstFactor
	// for BurstLen seconds. BurstEvery <= 0 disables bursts.
	BurstEvery, BurstLen, BurstFactor float64
	// Templates is the number of distinct query shapes in the mix; each
	// arrival instantiates one template.
	Templates int
	// MixSkew is the Zipf exponent of template popularity: 0 is a uniform
	// mix, larger values concentrate arrivals on few hot templates (hot
	// templates re-hit the advertisement registry, so skew controls the
	// reuse rate the server sees).
	MixSkew float64
	// Tenants is the number of multiplexed tenants; TenantSkew is their
	// Zipf exponent (0 = uniform).
	Tenants    int
	TenantSkew float64
	// UndeployFrac is the fraction of arrivals that retire an earlier
	// deployment instead of creating a new one (skipped while nothing is
	// deployed, so a trace prefix is always deploy-heavy).
	UndeployFrac float64
	// MinSources/MaxSources bound the streams per template.
	MinSources, MaxSources int
	// PredProb is the probability a template carries a WHERE selection
	// predicate; AggProb the probability it carries a WINDOW/AGGREGATE
	// clause.
	PredProb, AggProb float64
}

// DefaultTrace returns the standard serving-trace shape: Poisson
// arrivals at 100 req/s for 8 seconds, 12 templates with a mild mix skew,
// 4 tenants, and a 15% undeploy share.
func DefaultTrace(seed int64) TraceConfig {
	return TraceConfig{
		Seed:     seed,
		Duration: 8, Rate: 100,
		Templates: 12, MixSkew: 1.1,
		Tenants: 4, TenantSkew: 0.8,
		UndeployFrac: 0.15,
		MinSources:   2, MaxSources: 4,
		PredProb: 0.5, AggProb: 0.15,
	}
}

// Trace event kinds.
const (
	KindDeploy   = "deploy"
	KindUndeploy = "undeploy"
)

// TraceEvent is one timestamped serving request.
type TraceEvent struct {
	// At is the arrival time in seconds of trace time.
	At float64 `json:"at"`
	// Kind is KindDeploy or KindUndeploy. Undeploy events carry no CQL:
	// the harness retires the oldest outstanding deployment.
	Kind string `json:"kind"`
	// Tenant multiplexes the request stream ("tenant-N").
	Tenant string `json:"tenant"`
	// CQL is the statement to deploy (empty for undeploys).
	CQL string `json:"cql,omitempty"`
	// Sink is the delivery node for deploys.
	Sink int `json:"sink,omitempty"`
	// Template indexes the query shape the event instantiated (-1 for
	// undeploys), for mix-statistics checks.
	Template int `json:"template"`
}

// Trace is a synthesized request sequence plus the configuration and
// stream names it was drawn from.
type Trace struct {
	Config TraceConfig  `json:"config"`
	Names  []string     `json:"names"`
	Events []TraceEvent `json:"events"`
}

// zipfWeights returns normalized popularity weights w_i ∝ 1/(i+1)^s.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	total := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// pick samples an index from normalized weights.
func pick(rng *rand.Rand, w []float64) int {
	u := rng.Float64()
	for i, p := range w {
		u -= p
		if u < 0 {
			return i
		}
	}
	return len(w) - 1
}

// ZipfShare returns the expected arrival share of rank i (0-based) under
// the trace's popularity law — the analytic counterpart the statistics
// property tests compare empirical shares against.
func ZipfShare(n int, s float64, i int) float64 {
	return zipfWeights(n, s)[i]
}

// InBurst reports whether trace time t falls inside a burst window.
func (cfg TraceConfig) InBurst(t float64) bool {
	return cfg.BurstEvery > 0 && math.Mod(t, cfg.BurstEvery) < cfg.BurstLen
}

// template is one query shape, rendered to CQL per arrival.
type template struct {
	stmt string
}

// synthTemplates draws the template pool: a stream subset, an optional
// selection predicate and an optional windowed aggregate each, rendered
// as CQL text so every arrival exercises the full wire decode + parse
// path.
func synthTemplates(cfg TraceConfig, names []string, rng *rand.Rand) []template {
	aggs := []string{"COUNT", "SUM", "AVG", "MAX", "MIN"}
	windows := []int{10, 30, 60}
	out := make([]template, cfg.Templates)
	for t := range out {
		k := cfg.MinSources
		if cfg.MaxSources > cfg.MinSources {
			k += rng.Intn(cfg.MaxSources - cfg.MinSources + 1)
		}
		perm := rng.Perm(len(names))
		stmt := "SELECT * FROM " + names[perm[0]]
		for i := 1; i < k; i++ {
			stmt += ", " + names[perm[i]]
		}
		if rng.Float64() < cfg.PredProb {
			// Upper-bound predicates over the normalized [0,1] attribute
			// domain; the bound stays away from 0 so the range is valid.
			stmt += fmt.Sprintf(" WHERE %s.attr0 < %.3f", names[perm[0]], 0.2+0.75*rng.Float64())
		}
		if rng.Float64() < cfg.AggProb {
			stmt += fmt.Sprintf(" WINDOW %d AGGREGATE %s",
				windows[rng.Intn(len(windows))], aggs[rng.Intn(len(aggs))])
		}
		out[t] = template{stmt: stmt}
	}
	return out
}

// SynthesizeTrace draws a serving trace over the named streams and a
// network of n nodes. Identical inputs give bit-identical traces.
func SynthesizeTrace(cfg TraceConfig, names []string, n int) (*Trace, error) {
	if len(names) == 0 || n < 1 {
		return nil, fmt.Errorf("workload: trace needs streams and nodes")
	}
	if cfg.Duration <= 0 || cfg.Rate <= 0 {
		return nil, fmt.Errorf("workload: trace needs positive duration and rate")
	}
	if cfg.Templates < 1 || cfg.Tenants < 1 {
		return nil, fmt.Errorf("workload: trace needs at least one template and tenant")
	}
	if cfg.MinSources < 2 || cfg.MaxSources < cfg.MinSources || cfg.MaxSources > len(names) {
		return nil, fmt.Errorf("workload: bad template source bounds [%d,%d] over %d streams",
			cfg.MinSources, cfg.MaxSources, len(names))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	templates := synthTemplates(cfg, names, rng)
	mixW := zipfWeights(cfg.Templates, cfg.MixSkew)
	tenantW := zipfWeights(cfg.Tenants, cfg.TenantSkew)

	tr := &Trace{Config: cfg, Names: append([]string(nil), names...)}
	outstanding := 0
	t := 0.0
	for {
		rate := cfg.Rate
		if cfg.InBurst(t) {
			rate *= cfg.BurstFactor
		}
		t += rng.ExpFloat64() / rate
		if t >= cfg.Duration {
			break
		}
		ev := TraceEvent{
			At:       t,
			Tenant:   fmt.Sprintf("tenant-%d", pick(rng, tenantW)),
			Template: -1,
		}
		if rng.Float64() < cfg.UndeployFrac && outstanding > 0 {
			ev.Kind = KindUndeploy
			outstanding--
		} else {
			ti := pick(rng, mixW)
			ev.Kind = KindDeploy
			ev.CQL = templates[ti].stmt
			ev.Sink = rng.Intn(n)
			ev.Template = ti
			outstanding++
		}
		tr.Events = append(tr.Events, ev)
	}
	return tr, nil
}
