package workload

import (
	"math/rand"
	"reflect"
	"testing"

	"hnp/internal/cql"
	"hnp/internal/query"
)

// traceNames builds a catalog spec and returns its stream names, the way
// the serving layer does.
func traceNames(t *testing.T, streams, n int, seed int64) ([]string, *query.Catalog) {
	t.Helper()
	cfg := Default(streams, 0)
	specs, sels, err := CatalogSpec(cfg, n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	cat := query.NewCatalog((cfg.SelLo + cfg.SelHi) / 2)
	ids := make([]query.StreamID, len(specs))
	names := make([]string, len(specs))
	for i, sp := range specs {
		ids[i] = cat.Add(sp.Name, sp.Rate, sp.Source)
		names[i] = sp.Name
	}
	for _, s := range sels {
		cat.SetSelectivity(ids[s.I], ids[s.J], s.Sel)
	}
	return names, cat
}

// TestTraceDeterministic pins the seed contract: synthesizing the same
// trace twice gives bit-identical event sequences.
func TestTraceDeterministic(t *testing.T) {
	names, _ := traceNames(t, 16, 64, 3)
	cfg := DefaultTrace(42)
	a, err := SynthesizeTrace(cfg, names, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SynthesizeTrace(cfg, names, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different traces: %d vs %d events", len(a.Events), len(b.Events))
	}
	if len(a.Events) == 0 {
		t.Fatal("empty trace")
	}
	reseeded := cfg
	reseeded.Seed++
	c, err := SynthesizeTrace(reseeded, names, 64)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestTraceStatements feeds every synthesized deploy statement through the
// real CQL parser against the catalog the names came from: the trace
// generator must only emit statements the server can plan.
func TestTraceStatements(t *testing.T) {
	names, cat := traceNames(t, 16, 64, 3)
	tr, err := SynthesizeTrace(DefaultTrace(7), names, 64)
	if err != nil {
		t.Fatal(err)
	}
	deploys := 0
	for _, ev := range tr.Events {
		if ev.Kind != KindDeploy {
			continue
		}
		deploys++
		if _, err := cql.Parse(cat, ev.CQL); err != nil {
			t.Fatalf("unparseable synthesized statement %q: %v", ev.CQL, err)
		}
		if ev.Sink < 0 || ev.Sink >= 64 {
			t.Fatalf("sink %d out of range", ev.Sink)
		}
	}
	if deploys == 0 {
		t.Fatal("trace has no deploys")
	}
}

// TestTraceArrivalStats checks the empirical arrival process against the
// configured parameters: overall rate, monotone non-decreasing
// timestamps inside the horizon, and the burst-window rate multiplier.
func TestTraceArrivalStats(t *testing.T) {
	names, _ := traceNames(t, 16, 64, 3)
	cfg := DefaultTrace(11)
	cfg.Duration, cfg.Rate = 50, 200
	cfg.BurstEvery, cfg.BurstLen, cfg.BurstFactor = 5, 1, 6
	tr, err := SynthesizeTrace(cfg, names, 64)
	if err != nil {
		t.Fatal(err)
	}
	inBurst, outBurst := 0, 0
	last := 0.0
	for _, ev := range tr.Events {
		if ev.At < last || ev.At >= cfg.Duration {
			t.Fatalf("event at %g out of order or past horizon (prev %g)", ev.At, last)
		}
		last = ev.At
		if cfg.InBurst(ev.At) {
			inBurst++
		} else {
			outBurst++
		}
	}
	burstSecs := cfg.Duration / cfg.BurstEvery * cfg.BurstLen
	rateIn := float64(inBurst) / burstSecs
	rateOut := float64(outBurst) / (cfg.Duration - burstSecs)
	if rel(rateOut, cfg.Rate) > 0.10 {
		t.Fatalf("off-burst rate %.1f/s, configured %.1f/s", rateOut, cfg.Rate)
	}
	if rel(rateIn/rateOut, cfg.BurstFactor) > 0.20 {
		t.Fatalf("burst multiplier %.2f, configured %.2f", rateIn/rateOut, cfg.BurstFactor)
	}
}

// TestTraceMixStats checks query-mix skew, tenant multiplexing and the
// undeploy share against their analytic expectations.
func TestTraceMixStats(t *testing.T) {
	names, _ := traceNames(t, 16, 64, 3)
	cfg := DefaultTrace(13)
	cfg.Duration, cfg.Rate = 60, 150
	cfg.Templates, cfg.MixSkew = 10, 1.2
	cfg.Tenants, cfg.TenantSkew = 6, 1.0
	cfg.UndeployFrac = 0.2
	tr, err := SynthesizeTrace(cfg, names, 64)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := map[int]int{}
	tenant := map[string]int{}
	deploys, undeploys := 0, 0
	for _, ev := range tr.Events {
		tenant[ev.Tenant]++
		if ev.Kind == KindUndeploy {
			undeploys++
			continue
		}
		deploys++
		tmpl[ev.Template]++
	}
	hotShare := float64(tmpl[0]) / float64(deploys)
	if want := ZipfShare(cfg.Templates, cfg.MixSkew, 0); rel(hotShare, want) > 0.15 {
		t.Fatalf("hot-template share %.3f, want ~%.3f", hotShare, want)
	}
	tenShare := float64(tenant["tenant-0"]) / float64(len(tr.Events))
	if want := ZipfShare(cfg.Tenants, cfg.TenantSkew, 0); rel(tenShare, want) > 0.15 {
		t.Fatalf("hot-tenant share %.3f, want ~%.3f", tenShare, want)
	}
	undeployShare := float64(undeploys) / float64(len(tr.Events))
	if rel(undeployShare, cfg.UndeployFrac) > 0.15 {
		t.Fatalf("undeploy share %.3f, want ~%.3f", undeployShare, cfg.UndeployFrac)
	}
	// Undeploys never outnumber deploys at any prefix (the generator only
	// retires outstanding deployments).
	outstanding := 0
	for _, ev := range tr.Events {
		if ev.Kind == KindDeploy {
			outstanding++
		} else {
			outstanding--
		}
		if outstanding < 0 {
			t.Fatal("trace retires more deployments than it created")
		}
	}
}

func rel(got, want float64) float64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}
