package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := Default(100, 20)
	w, err := Generate(cfg, 128, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Streams) != 100 || len(w.Queries) != 20 {
		t.Fatalf("streams=%d queries=%d", len(w.Streams), len(w.Queries))
	}
	for _, id := range w.Streams {
		s := w.Catalog.Stream(id)
		if s.Rate < cfg.RateLo || s.Rate > cfg.RateHi {
			t.Errorf("rate %g out of range", s.Rate)
		}
		if int(s.Source) < 0 || int(s.Source) >= 128 {
			t.Errorf("source %d out of range", s.Source)
		}
	}
	for _, q := range w.Queries {
		if q.K() < cfg.MinSources || q.K() > cfg.MaxSources {
			t.Errorf("query %d has %d sources", q.ID, q.K())
		}
		if int(q.Sink) < 0 || int(q.Sink) >= 128 {
			t.Errorf("sink %d out of range", q.Sink)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Default(30, 5), 64, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Default(30, 5), 64, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Queries {
		if a.Queries[i].Sink != b.Queries[i].Sink || a.Queries[i].K() != b.Queries[i].K() {
			t.Fatalf("query %d differs", i)
		}
		for j := range a.Queries[i].Sources {
			if a.Queries[i].Sources[j] != b.Queries[i].Sources[j] {
				t.Fatalf("query %d source %d differs", i, j)
			}
		}
	}
	for i := range a.Streams {
		if a.Catalog.Stream(a.Streams[i]).Rate != b.Catalog.Stream(b.Streams[i]).Rate {
			t.Fatalf("stream %d rate differs", i)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bad := []Config{
		{Streams: 0, Queries: 1, MinSources: 1, MaxSources: 1},
		{Streams: 5, Queries: 1, MinSources: 0, MaxSources: 2},
		{Streams: 5, Queries: 1, MinSources: 3, MaxSources: 2},
		{Streams: 5, Queries: 1, MinSources: 2, MaxSources: 6},
		{Streams: 40, Queries: 1, MinSources: 20, MaxSources: 30},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg, 16, rng); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := Generate(Default(10, 1), 0, rng); err == nil {
		t.Error("zero nodes accepted")
	}
}

// Property: every query's sources are distinct and selectivities fall in
// the configured range.
func TestGenerateProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Default(10+rng.Intn(40), 1+rng.Intn(10))
		w, err := Generate(cfg, 8+rng.Intn(64), rng)
		if err != nil {
			return false
		}
		for _, q := range w.Queries {
			seen := map[int]bool{}
			for _, s := range q.Sources {
				if seen[int(s)] {
					return false
				}
				seen[int(s)] = true
			}
		}
		for i := 0; i < len(w.Streams); i++ {
			for j := i + 1; j < len(w.Streams); j++ {
				sel := w.Catalog.Selectivity(w.Streams[i], w.Streams[j])
				if sel < cfg.SelLo || sel > cfg.SelHi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
