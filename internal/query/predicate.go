package query

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrContradiction marks predicate sets whose conjunction is provably
// empty (disjoint ranges on one attribute). Callers that want to plan
// such queries as no-ops instead of rejecting them — the rewrite
// pipeline's constant folding — detect it with errors.Is.
var ErrContradiction = errors.New("contradictory predicates")

// This file adds selection predicates and query containment — the paper's
// stated future work ("other optimization opportunities achievable through
// query containment", §5). A query may constrain stream attributes to
// ranges; a deployed operator computed under weaker predicates *contains*
// the results a stricter query needs, so the stricter query can reuse it
// through a residual filter applied at the producing node.

// Range is a numeric interval [Lo, Hi) over an attribute's normalized
// [0,1] domain.
type Range struct{ Lo, Hi float64 }

// FullRange covers the whole attribute domain.
func FullRange() Range { return Range{0, 1} }

// Valid reports whether the range is non-empty and inside the domain.
func (r Range) Valid() bool { return 0 <= r.Lo && r.Lo < r.Hi && r.Hi <= 1 }

// Width returns the covered fraction of the domain — the selectivity of
// the constraint under a uniform value distribution.
func (r Range) Width() float64 { return r.Hi - r.Lo }

// Contains reports whether o lies entirely within r.
func (r Range) Contains(o Range) bool { return r.Lo <= o.Lo && o.Hi <= r.Hi }

// Intersect returns the overlap of two ranges; ok is false when disjoint.
func (r Range) Intersect(o Range) (Range, bool) {
	lo, hi := r.Lo, r.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if lo >= hi {
		return Range{}, false
	}
	return Range{lo, hi}, true
}

// Pred constrains one attribute of one stream to a range.
type Pred struct {
	Stream StreamID
	Attr   string
	Range  Range
}

type predKey struct {
	stream StreamID
	attr   string
}

// PredSet is a conjunction of range predicates, normalized to at most one
// range per (stream, attribute). The zero value is the empty conjunction
// (no constraints) and is ready to use.
type PredSet struct {
	m map[predKey]Range
}

// NewPredSet builds a normalized predicate set, intersecting constraints
// on the same attribute. It errors on invalid ranges or empty
// intersections (an always-false query).
func NewPredSet(preds ...Pred) (PredSet, error) {
	ps := PredSet{m: map[predKey]Range{}}
	for _, p := range preds {
		if !p.Range.Valid() {
			return PredSet{}, fmt.Errorf("query: invalid range [%g,%g) on %d.%s",
				p.Range.Lo, p.Range.Hi, p.Stream, p.Attr)
		}
		k := predKey{p.Stream, p.Attr}
		if ex, ok := ps.m[k]; ok {
			inter, ok := ex.Intersect(p.Range)
			if !ok {
				return PredSet{}, fmt.Errorf("query: %w on %d.%s", ErrContradiction, p.Stream, p.Attr)
			}
			ps.m[k] = inter
			continue
		}
		ps.m[k] = p.Range
	}
	return ps, nil
}

// MustPredSet is NewPredSet panicking on error, for literals in tests and
// examples.
func MustPredSet(preds ...Pred) PredSet {
	ps, err := NewPredSet(preds...)
	if err != nil {
		panic(err)
	}
	return ps
}

// Empty reports whether the set has no constraints.
func (ps PredSet) Empty() bool { return len(ps.m) == 0 }

// Len returns the number of constrained attributes.
func (ps PredSet) Len() int { return len(ps.m) }

// Restrict returns the subset of constraints that touch the given streams.
func (ps PredSet) Restrict(streams []StreamID) PredSet {
	want := map[StreamID]bool{}
	for _, s := range streams {
		want[s] = true
	}
	out := PredSet{m: map[predKey]Range{}}
	for k, r := range ps.m {
		if want[k.stream] {
			out.m[k] = r
		}
	}
	return out
}

// Contains reports whether results computed under ps contain the results
// required under stricter: every constraint of ps must be implied by
// stricter's constraint on the same attribute. (An unconstrained
// attribute in ps is trivially implied.) When true, stricter's output can
// be produced from ps's output by filtering.
func (ps PredSet) Contains(stricter PredSet) bool {
	for k, weak := range ps.m {
		strong, ok := stricter.m[k]
		if !ok || !weak.Contains(strong) {
			return false
		}
	}
	return true
}

// StreamSelectivity returns the fraction of a stream's tuples passing the
// set's constraints on that stream (uniform value distributions, as the
// rest of the rate model assumes).
func (ps PredSet) StreamSelectivity(s StreamID) float64 {
	sel := 1.0
	for k, r := range ps.m {
		if k.stream == s {
			sel *= r.Width()
		}
	}
	return sel
}

// Sig returns the canonical signature fragment of the set: sorted
// "stream.attr:[lo,hi)" terms. The empty set yields "", so predicate-free
// signatures are unchanged.
func (ps PredSet) Sig() string {
	if len(ps.m) == 0 {
		return ""
	}
	terms := make([]string, 0, len(ps.m))
	for k, r := range ps.m {
		terms = append(terms, fmt.Sprintf("%d.%s:[%g,%g)", k.stream, k.attr, r.Lo, r.Hi))
	}
	sort.Strings(terms)
	return strings.Join(terms, "&")
}

// Equal reports whether two sets constrain identically.
func (ps PredSet) Equal(o PredSet) bool { return ps.Sig() == o.Sig() }

// Preds returns the constraints in canonical order.
func (ps PredSet) Preds() []Pred {
	out := make([]Pred, 0, len(ps.m))
	for k, r := range ps.m {
		out = append(out, Pred{Stream: k.stream, Attr: k.attr, Range: r})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stream != out[j].Stream {
			return out[i].Stream < out[j].Stream
		}
		return out[i].Attr < out[j].Attr
	})
	return out
}
