// Package query models distributed continuous select-project-join queries:
// stream sources with rates and pairwise join selectivities, queries over
// subsets of streams delivered to sinks, and operator plan trees with
// physical placements. It is the shared vocabulary of every optimizer in
// this repository.
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hnp/internal/netgraph"
)

// StreamID identifies a base stream source in the catalog.
type StreamID int

// Stream is a base data stream: a named source producing data at a fixed
// expected rate (in cost units per unit time, e.g. bytes/sec) from one
// physical network node.
type Stream struct {
	ID     StreamID
	Name   string
	Rate   float64
	Source netgraph.NodeID
}

type selKey struct{ a, b StreamID }

func mkSelKey(a, b StreamID) selKey {
	if a > b {
		a, b = b, a
	}
	return selKey{a, b}
}

// Catalog holds every base stream in the system together with the pairwise
// join selectivities the optimizers estimate costs with ("estimated
// selectivities of the query operators, measured online or using gathered
// statistics").
type Catalog struct {
	streams []Stream
	sel     map[selKey]float64
	schemas map[StreamID]Schema
	// DefaultSel is the selectivity assumed for stream pairs without an
	// explicit entry.
	DefaultSel float64
}

// NewCatalog returns an empty catalog with the given default selectivity.
func NewCatalog(defaultSel float64) *Catalog {
	return &Catalog{sel: map[selKey]float64{}, schemas: map[StreamID]Schema{}, DefaultSel: defaultSel}
}

// SetSchema declares a stream's attribute schema (copied). Declaring
// schemas switches the planners' cost model for queries over this stream
// from rate-only to rate×width, and sizes the runtime's tuples.
func (c *Catalog) SetSchema(id StreamID, s Schema) {
	if id < 0 || int(id) >= len(c.streams) {
		panic(fmt.Sprintf("query: stream %d out of range", id))
	}
	c.schemas[id] = append(Schema(nil), s...)
}

// Schema returns a stream's declared schema (nil when undeclared).
func (c *Catalog) Schema(id StreamID) Schema { return c.schemas[id] }

// StreamWidth returns the full-tuple byte width of a stream, or 0 when no
// schema is declared ("width unknown").
func (c *Catalog) StreamWidth(id StreamID) float64 {
	if s, ok := c.schemas[id]; ok {
		return s.Width()
	}
	return 0
}

// Add registers a stream and returns its ID.
func (c *Catalog) Add(name string, rate float64, source netgraph.NodeID) StreamID {
	id := StreamID(len(c.streams))
	c.streams = append(c.streams, Stream{ID: id, Name: name, Rate: rate, Source: source})
	return id
}

// NumStreams returns the number of registered streams.
func (c *Catalog) NumStreams() int { return len(c.streams) }

// Stream returns the stream with the given ID.
func (c *Catalog) Stream(id StreamID) Stream {
	if id < 0 || int(id) >= len(c.streams) {
		panic(fmt.Sprintf("query: stream %d out of range", id))
	}
	return c.streams[id]
}

// SetRate updates a stream's expected rate — how measured statistics are
// fed back into the planning model.
func (c *Catalog) SetRate(id StreamID, rate float64) {
	if id < 0 || int(id) >= len(c.streams) {
		panic(fmt.Sprintf("query: stream %d out of range", id))
	}
	if rate < 0 {
		panic(fmt.Sprintf("query: negative rate %g", rate))
	}
	c.streams[id].Rate = rate
}

// SetSelectivity records the join selectivity between streams a and b
// (order-insensitive).
func (c *Catalog) SetSelectivity(a, b StreamID, sel float64) {
	if sel < 0 {
		panic(fmt.Sprintf("query: negative selectivity %g", sel))
	}
	c.sel[mkSelKey(a, b)] = sel
}

// Selectivity returns the join selectivity between streams a and b,
// falling back to DefaultSel.
func (c *Catalog) Selectivity(a, b StreamID) float64 {
	if s, ok := c.sel[mkSelKey(a, b)]; ok {
		return s
	}
	return c.DefaultSel
}

// SigOf returns the canonical signature of a set of base streams: the
// sorted IDs joined with '|'. Two subqueries over the same stream set have
// the same signature; the advertisement registry is keyed by it.
func SigOf(ids []StreamID) string {
	sorted := append([]StreamID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var b strings.Builder
	for i, id := range sorted {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.Itoa(int(id)))
	}
	return b.String()
}
