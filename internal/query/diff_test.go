package query

import (
	"testing"

	"hnp/internal/netgraph"
)

// diffFixture builds a 4-stream catalog/query and a helper assembling
// left-deep plans with explicit join placements.
type diffFixture struct {
	cat *Catalog
	q   *Query
	rt  RateTable
}

func newDiffFixture(t *testing.T) *diffFixture {
	t.Helper()
	cat := NewCatalog(0.01)
	a := cat.Add("A", 20, 1)
	b := cat.Add("B", 15, 2)
	c := cat.Add("C", 10, 3)
	d := cat.Add("D", 5, 4)
	q, err := NewQuery(0, []StreamID{a, b, c, d}, 9)
	if err != nil {
		t.Fatal(err)
	}
	return &diffFixture{cat: cat, q: q, rt: BuildRates(cat, q)}
}

// leftDeep places the k-1 joins of a left-deep tree at the given nodes.
func (f *diffFixture) leftDeep(joinLocs []netgraph.NodeID) *PlanNode {
	leaf := func(pos int) *PlanNode {
		m := Mask(1 << uint(pos))
		return Leaf(Input{
			Mask: m,
			Rate: f.rt.Rate(m),
			Loc:  f.cat.Stream(f.q.Sources[pos]).Source,
			Sig:  f.q.SigOf(m),
		})
	}
	cur := leaf(0)
	for i := 1; i < f.q.K(); i++ {
		next := Join(cur, leaf(i), joinLocs[i-1], f.rt.Rate(cur.Mask|Mask(1<<uint(i))))
		cur = next
	}
	return cur
}

func TestDiffIdenticalPlans(t *testing.T) {
	f := newDiffFixture(t)
	locs := []netgraph.NodeID{5, 6, 7}
	old, new := f.leftDeep(locs), f.leftDeep(locs)
	d := f.q.Diff(old, new)
	if want := 2*f.q.K() - 1; len(d.Keep) != want {
		t.Errorf("keep=%d, want every operator (%d)", len(d.Keep), want)
	}
	if d.Delta() != 0 || len(d.Move) != 0 || len(d.Rewire) != 0 {
		t.Errorf("identical plans diff non-empty: %s", d)
	}
}

func TestDiffSinglePlacementChange(t *testing.T) {
	f := newDiffFixture(t)
	old := f.leftDeep([]netgraph.NodeID{5, 6, 7})
	new := f.leftDeep([]netgraph.NodeID{5, 8, 7}) // middle join moves 6 -> 8
	d := f.q.Diff(old, new)
	if want := 2*f.q.K() - 1 - 1; len(d.Keep) != want {
		t.Errorf("keep=%d, want %d", len(d.Keep), want)
	}
	if len(d.Create) != 1 || len(d.Retire) != 1 {
		t.Errorf("delta create=%d retire=%d, want 1/1", len(d.Create), len(d.Retire))
	}
	if len(d.Move) != 1 || d.Move[0].From != 6 || d.Move[0].To != 8 {
		t.Errorf("move=%v, want one move 6->8", d.Move)
	}
	// The root join is kept but its middle-join input changed hosts: it
	// must be rewired.
	rootRef := f.q.Ident(new)
	if len(d.Rewire) != 1 || d.Rewire[0] != rootRef {
		t.Errorf("rewire=%v, want exactly the root %v", d.Rewire, rootRef)
	}
	if d.Create[0].Sig != d.Retire[0].Sig {
		t.Errorf("moved operator changed signature: %v vs %v", d.Create[0], d.Retire[0])
	}
}

// A plan that consumes a previously computed operator as a derived leaf
// keeps that operator without rewiring it: the leaf does not own the
// upstream wiring.
func TestDiffLeafConsumptionIsNotRewired(t *testing.T) {
	f := newDiffFixture(t)
	old := f.leftDeep([]netgraph.NodeID{5, 6, 7})
	full := f.q.All()
	new := Leaf(Input{
		Mask:    full,
		Rate:    f.rt.Rate(full),
		Loc:     7,
		Derived: true,
		Sig:     f.q.SigOf(full),
	})
	d := f.q.Diff(old, new)
	rootRef := f.q.Ident(old)
	if len(d.Keep) != 1 || d.Keep[0] != rootRef {
		t.Fatalf("keep=%v, want exactly the old root %v", d.Keep, rootRef)
	}
	if len(d.Rewire) != 0 {
		t.Errorf("leaf consumption rewired: %v", d.Rewire)
	}
	if want := 2*f.q.K() - 2; len(d.Retire) != want {
		t.Errorf("retire=%d, want the %d interior/leaf operators below the root", len(d.Retire), want)
	}
}

// Identity must be diff-stable across tree shapes: the same sub-join at
// the same node has the same OpRef regardless of where it sits in the
// tree, and predicates participate in the signature.
func TestIdentStability(t *testing.T) {
	f := newDiffFixture(t)
	p1 := f.leftDeep([]netgraph.NodeID{5, 6, 7})
	p2 := f.leftDeep([]netgraph.NodeID{5, 9, 9})
	// The first join (streams 0⋈1 at node 5) is shared.
	r1, r2 := f.q.Ident(p1.L.L), f.q.Ident(p2.L.L)
	if r1 != r2 {
		t.Errorf("same sub-join, different identities: %v vs %v", r1, r2)
	}
	pq, err := NewQueryPred(1, f.q.Sources, f.q.Sink,
		MustPredSet(Pred{Stream: f.q.Sources[0], Attr: "a", Range: Range{Lo: 0, Hi: 0.5}}))
	if err != nil {
		t.Fatal(err)
	}
	if pq.Ident(p1.L.L) == f.q.Ident(p1.L.L) {
		t.Error("predicated query aliases the predicate-free identity")
	}
}

func TestIRPostOrder(t *testing.T) {
	f := newDiffFixture(t)
	plan := f.leftDeep([]netgraph.NodeID{5, 6, 7})
	ir := f.q.IR(plan)
	if want := 2*f.q.K() - 1; len(ir) != want {
		t.Fatalf("IR has %d ops, want %d", len(ir), want)
	}
	seen := map[OpRef]bool{}
	for _, op := range ir {
		for _, in := range op.Inputs {
			if !seen[in] {
				t.Errorf("op %v listed before its input %v", op.Ref, in)
			}
		}
		seen[op.Ref] = true
	}
	if root := ir[len(ir)-1].Ref; root != f.q.Ident(plan) {
		t.Errorf("last IR op %v is not the root %v", root, f.q.Ident(plan))
	}
}
