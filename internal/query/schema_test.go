package query

import (
	"math"
	"testing"
)

func schemaCatalog() *Catalog {
	cat := NewCatalog(0.01)
	cat.Add("A", 10, 0) // schema below: 8+16+40 = 64
	cat.Add("B", 20, 1) // schema below: 4+12 = 16
	cat.Add("C", 5, 2)  // no schema
	cat.SetSchema(0, Schema{{Name: "x", Width: 8}, {Name: "y", Width: 16}, {Name: "z", Width: 40}})
	cat.SetSchema(1, Schema{{Name: "k", Width: 4}, {Name: "v", Width: 12}})
	return cat
}

func TestSchemaWidths(t *testing.T) {
	s := Schema{{Name: "x", Width: 8}, {Name: "y", Width: 16}}
	if got := s.Width(); got != 24 {
		t.Errorf("Width = %g", got)
	}
	if w, ok := s.AttrWidth("y"); !ok || w != 16 {
		t.Errorf("AttrWidth(y) = %g, %v", w, ok)
	}
	if _, ok := s.AttrWidth("nope"); ok {
		t.Error("AttrWidth found a missing attribute")
	}
	var nilSchema Schema
	if got := nilSchema.Width(); got != 0 {
		t.Errorf("nil schema width = %g", got)
	}
}

func TestCatalogSchemaAccess(t *testing.T) {
	cat := schemaCatalog()
	if got := cat.StreamWidth(0); got != 64 {
		t.Errorf("StreamWidth(0) = %g", got)
	}
	if got := cat.StreamWidth(2); got != 0 {
		t.Errorf("schema-less StreamWidth = %g, want 0 (unknown)", got)
	}
	if cat.Schema(1) == nil || cat.Schema(2) != nil {
		t.Error("Schema accessor wrong")
	}
}

func TestProjSpecSigAndKeep(t *testing.T) {
	p := NewProjSpec()
	if !p.Empty() {
		t.Error("fresh spec not empty")
	}
	p.Set(1, []string{"v", "k"}) // stored sorted
	p.Set(0, []string{"y"})
	if p.Empty() {
		t.Error("populated spec reports empty")
	}
	kept, ok := p.Keep(1)
	if !ok || len(kept) != 2 || kept[0] != "k" || kept[1] != "v" {
		t.Errorf("Keep(1) = %v, %v", kept, ok)
	}
	if _, ok := p.Keep(2); ok {
		t.Error("unpruned stream reported as pruned")
	}
	// Canonical: stream order in the argument must not matter, unpruned
	// streams contribute nothing.
	sig := p.SigOf([]StreamID{2, 1, 0})
	if sig != "0[y]|1[k,v]" {
		t.Errorf("SigOf = %q", sig)
	}
	if got := p.SigOf([]StreamID{2}); got != "" {
		t.Errorf("SigOf over unpruned streams = %q, want empty", got)
	}
	var nilSpec *ProjSpec
	if !nilSpec.Empty() {
		t.Error("nil spec not empty")
	}
	if _, ok := nilSpec.Keep(0); ok {
		t.Error("nil spec keeps streams")
	}
}

func TestQuerySigProjectionFragment(t *testing.T) {
	cat := schemaCatalog()
	_ = cat
	q, err := NewQuery(0, []StreamID{0, 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	plain := q.SigOf(q.All())
	if q.ProjSigOf(q.All()) != "" {
		t.Error("projection-less query has a projection fragment")
	}
	spec := NewProjSpec()
	spec.Set(0, []string{"y"})
	q.Proj = spec
	pruned := q.SigOf(q.All())
	if pruned == plain {
		t.Error("pruned and full-width signatures alias")
	}
	if want := plain + "%" + "0[y]"; pruned != want {
		t.Errorf("pruned sig = %q, want %q", pruned, want)
	}
	// Sub-join not covering the pruned stream keeps its plain signature.
	if got := q.SigOf(Mask(1 << 1)); got != SigOf([]StreamID{1}) {
		t.Errorf("sig of unpruned sub-join = %q", got)
	}
}

func TestBuildWidthsTable(t *testing.T) {
	cat := schemaCatalog()
	q, err := NewQuery(0, []StreamID{0, 1, 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	wt := BuildWidths(cat, q)
	if wt == nil {
		t.Fatal("nil table despite declared schemas")
	}
	// Schema-less C counts at the default width so mixed catalogs stay
	// comparable.
	cases := map[Mask]float64{
		1 << 0:          64,
		1 << 1:          16,
		1 << 2:          DefaultTupleWidth,
		1<<0 | 1<<1:     80,
		FullMask(q.K()): 64 + 16 + DefaultTupleWidth,
	}
	for m, want := range cases {
		if got := wt.Width(m); math.Abs(got-want) > 1e-12 {
			t.Errorf("Width(%b) = %g, want %g", m, got, want)
		}
	}

	// SrcWidths (the rewrite pipeline's pruned widths) override schema
	// widths positionally.
	q.SrcWidths = []float64{16, 0, 0}
	wt = BuildWidths(cat, q)
	if got := wt.Width(1 << 0); got != 16 {
		t.Errorf("pruned width = %g", got)
	}
	if got := wt.Width(1 << 1); got != 16 {
		t.Errorf("untouched width = %g", got)
	}

	// A catalog with no width information at all yields a nil table and
	// unit widths — the pre-schema cost model.
	bare := NewCatalog(0.01)
	bare.Add("X", 1, 0)
	bare.Add("Y", 1, 1)
	q2, _ := NewQuery(1, []StreamID{0, 1}, 0)
	if wt := BuildWidths(bare, q2); wt != nil {
		t.Errorf("width-free catalog built table %v", wt)
	}
	var nilTable WidthTable
	if got := nilTable.Width(3); got != 1 {
		t.Errorf("nil table width = %g, want 1", got)
	}
}

func TestWidthStamp(t *testing.T) {
	cat := schemaCatalog()
	q, _ := NewQuery(0, []StreamID{0, 1}, 5)
	wt := BuildWidths(cat, q)
	l := Leaf(Input{Mask: 1 << 0, Rate: 10, Loc: 3, Sig: "s[0]"})
	r := Leaf(Input{Mask: 1 << 1, Rate: 20, Loc: 4, Sig: "s[1]"})
	join := Join(l, r, 4, 2)
	wt.Stamp(join)
	if l.Width != 64 || r.Width != 16 || join.Width != 80 {
		t.Errorf("stamped widths = %g, %g, %g", l.Width, r.Width, join.Width)
	}
	if l.In.Width != 64 {
		t.Errorf("leaf input width = %g", l.In.Width)
	}
	// WidthOr1 is the analytic accessor: stamped nodes price at their
	// width, unstamped ones at 1.
	bare := Leaf(Input{Mask: 1, Rate: 10, Loc: 3, Sig: "s[0]"})
	if bare.WidthOr1() != 1 || join.WidthOr1() != 80 {
		t.Errorf("WidthOr1 = %g, %g", bare.WidthOr1(), join.WidthOr1())
	}
	// Nil tables leave plans untouched.
	var nilTable WidthTable
	plain := Leaf(Input{Mask: 1, Rate: 10, Loc: 3, Sig: "s[0]"})
	nilTable.Stamp(plain)
	if plain.Width != 0 {
		t.Errorf("nil stamp set width %g", plain.Width)
	}
}

// TestPlannedBytesWidthAware: PlannedBytes charges rate×width per
// node-crossing edge; co-located edges are free.
func TestPlannedBytesWidthAware(t *testing.T) {
	cat := schemaCatalog()
	q, _ := NewQuery(0, []StreamID{0, 1}, 7)
	wt := BuildWidths(cat, q)
	l := Leaf(Input{Mask: 1 << 0, Rate: 10, Loc: 3, Sig: "s[0]"})
	r := Leaf(Input{Mask: 1 << 1, Rate: 20, Loc: 4, Sig: "s[1]"})
	join := Join(l, r, 4, 2) // co-located with r
	wt.Stamp(join)
	// l ships 10/s × 64B to the join; r is free; the root ships
	// rate × 80B to the sink.
	want := 10*64 + join.Rate*80
	if got := join.PlannedBytes(7); math.Abs(got-want) > 1e-9 {
		t.Errorf("PlannedBytes = %g, want %g", got, want)
	}
	// Sink co-location drops the delivery term.
	if got := join.PlannedBytes(4); math.Abs(got-(10*64)) > 1e-9 {
		t.Errorf("PlannedBytes(co-located sink) = %g", got)
	}
}
