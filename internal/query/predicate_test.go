package query

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRangeBasics(t *testing.T) {
	if !FullRange().Valid() || FullRange().Width() != 1 {
		t.Error("FullRange broken")
	}
	bad := []Range{{0.5, 0.5}, {0.7, 0.2}, {-0.1, 0.5}, {0.5, 1.1}}
	for _, r := range bad {
		if r.Valid() {
			t.Errorf("range %+v reported valid", r)
		}
	}
	a := Range{0.2, 0.8}
	if !a.Contains(Range{0.3, 0.7}) || !a.Contains(a) {
		t.Error("Contains too strict")
	}
	if a.Contains(Range{0.1, 0.5}) || a.Contains(Range{0.5, 0.9}) {
		t.Error("Contains too lax")
	}
	inter, ok := a.Intersect(Range{0.5, 0.9})
	if !ok || inter != (Range{0.5, 0.8}) {
		t.Errorf("Intersect = %+v,%v", inter, ok)
	}
	if _, ok := a.Intersect(Range{0.8, 0.9}); ok {
		t.Error("disjoint ranges intersect")
	}
}

func TestNewPredSetNormalization(t *testing.T) {
	ps, err := NewPredSet(
		Pred{Stream: 1, Attr: "x", Range: Range{0.0, 0.6}},
		Pred{Stream: 1, Attr: "x", Range: Range{0.4, 1.0}},
		Pred{Stream: 2, Attr: "y", Range: Range{0.1, 0.3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 2 {
		t.Fatalf("Len = %d", ps.Len())
	}
	// The two x-constraints intersect to [0.4, 0.6).
	if got := ps.StreamSelectivity(1); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("sel(1) = %g, want 0.2", got)
	}
	if _, err := NewPredSet(
		Pred{Stream: 1, Attr: "x", Range: Range{0, 0.3}},
		Pred{Stream: 1, Attr: "x", Range: Range{0.5, 1}},
	); err == nil {
		t.Error("contradictory predicates accepted")
	}
	if _, err := NewPredSet(Pred{Stream: 1, Attr: "x", Range: Range{0.9, 0.1}}); err == nil {
		t.Error("invalid range accepted")
	}
}

func TestPredSetContains(t *testing.T) {
	weak := MustPredSet(Pred{Stream: 1, Attr: "x", Range: Range{0.2, 0.9}})
	strong := MustPredSet(
		Pred{Stream: 1, Attr: "x", Range: Range{0.3, 0.5}},
		Pred{Stream: 2, Attr: "y", Range: Range{0, 0.1}},
	)
	if !weak.Contains(strong) {
		t.Error("weak should contain strong")
	}
	if strong.Contains(weak) {
		t.Error("strong cannot contain weak")
	}
	empty := PredSet{}
	if !empty.Contains(strong) || !empty.Contains(empty) {
		t.Error("empty set contains everything")
	}
	if strong.Contains(empty) {
		t.Error("constrained set cannot contain the unconstrained one")
	}
	// Missing constraint on a required attribute breaks containment.
	other := MustPredSet(Pred{Stream: 3, Attr: "z", Range: Range{0, 0.5}})
	if other.Contains(strong) {
		t.Error("unrelated constraint cannot be implied")
	}
}

func TestPredSetRestrictAndSig(t *testing.T) {
	ps := MustPredSet(
		Pred{Stream: 1, Attr: "x", Range: Range{0, 0.5}},
		Pred{Stream: 2, Attr: "y", Range: Range{0.5, 1}},
	)
	r := ps.Restrict([]StreamID{1})
	if r.Len() != 1 || r.StreamSelectivity(1) != 0.5 || r.StreamSelectivity(2) != 1 {
		t.Errorf("Restrict wrong: %+v", r)
	}
	if (PredSet{}).Sig() != "" {
		t.Error("empty sig not empty")
	}
	sig := ps.Sig()
	if !strings.Contains(sig, "1.x") || !strings.Contains(sig, "2.y") {
		t.Errorf("sig = %q", sig)
	}
	// Canonical: independent construction order gives identical sigs.
	ps2 := MustPredSet(
		Pred{Stream: 2, Attr: "y", Range: Range{0.5, 1}},
		Pred{Stream: 1, Attr: "x", Range: Range{0, 0.5}},
	)
	if !ps.Equal(ps2) {
		t.Errorf("order-dependent sig: %q vs %q", sig, ps2.Sig())
	}
}

func TestPredsCanonicalOrder(t *testing.T) {
	ps := MustPredSet(
		Pred{Stream: 2, Attr: "b", Range: Range{0, 0.5}},
		Pred{Stream: 1, Attr: "z", Range: Range{0, 0.5}},
		Pred{Stream: 1, Attr: "a", Range: Range{0, 0.5}},
	)
	out := ps.Preds()
	if len(out) != 3 || out[0].Stream != 1 || out[0].Attr != "a" ||
		out[1].Attr != "z" || out[2].Stream != 2 {
		t.Errorf("order = %+v", out)
	}
}

func TestQueryPredSignatureAndRates(t *testing.T) {
	cat := NewCatalog(0.1)
	a := cat.Add("A", 100, 0)
	b := cat.Add("B", 50, 1)
	preds := MustPredSet(Pred{Stream: a, Attr: "dep", Range: Range{0, 0.25}})
	q, err := NewQueryPred(0, []StreamID{a, b}, 5, preds)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := NewQuery(1, []StreamID{a, b}, 5)
	if q.SigOf(q.All()) == plain.SigOf(plain.All()) {
		t.Error("predicates not in signature")
	}
	if q.SigOf(0b10) != plain.SigOf(0b10) {
		t.Error("unconstrained sub-signature changed")
	}
	rt := BuildRates(cat, q)
	if got := rt.Rate(0b01); math.Abs(got-25) > 1e-9 {
		t.Errorf("filtered rate = %g, want 25", got)
	}
	if got := rt.Rate(0b11); math.Abs(got-25*50*0.1) > 1e-9 {
		t.Errorf("join rate = %g", got)
	}
	// Foreign-stream predicate rejected.
	foreign := MustPredSet(Pred{Stream: 99, Attr: "x", Range: Range{0, 0.5}})
	if _, err := NewQueryPred(2, []StreamID{a, b}, 5, foreign); err == nil {
		t.Error("foreign predicate accepted")
	}
}

// Property: containment is reflexive and transitive, and intersection of
// two valid constraints on the same attribute is contained in both.
func TestContainmentProperties(t *testing.T) {
	gen := func(rng *rand.Rand) PredSet {
		var preds []Pred
		n := rng.Intn(4)
		for i := 0; i < n; i++ {
			lo := rng.Float64() * 0.8
			hi := lo + 0.05 + rng.Float64()*(1-lo-0.05)
			if hi > 1 {
				hi = 1
			}
			preds = append(preds, Pred{
				Stream: StreamID(rng.Intn(3)),
				Attr:   []string{"x", "y"}[rng.Intn(2)],
				Range:  Range{lo, hi},
			})
		}
		ps, err := NewPredSet(preds...)
		if err != nil {
			return PredSet{}
		}
		return ps
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := gen(rng), gen(rng)
		if !a.Contains(a) {
			return false
		}
		// Tighten a by adding b's constraints where compatible: the result
		// must be contained in a.
		merged, err := NewPredSet(append(a.Preds(), b.Preds()...)...)
		if err != nil {
			return true // contradictory tightening; nothing to check
		}
		return a.Contains(merged) && b.Contains(merged)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
