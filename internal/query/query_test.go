package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaskBasics(t *testing.T) {
	m := Mask(0b1011)
	if !m.Has(0) || !m.Has(1) || m.Has(2) || !m.Has(3) {
		t.Error("Has wrong")
	}
	if m.Count() != 3 {
		t.Errorf("Count = %d", m.Count())
	}
	ps := m.Positions()
	want := []int{0, 1, 3}
	if len(ps) != 3 {
		t.Fatalf("Positions = %v", ps)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("Positions = %v, want %v", ps, want)
		}
	}
	if FullMask(4) != 0b1111 {
		t.Errorf("FullMask(4) = %b", FullMask(4))
	}
	if FullMask(0) != 0 {
		t.Errorf("FullMask(0) = %b", FullMask(0))
	}
}

func TestCatalogSelectivity(t *testing.T) {
	c := NewCatalog(0.5)
	a := c.Add("A", 10, 0)
	b := c.Add("B", 20, 1)
	if c.NumStreams() != 2 {
		t.Fatal("NumStreams")
	}
	if got := c.Selectivity(a, b); got != 0.5 {
		t.Errorf("default sel = %g", got)
	}
	c.SetSelectivity(b, a, 0.01)
	if got := c.Selectivity(a, b); got != 0.01 {
		t.Errorf("sel = %g, want symmetric 0.01", got)
	}
	if s := c.Stream(a); s.Name != "A" || s.Rate != 10 {
		t.Errorf("Stream(a) = %+v", s)
	}
}

func TestSigOfCanonical(t *testing.T) {
	if SigOf([]StreamID{3, 1, 2}) != "1|2|3" {
		t.Errorf("SigOf = %q", SigOf([]StreamID{3, 1, 2}))
	}
	if SigOf([]StreamID{7}) != "7" {
		t.Errorf("singleton sig = %q", SigOf([]StreamID{7}))
	}
}

func TestNewQueryValidation(t *testing.T) {
	if _, err := NewQuery(0, nil, 0); err == nil {
		t.Error("empty sources accepted")
	}
	if _, err := NewQuery(0, []StreamID{1, 1}, 0); err == nil {
		t.Error("duplicate sources accepted")
	}
	many := make([]StreamID, MaxSources+1)
	for i := range many {
		many[i] = StreamID(i)
	}
	if _, err := NewQuery(0, many, 0); err == nil {
		t.Error("too many sources accepted")
	}
	q, err := NewQuery(7, []StreamID{4, 2, 9}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if q.K() != 3 || q.All() != 0b111 {
		t.Errorf("K=%d All=%b", q.K(), q.All())
	}
}

func TestMaskOfAndStreamsOf(t *testing.T) {
	q, _ := NewQuery(0, []StreamID{4, 2, 9}, 0)
	m, ok := q.MaskOf([]StreamID{9, 4})
	if !ok || m != 0b101 {
		t.Errorf("MaskOf = %b,%v", m, ok)
	}
	if _, ok := q.MaskOf([]StreamID{4, 8}); ok {
		t.Error("foreign stream accepted")
	}
	ids := q.StreamsOf(0b101)
	if len(ids) != 2 || ids[0] != 4 || ids[1] != 9 {
		t.Errorf("StreamsOf = %v", ids)
	}
	if q.SigOf(0b110) != "2|9" {
		t.Errorf("SigOf = %q", q.SigOf(0b110))
	}
}

func TestBuildRates(t *testing.T) {
	c := NewCatalog(1)
	a := c.Add("A", 10, 0)
	b := c.Add("B", 20, 1)
	d := c.Add("C", 5, 2)
	c.SetSelectivity(a, b, 0.1)
	c.SetSelectivity(a, d, 0.2)
	c.SetSelectivity(b, d, 0.5)
	q, _ := NewQuery(0, []StreamID{a, b, d}, 0)
	rt := BuildRates(c, q)
	if rt.Rate(0b001) != 10 || rt.Rate(0b010) != 20 || rt.Rate(0b100) != 5 {
		t.Errorf("singleton rates wrong: %v", rt)
	}
	if got := rt.Rate(0b011); math.Abs(got-10*20*0.1) > 1e-9 {
		t.Errorf("rate(AB) = %g, want 20", got)
	}
	// Full join: 10*20*5 * sel(ab)*sel(ad)*sel(bd) = 1000*0.01 = 10.
	if got := rt.Rate(0b111); math.Abs(got-10*20*5*0.1*0.2*0.5) > 1e-9 {
		t.Errorf("rate(ABC) = %g", got)
	}
}

// Property: rate is independent of the order subsets are combined in,
// i.e. rate(S1)*rate(S2)*crossSel == rate(S1|S2) for any split.
func TestRateSplitConsistency(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCatalog(0.05)
		k := 2 + rng.Intn(5)
		ids := make([]StreamID, k)
		for i := range ids {
			ids[i] = c.Add("s", 1+rng.Float64()*99, 0)
		}
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				c.SetSelectivity(ids[i], ids[j], 0.001+rng.Float64()*0.01)
			}
		}
		q, err := NewQuery(0, ids, 0)
		if err != nil {
			return false
		}
		rt := BuildRates(c, q)
		full := q.All()
		for s1 := Mask(1); s1 < full; s1++ {
			if s1&full != s1 {
				continue
			}
			s2 := full &^ s1
			if s2 == 0 {
				continue
			}
			cross := 1.0
			for _, i := range s1.Positions() {
				for _, j := range s2.Positions() {
					cross *= c.Selectivity(ids[i], ids[j])
				}
			}
			lhs := rt.Rate(s1) * rt.Rate(s2) * cross
			if rel := math.Abs(lhs-rt.Rate(full)) / rt.Rate(full); rel > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestNumTrees(t *testing.T) {
	want := map[int]int64{1: 1, 2: 1, 3: 3, 4: 15, 5: 105, 6: 945, 7: 10395}
	for k, w := range want {
		if got := NumTrees(k); got != w {
			t.Errorf("NumTrees(%d) = %d, want %d", k, got, w)
		}
	}
	if NumTrees(0) != 0 {
		t.Error("NumTrees(0) != 0")
	}
}
