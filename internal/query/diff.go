package query

import (
	"fmt"
	"sort"
	"strings"

	"hnp/internal/netgraph"
)

// This file defines the canonical plan IR the runtime migrates over.
// Every plan node has a stable identity (Sig, Loc) derived from the
// signature machinery: two plans computed at different times agree on an
// operator exactly when they agree on its identity, so the difference
// between an old and a new plan — what survives a re-plan — is a set
// computation over identities, not a tree comparison.

// OpRef is the canonical identity of one plan operator: the signature of
// the stream it produces (streams joined plus the predicates they were
// computed under) and the physical node where that stream materializes.
// Identities are diff-stable: planners that emit the same logical
// operator at the same node emit the same OpRef, whatever the
// surrounding tree looks like.
type OpRef struct {
	Sig string
	Loc netgraph.NodeID
}

// String renders the identity as "sig@node".
func (r OpRef) String() string { return fmt.Sprintf("%s@%d", r.Sig, r.Loc) }

// Ident returns the canonical identity of a plan node within one of q's
// plans: leaves are identified by their input's signature, unary
// operators by their output signature, joins by the signature of the
// covered sub-join (predicates included, via SigOf).
func (q *Query) Ident(n *PlanNode) OpRef {
	switch {
	case n.IsLeaf():
		return OpRef{Sig: n.In.Sig, Loc: n.Loc}
	case n.IsUnary():
		return OpRef{Sig: n.Unary.Sig, Loc: n.Loc}
	default:
		return OpRef{Sig: q.SigOf(n.Mask), Loc: n.Loc}
	}
}

// IROp is one operator of a plan's canonical IR.
type IROp struct {
	// Ref is the operator's identity.
	Ref OpRef
	// Inputs are the identities of the producers feeding it, in child
	// order (left then right). It is nil for leaves: a leaf consumes an
	// already-materialized stream, and its upstream wiring — if any —
	// belongs to the deployment that created the stream, not to this
	// plan.
	Inputs []OpRef
	// Leaf marks plan leaves (inputs consumed as-is).
	Leaf bool
	// Node is the plan node carrying the operator.
	Node *PlanNode
}

// IR flattens a placed plan into its canonical operator IR in post-order
// (children before parents), one entry per plan node.
func (q *Query) IR(root *PlanNode) []IROp {
	var out []IROp
	var walk func(n *PlanNode)
	walk = func(n *PlanNode) {
		if n.IsLeaf() {
			out = append(out, IROp{Ref: q.Ident(n), Leaf: true, Node: n})
			return
		}
		if n.IsUnary() {
			walk(n.L)
			out = append(out, IROp{
				Ref:    q.Ident(n),
				Inputs: []OpRef{q.Ident(n.L)},
				Node:   n,
			})
			return
		}
		walk(n.L)
		walk(n.R)
		out = append(out, IROp{
			Ref:    q.Ident(n),
			Inputs: []OpRef{q.Ident(n.L), q.Ident(n.R)},
			Node:   n,
		})
	}
	walk(root)
	return out
}

// Move records a logical operator present in both plans but placed at a
// different node: physically a create+retire pair, semantically the same
// operator changing hosts (its accumulated state cannot be carried).
type Move struct {
	Sig      string
	From, To netgraph.NodeID
}

// PlanDiff is the difference between two plans of the same query as a set
// of actions over canonical identities. Applying a diff costs work
// proportional to Create+Retire+Rewire, never to the plan size: Keep is
// free.
type PlanDiff struct {
	// Keep lists operators present in both plans: they survive a
	// migration untouched, windows, statistics and subscribers intact.
	Keep []OpRef
	// Create lists operators only the new plan contains.
	Create []OpRef
	// Retire lists operators only the old plan contains.
	Retire []OpRef
	// Move pairs up Create/Retire entries that share a signature: the
	// same logical operator at a new node.
	Move []Move
	// Rewire lists kept operators computed by both plans whose producer
	// set changed (typically because a child moved); a migration must
	// re-attach their upstream subscriptions. Operators a plan consumes
	// as a leaf keep whatever wiring their producing deployment gave
	// them and are never rewired.
	Rewire []OpRef
}

// Delta returns the operator churn applying the diff costs: creates plus
// retires. A migration is worthwhile exactly when this is small relative
// to the plan size.
func (d PlanDiff) Delta() int { return len(d.Create) + len(d.Retire) }

// String summarizes the diff for traces and logs.
func (d PlanDiff) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "keep=%d create=%d retire=%d move=%d rewire=%d",
		len(d.Keep), len(d.Create), len(d.Retire), len(d.Move), len(d.Rewire))
	return b.String()
}

// Diff computes the canonical difference between two placed plans of the
// same query. Identities are compared as sets; within one plan each
// signature appears at most once (signatures are canonical per stream
// set and predicates, and a tree visits each mask once), so a signature
// present on both sides at different locations is reported as a Move.
func (q *Query) Diff(old, new *PlanNode) PlanDiff {
	return DiffIR(q.IR(old), q.IR(new))
}

// DiffIR is Diff over already-flattened IRs. Callers that hold on to a
// plan's IR (the runtime caches the deployed side's) use it to pay for
// flattening — which dominates diffing, every join identity being a
// signature computation — once per plan instead of once per comparison.
func DiffIR(oldIR, newIR []IROp) PlanDiff {
	oldByRef := make(map[OpRef]IROp, len(oldIR))
	oldLoc := make(map[string]netgraph.NodeID, len(oldIR))
	for _, op := range oldIR {
		oldByRef[op.Ref] = op
		oldLoc[op.Sig()] = op.Ref.Loc
	}
	newRefs := make(map[OpRef]bool, len(newIR))

	var d PlanDiff
	for _, op := range newIR {
		newRefs[op.Ref] = true
		prev, kept := oldByRef[op.Ref]
		if !kept {
			d.Create = append(d.Create, op.Ref)
			if from, ok := oldLoc[op.Sig()]; ok && from != op.Ref.Loc {
				d.Move = append(d.Move, Move{Sig: op.Sig(), From: from, To: op.Ref.Loc})
			}
			continue
		}
		d.Keep = append(d.Keep, op.Ref)
		if !op.Leaf && !prev.Leaf && !sameInputs(prev.Inputs, op.Inputs) {
			d.Rewire = append(d.Rewire, op.Ref)
		}
	}
	for _, op := range oldIR {
		if !newRefs[op.Ref] {
			d.Retire = append(d.Retire, op.Ref)
		}
	}
	sortRefs(d.Keep)
	sortRefs(d.Create)
	sortRefs(d.Retire)
	sortRefs(d.Rewire)
	sort.Slice(d.Move, func(i, j int) bool { return d.Move[i].Sig < d.Move[j].Sig })
	return d
}

// Sig returns the identity's signature (convenience for Move pairing).
func (op IROp) Sig() string { return op.Ref.Sig }

func sameInputs(a, b []OpRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortRefs(rs []OpRef) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Sig != rs[j].Sig {
			return rs[i].Sig < rs[j].Sig
		}
		return rs[i].Loc < rs[j].Loc
	})
}
