package rewrite

import (
	"math"
	"strings"
	"testing"

	"hnp/internal/query"
)

func testCatalog() *query.Catalog {
	cat := query.NewCatalog(0.01)
	cat.Add("A", 10, 0) // 8+16+40 = 64 bytes
	cat.Add("B", 20, 1) // 4+12 = 16 bytes
	cat.Add("C", 5, 2)  // schema-less
	cat.SetSchema(0, query.Schema{{Name: "x", Width: 8}, {Name: "y", Width: 16}, {Name: "z", Width: 40}})
	cat.SetSchema(1, query.Schema{{Name: "k", Width: 4}, {Name: "v", Width: 12}})
	return cat
}

func mustQuery(t *testing.T, id int, sources []query.StreamID, preds ...query.Pred) *query.Query {
	t.Helper()
	q, err := query.NewQueryPred(id, sources, 9, query.MustPredSet(preds...))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func traceRule(o Outcome, rule string) string {
	for _, e := range o.Trace {
		if e.Rule == rule {
			return e.Detail
		}
	}
	return ""
}

func TestKillSwitch(t *testing.T) {
	t.Cleanup(func() { SetPushdown(true) })
	if !Enabled() {
		t.Fatal("pipeline not enabled by default")
	}
	SetPushdown(false)
	if Enabled() {
		t.Fatal("SetPushdown(false) did not disable")
	}
	SetPushdown(true)
	if !Enabled() {
		t.Fatal("SetPushdown(true) did not re-enable")
	}
}

func TestFoldConstantsDropsAlwaysTrue(t *testing.T) {
	cat := testCatalog()
	q := mustQuery(t, 0, []query.StreamID{0, 1},
		query.Pred{Stream: 0, Attr: "y", Range: query.Range{Lo: 0.2, Hi: 0.6}},
		query.Pred{Stream: 1, Attr: "v", Range: query.Range{Lo: 0, Hi: 1}}) // always true
	sigBefore := q.Preds.Sig()
	out := Apply(cat, q, Projection{Star: true})
	if out.NoOp {
		t.Fatal("non-contradictory query folded to no-op")
	}
	if q.Preds.Len() != 1 {
		t.Errorf("kept %d predicates, want 1 (was %s)", q.Preds.Len(), sigBefore)
	}
	if d := traceRule(out, "fold-constants"); !strings.Contains(d, "1.v") {
		t.Errorf("fold-constants trace %q does not name the dropped predicate", d)
	}
	if out.RulesApplied < 1 {
		t.Errorf("RulesApplied = %d", out.RulesApplied)
	}
}

func TestFoldConstantsContradiction(t *testing.T) {
	cat := testCatalog()
	q := mustQuery(t, 0, []query.StreamID{0})
	out := Apply(cat, q, Projection{Contradiction: true})
	if !out.NoOp {
		t.Fatal("contradiction did not fold to no-op")
	}
	if out.BytesAfter != 0 {
		t.Errorf("no-op query still plans %g bytes", out.BytesAfter)
	}
	// BytesBefore is the full unfiltered source rate: 10 × 64.
	if math.Abs(out.BytesBefore-640) > 1e-9 {
		t.Errorf("BytesBefore = %g, want 640", out.BytesBefore)
	}
	if math.Abs(out.BytesSaved()-640) > 1e-9 {
		t.Errorf("BytesSaved = %g", out.BytesSaved())
	}
}

func TestPushPredicatesTracesSelectivity(t *testing.T) {
	cat := testCatalog()
	q := mustQuery(t, 0, []query.StreamID{0, 1},
		query.Pred{Stream: 0, Attr: "y", Range: query.Range{Lo: 0, Hi: 0.25}})
	out := Apply(cat, q, Projection{Star: true})
	d := traceRule(out, "push-predicates")
	if !strings.Contains(d, "rate 10→2.5") {
		t.Errorf("push-predicates trace = %q, want the 10→2.5 rate reduction", d)
	}
	// BytesAfter folds the selectivity: 2.5×64 + 20×16 (star: full widths).
	if want := 2.5*64 + 20*16; math.Abs(out.BytesAfter-want) > 1e-9 {
		t.Errorf("BytesAfter = %g, want %g", out.BytesAfter, want)
	}
}

func TestPruneColumns(t *testing.T) {
	cat := testCatalog()
	q := mustQuery(t, 0, []query.StreamID{0, 1},
		query.Pred{Stream: 0, Attr: "x", Range: query.Range{Lo: 0, Hi: 0.5}})
	proj := Projection{
		Cols:      map[query.StreamID][]string{0: {"y"}, 1: {"v"}},
		JoinAttrs: map[query.StreamID][]string{0: {"y"}, 1: {"k"}},
	}
	out := Apply(cat, q, proj)
	// A keeps x (predicate) + y (projection+join) = 24; z pruned.
	// B keeps k (join) + v (projection) = 16 — every column referenced, so
	// B is NOT pruned.
	if q.SrcWidths == nil || math.Abs(q.SrcWidths[0]-24) > 1e-9 {
		t.Fatalf("SrcWidths = %v, want [24 0]", q.SrcWidths)
	}
	if q.SrcWidths[1] != 0 {
		t.Errorf("fully-referenced stream was pruned: %v", q.SrcWidths)
	}
	if kept, ok := q.Proj.Keep(0); !ok || strings.Join(kept, ",") != "x,y" {
		t.Errorf("kept columns = %v, %v", kept, ok)
	}
	if _, ok := q.Proj.Keep(1); ok {
		t.Error("unpruned stream present in ProjSpec")
	}
	// Signatures must diverge from the unpruned query's so operators never
	// alias across projections.
	bare := mustQuery(t, 0, []query.StreamID{0, 1},
		query.Pred{Stream: 0, Attr: "x", Range: query.Range{Lo: 0, Hi: 0.5}})
	if q.SigOf(q.All()) == bare.SigOf(bare.All()) {
		t.Error("pruned and unpruned signatures alias")
	}
	if d := traceRule(out, "prune-columns"); !strings.Contains(d, "width 64→24") {
		t.Errorf("prune trace = %q", d)
	}
}

func TestPruneSkipsStarAndSchemaless(t *testing.T) {
	cat := testCatalog()
	star := mustQuery(t, 0, []query.StreamID{0, 1})
	out := Apply(cat, star, Projection{Star: true})
	if star.SrcWidths != nil || !star.Proj.Empty() {
		t.Errorf("SELECT * was pruned: widths=%v", star.SrcWidths)
	}
	if d := traceRule(out, "prune-columns"); !strings.Contains(d, "full tuples") {
		t.Errorf("star trace = %q", d)
	}

	// Schema-less stream C cannot be pruned even with a narrow projection.
	q := mustQuery(t, 1, []query.StreamID{2})
	Apply(cat, q, Projection{Cols: map[query.StreamID][]string{2: {"w"}}})
	if q.SrcWidths != nil {
		t.Errorf("schema-less stream pruned: %v", q.SrcWidths)
	}
}

// TestBytesMonotonic: over a grid of projections and predicates, the
// pipeline never increases planned source bytes, and full-projection
// predicate-free queries are left bit-identical (no rules applied beyond
// trace lines, no widths, no projection spec).
func TestBytesMonotonic(t *testing.T) {
	cat := testCatalog()
	projections := []Projection{
		{Star: true},
		{Cols: map[query.StreamID][]string{0: {"x"}, 1: {"k"}},
			JoinAttrs: map[query.StreamID][]string{0: {"x"}, 1: {"k"}}},
		{Cols: map[query.StreamID][]string{0: {"x", "y", "z"}, 1: {"k", "v"}}},
	}
	predSets := [][]query.Pred{
		nil,
		{{Stream: 0, Attr: "x", Range: query.Range{Lo: 0, Hi: 0.3}}},
		{{Stream: 0, Attr: "x", Range: query.Range{Lo: 0, Hi: 1}}}, // always true
	}
	for pi, proj := range projections {
		for si, preds := range predSets {
			q := mustQuery(t, pi*10+si, []query.StreamID{0, 1}, preds...)
			out := Apply(cat, q, proj)
			if out.BytesAfter > out.BytesBefore+1e-9 {
				t.Errorf("proj %d preds %d: bytes grew %g → %g", pi, si, out.BytesBefore, out.BytesAfter)
			}
			if out.BytesSaved() < 0 {
				t.Errorf("proj %d preds %d: negative savings", pi, si)
			}
		}
	}

	// The identity case: star projection, no predicates.
	q := mustQuery(t, 99, []query.StreamID{0, 1})
	out := Apply(cat, q, Projection{Star: true})
	if out.RulesApplied != 0 || q.SrcWidths != nil || !q.Proj.Empty() {
		t.Errorf("identity query rewritten: rules=%d widths=%v", out.RulesApplied, q.SrcWidths)
	}
	if out.BytesSaved() != 0 {
		t.Errorf("identity query saved %g bytes", out.BytesSaved())
	}
	if len(out.Trace) == 0 || out.TraceString() == "" {
		t.Error("audit trace empty — every rule must leave a record even when idle")
	}
}
