// Package rewrite is the logical optimizer pipeline that runs over a
// query before placement: an ordered list of rule passes — constant
// folding, predicate pushdown, column pruning — each emitting an
// auditable trace entry. The pipeline rewrites the query's logical
// parameters (normalized predicates, per-source shipped widths, the
// projection spec that participates in operator signatures) so the
// hierarchical planners downstream price every edge at the reduced
// rate×width instead of full tuples, and pick different — cheaper —
// placements. The template is sqlstream's rule pipeline (SNIPPETS.md
// Snippet 1); the per-edge width pricing follows the geo-distributed
// streaming cost-model line of work (PAPERS.md, arXiv 2105.12507).
//
// The pipeline is semantics-preserving by construction: it only drops
// provably-redundant predicates, provably-empty queries, and columns no
// projection, predicate or join key references. A kill switch
// (SetPushdown, mirroring netgraph.SetDeltaRefresh) disables the whole
// pipeline for A/B equivalence runs.
package rewrite

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"hnp/internal/query"
)

// pushdownOff gates the pipeline, default-on. Stored inverted so the zero
// value means enabled.
var pushdownOff atomic.Bool

// SetPushdown enables or disables the rewrite pipeline globally — the
// A/B kill switch. With the pipeline off, queries plan on full tuple
// widths and un-normalized predicates, exactly the pre-pipeline behavior.
func SetPushdown(enabled bool) { pushdownOff.Store(!enabled) }

// Enabled reports whether the pipeline is on.
func Enabled() bool { return !pushdownOff.Load() }

// Projection carries the statement-level column information the rules
// consume: what the query SELECTs and which attributes its equi-joins
// match on.
type Projection struct {
	// Star means the statement asked for full tuples (`SELECT *`):
	// column pruning is disabled, widths stay at full schema width.
	Star bool
	// Cols maps each stream to its selected attributes (lowercase).
	Cols map[query.StreamID][]string
	// JoinAttrs maps each stream to its equi-join key attributes
	// (lowercase) — always kept by pruning.
	JoinAttrs map[query.StreamID][]string
	// Contradiction marks a WHERE clause that is provably always-false;
	// constant folding turns the whole query into a no-op.
	Contradiction bool
}

// TraceEntry is one rule's audit record.
type TraceEntry struct {
	// Rule names the pass ("fold-constants", "push-predicates",
	// "prune-columns").
	Rule string
	// Detail describes what the rule did, human-readable.
	Detail string
}

// Outcome reports what the pipeline did to one query.
type Outcome struct {
	// NoOp means the query is provably empty (contradictory predicates):
	// it plans to nothing and ships no bytes.
	NoOp bool
	// RulesApplied counts rules that changed the query.
	RulesApplied int
	// Trace is the ordered per-rule audit.
	Trace []TraceEntry
	// BytesBefore/BytesAfter are the planned source byte rates (Σ over
	// sources of rate×width) before any pushdown — full rates, full
	// widths — and after: predicate-filtered rates × pruned widths.
	// BytesAfter ≤ BytesBefore always; the gap is the pipeline's planned
	// bytes-on-wire saving at the sources.
	BytesBefore, BytesAfter float64
}

// BytesSaved returns the planned source byte-rate reduction.
func (o Outcome) BytesSaved() float64 { return o.BytesBefore - o.BytesAfter }

// TraceString renders the audit one rule per line.
func (o Outcome) TraceString() string {
	lines := make([]string, len(o.Trace))
	for i, e := range o.Trace {
		lines[i] = e.Rule + ": " + e.Detail
	}
	return strings.Join(lines, "\n")
}

// Apply runs the pipeline over q in place: predicates are normalized,
// per-source shipped widths (q.SrcWidths) and the projection spec
// (q.Proj) are set. The catalog provides schemas and rates; proj carries
// the statement's column information. Apply ignores the kill switch —
// callers gate on Enabled() so planning surfaces stay in control of the
// A/B comparison.
func Apply(cat *query.Catalog, q *query.Query, proj Projection) Outcome {
	var out Outcome
	out.BytesBefore = sourceBytes(cat, q, false, nil)
	foldConstants(q, proj, &out)
	if !out.NoOp {
		pushPredicates(cat, q, &out)
		pruneColumns(cat, q, proj, &out)
		out.BytesAfter = sourceBytes(cat, q, true, q.SrcWidths)
	}
	return out
}

// sourceBytes totals rate×width over the query's sources. filtered
// applies the predicates' stream selectivities; widths overrides the full
// schema widths per position when set. Schema-less streams count at
// query.DefaultTupleWidth so mixed catalogs stay comparable.
func sourceBytes(cat *query.Catalog, q *query.Query, filtered bool, widths []float64) float64 {
	total := 0.0
	for i, sid := range q.Sources {
		rate := cat.Stream(sid).Rate
		if filtered {
			rate *= q.Preds.StreamSelectivity(sid)
		}
		w := cat.StreamWidth(sid)
		if w == 0 {
			w = query.DefaultTupleWidth
		}
		if widths != nil && i < len(widths) && widths[i] > 0 {
			w = widths[i]
		}
		total += rate * w
	}
	return total
}

// foldConstants drops predicates that cover the whole [0,1) domain
// (always-true) and folds contradictory statements to a no-op plan.
func foldConstants(q *query.Query, proj Projection, out *Outcome) {
	const rule = "fold-constants"
	if proj.Contradiction {
		out.NoOp = true
		out.RulesApplied++
		out.Trace = append(out.Trace, TraceEntry{rule,
			"WHERE is provably empty (disjoint ranges on one attribute): query plans to a no-op"})
		return
	}
	var keep, dropped []query.Pred
	for _, p := range q.Preds.Preds() {
		if p.Range.Lo <= 0 && p.Range.Hi >= 1 {
			dropped = append(dropped, p)
			continue
		}
		keep = append(keep, p)
	}
	if len(dropped) == 0 {
		out.Trace = append(out.Trace, TraceEntry{rule, "no always-true or contradictory predicates"})
		return
	}
	ps, err := query.NewPredSet(keep...)
	if err != nil {
		// keep is a subset of an already-normalized valid set; rebuilding
		// it cannot fail.
		panic(fmt.Sprintf("rewrite: refold of valid predicate subset failed: %v", err))
	}
	q.Preds = ps
	out.RulesApplied++
	names := make([]string, len(dropped))
	for i, p := range dropped {
		names[i] = fmt.Sprintf("%d.%s", p.Stream, p.Attr)
	}
	out.Trace = append(out.Trace, TraceEntry{rule,
		fmt.Sprintf("dropped %d always-true predicate(s): %s (signatures normalize, reuse improves)",
			len(dropped), strings.Join(names, ", "))})
}

// pushPredicates classifies every surviving predicate to its source
// stream and records the rate reduction the planner's leaves will see —
// selections run at the sources, before any tuple crosses the network.
func pushPredicates(cat *query.Catalog, q *query.Query, out *Outcome) {
	const rule = "push-predicates"
	if q.Preds.Empty() {
		out.Trace = append(out.Trace, TraceEntry{rule, "no predicates to push"})
		return
	}
	var parts []string
	for _, sid := range q.Sources {
		sel := q.Preds.StreamSelectivity(sid)
		if sel >= 1 {
			continue
		}
		rate := cat.Stream(sid).Rate
		parts = append(parts, fmt.Sprintf("stream %d: rate %.3g→%.3g (sel %.3g)",
			sid, rate, rate*sel, sel))
	}
	if len(parts) == 0 {
		out.Trace = append(out.Trace, TraceEntry{rule, "no predicates to push"})
		return
	}
	out.RulesApplied++
	out.Trace = append(out.Trace, TraceEntry{rule,
		"selections evaluated at source operators: " + strings.Join(parts, "; ")})
}

// pruneColumns drops columns no projection, predicate or join key
// references, shrinking each source's shipped width. Requires schemas;
// SELECT * keeps full tuples.
func pruneColumns(cat *query.Catalog, q *query.Query, proj Projection, out *Outcome) {
	const rule = "prune-columns"
	if proj.Star || proj.Cols == nil {
		out.Trace = append(out.Trace, TraceEntry{rule, "SELECT * ships full tuples; nothing to prune"})
		return
	}
	var parts []string
	spec := query.NewProjSpec()
	widths := make([]float64, q.K())
	pruned := false
	for i, sid := range q.Sources {
		schema := cat.Schema(sid)
		if schema == nil {
			continue // no width information; full tuples
		}
		needed := map[string]bool{}
		for _, a := range proj.Cols[sid] {
			needed[a] = true
		}
		for _, a := range proj.JoinAttrs[sid] {
			needed[a] = true
		}
		for _, p := range q.Preds.Preds() {
			if p.Stream == sid {
				needed[p.Attr] = true
			}
		}
		var keep []string
		width := 0.0
		for _, a := range schema {
			if needed[a.Name] {
				keep = append(keep, a.Name)
				width += a.Width
			}
		}
		if len(keep) == len(schema) {
			continue // nothing referenced is droppable
		}
		sort.Strings(keep)
		spec.Set(sid, keep)
		widths[i] = width
		pruned = true
		parts = append(parts, fmt.Sprintf("stream %d: %d/%d columns, width %.4g→%.4g",
			sid, len(keep), len(schema), schema.Width(), width))
	}
	if !pruned {
		out.Trace = append(out.Trace, TraceEntry{rule, "every schema column is referenced; nothing to prune"})
		return
	}
	q.SrcWidths = widths
	q.Proj = spec
	out.RulesApplied++
	out.Trace = append(out.Trace, TraceEntry{rule, strings.Join(parts, "; ")})
}
