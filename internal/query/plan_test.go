package query

import (
	"math"
	"strings"
	"testing"

	"hnp/internal/netgraph"
)

// lineDist is the distance on an integer line, a handy exact DistFunc.
func lineDist(a, b netgraph.NodeID) float64 { return math.Abs(float64(a - b)) }

func samplePlan() *PlanNode {
	// Streams s0@0 (rate 10), s1@4 (rate 20); join at node 2, rate 5.
	l0 := Leaf(Input{Mask: 0b01, Rate: 10, Loc: 0, Sig: "0"})
	l1 := Leaf(Input{Mask: 0b10, Rate: 20, Loc: 4, Sig: "1"})
	return Join(l0, l1, 2, 5)
}

func TestPlanCost(t *testing.T) {
	p := samplePlan()
	// Internal: 10*|0-2| + 20*|4-2| = 20+40 = 60.
	if got := p.InternalCost(lineDist); got != 60 {
		t.Errorf("InternalCost = %g, want 60", got)
	}
	// Delivery to sink at 6: 5*|2-6| = 20.
	if got := p.Cost(lineDist, 6); got != 80 {
		t.Errorf("Cost = %g, want 80", got)
	}
}

func TestLeafCost(t *testing.T) {
	l := Leaf(Input{Mask: 1, Rate: 7, Loc: 3, Sig: "0"})
	if l.InternalCost(lineDist) != 0 {
		t.Error("leaf internal cost != 0")
	}
	if got := l.Cost(lineDist, 0); got != 21 {
		t.Errorf("leaf cost = %g, want 21", got)
	}
}

func TestDerivedLeafHasNoUpstreamCost(t *testing.T) {
	// A derived input covering two positions behaves exactly like a leaf:
	// its upstream computation is already paid for.
	d := Leaf(Input{Mask: 0b11, Rate: 5, Loc: 1, Derived: true, Sig: "0|1"})
	l2 := Leaf(Input{Mask: 0b100, Rate: 3, Loc: 9, Sig: "2"})
	p := Join(d, l2, 5, 1)
	// 5*|1-5| + 3*|9-5| = 20+12 = 32.
	if got := p.InternalCost(lineDist); got != 32 {
		t.Errorf("InternalCost = %g, want 32", got)
	}
}

func TestValidate(t *testing.T) {
	p := samplePlan()
	if err := p.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	bad := Join(Leaf(Input{Mask: 0b01, Rate: 1, Loc: 0}), Leaf(Input{Mask: 0b01, Rate: 1, Loc: 1}), 0, 1)
	if err := bad.Validate(); err == nil {
		t.Error("overlapping masks accepted")
	}
	wrongMask := samplePlan()
	wrongMask.Mask = 0b111
	if err := wrongMask.Validate(); err == nil {
		t.Error("wrong parent mask accepted")
	}
	leafBad := Leaf(Input{Mask: 0b01, Rate: 1, Loc: 0})
	leafBad.Mask = 0b10
	if err := leafBad.Validate(); err == nil {
		t.Error("leaf/input mask mismatch accepted")
	}
	halfJoin := &PlanNode{Mask: 0b11, L: Leaf(Input{Mask: 0b01})}
	if err := halfJoin.Validate(); err == nil {
		t.Error("join with one child accepted")
	}
}

func TestOperatorsAndLeaves(t *testing.T) {
	p := samplePlan()
	ops := p.Operators()
	if len(ops) != 1 || ops[0] != p {
		t.Errorf("Operators = %v", ops)
	}
	ls := p.Leaves()
	if len(ls) != 2 || !ls[0].IsLeaf() || !ls[1].IsLeaf() {
		t.Errorf("Leaves = %v", ls)
	}
	if ls[0].In.Sig != "0" || ls[1].In.Sig != "1" {
		t.Error("leaf order not left-to-right")
	}
	// Deeper tree: ((s0 ⋈ s1) ⋈ s2) has two operators in post-order.
	p2 := Join(p, Leaf(Input{Mask: 0b100, Rate: 1, Loc: 0, Sig: "2"}), 1, 1)
	ops2 := p2.Operators()
	if len(ops2) != 2 || ops2[1] != p2 || ops2[0] != p {
		t.Errorf("post-order wrong: %v", ops2)
	}
}

func TestPlanString(t *testing.T) {
	s := samplePlan().String()
	for _, frag := range []string{"s[0]@0", "s[1]@4", "⋈@2"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String %q missing %q", s, frag)
		}
	}
	d := Leaf(Input{Mask: 1, Rate: 1, Loc: 2, Derived: true, Sig: "5"})
	if !strings.Contains(d.String(), "d[5]@2") {
		t.Errorf("derived leaf rendered %q", d.String())
	}
}

func TestUnaryPlanNode(t *testing.T) {
	child := samplePlan() // join at node 2, rate 5
	agg := NewUnary(child, UnarySpec{
		Agg: AggSpec{Fn: "count", Window: 10, OutRate: 0.5},
		Sig: "0|1@agg:count:10",
	}, 3, 0.5)
	if !agg.IsUnary() || agg.IsLeaf() {
		t.Fatal("unary flags wrong")
	}
	if err := agg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Internal: join internals (60) + join output to agg: 5*|2-3| = 65.
	if got := agg.InternalCost(lineDist); got != 65 {
		t.Errorf("InternalCost = %g, want 65", got)
	}
	// Delivery: 0.5*|3-6| = 1.5.
	if got := agg.Cost(lineDist, 6); got != 66.5 {
		t.Errorf("Cost = %g, want 66.5", got)
	}
	if agg.InputRate() != 5 {
		t.Errorf("InputRate = %g", agg.InputRate())
	}
	ops := agg.Operators()
	if len(ops) != 2 || ops[1] != agg {
		t.Errorf("Operators = %v", ops)
	}
	if !strings.Contains(agg.String(), "agg:count:10@3") {
		t.Errorf("String = %q", agg.String())
	}
	// Broken unaries rejected.
	bad := NewUnary(child, UnarySpec{}, 3, 1)
	bad.R = samplePlan()
	if err := bad.Validate(); err == nil {
		t.Error("unary with two children accepted")
	}
	bad2 := NewUnary(child, UnarySpec{}, 3, 1)
	bad2.Mask = 0b100
	if err := bad2.Validate(); err == nil {
		t.Error("unary mask mismatch accepted")
	}
}
