package query

import (
	"sort"
	"strconv"
	"strings"
)

// DefaultTupleWidth is the byte width assumed for a stream without a
// declared schema wherever a concrete width is required next to declared
// ones (mixed catalogs, rewrite byte accounting). It matches the physical
// runtime's default Config.TupleSize so the analytic and simulated ledgers
// agree on legacy workloads.
const DefaultTupleWidth = 100

// Attr is one attribute of a stream schema: a (lowercase) name and its
// width in bytes on the wire.
type Attr struct {
	Name  string
	Width float64
}

// Schema is the ordered attribute list of one base stream. A nil schema
// means "width unknown": the planners fall back to unit widths and the
// runtime to its global TupleSize, exactly the pre-schema behavior.
type Schema []Attr

// Width returns the total byte width of one full tuple.
func (s Schema) Width() float64 {
	total := 0.0
	for _, a := range s {
		total += a.Width
	}
	return total
}

// AttrWidth returns the width of the named attribute and whether it
// exists.
func (s Schema) AttrWidth(name string) (float64, bool) {
	for _, a := range s {
		if a.Name == name {
			return a.Width, true
		}
	}
	return 0, false
}

// ProjSpec records the post-pruning column set shipped for each pruned
// source stream of one query. Streams absent from the spec ship full
// tuples. A ProjSpec participates in operator signatures so pruned
// operators never alias full-width ones.
type ProjSpec struct {
	keep map[StreamID][]string
}

// NewProjSpec returns an empty projection spec.
func NewProjSpec() *ProjSpec { return &ProjSpec{keep: map[StreamID][]string{}} }

// Set records the kept attributes of one stream (copied, sorted).
func (p *ProjSpec) Set(id StreamID, attrs []string) {
	kept := append([]string(nil), attrs...)
	sort.Strings(kept)
	p.keep[id] = kept
}

// Keep returns the kept attributes of a stream and whether the stream is
// pruned at all.
func (p *ProjSpec) Keep(id StreamID) ([]string, bool) {
	if p == nil {
		return nil, false
	}
	attrs, ok := p.keep[id]
	return attrs, ok
}

// Empty reports whether no stream is pruned.
func (p *ProjSpec) Empty() bool { return p == nil || len(p.keep) == 0 }

// SigOf returns the canonical projection fragment for the covered streams:
// per pruned stream, the sorted kept columns. Streams shipping full tuples
// contribute nothing, so unpruned queries keep their plain signatures.
func (p *ProjSpec) SigOf(streams []StreamID) string {
	if p.Empty() {
		return ""
	}
	sorted := append([]StreamID(nil), streams...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var b strings.Builder
	for _, id := range sorted {
		attrs, ok := p.keep[id]
		if !ok {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.Itoa(int(id)))
		b.WriteByte('[')
		b.WriteString(strings.Join(attrs, ","))
		b.WriteByte(']')
	}
	return b.String()
}

// WidthTable precomputes the byte width of one output tuple of every
// sub-join of one query: width(S) = Σ_{i∈S} shipped width of source i
// (join outputs concatenate their inputs' kept columns). Indexed by Mask,
// like RateTable. A nil table means "no width information": Width returns
// 1 so rate×width degrades to the pre-schema rate-only cost model.
type WidthTable []float64

// Width returns the tuple width of the sub-join covered by m (1 when the
// table is nil).
func (t WidthTable) Width(m Mask) float64 {
	if t == nil {
		return 1
	}
	return t[m]
}

// BuildWidths computes the width table for q against the catalog. The
// shipped width of source position i is q.SrcWidths[i] when set (the
// rewrite pipeline's post-pruning width), else the stream's full schema
// width, else DefaultTupleWidth for schema-less streams in a catalog that
// declares at least one schema. When no source carries any width
// information the result is nil and every width degrades to 1.
func BuildWidths(cat *Catalog, q *Query) WidthTable {
	k := q.K()
	eff := make([]float64, k)
	any := false
	for i, sid := range q.Sources {
		if q.SrcWidths != nil && i < len(q.SrcWidths) && q.SrcWidths[i] > 0 {
			eff[i] = q.SrcWidths[i]
			any = true
			continue
		}
		if w := cat.StreamWidth(sid); w > 0 {
			eff[i] = w
			any = true
		}
	}
	if !any {
		return nil
	}
	for i := range eff {
		if eff[i] == 0 {
			eff[i] = DefaultTupleWidth
		}
	}
	t := make(WidthTable, 1<<uint(k))
	for m := Mask(1); m < Mask(1<<uint(k)); m++ {
		low := m & (m ^ (m - 1)) // lowest set bit
		t[m] = t[m&(m-1)] + eff[trailingPos(low)]
	}
	return t
}

func trailingPos(m Mask) int {
	p := 0
	for m > 1 {
		m >>= 1
		p++
	}
	return p
}

// Stamp annotates every node of a placed plan tree with its output width
// from the table (a no-op for nil tables, preserving the width-free
// representation of legacy plans). Leaf inputs are stamped too, so the
// runtime can size derived subscriptions.
func (t WidthTable) Stamp(p *PlanNode) {
	if t == nil || p == nil {
		return
	}
	t.Stamp(p.L)
	t.Stamp(p.R)
	p.Width = t[p.Mask]
	if p.In != nil {
		p.In.Width = p.Width
	}
}
