package query

import (
	"fmt"

	"hnp/internal/netgraph"
)

// This file adds windowed aggregation — the operator class the paper
// explicitly defers ("We leave queries involving aggregations and unions
// to future work"). An aggregate is a unary operator applied to the
// query's join result: it consumes the full-rate joined stream and emits
// one summary tuple per tumbling window, so placing it close to the join
// root collapses the downstream rate.

// AggSpec describes a windowed aggregation over the query result.
type AggSpec struct {
	// Fn names the aggregate function (count, sum, avg, max, min); the
	// simulator treats them identically (one summary tuple per window).
	Fn string
	// Window is the tumbling window length in seconds.
	Window float64
	// OutRate is the expected output rate in the same cost units as
	// stream rates (typically tupleSize/Window).
	OutRate float64
}

// Valid reports whether the spec is usable.
func (a AggSpec) Valid() bool { return a.Fn != "" && a.Window > 0 && a.OutRate > 0 }

// Sig returns the canonical signature fragment of the aggregation.
func (a AggSpec) Sig() string { return fmt.Sprintf("agg:%s:%g", a.Fn, a.Window) }

// NewQueryAgg builds a query whose join result is aggregated before
// delivery.
func NewQueryAgg(id int, sources []StreamID, sink netgraph.NodeID, preds PredSet, agg AggSpec) (*Query, error) {
	q, err := NewQueryPred(id, sources, sink, preds)
	if err != nil {
		return nil, err
	}
	if !agg.Valid() {
		return nil, fmt.Errorf("query %d: invalid aggregate %+v", id, agg)
	}
	cp := agg
	q.Agg = &cp
	return q, nil
}

// AggSig returns the signature of the query's aggregated output stream.
// It panics when the query has no aggregate.
func (q *Query) AggSig() string {
	if q.Agg == nil {
		panic("query: AggSig on a query without an aggregate")
	}
	return q.SigOf(q.All()) + "@" + q.Agg.Sig()
}

// UnarySpec marks a plan node as a unary operator (aggregation) applied
// to its single child.
type UnarySpec struct {
	Agg AggSpec
	// Sig is the canonical signature of the unary operator's output.
	Sig string
}

// NewUnary wraps a child plan in a unary operator placed at loc emitting
// at the given rate.
func NewUnary(child *PlanNode, spec UnarySpec, loc netgraph.NodeID, rate float64) *PlanNode {
	return &PlanNode{Mask: child.Mask, Rate: rate, Loc: loc, L: child, Unary: &spec}
}
