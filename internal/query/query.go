package query

import (
	"fmt"
	"math/bits"

	"hnp/internal/netgraph"
)

// MaxSources bounds the number of sources per query; subset tables are
// sized 2^K, and the paper's workloads use 2-6 sources per query.
const MaxSources = 16

// Mask is a bitmask over the source positions of one query (bit i set
// means the i-th source of the query is covered).
type Mask uint32

// Has reports whether position i is in the mask.
func (m Mask) Has(i int) bool { return m&(1<<uint(i)) != 0 }

// Count returns the number of covered positions.
func (m Mask) Count() int { return bits.OnesCount32(uint32(m)) }

// Positions returns the covered positions in ascending order.
func (m Mask) Positions() []int {
	out := make([]int, 0, m.Count())
	for i := 0; m != 0; i, m = i+1, m>>1 {
		if m&1 != 0 {
			out = append(out, i)
		}
	}
	return out
}

// FullMask returns the mask covering positions 0..k-1.
func FullMask(k int) Mask { return Mask(1<<uint(k)) - 1 }

// Query is a continuous SPJ query joining a set of base streams, with the
// result delivered to a sink node.
type Query struct {
	ID      int
	Sources []StreamID
	Sink    netgraph.NodeID
	// Preds are the query's selection predicates; the zero value means
	// unconstrained. Predicates participate in signatures, rates and
	// containment-based reuse.
	Preds PredSet
	// Agg, when non-nil, applies a windowed aggregation to the join
	// result before delivery.
	Agg *AggSpec
	// SrcWidths, when non-nil, overrides the shipped byte width of each
	// source position (0 = use the catalog schema width). The rewrite
	// pipeline's column pruning sets these below the full schema widths.
	SrcWidths []float64
	// Proj, when non-nil, records which columns each pruned source ships.
	// It participates in operator signatures so pruned operators never
	// alias full-width ones in the advertisement registry or the runtime.
	Proj *ProjSpec
}

// NewQuery validates and builds a query. Sources must be non-empty,
// distinct and at most MaxSources.
func NewQuery(id int, sources []StreamID, sink netgraph.NodeID) (*Query, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("query %d: no sources", id)
	}
	if len(sources) > MaxSources {
		return nil, fmt.Errorf("query %d: %d sources exceeds limit %d", id, len(sources), MaxSources)
	}
	seen := map[StreamID]bool{}
	for _, s := range sources {
		if seen[s] {
			return nil, fmt.Errorf("query %d: duplicate source %d", id, s)
		}
		seen[s] = true
	}
	return &Query{ID: id, Sources: append([]StreamID(nil), sources...), Sink: sink}, nil
}

// NewQueryPred builds a query with selection predicates. Every predicate
// must constrain one of the query's source streams.
func NewQueryPred(id int, sources []StreamID, sink netgraph.NodeID, preds PredSet) (*Query, error) {
	q, err := NewQuery(id, sources, sink)
	if err != nil {
		return nil, err
	}
	srcs := map[StreamID]bool{}
	for _, s := range sources {
		srcs[s] = true
	}
	for _, p := range preds.Preds() {
		if !srcs[p.Stream] {
			return nil, fmt.Errorf("query %d: predicate on foreign stream %d", id, p.Stream)
		}
	}
	q.Preds = preds
	return q, nil
}

// K returns the number of source streams.
func (q *Query) K() int { return len(q.Sources) }

// All returns the mask covering every source.
func (q *Query) All() Mask { return FullMask(q.K()) }

// StreamsOf maps a mask to the global stream IDs it covers.
func (q *Query) StreamsOf(m Mask) []StreamID {
	ps := m.Positions()
	out := make([]StreamID, len(ps))
	for i, p := range ps {
		out[i] = q.Sources[p]
	}
	return out
}

// SigOf returns the canonical signature of the sub-join covered by m,
// including the query's predicates on the covered streams (so operators
// computed under different predicates never alias). Predicate-free
// queries keep the plain stream signature.
func (q *Query) SigOf(m Mask) string {
	streams := q.StreamsOf(m)
	base := SigOf(streams)
	if ps := q.Preds.Restrict(streams); !ps.Empty() {
		base += "#" + ps.Sig()
	}
	if frag := q.ProjSigOf(m); frag != "" {
		base += "%" + frag
	}
	return base
}

// ProjSigOf returns the canonical projection fragment of the sub-join
// covered by m: empty for full-projection (or projection-less) queries,
// so their signatures are byte-identical with or without the rewrite
// pipeline.
func (q *Query) ProjSigOf(m Mask) string {
	if q.Proj.Empty() {
		return ""
	}
	return q.Proj.SigOf(q.StreamsOf(m))
}

// MaskOf returns the mask of positions corresponding to a set of global
// stream IDs, and false if any of them is not a source of this query.
func (q *Query) MaskOf(ids []StreamID) (Mask, bool) {
	pos := map[StreamID]int{}
	for i, s := range q.Sources {
		pos[s] = i
	}
	var m Mask
	for _, id := range ids {
		p, ok := pos[id]
		if !ok {
			return 0, false
		}
		m |= 1 << uint(p)
	}
	return m, true
}

// RateTable precomputes the expected output rate of every sub-join of one
// query: rate(S) = Π_{i∈S} rate_i × Π_{i<j∈S} sel(i,j). Indexed by Mask.
type RateTable []float64

// BuildRates computes the rate table for q against the catalog.
func BuildRates(cat *Catalog, q *Query) RateTable {
	k := q.K()
	t := make(RateTable, 1<<uint(k))
	t[0] = 0
	for m := Mask(1); m < Mask(1<<uint(k)); m++ {
		ps := m.Positions()
		if len(ps) == 1 {
			sid := q.Sources[ps[0]]
			t[m] = cat.Stream(sid).Rate * q.Preds.StreamSelectivity(sid)
			continue
		}
		// Split off the lowest position and combine with the rest.
		low := ps[0]
		rest := m &^ (1 << uint(low))
		cross := 1.0
		for _, p := range rest.Positions() {
			cross *= cat.Selectivity(q.Sources[low], q.Sources[p])
		}
		t[m] = t[1<<uint(low)] * t[rest] * cross
	}
	return t
}

// Rate returns the expected output rate of the sub-join covered by m.
func (t RateTable) Rate(m Mask) float64 { return t[m] }

// NumTrees returns the number of distinct (possibly bushy) join trees over
// k leaves: (2k-3)!! — 1, 1, 3, 15, 105, 945, ... This is the per-plan
// factor in the Lemma 1 search-space size.
func NumTrees(k int) int64 {
	if k < 1 {
		return 0
	}
	n := int64(1)
	for f := int64(2*k - 3); f >= 3; f -= 2 {
		n *= f
	}
	return n
}
