package query

import (
	"fmt"
	"strings"

	"hnp/internal/netgraph"
)

// DistFunc measures the traversal cost between two physical nodes. The
// optimizers plan against either exact shortest-path costs or the
// hierarchy's per-level estimates.
type DistFunc func(a, b netgraph.NodeID) float64

// Input is a stream available to a planner: either a base stream source,
// or a derived stream (the advertised output of an already-deployed
// operator, reusable at no upstream cost).
type Input struct {
	// Mask is the set of query source positions this input covers. Base
	// inputs cover one position; derived inputs may cover several.
	Mask Mask
	// Rate is the expected output rate.
	Rate float64
	// Loc is the physical node where the input is materialized.
	Loc netgraph.NodeID
	// Derived marks reused operator outputs.
	Derived bool
	// Sig is the canonical signature of the covered streams (including
	// the consuming query's predicates).
	Sig string
	// BaseSig, when non-empty, names the weaker materialized stream this
	// input is derived from by containment: the runtime attaches a
	// residual filter at Loc that narrows BaseSig's output to Sig.
	BaseSig string
	// Width is the byte width of one tuple of this input (0 = unknown;
	// costing treats unknown as 1 and the runtime falls back to its
	// global TupleSize).
	Width float64
}

// PlanNode is one node of a deployed operator tree: a leaf consuming an
// Input, or a join of two children placed at a physical node.
type PlanNode struct {
	Mask Mask
	Rate float64
	// Loc is where the node's output is materialized: the input location
	// for leaves, the assigned processing node for joins.
	Loc netgraph.NodeID
	// In is non-nil exactly for leaves.
	In *Input
	// Unary is non-nil for unary operators (aggregations); such nodes use
	// only the L child.
	Unary *UnarySpec
	// L, R are the children of a join node (R is nil under Unary).
	L, R *PlanNode
	// Width is the byte width of one output tuple (0 = unknown; see
	// WidthOr1). WidthTable.Stamp fills it after placement.
	Width float64
}

// WidthOr1 returns the node's output tuple width, degrading to the
// pre-schema unit width when none was stamped, so rate×width costing is
// byte-identical to rate-only costing for width-free plans.
func (p *PlanNode) WidthOr1() float64 {
	if p.Width > 0 {
		return p.Width
	}
	return 1
}

// Leaf builds a leaf plan node from an input.
func Leaf(in Input) *PlanNode {
	cp := in
	return &PlanNode{Mask: in.Mask, Rate: in.Rate, Loc: in.Loc, In: &cp, Width: in.Width}
}

// Join builds a join node over two children, placed at loc with the given
// output rate.
func Join(l, r *PlanNode, loc netgraph.NodeID, rate float64) *PlanNode {
	return &PlanNode{Mask: l.Mask | r.Mask, Rate: rate, Loc: loc, L: l, R: r}
}

// IsLeaf reports whether p consumes an input directly.
func (p *PlanNode) IsLeaf() bool { return p.In != nil }

// IsUnary reports whether p is a unary operator (aggregation).
func (p *PlanNode) IsUnary() bool { return p.Unary != nil }

// InternalCost returns the communication cost per unit time of all
// transfers inside the plan: for every join, each child's output rate
// times its tuple width times the distance from the child's location to
// the join's node. Width-free plans degrade to rate×distance. The final
// delivery to the sink is excluded (see Cost).
func (p *PlanNode) InternalCost(dist DistFunc) float64 {
	if p.IsLeaf() {
		return 0
	}
	if p.IsUnary() {
		return p.L.InternalCost(dist) + p.L.Rate*p.L.WidthOr1()*dist(p.L.Loc, p.Loc)
	}
	c := p.L.InternalCost(dist) + p.R.InternalCost(dist)
	c += p.L.Rate * p.L.WidthOr1() * dist(p.L.Loc, p.Loc)
	c += p.R.Rate * p.R.WidthOr1() * dist(p.R.Loc, p.Loc)
	return c
}

// Cost returns InternalCost plus the cost of delivering the root output to
// the sink.
func (p *PlanNode) Cost(dist DistFunc, sink netgraph.NodeID) float64 {
	return p.InternalCost(dist) + p.Rate*p.WidthOr1()*dist(p.Loc, sink)
}

// PlannedBytes returns the plan's total bytes-on-wire per unit time:
// rate×width summed over every edge that crosses nodes, including the
// final delivery to the sink. This is the analytic counterpart of the
// runtime ledger's TotalBytes rate, and the figure the rewrite pipeline
// is scored on (distance-independent: a byte on a long path and a short
// path both count once).
func (p *PlanNode) PlannedBytes(sink netgraph.NodeID) float64 {
	hop := func(a, b netgraph.NodeID) float64 {
		if a == b {
			return 0
		}
		return 1
	}
	return p.InternalCost(hop) + p.Rate*p.WidthOr1()*hop(p.Loc, sink)
}

// Operators returns all operator nodes (joins and unaries) of the plan in
// post-order.
func (p *PlanNode) Operators() []*PlanNode {
	var out []*PlanNode
	var walk func(n *PlanNode)
	walk = func(n *PlanNode) {
		if n == nil || n.IsLeaf() {
			return
		}
		walk(n.L)
		walk(n.R)
		out = append(out, n)
	}
	walk(p)
	return out
}

// InputRate returns the total input rate of an operator node: both
// children's rates for a join, the single child's rate for a unary.
func (p *PlanNode) InputRate() float64 {
	if p.IsLeaf() {
		return 0
	}
	if p.IsUnary() {
		return p.L.Rate
	}
	return p.L.Rate + p.R.Rate
}

// Leaves returns all leaf nodes of the plan in left-to-right order.
func (p *PlanNode) Leaves() []*PlanNode {
	var out []*PlanNode
	var walk func(n *PlanNode)
	walk = func(n *PlanNode) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			out = append(out, n)
			return
		}
		walk(n.L)
		walk(n.R)
	}
	walk(p)
	return out
}

// Validate checks structural consistency: children masks are disjoint and
// compose the parent mask, and leaves carry inputs.
func (p *PlanNode) Validate() error {
	if p.IsLeaf() {
		if p.Mask != p.In.Mask {
			return fmt.Errorf("plan: leaf mask %b != input mask %b", p.Mask, p.In.Mask)
		}
		return nil
	}
	if p.IsUnary() {
		if p.L == nil || p.R != nil {
			return fmt.Errorf("plan: unary must have exactly one child")
		}
		if p.Mask != p.L.Mask {
			return fmt.Errorf("plan: unary mask %b != child mask %b", p.Mask, p.L.Mask)
		}
		return p.L.Validate()
	}
	if p.L == nil || p.R == nil {
		return fmt.Errorf("plan: join with missing child")
	}
	if p.L.Mask&p.R.Mask != 0 {
		return fmt.Errorf("plan: overlapping child masks %b and %b", p.L.Mask, p.R.Mask)
	}
	if p.L.Mask|p.R.Mask != p.Mask {
		return fmt.Errorf("plan: children cover %b, node claims %b", p.L.Mask|p.R.Mask, p.Mask)
	}
	if err := p.L.Validate(); err != nil {
		return err
	}
	return p.R.Validate()
}

// String renders the plan as a nested expression with placements, e.g.
// "((s0@3 ⋈@5 s1@4) ⋈@5 s2@9)".
func (p *PlanNode) String() string {
	if p == nil {
		return "(empty: no plan)"
	}
	var b strings.Builder
	p.render(&b)
	return b.String()
}

func (p *PlanNode) render(b *strings.Builder) {
	if p.IsLeaf() {
		kind := "s"
		if p.In.Derived {
			kind = "d"
		}
		fmt.Fprintf(b, "%s[%s]@%d", kind, p.In.Sig, p.Loc)
		return
	}
	if p.IsUnary() {
		fmt.Fprintf(b, "%s@%d(", p.Unary.Agg.Sig(), p.Loc)
		p.L.render(b)
		b.WriteByte(')')
		return
	}
	b.WriteByte('(')
	p.L.render(b)
	fmt.Fprintf(b, " ⋈@%d ", p.Loc)
	p.R.render(b)
	b.WriteByte(')')
}
