// Package benchfmt defines the machine-readable benchmark-trajectory
// format shared by cmd/benchjson (planner hot-path benchmarks,
// BENCH_planner.json) and cmd/smqbench (serving-load benchmarks,
// BENCH_serving.json), plus the regression diff both gate on.
//
// Two families of figures live in one schema. Hardware-relative numbers
// (ns/op, latency quantiles, deploys/sec) move with the machine, so the
// diff tolerates a configurable fraction on them. Hardware-independent
// numbers (allocs/op, churn ratios) are real regressions on any machine
// and tolerate nothing.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Schema identifies the trajectory format; Load rejects anything else.
const Schema = "hnp-bench/v1"

// Result is one benchmark's measurement in the JSON trajectory.
type Result struct {
	Name       string `json:"name"`
	Iterations int    `json:"iterations"`
	NsPerOp    int64  `json:"ns_per_op"`
	AllocsOp   int64  `json:"allocs_per_op"`
	BytesOp    int64  `json:"bytes_per_op"`
	// PlansPerSec is the rate of plan candidates actually examined per
	// wall-clock second (0 where the notion doesn't apply): the DP's
	// relaxation count (core.SolveWork) for the Solve benchmarks, the
	// measured per-query search accounting for Deploy. It is NOT the
	// nominal exhaustive space the DP covers (cost.ClusterSpace) divided
	// by time — that figure measures the space the shared-subproblem
	// formulation avoids enumerating and once inflated this metric to an
	// absurd ~10^14/s.
	PlansPerSec float64 `json:"plans_per_sec,omitempty"`
	// OpsChurnedPerOp is the operator churn one op costs a deployed
	// system — operators stopped or started, windows and statistics lost
	// with each (0 where the notion doesn't apply). Like allocs_per_op it
	// is hardware-independent: a churn regression is real on any machine.
	OpsChurnedPerOp float64 `json:"ops_churned_per_op,omitempty"`
	// BytesVsNever / BytesVsAlways are the adaptive controller's total
	// transport bytes on the pinned chaos rate-shift seed relative to the
	// never-migrate and always-remigrate baselines (below 1.0 means the
	// controller wins; 0 where the notion doesn't apply). Also
	// hardware-independent: a ratio regression is real on any machine.
	BytesVsNever  float64 `json:"bytes_vs_never,omitempty"`
	BytesVsAlways float64 `json:"bytes_vs_always,omitempty"`
	// RewriteBytesFrac is the figure workload's planned bytes-on-wire
	// with the logical optimizer pipeline on, as a fraction of the same
	// statements planned with the pipeline killed (below 1.0 means
	// pushdown wins; 0 where the notion doesn't apply). Seed-pinned and
	// hardware-independent, like the ratios above.
	RewriteBytesFrac float64 `json:"rewrite_bytes_frac,omitempty"`

	// Serving-harness figures (cmd/smqbench / benchjson -serving; 0 where
	// the notion doesn't apply). For serving entries NsPerOp carries the
	// p50 plan latency, and the tail quantiles below are gated with the
	// same hardware-relative tolerance as ns/op.
	P95Ns int64 `json:"p95_ns,omitempty"`
	P99Ns int64 `json:"p99_ns,omitempty"`
	// DeploysPerSec is the sustained successful-deploy throughput of the
	// serving run (hardware-relative, informational in the diff).
	DeploysPerSec float64 `json:"deploys_per_sec,omitempty"`
	// Rejected counts admission-control rejections (HTTP 429) during the
	// run. Timing-dependent even on one machine, hence informational.
	Rejected int64 `json:"rejected,omitempty"`
	// Errors counts failed requests that were neither successes nor
	// admission rejections (transport errors, unexpected statuses).
	Errors int64 `json:"errors,omitempty"`
}

// Trajectory is one benchmark run: environment provenance plus results.
type Trajectory struct {
	Schema     string   `json:"schema"`
	Tool       string   `json:"tool"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Seed       int64    `json:"seed"`
	Benchtime  string   `json:"benchtime"`
	Benchmarks []Result `json:"benchmarks"`
}

// Load reads and validates a previously written trajectory.
func Load(path string) (Trajectory, error) {
	var t Trajectory
	buf, err := os.ReadFile(path)
	if err != nil {
		return t, err
	}
	if err := json.Unmarshal(buf, &t); err != nil {
		return t, fmt.Errorf("%s: %w", path, err)
	}
	if t.Schema != Schema {
		return t, fmt.Errorf("%s: unsupported schema %q", path, t.Schema)
	}
	return t, nil
}

// Write marshals the trajectory to path ("-" for stdout), indented, with
// a trailing newline so the committed artifact diffs cleanly.
func Write(path string, t Trajectory) error {
	buf, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// Diff prints a per-benchmark diff of cur against base and returns how
// many benchmarks regressed: ns/op beyond the tolerance, a serving
// entry's p95/p99 beyond double the tolerance (tails are noisier than
// medians), or any allocs/op increase (hardware-independent, hence no
// slack at all). Benchmarks
// present on only one side are reported but never counted as regressions
// — renames and additions are trajectory changes, not slowdowns.
func Diff(w io.Writer, base, cur Trajectory, tol float64) int {
	byName := map[string]Result{}
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	fmt.Fprintf(w, "baseline %s/%s go %s benchtime %s; this run benchtime %s; ns/op tolerance +%.0f%%\n",
		base.GOOS, base.GOARCH, base.GoVersion, base.Benchtime, cur.Benchtime, tol*100)
	regressions := 0
	for _, c := range cur.Benchmarks {
		b, ok := byName[c.Name]
		if !ok {
			fmt.Fprintf(w, "%-16s new (no baseline entry)\n", c.Name)
			continue
		}
		delete(byName, c.Name)
		var verdicts []string
		var pct float64
		slower := func(cur, base int64, t float64) bool {
			return base > 0 && float64(cur) > float64(base)*(1+t)
		}
		if b.NsPerOp > 0 {
			pct = 100 * (float64(c.NsPerOp) - float64(b.NsPerOp)) / float64(b.NsPerOp)
			if slower(c.NsPerOp, b.NsPerOp, tol) {
				verdicts = append(verdicts, "ns/op")
			}
		}
		if c.AllocsOp > b.AllocsOp {
			verdicts = append(verdicts, "allocs/op")
		}
		// Tail quantiles are estimated from far fewer effective samples
		// than the median — a p99 over ~1k requests moves with a single
		// scheduler hiccup — so they get double the tolerance.
		if slower(c.P95Ns, b.P95Ns, 2*tol) {
			verdicts = append(verdicts, "p95")
		}
		if slower(c.P99Ns, b.P99Ns, 2*tol) {
			verdicts = append(verdicts, "p99")
		}
		verdict := "ok"
		if len(verdicts) > 0 {
			regressions++
			verdict = "REGRESSION " + verdicts[0]
			for _, v := range verdicts[1:] {
				verdict += "+" + v
			}
		}
		fmt.Fprintf(w, "%-16s ns/op %10d -> %10d (%+6.1f%%)  allocs/op %5d -> %5d  %s\n",
			c.Name, b.NsPerOp, c.NsPerOp, pct, b.AllocsOp, c.AllocsOp, verdict)
	}
	for name := range byName {
		fmt.Fprintf(w, "%-16s dropped (in baseline, not in this run)\n", name)
	}
	return regressions
}
