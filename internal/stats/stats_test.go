package stats

import (
	"math"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("single value stddev != 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.138) > 0.01 {
		t.Errorf("StdDev = %g", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %g", got)
	}
	if got := Percentile(xs, 100); got != 9 {
		t.Errorf("p100 = %g", got)
	}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("p50 = %g", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile != 0")
	}
	// Input must not be mutated.
	if xs[0] != 9 {
		t.Error("Percentile mutated input")
	}
}

func TestCumulative(t *testing.T) {
	got := Cumulative([]float64{1, 2, 3})
	want := []float64{1, 3, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Cumulative = %v", got)
		}
	}
	if len(Cumulative(nil)) != 0 {
		t.Error("Cumulative(nil) not empty")
	}
}

func TestMeanAcross(t *testing.T) {
	got := MeanAcross([][]float64{{1, 2}, {3, 4}})
	if got[0] != 2 || got[1] != 3 {
		t.Errorf("MeanAcross = %v", got)
	}
	if MeanAcross(nil) != nil {
		t.Error("MeanAcross(nil) != nil")
	}
}

// TestMeanAcrossRagged is the regression test for the out-of-range panic:
// output used to be sized from rows[0] while every row was indexed in
// full, so a longer later row crashed. Ragged rows now average over the
// common prefix.
func TestMeanAcrossRagged(t *testing.T) {
	got := MeanAcross([][]float64{{1, 2}, {3, 4, 5}})
	if len(got) != 2 {
		t.Fatalf("ragged MeanAcross length = %d, want 2", len(got))
	}
	if got[0] != 2 || got[1] != 3 {
		t.Errorf("ragged MeanAcross = %v", got)
	}
	// Shorter later row truncates too.
	got = MeanAcross([][]float64{{1, 2, 3}, {3}})
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("ragged MeanAcross = %v", got)
	}
	// An empty row yields an empty (non-panicking) result.
	if got := MeanAcross([][]float64{{1, 2}, {}}); len(got) != 0 {
		t.Errorf("empty-row MeanAcross = %v", got)
	}
}
