// Package stats provides the small statistical helpers the experiment
// harness aggregates results with.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank
// on a copy of xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(cp)))) - 1
	if rank < 0 {
		rank = 0
	}
	return cp[rank]
}

// Cumulative returns the running sum of xs.
func Cumulative(xs []float64) []float64 {
	out := make([]float64, len(xs))
	s := 0.0
	for i, x := range xs {
		s += x
		out[i] = s
	}
	return out
}

// MeanAcross averages aligned series element-wise: rows[w][i] is workload
// w's value at position i. Ragged rows are tolerated by averaging only
// positions present in every row (the common prefix), so a longer later
// row can no longer index past the output.
func MeanAcross(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	n := len(rows[0])
	for _, r := range rows[1:] {
		if len(r) < n {
			n = len(r)
		}
	}
	out := make([]float64, n)
	for _, r := range rows {
		for i, v := range r[:n] {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(rows))
	}
	return out
}
