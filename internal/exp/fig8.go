package exp

import (
	"math/rand"

	"hnp/internal/ads"
	"hnp/internal/baseline"
	"hnp/internal/core"
	"hnp/internal/query"
	"hnp/internal/workload"
)

// Fig8 reproduces Figure 8: comparison with existing approaches — Top-Down
// and Bottom-Up (max_cs=32) versus the exhaustive optimum, the Relaxation
// algorithm (3-D cost space), and zone-based In-network placement (5
// zones, matching max_cs), all with operator reuse. The paper reports
// Top-Down saving ~40% vs In-network and ~59% vs Relaxation.
func Fig8(cfg Config) (*Figure, error) {
	cfg.fig = "fig8"
	const (
		nodes  = 128
		maxCS  = 32
		nZones = 5
	)
	e := newEnv(nodes, cfg.Seed)
	h := e.hier(maxCS)
	setupRng := rand.New(rand.NewSource(cfg.Seed + 77))
	// The paper computed its 3-D cost space with 4 iterations; mirror that
	// modest embedding budget.
	emb := baseline.Embed(e.g, e.paths, 4, setupRng)
	zones, err := baseline.MakeZones(e.g, e.paths, nZones, setupRng)
	if err != nil {
		return nil, err
	}

	runs := []struct {
		name string
		opt  func(cat *query.Catalog) optimizer
	}{
		{"Top-Down with reuse", func(cat *query.Catalog) optimizer {
			return func(q *query.Query, reg *ads.Registry) (core.Result, error) { return core.TopDown(h, cat, q, reg) }
		}},
		{"Bottom-Up with reuse", func(cat *query.Catalog) optimizer {
			return func(q *query.Query, reg *ads.Registry) (core.Result, error) { return core.BottomUp(h, cat, q, reg) }
		}},
		{"Exhaustive", func(cat *query.Catalog) optimizer {
			return func(q *query.Query, reg *ads.Registry) (core.Result, error) {
				return core.Optimal(e.g, e.paths, cat, q, reg)
			}
		}},
		{"Relaxation with reuse", func(cat *query.Catalog) optimizer {
			return func(q *query.Query, reg *ads.Registry) (core.Result, error) {
				return baseline.Relaxation(e.g, e.paths, emb, cat, q, reg, baseline.DefaultRelaxation())
			}
		}},
		{"In-Network with reuse", func(cat *query.Catalog) optimizer {
			return func(q *query.Query, reg *ads.Registry) (core.Result, error) {
				return baseline.InNetwork(e.g, e.paths, zones, cat, q, reg)
			}
		}},
	}

	f := &Figure{
		ID:     "fig8",
		Title:  "Comparison with existing approaches (max_cs=32, 5 zones, 128 nodes)",
		XLabel: "queries deployed",
		YLabel: "cumulative cost per unit time",
	}
	series := make([]Series, len(runs))
	err = runParallel(len(runs), cfg.Serial, func(ri int) error {
		r := runs[ri]
		avg, err := cumulativeAveraged(cfg,
			func(w *workload.Workload, _ *rand.Rand) ([]float64, error) {
				costs, _, err := deploySequence(w.Queries, true, r.opt(w.Catalog))
				return costs, err
			},
			func(rng *rand.Rand) (*workload.Workload, error) {
				return workload.Generate(workload.Default(10, cfg.Queries), nodes, rng)
			})
		if err != nil {
			return err
		}
		series[ri] = Series{Name: r.name, X: seqX(cfg.Queries), Y: avg}
		return nil
	})
	if err != nil {
		return nil, err
	}
	f.Series = series
	td, bu := f.Final("Top-Down with reuse"), f.Final("Bottom-Up with reuse")
	relax, innet := f.Final("Relaxation with reuse"), f.Final("In-Network with reuse")
	f.AddNote("Top-Down vs In-Network: %.1f%% savings (paper: ~40%%); Bottom-Up vs In-Network: %.1f%% (paper: ~27%%)",
		100*(1-td/innet), 100*(1-bu/innet))
	f.AddNote("Top-Down vs Relaxation: %.1f%% savings (paper: ~59%%); Bottom-Up vs Relaxation: %.1f%% (paper: ~49%%)",
		100*(1-td/relax), 100*(1-bu/relax))
	return f, nil
}
