package exp

import (
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

// forceParallel raises GOMAXPROCS so the harness actually fans out even on
// a single-core test machine (runParallel falls back to serial at 1).
func forceParallel(t testing.TB) {
	t.Helper()
	old := runtime.GOMAXPROCS(8)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// TestParallelFigureDeterminism asserts the harness contract: a figure
// computed with the parallel harness is bit-identical to the serial run —
// same series order, same X/Y values, same notes.
func TestParallelFigureDeterminism(t *testing.T) {
	forceParallel(t)
	figures := []struct {
		name string
		run  func(Config) (*Figure, error)
	}{
		{"Fig5", Fig5},
		{"Fig7", Fig7},
		{"Fig9", Fig9},
	}
	for _, fig := range figures {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			serialCfg := quickCfg()
			serialCfg.Serial = true
			want, err := fig.run(serialCfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fig.run(quickCfg()) // zero value: parallel
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("parallel %s differs from serial:\nparallel: %+v\nserial:   %+v", fig.name, got, want)
			}
		})
	}
}

func TestRunParallelCoversAllIndices(t *testing.T) {
	forceParallel(t)
	const n = 100
	var hits [n]atomic.Int32
	if err := runParallel(n, false, func(i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times, want 1", i, got)
		}
	}
}

func TestRunParallelPropagatesError(t *testing.T) {
	forceParallel(t)
	sentinel := errors.New("boom")
	for _, serial := range []bool{true, false} {
		err := runParallel(10, serial, func(i int) error {
			if i == 7 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("serial=%v: err = %v, want sentinel", serial, err)
		}
	}
	if err := runParallel(0, false, func(int) error { return sentinel }); err != nil {
		t.Errorf("n=0 invoked fn: %v", err)
	}
}
