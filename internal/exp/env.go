package exp

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"hnp/internal/ads"
	"hnp/internal/core"
	"hnp/internal/hierarchy"
	"hnp/internal/netgraph"
	"hnp/internal/query"
	"hnp/internal/stats"
	"hnp/internal/workload"
)

// env is one experimental setup: a topology, its paths, and lazily-built
// hierarchies per max_cs.
type env struct {
	g     *netgraph.Graph
	paths *netgraph.Paths
	hs    map[int]*hierarchy.Hierarchy
	rng   *rand.Rand
}

func newEnv(n int, seed int64) *env {
	rng := rand.New(rand.NewSource(seed))
	g := netgraph.MustTransitStub(n, rng)
	return &env{
		g:     g,
		paths: g.ShortestPaths(netgraph.MetricCost),
		hs:    map[int]*hierarchy.Hierarchy{},
		rng:   rng,
	}
}

// hier returns (building on first use) the hierarchy for one max_cs.
func (e *env) hier(maxCS int) *hierarchy.Hierarchy {
	if h, ok := e.hs[maxCS]; ok {
		return h
	}
	h := hierarchy.MustBuild(e.g, e.paths, maxCS, e.rng)
	e.hs[maxCS] = h
	return h
}

// optimizer plans one query, considering the registry's ads when non-nil.
type optimizer func(q *query.Query, reg *ads.Registry) (core.Result, error)

// deploySequence deploys queries one at a time: each query is planned
// against the ads of all previously deployed queries (when reuse is on),
// then its operators are advertised. It returns the per-query marginal
// costs and full results.
func deploySequence(qs []*query.Query, reuse bool, opt optimizer) ([]float64, []core.Result, error) {
	var reg *ads.Registry
	if reuse {
		reg = ads.NewRegistry()
	}
	costs := make([]float64, 0, len(qs))
	var results []core.Result
	for _, q := range qs {
		res, err := opt(q, reg)
		if err != nil {
			return nil, nil, err
		}
		costs = append(costs, res.Cost)
		results = append(results, res)
		if reg != nil {
			reg.AdvertisePlan(q, res.Plan)
		}
	}
	return costs, results, nil
}

// runParallel invokes fn(0..n-1), fanning the indices over a
// GOMAXPROCS-bounded worker pool unless serial is set (or only one worker
// is available), and returns the first error any invocation produced.
// Callers must write results into index-addressed slots so serial and
// parallel execution are bit-identical; fn must not touch shared mutable
// state that is not internally synchronized.
func runParallel(n int, serial bool, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if serial || workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// cumulativeAveraged runs fn for each workload seed, collecting per-query
// marginal costs, and returns the workload-averaged cumulative curve.
// Workload repetitions are independent (each gets its own seeded rng), so
// they run through runParallel; rows are indexed by repetition, keeping
// the MeanAcross float accumulation order — and thus the output bits —
// identical to a serial run.
func cumulativeAveraged(cfg Config, fn func(w *workload.Workload, rng *rand.Rand) ([]float64, error),
	gen func(rng *rand.Rand) (*workload.Workload, error)) ([]float64, error) {
	rows := make([][]float64, cfg.Workloads)
	err := runParallel(cfg.Workloads, cfg.Serial, func(wi int) error {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(wi)*1009))
		w, err := gen(rng)
		if err != nil {
			return err
		}
		costs, err := fn(w, rng)
		if err != nil {
			return err
		}
		rows[wi] = stats.Cumulative(costs)
		cfg.markProgress()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return stats.MeanAcross(rows), nil
}

func seqX(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	return xs
}
