package exp

import (
	"math/rand"

	"hnp/internal/ads"
	"hnp/internal/core"
	"hnp/internal/hierarchy"
	"hnp/internal/netgraph"
	"hnp/internal/query"
	"hnp/internal/stats"
	"hnp/internal/workload"
)

// env is one experimental setup: a topology, its paths, and lazily-built
// hierarchies per max_cs.
type env struct {
	g     *netgraph.Graph
	paths *netgraph.Paths
	hs    map[int]*hierarchy.Hierarchy
	rng   *rand.Rand
}

func newEnv(n int, seed int64) *env {
	rng := rand.New(rand.NewSource(seed))
	g := netgraph.MustTransitStub(n, rng)
	return &env{
		g:     g,
		paths: g.ShortestPaths(netgraph.MetricCost),
		hs:    map[int]*hierarchy.Hierarchy{},
		rng:   rng,
	}
}

// hier returns (building on first use) the hierarchy for one max_cs.
func (e *env) hier(maxCS int) *hierarchy.Hierarchy {
	if h, ok := e.hs[maxCS]; ok {
		return h
	}
	h := hierarchy.MustBuild(e.g, e.paths, maxCS, e.rng)
	e.hs[maxCS] = h
	return h
}

// optimizer plans one query, considering the registry's ads when non-nil.
type optimizer func(q *query.Query, reg *ads.Registry) (core.Result, error)

// deploySequence deploys queries one at a time: each query is planned
// against the ads of all previously deployed queries (when reuse is on),
// then its operators are advertised. It returns the per-query marginal
// costs and full results.
func deploySequence(qs []*query.Query, reuse bool, opt optimizer) ([]float64, []core.Result, error) {
	var reg *ads.Registry
	if reuse {
		reg = ads.NewRegistry()
	}
	costs := make([]float64, 0, len(qs))
	var results []core.Result
	for _, q := range qs {
		res, err := opt(q, reg)
		if err != nil {
			return nil, nil, err
		}
		costs = append(costs, res.Cost)
		results = append(results, res)
		if reg != nil {
			reg.AdvertisePlan(q, res.Plan)
		}
	}
	return costs, results, nil
}

// cumulativeAveraged runs fn for each workload seed, collecting per-query
// marginal costs, and returns the workload-averaged cumulative curve.
func cumulativeAveraged(workloads int, baseSeed int64, fn func(w *workload.Workload, rng *rand.Rand) ([]float64, error),
	gen func(rng *rand.Rand) (*workload.Workload, error)) ([]float64, error) {
	var rows [][]float64
	for wi := 0; wi < workloads; wi++ {
		rng := rand.New(rand.NewSource(baseSeed + int64(wi)*1009))
		w, err := gen(rng)
		if err != nil {
			return nil, err
		}
		costs, err := fn(w, rng)
		if err != nil {
			return nil, err
		}
		rows = append(rows, stats.Cumulative(costs))
	}
	return stats.MeanAcross(rows), nil
}

func seqX(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	return xs
}
