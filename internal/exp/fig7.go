package exp

import (
	"math/rand"

	"hnp/internal/ads"
	"hnp/internal/core"
	"hnp/internal/query"
	"hnp/internal/workload"
)

// Fig7 reproduces Figure 7: sub-optimality and the effect of operator
// reuse at max_cs=32 — cumulative cost of the DP optimal versus Top-Down
// and Bottom-Up, each with and without reuse. The paper reports ~27%/30%
// savings from reuse and 10%/34% average sub-optimality for
// Top-Down/Bottom-Up.
func Fig7(cfg Config) (*Figure, error) {
	cfg.fig = "fig7"
	const (
		nodes = 128
		maxCS = 32
	)
	e := newEnv(nodes, cfg.Seed)
	h := e.hier(maxCS)

	type variant struct {
		name  string
		reuse bool
		opt   func(cat *query.Catalog) optimizer
	}
	variants := []variant{
		{"Top-Down without reuse", false, func(cat *query.Catalog) optimizer {
			return func(q *query.Query, reg *ads.Registry) (core.Result, error) { return core.TopDown(h, cat, q, reg) }
		}},
		{"Top-Down with reuse", true, func(cat *query.Catalog) optimizer {
			return func(q *query.Query, reg *ads.Registry) (core.Result, error) { return core.TopDown(h, cat, q, reg) }
		}},
		{"Bottom-Up without reuse", false, func(cat *query.Catalog) optimizer {
			return func(q *query.Query, reg *ads.Registry) (core.Result, error) { return core.BottomUp(h, cat, q, reg) }
		}},
		{"Bottom-Up with reuse", true, func(cat *query.Catalog) optimizer {
			return func(q *query.Query, reg *ads.Registry) (core.Result, error) { return core.BottomUp(h, cat, q, reg) }
		}},
		{"Optimal", true, func(cat *query.Catalog) optimizer {
			return func(q *query.Query, reg *ads.Registry) (core.Result, error) {
				return core.Optimal(e.g, e.paths, cat, q, reg)
			}
		}},
	}

	f := &Figure{
		ID:     "fig7",
		Title:  "Sub-optimality and effect of reuse (max_cs=32, 128 nodes)",
		XLabel: "queries deployed",
		YLabel: "cumulative cost per unit time",
	}
	series := make([]Series, len(variants))
	err := runParallel(len(variants), cfg.Serial, func(vi int) error {
		v := variants[vi]
		avg, err := cumulativeAveraged(cfg,
			func(w *workload.Workload, _ *rand.Rand) ([]float64, error) {
				costs, _, err := deploySequence(w.Queries, v.reuse, v.opt(w.Catalog))
				return costs, err
			},
			func(rng *rand.Rand) (*workload.Workload, error) {
				return workload.Generate(workload.Default(10, cfg.Queries), nodes, rng)
			})
		if err != nil {
			return err
		}
		series[vi] = Series{Name: v.name, X: seqX(cfg.Queries), Y: avg}
		return nil
	})
	if err != nil {
		return nil, err
	}
	f.Series = series

	opt := f.Final("Optimal")
	tdR, tdN := f.Final("Top-Down with reuse"), f.Final("Top-Down without reuse")
	buR, buN := f.Final("Bottom-Up with reuse"), f.Final("Bottom-Up without reuse")
	f.AddNote("reuse saves Top-Down %.1f%% (paper: 27%%), Bottom-Up %.1f%% (paper: 30%%)",
		100*(1-tdR/tdN), 100*(1-buR/buN))
	f.AddNote("sub-optimality with reuse: Top-Down %.1f%% (paper: 10%%), Bottom-Up %.1f%% (paper: 34%%)",
		100*(tdR/opt-1), 100*(buR/opt-1))
	f.AddNote("Top-Down with reuse beats Bottom-Up with reuse by %.1f%% (paper: ~19%%)",
		100*(1-tdR/buR))
	return f, nil
}
