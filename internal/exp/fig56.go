package exp

import (
	"fmt"
	"math/rand"

	"hnp/internal/ads"
	"hnp/internal/core"
	"hnp/internal/hierarchy"
	"hnp/internal/query"
	"hnp/internal/workload"
)

// clusterSizes is the max_cs sweep of Figures 5 and 6.
var clusterSizes = []int{2, 4, 8, 16, 32, 64}

// fig56 runs the cluster-size tuning experiment for one algorithm: a
// 128-node network with 100 stream sources, queries with 2-5 joins,
// cumulative deployed cost (averaged over cfg.Workloads random workloads)
// for each max_cs.
func fig56(cfg Config, id, algo string,
	run func(h *hierarchy.Hierarchy, cat *query.Catalog, q *query.Query, reg *ads.Registry) (core.Result, error)) (*Figure, error) {
	cfg.fig = id
	const nodes = 128
	e := newEnv(nodes, cfg.Seed)
	f := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("%s: cost vs max_cs (128 nodes, 10 streams, %d queries x %d workloads)", algo, cfg.Queries, cfg.Workloads),
		XLabel: "queries deployed",
		YLabel: "cumulative cost per unit time",
	}
	// Hierarchies must be prebuilt serially in sweep order: lazy builds
	// consume the env's shared rng, so building them inside a parallel
	// sweep would change (and unorder) the constructions.
	for _, cs := range clusterSizes {
		e.hier(cs)
	}
	series := make([]Series, len(clusterSizes))
	err := runParallel(len(clusterSizes), cfg.Serial, func(ci int) error {
		cs := clusterSizes[ci]
		h := e.hier(cs)
		avg, err := cumulativeAveraged(cfg,
			func(w *workload.Workload, _ *rand.Rand) ([]float64, error) {
				costs, _, err := deploySequence(w.Queries, true,
					func(q *query.Query, reg *ads.Registry) (core.Result, error) {
						return run(h, w.Catalog, q, reg)
					})
				return costs, err
			},
			func(rng *rand.Rand) (*workload.Workload, error) {
				return workload.Generate(workload.Default(10, cfg.Queries), nodes, rng)
			})
		if err != nil {
			return err
		}
		series[ci] = Series{
			Name: fmt.Sprintf("max_cs=%d", cs),
			X:    seqX(cfg.Queries),
			Y:    avg,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	f.Series = series
	small, large := f.Final("max_cs=8"), f.Final("max_cs=64")
	f.AddNote("max_cs=64 vs max_cs=8: %.1f%% cost change (paper fig5: 21%% cheaper for Bottom-Up; fig6: flat above 4)",
		100*(1-large/small))
	return f, nil
}

// Fig5 reproduces Figure 5: the Bottom-Up algorithm's cumulative deployed
// cost for max_cs in {2..64}; larger clusters mean fewer levels, less
// approximation, lower cost.
func Fig5(cfg Config) (*Figure, error) {
	return fig56(cfg, "fig5", "Bottom-Up", core.BottomUp)
}

// Fig6 reproduces Figure 6: the same sweep for Top-Down; because the top
// level always considers all operator orderings, costs flatten once
// max_cs exceeds ~4.
func Fig6(cfg Config) (*Figure, error) {
	return fig56(cfg, "fig6", "Top-Down", core.TopDown)
}
