package exp

import (
	"math/rand"

	"hnp/internal/ads"
	"hnp/internal/core"
	costpkg "hnp/internal/cost"
	"hnp/internal/netgraph"
	"hnp/internal/query"
	"hnp/internal/stats"
	"hnp/internal/workload"
)

// Fig9 reproduces Figure 9: scalability with network size — the average
// number of deployments (plans) considered per query for Top-Down and
// Bottom-Up at max_cs=32 on transit-stub networks of growing size,
// against the exhaustive search space (computed with Lemma 1, as in the
// paper) and the analytical worst-case bound β·O_exhaustive (Theorems 2
// and 4). Queries join 4 streams from a pool of 100 sources.
func Fig9(cfg Config) (*Figure, error) {
	cfg.fig = "fig9"
	sizes := cfg.Fig9Sizes
	if len(sizes) == 0 {
		sizes = []int{128, 256, 512, 1024}
	}
	const (
		maxCS   = 32
		queries = 10
		streams = 10
	)
	f := &Figure{
		ID:     "fig9",
		Title:  "Scalability with network size (4-stream queries, max_cs=32)",
		XLabel: "network size",
		YLabel: "plans considered per query (log-scale quantity)",
	}
	// Each network size builds its own env and rng (seeded from the size),
	// so the sweep iterations share nothing and run through runParallel,
	// writing into index-addressed slots.
	tdY := make([]float64, len(sizes))
	buY := make([]float64, len(sizes))
	exY := make([]float64, len(sizes))
	boundY := make([]float64, len(sizes))
	xs := make([]float64, len(sizes))
	err := runParallel(len(sizes), cfg.Serial, func(i int) error {
		n := sizes[i]
		xs[i] = float64(n)
		e := newEnv(n, cfg.Seed+int64(n))
		h := e.hier(maxCS)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)*7))
		wcfg := workload.Default(streams, queries)
		wcfg.MinSources, wcfg.MaxSources = 4, 4
		w, err := workload.Generate(wcfg, n, rng)
		if err != nil {
			return err
		}
		var tds, bus []float64
		for _, q := range w.Queries {
			td, err := core.TopDown(h, w.Catalog, q, (*ads.Registry)(nil))
			if err != nil {
				return err
			}
			bu, err := core.BottomUp(h, w.Catalog, q, nil)
			if err != nil {
				return err
			}
			tds = append(tds, td.PlansConsidered)
			bus = append(bus, bu.PlansConsidered)
		}
		tdY[i] = stats.Mean(tds)
		buY[i] = stats.Mean(bus)
		exY[i] = costpkg.Lemma1(4, n)
		boundY[i] = costpkg.HierarchicalSpaceBound(4, n, maxCS, h.Height())
		cfg.markProgress()
		return nil
	})
	if err != nil {
		return nil, err
	}
	f.Series = []Series{
		{Name: "Top-Down", X: xs, Y: tdY},
		{Name: "Bottom-Up", X: xs, Y: buY},
		{Name: "Exhaustive (Lemma 1)", X: xs, Y: exY},
		{Name: "Analytical bound", X: xs, Y: boundY},
	}
	last := len(sizes) - 1
	f.AddNote("search-space reduction at %d nodes: Top-Down %.4f%%, Bottom-Up %.4f%% of exhaustive (paper: both ≥99%% reduction)",
		sizes[last], 100*tdY[last]/exY[last], 100*buY[last]/exY[last])
	f.AddNote("uniform sources: Bottom-Up considers %.0f%% fewer plans than Top-Down",
		100*(1-stats.Mean(buY)/stats.Mean(tdY)))

	// Bottom-Up's search-space advantage comes from splitting queries
	// early, which requires query sources to cluster regionally (as in
	// the paper's workloads): measure it on a regional workload at the
	// first network size.
	tdReg, buReg, err := fig9Regional(cfg, sizes[0], maxCS, queries)
	if err != nil {
		return nil, err
	}
	f.AddNote("regional sources (%d nodes): Bottom-Up considers %.0f%% fewer plans than Top-Down (paper: ~45%% less)",
		sizes[0], 100*(1-buReg/tdReg))
	return f, nil
}

// fig9Regional builds a workload whose stream sources all sit inside one
// level-1 partition (queries over a regional data center) and returns the
// mean plans considered by Top-Down and Bottom-Up.
func fig9Regional(cfg Config, n, maxCS, queries int) (td, bu float64, err error) {
	e := newEnv(n, cfg.Seed+999)
	h := e.hier(maxCS)
	rng := rand.New(rand.NewSource(cfg.Seed + 991))
	region := h.LevelAt(1).Clusters[rng.Intn(len(h.LevelAt(1).Clusters))]
	members := region.Members

	cat := query.NewCatalog(0.01)
	var ids []query.StreamID
	for i := 0; i < 10; i++ {
		src := members[rng.Intn(len(members))]
		ids = append(ids, cat.Add("s", 1+rng.Float64()*99, src))
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			cat.SetSelectivity(ids[i], ids[j], 0.001+rng.Float64()*0.019)
		}
	}
	var tds, bus []float64
	for qi := 0; qi < queries; qi++ {
		perm := rng.Perm(len(ids))
		srcs := []query.StreamID{ids[perm[0]], ids[perm[1]], ids[perm[2]], ids[perm[3]]}
		q, err := query.NewQuery(qi, srcs, netgraph.NodeID(rng.Intn(n)))
		if err != nil {
			return 0, 0, err
		}
		tdRes, err := core.TopDown(h, cat, q, nil)
		if err != nil {
			return 0, 0, err
		}
		buRes, err := core.BottomUp(h, cat, q, nil)
		if err != nil {
			return 0, 0, err
		}
		tds = append(tds, tdRes.PlansConsidered)
		bus = append(bus, buRes.PlansConsidered)
	}
	return stats.Mean(tds), stats.Mean(bus), nil
}
