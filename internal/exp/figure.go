// Package exp contains one harness per table/figure of the paper's
// evaluation section. Each harness builds the experiment's topology and
// workload, runs every algorithm the figure compares, and returns the
// same series the paper plots, ready to print or benchmark.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Series is one plotted line: a name and aligned X/Y points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a reproduced table/figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes carries derived headline numbers (e.g. "top-down 10.3%
	// sub-optimal") for EXPERIMENTS.md.
	Notes []string
}

// AddNote appends a formatted headline observation.
func (f *Figure) AddNote(format string, args ...interface{}) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// FindSeries returns the series with the given name, or nil.
func (f *Figure) FindSeries(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// Final returns the last Y value of the named series (the cumulative
// totals most figures are summarized by). It panics on unknown names so
// experiment code fails loudly.
func (f *Figure) Final(name string) float64 {
	s := f.FindSeries(name)
	if s == nil || len(s.Y) == 0 {
		panic(fmt.Sprintf("exp: no series %q in %s", name, f.ID))
	}
	return s.Y[len(s.Y)-1]
}

// Render prints the figure as an aligned text table: one X column
// followed by one column per series, then the notes.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s ===\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	// Header.
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	widths := make([]int, len(cols))
	rows := [][]string{cols}
	x := f.Series[0].X
	for i := range x {
		row := []string{trimNum(x[i])}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, trimNum(s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		var b strings.Builder
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat(" ", widths[c]-len(cell)))
			b.WriteString(cell)
		}
		fmt.Fprintln(w, b.String())
		if ri == 0 {
			fmt.Fprintln(w, strings.Repeat("-", lineWidth(widths)))
		}
	}
	fmt.Fprintf(w, "(y: %s)\n", f.YLabel)
	for _, n := range f.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func lineWidth(widths []int) int {
	total := 0
	for i, wd := range widths {
		if i > 0 {
			total += 2
		}
		total += wd
	}
	return total
}

func trimNum(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e7 || v < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// RenderCSV writes the figure as CSV: a header row with the X label and
// series names, one row per X value, and trailing comment lines with the
// notes. Suitable for plotting tools.
func (f *Figure) RenderCSV(w io.Writer) {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	if len(f.Series) > 0 {
		for i := range f.Series[0].X {
			row := []string{fmt.Sprintf("%g", f.Series[0].X[i])}
			for _, s := range f.Series {
				if i < len(s.Y) {
					row = append(row, fmt.Sprintf("%g", s.Y[i]))
				} else {
					row = append(row, "")
				}
			}
			fmt.Fprintln(w, strings.Join(row, ","))
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}
