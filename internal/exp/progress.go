package exp

import "hnp/internal/obs"

// Figure harnesses publish coarse progress on the process-wide
// obs.Default registry (figures are process-level activities, unlike
// per-System planning telemetry): each completed unit of a figure's sweep
// — a workload repetition, a network size, a series — increments
// "exp.<fig>.units_done". Watching that counter (e.g. via smq
// -debug-addr) shows how far a long figure run has progressed. Recording
// is off unless telemetry is enabled.

// markProgress records one completed sweep unit for the running figure.
// Safe from the parallel harness; a no-op outside a figure run or with
// telemetry off.
func (c Config) markProgress() {
	if c.fig == "" || !obs.On() {
		return
	}
	obs.Default.Counter("exp." + c.fig + ".units_done").Inc()
}
