package exp

import (
	"bytes"
	"strings"
	"testing"
)

// quickCfg shrinks the experiments for test speed while keeping their
// qualitative shape.
func quickCfg() Config {
	return Config{Seed: 42, Workloads: 2, Queries: 6, Fig9Sizes: []int{64, 128}}
}

func TestFig2(t *testing.T) {
	f, err := Fig2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 3 {
		t.Fatalf("series = %d", len(f.Series))
	}
	ours := f.Final("Our approach (Top-Down)")
	if ours <= 0 {
		t.Fatal("non-positive cost")
	}
	// Joint optimization must beat both phased approaches on this
	// workload (the paper's >50% claim is checked at full scale in
	// EXPERIMENTS.md; here we assert the ordering).
	if ours >= f.Final("Relaxation") {
		t.Errorf("ours %g not better than Relaxation %g", ours, f.Final("Relaxation"))
	}
	if ours >= f.Final("Plan-then-deploy")*1.02 {
		t.Errorf("ours %g worse than plan-then-deploy %g", ours, f.Final("Plan-then-deploy"))
	}
}

// tuneCfg is large enough for the cluster-size trends of figs 5/6 to be
// statistically visible (they run in ~1s each).
func tuneCfg() Config {
	return Config{Seed: 42, Workloads: 5, Queries: 20}
}

func TestFig5CostDecreasesWithClusterSize(t *testing.T) {
	f, err := Fig5(tuneCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != len(clusterSizes) {
		t.Fatalf("series = %d", len(f.Series))
	}
	// Bigger clusters must not be dramatically worse; max_cs=64 should
	// beat max_cs=2 (fewest levels vs most approximation).
	if f.Final("max_cs=64") >= f.Final("max_cs=2") {
		t.Errorf("max_cs=64 (%g) not cheaper than max_cs=2 (%g)",
			f.Final("max_cs=64"), f.Final("max_cs=2"))
	}
	// Cumulative curves must be non-decreasing.
	for _, s := range f.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1]-1e-9 {
				t.Fatalf("series %s not cumulative at %d", s.Name, i)
			}
		}
	}
}

func TestFig6TopDownFlatAboveFour(t *testing.T) {
	f, err := Fig6(tuneCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: small max_cs means many levels and poor approximations; at
	// test scale we assert the robust end of that trend — max_cs=2 is the
	// most expensive configuration. (The flatness of large max_cs values
	// is validated at full scale; see EXPERIMENTS.md.)
	worst := f.Final("max_cs=2")
	for _, name := range []string{"max_cs=16", "max_cs=32", "max_cs=64"} {
		if f.Final(name) > worst*1.02 {
			t.Errorf("%s (%g) costlier than max_cs=2 (%g)", name, f.Final(name), worst)
		}
	}
}

func TestFig7Ordering(t *testing.T) {
	f, err := Fig7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	opt := f.Final("Optimal")
	tdR := f.Final("Top-Down with reuse")
	tdN := f.Final("Top-Down without reuse")
	buR := f.Final("Bottom-Up with reuse")
	buN := f.Final("Bottom-Up without reuse")
	if opt <= 0 {
		t.Fatal("bad optimal")
	}
	// Reuse helps both algorithms in aggregate.
	if tdR > tdN*1.001 {
		t.Errorf("reuse hurt Top-Down: %g vs %g", tdR, tdN)
	}
	if buR > buN*1.05 {
		t.Errorf("reuse hurt Bottom-Up: %g vs %g", buR, buN)
	}
	// Neither heuristic with reuse can beat the optimal with reuse by a
	// meaningful margin... but reuse-ordering effects can make heuristics
	// edge out the per-query optimal occasionally; require sanity only.
	if tdR < opt*0.8 || buR < opt*0.8 {
		t.Errorf("heuristics suspiciously beat optimal: td=%g bu=%g opt=%g", tdR, buR, opt)
	}
	// Top-Down ranks at or below Bottom-Up.
	if tdR > buR*1.15 {
		t.Errorf("Top-Down (%g) much worse than Bottom-Up (%g)", tdR, buR)
	}
}

func TestFig8Ordering(t *testing.T) {
	f, err := Fig8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	td := f.Final("Top-Down with reuse")
	if td >= f.Final("Relaxation with reuse") {
		t.Errorf("Top-Down %g not cheaper than Relaxation %g", td, f.Final("Relaxation with reuse"))
	}
	if td >= f.Final("In-Network with reuse")*1.05 {
		t.Errorf("Top-Down %g not competitive with In-Network %g", td, f.Final("In-Network with reuse"))
	}
}

func TestFig9SearchSpace(t *testing.T) {
	f, err := Fig9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	ex := f.FindSeries("Exhaustive (Lemma 1)")
	td := f.FindSeries("Top-Down")
	bu := f.FindSeries("Bottom-Up")
	bound := f.FindSeries("Analytical bound")
	for i := range ex.X {
		if td.Y[i] >= ex.Y[i]*0.01 {
			t.Errorf("n=%g: top-down %g not ≥99%% below exhaustive %g", ex.X[i], td.Y[i], ex.Y[i])
		}
		if bu.Y[i] > td.Y[i]*1.001 {
			t.Errorf("n=%g: bottom-up %g above top-down %g", ex.X[i], bu.Y[i], td.Y[i])
		}
		if td.Y[i] > bound.Y[i] {
			t.Errorf("n=%g: top-down %g exceeds analytical bound %g", ex.X[i], td.Y[i], bound.Y[i])
		}
	}
}

func TestFig10DeploymentTimes(t *testing.T) {
	f, err := Fig10(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 {
		t.Fatalf("series = %d", len(f.Series))
	}
	// Bottom-Up must be faster than Top-Down at matching cluster size.
	for _, cs := range []string{"4", "8"} {
		bu := f.Final("Bottom-Up (cluster size=" + cs + ")")
		td := f.Final("Top-Down (cluster size=" + cs + ")")
		if bu >= td {
			t.Errorf("cluster size %s: bottom-up %g not faster than top-down %g", cs, bu, td)
		}
	}
	// Regression: the headline note classifies series by an explicit
	// algorithm tag, not by name prefix; since Bottom-Up is faster here,
	// the tagged sums must report a positive reduction.
	found := false
	for _, n := range f.Notes {
		if strings.Contains(n, "lower than Top-Down") {
			found = true
			// A swapped classification would negate the reduction.
			if strings.Contains(n, "is -") {
				t.Errorf("headline note misclassified series: %q", n)
			}
		}
	}
	if !found {
		t.Error("missing Bottom-Up vs Top-Down headline note")
	}
}

func TestFig11CostsAndRuntimeCrossCheck(t *testing.T) {
	f, err := Fig11(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	td8 := f.Final("Top-Down (cluster size=8)")
	bu8 := f.Final("Bottom-Up (cluster size=8)")
	if td8 > bu8*1.05 {
		t.Errorf("top-down %g worse than bottom-up %g", td8, bu8)
	}
	found := false
	for _, n := range f.Notes {
		if strings.Contains(n, "runtime cross-check") {
			found = true
			// Regression: a zero analytic total used to print a NaN ratio.
			if strings.Contains(n, "NaN") || strings.Contains(n, "Inf") {
				t.Errorf("cross-check note has non-finite ratio: %q", n)
			}
		}
	}
	if !found {
		t.Error("missing runtime cross-check note")
	}
}

func TestRenderProducesTable(t *testing.T) {
	f, err := Fig9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	f.Render(&buf)
	out := buf.String()
	for _, want := range []string{"fig9", "Top-Down", "Exhaustive (Lemma 1)", "note:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFinalPanicsOnUnknownSeries(t *testing.T) {
	f := &Figure{ID: "x"}
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown series")
		}
	}()
	f.Final("nope")
}

func TestRenderCSV(t *testing.T) {
	f := &Figure{
		ID: "x", XLabel: "n",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "b", X: []float64{1, 2}, Y: []float64{30}},
		},
		Notes: []string{"hello"},
	}
	var buf bytes.Buffer
	f.RenderCSV(&buf)
	got := buf.String()
	want := "n,a,b\n1,10,30\n2,20,\n# hello\n"
	if got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
}

func TestRenderEmptyFigure(t *testing.T) {
	var buf bytes.Buffer
	(&Figure{ID: "empty", Title: "t"}).Render(&buf)
	if !strings.Contains(buf.String(), "no data") {
		t.Errorf("empty render = %q", buf.String())
	}
}
