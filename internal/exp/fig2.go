package exp

import (
	"math/rand"

	"hnp/internal/ads"
	"hnp/internal/baseline"
	"hnp/internal/core"
	"hnp/internal/query"
	"hnp/internal/stats"
	"hnp/internal/workload"
)

// Config controls experiment scale; DefaultConfig matches the paper, and
// tests shrink it for speed.
type Config struct {
	// Seed drives all randomness; identical configs reproduce identical
	// numbers.
	Seed int64
	// Workloads is how many random workloads figures 5-8 average over
	// (paper: 10).
	Workloads int
	// Queries per workload (paper: 20 for figs 5-8).
	Queries int
	// Fig9Sizes overrides the network-size sweep of Figure 9 (nil = the
	// paper's 128..1024).
	Fig9Sizes []int
	// Serial disables the parallel harness: workload repetitions and
	// per-series sweeps run on one goroutine. Output is bit-identical
	// either way; the zero value (parallel) is the default.
	Serial bool

	// fig names the figure currently running; set by each Fig entry point
	// so shared harness code can label its progress telemetry.
	fig string
}

// DefaultConfig reproduces the paper's experiment scale.
func DefaultConfig() Config {
	return Config{Seed: 42, Workloads: 10, Queries: 20}
}

// Fig2 reproduces Figure 2: total communication cost of 10 queries over 5
// stream sources each on a 64-node GT-ITM network, comparing two "plan,
// then deploy" approaches (the Relaxation heuristic and an optimal
// placement of the selectivity-chosen plan, both with operator reuse)
// against our approach (Top-Down, which considers plans and deployments
// simultaneously). The paper reports >50% savings for the joint approach.
func Fig2(cfg Config) (*Figure, error) {
	cfg.fig = "fig2"
	const (
		nodes   = 64
		queries = 10
		maxCS   = 16
	)
	e := newEnv(nodes, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	wcfg := workload.Default(10, queries)
	wcfg.MinSources, wcfg.MaxSources = 5, 5 // 5 stream sources per query
	w, err := workload.Generate(wcfg, nodes, rng)
	if err != nil {
		return nil, err
	}
	// The paper computed its 3-D cost space with 4 iterations; mirror that
	// modest embedding budget.
	emb := baseline.Embed(e.g, e.paths, 4, rng)
	h := e.hier(maxCS)

	runs := []struct {
		name string
		opt  optimizer
	}{
		{"Relaxation", func(q *query.Query, reg *ads.Registry) (core.Result, error) {
			return baseline.Relaxation(e.g, e.paths, emb, w.Catalog, q, reg, baseline.DefaultRelaxation())
		}},
		{"Plan-then-deploy", func(q *query.Query, reg *ads.Registry) (core.Result, error) {
			return baseline.PlanThenDeploy(e.g, e.paths, w.Catalog, q, reg)
		}},
		{"Our approach (Top-Down)", func(q *query.Query, reg *ads.Registry) (core.Result, error) {
			return core.TopDown(h, w.Catalog, q, reg)
		}},
	}

	f := &Figure{
		ID:     "fig2",
		Title:  "Joint planning+deployment vs plan-then-deploy (10 queries x 5 sources, 64 nodes)",
		XLabel: "queries deployed",
		YLabel: "cumulative cost per unit time",
	}
	for _, r := range runs {
		costs, _, err := deploySequence(w.Queries, true, r.opt)
		if err != nil {
			return nil, err
		}
		f.Series = append(f.Series, Series{Name: r.name, X: seqX(queries), Y: stats.Cumulative(costs)})
		cfg.markProgress()
	}
	relax, ptd, ours := f.Final("Relaxation"), f.Final("Plan-then-deploy"), f.Final("Our approach (Top-Down)")
	f.AddNote("savings vs Relaxation: %.1f%% (paper: >50%%)", 100*(1-ours/relax))
	f.AddNote("savings vs plan-then-deploy: %.1f%% (paper: >50%%)", 100*(1-ours/ptd))
	return f, nil
}
