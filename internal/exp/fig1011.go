package exp

import (
	"math/rand"

	"hnp/internal/ads"
	"hnp/internal/core"
	"hnp/internal/hierarchy"
	"hnp/internal/iflow"
	"hnp/internal/netgraph"
	"hnp/internal/query"
	"hnp/internal/stats"
	"hnp/internal/workload"
)

// testbed reproduces the paper's Emulab setup in simulation: a 32-node
// GT-ITM topology with 1-60 ms inter-node delays, 25 queries over 8
// stream sources with 1-4 joins per query.
type testbed struct {
	g     *netgraph.Graph
	paths *netgraph.Paths
	w     *workload.Workload
	hiers map[int]*hierarchy.Hierarchy
}

func newTestbed(seed int64) (*testbed, error) {
	rng := rand.New(rand.NewSource(seed))
	g := netgraph.MustTransitStub(32, rng)
	paths := g.ShortestPaths(netgraph.MetricCost)
	wcfg := workload.Default(8, 25)
	wcfg.MinSources, wcfg.MaxSources = 2, 5 // 1-4 joins per query
	w, err := workload.Generate(wcfg, 32, rng)
	if err != nil {
		return nil, err
	}
	tb := &testbed{g: g, paths: paths, w: w, hiers: map[int]*hierarchy.Hierarchy{}}
	for _, cs := range []int{4, 8} {
		h, err := hierarchy.Build(g, paths, cs, rng)
		if err != nil {
			return nil, err
		}
		tb.hiers[cs] = h
	}
	return tb, nil
}

// Fig10 reproduces Figure 10: average query deployment time (seconds of
// simulated protocol latency plus planning CPU) versus query size for
// Top-Down and Bottom-Up at cluster sizes 4 and 8 on the Emulab-substitute
// testbed. The paper reports Bottom-Up deploying ~70% faster.
func Fig10(cfg Config) (*Figure, error) {
	cfg.fig = "fig10"
	tb, err := newTestbed(cfg.Seed)
	if err != nil {
		return nil, err
	}
	rt := iflow.New(tb.g, iflow.DefaultConfig(), cfg.Seed)

	type algo struct {
		name     string
		cs       int
		bottomUp bool // explicit algorithm tag; never inferred from the name
		run      func(h *hierarchy.Hierarchy, q *query.Query, reg *ads.Registry) (core.Result, error)
	}
	algos := []algo{
		{"Bottom-Up (cluster size=4)", 4, true, func(h *hierarchy.Hierarchy, q *query.Query, reg *ads.Registry) (core.Result, error) {
			return core.BottomUp(h, tb.w.Catalog, q, reg)
		}},
		{"Bottom-Up (cluster size=8)", 8, true, func(h *hierarchy.Hierarchy, q *query.Query, reg *ads.Registry) (core.Result, error) {
			return core.BottomUp(h, tb.w.Catalog, q, reg)
		}},
		{"Top-Down (cluster size=4)", 4, false, func(h *hierarchy.Hierarchy, q *query.Query, reg *ads.Registry) (core.Result, error) {
			return core.TopDown(h, tb.w.Catalog, q, reg)
		}},
		{"Top-Down (cluster size=8)", 8, false, func(h *hierarchy.Hierarchy, q *query.Query, reg *ads.Registry) (core.Result, error) {
			return core.TopDown(h, tb.w.Catalog, q, reg)
		}},
	}

	sizes := []int{2, 3, 4, 5}
	f := &Figure{
		ID:     "fig10",
		Title:  "Query deployment time vs query size (32-node testbed)",
		XLabel: "query size (number of streams)",
		YLabel: "deployment time (seconds)",
	}
	xs := make([]float64, len(sizes))
	for i, s := range sizes {
		xs[i] = float64(s)
	}
	// Headline accumulators ride along the algos loop, keyed by the
	// explicit bottomUp tag: the old post-hoc classification by series-name
	// first letter silently miscounted any renamed series.
	var buSum, tdSum float64
	for _, a := range algos {
		h := tb.hiers[a.cs]
		ys := make([]float64, len(sizes))
		for si, k := range sizes {
			var times []float64
			for _, q := range tb.w.Queries {
				if q.K() != k {
					continue
				}
				res, err := a.run(h, q, nil)
				if err != nil {
					return nil, err
				}
				times = append(times, rt.DeployTime(res.Trace, q.Sink))
			}
			ys[si] = stats.Mean(times)
		}
		f.Series = append(f.Series, Series{Name: a.name, X: xs, Y: ys})
		cfg.markProgress()
		if a.bottomUp {
			buSum += stats.Mean(ys)
		} else {
			tdSum += stats.Mean(ys)
		}
	}
	if tdSum > 0 {
		f.AddNote("Bottom-Up deployment time is %.0f%% lower than Top-Down (paper: ~70%%)",
			100*(1-buSum/tdSum))
	}
	return f, nil
}

// Fig11 reproduces Figure 11: cumulative deployed cost of 25 queries on
// the testbed for both algorithms at cluster sizes 4 and 8; Top-Down
// yields cheaper deployments. It also cross-checks the analytic cost
// model by running all deployed plans in the IFLOW runtime and comparing
// measured and predicted cost rates.
func Fig11(cfg Config) (*Figure, error) {
	cfg.fig = "fig11"
	tb, err := newTestbed(cfg.Seed)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     "fig11",
		Title:  "Cumulative deployed cost, 25 queries (32-node testbed)",
		XLabel: "queries deployed",
		YLabel: "cumulative cost per unit time",
	}
	type algo struct {
		name string
		cs   int
		td   bool
	}
	algos := []algo{
		{"Bottom-Up (cluster size=4)", 4, false},
		{"Bottom-Up (cluster size=8)", 8, false},
		{"Top-Down (cluster size=4)", 4, true},
		{"Top-Down (cluster size=8)", 8, true},
	}
	keep := map[string][]core.Result{}
	for _, a := range algos {
		h := tb.hiers[a.cs]
		costs, results, err := deploySequence(tb.w.Queries, true,
			func(q *query.Query, reg *ads.Registry) (core.Result, error) {
				if a.td {
					return core.TopDown(h, tb.w.Catalog, q, reg)
				}
				return core.BottomUp(h, tb.w.Catalog, q, reg)
			})
		if err != nil {
			return nil, err
		}
		keep[a.name] = results
		f.Series = append(f.Series, Series{Name: a.name, X: seqX(len(costs)), Y: stats.Cumulative(costs)})
		cfg.markProgress()
	}
	td4, bu4 := f.Final("Top-Down (cluster size=4)"), f.Final("Bottom-Up (cluster size=4)")
	td8, bu8 := f.Final("Top-Down (cluster size=8)"), f.Final("Bottom-Up (cluster size=8)")
	f.AddNote("Top-Down vs Bottom-Up: %.1f%% cheaper at cluster size 4, %.1f%% at 8 (paper: Top-Down lower)",
		100*(1-td4/bu4), 100*(1-td8/bu8))

	// Runtime cross-check: deploy the Top-Down(8) plans in IFLOW for 30
	// simulated seconds and compare measured vs analytic cost rate. The
	// engine's empirical pairwise selectivity is 2·Window/KeyDomain; pick
	// KeyDomain so it matches the workload's mean selectivity, then scale
	// the analytic total to tuple-size units.
	icfg := iflow.DefaultConfig()
	meanSel := 0.0105 // workload.Default: uniform in [0.001, 0.02]
	icfg.KeyDomain = int64(2 * icfg.Window / meanSel)
	rt := iflow.New(tb.g, icfg, cfg.Seed+5)
	horizon := 30.0
	deployed := 0
	analytic := 0.0
	for i, res := range keep["Top-Down (cluster size=8)"] {
		q := tb.w.Queries[i]
		if err := rt.Deploy(q, res.Plan, tb.w.Catalog, horizon); err != nil {
			continue // reused plan fragments may be gone if a deploy failed
		}
		deployed++
		analytic += res.Cost
	}
	rt.RunFor(horizon)
	measured := rt.CostRate() / icfg.TupleSize
	if analytic > 0 {
		f.AddNote("runtime cross-check: %d/%d queries executed, measured cost rate %.3g vs analytic %.3g (ratio %.2f)",
			deployed, len(tb.w.Queries), measured, analytic, measured/analytic)
	} else {
		// No query deployed (or all plans were free): a ratio would be
		// NaN/Inf, so report the raw rates without one.
		f.AddNote("runtime cross-check: %d/%d queries executed, measured cost rate %.3g vs analytic %.3g (no ratio: zero analytic cost)",
			deployed, len(tb.w.Queries), measured, analytic)
	}
	return f, nil
}
