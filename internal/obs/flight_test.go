package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderSnapshotOrder(t *testing.T) {
	tr := NewTracer(4)
	if tr.On() {
		t.Fatal("new tracer must start disarmed")
	}
	if id := tr.Emit(Event{Kind: KindPlanStarted}); id != 0 {
		t.Fatalf("disarmed Emit returned id %d, want 0", id)
	}
	tr.Enable()
	for i := 0; i < 3; i++ {
		tr.Emit(Event{Kind: KindGateDecision, Query: i, Node: NoID})
	}
	snap := tr.Snapshot()
	if len(snap) != 3 || tr.Len() != 3 || tr.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d snapshot=%d, want 3/0/3", tr.Len(), tr.Dropped(), len(snap))
	}
	for i, e := range snap {
		if e.ID != uint64(i+1) || e.Query != i {
			t.Fatalf("snapshot[%d] = id %d q %d, want id %d q %d", i, e.ID, e.Query, i+1, i)
		}
	}
}

func TestFlightRecorderRingWrapDropsOldest(t *testing.T) {
	tr := NewTracer(4)
	tr.Enable()
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: KindGateDecision, Query: i, Node: NoID})
	}
	if tr.Len() != 4 || tr.Dropped() != 6 {
		t.Fatalf("len=%d dropped=%d, want 4/6", tr.Len(), tr.Dropped())
	}
	snap := tr.Snapshot()
	for i, e := range snap {
		if want := uint64(7 + i); e.ID != want {
			t.Fatalf("snapshot[%d].ID = %d, want %d (oldest survivors first)", i, e.ID, want)
		}
	}
}

func TestFlightJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	tr.Enable()
	a := tr.Emit(Event{Kind: KindCalibrationWindow, Trace: QueryTrace(3), Query: 3, Node: NoID, VTime: 12.5, Value: 0.4})
	b := tr.Emit(Event{Kind: KindGateDecision, Parent: a, Trace: QueryTrace(3), Query: 3, Node: NoID, Gate: "drift", Pass: true, Value: 0.4, Aux: 0.2})
	tr.Emit(Event{Kind: KindMigrationApplied, Parent: b, Trace: QueryTrace(3), Query: 3, Node: 7, VTime: 12.5, Detail: "kept=2"})

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := tr.Snapshot()
	if len(back) != len(orig) {
		t.Fatalf("round trip lost events: %d -> %d", len(orig), len(back))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("event %d changed in round trip:\n got %+v\nwant %+v", i, back[i], orig[i])
		}
	}
}

func TestFlightJournalStreamsAndDetachesOnError(t *testing.T) {
	tr := NewTracer(8)
	tr.Enable()
	var buf bytes.Buffer
	tr.SetJournal(&buf)
	tr.Emit(Event{Kind: KindQueryDeployed, Query: 1, Node: 2})
	tr.Emit(Event{Kind: KindQueryUndeployed, Query: 1, Node: 2})
	evs, err := ParseJSONL(&buf)
	if err != nil || len(evs) != 2 {
		t.Fatalf("journal parse: %d events, err %v; want 2, nil", len(evs), err)
	}
	tr.SetJournal(failWriter{})
	tr.Emit(Event{Kind: KindQueryDeployed, Query: 9, Node: NoID})
	if tr.JournalErr() == nil {
		t.Fatal("journal write error not surfaced")
	}
	// Detached: further emission must not fail or grow anything.
	tr.Emit(Event{Kind: KindQueryDeployed, Query: 10, Node: NoID})
	if tr.Len() != 4 {
		t.Fatalf("ring lost events after journal detach: len=%d, want 4", tr.Len())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = &journalError{}

type journalError struct{}

func (*journalError) Error() string { return "synthetic write failure" }

func TestKindJSONRoundTrip(t *testing.T) {
	for k := KindNone; k <= KindHierarchyChanged; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Fatalf("kind %v round-tripped to %v", k, back)
		}
	}
	var unknown Kind
	if err := json.Unmarshal([]byte(`"from_the_future"`), &unknown); err != nil || unknown != KindNone {
		t.Fatalf("unknown kind: got %v, err %v; want KindNone, nil", unknown, err)
	}
}

func TestTimelineRenderNestsByParent(t *testing.T) {
	events := []Event{
		{ID: 1, Kind: KindCalibrationWindow, Trace: QueryTrace(2), Query: 2, Node: NoID, VTime: 15},
		{ID: 2, Parent: 1, Kind: KindGateDecision, Trace: QueryTrace(2), Query: 2, Node: NoID, Gate: "drift", Pass: true},
		{ID: 3, Parent: 2, Kind: KindMigrationApplied, Trace: QueryTrace(2), Query: 2, Node: 4},
		{ID: 4, Kind: KindCalibrationWindow, Trace: QueryTrace(5), Query: 5, Node: NoID},
	}
	var buf bytes.Buffer
	if err := RenderTimeline(&buf, FilterTrace(events, QueryTrace(2))); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "q=5") {
		t.Fatalf("filter leaked another trace:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline has %d lines, want 3:\n%s", len(lines), out)
	}
	for i, prefix := range []string{"#1 ", "  #2 ", "    #3 "} {
		if !strings.HasPrefix(lines[i], prefix) {
			t.Fatalf("line %d = %q, want prefix %q (indentation mirrors causality)", i, lines[i], prefix)
		}
	}
}

// TestTracerDisarmedEmitZeroAllocs pins the always-on contract: with the
// recorder disarmed, emission is one atomic load and allocates nothing,
// so leaving trace call sites in production paths is free.
func TestTracerDisarmedEmitZeroAllocs(t *testing.T) {
	tr := NewTracer(8)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Kind: KindGateDecision, Query: 1, Node: NoID, Gate: "drift", Value: 0.3})
	})
	if allocs != 0 {
		t.Fatalf("disarmed Emit allocates %.1f per call, want 0", allocs)
	}
	var nilTr *Tracer
	allocs = testing.AllocsPerRun(1000, func() {
		nilTr.Emit(Event{Kind: KindGateDecision, Query: 1, Node: NoID})
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer Emit allocates %.1f per call, want 0", allocs)
	}
}

// TestObsConcurrentHammer drives every concurrent surface at once —
// counters, gauges, histograms, snapshots, span sources, and the flight
// recorder's emit/snapshot/dump paths — and is part of the -race CI
// sweep.
func TestObsConcurrentHammer(t *testing.T) {
	withObs(t, func() {
		r := NewRegistry()
		tr := r.Tracer()
		tr.Resize(64)
		tr.Enable()
		const workers = 8
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 300; i++ {
					r.Counter("hammer.count").Inc()
					r.Gauge("hammer.gauge").Set(float64(i))
					r.Histogram("hammer.hist", nil).Observe(float64(i) * 1e-4)
					sp := r.SpanSource("hammer.span").Start()
					sp.End()
					id := tr.Emit(Event{Kind: KindGateDecision, Trace: QueryTrace(w), Query: w, Node: NoID, Gate: "drift", Pass: i%2 == 0})
					if i%10 == 0 {
						tr.Emit(Event{Kind: KindMigrationApplied, Parent: id, Trace: QueryTrace(w), Query: w, Node: NoID})
					}
					if i%50 == 0 {
						_ = r.Snapshot()
						_ = tr.Snapshot()
						_ = tr.Len()
						_ = tr.Dropped()
						var sink bytes.Buffer
						_ = tr.WriteJSONL(&sink)
					}
				}
			}()
		}
		wg.Wait()
		if got := r.Counter("hammer.count").Value(); got != workers*300 {
			t.Fatalf("hammer.count = %d, want %d", got, workers*300)
		}
		if got := r.Snapshot().Histograms["hammer.hist"].Count; got != workers*300 {
			t.Fatalf("hammer.hist count = %d, want %d", got, workers*300)
		}
	})
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	h := HistogramSnapshot{}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}
	// 100 observations spread uniformly over (0, 1]: bounds at each 0.1.
	h = HistogramSnapshot{
		Bounds: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		Counts: []int64{10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 0},
		Count:  100,
		Sum:    50,
	}
	cases := []struct{ q, want float64 }{
		{0.5, 0.5},
		{0.95, 0.95},
		{0.99, 0.99},
		{0.05, 0.05},
		{1.0, 1.0},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); !approx(got, c.want, 1e-9) {
			t.Fatalf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	// All mass in the +Inf bucket clamps to the highest finite bound.
	inf := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []int64{0, 0, 5}, Count: 5, Sum: 500}
	if got := inf.Quantile(0.5); got != 2 {
		t.Fatalf("+Inf-bucket quantile = %g, want clamp to 2", got)
	}
	// Skewed mass: 9 fast, 1 slow — p50 interpolates inside the first
	// bucket, p99 inside the last occupied one.
	skew := HistogramSnapshot{Bounds: []float64{1, 10}, Counts: []int64{9, 1, 0}, Count: 10, Sum: 14}
	if got := skew.Quantile(0.5); !approx(got, 5.0/9.0, 1e-9) {
		t.Fatalf("skewed p50 = %g, want %g", got, 5.0/9.0)
	}
	if got := skew.Quantile(0.99); !approx(got, 1+9*0.9, 1e-9) {
		t.Fatalf("skewed p99 = %g, want %g", got, 1+9*0.9)
	}
}

func approx(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

func TestHistogramBoundsConflictCounter(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []float64{1, 2, 3})
	r.Histogram("h", nil)                // nil means "whatever exists": no conflict
	r.Histogram("h", []float64{1, 2, 3}) // identical layout: no conflict
	if got := r.Counter("obs.histogram_bounds_conflict").Value(); got != 0 {
		t.Fatalf("conflict counter = %d after compatible requests, want 0", got)
	}
	r.Histogram("h", []float64{5, 6})
	if got := r.Counter("obs.histogram_bounds_conflict").Value(); got != 1 {
		t.Fatalf("conflict counter = %d after conflicting layout, want 1 (records even with obs disabled)", got)
	}
}

func TestSpanSourcePrebound(t *testing.T) {
	withObs(t, func() {
		r := NewRegistry()
		ss := r.SpanSource("work")
		if r.SpanSource("work") != ss {
			t.Fatal("SpanSource not idempotent by name")
		}
		for i := 0; i < 3; i++ {
			sp := ss.Start()
			sp.End()
		}
		snap := r.Snapshot()
		if got := snap.Counter("work.calls"); got != 3 {
			t.Fatalf("work.calls = %d, want 3", got)
		}
		if got := snap.Histograms["work.seconds"].Count; got != 3 {
			t.Fatalf("work.seconds count = %d, want 3", got)
		}
		// The legacy StartSpan path shares the same underlying metrics.
		sp := StartSpan(r, "work")
		sp.End()
		if got := r.Snapshot().Counter("work.calls"); got != 4 {
			t.Fatalf("StartSpan and SpanSource diverged: calls = %d, want 4", got)
		}
		var nilSS *SpanSource
		nilSS.Start().End() // no-op, must not panic
	})
}
