package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// withObs runs f with instrumentation enabled, restoring the prior state.
func withObs(t *testing.T, f func()) {
	t.Helper()
	prev := Enabled.Load()
	Enable()
	defer Enabled.Store(prev)
	f()
}

func TestCounterGaugeBasics(t *testing.T) {
	withObs(t, func() {
		r := NewRegistry()
		c := r.Counter("a")
		c.Inc()
		c.Add(4)
		c.Add(-10) // ignored: counters only go up
		if got := c.Value(); got != 5 {
			t.Fatalf("counter = %d, want 5", got)
		}
		if r.Counter("a") != c {
			t.Fatal("Counter not idempotent by name")
		}
		g := r.Gauge("g")
		g.Set(2.5)
		g.Add(0.5)
		if got := g.Value(); got != 3 {
			t.Fatalf("gauge = %g, want 3", got)
		}
	})
}

func TestDisabledModeIsNoOp(t *testing.T) {
	prev := Enabled.Load()
	Disable()
	defer Enabled.Store(prev)

	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", nil)
	c.Inc()
	g.Set(9)
	g.Add(1)
	h.Observe(0.5)
	sp := StartSpan(r, "span")
	if d := sp.End(); d != 0 {
		t.Fatalf("disabled span duration = %v, want 0", d)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled mutations recorded: c=%d g=%g h=%d", c.Value(), g.Value(), h.Count())
	}
	snap := r.Snapshot()
	if snap.Counter("c") != 0 || snap.Gauge("g") != 0 {
		t.Fatal("disabled snapshot non-zero")
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	withObs(t, func() {
		var r *Registry
		c := r.Counter("x")
		g := r.Gauge("x")
		h := r.Histogram("x", nil)
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(1)
		h.Observe(1)
		StartSpan(r, "x").End()
		if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
			t.Fatal("nil handles recorded values")
		}
		snap := r.Snapshot()
		if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
			t.Fatal("nil registry snapshot not empty")
		}
	})
}

// TestConcurrentIncrements hammers one counter, one gauge and one
// histogram from many goroutines; run under -race this is the layer's
// race-freedom proof, and the totals prove no increment is lost.
func TestConcurrentIncrements(t *testing.T) {
	withObs(t, func() {
		r := NewRegistry()
		const goroutines, each = 16, 2000
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Mix handle lookups with pre-bound handles: both paths must
				// be safe concurrently.
				c := r.Counter("hits")
				for j := 0; j < each; j++ {
					c.Inc()
					r.Gauge("accum").Add(1)
					r.Histogram("lat", DefBuckets).Observe(float64(j%7) * 1e-4)
				}
			}()
		}
		wg.Wait()
		want := int64(goroutines * each)
		if got := r.Counter("hits").Value(); got != want {
			t.Fatalf("counter = %d, want %d", got, want)
		}
		if got := r.Gauge("accum").Value(); got != float64(want) {
			t.Fatalf("gauge = %g, want %d", got, want)
		}
		h := r.Histogram("lat", nil)
		if h.Count() != want {
			t.Fatalf("histogram count = %d, want %d", h.Count(), want)
		}
		snap := r.Snapshot()
		total := int64(0)
		for _, n := range snap.Histograms["lat"].Counts {
			total += n
		}
		if total != want {
			t.Fatalf("bucket counts sum to %d, want %d", total, want)
		}
	})
}

// TestSnapshotIsolation: a snapshot must be fully detached — later
// increments do not leak into it, and mutating the snapshot's maps does
// not disturb the registry.
func TestSnapshotIsolation(t *testing.T) {
	withObs(t, func() {
		r := NewRegistry()
		r.Counter("c").Add(7)
		r.Histogram("h", []float64{1, 2}).Observe(0.5)
		snap := r.Snapshot()

		r.Counter("c").Add(100)
		r.Histogram("h", nil).Observe(1.5)
		if snap.Counter("c") != 7 {
			t.Fatalf("snapshot counter moved: %d", snap.Counter("c"))
		}
		if snap.Histograms["h"].Count != 1 {
			t.Fatalf("snapshot histogram moved: %d", snap.Histograms["h"].Count)
		}

		snap.Counters["c"] = -1
		snap.Histograms["h"].Counts[0] = -1
		if r.Counter("c").Value() != 107 {
			t.Fatal("mutating snapshot disturbed registry")
		}
		fresh := r.Snapshot()
		if fresh.Histograms["h"].Counts[0] != 1 {
			t.Fatal("mutating snapshot bucket disturbed registry")
		}
	})
}

func TestSpanRecordsDuration(t *testing.T) {
	withObs(t, func() {
		r := NewRegistry()
		sp := StartSpan(r, "work")
		time.Sleep(time.Millisecond)
		d := sp.End()
		if d <= 0 {
			t.Fatalf("span duration = %v", d)
		}
		if got := r.Counter("work.calls").Value(); got != 1 {
			t.Fatalf("span calls = %d", got)
		}
		h := r.Histogram("work.seconds", nil)
		if h.Count() != 1 || h.Sum() <= 0 {
			t.Fatalf("span histogram count=%d sum=%g", h.Count(), h.Sum())
		}
	})
}

func TestHistogramBuckets(t *testing.T) {
	withObs(t, func() {
		r := NewRegistry()
		h := r.Histogram("h", []float64{1, 10})
		for _, v := range []float64{0.5, 1, 5, 100} {
			h.Observe(v)
		}
		s := r.Snapshot().Histograms["h"]
		// 0.5 and 1 land in <=1; 5 in <=10; 100 in +Inf.
		want := []int64{2, 1, 1}
		for i, w := range want {
			if s.Counts[i] != w {
				t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
			}
		}
		if s.Mean() != (0.5+1+5+100)/4 {
			t.Fatalf("mean = %g", s.Mean())
		}
		if (HistogramSnapshot{}).Mean() != 0 {
			t.Fatal("empty histogram mean must be 0, not NaN")
		}
	})
}

func TestSinks(t *testing.T) {
	withObs(t, func() {
		r := NewRegistry()
		r.Counter("ads.hits").Add(3)
		r.Gauge("load.total").Set(1.5)
		r.Histogram("plan.seconds", nil).Observe(0.01)
		snap := r.Snapshot()

		var jb bytes.Buffer
		if err := (JSONSink{W: &jb}).Emit(snap); err != nil {
			t.Fatal(err)
		}
		var decoded Snapshot
		if err := json.Unmarshal(jb.Bytes(), &decoded); err != nil {
			t.Fatalf("JSON sink output not parseable: %v", err)
		}
		if decoded.Counter("ads.hits") != 3 {
			t.Fatalf("round-tripped counter = %d", decoded.Counter("ads.hits"))
		}

		var tb bytes.Buffer
		if err := (TextSink{W: &tb}).Emit(snap); err != nil {
			t.Fatal(err)
		}
		out := tb.String()
		for _, want := range []string{"ads.hits", "load.total", "plan.seconds", "count=1"} {
			if !strings.Contains(out, want) {
				t.Fatalf("text sink output missing %q:\n%s", want, out)
			}
		}

		es := NewExpvarSink("obs-test-sink")
		if err := es.Emit(snap); err != nil {
			t.Fatal(err)
		}
		// Re-registering the same name must not panic.
		NewExpvarSink("obs-test-sink")
		PublishExpvar("obs-test-reg", r)
		PublishExpvar("obs-test-reg", r)
	})
}
