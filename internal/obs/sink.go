package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sync"
)

// Sink consumes snapshots: periodic emission to a log, a terminal, or a
// pull-based surface like expvar.
type Sink interface {
	Emit(Snapshot) error
}

// JSONSink writes each snapshot as one JSON object per line — the
// machine-readable feed for long experiment sweeps.
type JSONSink struct {
	W io.Writer
}

// Emit writes the snapshot as a single JSON line.
func (s JSONSink) Emit(snap Snapshot) error {
	enc := json.NewEncoder(s.W)
	return enc.Encode(snap)
}

// TextSink renders snapshots as aligned human-readable text, one metric
// per line, sorted by name.
type TextSink struct {
	W io.Writer
}

// Emit writes the snapshot as "name value" lines (histograms render as
// count/mean/sum plus interpolated p50/p95/p99).
func (s TextSink) Emit(snap Snapshot) error {
	for _, name := range snap.Names() {
		var err error
		switch {
		case hasKey(snap.Counters, name):
			_, err = fmt.Fprintf(s.W, "%-44s %d\n", name, snap.Counters[name])
		case hasKeyF(snap.Gauges, name):
			_, err = fmt.Fprintf(s.W, "%-44s %g\n", name, snap.Gauges[name])
		default:
			h := snap.Histograms[name]
			_, err = fmt.Fprintf(s.W, "%-44s count=%d mean=%.3g sum=%.3g p50=%.3g p95=%.3g p99=%.3g\n",
				name, h.Count, h.Mean(), h.Sum, h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func hasKey(m map[string]int64, k string) bool    { _, ok := m[k]; return ok }
func hasKeyF(m map[string]float64, k string) bool { _, ok := m[k]; return ok }

// expvarOnce guards expvar.Publish, which panics on duplicate names: the
// same registry name may be published once per process.
var expvarOnce sync.Map

// PublishExpvar exposes a registry as a live expvar variable: every read
// of /debug/vars re-snapshots it, so watchers always see current values.
// Publishing the same name twice is a no-op (expvar forbids duplicates).
func PublishExpvar(name string, reg *Registry) {
	if _, loaded := expvarOnce.LoadOrStore(name, true); loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() interface{} { return reg.Snapshot() }))
}

// ExpvarSink publishes the latest emitted snapshot under a fixed expvar
// name — the push-based counterpart of PublishExpvar for metrics that
// should be frozen between emissions.
type ExpvarSink struct {
	mu   sync.Mutex
	last Snapshot
}

// NewExpvarSink registers the sink under the given expvar name and
// returns it. Reusing a name returns a sink that still stores snapshots
// but is not separately published.
func NewExpvarSink(name string) *ExpvarSink {
	s := &ExpvarSink{}
	if _, loaded := expvarOnce.LoadOrStore(name, true); !loaded {
		expvar.Publish(name, expvar.Func(func() interface{} {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.last
		}))
	}
	return s
}

// Emit stores the snapshot for subsequent expvar reads.
func (s *ExpvarSink) Emit(snap Snapshot) error {
	s.mu.Lock()
	s.last = snap
	s.mu.Unlock()
	return nil
}
