// Package obs is the dependency-light telemetry layer of the optimizer:
// race-safe counters, gauges and histograms collected in named registries,
// a span-style trace recorder with monotonic timings, and pluggable sinks
// (JSON lines, human text, expvar) for getting the numbers out.
//
// Instrumentation is designed to be free when nobody is watching: every
// mutating operation is guarded by the package-level Enabled atomic, all
// metric handles are nil-safe (methods on nil receivers are no-ops), and
// enabled-mode updates are single atomic operations. Instrumented code
// therefore never needs its own guards:
//
//	var deploys = reg.Counter("system.deploys") // reg may be nil
//	deploys.Inc()                               // no-op until obs.Enable()
//
// Each hnp.System owns a private Registry so concurrent systems (and
// tests) never pollute each other's numbers; Default is the process-wide
// registry used by command-line surfaces (expvar, /metrics) and the
// experiment harnesses' progress counters.
package obs

import (
	"math"
	"sync/atomic"
)

// Enabled is the master switch for all instrumentation. While false (the
// default), every Counter/Gauge/Histogram mutation and every StartSpan is
// a cheap no-op — one atomic load — so instrumented hot paths stay within
// noise of un-instrumented code. Flip with Enable/Disable.
var Enabled atomic.Bool

// Enable turns instrumentation on.
func Enable() { Enabled.Store(true) }

// Disable turns instrumentation off. Values already recorded remain
// readable.
func Disable() { Enabled.Store(false) }

// On reports whether instrumentation is currently enabled.
func On() bool { return Enabled.Load() }

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; a nil *Counter is a valid no-op handle.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (negative deltas are ignored: counters only go up).
func (c *Counter) Add(d int64) {
	if c == nil || d <= 0 || !Enabled.Load() {
		return
	}
	c.v.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can move both ways: a level (Set) or a
// float accumulator (Add) — the planners use the latter for fractional
// search-space counts. A nil *Gauge is a valid no-op handle.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil || !Enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add accumulates d into the gauge (CAS loop; safe under contention).
func (g *Gauge) Add(d float64) {
	if g == nil || d == 0 || !Enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets is the default histogram bucket layout: exponential bounds
// suited to seconds-scale durations from microseconds to tens of seconds.
var DefBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}

// Histogram counts observations into a fixed bucket layout (upper bounds,
// ascending; an implicit +Inf bucket catches the rest) and tracks count
// and sum. All updates are atomic; a nil *Histogram is a valid no-op
// handle. Bucket layouts are fixed at creation — no resizing, no
// allocation on the observe path.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    Gauge
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || !Enabled.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	// The sum gauge re-checks Enabled; that is fine — it cannot have been
	// turned off between the loads in any way that matters for totals.
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// snapshot copies the histogram state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Value(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}
