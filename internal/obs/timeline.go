package obs

import (
	"fmt"
	"io"
	"sort"
)

// FilterTrace returns the events carrying the given trace ID, preserving
// order. Trace 0 returns the input unfiltered (0 means "no trace" on an
// event, but "all traces" as a query — the zero filter is the whole
// flight).
func FilterTrace(events []Event, trace uint64) []Event {
	if trace == 0 {
		return events
	}
	var out []Event
	for _, e := range events {
		if e.Trace == trace {
			out = append(out, e)
		}
	}
	return out
}

// RenderTimeline writes events as an indented causal tree, oldest root
// first: children are printed under the event that caused them, so a
// query lifecycle reads top-to-bottom as planned → deployed → calibrated
// → gated → migrated. Events whose parent is missing (overwritten by ring
// wrap-around, or emitted before the filter window) render as roots.
func RenderTimeline(w io.Writer, events []Event) error {
	byID := make(map[uint64]int, len(events))
	for i, e := range events {
		byID[e.ID] = i
	}
	children := make(map[uint64][]int)
	var roots []int
	for i, e := range events {
		if e.Parent != 0 {
			if _, ok := byID[e.Parent]; ok {
				children[e.Parent] = append(children[e.Parent], i)
				continue
			}
		}
		roots = append(roots, i)
	}
	for _, c := range children {
		sort.Slice(c, func(a, b int) bool { return events[c[a]].ID < events[c[b]].ID })
	}
	sort.Slice(roots, func(a, b int) bool { return events[roots[a]].ID < events[roots[b]].ID })

	var walk func(i, depth int) error
	walk = func(i, depth int) error {
		e := events[i]
		if _, err := fmt.Fprintf(w, "%*s%s\n", 2*depth, "", e.Line()); err != nil {
			return err
		}
		for _, c := range children[e.ID] {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	return nil
}

// Line renders one event as a single human-readable line (no trailing
// newline): id, kind, and only the fields the event actually carries.
func (e Event) Line() string {
	s := fmt.Sprintf("#%d %s", e.ID, e.Kind)
	if e.Query != NoID {
		s += fmt.Sprintf(" q=%d", e.Query)
	}
	if e.Node != NoID {
		s += fmt.Sprintf(" node=%d", e.Node)
	}
	if e.Gate != "" {
		verdict := "suppressed"
		if e.Pass {
			verdict = "pass"
		}
		s += fmt.Sprintf(" gate=%s(%s)", e.Gate, verdict)
	} else if e.Kind == KindInvariantChecked {
		verdict := "FAIL"
		if e.Pass {
			verdict = "ok"
		}
		s += " " + verdict
	}
	if e.VTime != 0 {
		s += fmt.Sprintf(" t=%.3gs", e.VTime)
	}
	if e.Value != 0 {
		s += fmt.Sprintf(" value=%.4g", e.Value)
	}
	if e.Aux != 0 {
		s += fmt.Sprintf(" aux=%.4g", e.Aux)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}
