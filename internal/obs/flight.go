package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultFlightSize is the ring capacity a Tracer arms with unless
// resized first: enough to hold several full chaos runs or minutes of
// production decisions, small enough (~a few hundred KB) to leave armed
// permanently.
const DefaultFlightSize = 4096

// Tracer is the flight recorder: a fixed-size ring buffer of the most
// recent trace events, plus an optional streaming JSONL journal. It is
// designed to be left armed in production ("always-on"): emission is one
// atomic load when disarmed, and an atomic increment, a mutex-guarded
// slot overwrite, and zero allocations when armed (journal writes aside).
//
// A nil *Tracer is a valid no-op handle, like every other obs handle. The
// Tracer's armed state is independent of the package-level Enabled
// switch, so the flight recorder can run with metrics off (the chaos
// harness does exactly that).
type Tracer struct {
	enabled atomic.Bool
	seq     atomic.Uint64

	mu      sync.Mutex
	ring    []Event // allocated lazily on first arm/emit
	size    int     // requested capacity (0 = DefaultFlightSize)
	total   uint64  // events ever recorded; write cursor is total % len(ring)
	journal io.Writer
	jerr    error
}

// NewTracer returns a disarmed tracer whose ring will hold size events
// (size <= 0 means DefaultFlightSize). The ring itself is allocated on
// first arm, so dormant tracers cost a few words.
func NewTracer(size int) *Tracer { return &Tracer{size: size} }

// Resize sets the ring capacity for the next arm. Events already
// recorded are discarded if the ring is reallocated.
func (t *Tracer) Resize(size int) {
	if t == nil || size <= 0 {
		return
	}
	t.mu.Lock()
	t.size = size
	if t.ring != nil && len(t.ring) != size {
		t.ring = make([]Event, size)
		t.total = 0
	}
	t.mu.Unlock()
}

// Enable arms the flight recorder, allocating the ring on first use.
func (t *Tracer) Enable() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.ring == nil {
		n := t.size
		if n <= 0 {
			n = DefaultFlightSize
		}
		t.ring = make([]Event, n)
	}
	t.mu.Unlock()
	t.enabled.Store(true)
}

// Disable disarms the recorder. Recorded events remain readable.
func (t *Tracer) Disable() {
	if t != nil {
		t.enabled.Store(false)
	}
}

// On reports whether the recorder is armed. Emitters use it to guard
// Detail formatting:
//
//	if tr.On() {
//	    tr.Emit(obs.Event{..., Detail: fmt.Sprintf(...)})
//	}
func (t *Tracer) On() bool { return t != nil && t.enabled.Load() }

// SetJournal attaches a streaming JSONL sink: every subsequent event is
// encoded as one JSON line at emission time, in order, under the ring
// mutex. Pass nil to detach. A journal write error detaches the journal
// and is reported by JournalErr — emission itself never fails.
func (t *Tracer) SetJournal(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.journal = w
	t.jerr = nil
	t.mu.Unlock()
}

// JournalErr returns the error that detached the journal, if any.
func (t *Tracer) JournalErr() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.jerr
}

// Emit records one event and returns its assigned ID, or 0 when the
// recorder is disarmed (or t is nil). The disarmed path is a single
// atomic load with zero allocations; callers pass Event by value so the
// literal lives on the stack.
func (t *Tracer) Emit(e Event) uint64 {
	if t == nil || !t.enabled.Load() {
		return 0
	}
	e.ID = t.seq.Add(1)
	if e.Wall == 0 {
		e.Wall = time.Now().UnixNano()
	}
	t.mu.Lock()
	if t.ring == nil {
		n := t.size
		if n <= 0 {
			n = DefaultFlightSize
		}
		t.ring = make([]Event, n)
	}
	t.ring[t.total%uint64(len(t.ring))] = e
	t.total++
	if t.journal != nil {
		if b, err := json.Marshal(e); err != nil {
			t.jerr, t.journal = err, nil
		} else {
			b = append(b, '\n')
			if _, err := t.journal.Write(b); err != nil {
				t.jerr, t.journal = err, nil
			}
		}
	}
	t.mu.Unlock()
	return e.ID
}

// Len returns how many events are currently held in the ring.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ring == nil || t.total < uint64(len(t.ring)) {
		return int(t.total)
	}
	return len(t.ring)
}

// Dropped returns how many events have been overwritten by ring
// wrap-around — the gap between what happened and what Snapshot can
// still show.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ring == nil || t.total <= uint64(len(t.ring)) {
		return 0
	}
	return t.total - uint64(len(t.ring))
}

// Snapshot copies the ring's events in emission order (oldest first),
// fully detached from the live buffer.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ring == nil || t.total == 0 {
		return nil
	}
	n := uint64(len(t.ring))
	held := t.total
	if held > n {
		held = n
	}
	out := make([]Event, 0, held)
	for i := t.total - held; i < t.total; i++ {
		out = append(out, t.ring[i%n])
	}
	return out
}

// WriteJSONL dumps the ring as JSON lines, oldest first. This is the
// post-mortem surface: cmd/chaos calls it on invariant violations, smq
// serves it at /flight.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return WriteEventsJSONL(w, t.Snapshot())
}

// WriteEventsJSONL encodes an event slice as JSON lines, one event per
// line — the same format WriteJSONL produces and ParseJSONL reads back.
func WriteEventsJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseJSONL reads a flight-recorder dump (or journal) back into events,
// skipping blank lines. The inverse of WriteJSONL, used by forensics
// tests and the timeline renderers.
func ParseJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return out, fmt.Errorf("obs: bad JSONL line %q: %w", line, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
