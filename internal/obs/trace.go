package obs

import "time"

// SpanSource is a pre-bound pair of span metrics — the "<name>.seconds"
// histogram and "<name>.calls" counter — resolved once via
// Registry.SpanSource. Starting and ending spans on a source performs no
// string concatenation and no registry lookups, which matters on paths
// that open thousands of spans (planner searches, deploy, migrate). A nil
// *SpanSource is a valid no-op handle.
type SpanSource struct {
	seconds *Histogram
	calls   *Counter
}

// Start begins a span on the source. While instrumentation is disabled
// (or ss is nil) it returns the zero Span and costs one atomic load — no
// clock read, no allocation.
func (ss *SpanSource) Start() Span {
	if ss == nil || !Enabled.Load() {
		return Span{}
	}
	return Span{src: ss, start: time.Now()}
}

// Span is one timed section of work, recorded with the monotonic clock.
// Ending a span observes its duration into the source's histogram and
// bumps its call counter. The zero Span (returned while disabled, or from
// a nil source/registry) is inert.
type Span struct {
	src   *SpanSource
	start time.Time
}

// StartSpan begins a span named on the registry: a convenience wrapper
// over reg.SpanSource(name).Start() for call sites too cold to keep a
// bound handle. It pays one registry lookup per call (at start, not
// under End as the old implementation did); hot paths should bind a
// SpanSource instead.
func StartSpan(reg *Registry, name string) Span {
	if reg == nil || !Enabled.Load() {
		return Span{}
	}
	return reg.SpanSource(name).Start()
}

// End closes the span, records it, and returns its duration (0 for the
// zero Span).
func (s Span) End() time.Duration {
	if s.src == nil {
		return 0
	}
	d := time.Since(s.start) // monotonic: immune to wall-clock jumps
	s.src.seconds.Observe(d.Seconds())
	s.src.calls.Inc()
	return d
}
