package obs

import "time"

// Span is one timed section of work, recorded with the monotonic clock.
// Ending a span observes its duration into the histogram "<name>.seconds"
// and bumps the counter "<name>.calls" on the registry it was started
// from. The zero Span (returned while disabled, or from a nil registry)
// is inert.
type Span struct {
	reg   *Registry
	name  string
	start time.Time
}

// StartSpan begins a span. While instrumentation is disabled (or reg is
// nil) it returns the zero Span and costs one atomic load — no clock
// read, no allocation.
func StartSpan(reg *Registry, name string) Span {
	if reg == nil || !Enabled.Load() {
		return Span{}
	}
	return Span{reg: reg, name: name, start: time.Now()}
}

// End closes the span, records it, and returns its duration (0 for the
// zero Span).
func (s Span) End() time.Duration {
	if s.reg == nil {
		return 0
	}
	d := time.Since(s.start) // monotonic: immune to wall-clock jumps
	s.reg.Histogram(s.name+".seconds", nil).Observe(d.Seconds())
	s.reg.Counter(s.name + ".calls").Inc()
	return d
}
