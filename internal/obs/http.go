package obs

import (
	"net/http"
	"strconv"
)

// MetricsHandler serves a fresh JSON snapshot of src on every request —
// the standard /metrics surface (cmd/smq -debug-addr, smqd). src is
// re-invoked per request so the handler can follow a registry that is
// swapped at runtime.
func MetricsHandler(src func() Snapshot) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := (JSONSink{W: w}).Emit(src()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

// FlightHandler dumps a flight recorder's ring as JSONL — the standard
// /flight surface. src is re-invoked per request.
func FlightHandler(src func() *Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := src().WriteJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

// TraceHandler renders a flight recorder's causal timeline as text,
// filtered to one query's lifecycle with ?query=N — the standard /trace
// surface. src is re-invoked per request.
func TraceHandler(src func() *Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		events := src().Snapshot()
		if q := r.URL.Query().Get("query"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, "trace: query must be an integer query ID", http.StatusBadRequest)
				return
			}
			events = FilterTrace(events, QueryTrace(n))
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := RenderTimeline(w, events); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}
