package obs

import (
	"fmt"
	"time"
)

// This file defines the causal trace-event taxonomy. Metrics (obs.go,
// registry.go) answer "how much"; events answer "why": every autonomous
// decision the optimizer stack makes — planning a query, passing or
// failing an adaptation gate, applying or rolling back a migration,
// auditing an invariant — emits one Event linked to the event that caused
// it via ParentID. Walking parents from a MigrationApplied event
// reconstructs the full decision chain: which calibration window measured
// the drift, which gates the candidate passed, what the migration cost.

// Kind identifies what decision an event records. The taxonomy is
// deliberately small: one kind per decision site in the stack, not one
// per log line.
type Kind uint8

const (
	// KindNone marks an unset event (ring-buffer slots not yet written).
	KindNone Kind = iota
	// KindPlanStarted: a planner (top-down or bottom-up) began searching
	// for a placement. Detail names the algorithm.
	KindPlanStarted
	// KindPlanChosen: the search finished. Value is the chosen plan's
	// expected cost; Aux is the number of plans considered.
	KindPlanChosen
	// KindQueryDeployed: the dataflow runtime instantiated a plan. Aux is
	// the number of operators held by the deployment.
	KindQueryDeployed
	// KindQueryUndeployed: a deployment was released.
	KindQueryUndeployed
	// KindCalibrationWindow: the adaptation controller closed a
	// measurement window for one query. Value is the measured drift
	// (max relative rate change); Aux is the number of catalog
	// statistics recalibrated from runtime counters.
	KindCalibrationWindow
	// KindGateDecision: one adaptation gate (drift, delta, deadband,
	// hysteresis, cooldown, revert-holdoff) evaluated a candidate
	// re-plan. Gate names the gate, Pass records the verdict, Value and
	// Aux carry the gate's inputs (e.g. predicted gain vs churn cost).
	KindGateDecision
	// KindMigrationApplied: the runtime committed a diff-based
	// migration. Value is predicted bytes saved; Aux is state bytes
	// shipped.
	KindMigrationApplied
	// KindMigrationRolledBack: a migration failed mid-apply and was
	// rolled back; Detail carries the error.
	KindMigrationRolledBack
	// KindInvariantChecked: the chaos harness audited cross-stack
	// invariants after an event. Pass is the verdict; Detail names the
	// chaos event audited (and the violation, on failure).
	KindInvariantChecked
	// KindHierarchyChanged: the network hierarchy was rebuilt or patched
	// (node add/remove, rebind). Detail names the operation.
	KindHierarchyChanged
	// KindPathRefresh: a path snapshot was brought up to date after graph
	// churn. Value is the number of source rows recomputed, Aux the number
	// of changed links; Detail carries the refresh mode ("incremental" or
	// "full") and the metric.
	KindPathRefresh
	// KindRewriteApplied: the logical optimizer pipeline rewrote a query
	// before planning. Value is the planned source byte rate saved, Aux
	// the number of rules that changed the query; Detail carries the
	// per-rule audit trace.
	KindRewriteApplied
)

var kindNames = [...]string{
	KindNone:                "none",
	KindPlanStarted:         "plan_started",
	KindPlanChosen:          "plan_chosen",
	KindQueryDeployed:       "query_deployed",
	KindQueryUndeployed:     "query_undeployed",
	KindCalibrationWindow:   "calibration_window",
	KindGateDecision:        "gate_decision",
	KindMigrationApplied:    "migration_applied",
	KindMigrationRolledBack: "migration_rolled_back",
	KindInvariantChecked:    "invariant_checked",
	KindHierarchyChanged:    "hierarchy_changed",
	KindPathRefresh:         "path_refresh",
	KindRewriteApplied:      "rewrite_applied",
}

// String returns the snake_case taxonomy name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON renders the kind as its taxonomy name so JSONL dumps are
// self-describing.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses a taxonomy name back into a Kind. Unknown names
// decode to KindNone rather than erroring, so dumps from newer builds
// stay loadable.
func (k *Kind) UnmarshalJSON(b []byte) error {
	if len(b) >= 2 && b[0] == '"' {
		name := string(b[1 : len(b)-1])
		for i, n := range kindNames {
			if n == name {
				*k = Kind(i)
				return nil
			}
		}
	}
	*k = KindNone
	return nil
}

// NoID marks the Query/Node fields of events not tied to a query or node.
const NoID = -1

// Event is one recorded decision. The struct is flat and fixed-size (plus
// string headers) so ring-buffer slots can be overwritten in place without
// allocation; kind-specific meaning of Value/Aux/Gate is documented on
// each Kind.
type Event struct {
	// ID is unique per Tracer, assigned at emission, strictly increasing.
	ID uint64 `json:"id"`
	// Parent is the ID of the event that caused this one (0 = root).
	Parent uint64 `json:"parent,omitempty"`
	// Trace groups a causal chain; per-query lifecycles use
	// QueryTrace(queryID) so a whole lifecycle can be filtered in one
	// pass.
	Trace uint64 `json:"trace,omitempty"`
	Kind  Kind   `json:"kind"`
	// Wall is wall-clock nanoseconds since the Unix epoch, stamped at
	// emission (callers may pre-set it for deterministic tests).
	Wall int64 `json:"wall_ns,omitempty"`
	// VTime is virtual (simulation) seconds, when the emitter runs on
	// the discrete-event clock; 0 otherwise.
	VTime float64 `json:"vtime,omitempty"`
	// Query and Node use NoID when not applicable.
	Query int `json:"query"`
	Node  int `json:"node"`
	// Gate names the adaptation gate for KindGateDecision.
	Gate string `json:"gate,omitempty"`
	// Pass is the verdict for gate decisions and invariant checks.
	Pass bool `json:"pass"`
	// Value and Aux are kind-specific magnitudes (see Kind docs).
	Value float64 `json:"value,omitempty"`
	Aux   float64 `json:"aux,omitempty"`
	// Detail is free-form human context; emitters must only format it
	// when tracing is enabled (it is the one field that allocates).
	Detail string `json:"detail,omitempty"`
}

// QueryTrace maps a query ID to its lifecycle trace ID (0 is reserved for
// "no trace", so query 0 is representable).
func QueryTrace(queryID int) uint64 { return uint64(queryID) + 1 }

// Time returns the event's wall-clock timestamp.
func (e Event) Time() time.Time { return time.Unix(0, e.Wall) }
