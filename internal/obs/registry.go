package obs

import (
	"sort"
	"sync"
	"time"
)

// Registry holds named metrics. Handles are created on first use and
// stable thereafter: calling Counter twice with one name returns the same
// *Counter, so packages can bind handles once and increment lock-free. A
// nil *Registry is valid everywhere and hands out nil (no-op) handles,
// which is how un-instrumented call sites cost nothing.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    map[string]*SpanSource
	tracer   *Tracer
}

// Default is the process-wide registry: command surfaces (expvar, the
// /metrics endpoint) and experiment progress counters live here. Library
// components use per-System registries instead.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		spans:    map[string]*SpanSource{},
		tracer:   NewTracer(0),
	}
}

// Tracer returns the registry's flight recorder. Every registry owns one
// (disarmed and ring-less until armed); a nil registry returns a nil
// (no-op) tracer, keeping the nil-handle contract.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counterLocked(name)
}

func (r *Registry) counterLocked(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds (nil means DefBuckets) if needed. The layout of an
// existing histogram is never changed: asking for an existing name with
// different non-nil bounds returns the original layout unchanged and
// bumps the "obs.histogram_bounds_conflict" counter in the same registry,
// so silently-ignored layouts are at least visible in snapshots.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	} else if bounds != nil && !sameBounds(h.bounds, bounds) {
		// Conflict counters must record even while the master switch is
		// off — a silently discarded layout is a bug signal, not telemetry.
		r.counterLocked("obs.histogram_bounds_conflict").v.Add(1)
	}
	return h
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SpanSource returns a pre-bound handle for repeatedly-timed sections:
// the "<name>.seconds" histogram and "<name>.calls" counter are resolved
// once, so Start/End on the handle cost no string concatenation and no
// registry lookups — just the clock reads and atomic updates. Hot paths
// (planner searches, deploy/migrate) bind one SpanSource at setup and
// reuse it per call. A nil registry returns a nil (no-op) source.
func (r *Registry) SpanSource(name string) *SpanSource {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ss, ok := r.spans[name]
	if !ok {
		h, have := r.hists[name+".seconds"]
		if !have {
			h = newHistogram(nil)
			r.hists[name+".seconds"] = h
		}
		ss = &SpanSource{seconds: h, calls: r.counterLocked(name + ".calls")}
		r.spans[name] = ss
	}
	return ss
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra trailing
	// entry for the implicit +Inf bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns Sum/Count, or 0 with no observations — never a division by
// zero.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket that contains the target rank, Prometheus-style: the
// first bucket interpolates from 0, and ranks landing in the +Inf bucket
// return the highest finite bound (the estimate cannot exceed what the
// layout can resolve). Returns 0 with no observations.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(h.Bounds) {
			return h.Bounds[len(h.Bounds)-1] // +Inf bucket: clamp
		}
		lower := 0.0
		if i > 0 {
			lower = h.Bounds[i-1]
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lower + (h.Bounds[i]-lower)*frac
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a point-in-time copy of a registry: fully detached from the
// live metrics, safe to hold, serialize, or diff while instrumentation
// keeps running.
type Snapshot struct {
	TakenAt    time.Time                    `json:"taken_at"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Counter returns a counter's value from the snapshot (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge's value from the snapshot (0 when absent).
func (s Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// Names returns every metric name in the snapshot, sorted, for
// deterministic rendering.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot copies the registry's current values. A nil registry yields an
// empty (but usable) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		TakenAt:    time.Now(),
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.snapshot()
	}
	return s
}
