package netgraph

import (
	"math/rand"
	"runtime"
	"testing"
)

// forceParallel raises GOMAXPROCS so the worker pool actually fans out
// even on single-core CI machines, restoring the old value on cleanup.
func forceParallel(t testing.TB) {
	t.Helper()
	old := runtime.GOMAXPROCS(8)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

func pathsEqual(t *testing.T, topo string, a, b *Paths) {
	t.Helper()
	if a.n != b.n || a.metric != b.metric || a.version != b.version {
		t.Fatalf("%s: snapshot headers differ: %+v vs %+v", topo, a, b)
	}
	for v := 0; v < a.n; v++ {
		for u := 0; u < a.n; u++ {
			if a.dist[v][u] != b.dist[v][u] {
				t.Fatalf("%s: dist[%d][%d] = %g (parallel) vs %g (serial)",
					topo, v, u, a.dist[v][u], b.dist[v][u])
			}
			if a.next[v][u] != b.next[v][u] {
				t.Fatalf("%s: next[%d][%d] = %d (parallel) vs %d (serial)",
					topo, v, u, a.next[v][u], b.next[v][u])
			}
		}
	}
}

// TestShortestPathsParallelMatchesSerial asserts the parallel all-pairs
// computation is bit-identical to the serial reference on every topology
// family, under both metrics.
func TestShortestPathsParallelMatchesSerial(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(21))
	costs := CostRange{Lo: 1, Hi: 10}
	delay := CostRange{Lo: 0.001, Hi: 0.06}
	topos := []struct {
		name string
		g    *Graph
	}{
		{"transit-stub", MustTransitStub(128, rng)},
		{"grid", Grid(8, 16, costs, delay, rng)},
		{"scale-free", ScaleFree(128, 2, costs, delay, rng)},
	}
	for _, tp := range topos {
		for _, m := range []Metric{MetricCost, MetricDelay} {
			pathsEqual(t, tp.name+"/"+m.String(), tp.g.ShortestPaths(m), tp.g.shortestPathsSerial(m))
		}
	}
}

func TestStaleFor(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := MustTransitStub(32, rng)
	p := g.ShortestPaths(MetricCost)
	if p.StaleFor(g) {
		t.Fatal("fresh snapshot reported stale")
	}
	links := g.Links()
	if err := g.SetLinkCost(links[0].A, links[0].B, links[0].Cost*2); err != nil {
		t.Fatal(err)
	}
	if !p.StaleFor(g) {
		t.Fatal("snapshot not stale after SetLinkCost")
	}
	if g.ShortestPaths(MetricCost).StaleFor(g) {
		t.Fatal("recomputed snapshot reported stale")
	}
	if !p.StaleFor(New(5)) {
		t.Fatal("snapshot of one graph not stale for a different-sized graph")
	}
}

func bench1024(b *testing.B) *Graph {
	b.Helper()
	return MustTransitStub(1024, rand.New(rand.NewSource(23)))
}

// BenchmarkShortestPathsParallel measures the worker-pool all-pairs
// snapshot on the paper's largest (1024-node) scalability topology.
func BenchmarkShortestPathsParallel(b *testing.B) {
	forceParallel(b)
	g := bench1024(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShortestPaths(MetricCost)
	}
}

// BenchmarkShortestPathsSerial is the single-threaded baseline the
// parallel speedup is judged against.
func BenchmarkShortestPathsSerial(b *testing.B) {
	g := bench1024(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.shortestPathsSerial(MetricCost)
	}
}
