package netgraph

import (
	"math/rand"
	"testing"
)

// TestSetLinkCostNoop pins the no-op fast path: setting a link to its
// current cost (or delay) must not bump the version, so every cached path
// snapshot stays valid and no downstream rebind is triggered.
func TestSetLinkCostNoop(t *testing.T) {
	g := New(3)
	g.MustAddLink(0, 1, 2.5, 0.01)
	g.MustAddLink(1, 2, 4, 0.02)
	p := g.ShortestPaths(MetricCost)
	v := g.Version()
	if err := g.SetLinkCost(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if g.Version() != v {
		t.Errorf("same-cost SetLinkCost bumped version %d -> %d", v, g.Version())
	}
	if err := g.SetLinkDelay(1, 2, 0.02); err != nil {
		t.Fatal(err)
	}
	if g.Version() != v {
		t.Errorf("same-delay SetLinkDelay bumped version %d -> %d", v, g.Version())
	}
	if p.StaleFor(g) {
		t.Error("snapshot went stale after no-op mutations")
	}
	if err := g.SetLinkCost(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if g.Version() != v+1 {
		t.Errorf("real mutation should bump version once: %d -> %d", v, g.Version())
	}
}

// TestDeltaLog exercises the bounded mutation log directly: coverage,
// horizon fallback, and truncation on structural change.
func TestDeltaLog(t *testing.T) {
	g := New(3)
	g.MustAddLink(0, 1, 1, 0.01)
	v0 := g.Version()
	if err := g.SetLinkCost(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.SetLinkDelay(0, 1, 0.03); err != nil {
		t.Fatal(err)
	}
	ds, ok := g.deltasSince(v0)
	if !ok || len(ds) != 2 {
		t.Fatalf("deltasSince(%d) = %v, %v; want 2 deltas", v0, ds, ok)
	}
	if ds[0] != (EdgeDelta{A: 0, B: 1, Metric: MetricCost, Old: 1, New: 2}) {
		t.Errorf("first delta = %+v", ds[0])
	}
	if ds[1] != (EdgeDelta{A: 0, B: 1, Metric: MetricDelay, Old: 0.01, New: 0.03}) {
		t.Errorf("second delta = %+v", ds[1])
	}
	if ds, ok := g.deltasSince(g.Version()); !ok || len(ds) != 0 {
		t.Errorf("deltasSince(current) = %v, %v; want empty, true", ds, ok)
	}
	// Structural mutation clears the log.
	g.MustAddLink(1, 2, 1, 0.01)
	if _, ok := g.deltasSince(v0); ok {
		t.Error("log should not cover a span containing AddLink")
	}
	if ds, ok := g.deltasSince(g.Version()); !ok || len(ds) != 0 {
		t.Errorf("post-AddLink deltasSince(current) = %v, %v", ds, ok)
	}
	// Overflow drops the oldest half but keeps recent coverage.
	vMid := 0
	for i := 0; i < maxDeltaLog+10; i++ {
		if i == maxDeltaLog/2 {
			vMid = g.Version()
		}
		if err := g.SetLinkCost(0, 1, float64(2+i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := g.deltasSince(vMid); ok {
		t.Error("log should have dropped its oldest half")
	}
	if ds, ok := g.deltasSince(g.Version() - 10); !ok || len(ds) != 10 {
		t.Errorf("recent span not covered after overflow: %d deltas, ok=%v", len(ds), ok)
	}
}

// refreshChain ping-pongs a snapshot chain the way runtime consumers do.
type refreshChain struct {
	cur, spare *Paths
}

func (c *refreshChain) refresh(t *testing.T, g *Graph) RefreshStats {
	t.Helper()
	old := c.cur
	out, stats := c.cur.RefreshFrom(g, c.spare)
	if out != old {
		c.cur, c.spare = out, old
	} else if stats.Mode != RefreshNoop {
		t.Fatalf("RefreshFrom returned the input snapshot with mode %v", stats.Mode)
	}
	return stats
}

// requireIdentical asserts a snapshot is bit-identical to a fresh
// ShortestPaths under the same metric.
func requireIdentical(t *testing.T, label string, g *Graph, got *Paths) {
	t.Helper()
	pathsEqual(t, label, got, g.ShortestPaths(got.Metric()))
}

// TestRefreshFromSingleEdge covers the basic incremental cases: noop,
// cost-only churn leaving the delay snapshot's rows untouched, and
// bit-identical repair after increases, decreases, and reverts.
func TestRefreshFromSingleEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := MustTransitStub(64, rng)
	cost := refreshChain{cur: g.ShortestPaths(MetricCost)}
	delay := refreshChain{cur: g.ShortestPaths(MetricDelay)}

	if stats := cost.refresh(t, g); stats.Mode != RefreshNoop {
		t.Fatalf("refresh of current snapshot: mode %v, want noop", stats.Mode)
	}

	links := g.Links()
	l := links[len(links)/2]
	for _, factor := range []float64{4, 0.1, 1} { // raise, cut, revert
		if err := g.SetLinkCost(l.A, l.B, l.Cost*factor); err != nil {
			t.Fatal(err)
		}
		cs := cost.refresh(t, g)
		if cs.Mode != RefreshIncremental {
			t.Fatalf("factor %g: cost refresh mode %v, want incremental", factor, cs.Mode)
		}
		requireIdentical(t, "cost", g, cost.cur)

		// Cost churn never moves delay-metric paths: the delay refresh
		// must see zero changed edges and recompute zero rows.
		ds := delay.refresh(t, g)
		if ds.Mode != RefreshIncremental || ds.EdgesChanged != 0 || ds.RowsRecomputed != 0 {
			t.Fatalf("factor %g: delay refresh = %+v, want incremental/0/0", factor, ds)
		}
		requireIdentical(t, "delay", g, delay.cur)
	}
}

// TestRefreshFromFallbacks pins the full-recompute escape hatches: log
// horizon exhaustion, structural change, disabled delta refresh, and the
// affected-fraction threshold.
func TestRefreshFromFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := MustTransitStub(32, rng)
	links := g.Links()

	// Snapshot older than the log horizon.
	old := g.ShortestPaths(MetricCost)
	for i := 0; i < maxDeltaLog+8; i++ {
		l := links[i%len(links)]
		if err := g.SetLinkCost(l.A, l.B, 1+float64(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	out, stats := old.RefreshFrom(g, nil)
	if stats.Mode != RefreshFull {
		t.Errorf("beyond-horizon refresh mode %v, want full", stats.Mode)
	}
	requireIdentical(t, "horizon", g, out)

	// Structural change truncates the log.
	cur := g.ShortestPaths(MetricCost)
	var a, b NodeID
found:
	for a = 0; a < NodeID(g.NumNodes()); a++ {
		for b = a + 2; b < NodeID(g.NumNodes()); b++ {
			if !g.HasLink(a, b) {
				break found
			}
		}
	}
	g.MustAddLink(a, b, 2, 0.01)
	out, stats = cur.RefreshFrom(g, nil)
	if stats.Mode != RefreshFull {
		t.Errorf("post-AddLink refresh mode %v, want full", stats.Mode)
	}
	requireIdentical(t, "structural", g, out)

	// Global kill switch.
	cur = out
	l := links[0]
	if err := g.SetLinkCost(l.A, l.B, 42); err != nil {
		t.Fatal(err)
	}
	SetDeltaRefresh(false)
	out, stats = cur.RefreshFrom(g, nil)
	SetDeltaRefresh(true)
	if stats.Mode != RefreshFull {
		t.Errorf("disabled delta refresh mode %v, want full", stats.Mode)
	}
	requireIdentical(t, "disabled", g, out)

	// A star topology: changing a spoke's cost moves every row, tripping
	// the affected-fraction threshold.
	star := Star(16, 0.01)
	sp := star.ShortestPaths(MetricCost)
	c0, _ := star.LinkCost(0, 1)
	if err := star.SetLinkCost(0, 1, c0*50); err != nil {
		t.Fatal(err)
	}
	out, stats = sp.RefreshFrom(star, nil)
	if stats.Mode != RefreshFull {
		t.Errorf("star hub churn refresh mode %v, want full (threshold)", stats.Mode)
	}
	requireIdentical(t, "threshold", star, out)
}

// mutateRandom applies one randomly chosen mutation (cost up, cost down,
// revert to a previously seen value, delay change, no-op, or a batch of
// several) to the graph and returns a short description for failure
// messages.
func mutateRandom(t testing.TB, g *Graph, links []Link, rng *rand.Rand) string {
	t.Helper()
	l := links[rng.Intn(len(links))]
	cur, _ := g.LinkCost(l.A, l.B)
	var err error
	desc := ""
	switch k := rng.Intn(6); k {
	case 0:
		desc = "cost-up"
		err = g.SetLinkCost(l.A, l.B, cur*(1+rng.Float64()*3))
	case 1:
		desc = "cost-down"
		err = g.SetLinkCost(l.A, l.B, cur*(0.1+rng.Float64()*0.8))
	case 2:
		desc = "cost-revert"
		err = g.SetLinkCost(l.A, l.B, l.Cost) // original generator cost
	case 3:
		desc = "delay-change"
		err = g.SetLinkDelay(l.A, l.B, 0.001+rng.Float64()*0.05)
	case 4:
		desc = "noop"
		err = g.SetLinkCost(l.A, l.B, cur)
	case 5:
		desc = "batch"
		for i := 0; i < 2+rng.Intn(6); i++ {
			bl := links[rng.Intn(len(links))]
			if err = g.SetLinkCost(bl.A, bl.B, 0.2+rng.Float64()*9); err != nil {
				break
			}
		}
	}
	if err != nil {
		t.Fatalf("mutation %s: %v", desc, err)
	}
	return desc
}

// TestRefreshFromProperty is the bit-identical property test demanded by
// the tentpole: across many seeds and topology families, random mutation
// sequences (cost up/down/revert, delay churn, no-ops, batches) followed
// by delta refresh must reproduce exactly what a fresh ShortestPaths
// computes, under both metrics, with ping-ponged recycled slabs.
func TestRefreshFromProperty(t *testing.T) {
	costs := CostRange{Lo: 1, Hi: 10}
	delays := CostRange{Lo: 0.001, Hi: 0.06}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		var g *Graph
		switch seed % 3 {
		case 0:
			g = MustTransitStub(64, rng)
		case 1:
			g = Grid(6, 9, costs, delays, rng)
		default:
			g = ScaleFree(56, 2, costs, delays, rng)
		}
		links := g.Links()
		cost := refreshChain{cur: g.ShortestPaths(MetricCost)}
		delay := refreshChain{cur: g.ShortestPaths(MetricDelay)}
		for step := 0; step < 40; step++ {
			desc := mutateRandom(t, g, links, rng)
			// Refresh the two chains on different cadences so some
			// refreshes span multi-mutation windows.
			if step%3 == 0 || desc == "batch" {
				cost.refresh(t, g)
				requireIdentical(t, desc+"/cost", g, cost.cur)
				delay.refresh(t, g)
				requireIdentical(t, desc+"/delay", g, delay.cur)
			}
		}
		cost.refresh(t, g)
		requireIdentical(t, "final/cost", g, cost.cur)
		delay.refresh(t, g)
		requireIdentical(t, "final/delay", g, delay.cur)
	}
}

// FuzzRefreshBitIdentical drives arbitrary mutation scripts against a
// seed-derived topology and cross-checks delta repair against the full
// recompute. Each script byte pair selects a link and a mutation.
func FuzzRefreshBitIdentical(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(int64(2), []byte{255, 0, 255, 0, 17, 17, 17})
	f.Add(int64(3), []byte{9, 200, 9, 200, 9, 200})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		if len(script) > 256 {
			script = script[:256]
		}
		rng := rand.New(rand.NewSource(seed))
		g := MustTransitStub(32, rng)
		links := g.Links()
		cost := refreshChain{cur: g.ShortestPaths(MetricCost)}
		delay := refreshChain{cur: g.ShortestPaths(MetricDelay)}
		for i := 0; i+1 < len(script); i += 2 {
			l := links[int(script[i])%len(links)]
			op := script[i+1]
			var err error
			switch op % 4 {
			case 0:
				err = g.SetLinkCost(l.A, l.B, float64(op)/16+0.5)
			case 1:
				err = g.SetLinkCost(l.A, l.B, l.Cost) // revert
			case 2:
				err = g.SetLinkDelay(l.A, l.B, float64(op)/4096)
			case 3:
				cur, _ := g.LinkCost(l.A, l.B)
				err = g.SetLinkCost(l.A, l.B, cur) // no-op
			}
			if err != nil {
				t.Fatal(err)
			}
			if op%3 == 0 {
				cost.refresh(t, g)
				requireIdentical(t, "fuzz/cost", g, cost.cur)
			}
		}
		cost.refresh(t, g)
		requireIdentical(t, "fuzz/cost", g, cost.cur)
		delay.refresh(t, g)
		requireIdentical(t, "fuzz/delay", g, delay.cur)
	})
}

// pickDriftLink finds a link whose cost drift has a small blast radius: it
// probes each link by wiggling its cost just below the current endpoint
// distance (so the link carries real shortest paths) and picks the one
// repairing the fewest rows — a realistic single-edge drift that stays
// comfortably inside the incremental threshold. Every probe is reverted,
// and reverts coalesce out of the delta log, so the graph ends unchanged.
// Returns the link and the wiggle base distance.
func pickDriftLink(t *testing.T, g *Graph) (Link, float64) {
	t.Helper()
	fresh := g.ShortestPaths(MetricCost)
	n := g.NumNodes()
	var best Link
	bestBase, bestRows := 0.0, n
	for _, cand := range g.Links() {
		orig, _ := g.LinkCost(cand.A, cand.B)
		d := fresh.Dist(cand.A, cand.B)
		if err := g.SetLinkCost(cand.A, cand.B, d*0.95); err != nil {
			t.Fatal(err)
		}
		_, s1 := fresh.RefreshFrom(g, nil)
		if err := g.SetLinkCost(cand.A, cand.B, d*0.90); err != nil {
			t.Fatal(err)
		}
		_, s2 := fresh.RefreshFrom(g, nil)
		if err := g.SetLinkCost(cand.A, cand.B, orig); err != nil {
			t.Fatal(err)
		}
		rows := s1.RowsRecomputed
		if s2.RowsRecomputed > rows {
			rows = s2.RowsRecomputed
		}
		if s1.Mode == RefreshIncremental && s2.Mode == RefreshIncremental &&
			s1.RowsRecomputed > 0 && s2.RowsRecomputed > 0 && rows < bestRows {
			best, bestBase, bestRows = cand, d, rows
		}
	}
	if bestRows > n/8 {
		t.Fatalf("no link with a small drift blast radius (best repairs %d/%d rows)", bestRows, n)
	}
	return best, bestBase
}

// TestRefreshFromAllocFree pins the steady-state incremental refresh at
// zero heap allocations: with a primed ping-pong pair and a warmed
// mutation log, repairing a single-edge drift must reuse the recycled
// slabs and the chain's scratch without touching the allocator.
func TestRefreshFromAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := MustTransitStub(128, rng)
	l, base := pickDriftLink(t, g)
	chain := refreshChain{cur: g.ShortestPaths(MetricCost)}

	// Warm up: grow the mutation log to its steady-state capacity and
	// prime the recycle pair plus the chain's scratch buffers.
	for i := 0; i < maxDeltaLog*2; i++ {
		if err := g.SetLinkCost(l.A, l.B, base*(0.90+0.05*float64(i%2))); err != nil {
			t.Fatal(err)
		}
		chain.refresh(t, g)
	}

	flip := 1 // warmup ended on the odd-parity cost; keep alternating
	allocs := testing.AllocsPerRun(100, func() {
		flip++
		if err := g.SetLinkCost(l.A, l.B, base*(0.90+0.05*float64(flip%2))); err != nil {
			t.Fatal(err)
		}
		old := chain.cur
		out, stats := chain.cur.RefreshFrom(g, chain.spare)
		if stats.Mode != RefreshIncremental || stats.RowsRecomputed == 0 {
			t.Fatalf("steady-state refresh = %+v, want incremental with rows", stats)
		}
		chain.cur, chain.spare = out, old
	})
	if allocs != 0 {
		t.Errorf("steady-state incremental refresh allocates %v objects per run, want 0", allocs)
	}
	requireIdentical(t, "alloc-free", g, chain.cur)
}
