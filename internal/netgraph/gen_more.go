package netgraph

import (
	"math/rand"
)

// Grid generates a rows×cols mesh with uniform-random link parameters —
// the classic data-center-floor topology for robustness studies.
func Grid(rows, cols int, costs, delay CostRange, rng *rand.Rand) *Graph {
	g := New(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddLink(id(r, c), id(r, c+1), costs.draw(rng), delay.draw(rng))
			}
			if r+1 < rows {
				g.MustAddLink(id(r, c), id(r+1, c), costs.draw(rng), delay.draw(rng))
			}
		}
	}
	return g
}

// Ring generates an n-cycle with uniform-random link parameters.
func Ring(n int, costs, delay CostRange, rng *rand.Rand) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.MustAddLink(NodeID(i), NodeID(i+1), costs.draw(rng), delay.draw(rng))
	}
	if n > 2 {
		g.MustAddLink(NodeID(n-1), 0, costs.draw(rng), delay.draw(rng))
	}
	return g
}

// ScaleFree generates a Barabási–Albert preferential-attachment graph:
// each new node attaches m links to existing nodes with probability
// proportional to their degree, producing the heavy-tailed hub structure
// of real overlay networks.
func ScaleFree(n, m int, costs, delay CostRange, rng *rand.Rand) *Graph {
	if m < 1 {
		m = 1
	}
	g := New(n)
	if n == 0 {
		return g
	}
	// Seed clique of m+1 nodes (or all of them for tiny n).
	seed := m + 1
	if seed > n {
		seed = n
	}
	for i := 0; i < seed; i++ {
		for j := i + 1; j < seed; j++ {
			g.MustAddLink(NodeID(i), NodeID(j), costs.draw(rng), delay.draw(rng))
		}
	}
	// Degree-weighted target list: each link endpoint appears once.
	var targets []NodeID
	for _, l := range g.Links() {
		targets = append(targets, l.A, l.B)
	}
	for v := seed; v < n; v++ {
		attached := map[NodeID]bool{}
		for len(attached) < m {
			var to NodeID
			if len(targets) == 0 {
				to = NodeID(rng.Intn(v))
			} else {
				to = targets[rng.Intn(len(targets))]
			}
			if int(to) >= v || attached[to] {
				// Resample; fall back to uniform when unlucky repeatedly.
				to = NodeID(rng.Intn(v))
				if attached[to] {
					continue
				}
			}
			attached[to] = true
			g.MustAddLink(NodeID(v), to, costs.draw(rng), delay.draw(rng))
			targets = append(targets, NodeID(v), to)
		}
	}
	return g
}
