// Package netgraph provides the physical network substrate used by the
// stream-query optimizers: a weighted undirected graph whose links carry a
// per-byte transfer cost and a propagation delay, shortest-path machinery,
// and synthetic topology generators modeled on the GT-ITM transit-stub
// internetwork model the paper evaluates on.
package netgraph

import (
	"fmt"
	"sort"
)

// NodeID identifies a physical network node. IDs are dense: a graph with n
// nodes uses IDs 0..n-1.
type NodeID int

// Link is an undirected physical link between two nodes.
type Link struct {
	A, B NodeID
	// Cost is the cost of transferring one unit of data (byte) across the
	// link. Deployment cost of a query plan is data rate times path cost.
	Cost float64
	// Delay is the one-way propagation delay in seconds, used by the IFLOW
	// runtime to simulate protocol message latency.
	Delay float64
}

type halfEdge struct {
	to    NodeID
	cost  float64
	delay float64
}

// Graph is a weighted undirected network graph. The zero value is not
// usable; create graphs with New.
type Graph struct {
	adj     [][]halfEdge
	nLinks  int
	version int // bumped on every mutation so path caches can detect staleness
}

// New returns an empty graph with n nodes and no links.
func New(n int) *Graph {
	if n < 0 {
		panic("netgraph: negative node count")
	}
	return &Graph{adj: make([][]halfEdge, n)}
}

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumLinks returns the number of undirected links.
func (g *Graph) NumLinks() int { return g.nLinks }

// Version returns a counter that is incremented by every mutation. Path
// snapshots record the version they were computed against.
func (g *Graph) Version() int { return g.version }

func (g *Graph) check(v NodeID) error {
	if v < 0 || int(v) >= len(g.adj) {
		return fmt.Errorf("netgraph: node %d out of range [0,%d)", v, len(g.adj))
	}
	return nil
}

// AddLink adds an undirected link between a and b. It is an error to link a
// node to itself, to use an out-of-range node, to use a non-positive cost,
// or to add a duplicate link.
func (g *Graph) AddLink(a, b NodeID, cost, delay float64) error {
	if err := g.check(a); err != nil {
		return err
	}
	if err := g.check(b); err != nil {
		return err
	}
	if a == b {
		return fmt.Errorf("netgraph: self-link at node %d", a)
	}
	if cost <= 0 {
		return fmt.Errorf("netgraph: non-positive link cost %g", cost)
	}
	if delay < 0 {
		return fmt.Errorf("netgraph: negative link delay %g", delay)
	}
	if g.HasLink(a, b) {
		return fmt.Errorf("netgraph: duplicate link %d-%d", a, b)
	}
	g.adj[a] = append(g.adj[a], halfEdge{b, cost, delay})
	g.adj[b] = append(g.adj[b], halfEdge{a, cost, delay})
	g.nLinks++
	g.version++
	return nil
}

// MustAddLink is AddLink but panics on error. Topology generators use it
// for links that are correct by construction.
func (g *Graph) MustAddLink(a, b NodeID, cost, delay float64) {
	if err := g.AddLink(a, b, cost, delay); err != nil {
		panic(err)
	}
}

// HasLink reports whether an a-b link exists.
func (g *Graph) HasLink(a, b NodeID) bool {
	if a < 0 || int(a) >= len(g.adj) {
		return false
	}
	for _, e := range g.adj[a] {
		if e.to == b {
			return true
		}
	}
	return false
}

// LinkCost returns the cost of the direct a-b link, or false if absent.
func (g *Graph) LinkCost(a, b NodeID) (float64, bool) {
	if a < 0 || int(a) >= len(g.adj) {
		return 0, false
	}
	for _, e := range g.adj[a] {
		if e.to == b {
			return e.cost, true
		}
	}
	return 0, false
}

// SetLinkCost updates the cost of an existing link in both directions. It
// is used by the adaptive runtime to model changing network conditions.
func (g *Graph) SetLinkCost(a, b NodeID, cost float64) error {
	if cost <= 0 {
		return fmt.Errorf("netgraph: non-positive link cost %g", cost)
	}
	found := false
	for i := range g.adj[a] {
		if g.adj[a][i].to == b {
			g.adj[a][i].cost = cost
			found = true
		}
	}
	if !found {
		return fmt.Errorf("netgraph: no link %d-%d", a, b)
	}
	for i := range g.adj[b] {
		if g.adj[b][i].to == a {
			g.adj[b][i].cost = cost
		}
	}
	g.version++
	return nil
}

// Neighbors returns the IDs adjacent to v in insertion order.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	out := make([]NodeID, len(g.adj[v]))
	for i, e := range g.adj[v] {
		out[i] = e.to
	}
	return out
}

// Degree returns the number of links incident to v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// Links returns all undirected links, each reported once with A < B, sorted
// by (A, B) for deterministic iteration.
func (g *Graph) Links() []Link {
	out := make([]Link, 0, g.nLinks)
	for a := range g.adj {
		for _, e := range g.adj[a] {
			if NodeID(a) < e.to {
				out = append(out, Link{NodeID(a), e.to, e.cost, e.delay})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Connected reports whether every node is reachable from node 0. The empty
// graph is connected.
func (g *Graph) Connected() bool {
	n := len(g.adj)
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[v] {
			if !seen[e.to] {
				seen[e.to] = true
				count++
				stack = append(stack, e.to)
			}
		}
	}
	return count == n
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]halfEdge, len(g.adj)), nLinks: g.nLinks, version: g.version}
	for i, es := range g.adj {
		c.adj[i] = append([]halfEdge(nil), es...)
	}
	return c
}
