// Package netgraph provides the physical network substrate used by the
// stream-query optimizers: a weighted undirected graph whose links carry a
// per-byte transfer cost and a propagation delay, shortest-path machinery,
// and synthetic topology generators modeled on the GT-ITM transit-stub
// internetwork model the paper evaluates on.
package netgraph

import (
	"fmt"
	"sort"
)

// NodeID identifies a physical network node. IDs are dense: a graph with n
// nodes uses IDs 0..n-1.
type NodeID int

// Link is an undirected physical link between two nodes.
type Link struct {
	A, B NodeID
	// Cost is the cost of transferring one unit of data (byte) across the
	// link. Deployment cost of a query plan is data rate times path cost.
	Cost float64
	// Delay is the one-way propagation delay in seconds, used by the IFLOW
	// runtime to simulate protocol message latency.
	Delay float64
}

type halfEdge struct {
	to    NodeID
	cost  float64
	delay float64
}

// EdgeDelta records one weight mutation of an existing link: the link's
// endpoints, which metric changed, and the weight before and after. The
// graph keeps a bounded log of these so path snapshots can repair
// themselves incrementally instead of recomputing all pairs from scratch.
type EdgeDelta struct {
	A, B     NodeID // normalized A < B
	Metric   Metric
	Old, New float64
}

// maxDeltaLog bounds the mutation log. A snapshot older than the log's
// horizon simply falls back to a full recompute, so the cap trades a
// little incremental coverage for bounded memory.
const maxDeltaLog = 1024

// Graph is a weighted undirected network graph. The zero value is not
// usable; create graphs with New.
type Graph struct {
	adj     [][]halfEdge
	nLinks  int
	version int // bumped on every mutation so path caches can detect staleness

	// log holds one EdgeDelta per weight-only mutation since logBase:
	// log[i] is the mutation that took the graph from version logBase+i
	// to logBase+i+1. Structural mutations (AddLink) clear the log — a
	// snapshot from before a structural change must recompute fully.
	log     []EdgeDelta
	logBase int
}

// New returns an empty graph with n nodes and no links.
func New(n int) *Graph {
	if n < 0 {
		panic("netgraph: negative node count")
	}
	return &Graph{adj: make([][]halfEdge, n)}
}

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumLinks returns the number of undirected links.
func (g *Graph) NumLinks() int { return g.nLinks }

// Version returns a counter that is incremented by every mutation. Path
// snapshots record the version they were computed against.
func (g *Graph) Version() int { return g.version }

func (g *Graph) check(v NodeID) error {
	if v < 0 || int(v) >= len(g.adj) {
		return fmt.Errorf("netgraph: node %d out of range [0,%d)", v, len(g.adj))
	}
	return nil
}

// AddLink adds an undirected link between a and b. It is an error to link a
// node to itself, to use an out-of-range node, to use a non-positive cost,
// or to add a duplicate link.
func (g *Graph) AddLink(a, b NodeID, cost, delay float64) error {
	if err := g.check(a); err != nil {
		return err
	}
	if err := g.check(b); err != nil {
		return err
	}
	if a == b {
		return fmt.Errorf("netgraph: self-link at node %d", a)
	}
	if cost <= 0 {
		return fmt.Errorf("netgraph: non-positive link cost %g", cost)
	}
	if delay < 0 {
		return fmt.Errorf("netgraph: negative link delay %g", delay)
	}
	if g.HasLink(a, b) {
		return fmt.Errorf("netgraph: duplicate link %d-%d", a, b)
	}
	g.adj[a] = append(g.adj[a], halfEdge{b, cost, delay})
	g.adj[b] = append(g.adj[b], halfEdge{a, cost, delay})
	g.nLinks++
	g.version++
	// Structural change: weight deltas cannot describe a new link, so
	// snapshots from before this version must recompute fully.
	g.log = g.log[:0]
	g.logBase = g.version
	return nil
}

// recordDelta appends one weight mutation to the bounded log and bumps the
// version. Call after the adjacency lists have been updated.
func (g *Graph) recordDelta(a, b NodeID, m Metric, old, new float64) {
	if a > b {
		a, b = b, a
	}
	if len(g.log) >= maxDeltaLog {
		// Drop the oldest half; snapshots older than the new horizon
		// fall back to full recompute.
		drop := len(g.log) / 2
		n := copy(g.log, g.log[drop:])
		g.log = g.log[:n]
		g.logBase += drop
	}
	g.log = append(g.log, EdgeDelta{A: a, B: b, Metric: m, Old: old, New: new})
	g.version++
}

// deltasSince returns the weight mutations that took the graph from
// version v to its current version, oldest first, and whether the log
// still covers that span. The slice aliases the graph's internal log and
// is only valid until the next mutation.
func (g *Graph) deltasSince(v int) ([]EdgeDelta, bool) {
	if v == g.version {
		return nil, true
	}
	if v < g.logBase || v > g.version {
		return nil, false
	}
	return g.log[v-g.logBase:], true
}

// MustAddLink is AddLink but panics on error. Topology generators use it
// for links that are correct by construction.
func (g *Graph) MustAddLink(a, b NodeID, cost, delay float64) {
	if err := g.AddLink(a, b, cost, delay); err != nil {
		panic(err)
	}
}

// HasLink reports whether an a-b link exists.
func (g *Graph) HasLink(a, b NodeID) bool {
	if a < 0 || int(a) >= len(g.adj) {
		return false
	}
	for _, e := range g.adj[a] {
		if e.to == b {
			return true
		}
	}
	return false
}

// LinkCost returns the cost of the direct a-b link, or false if absent.
func (g *Graph) LinkCost(a, b NodeID) (float64, bool) {
	if a < 0 || int(a) >= len(g.adj) {
		return 0, false
	}
	for _, e := range g.adj[a] {
		if e.to == b {
			return e.cost, true
		}
	}
	return 0, false
}

// SetLinkCost updates the cost of an existing link in both directions. It
// is used by the adaptive runtime to model changing network conditions.
// Setting a link to its current cost is a no-op: the version is not
// bumped, so existing path snapshots stay valid.
func (g *Graph) SetLinkCost(a, b NodeID, cost float64) error {
	if cost <= 0 {
		return fmt.Errorf("netgraph: non-positive link cost %g", cost)
	}
	old, found := 0.0, false
	for i := range g.adj[a] {
		if g.adj[a][i].to == b {
			old = g.adj[a][i].cost
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("netgraph: no link %d-%d", a, b)
	}
	if cost == old {
		return nil
	}
	for i := range g.adj[a] {
		if g.adj[a][i].to == b {
			g.adj[a][i].cost = cost
		}
	}
	for i := range g.adj[b] {
		if g.adj[b][i].to == a {
			g.adj[b][i].cost = cost
		}
	}
	g.recordDelta(a, b, MetricCost, old, cost)
	return nil
}

// SetLinkDelay updates the propagation delay of an existing link in both
// directions. Like SetLinkCost, setting the current value is a no-op.
func (g *Graph) SetLinkDelay(a, b NodeID, delay float64) error {
	if delay < 0 {
		return fmt.Errorf("netgraph: negative link delay %g", delay)
	}
	old, found := 0.0, false
	for i := range g.adj[a] {
		if g.adj[a][i].to == b {
			old = g.adj[a][i].delay
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("netgraph: no link %d-%d", a, b)
	}
	if delay == old {
		return nil
	}
	for i := range g.adj[a] {
		if g.adj[a][i].to == b {
			g.adj[a][i].delay = delay
		}
	}
	for i := range g.adj[b] {
		if g.adj[b][i].to == a {
			g.adj[b][i].delay = delay
		}
	}
	g.recordDelta(a, b, MetricDelay, old, delay)
	return nil
}

// Neighbors returns the IDs adjacent to v in insertion order.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	out := make([]NodeID, len(g.adj[v]))
	for i, e := range g.adj[v] {
		out[i] = e.to
	}
	return out
}

// Degree returns the number of links incident to v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// Links returns all undirected links, each reported once with A < B, sorted
// by (A, B) for deterministic iteration.
func (g *Graph) Links() []Link {
	out := make([]Link, 0, g.nLinks)
	for a := range g.adj {
		for _, e := range g.adj[a] {
			if NodeID(a) < e.to {
				out = append(out, Link{NodeID(a), e.to, e.cost, e.delay})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Connected reports whether every node is reachable from node 0. The empty
// graph is connected.
func (g *Graph) Connected() bool {
	n := len(g.adj)
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[v] {
			if !seen[e.to] {
				seen[e.to] = true
				count++
				stack = append(stack, e.to)
			}
		}
	}
	return count == n
}

// Clone returns a deep copy of the graph, including the mutation log so
// snapshots of the original can delta-refresh against the clone.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]halfEdge, len(g.adj)), nLinks: g.nLinks, version: g.version,
		log: append([]EdgeDelta(nil), g.log...), logBase: g.logBase}
	for i, es := range g.adj {
		c.adj[i] = append([]halfEdge(nil), es...)
	}
	return c
}
