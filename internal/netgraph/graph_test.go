package netgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddLinkValidation(t *testing.T) {
	g := New(3)
	if err := g.AddLink(0, 0, 1, 0); err == nil {
		t.Error("self-link accepted")
	}
	if err := g.AddLink(0, 3, 1, 0); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := g.AddLink(-1, 1, 1, 0); err == nil {
		t.Error("negative node accepted")
	}
	if err := g.AddLink(0, 1, 0, 0); err == nil {
		t.Error("zero cost accepted")
	}
	if err := g.AddLink(0, 1, 1, -1); err == nil {
		t.Error("negative delay accepted")
	}
	if err := g.AddLink(0, 1, 2, 0.5); err != nil {
		t.Fatalf("valid link rejected: %v", err)
	}
	if err := g.AddLink(1, 0, 2, 0.5); err == nil {
		t.Error("duplicate link accepted")
	}
	if g.NumLinks() != 1 {
		t.Errorf("NumLinks = %d, want 1", g.NumLinks())
	}
}

func TestLinksSortedAndSymmetric(t *testing.T) {
	g := New(4)
	g.MustAddLink(3, 1, 2, 0)
	g.MustAddLink(2, 0, 1, 0)
	g.MustAddLink(0, 1, 5, 0)
	ls := g.Links()
	if len(ls) != 3 {
		t.Fatalf("len(Links) = %d, want 3", len(ls))
	}
	for i, l := range ls {
		if l.A >= l.B {
			t.Errorf("link %d not normalized: %v", i, l)
		}
		if i > 0 && (ls[i-1].A > l.A || (ls[i-1].A == l.A && ls[i-1].B > l.B)) {
			t.Errorf("links not sorted at %d", i)
		}
	}
	if c, ok := g.LinkCost(1, 3); !ok || c != 2 {
		t.Errorf("LinkCost(1,3) = %g,%v", c, ok)
	}
	if c, ok := g.LinkCost(3, 1); !ok || c != 2 {
		t.Errorf("LinkCost(3,1) = %g,%v", c, ok)
	}
}

func TestSetLinkCost(t *testing.T) {
	g := New(2)
	g.MustAddLink(0, 1, 1, 0)
	v := g.Version()
	if err := g.SetLinkCost(0, 1, 9); err != nil {
		t.Fatal(err)
	}
	if c, _ := g.LinkCost(1, 0); c != 9 {
		t.Errorf("cost not updated symmetrically: %g", c)
	}
	if g.Version() == v {
		t.Error("version not bumped")
	}
	if err := g.SetLinkCost(0, 1, -1); err == nil {
		t.Error("negative cost accepted")
	}
	if err := g.SetLinkCost(1, 1, 2); err == nil {
		t.Error("missing link accepted")
	}
}

func TestConnected(t *testing.T) {
	g := New(3)
	g.MustAddLink(0, 1, 1, 0)
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	g.MustAddLink(1, 2, 1, 0)
	if !g.Connected() {
		t.Error("connected graph reported disconnected")
	}
	if !New(0).Connected() {
		t.Error("empty graph should be connected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(2)
	g.MustAddLink(0, 1, 1, 0)
	c := g.Clone()
	if err := c.SetLinkCost(0, 1, 7); err != nil {
		t.Fatal(err)
	}
	if cost, _ := g.LinkCost(0, 1); cost != 1 {
		t.Error("mutating clone changed original")
	}
}

func TestDijkstraLine(t *testing.T) {
	g := Line(5, 0.01)
	dist, hop := g.Dijkstra(0, MetricCost)
	for i := 0; i < 5; i++ {
		if dist[i] != float64(i) {
			t.Errorf("dist[%d] = %g, want %d", i, dist[i], i)
		}
	}
	if hop[4] != 1 {
		t.Errorf("firstHop to 4 = %d, want 1", hop[4])
	}
	dDist, _ := g.Dijkstra(0, MetricDelay)
	if math.Abs(dDist[4]-0.04) > 1e-12 {
		t.Errorf("delay dist = %g, want 0.04", dDist[4])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddLink(0, 1, 1, 0)
	dist, hop := g.Dijkstra(0, MetricCost)
	if !math.IsInf(dist[2], 1) || hop[2] != -1 {
		t.Errorf("unreachable node: dist=%g hop=%d", dist[2], hop[2])
	}
	p := g.ShortestPaths(MetricCost)
	if p.Reachable(0, 2) {
		t.Error("Reachable(0,2) = true")
	}
	if got := p.Path(0, 2); got != nil {
		t.Errorf("Path to unreachable = %v", got)
	}
	if p.Hops(0, 2) != -1 {
		t.Error("Hops to unreachable != -1")
	}
}

func TestPathsPreferCheapDetour(t *testing.T) {
	// Direct 0-2 link costs 10; detour through 1 costs 2.
	g := New(3)
	g.MustAddLink(0, 2, 10, 0)
	g.MustAddLink(0, 1, 1, 0)
	g.MustAddLink(1, 2, 1, 0)
	p := g.ShortestPaths(MetricCost)
	if p.Dist(0, 2) != 2 {
		t.Errorf("Dist(0,2) = %g, want 2", p.Dist(0, 2))
	}
	want := []NodeID{0, 1, 2}
	got := p.Path(0, 2)
	if len(got) != len(want) {
		t.Fatalf("Path = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Path = %v, want %v", got, want)
		}
	}
	if p.Hops(0, 2) != 2 {
		t.Errorf("Hops = %d, want 2", p.Hops(0, 2))
	}
}

func TestMedoidAndMaxPairwise(t *testing.T) {
	g := Line(5, 0)
	p := g.ShortestPaths(MetricCost)
	if m := p.Medoid([]NodeID{0, 1, 2, 3, 4}); m != 2 {
		t.Errorf("Medoid = %d, want 2", m)
	}
	if d := p.MaxPairwise([]NodeID{0, 4}); d != 4 {
		t.Errorf("MaxPairwise = %g, want 4", d)
	}
	if d := p.MaxPairwise([]NodeID{3}); d != 0 {
		t.Errorf("MaxPairwise single = %g, want 0", d)
	}
}

func TestPathSelfIsSingleton(t *testing.T) {
	g := Line(2, 0)
	p := g.ShortestPaths(MetricCost)
	path := p.Path(1, 1)
	if len(path) != 1 || path[0] != 1 {
		t.Errorf("Path(1,1) = %v", path)
	}
}

// Property: shortest-path distances form a metric (symmetry + triangle
// inequality) on connected random graphs.
func TestPathsMetricProperties(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(24)
		g := Random(n, 3, CostRange{1, 10}, CostRange{0.001, 0.01}, rng)
		p := g.ShortestPaths(MetricCost)
		for i := 0; i < n; i++ {
			if p.Dist(NodeID(i), NodeID(i)) != 0 {
				return false
			}
			for j := 0; j < n; j++ {
				if math.Abs(p.Dist(NodeID(i), NodeID(j))-p.Dist(NodeID(j), NodeID(i))) > 1e-9 {
					return false
				}
				for k := 0; k < n; k++ {
					if p.Dist(NodeID(i), NodeID(j)) >
						p.Dist(NodeID(i), NodeID(k))+p.Dist(NodeID(k), NodeID(j))+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: walking the reported path and summing link costs reproduces the
// reported distance.
func TestPathCostMatchesDist(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		g := Random(n, 2.5, CostRange{1, 5}, CostRange{0, 0}, rng)
		p := g.ShortestPaths(MetricCost)
		for trial := 0; trial < 20; trial++ {
			a := NodeID(rng.Intn(n))
			b := NodeID(rng.Intn(n))
			path := p.Path(a, b)
			if path == nil {
				continue
			}
			sum := 0.0
			for i := 0; i+1 < len(path); i++ {
				c, ok := g.LinkCost(path[i], path[i+1])
				if !ok {
					return false
				}
				sum += c
			}
			if math.Abs(sum-p.Dist(a, b)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestEccentricity(t *testing.T) {
	g := Line(4, 0)
	p := g.ShortestPaths(MetricCost)
	if e := p.Eccentricity(0); e != 3 {
		t.Errorf("Eccentricity(0) = %g, want 3", e)
	}
	if e := p.Eccentricity(1); e != 2 {
		t.Errorf("Eccentricity(1) = %g, want 2", e)
	}
}
