package netgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Grid(4, 5, CostRange{1, 2}, CostRange{0, 0.01}, rng)
	if g.NumNodes() != 20 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Links: rows*(cols-1) + cols*(rows-1) = 4*4 + 5*3 = 31.
	if g.NumLinks() != 31 {
		t.Errorf("links = %d, want 31", g.NumLinks())
	}
	if !g.Connected() {
		t.Error("grid not connected")
	}
	// Corner has degree 2, interior degree 4.
	if g.Degree(0) != 2 {
		t.Errorf("corner degree = %d", g.Degree(0))
	}
	if g.Degree(NodeID(1*5+2)) != 4 {
		t.Errorf("interior degree = %d", g.Degree(6))
	}
}

func TestRing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := Ring(8, CostRange{1, 1}, CostRange{0, 0}, rng)
	if g.NumLinks() != 8 || !g.Connected() {
		t.Fatalf("links=%d connected=%v", g.NumLinks(), g.Connected())
	}
	for v := 0; v < 8; v++ {
		if g.Degree(NodeID(v)) != 2 {
			t.Errorf("node %d degree %d", v, g.Degree(NodeID(v)))
		}
	}
	p := g.ShortestPaths(MetricCost)
	if p.Dist(0, 4) != 4 {
		t.Errorf("antipodal dist = %g", p.Dist(0, 4))
	}
	// Tiny rings.
	if Ring(2, CostRange{1, 1}, CostRange{}, rng).NumLinks() != 1 {
		t.Error("2-ring should be a single link")
	}
}

func TestScaleFreeConnectedAndHubby(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		g := ScaleFree(n, 2, CostRange{1, 5}, CostRange{0, 0.01}, rng)
		return g.NumNodes() == n && g.Connected()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
	// Hubs: the max degree should far exceed the attachment parameter.
	rng := rand.New(rand.NewSource(9))
	g := ScaleFree(200, 2, CostRange{1, 2}, CostRange{0, 0.01}, rng)
	maxDeg := 0
	for v := 0; v < 200; v++ {
		if d := g.Degree(NodeID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 10 {
		t.Errorf("max degree %d; no hubs emerged", maxDeg)
	}
}

func TestScaleFreeDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if g := ScaleFree(0, 2, CostRange{1, 1}, CostRange{}, rng); g.NumNodes() != 0 {
		t.Error("empty scale-free broken")
	}
	if g := ScaleFree(1, 2, CostRange{1, 1}, CostRange{}, rng); g.NumNodes() != 1 {
		t.Error("singleton scale-free broken")
	}
	g := ScaleFree(5, 0, CostRange{1, 1}, CostRange{}, rng)
	if !g.Connected() {
		t.Error("m=0 clamped to 1 should stay connected")
	}
}
