package netgraph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := MustTransitStub(64, rng)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ParseEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumLinks() != g.NumLinks() {
		t.Fatalf("round trip: %d nodes %d links, want %d nodes %d links",
			got.NumNodes(), got.NumLinks(), g.NumNodes(), g.NumLinks())
	}
	// Path structure must survive: compare all-pairs cost matrices.
	p1 := g.ShortestPaths(MetricCost)
	p2 := got.ShortestPaths(MetricCost)
	for a := 0; a < g.NumNodes(); a++ {
		for b := 0; b < g.NumNodes(); b++ {
			d1, d2 := p1.Dist(NodeID(a), NodeID(b)), p2.Dist(NodeID(a), NodeID(b))
			if diff := d1 - d2; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("dist(%d,%d) %g != %g after round trip", a, b, d1, d2)
			}
		}
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"short line":    "0 1 2.0\n",
		"bad node":      "x 1 2.0 0.1\n",
		"bad cost":      "0 1 nope 0.1\n",
		"bad delay":     "0 1 2.0 nope\n",
		"negative node": "-1 1 2.0 0.1\n",
		"empty":         "# just a comment\n",
	}
	for name, in := range cases {
		if _, err := ParseEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestParseEdgeListHeaderSizesGraph(t *testing.T) {
	in := "# nodes 5 links 1\n0 1 2.0 0.1\n"
	g, err := ParseEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 {
		t.Fatalf("header ignored: %d nodes, want 5", g.NumNodes())
	}
	if g.NumLinks() != 1 {
		t.Fatalf("%d links, want 1", g.NumLinks())
	}
}
