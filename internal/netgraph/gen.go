package netgraph

import (
	"fmt"
	"math/rand"
)

// CostRange is a closed interval from which link parameters are drawn
// uniformly at random.
type CostRange struct{ Lo, Hi float64 }

func (r CostRange) draw(rng *rand.Rand) float64 {
	if r.Hi <= r.Lo {
		return r.Lo
	}
	return r.Lo + rng.Float64()*(r.Hi-r.Lo)
}

// TransitStubConfig parameterizes the transit-stub topology generator, a
// from-scratch reimplementation of the GT-ITM internetwork model used in
// the paper: a backbone ("transit") domain of well-connected expensive
// links, with several cheap "stub" (intranet) domains hanging off each
// transit node.
type TransitStubConfig struct {
	// TotalNodes is the exact number of nodes to generate (transit plus
	// stub). Must be at least TransitNodes+1.
	TotalNodes int
	// TransitNodes is the size of the single transit (backbone) domain.
	TransitNodes int
	// StubsPerTransit is the number of stub domains attached to each
	// transit node. Stub nodes are distributed round-robin across all
	// stub domains so that TotalNodes is hit exactly.
	StubsPerTransit int
	// ExtraStubEdgeProb is the probability of adding each candidate
	// non-tree edge inside a stub domain, giving intranets some mesh.
	ExtraStubEdgeProb float64

	// TransitCost / StubCost / GatewayCost are per-byte link cost ranges.
	// The paper assigns stub links lower cost than transit links
	// ("transmission within an intranet being far cheaper than long-haul
	// links").
	TransitCost, StubCost, GatewayCost CostRange
	// Delay is the propagation-delay range applied to every link (the
	// Emulab testbed used 1-60 ms).
	Delay CostRange
}

// DefaultTransitStub returns the configuration used for the paper's
// standard Internet-style topology scaled to n total nodes: one transit
// domain of 4 nodes and 4 stub domains per transit node.
func DefaultTransitStub(n int) TransitStubConfig {
	return TransitStubConfig{
		TotalNodes:        n,
		TransitNodes:      4,
		StubsPerTransit:   4,
		ExtraStubEdgeProb: 0.15,
		TransitCost:       CostRange{10, 20},
		StubCost:          CostRange{1, 2},
		GatewayCost:       CostRange{4, 8},
		Delay:             CostRange{0.001, 0.060},
	}
}

// TransitStub generates a connected transit-stub topology. The same seed
// yields the same topology.
func TransitStub(cfg TransitStubConfig, rng *rand.Rand) (*Graph, error) {
	if cfg.TransitNodes < 1 {
		return nil, fmt.Errorf("netgraph: TransitNodes must be >= 1, got %d", cfg.TransitNodes)
	}
	if cfg.StubsPerTransit < 1 {
		return nil, fmt.Errorf("netgraph: StubsPerTransit must be >= 1, got %d", cfg.StubsPerTransit)
	}
	if cfg.TotalNodes < cfg.TransitNodes+1 {
		return nil, fmt.Errorf("netgraph: TotalNodes %d too small for %d transit nodes",
			cfg.TotalNodes, cfg.TransitNodes)
	}
	g := New(cfg.TotalNodes)
	t := cfg.TransitNodes

	// Transit domain: ring plus random chords for backbone redundancy.
	for i := 0; i < t-1; i++ {
		g.MustAddLink(NodeID(i), NodeID(i+1), cfg.TransitCost.draw(rng), cfg.Delay.draw(rng))
	}
	if t > 2 {
		g.MustAddLink(NodeID(t-1), NodeID(0), cfg.TransitCost.draw(rng), cfg.Delay.draw(rng))
	}
	for i := 0; i < t; i++ {
		for j := i + 2; j < t; j++ {
			if !g.HasLink(NodeID(i), NodeID(j)) && rng.Float64() < 0.25 {
				g.MustAddLink(NodeID(i), NodeID(j), cfg.TransitCost.draw(rng), cfg.Delay.draw(rng))
			}
		}
	}

	// Distribute the remaining nodes round-robin across the stub domains.
	nStubDomains := t * cfg.StubsPerTransit
	domains := make([][]NodeID, nStubDomains)
	for id := t; id < cfg.TotalNodes; id++ {
		d := (id - t) % nStubDomains
		domains[d] = append(domains[d], NodeID(id))
	}

	for d, members := range domains {
		if len(members) == 0 {
			continue
		}
		transit := NodeID(d / cfg.StubsPerTransit)
		// Random spanning tree inside the stub domain.
		for i := 1; i < len(members); i++ {
			parent := members[rng.Intn(i)]
			g.MustAddLink(parent, members[i], cfg.StubCost.draw(rng), cfg.Delay.draw(rng))
		}
		// Extra mesh edges.
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if !g.HasLink(members[i], members[j]) && rng.Float64() < cfg.ExtraStubEdgeProb {
					g.MustAddLink(members[i], members[j], cfg.StubCost.draw(rng), cfg.Delay.draw(rng))
				}
			}
		}
		// Gateway link from a random stub node to the transit node.
		gw := members[rng.Intn(len(members))]
		g.MustAddLink(transit, gw, cfg.GatewayCost.draw(rng), cfg.Delay.draw(rng))
	}
	return g, nil
}

// MustTransitStub is TransitStub with the default configuration for n
// nodes, panicking on configuration errors (impossible for n >= 5).
func MustTransitStub(n int, rng *rand.Rand) *Graph {
	g, err := TransitStub(DefaultTransitStub(n), rng)
	if err != nil {
		panic(err)
	}
	return g
}

// Random generates a connected random graph with n nodes and roughly
// avgDeg average degree: a random spanning tree plus uniform extra edges.
// Link costs are drawn from costs and delays from delay.
func Random(n int, avgDeg float64, costs, delay CostRange, rng *rand.Rand) *Graph {
	g := New(n)
	if n <= 1 {
		return g
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		a := NodeID(perm[rng.Intn(i)])
		b := NodeID(perm[i])
		g.MustAddLink(a, b, costs.draw(rng), delay.draw(rng))
	}
	extra := int(avgDeg*float64(n)/2) - (n - 1)
	for tries := 0; extra > 0 && tries < 20*n; tries++ {
		a := NodeID(rng.Intn(n))
		b := NodeID(rng.Intn(n))
		if a == b || g.HasLink(a, b) {
			continue
		}
		g.MustAddLink(a, b, costs.draw(rng), delay.draw(rng))
		extra--
	}
	return g
}

// Line generates a path graph 0-1-2-...-(n-1) with unit cost and the given
// delay on every link. Useful in tests where distances are obvious.
func Line(n int, delay float64) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.MustAddLink(NodeID(i), NodeID(i+1), 1, delay)
	}
	return g
}

// Star generates a star with node 0 at the center, unit cost links.
func Star(n int, delay float64) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.MustAddLink(0, NodeID(i), 1, delay)
	}
	return g
}
