package netgraph

import (
	"math"
	"sync/atomic"
)

// This file implements incremental all-pairs repair: instead of recomputing
// every source row after a link-weight change, RefreshFrom consults the
// graph's bounded mutation log, flags only the source rows whose shortest
// paths could have moved, and re-runs Dijkstra for just those rows into a
// recycled slab. The repaired snapshot is bit-identical — every dist value
// and every first-hop tie-break — to a fresh ShortestPaths; the affected-row
// test and the argument for why unaffected rows keep identical first hops
// are written up in DESIGN.md §14.

// RefreshMode classifies what a RefreshFrom call had to do.
type RefreshMode uint8

const (
	// RefreshNoop: the snapshot was already current; it was returned as is.
	RefreshNoop RefreshMode = iota
	// RefreshIncremental: only the affected source rows were recomputed.
	RefreshIncremental
	// RefreshFull: every row was recomputed (log exhausted, structural
	// change, delta refresh disabled, or too many rows affected).
	RefreshFull
)

func (m RefreshMode) String() string {
	switch m {
	case RefreshNoop:
		return "noop"
	case RefreshIncremental:
		return "incremental"
	case RefreshFull:
		return "full"
	}
	return "unknown"
}

// RefreshStats reports the scope of one RefreshFrom call.
type RefreshStats struct {
	Mode RefreshMode
	// EdgesChanged is the number of distinct links whose weight (under the
	// snapshot's metric) differs between the old and new graph versions,
	// after coalescing the mutation log (an exact revert counts as zero).
	// Zero for noop and full refreshes.
	EdgesChanged int
	// RowsRecomputed is the number of source rows re-run through Dijkstra:
	// 0 for noop, the affected count for incremental, n for full.
	RowsRecomputed int
	// Rows lists the recomputed source rows for an incremental refresh, in
	// ascending order, so consumers (hierarchy rebind) can patch only
	// entries touching these nodes. Nil for noop and full refreshes. The
	// slice is scratch-backed: it is valid only until the next RefreshFrom
	// call on the returned snapshot's chain.
	Rows []NodeID
}

// refreshScratch is the reusable working set of a delta refresh. It rides
// on the snapshot chain (moved from the refreshed snapshot to its
// replacement) so steady-state refreshes allocate nothing.
type refreshScratch struct {
	q     pq
	rows  []NodeID
	edges []EdgeDelta
}

// fullRefreshDen is the affected-fraction fallback threshold: if more than
// n/fullRefreshDen source rows are affected, a full parallel recompute is
// cheaper than serially repairing rows one by one.
const fullRefreshDen = 4

// deltaRefreshOff disables incremental repair globally when set (every
// refresh takes the full path). It exists so equivalence tests and the
// chaos harness can A/B the two maintenance strategies; the zero value
// means enabled.
var deltaRefreshOff atomic.Bool

// SetDeltaRefresh enables or disables incremental path repair process-wide.
// It is safe to call concurrently with refreshes; intended for tests.
func SetDeltaRefresh(enabled bool) { deltaRefreshOff.Store(!enabled) }

// DeltaRefreshEnabled reports whether incremental path repair is enabled.
func DeltaRefreshEnabled() bool { return !deltaRefreshOff.Load() }

// RefreshFrom returns a snapshot current for g, repairing p incrementally
// when the graph's mutation log permits. If p is already current it is
// returned unchanged. Otherwise a new snapshot is produced — p itself is
// never mutated, so concurrent readers of p stay safe — by copying p's
// tables and re-running Dijkstra only for affected source rows, falling
// back to a full parallel recompute when the log no longer covers p's
// version, the affected fraction exceeds 1/4, or delta refresh is disabled.
//
// recycle, if non-nil, donates its slabs to the result instead of
// allocating fresh ones. Passing a recycle target asserts the caller
// exclusively owns both p's and recycle's refresh chain (no other
// goroutine touches them); callers refreshing a shared snapshot must pass
// nil. The idiom is a two-snapshot ping-pong, after which steady-state
// incremental refreshes are allocation-free:
//
//	cur, spare := g.ShortestPaths(m), (*Paths)(nil)
//	...
//	old := cur
//	cur, stats = cur.RefreshFrom(g, spare)
//	if cur != old {
//		spare = old
//	}
//
// The result is guaranteed bit-identical (dist and first-hop tables) to
// g.ShortestPaths(p.Metric()); the property is enforced by fuzz and chaos
// equivalence tests.
func (p *Paths) RefreshFrom(g *Graph, recycle *Paths) (*Paths, RefreshStats) {
	if !p.StaleFor(g) {
		return p, RefreshStats{Mode: RefreshNoop}
	}
	if recycle == p {
		recycle = nil // cannot rebuild in place: p may have readers
	}
	// The scratch travels with the exclusively-owned chain only; shared
	// snapshots (recycle == nil) must not be mutated, even a scratch field.
	var sc *refreshScratch
	if recycle != nil {
		if sc = p.scratch; sc != nil {
			p.scratch = nil
		} else if sc = recycle.scratch; sc != nil {
			recycle.scratch = nil
		}
	}
	if sc == nil {
		sc = &refreshScratch{}
	}

	n := len(g.adj)
	var deltas []EdgeDelta
	ok := false
	if n == p.n && DeltaRefreshEnabled() {
		deltas, ok = g.deltasSince(p.version)
	}
	if !ok {
		return p.fullRefresh(g, recycle, sc)
	}

	// Coalesce the log per link: only the weight before the first and
	// after the last mutation matter, and a link reverted to its original
	// weight drops out entirely.
	edges := sc.edges[:0]
	for _, d := range deltas {
		if d.Metric != p.metric {
			continue
		}
		merged := false
		for i := range edges {
			if edges[i].A == d.A && edges[i].B == d.B {
				edges[i].New = d.New
				merged = true
				break
			}
		}
		if !merged {
			edges = append(edges, d)
		}
	}
	kept := edges[:0]
	for _, e := range edges {
		if e.Old != e.New {
			kept = append(kept, e)
		}
	}
	edges = kept
	sc.edges = edges

	// Affected-row test (DESIGN.md §14): row src must be recomputed iff
	// some changed link (a,b): old → new satisfies, against src's OLD row,
	//
	//	dist[a]+old == dist[b] or dist[b]+old == dist[a]   (the link lay
	//	    on some old shortest path from src — subpath optimality makes
	//	    this an equality test, and it also catches old ties), or
	//	dist[a]+new <= dist[b] or dist[b]+new <= dist[a]   (the link now
	//	    offers a path at least as good — <= rather than < so that a
	//	    newly created tie, which can flip a first hop without moving
	//	    any distance, still flags the row).
	//
	// Rows failing both tests for every changed link keep exactly their
	// old distances and first hops.
	rows := sc.rows[:0]
	for src := 0; src < n; src++ {
		row := p.dist[src]
		for _, e := range edges {
			da, db := row[e.A], row[e.B]
			if math.IsInf(da, 1) && math.IsInf(db, 1) {
				continue // link unreachable from src; weight is irrelevant
			}
			if da+e.Old == db || db+e.Old == da || da+e.New <= db || db+e.New <= da {
				rows = append(rows, NodeID(src))
				break
			}
		}
	}
	sc.rows = rows

	if len(rows)*fullRefreshDen > n {
		return p.fullRefresh(g, recycle, sc)
	}

	out := p.shellFor(g, recycle)
	copy(out.distSlab, p.distSlab)
	copy(out.nextSlab, p.nextSlab)
	for _, src := range rows {
		g.dijkstraInto(src, p.metric, out.dist[src], out.next[src], &sc.q)
	}
	out.scratch = sc
	return out, RefreshStats{
		Mode:           RefreshIncremental,
		EdgesChanged:   len(edges),
		RowsRecomputed: len(rows),
		Rows:           rows,
	}
}

// fullRefresh recomputes every row into a (possibly recycled) shell.
func (p *Paths) fullRefresh(g *Graph, recycle *Paths, sc *refreshScratch) (*Paths, RefreshStats) {
	out := p.shellFor(g, recycle)
	g.fillPaths(out)
	out.scratch = sc
	return out, RefreshStats{Mode: RefreshFull, RowsRecomputed: out.n}
}

// shellFor returns a snapshot shell sized for g under p's metric, reusing
// recycle's slabs when they fit and allocating otherwise.
func (p *Paths) shellFor(g *Graph, recycle *Paths) *Paths {
	n := len(g.adj)
	if recycle != nil && recycle.n == n {
		recycle.metric = p.metric
		recycle.version = g.version
		return recycle
	}
	return newPaths(p.metric, g.version, n)
}
