package netgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTransitStubExactSizeAndConnected(t *testing.T) {
	for _, n := range []int{8, 32, 64, 128, 511, 1024} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := MustTransitStub(n, rng)
		if g.NumNodes() != n {
			t.Errorf("n=%d: NumNodes = %d", n, g.NumNodes())
		}
		if !g.Connected() {
			t.Errorf("n=%d: not connected", n)
		}
	}
}

func TestTransitStubDeterministic(t *testing.T) {
	a := MustTransitStub(64, rand.New(rand.NewSource(7)))
	b := MustTransitStub(64, rand.New(rand.NewSource(7)))
	la, lb := a.Links(), b.Links()
	if len(la) != len(lb) {
		t.Fatalf("link counts differ: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("link %d differs: %v vs %v", i, la[i], lb[i])
		}
	}
}

func TestTransitStubCostStructure(t *testing.T) {
	cfg := DefaultTransitStub(128)
	rng := rand.New(rand.NewSource(1))
	g, err := TransitStub(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	t0 := NodeID(0)
	// Every transit-transit link must be costlier than every stub-stub link.
	minTransit, maxStub := 1e18, 0.0
	for _, l := range g.Links() {
		isTransit := l.A < NodeID(cfg.TransitNodes) && l.B < NodeID(cfg.TransitNodes)
		isStub := l.A >= NodeID(cfg.TransitNodes) && l.B >= NodeID(cfg.TransitNodes)
		switch {
		case isTransit:
			if l.Cost < minTransit {
				minTransit = l.Cost
			}
		case isStub:
			if l.Cost > maxStub {
				maxStub = l.Cost
			}
		}
		if l.Delay < cfg.Delay.Lo || l.Delay > cfg.Delay.Hi {
			t.Errorf("delay %g outside [%g,%g]", l.Delay, cfg.Delay.Lo, cfg.Delay.Hi)
		}
	}
	if minTransit <= maxStub {
		t.Errorf("transit links (min %g) not costlier than stub links (max %g)", minTransit, maxStub)
	}
	_ = t0
}

func TestTransitStubConfigErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []TransitStubConfig{
		{TotalNodes: 3, TransitNodes: 4, StubsPerTransit: 1},
		{TotalNodes: 10, TransitNodes: 0, StubsPerTransit: 1},
		{TotalNodes: 10, TransitNodes: 2, StubsPerTransit: 0},
	}
	for i, cfg := range bad {
		if _, err := TransitStub(cfg, rng); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestRandomConnected(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		g := Random(n, 3, CostRange{1, 2}, CostRange{0, 0.01}, rng)
		return g.Connected() && g.NumNodes() == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLineAndStar(t *testing.T) {
	if g := Line(1, 0); g.NumLinks() != 0 {
		t.Error("Line(1) has links")
	}
	g := Star(5, 0.002)
	if g.Degree(0) != 4 {
		t.Errorf("star center degree = %d", g.Degree(0))
	}
	for i := 1; i < 5; i++ {
		if g.Degree(NodeID(i)) != 1 {
			t.Errorf("leaf %d degree = %d", i, g.Degree(NodeID(i)))
		}
	}
}

func TestCostRangeDraw(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := CostRange{3, 3}
	if v := r.draw(rng); v != 3 {
		t.Errorf("degenerate range draw = %g", v)
	}
	r = CostRange{1, 2}
	for i := 0; i < 100; i++ {
		if v := r.draw(rng); v < 1 || v > 2 {
			t.Fatalf("draw %g outside range", v)
		}
	}
}
