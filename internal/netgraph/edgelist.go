package netgraph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in the plain edge-list interchange
// format cmd/topogen emits: a comment header, then one "a b cost delay"
// line per link. ParseEdgeList reads it back.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# nodes %d links %d\n", g.NumNodes(), g.NumLinks())
	fmt.Fprintf(bw, "# columns: nodeA nodeB costPerByte delaySeconds\n")
	for _, l := range g.Links() {
		// %g prints the shortest representation that parses back to the
		// exact value, so a round trip is lossless.
		fmt.Fprintf(bw, "%d %d %g %g\n", l.A, l.B, l.Cost, l.Delay)
	}
	return bw.Flush()
}

// ParseEdgeList reads an edge-list topology: blank lines and #-comments
// are skipped; every other line must be "a b cost delay". The graph is
// sized by the largest node id seen (a "# nodes N" header raises that
// minimum, preserving trailing isolated nodes).
func ParseEdgeList(r io.Reader) (*Graph, error) {
	type edge struct {
		a, b        NodeID
		cost, delay float64
	}
	var (
		edges    []edge
		minNodes int
		maxID    NodeID = -1
		lineNo   int
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// Honor the size header so isolated trailing nodes survive a
			// round trip; other comments are free-form.
			var n, links int
			if _, err := fmt.Sscanf(line, "# nodes %d links %d", &n, &links); err == nil {
				minNodes = n
			}
			continue
		}
		f := strings.Fields(line)
		if len(f) != 4 {
			return nil, fmt.Errorf("edgelist line %d: want \"a b cost delay\", got %q", lineNo, line)
		}
		a, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("edgelist line %d: node %q: %v", lineNo, f[0], err)
		}
		b, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("edgelist line %d: node %q: %v", lineNo, f[1], err)
		}
		cost, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return nil, fmt.Errorf("edgelist line %d: cost %q: %v", lineNo, f[2], err)
		}
		delay, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return nil, fmt.Errorf("edgelist line %d: delay %q: %v", lineNo, f[3], err)
		}
		if a < 0 || b < 0 {
			return nil, fmt.Errorf("edgelist line %d: negative node id in %q", lineNo, line)
		}
		e := edge{NodeID(a), NodeID(b), cost, delay}
		edges = append(edges, e)
		if e.a > maxID {
			maxID = e.a
		}
		if e.b > maxID {
			maxID = e.b
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("edgelist: %v", err)
	}
	n := int(maxID) + 1
	if minNodes > n {
		n = minNodes
	}
	if n == 0 {
		return nil, fmt.Errorf("edgelist: no nodes")
	}
	g := New(n)
	for _, e := range edges {
		if err := g.AddLink(e.a, e.b, e.cost, e.delay); err != nil {
			return nil, fmt.Errorf("edgelist: link %d-%d: %v", e.a, e.b, err)
		}
	}
	return g, nil
}
