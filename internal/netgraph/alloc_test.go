package netgraph

import (
	"math/rand"
	"testing"
)

// TestPathsDistAllocFree pins the all-pairs snapshot probe — the single
// hottest call in every planner — at zero heap allocations. The distance
// tables live in one contiguous slab, so a probe is pure index arithmetic.
func TestPathsDistAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := MustTransitStub(64, rng)
	p := g.ShortestPaths(MetricCost)
	sink := 0.0
	allocs := testing.AllocsPerRun(200, func() {
		for a := NodeID(0); a < 64; a++ {
			sink += p.Dist(a, 63-a)
		}
	})
	if allocs != 0 {
		t.Errorf("Paths.Dist allocates %v objects per run, want 0", allocs)
	}
	if sink == 0 {
		t.Error("distance sum unexpectedly zero")
	}
}

// TestPathsSlabRowsAlias asserts the row headers view the same memory as
// the slab, so row-based accessors (Path, Eccentricity) and the flat Dist
// probe can never disagree.
func TestPathsSlabRowsAlias(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := MustTransitStub(32, rng)
	p := g.ShortestPaths(MetricCost)
	for a := 0; a < p.n; a++ {
		for b := 0; b < p.n; b++ {
			if p.dist[a][b] != p.Dist(NodeID(a), NodeID(b)) {
				t.Fatalf("dist row/slab mismatch at (%d,%d)", a, b)
			}
			if p.next[a][b] != p.nextSlab[a*p.n+b] {
				t.Fatalf("next row/slab mismatch at (%d,%d)", a, b)
			}
		}
	}
}
