package netgraph

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Metric selects which link weight shortest paths minimize.
type Metric int

const (
	// MetricCost minimizes the summed per-byte transfer cost. Deployment
	// cost calculations use this metric.
	MetricCost Metric = iota
	// MetricDelay minimizes summed propagation delay. The IFLOW runtime
	// routes protocol messages along delay-shortest paths.
	MetricDelay
)

func (m Metric) String() string {
	switch m {
	case MetricCost:
		return "cost"
	case MetricDelay:
		return "delay"
	}
	return "unknown"
}

// Paths is an immutable all-pairs shortest path snapshot of a graph under
// one metric. It remembers the graph version it was computed against.
//
// Both tables live in single contiguous n×n slabs (distSlab/nextSlab);
// the dist/next row headers slice into them. One slab keeps the whole
// snapshot in as few cache lines as possible and lets Dist compute its
// answer with plain index arithmetic instead of chasing a row pointer.
type Paths struct {
	metric   Metric
	version  int
	n        int
	dist     [][]float64
	next     [][]int32 // next[a][b]: first hop from a toward b, -1 if unreachable
	distSlab []float64
	nextSlab []int32

	// scratch carries the delta-refresh working set along a chain of
	// exclusively-owned snapshots (see RefreshFrom); nil for snapshots
	// that have never been delta-refreshed with a recycle target.
	scratch *refreshScratch
}

// newPaths allocates a snapshot shell with its slabs and row headers.
func newPaths(m Metric, version, n int) *Paths {
	p := &Paths{metric: m, version: version, n: n,
		dist: make([][]float64, n), next: make([][]int32, n),
		distSlab: make([]float64, n*n), nextSlab: make([]int32, n*n)}
	for v := 0; v < n; v++ {
		p.dist[v] = p.distSlab[v*n : (v+1)*n : (v+1)*n]
		p.next[v] = p.nextSlab[v*n : (v+1)*n : (v+1)*n]
	}
	return p
}

type pqItem struct {
	node NodeID
	dist float64
}

// pq is a concrete binary min-heap over pqItem, ordered by dist. It
// replicates container/heap's sift order exactly — same comparisons, same
// swaps, ties keep the left child and pop the root via a swap with the
// last element — so the node visit order (and therefore every dist and
// first-hop table) is bit-identical to the previous interface-boxed
// implementation. Being concrete, push/pop compile to direct calls with no
// interface boxing and no per-item allocation.
type pq []pqItem

func (q pq) Len() int { return len(q) }

func (q *pq) push(it pqItem) {
	*q = append(*q, it)
	// Sift up (container/heap "up").
	h := *q
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2 // parent
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (q *pq) pop() pqItem {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	// Sift down over h[:n] (container/heap "down").
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1 // left child, kept on ties
		if j2 := j1 + 1; j2 < n && h[j2].dist < h[j1].dist {
			j = j2
		}
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	it := h[n]
	*q = h[:n]
	return it
}

func (g *Graph) weight(e halfEdge, m Metric) float64 {
	if m == MetricDelay {
		return e.delay
	}
	return e.cost
}

// Dijkstra computes single-source shortest distances and first hops from
// src under metric m. Unreachable nodes get +Inf distance and first hop -1.
func (g *Graph) Dijkstra(src NodeID, m Metric) (dist []float64, firstHop []int32) {
	n := len(g.adj)
	dist = make([]float64, n)
	firstHop = make([]int32, n)
	g.dijkstraInto(src, m, dist, firstHop, &pq{})
	return dist, firstHop
}

// dijkstraInto runs Dijkstra from src into caller-provided dist/firstHop
// slices (length NumNodes), reusing q as scratch so hot callers avoid
// re-allocating the priority queue per source.
func (g *Graph) dijkstraInto(src NodeID, m Metric, dist []float64, firstHop []int32, q *pq) {
	for i := range dist {
		dist[i] = math.Inf(1)
		firstHop[i] = -1
	}
	dist[src] = 0
	*q = append((*q)[:0], pqItem{src, 0})
	for q.Len() > 0 {
		it := q.pop()
		if it.dist > dist[it.node] {
			continue
		}
		for _, e := range g.adj[it.node] {
			nd := it.dist + g.weight(e, m)
			if nd < dist[e.to] {
				dist[e.to] = nd
				if it.node == src {
					firstHop[e.to] = int32(e.to)
				} else {
					firstHop[e.to] = firstHop[it.node]
				}
				q.push(pqItem{e.to, nd})
			}
		}
	}
}

// ShortestPaths computes an all-pairs snapshot under metric m by running
// Dijkstra from every node (the graphs here are sparse, so this beats
// Floyd-Warshall for the 1024-node topologies in the scalability study).
// The per-source searches are independent, so they fan out over a bounded
// worker pool (GOMAXPROCS workers, each with a reusable priority queue);
// every worker writes only its own rows, and each row is identical to what
// the serial computation produces, so results are bit-identical regardless
// of parallelism.
func (g *Graph) ShortestPaths(m Metric) *Paths {
	p := newPaths(m, g.version, len(g.adj))
	g.fillPaths(p)
	return p
}

// fillPaths fills every row of an allocated snapshot shell (fresh or
// recycled) with the worker-pool all-pairs computation described on
// ShortestPaths. The shell's metric/version/n must already be set.
func (g *Graph) fillPaths(p *Paths) {
	n := len(g.adj)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		g.shortestPathsInto(p)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var q pq
			for {
				v := int(next.Add(1)) - 1
				if v >= n {
					return
				}
				// Rows are disjoint slab regions; each worker writes
				// only the rows it claimed.
				g.dijkstraInto(NodeID(v), p.metric, p.dist[v], p.next[v], &q)
			}
		}()
	}
	wg.Wait()
}

// shortestPathsInto fills an all-pairs snapshot serially; the reference
// implementation the parallel path is checked against.
func (g *Graph) shortestPathsInto(p *Paths) {
	n := len(g.adj)
	var q pq
	for v := 0; v < n; v++ {
		g.dijkstraInto(NodeID(v), p.metric, p.dist[v], p.next[v], &q)
	}
}

// shortestPathsSerial is the serial all-pairs computation, kept as the
// reference the parallel ShortestPaths is tested and benchmarked against.
func (g *Graph) shortestPathsSerial(m Metric) *Paths {
	p := newPaths(m, g.version, len(g.adj))
	g.shortestPathsInto(p)
	return p
}

// Metric returns the metric the snapshot was computed under.
func (p *Paths) Metric() Metric { return p.metric }

// Version returns the graph version the snapshot was computed against.
func (p *Paths) Version() int { return p.version }

// StaleFor reports whether the snapshot no longer reflects g: the graph
// has been mutated (version bumped) since the snapshot was computed, or
// the snapshot covers a different node count. Consumers that cache a
// *Paths must either recompute when this returns true or refuse to plan
// against it — costs computed from a stale snapshot are silently wrong.
func (p *Paths) StaleFor(g *Graph) bool {
	return p.version != g.version || p.n != len(g.adj)
}

// Dist returns the shortest-path distance from a to b (+Inf if unreachable).
// The lookup is a single index into the contiguous slab — no row pointer
// chase, no allocation — because it is the innermost probe of every
// planner.
func (p *Paths) Dist(a, b NodeID) float64 { return p.distSlab[int(a)*p.n+int(b)] }

// Reachable reports whether b is reachable from a.
func (p *Paths) Reachable(a, b NodeID) bool { return !math.IsInf(p.dist[a][b], 1) }

// Path returns the node sequence of a shortest a→b path, including both
// endpoints. It returns nil if b is unreachable from a.
func (p *Paths) Path(a, b NodeID) []NodeID {
	if a == b {
		return []NodeID{a}
	}
	if p.next[a][b] < 0 {
		return nil
	}
	out := []NodeID{a}
	cur := a
	for cur != b {
		cur = NodeID(p.next[cur][b])
		out = append(out, cur)
		if len(out) > p.n {
			// Defensive: corrupt next-hop table would loop forever.
			panic("netgraph: next-hop cycle")
		}
	}
	return out
}

// Hops returns the number of links on a shortest a→b path, or -1 if
// unreachable.
func (p *Paths) Hops(a, b NodeID) int {
	path := p.Path(a, b)
	if path == nil {
		return -1
	}
	return len(path) - 1
}

// Eccentricity returns the maximum distance from v to any reachable node.
func (p *Paths) Eccentricity(v NodeID) float64 {
	max := 0.0
	for u := 0; u < p.n; u++ {
		if d := p.dist[v][u]; !math.IsInf(d, 1) && d > max {
			max = d
		}
	}
	return max
}

// Medoid returns the member of set that minimizes the sum of distances to
// all other members — the "most central" node, used as cluster coordinator.
// It panics on an empty set.
func (p *Paths) Medoid(set []NodeID) NodeID {
	if len(set) == 0 {
		panic("netgraph: medoid of empty set")
	}
	best, bestSum := set[0], math.Inf(1)
	for _, c := range set {
		sum := 0.0
		for _, o := range set {
			sum += p.dist[c][o]
		}
		if sum < bestSum {
			best, bestSum = c, sum
		}
	}
	return best
}

// MaxPairwise returns the maximum pairwise distance within set (0 for sets
// of size < 2). Hierarchy levels use it as the intra-cluster traversal cost
// bound d_i of Theorem 1.
func (p *Paths) MaxPairwise(set []NodeID) float64 {
	max := 0.0
	for i, a := range set {
		for _, b := range set[i+1:] {
			if d := p.dist[a][b]; d > max {
				max = d
			}
		}
	}
	return max
}
