package ads

import (
	"testing"

	"hnp/internal/netgraph"
	"hnp/internal/query"
)

func setup() (*query.Catalog, *query.Query, query.RateTable) {
	cat := query.NewCatalog(0.1)
	a := cat.Add("A", 10, 0)
	b := cat.Add("B", 20, 1)
	c := cat.Add("C", 5, 2)
	q, err := query.NewQuery(1, []query.StreamID{a, b, c}, 7)
	if err != nil {
		panic(err)
	}
	return cat, q, query.BuildRates(cat, q)
}

func TestAdvertiseDedup(t *testing.T) {
	r := NewRegistry()
	ad := Ad{Sig: "0|1", Streams: []query.StreamID{0, 1}, Node: 3, Rate: 20, QueryID: 1}
	if !r.Advertise(ad) {
		t.Error("first advertise rejected")
	}
	if r.Advertise(ad) {
		t.Error("duplicate advertise accepted")
	}
	other := ad
	other.Node = 4
	if !r.Advertise(other) {
		t.Error("same sig at new node rejected")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	if got := r.Lookup("0|1"); len(got) != 2 {
		t.Errorf("Lookup = %v", got)
	}
	if got := r.Lookup("9"); got != nil {
		t.Errorf("Lookup missing sig = %v", got)
	}
}

func TestAllDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Advertise(Ad{Sig: "2|3", Node: 9})
	r.Advertise(Ad{Sig: "0|1", Node: 5})
	r.Advertise(Ad{Sig: "0|1", Node: 2})
	all := r.All()
	if len(all) != 3 {
		t.Fatalf("All len = %d", len(all))
	}
	if all[0].Sig != "0|1" || all[0].Node != 2 || all[1].Node != 5 || all[2].Sig != "2|3" {
		t.Errorf("All order wrong: %v", all)
	}
}

func TestInputsFor(t *testing.T) {
	_, q, rt := setup()
	r := NewRegistry()
	// Usable: covers streams {0,1} of q.
	r.Advertise(Ad{Sig: query.SigOf([]query.StreamID{0, 1}), Streams: []query.StreamID{0, 1}, Node: 4, Rate: 99})
	// Skipped: single stream.
	r.Advertise(Ad{Sig: "2", Streams: []query.StreamID{2}, Node: 4, Rate: 5})
	// Skipped: stream 9 not in query.
	r.Advertise(Ad{Sig: "0|9", Streams: []query.StreamID{0, 9}, Node: 4, Rate: 5})
	ins := r.InputsFor(q, rt, nil)
	if len(ins) != 1 {
		t.Fatalf("InputsFor = %v", ins)
	}
	in := ins[0]
	if !in.Derived || in.Loc != 4 || in.Mask != 0b011 {
		t.Errorf("input = %+v", in)
	}
	// Rate must come from the rate table, not the ad.
	if in.Rate != rt.Rate(0b011) {
		t.Errorf("rate = %g, want %g", in.Rate, rt.Rate(0b011))
	}
	// within filter excludes the node.
	none := r.InputsFor(q, rt, func(n netgraph.NodeID) bool { return n != 4 })
	if len(none) != 0 {
		t.Errorf("filtered InputsFor = %v", none)
	}
}

func TestAdvertisePlan(t *testing.T) {
	_, q, rt := setup()
	l0 := query.Leaf(query.Input{Mask: 0b001, Rate: rt.Rate(0b001), Loc: 0, Sig: q.SigOf(0b001)})
	l1 := query.Leaf(query.Input{Mask: 0b010, Rate: rt.Rate(0b010), Loc: 1, Sig: q.SigOf(0b010)})
	l2 := query.Leaf(query.Input{Mask: 0b100, Rate: rt.Rate(0b100), Loc: 2, Sig: q.SigOf(0b100)})
	j1 := query.Join(l0, l1, 3, rt.Rate(0b011))
	root := query.Join(j1, l2, 5, rt.Rate(0b111))

	r := NewRegistry()
	if added := r.AdvertisePlan(q, root); added != 2 {
		t.Errorf("AdvertisePlan added %d, want 2", added)
	}
	if got := r.Lookup(q.SigOf(0b011)); len(got) != 1 || got[0].Node != 3 {
		t.Errorf("sub-join ad = %v", got)
	}
	if got := r.Lookup(q.SigOf(0b111)); len(got) != 1 || got[0].Node != 5 {
		t.Errorf("root ad = %v", got)
	}
	// Re-advertising the same plan adds nothing.
	if added := r.AdvertisePlan(q, root); added != 0 {
		t.Errorf("re-advertise added %d", added)
	}
}

func TestPrune(t *testing.T) {
	r := NewRegistry()
	ads := []Ad{
		{Sig: "0|1", Streams: []query.StreamID{0, 1}, Node: 3, Rate: 20},
		{Sig: "0|1", Streams: []query.StreamID{0, 1}, Node: 4, Rate: 20},
		{Sig: "1|2", Streams: []query.StreamID{1, 2}, Node: 3, Rate: 5},
		{Sig: "0|1|2", Streams: []query.StreamID{0, 1, 2}, Node: 5, Rate: 2},
	}
	for _, ad := range ads {
		if !r.Advertise(ad) {
			t.Fatalf("advertise %+v rejected", ad)
		}
	}
	// Retract everything hosted on node 3 (as after that node fails).
	if got := r.Prune(func(ad Ad) bool { return ad.Node != 3 }); got != 2 {
		t.Errorf("Prune removed %d, want 2", got)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d after prune, want 2", r.Len())
	}
	for _, ad := range r.All() {
		if ad.Node == 3 {
			t.Errorf("pruned ad survives: %+v", ad)
		}
	}
	// The fully retracted signature's bucket is gone, not empty.
	if got := r.Lookup("1|2"); got != nil {
		t.Errorf("Lookup of fully pruned sig = %v", got)
	}
	// Re-advertising after a prune works (no tombstones).
	if !r.Advertise(ads[2]) {
		t.Error("re-advertise after prune rejected")
	}
	// Pruning nothing removes nothing.
	if got := r.Prune(func(Ad) bool { return true }); got != 0 {
		t.Errorf("no-op prune removed %d", got)
	}
	// Pruning everything empties the registry.
	if got := r.Prune(func(Ad) bool { return false }); got != 3 {
		t.Errorf("full prune removed %d, want 3", got)
	}
	if r.Len() != 0 || len(r.All()) != 0 {
		t.Errorf("registry not empty after full prune: len=%d all=%v", r.Len(), r.All())
	}
}
