// Package ads implements stream advertisements: nodes advertise the base
// and derived streams (outputs of deployed operators) they host, and
// coordinators aggregate these up the hierarchy. Advertisements are what
// make operator reuse visible to the planners — a derived stream can feed
// a new query with no additional cost for transporting or recomputing its
// input data.
package ads

import (
	"sort"
	"sync"

	"hnp/internal/netgraph"
	"hnp/internal/obs"
	"hnp/internal/query"
)

// Ad advertises one derived stream: the output of a deployed operator (or
// a delivered sink stream) materialized at a node.
type Ad struct {
	// Sig is the canonical signature of the joined base streams.
	Sig string
	// Streams are the base streams combined by the advertised operator.
	Streams []query.StreamID
	// Node is where the stream is materialized.
	Node netgraph.NodeID
	// Rate is the expected output rate.
	Rate float64
	// QueryID records which query's deployment created the stream.
	QueryID int
	// Preds are the predicates the advertised operator was computed
	// under; a stricter query can reuse the stream through a residual
	// filter (query containment).
	Preds query.PredSet
	// ProjSig is the projection fragment of the advertising query over the
	// covered streams ("" when full tuples are shipped). Reuse requires an
	// exact match: a column-pruned stream cannot feed a query that needs
	// the dropped columns, and a full-width stream must not be conflated
	// with a pruned one when pricing reuse.
	ProjSig string
}

// Registry indexes advertisements by signature. The zero value is not
// usable; create with NewRegistry. A Registry is internally locked: any
// number of goroutines may advertise and look up concurrently, so planners
// can consult the registry while other deployments advertise into it.
type Registry struct {
	mu    sync.RWMutex
	bySig map[string][]Ad
	count int

	// Telemetry handles (nil until BindObs; all nil-safe no-ops then).
	obsAdvertised *obs.Counter
	obsDuplicates *obs.Counter
	obsLookups    *obs.Counter
	obsOffered    *obs.Counter
	obsPruned     *obs.Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{bySig: map[string][]Ad{}} }

// BindObs connects the registry to a telemetry registry: advertisement
// counts ("ads.advertised", "ads.duplicates") and reuse-lookup activity
// ("ads.lookups", "ads.reuse_offered") are recorded there. Reuse
// hit/miss outcomes are a planning-level judgement and are recorded by
// the deployment layer (see hnp.System), not here.
func (r *Registry) BindObs(reg *obs.Registry) {
	r.obsAdvertised = reg.Counter("ads.advertised")
	r.obsDuplicates = reg.Counter("ads.duplicates")
	r.obsLookups = reg.Counter("ads.lookups")
	r.obsOffered = reg.Counter("ads.reuse_offered")
	r.obsPruned = reg.Counter("ads.pruned")
}

// Prune retracts every advertisement the keep predicate rejects and
// returns how many were removed. It is the churn-side counterpart of
// Advertise: when deployments are torn down or nodes fail, the streams
// they materialized stop existing, and planners must stop being offered
// them (a reused input that no longer runs anywhere fails at deployment).
// Callers typically keep exactly the ads whose operator is still hosted by
// the runtime.
func (r *Registry) Prune(keep func(Ad) bool) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	removed := 0
	for sig, list := range r.bySig {
		kept := list[:0]
		for _, ad := range list {
			if keep(ad) {
				kept = append(kept, ad)
			} else {
				removed++
			}
		}
		if len(kept) == 0 {
			delete(r.bySig, sig)
		} else {
			r.bySig[sig] = kept
		}
	}
	r.count -= removed
	r.obsPruned.Add(int64(removed))
	return removed
}

// Advertise records an ad. A duplicate (same signature at the same node)
// is ignored, matching the one-time advertisement semantics of the paper.
// It reports whether the ad was new.
func (r *Registry) Advertise(ad Ad) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ex := range r.bySig[ad.Sig] {
		if ex.Node == ad.Node {
			r.obsDuplicates.Inc()
			return false
		}
	}
	r.bySig[ad.Sig] = append(r.bySig[ad.Sig], ad)
	r.count++
	r.obsAdvertised.Inc()
	return true
}

// Len returns the number of stored advertisements.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.count
}

// AddAll copies every ad from other into r (duplicates skipped). It
// returns the number of new ads.
func (r *Registry) AddAll(other *Registry) int {
	if other == nil {
		return 0
	}
	added := 0
	for _, ad := range other.All() {
		if r.Advertise(ad) {
			added++
		}
	}
	return added
}

// Clone returns an independent copy of the registry.
func (r *Registry) Clone() *Registry {
	c := NewRegistry()
	c.AddAll(r)
	return c
}

// Lookup returns all ads with the given signature. The result is a copy,
// safe to hold while other goroutines advertise.
func (r *Registry) Lookup(sig string) []Ad {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]Ad(nil), r.bySig[sig]...)
}

// All returns every ad, ordered by signature then node, for deterministic
// iteration.
func (r *Registry) All() []Ad {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sigs := make([]string, 0, len(r.bySig))
	for s := range r.bySig {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	var out []Ad
	for _, s := range sigs {
		as := append([]Ad(nil), r.bySig[s]...)
		sort.Slice(as, func(i, j int) bool { return as[i].Node < as[j].Node })
		out = append(out, as...)
	}
	return out
}

// InputsFor converts the ads usable by query q into planner inputs:
// every ad whose stream set is a subset of q's sources, covering at least
// two positions (single-stream ads duplicate base inputs), whose node
// passes the within filter (nil means anywhere), and whose predicates
// contain the query's — exact-match reuse and containment-based reuse
// through a residual filter applied at the producing node. Rates are
// taken from the query's rate table (which already reflects the query's
// own predicates) so reuse and fresh computation are costed consistently.
func (r *Registry) InputsFor(q *query.Query, rt query.RateTable, within func(netgraph.NodeID) bool) []query.Input {
	r.obsLookups.Inc()
	var out []query.Input
	for _, ad := range r.All() {
		mask, ok := q.MaskOf(ad.Streams)
		if !ok || mask.Count() < 2 {
			continue
		}
		if within != nil && !within(ad.Node) {
			continue
		}
		need := q.Preds.Restrict(ad.Streams)
		if !ad.Preds.Contains(need) {
			continue
		}
		if ad.ProjSig != q.ProjSigOf(mask) {
			continue
		}
		in := query.Input{
			Mask:    mask,
			Rate:    rt.Rate(mask),
			Loc:     ad.Node,
			Derived: true,
			Sig:     q.SigOf(mask),
		}
		if !ad.Preds.Equal(need) {
			// Strict containment: the reused stream is filtered at the
			// producing node before shipping.
			in.BaseSig = ad.Sig
		}
		out = append(out, in)
	}
	r.obsOffered.Add(int64(len(out)))
	return out
}

// AdvertisePlan records derived-stream ads for every operator of a
// deployed plan (reused subtrees are already advertised and are skipped by
// the duplicate check). It returns the number of new ads.
func (r *Registry) AdvertisePlan(q *query.Query, root *query.PlanNode) int {
	added := 0
	for _, op := range root.Operators() {
		if op.IsUnary() {
			// Aggregated outputs are terminal summaries, not reusable join
			// inputs.
			continue
		}
		streams := q.StreamsOf(op.Mask)
		ad := Ad{
			Sig:     q.SigOf(op.Mask),
			Streams: streams,
			Node:    op.Loc,
			Rate:    op.Rate,
			QueryID: q.ID,
			Preds:   q.Preds.Restrict(streams),
			ProjSig: q.ProjSigOf(op.Mask),
		}
		if r.Advertise(ad) {
			added++
		}
	}
	return added
}
