// Package cql parses the SQL-like continuous query language of the
// paper's examples (Section 1.1) into the library's query model:
//
//	SELECT FLIGHTS.STATUS, WEATHER.FORECAST
//	FROM FLIGHTS, WEATHER, CHECK-INS
//	WHERE FLIGHTS.DEPARTING = 'ATLANTA'
//	  AND FLIGHTS.NUM = CHECK-INS.FLNUM
//	  AND FLIGHTS.DP_TIME < 0.5
//	WINDOW 30 AGGREGATE COUNT
//
// FROM names the base streams (resolved against the catalog). WHERE terms
// are either equi-join conditions between two streams (validated, then
// subsumed by the catalog's pairwise selectivities) or selection
// predicates on one stream's attribute: numeric comparisons over the
// normalized [0,1] attribute domain, BETWEEN ranges, or string equality
// (hashed onto a deterministic sub-range so identical literals reuse
// operators and different literals do not alias). The optional
// WINDOW/AGGREGATE clause requests a windowed aggregation of the result.
package cql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokDot
	tokStar
	tokOp // = < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits the input into tokens. Identifiers may contain dashes and
// underscores after the first letter (the paper's CHECK-INS stream).
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < n && input[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op, i})
			i++
		case c == '\'':
			j := strings.IndexByte(input[i+1:], '\'')
			if j < 0 {
				return nil, fmt.Errorf("cql: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, input[i+1 : i+1+j], i})
			i += j + 2
		case unicode.IsDigit(c):
			j := i
			for j < n && (unicode.IsDigit(rune(input[j])) || input[j] == '.') {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) ||
				input[j] == '_' || input[j] == '-') {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("cql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}
