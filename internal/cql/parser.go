package cql

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"hnp/internal/netgraph"
	"hnp/internal/query"
	"hnp/internal/query/rewrite"
)

// EqSelectivity is the assumed selectivity of a string-equality predicate
// (e.g. DEPARTING = 'ATLANTA'): the literal is hashed onto a sub-range of
// this width inside the attribute's [0,1] domain, deterministically, so
// identical literals produce identical predicates (and reuse) while
// different literals land on (almost surely) disjoint ranges.
const EqSelectivity = 0.05

// Statement is a parsed continuous query, ready to instantiate against a
// sink and deploy.
type Statement struct {
	// Projection lists the selected columns ("STREAM.ATTR" or "*").
	// Every column's stream is validated against the FROM clause; the
	// rewrite pipeline turns the list into per-source column pruning.
	Projection []string
	// Star records an explicit `SELECT *`: the statement asks for full
	// tuples, which is NOT equivalent to any column list — it round-trips
	// through String() as `*` and disables column pruning.
	Star bool
	// ProjCols maps each projected stream to its selected attributes
	// (lowercased, deduplicated, in selection order). Empty for SELECT *.
	ProjCols map[query.StreamID][]string
	// Sources are the FROM streams resolved against the catalog.
	Sources []query.StreamID
	// Preds are the selection predicates from the WHERE clause.
	Preds query.PredSet
	// Contradiction marks a statement whose WHERE clause is provably
	// always-false (disjoint ranges on one attribute). Such statements
	// parse successfully — the rewrite pipeline folds them to a no-op
	// plan instead of the planner shipping tuples nobody can match.
	Contradiction bool
	// JoinConds records the equi-join conditions ("A.X=B.Y") for
	// documentation; the planner joins on the catalog's pairwise
	// selectivities.
	JoinConds []string
	// JoinAttrs maps each stream to its equi-join key attributes
	// (lowercased) — columns pruning must always keep.
	JoinAttrs map[query.StreamID][]string
	// Agg is the optional WINDOW/AGGREGATE clause.
	Agg *query.AggSpec
	// fromNames are the FROM streams' names as written (uppercased), for
	// String's round-trip rendering.
	fromNames []string
}

// Query instantiates the statement as a query with the given id,
// delivering to the sink node.
func (st *Statement) Query(id int, sink netgraph.NodeID) (*query.Query, error) {
	if st.Agg != nil {
		return query.NewQueryAgg(id, st.Sources, sink, st.Preds, *st.Agg)
	}
	return query.NewQueryPred(id, st.Sources, sink, st.Preds)
}

// Pushdown returns the statement's column and contradiction information
// in the rewrite pipeline's vocabulary.
func (st *Statement) Pushdown() rewrite.Projection {
	return rewrite.Projection{
		Star:          st.Star,
		Cols:          st.ProjCols,
		JoinAttrs:     st.JoinAttrs,
		Contradiction: st.Contradiction,
	}
}

type parser struct {
	toks    []token
	pos     int
	cat     *query.Catalog
	byN     map[string]query.StreamID
	sources []query.StreamID
	// proj holds the projection's (STREAM, ATTR) pairs until the FROM
	// clause resolves stream names — projection parses first but can only
	// be validated afterwards.
	proj [][2]string
}

// Parse parses a SELECT statement against the catalog. Stream names are
// matched case-insensitively.
func Parse(cat *query.Catalog, input string) (*Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	byName := map[string]query.StreamID{}
	for i := 0; i < cat.NumStreams(); i++ {
		s := cat.Stream(query.StreamID(i))
		byName[strings.ToUpper(s.Name)] = s.ID
	}
	p := &parser{toks: toks, cat: cat, byN: byName}
	return p.statement()
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) isKw(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
func (p *parser) expectKw(kw string) error {
	if !p.isKw(kw) {
		return fmt.Errorf("cql: expected %s, got %s at offset %d", kw, p.peek(), p.peek().pos)
	}
	p.next()
	return nil
}

func (p *parser) statement() (*Statement, error) {
	st := &Statement{}
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	if err := p.projection(st); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	if err := p.fromClause(st); err != nil {
		return nil, err
	}
	if err := p.resolveProjection(st); err != nil {
		return nil, err
	}
	var preds []query.Pred
	if p.isKw("WHERE") {
		p.next()
		var err error
		preds, err = p.whereClause(st)
		if err != nil {
			return nil, err
		}
	}
	if p.isKw("WINDOW") {
		p.next()
		if err := p.aggClause(st); err != nil {
			return nil, err
		}
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("cql: unexpected %s at offset %d", p.peek(), p.peek().pos)
	}
	ps, err := query.NewPredSet(preds...)
	if err != nil {
		// A provably-empty conjunction is a valid (if pointless) query:
		// record the contradiction for the rewrite pipeline to fold to a
		// no-op plan rather than rejecting the statement.
		if errors.Is(err, query.ErrContradiction) {
			st.Contradiction = true
			st.Preds = query.PredSet{}
			return st, nil
		}
		return nil, fmt.Errorf("cql: %w", err)
	}
	st.Preds = ps
	return st, nil
}

func (p *parser) projection(st *Statement) error {
	if p.peek().kind == tokStar {
		p.next()
		st.Projection = []string{"*"}
		st.Star = true
		return nil
	}
	for {
		stream, attr, err := p.column()
		if err != nil {
			return err
		}
		st.Projection = append(st.Projection, stream+"."+attr)
		p.proj = append(p.proj, [2]string{stream, attr})
		if p.peek().kind != tokComma {
			return nil
		}
		p.next()
	}
}

// resolveProjection validates the projection against the now-parsed FROM
// clause: every projected column must name a stream the query actually
// reads. It fills ProjCols with lowercased, deduplicated attributes.
func (p *parser) resolveProjection(st *Statement) error {
	if st.Star {
		return nil
	}
	st.ProjCols = map[query.StreamID][]string{}
	for _, col := range p.proj {
		id, ok := p.byN[col[0]]
		if !ok {
			return fmt.Errorf("cql: unknown stream %q in projection", col[0])
		}
		if !p.inFrom(id) {
			return fmt.Errorf("cql: projected stream %q not in FROM", col[0])
		}
		attr := strings.ToLower(col[1])
		dup := false
		for _, a := range st.ProjCols[id] {
			if a == attr {
				dup = true
				break
			}
		}
		if !dup {
			st.ProjCols[id] = append(st.ProjCols[id], attr)
		}
	}
	return nil
}

// column parses STREAM.ATTR.
func (p *parser) column() (string, string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", "", fmt.Errorf("cql: expected column, got %s at offset %d", t, t.pos)
	}
	if p.peek().kind != tokDot {
		return "", "", fmt.Errorf("cql: expected '.', got %s at offset %d", p.peek(), p.peek().pos)
	}
	p.next()
	a := p.next()
	if a.kind != tokIdent {
		return "", "", fmt.Errorf("cql: expected attribute, got %s at offset %d", a, a.pos)
	}
	return strings.ToUpper(t.text), strings.ToUpper(a.text), nil
}

func (p *parser) fromClause(st *Statement) error {
	seen := map[query.StreamID]bool{}
	for {
		t := p.next()
		if t.kind != tokIdent {
			return fmt.Errorf("cql: expected stream name, got %s at offset %d", t, t.pos)
		}
		id, ok := p.byN[strings.ToUpper(t.text)]
		if !ok {
			return fmt.Errorf("cql: unknown stream %q", t.text)
		}
		if seen[id] {
			return fmt.Errorf("cql: duplicate stream %q", t.text)
		}
		seen[id] = true
		st.Sources = append(st.Sources, id)
		st.fromNames = append(st.fromNames, strings.ToUpper(t.text))
		p.sources = st.Sources
		if p.peek().kind != tokComma {
			return nil
		}
		p.next()
	}
}

func (p *parser) whereClause(st *Statement) ([]query.Pred, error) {
	var preds []query.Pred
	for {
		pr, err := p.condition(st)
		if err != nil {
			return nil, err
		}
		preds = append(preds, pr...)
		if !p.isKw("AND") {
			return preds, nil
		}
		p.next()
	}
}

// condition parses one WHERE term: an equi-join (A.x = B.y), a numeric
// comparison (A.x < 0.5, A.x BETWEEN a AND b) or a string equality.
func (p *parser) condition(st *Statement) ([]query.Pred, error) {
	lStream, lAttr, err := p.column()
	if err != nil {
		return nil, err
	}
	lID, ok := p.byN[lStream]
	if !ok {
		return nil, fmt.Errorf("cql: unknown stream %q in WHERE", lStream)
	}
	if !p.inFrom(lID) {
		return nil, fmt.Errorf("cql: stream %q not in FROM", lStream)
	}

	if p.isKw("BETWEEN") {
		p.next()
		lo, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.number()
		if err != nil {
			return nil, err
		}
		return []query.Pred{{Stream: lID, Attr: strings.ToLower(lAttr), Range: query.Range{Lo: lo, Hi: hi}}}, nil
	}

	opTok := p.next()
	if opTok.kind != tokOp {
		return nil, fmt.Errorf("cql: expected operator, got %s at offset %d", opTok, opTok.pos)
	}
	rhs := p.peek()
	switch rhs.kind {
	case tokIdent: // equi-join: A.x = B.y
		if opTok.text != "=" {
			return nil, fmt.Errorf("cql: join condition must use '=', got %q", opTok.text)
		}
		rStream, rAttr, err := p.column()
		if err != nil {
			return nil, err
		}
		rID, ok := p.byN[rStream]
		if !ok {
			return nil, fmt.Errorf("cql: unknown stream %q in WHERE", rStream)
		}
		if !p.inFrom(rID) {
			return nil, fmt.Errorf("cql: stream %q not in FROM", rStream)
		}
		if rID == lID {
			return nil, fmt.Errorf("cql: self-join conditions are not supported")
		}
		st.JoinConds = append(st.JoinConds, fmt.Sprintf("%s.%s=%s.%s", lStream, lAttr, rStream, rAttr))
		if st.JoinAttrs == nil {
			st.JoinAttrs = map[query.StreamID][]string{}
		}
		st.JoinAttrs[lID] = appendAttr(st.JoinAttrs[lID], strings.ToLower(lAttr))
		st.JoinAttrs[rID] = appendAttr(st.JoinAttrs[rID], strings.ToLower(rAttr))
		return nil, nil
	case tokString: // string equality: hashed onto a deterministic range
		if opTok.text != "=" {
			return nil, fmt.Errorf("cql: string comparison must use '=', got %q", opTok.text)
		}
		p.next()
		lo := literalOffset(rhs.text)
		return []query.Pred{{
			Stream: lID, Attr: strings.ToLower(lAttr),
			Range: query.Range{Lo: lo, Hi: lo + EqSelectivity},
		}}, nil
	case tokNumber:
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		var r query.Range
		switch opTok.text {
		case "<", "<=":
			r = query.Range{Lo: 0, Hi: v}
		case ">", ">=":
			r = query.Range{Lo: v, Hi: 1}
		case "=":
			hi := v + EqSelectivity
			if hi > 1 {
				hi = 1
				v = 1 - EqSelectivity
			}
			r = query.Range{Lo: v, Hi: hi}
		default:
			return nil, fmt.Errorf("cql: unsupported operator %q", opTok.text)
		}
		if !r.Valid() {
			return nil, fmt.Errorf("cql: comparison with %g leaves an empty/invalid range "+
				"(attribute domains are normalized to [0,1])", v)
		}
		return []query.Pred{{Stream: lID, Attr: strings.ToLower(lAttr), Range: r}}, nil
	}
	return nil, fmt.Errorf("cql: expected value or column after %q, got %s", opTok.text, rhs)
}

func (p *parser) number() (float64, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("cql: expected number, got %s at offset %d", t, t.pos)
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("cql: bad number %q: %w", t.text, err)
	}
	return v, nil
}

func (p *parser) inFrom(id query.StreamID) bool {
	for _, s := range p.sources {
		if s == id {
			return true
		}
	}
	return false
}

// aggClause parses "WINDOW <seconds> AGGREGATE <fn>".
func (p *parser) aggClause(st *Statement) error {
	w, err := p.number()
	if err != nil {
		return err
	}
	if err := p.expectKw("AGGREGATE"); err != nil {
		return err
	}
	fn := p.next()
	if fn.kind != tokIdent {
		return fmt.Errorf("cql: expected aggregate function, got %s", fn)
	}
	switch strings.ToLower(fn.text) {
	case "count", "sum", "avg", "max", "min":
	default:
		return fmt.Errorf("cql: unknown aggregate %q", fn.text)
	}
	if w <= 0 {
		return fmt.Errorf("cql: window must be positive, got %g", w)
	}
	st.Agg = &query.AggSpec{Fn: strings.ToLower(fn.text), Window: w, OutRate: 1 / w}
	return nil
}

func appendAttr(attrs []string, a string) []string {
	for _, x := range attrs {
		if x == a {
			return attrs
		}
	}
	return append(attrs, a)
}

// String renders the statement back to parseable CQL. The rendering is
// canonical over the parsed representation — `SELECT *` stays `*`
// (explicitly full tuples, never rewritten to a column list), predicates
// render as BETWEEN over their normalized ranges — and Parse(String())
// reproduces the same sources, projection, predicate set and aggregate.
func (st *Statement) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if st.Star {
		b.WriteByte('*')
	} else {
		b.WriteString(strings.Join(st.Projection, ", "))
	}
	b.WriteString(" FROM ")
	return st.render(&b)
}

// render finishes String; split out so the FROM names can be derived from
// the statement itself (stream names are not stored — the caller's
// catalog owns them), via the names recorded at parse time.
func (st *Statement) render(b *strings.Builder) string {
	b.WriteString(strings.Join(st.fromNames, ", "))
	first := true
	writeCond := func(s string) {
		if first {
			b.WriteString(" WHERE ")
			first = false
		} else {
			b.WriteString(" AND ")
		}
		b.WriteString(s)
	}
	for _, jc := range st.JoinConds {
		writeCond(strings.ReplaceAll(jc, "=", " = "))
	}
	for _, pr := range st.Preds.Preds() {
		name := st.nameOf(pr.Stream)
		writeCond(fmt.Sprintf("%s.%s BETWEEN %s AND %s",
			name, strings.ToUpper(pr.Attr),
			strconv.FormatFloat(pr.Range.Lo, 'g', -1, 64),
			strconv.FormatFloat(pr.Range.Hi, 'g', -1, 64)))
	}
	if st.Agg != nil {
		fmt.Fprintf(b, " WINDOW %s AGGREGATE %s",
			strconv.FormatFloat(st.Agg.Window, 'g', -1, 64), strings.ToUpper(st.Agg.Fn))
	}
	return b.String()
}

func (st *Statement) nameOf(id query.StreamID) string {
	for i, s := range st.Sources {
		if s == id {
			return st.fromNames[i]
		}
	}
	return fmt.Sprintf("stream-%d", id)
}

// literalOffset hashes a string literal onto [0, 1-EqSelectivity].
func literalOffset(lit string) float64 {
	h := fnv.New64a()
	h.Write([]byte(strings.ToUpper(lit)))
	frac := float64(h.Sum64()%1_000_000) / 1_000_000
	return frac * (1 - EqSelectivity)
}
