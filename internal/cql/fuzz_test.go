package cql

import (
	"testing"
)

// FuzzParse feeds arbitrary byte strings through the lexer and parser
// against a fixed catalog. The property under test is totality: Parse
// must return a Statement or an error — never panic, never hang — and an
// accepted statement must survive conversion to a planner query (or
// reject it with an error) without panicking either.
func FuzzParse(f *testing.F) {
	seeds := []string{
		q1,
		"SELECT * FROM FLIGHTS",
		"SELECT * FROM FLIGHTS, WEATHER WHERE FLIGHTS.DESTN = WEATHER.CITY",
		"SELECT FLIGHTS.STATUS FROM FLIGHTS WHERE FLIGHTS.DP_TIME < 0.5",
		"SELECT * FROM FLIGHTS WHERE FLIGHTS.DEPARTING = 'ATLANTA'",
		"SELECT * FROM FLIGHTS WINDOW 30 AGGREGATE COUNT",
		"SELECT * FROM CHECK-INS WHERE CHECK-INS.FLNUM > 0.25 AND CHECK-INS.FLNUM < 0.75",
		"select * from flights, weather, check-ins",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM NOSUCH",
		"SELECT * FROM FLIGHTS WHERE",
		"SELECT * FROM FLIGHTS WHERE FLIGHTS.X =",
		"SELECT * FROM FLIGHTS WINDOW",
		"SELECT * FROM FLIGHTS WINDOW x AGGREGATE",
		"SELECT * FROM FLIGHTS WHERE FLIGHTS.A < 'oops'",
		"SELECT * FROM FLIGHTS WHERE WEATHER.CITY = FLIGHTS.DESTN",
		// Pushdown-hostile: an always-true range, a contradiction split
		// across two comparisons, a join key that is also projected, and a
		// projected stream that must be validated against FROM — every
		// rewrite rule and the projection resolver fire on one statement.
		"SELECT FLIGHTS.STATUS, WEATHER.CITY FROM FLIGHTS, WEATHER" +
			" WHERE FLIGHTS.DP_TIME BETWEEN 0 AND 1 AND FLIGHTS.STATUS < 0.3" +
			" AND FLIGHTS.STATUS > 0.7 AND FLIGHTS.DESTN = WEATHER.CITY",
		"SELECT NOPE.X FROM FLIGHTS",
		"SELECT WEATHER.CITY FROM FLIGHTS",
		"'unterminated",
		"SELECT * FROM FLIGHTS -- trailing garbage ;;;",
		"\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		cat := catalog()
		st, err := Parse(cat, input)
		if err != nil {
			return
		}
		if st == nil {
			t.Fatalf("Parse(%q) returned nil statement and nil error", input)
		}
		if len(st.Sources) == 0 {
			t.Fatalf("Parse(%q) accepted a statement with no sources", input)
		}
		// Accepted statements must convert cleanly (or reject with an
		// error) — downstream planners assume Query never panics.
		if q, qerr := st.Query(0, 0); qerr == nil && q == nil {
			t.Fatalf("Statement.Query of %q returned nil query and nil error", input)
		}
		// The pushdown projection view must be derivable without panicking,
		// and the canonical rendering must re-parse.
		_ = st.Pushdown()
		if _, rerr := Parse(cat, st.String()); rerr != nil {
			t.Fatalf("String of accepted %q does not re-parse: %q: %v", input, st.String(), rerr)
		}
	})
}
