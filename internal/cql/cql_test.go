package cql

import (
	"math"
	"strings"
	"testing"

	"hnp/internal/query"
)

func catalog() *query.Catalog {
	cat := query.NewCatalog(0.01)
	cat.Add("WEATHER", 18, 5)
	cat.Add("FLIGHTS", 60, 12)
	cat.Add("CHECK-INS", 45, 13)
	return cat
}

// The paper's Q1, in the supported grammar.
const q1 = `SELECT FLIGHTS.STATUS, WEATHER.FORECAST, CHECK-INS.STATUS
FROM FLIGHTS, WEATHER, CHECK-INS
WHERE FLIGHTS.DEPARTING = 'ATLANTA'
  AND FLIGHTS.DESTN = WEATHER.CITY
  AND FLIGHTS.NUM = CHECK-INS.FLNUM
  AND FLIGHTS.DP_TIME < 0.5`

func TestParsePaperQ1(t *testing.T) {
	cat := catalog()
	st, err := Parse(cat, q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sources) != 3 {
		t.Fatalf("sources = %v", st.Sources)
	}
	if len(st.Projection) != 3 {
		t.Errorf("projection = %v", st.Projection)
	}
	if len(st.JoinConds) != 2 {
		t.Errorf("join conds = %v", st.JoinConds)
	}
	// Two predicates on FLIGHTS: DEPARTING equality + DP_TIME range.
	if st.Preds.Len() != 2 {
		t.Fatalf("preds = %d (%s)", st.Preds.Len(), st.Preds.Sig())
	}
	flights := st.Sources[0]
	sel := st.Preds.StreamSelectivity(flights)
	// 0.05 (equality) × 0.5 (DP_TIME < 0.5).
	if math.Abs(sel-0.05*0.5) > 1e-9 {
		t.Errorf("FLIGHTS selectivity = %g", sel)
	}
	q, err := st.Query(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if q.K() != 3 || q.Agg != nil {
		t.Errorf("query = %+v", q)
	}
}

func TestStringEqualityDeterministicAndDistinct(t *testing.T) {
	cat := catalog()
	a1, err := Parse(cat, "SELECT * FROM FLIGHTS WHERE FLIGHTS.DEPARTING = 'ATLANTA'")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Parse(cat, "SELECT * FROM FLIGHTS WHERE FLIGHTS.DEPARTING = 'atlanta'")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse(cat, "SELECT * FROM FLIGHTS WHERE FLIGHTS.DEPARTING = 'BOSTON'")
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Preds.Equal(a2.Preds) {
		t.Error("identical literals (case-insensitive) differ")
	}
	if a1.Preds.Equal(b.Preds) {
		t.Error("different literals alias")
	}
}

func TestBetweenAndComparisons(t *testing.T) {
	cat := catalog()
	st, err := Parse(cat, "SELECT * FROM WEATHER WHERE WEATHER.TEMP BETWEEN 0.2 AND 0.6 AND WEATHER.WIND >= 0.8")
	if err != nil {
		t.Fatal(err)
	}
	if st.Preds.Len() != 2 {
		t.Fatalf("preds = %d", st.Preds.Len())
	}
	if got := st.Preds.StreamSelectivity(st.Sources[0]); math.Abs(got-0.4*0.2) > 1e-9 {
		t.Errorf("selectivity = %g", got)
	}
}

func TestAggregateClause(t *testing.T) {
	cat := catalog()
	st, err := Parse(cat, "SELECT * FROM FLIGHTS, WEATHER WHERE FLIGHTS.DESTN = WEATHER.CITY WINDOW 30 AGGREGATE COUNT")
	if err != nil {
		t.Fatal(err)
	}
	if st.Agg == nil || st.Agg.Fn != "count" || st.Agg.Window != 30 {
		t.Fatalf("agg = %+v", st.Agg)
	}
	q, err := st.Query(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg == nil {
		t.Error("query lost the aggregate")
	}
}

func TestParseErrors(t *testing.T) {
	cat := catalog()
	cases := map[string]string{
		"FROM FLIGHTS":                                               "expected SELECT",
		"SELECT * FROM NOPE":                                         "unknown stream",
		"SELECT * FROM FLIGHTS, FLIGHTS":                             "duplicate stream",
		"SELECT * FROM FLIGHTS WHERE WEATHER.X < 0.5":                "not in FROM",
		"SELECT * FROM FLIGHTS WHERE FLIGHTS.X < 2":                  "empty/invalid range",
		"SELECT * FROM FLIGHTS WHERE FLIGHTS.X ? 1":                  "unexpected character",
		"SELECT * FROM FLIGHTS WHERE FLIGHTS.X < 'A'":                "must use '='",
		"SELECT * FROM FLIGHTS trailing":                             "unexpected",
		"SELECT * FROM FLIGHTS WINDOW 0 AGGREGATE SUM":               "window must be positive",
		"SELECT * FROM FLIGHTS WINDOW 5 AGGREGATE XXX":               "unknown aggregate",
		"SELECT * FROM FLIGHTS WHERE FLIGHTS.A = 'x":                 "unterminated string",
		"SELECT * FROM FLIGHTS, WEATHER WHERE FLIGHTS.A = FLIGHTS.B": "self-join",
		"SELECT * FROM FLIGHTS WHERE FLIGHTS.X BETWEEN 0.5 AND 0.1":  "invalid range",
	}
	for input, frag := range cases {
		_, err := Parse(cat, input)
		if err == nil {
			t.Errorf("%q: no error", input)
			continue
		}
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("%q: error %q missing %q", input, err, frag)
		}
	}
}

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT a.b, c-d.e <= 0.25 'lit'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokenKind{tokIdent, tokIdent, tokDot, tokIdent, tokComma,
		tokIdent, tokDot, tokIdent, tokOp, tokNumber, tokString, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (toks=%v)", i, kinds[i], want[i], toks)
		}
	}
	if toks[9].text != "0.25" || toks[10].text != "lit" {
		t.Errorf("texts wrong: %v", toks)
	}
}
