package cql

import (
	"math"
	"strings"
	"testing"

	"hnp/internal/query"
)

func catalog() *query.Catalog {
	cat := query.NewCatalog(0.01)
	cat.Add("WEATHER", 18, 5)
	cat.Add("FLIGHTS", 60, 12)
	cat.Add("CHECK-INS", 45, 13)
	return cat
}

// The paper's Q1, in the supported grammar.
const q1 = `SELECT FLIGHTS.STATUS, WEATHER.FORECAST, CHECK-INS.STATUS
FROM FLIGHTS, WEATHER, CHECK-INS
WHERE FLIGHTS.DEPARTING = 'ATLANTA'
  AND FLIGHTS.DESTN = WEATHER.CITY
  AND FLIGHTS.NUM = CHECK-INS.FLNUM
  AND FLIGHTS.DP_TIME < 0.5`

func TestParsePaperQ1(t *testing.T) {
	cat := catalog()
	st, err := Parse(cat, q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sources) != 3 {
		t.Fatalf("sources = %v", st.Sources)
	}
	if len(st.Projection) != 3 {
		t.Errorf("projection = %v", st.Projection)
	}
	if len(st.JoinConds) != 2 {
		t.Errorf("join conds = %v", st.JoinConds)
	}
	// Two predicates on FLIGHTS: DEPARTING equality + DP_TIME range.
	if st.Preds.Len() != 2 {
		t.Fatalf("preds = %d (%s)", st.Preds.Len(), st.Preds.Sig())
	}
	flights := st.Sources[0]
	sel := st.Preds.StreamSelectivity(flights)
	// 0.05 (equality) × 0.5 (DP_TIME < 0.5).
	if math.Abs(sel-0.05*0.5) > 1e-9 {
		t.Errorf("FLIGHTS selectivity = %g", sel)
	}
	q, err := st.Query(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if q.K() != 3 || q.Agg != nil {
		t.Errorf("query = %+v", q)
	}
}

func TestStringEqualityDeterministicAndDistinct(t *testing.T) {
	cat := catalog()
	a1, err := Parse(cat, "SELECT * FROM FLIGHTS WHERE FLIGHTS.DEPARTING = 'ATLANTA'")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Parse(cat, "SELECT * FROM FLIGHTS WHERE FLIGHTS.DEPARTING = 'atlanta'")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse(cat, "SELECT * FROM FLIGHTS WHERE FLIGHTS.DEPARTING = 'BOSTON'")
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Preds.Equal(a2.Preds) {
		t.Error("identical literals (case-insensitive) differ")
	}
	if a1.Preds.Equal(b.Preds) {
		t.Error("different literals alias")
	}
}

func TestBetweenAndComparisons(t *testing.T) {
	cat := catalog()
	st, err := Parse(cat, "SELECT * FROM WEATHER WHERE WEATHER.TEMP BETWEEN 0.2 AND 0.6 AND WEATHER.WIND >= 0.8")
	if err != nil {
		t.Fatal(err)
	}
	if st.Preds.Len() != 2 {
		t.Fatalf("preds = %d", st.Preds.Len())
	}
	if got := st.Preds.StreamSelectivity(st.Sources[0]); math.Abs(got-0.4*0.2) > 1e-9 {
		t.Errorf("selectivity = %g", got)
	}
}

func TestAggregateClause(t *testing.T) {
	cat := catalog()
	st, err := Parse(cat, "SELECT * FROM FLIGHTS, WEATHER WHERE FLIGHTS.DESTN = WEATHER.CITY WINDOW 30 AGGREGATE COUNT")
	if err != nil {
		t.Fatal(err)
	}
	if st.Agg == nil || st.Agg.Fn != "count" || st.Agg.Window != 30 {
		t.Fatalf("agg = %+v", st.Agg)
	}
	q, err := st.Query(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg == nil {
		t.Error("query lost the aggregate")
	}
}

func TestParseErrors(t *testing.T) {
	cat := catalog()
	cases := map[string]string{
		"FROM FLIGHTS":                                               "expected SELECT",
		"SELECT * FROM NOPE":                                         "unknown stream",
		"SELECT * FROM FLIGHTS, FLIGHTS":                             "duplicate stream",
		"SELECT * FROM FLIGHTS WHERE WEATHER.X < 0.5":                "not in FROM",
		"SELECT * FROM FLIGHTS WHERE FLIGHTS.X < 2":                  "empty/invalid range",
		"SELECT * FROM FLIGHTS WHERE FLIGHTS.X ? 1":                  "unexpected character",
		"SELECT * FROM FLIGHTS WHERE FLIGHTS.X < 'A'":                "must use '='",
		"SELECT * FROM FLIGHTS trailing":                             "unexpected",
		"SELECT * FROM FLIGHTS WINDOW 0 AGGREGATE SUM":               "window must be positive",
		"SELECT * FROM FLIGHTS WINDOW 5 AGGREGATE XXX":               "unknown aggregate",
		"SELECT * FROM FLIGHTS WHERE FLIGHTS.A = 'x":                 "unterminated string",
		"SELECT * FROM FLIGHTS, WEATHER WHERE FLIGHTS.A = FLIGHTS.B": "self-join",
		"SELECT * FROM FLIGHTS WHERE FLIGHTS.X BETWEEN 0.5 AND 0.1":  "invalid range",
	}
	for input, frag := range cases {
		_, err := Parse(cat, input)
		if err == nil {
			t.Errorf("%q: no error", input)
			continue
		}
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("%q: error %q missing %q", input, err, frag)
		}
	}
}

func TestProjectionValidation(t *testing.T) {
	cat := catalog()
	cases := map[string]string{
		"SELECT NOPE.X FROM FLIGHTS":            `unknown stream "NOPE" in projection`,
		"SELECT WEATHER.CITY FROM FLIGHTS":      `projected stream "WEATHER" not in FROM`,
		"SELECT FLIGHTS.A, NOPE.B FROM FLIGHTS": `unknown stream "NOPE" in projection`,
	}
	for input, frag := range cases {
		_, err := Parse(cat, input)
		if err == nil {
			t.Errorf("%q: no error", input)
			continue
		}
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("%q: error %q missing %q", input, err, frag)
		}
	}

	st, err := Parse(cat, "SELECT FLIGHTS.STATUS, FLIGHTS.Status, WEATHER.TEMP FROM FLIGHTS, WEATHER")
	if err != nil {
		t.Fatal(err)
	}
	flights, weather := st.Sources[0], st.Sources[1]
	if got := st.ProjCols[flights]; len(got) != 1 || got[0] != "status" {
		t.Errorf("FLIGHTS cols = %v, want deduplicated [status]", got)
	}
	if got := st.ProjCols[weather]; len(got) != 1 || got[0] != "temp" {
		t.Errorf("WEATHER cols = %v", got)
	}
}

// TestStringRoundTrip checks Parse∘String is a fixpoint: re-parsing the
// rendering reproduces the same sources, projection (star stays star),
// predicates and aggregate.
func TestStringRoundTrip(t *testing.T) {
	cat := catalog()
	for _, input := range []string{
		q1,
		"SELECT * FROM FLIGHTS",
		"SELECT * FROM FLIGHTS, WEATHER WHERE FLIGHTS.DESTN = WEATHER.CITY",
		"SELECT FLIGHTS.STATUS FROM FLIGHTS WHERE FLIGHTS.DP_TIME < 0.5",
		"SELECT * FROM FLIGHTS WINDOW 30 AGGREGATE COUNT",
		"SELECT * FROM CHECK-INS WHERE CHECK-INS.FLNUM BETWEEN 0.25 AND 0.75",
	} {
		st, err := Parse(cat, input)
		if err != nil {
			t.Fatalf("%q: %v", input, err)
		}
		rendered := st.String()
		st2, err := Parse(cat, rendered)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", rendered, input, err)
		}
		if st2.Star != st.Star {
			t.Errorf("%q: star %v -> %v through %q", input, st.Star, st2.Star, rendered)
		}
		if len(st2.Sources) != len(st.Sources) {
			t.Errorf("%q: sources %v -> %v", input, st.Sources, st2.Sources)
		}
		if !st2.Preds.Equal(st.Preds) {
			t.Errorf("%q: predicates changed through %q", input, rendered)
		}
		if (st2.Agg == nil) != (st.Agg == nil) {
			t.Errorf("%q: aggregate lost through %q", input, rendered)
		}
		if got := st2.String(); got != rendered {
			t.Errorf("String not canonical: %q -> %q", rendered, got)
		}
	}
}

// TestContradictionParses: a provably-empty WHERE clause is a valid
// statement — it parses, flags Contradiction, and carries no predicates;
// the rewrite pipeline (not the parser) folds it to a no-op plan.
func TestContradictionParses(t *testing.T) {
	cat := catalog()
	st, err := Parse(cat, "SELECT FLIGHTS.STATUS FROM FLIGHTS WHERE FLIGHTS.X < 0.2 AND FLIGHTS.X > 0.7")
	if err != nil {
		t.Fatalf("contradictory statement rejected: %v", err)
	}
	if !st.Contradiction {
		t.Fatal("Contradiction flag not set")
	}
	if st.Preds.Len() != 0 {
		t.Errorf("contradictory statement kept %d predicates", st.Preds.Len())
	}
	if !st.Pushdown().Contradiction {
		t.Error("Pushdown() lost the contradiction")
	}
}

func TestPushdownProjection(t *testing.T) {
	cat := catalog()
	st, err := Parse(cat, q1)
	if err != nil {
		t.Fatal(err)
	}
	pd := st.Pushdown()
	if pd.Star || pd.Contradiction {
		t.Fatalf("pushdown = %+v", pd)
	}
	flights, weather, checkins := st.Sources[0], st.Sources[1], st.Sources[2]
	if got := pd.Cols[flights]; len(got) != 1 || got[0] != "status" {
		t.Errorf("FLIGHTS cols = %v", got)
	}
	// FLIGHTS joins on both DESTN (to WEATHER.CITY) and NUM (to
	// CHECK-INS.FLNUM); pruning must keep the join keys.
	if got := pd.JoinAttrs[flights]; len(got) != 2 {
		t.Errorf("FLIGHTS join attrs = %v", got)
	}
	if got := pd.JoinAttrs[weather]; len(got) != 1 || got[0] != "city" {
		t.Errorf("WEATHER join attrs = %v", got)
	}
	if got := pd.JoinAttrs[checkins]; len(got) != 1 || got[0] != "flnum" {
		t.Errorf("CHECK-INS join attrs = %v", got)
	}

	star, err := Parse(cat, "SELECT * FROM FLIGHTS")
	if err != nil {
		t.Fatal(err)
	}
	if pd := star.Pushdown(); !pd.Star || pd.Cols != nil {
		t.Errorf("star pushdown = %+v", pd)
	}
}

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT a.b, c-d.e <= 0.25 'lit'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokenKind{tokIdent, tokIdent, tokDot, tokIdent, tokComma,
		tokIdent, tokDot, tokIdent, tokOp, tokNumber, tokString, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (toks=%v)", i, kinds[i], want[i], toks)
		}
	}
	if toks[9].text != "0.25" || toks[10].text != "lit" {
		t.Errorf("texts wrong: %v", toks)
	}
}
