package iflow

import (
	"testing"

	"hnp/internal/core"
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

func TestUpdateLinkCostRefreshesRouting(t *testing.T) {
	w := makeTestWorld(t, 8)
	rt := New(w.g, DefaultConfig(), 4)
	links := w.g.Links()
	l := links[0]
	before := rt.Cost.Dist(l.A, l.B)
	if err := rt.UpdateLinkCost(l.A, l.B, l.Cost*100); err != nil {
		t.Fatal(err)
	}
	after := rt.Cost.Dist(l.A, l.B)
	if after < before {
		t.Errorf("cost %g -> %g after 100x link price", before, after)
	}
	if err := rt.UpdateLinkCost(l.A, l.B, -1); err == nil {
		t.Error("negative cost accepted")
	}
}

// The middleware must migrate a deployed plan when a cheaper one is
// available — here the initial deployment is deliberately mis-placed, as
// it would be after a drastic network change — and the query must keep
// flowing afterwards.
func TestAdaptMigratesAwayFromBadPlan(t *testing.T) {
	w := makeTestWorld(t, 9)
	rt := New(w.g, DefaultConfig(), 5)

	// Mis-place every operator of the near-optimal plan at the node most
	// expensive to reach from the sink.
	worst, worstD := netgraph.NodeID(0), -1.0
	for v := 0; v < w.g.NumNodes(); v++ {
		if d := rt.Cost.Dist(netgraph.NodeID(v), w.q.Sink); d > worstD {
			worst, worstD = netgraph.NodeID(v), d
		}
	}
	var misplace func(n *query.PlanNode) *query.PlanNode
	misplace = func(n *query.PlanNode) *query.PlanNode {
		if n.IsLeaf() {
			return query.Leaf(*n.In)
		}
		return query.Join(misplace(n.L), misplace(n.R), worst, n.Rate)
	}
	bad := misplace(w.plan)

	opt, err := core.Optimal(w.g, rt.Cost, w.cat, w.q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Cost(rt.Cost.Dist, w.q.Sink) < opt.Cost*1.10 {
		t.Skip("misplacement not bad enough on this topology")
	}
	if err := rt.Deploy(w.q, bad, w.cat, 300); err != nil {
		t.Fatal(err)
	}
	plans := map[int]*query.PlanNode{w.q.ID: bad}
	replan := func(q *query.Query) (*query.PlanNode, error) {
		res, err := core.Optimal(rt.G, rt.Cost, w.cat, q, nil)
		if err != nil {
			return nil, err
		}
		return res.Plan, nil
	}
	stats := rt.Adapt([]*query.Query{w.q}, plans, w.cat, replan, 0.05, 10, 300)
	rt.RunFor(300)

	if stats.Checks == 0 {
		t.Fatal("middleware never checked")
	}
	if stats.Migrations == 0 {
		t.Error("no migration away from misplaced plan")
	}
	if plans[w.q.ID] == bad {
		t.Error("plan map not updated")
	}
	if rt.Sink(w.q.ID).Tuples == 0 {
		t.Error("query starved across migration")
	}
}

func TestAdaptNoMigrationWhenStable(t *testing.T) {
	w := makeTestWorld(t, 10)
	rt := New(w.g, DefaultConfig(), 6)
	// Start from the optimal plan: nothing better can appear.
	opt, err := core.Optimal(w.g, rt.Cost, w.cat, w.q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy(w.q, opt.Plan, w.cat, 100); err != nil {
		t.Fatal(err)
	}
	plans := map[int]*query.PlanNode{w.q.ID: opt.Plan}
	replan := func(q *query.Query) (*query.PlanNode, error) {
		res, err := core.Optimal(rt.G, rt.Cost, w.cat, q, nil)
		if err != nil {
			return nil, err
		}
		return res.Plan, nil
	}
	stats := rt.Adapt([]*query.Query{w.q}, plans, w.cat, replan, 0.05, 10, 100)
	rt.RunFor(100)
	if stats.Migrations != 0 {
		t.Errorf("%d migrations under stable conditions", stats.Migrations)
	}
}
