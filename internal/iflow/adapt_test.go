package iflow

import (
	"testing"

	"hnp/internal/core"
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

func TestUpdateLinkCostRefreshesRouting(t *testing.T) {
	w := makeTestWorld(t, 8)
	rt := New(w.g, DefaultConfig(), 4)
	links := w.g.Links()
	l := links[0]
	before := rt.Cost.Dist(l.A, l.B)
	if err := rt.UpdateLinkCost(l.A, l.B, l.Cost*100); err != nil {
		t.Fatal(err)
	}
	after := rt.Cost.Dist(l.A, l.B)
	if after < before {
		t.Errorf("cost %g -> %g after 100x link price", before, after)
	}
	if err := rt.UpdateLinkCost(l.A, l.B, -1); err == nil {
		t.Error("negative cost accepted")
	}
}

// A batched update must land every link's new price in one snapshot
// refresh, and a bad entry must not abort the rest of the batch or leave
// routing stale.
func TestUpdateLinkCostsBatch(t *testing.T) {
	w := makeTestWorld(t, 11)
	rt := New(w.g, DefaultConfig(), 14)
	links := w.g.Links()
	batch := []LinkCostUpdate{
		{A: links[0].A, B: links[0].B, Cost: links[0].Cost * 50},
		{A: links[1].A, B: links[1].B, Cost: links[1].Cost * 50},
		{A: links[2].A, B: links[2].B, Cost: links[2].Cost * 50},
	}
	verBefore := w.g.Version()
	if err := rt.UpdateLinkCosts(batch); err != nil {
		t.Fatal(err)
	}
	if w.g.Version() == verBefore {
		t.Error("batch applied no graph mutation")
	}
	if rt.Cost.StaleFor(w.g) {
		t.Error("cost paths stale after batched update")
	}
	for _, u := range batch {
		single := New(w.g, DefaultConfig(), 14)
		if got := single.Cost.Dist(u.A, u.B); got != rt.Cost.Dist(u.A, u.B) {
			t.Errorf("batched distance %d-%d = %g, fresh recompute %g", u.A, u.B, rt.Cost.Dist(u.A, u.B), got)
		}
	}

	// A bad entry surfaces as an error, but the valid entries before and
	// after it are applied and the snapshot still refreshed.
	bad := []LinkCostUpdate{
		{A: links[3].A, B: links[3].B, Cost: links[3].Cost * 10},
		{A: links[4].A, B: links[4].B, Cost: -1},
		{A: links[5].A, B: links[5].B, Cost: links[5].Cost * 10},
	}
	if err := rt.UpdateLinkCosts(bad); err == nil {
		t.Error("negative cost accepted in batch")
	}
	if rt.Cost.StaleFor(w.g) {
		t.Error("cost paths stale after failed batch")
	}
}

// The middleware must migrate a deployed plan when a cheaper one is
// available — here the initial deployment is deliberately mis-placed, as
// it would be after a drastic network change — and the query must keep
// flowing afterwards.
func TestAdaptMigratesAwayFromBadPlan(t *testing.T) {
	w := makeTestWorld(t, 9)
	rt := New(w.g, DefaultConfig(), 5)

	// Mis-place every operator of the near-optimal plan at the node most
	// expensive to reach from the sink.
	worst, worstD := netgraph.NodeID(0), -1.0
	for v := 0; v < w.g.NumNodes(); v++ {
		if d := rt.Cost.Dist(netgraph.NodeID(v), w.q.Sink); d > worstD {
			worst, worstD = netgraph.NodeID(v), d
		}
	}
	var misplace func(n *query.PlanNode) *query.PlanNode
	misplace = func(n *query.PlanNode) *query.PlanNode {
		if n.IsLeaf() {
			return query.Leaf(*n.In)
		}
		return query.Join(misplace(n.L), misplace(n.R), worst, n.Rate)
	}
	bad := misplace(w.plan)

	opt, err := core.Optimal(w.g, rt.Cost, w.cat, w.q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Cost(rt.Cost.Dist, w.q.Sink) < opt.Cost*1.10 {
		t.Skip("misplacement not bad enough on this topology")
	}
	if err := rt.Deploy(w.q, bad, w.cat, 300); err != nil {
		t.Fatal(err)
	}
	plans := map[int]*query.PlanNode{w.q.ID: bad}
	replan := func(q *query.Query) (*query.PlanNode, error) {
		res, err := core.Optimal(rt.G, rt.Cost, w.cat, q, nil)
		if err != nil {
			return nil, err
		}
		return res.Plan, nil
	}
	stats := rt.Adapt([]*query.Query{w.q}, plans, w.cat, replan, 0.05, 10, 300)
	rt.RunFor(300)

	if stats.Checks == 0 {
		t.Fatal("middleware never checked")
	}
	if stats.Migrations == 0 {
		t.Error("no migration away from misplaced plan")
	}
	if plans[w.q.ID] == bad {
		t.Error("plan map not updated")
	}
	if rt.Sink(w.q.ID).Tuples == 0 {
		t.Error("query starved across migration")
	}
}

func TestAdaptNoMigrationWhenStable(t *testing.T) {
	w := makeTestWorld(t, 10)
	rt := New(w.g, DefaultConfig(), 6)
	// Start from the optimal plan: nothing better can appear.
	opt, err := core.Optimal(w.g, rt.Cost, w.cat, w.q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy(w.q, opt.Plan, w.cat, 100); err != nil {
		t.Fatal(err)
	}
	plans := map[int]*query.PlanNode{w.q.ID: opt.Plan}
	replan := func(q *query.Query) (*query.PlanNode, error) {
		res, err := core.Optimal(rt.G, rt.Cost, w.cat, q, nil)
		if err != nil {
			return nil, err
		}
		return res.Plan, nil
	}
	stats := rt.Adapt([]*query.Query{w.q}, plans, w.cat, replan, 0.05, 10, 100)
	rt.RunFor(100)
	if stats.Migrations != 0 {
		t.Errorf("%d migrations under stable conditions", stats.Migrations)
	}
}
