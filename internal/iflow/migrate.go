package iflow

import (
	"fmt"

	"hnp/internal/netgraph"
	"hnp/internal/obs"
	"hnp/internal/query"
)

// MigrationReport quantifies one diff-based plan migration.
type MigrationReport struct {
	// Kept counts operators shared by the old and new plan: they kept
	// running through the migration — windows, statistics and
	// subscribers intact.
	Kept int
	// Created counts operators the migration newly instantiated.
	Created int
	// Retired counts operators the migration removed from the runtime:
	// old operators released and collected, including upstream chains
	// that lost their last subscriber. Operators other deployments still
	// use are not retired, only released.
	Retired int
	// Moved counts logical operators present in both plans at different
	// nodes — physically a create+retire pair, reported separately
	// because their accumulated state could not be carried.
	Moved int
	// Rewired counts kept operators whose upstream producers changed
	// (typically because a child moved).
	Rewired int
	// StateCarried counts tuples buffered in kept operators' join
	// windows and aggregation accumulators at migration time — state a
	// full teardown would have destroyed.
	StateCarried int64
	// BytesSaved is the size of that carried state in cost units.
	BytesSaved float64
	// TeardownOps is the operator churn of the teardown path this
	// migration replaced: every old plan operator torn down plus every
	// new plan operator instantiated.
	TeardownOps int
	// StateShipped counts window and accumulator tuples copied from moved
	// operators' old hosts to their new ones so moved joins resume with
	// their windows instead of empty ones.
	StateShipped int64
	// BytesShipped is the size of that shipped state in cost units; it is
	// added to the runtime's TotalBytes — migrating is not free.
	BytesShipped float64
	// ShipCost is the bytes×link-cost of shipping that state, added to
	// the runtime's TotalCost. Adaptive controllers divide it by Delta()
	// to learn the measured per-operator cost of churn.
	ShipCost float64
	// LoadDelta is the per-node input-rate change the migration causes:
	// the new plan's operator input rates minus the old plan's, keyed by
	// hosting node. Load trackers fold it in with ApplyDelta instead of
	// a whole-plan remove+add pair, which would double-count kept
	// operators' load while both bookings were absent.
	LoadDelta map[netgraph.NodeID]float64
}

// Delta returns the operator churn the migration actually cost: creates
// plus retires. Delta < TeardownOps is the point of migrating.
func (m MigrationReport) Delta() int { return m.Created + m.Retired }

// String renders the report for traces and logs.
func (m MigrationReport) String() string {
	return fmt.Sprintf("kept=%d created=%d retired=%d moved=%d rewired=%d carried=%d tuples (%.0f bytes) shipped=%d tuples (%.0f bytes; teardown churns %d ops)",
		m.Kept, m.Created, m.Retired, m.Moved, m.Rewired, m.StateCarried, m.BytesSaved, m.StateShipped, m.BytesShipped, m.TeardownOps)
}

// Migrate replaces a deployed query's plan by applying the diff between
// the running plan and the new one, transactionally:
//
//   - operators present in both plans (same canonical identity — see
//     query.Diff) keep running in place: their join windows, output
//     statistics and downstream subscribers survive, so shared-signature
//     operators and base-stream taps never flap;
//   - only the changed subtrees are instantiated, and only the operators
//     the old plan alone used are retired;
//   - kept operators whose children moved are rewired to their new
//     producers;
//   - the query's sink statistics object is untouched — counters carry
//     across the migration natively;
//   - instantiation is the only fallible phase and it precedes every
//     mutation of the old deployment: any error rolls the partial build
//     back and leaves the old plan running exactly as before.
//
// The query's sink cannot move (a query's sink is part of its identity);
// use Undeploy+Deploy for that. It returns a report of what the diff
// preserved and churned.
func (rt *Runtime) Migrate(q *query.Query, plan *query.PlanNode, cat *query.Catalog, until float64) (MigrationReport, error) {
	sp := rt.spMigrate.Start()
	defer sp.End()
	parent := rt.takeTraceParent()
	var rep MigrationReport
	dep, ok := rt.deploys[q.ID]
	if !ok {
		return rep, fmt.Errorf("iflow: query %d not deployed", q.ID)
	}
	if err := plan.Validate(); err != nil {
		return rep, fmt.Errorf("iflow: query %d: %w", q.ID, err)
	}
	sink := rt.sinks[q.ID]
	if q.Sink != sink.Node {
		return rep, fmt.Errorf("iflow: query %d migration cannot move the sink (%d -> %d)", q.ID, sink.Node, q.Sink)
	}
	rt.refreshPaths()

	// Flatten each plan exactly once: the deployed side's IR is cached on
	// the deployment (built lazily the first time it migrates), the new
	// side's is computed here and becomes the cache after the swap.
	if dep.ir == nil {
		dep.ir = q.IR(dep.plan)
	}
	oldIR, newIR := dep.ir, q.IR(plan)
	diff := query.DiffIR(oldIR, newIR)
	opsBefore := len(rt.ops)

	// Phase 1 — instantiate. The new plan is built while the old one
	// keeps running, so shared-identity operators are reused in place and
	// only changed subtrees allocate anything. This is the only fallible
	// phase: on error the partial build is rolled back and the old
	// deployment is untouched.
	inst, err := rt.instantiate(q, plan, cat, until)
	if err != nil {
		if rt.tr.On() {
			rt.tr.Emit(obs.Event{
				Kind: obs.KindMigrationRolledBack, Parent: parent, Trace: obs.QueryTrace(q.ID),
				Query: q.ID, Node: int(q.Sink), VTime: rt.Sim.Now(), Detail: err.Error(),
			})
		}
		return rep, err
	}

	// Measure the state the diff carried, before anything is retired.
	newSet := make(map[opKey]bool, len(inst.held))
	for _, k := range inst.held {
		newSet[k] = true
	}
	for _, k := range dep.held {
		if !newSet[k] {
			continue
		}
		op := rt.ops[k]
		if op == nil {
			continue
		}
		for _, t := range op.left {
			rep.StateCarried++
			rep.BytesSaved += t.Size
		}
		for _, t := range op.right {
			rep.StateCarried++
			rep.BytesSaved += t.Size
		}
		if op.isAgg && op.aggCount > 0 {
			rep.StateCarried++
			rep.BytesSaved += rt.opWidth(op)
		}
	}

	// Ship moved operators' state. A Move is a create+retire pair sharing
	// a signature: the same logical operator at a new host. Before the old
	// instance is retired, its join windows and aggregation accumulator
	// are copied into the new instance — only when the migration itself
	// created it (a pre-existing shared operator already has its own state
	// and must not be overwritten). The copy crosses real links: each
	// shipped tuple is charged to TotalCost/TotalBytes at the old→new
	// link cost, so migrating under churn pays a measurable price — the
	// term adaptive hysteresis weighs against predicted savings.
	for _, mv := range diff.Move {
		toKey := opKey{sig: mv.Sig, node: mv.To}
		if !inst.created[toKey] {
			continue
		}
		oldOp, newOp := rt.ops[opKey{sig: mv.Sig, node: mv.From}], rt.ops[toKey]
		if oldOp == nil || newOp == nil || newOp.isFilter || oldOp.isFilter {
			continue
		}
		linkCost := rt.Cost.Dist(mv.From, mv.To)
		ship := func(t Tuple) {
			rt.TotalCost += t.Size * linkCost
			rt.TotalBytes += t.Size
			rt.noteSize(t.Size)
			rt.StateTuplesShipped++
			rt.StateBytesShipped += t.Size
			rep.StateShipped++
			rep.BytesShipped += t.Size
			rep.ShipCost += t.Size * linkCost
		}
		for _, t := range oldOp.left {
			newOp.left = append(newOp.left, t)
			ship(t)
		}
		for _, t := range oldOp.right {
			newOp.right = append(newOp.right, t)
			ship(t)
		}
		if oldOp.isAgg && newOp.isAgg && oldOp.aggCount > 0 {
			newOp.aggCount, newOp.aggBorn, newOp.aggNext = oldOp.aggCount, oldOp.aggBorn, oldOp.aggNext
			ship(Tuple{Size: rt.opWidth(oldOp)})
		}
	}
	rt.obsStateShipped.Add(rep.StateShipped)

	// Phase 2 — rewire. Kept operators whose producer set changed get the
	// new producers subscribed and the stale ones detached. Newly created
	// consumers were wired at instantiation; retired producers lose their
	// remaining subscriptions when collected.
	rep.Rewired = rt.rewire(oldIR, newIR)

	// Phase 3 — swap the sink subscription to the new root, unless the
	// root identity survived (then its existing subscription stands). The
	// SinkStats object is never touched: delivery counters carry over.
	// Post-order IR puts the root last.
	if oldIR[len(oldIR)-1].Ref != newIR[len(newIR)-1].Ref {
		for _, op := range rt.ops {
			op.unsubscribe(subscription{sink: q.ID, to: sink.Node})
		}
		inst.root.subscribe(subscription{sink: q.ID, to: sink.Node})
	}
	if sink.width != inst.root.width {
		// A new root with a different tuple width: deliveries before this
		// migration used the old width, so the exact per-sink byte
		// invariant no longer applies.
		if sink.Tuples > 0 {
			sink.mixed = true
		}
		sink.width = inst.root.width
	}

	// Phase 4 — retire. The old references are dropped and operators no
	// deployment references and nothing subscribes to are collected,
	// cascading up chains that lost their last subscriber.
	rep.LoadDelta = loadDelta(dep.plan, plan)
	oldHeld := dep.held
	dep.plan, dep.ir, dep.held = plan, newIR, inst.held
	rt.release(oldHeld)

	rep.Kept = len(diff.Keep)
	rep.Created = len(inst.created)
	rep.Retired = opsBefore + len(inst.created) - len(rt.ops)
	rep.Moved = len(diff.Move)
	rep.TeardownOps = len(oldHeld) + len(inst.held)

	rt.obsMigrations.Inc()
	rt.obsMigKept.Add(int64(rep.Kept))
	rt.obsMigCreated.Add(int64(rep.Created))
	rt.obsMigRetired.Add(int64(rep.Retired))
	rt.obsMigMoved.Add(int64(rep.Moved))
	rt.obsMigBytesSaved.Add(rep.BytesSaved)
	if rt.tr.On() {
		rt.tr.Emit(obs.Event{
			Kind: obs.KindMigrationApplied, Parent: parent, Trace: obs.QueryTrace(q.ID),
			Query: q.ID, Node: int(plan.Loc), VTime: rt.Sim.Now(),
			Value: rep.BytesSaved, Aux: rep.BytesShipped, Detail: rep.String(),
		})
	}
	return rep, nil
}

// loadDelta computes the per-node input-rate change of replacing old with
// new: new plan operators book positive load at their hosts, old plan
// operators negative. Kept operators cancel exactly; near-zero residues
// are dropped so trackers never accumulate float dust for unchanged
// nodes.
func loadDelta(old, new *query.PlanNode) map[netgraph.NodeID]float64 {
	delta := make(map[netgraph.NodeID]float64)
	for _, op := range new.Operators() {
		delta[op.Loc] += op.InputRate()
	}
	for _, op := range old.Operators() {
		delta[op.Loc] -= op.InputRate()
	}
	for n, v := range delta {
		if v < 1e-12 && v > -1e-12 {
			delete(delta, n)
		}
	}
	return delta
}

// rewire aligns kept operators' upstream wiring with the new plan: for
// every operator computed by both plans, producers the new plan adds are
// subscribed and producers only the old plan used are detached. Operators
// either plan consumes as a leaf keep the wiring their producing
// deployment gave them (the leaf does not own it). It returns the number
// of operators whose wiring changed.
func (rt *Runtime) rewire(oldIR, newIR []query.IROp) int {
	oldByRef := make(map[query.OpRef]query.IROp, len(oldIR))
	for _, op := range oldIR {
		oldByRef[op.Ref] = op
	}
	rewired := 0
	for _, nop := range newIR { // post-order: deterministic wiring order
		oop, kept := oldByRef[nop.Ref]
		if !kept || nop.Leaf || oop.Leaf {
			continue
		}
		ck := opKey{sig: nop.Ref.Sig, node: nop.Ref.Loc}
		changed := false
		for i, in := range nop.Inputs {
			if i < len(oop.Inputs) && oop.Inputs[i] == in {
				continue
			}
			changed = true
			if p := rt.ops[opKey{sig: in.Sig, node: in.Loc}]; p != nil {
				p.subscribe(subscription{dst: ck, side: side(i), sink: -1, to: nop.Ref.Loc})
			}
		}
		for i, in := range oop.Inputs {
			if i < len(nop.Inputs) && nop.Inputs[i] == in {
				continue
			}
			changed = true
			if p := rt.ops[opKey{sig: in.Sig, node: in.Loc}]; p != nil {
				p.unsubscribe(subscription{dst: ck, side: side(i), sink: -1, to: nop.Ref.Loc})
			}
		}
		if changed {
			rewired++
		}
	}
	return rewired
}
