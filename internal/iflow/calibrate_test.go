package iflow

import (
	"math"
	"testing"

	"hnp/internal/core"
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// The catalog starts with wrong statistics; after running the engine and
// calibrating, the planning model must track the engine's empirical
// behaviour (rates from taps, selectivities from join counters).
func TestCalibrateTracksEmpiricalStats(t *testing.T) {
	w := makeTestWorld(t, 18)
	cfg := DefaultConfig()
	rt := New(w.g, cfg, 61)
	const horizon = 400.0
	win := rt.NewStatsWindow()
	if err := rt.Deploy(w.q, w.plan, w.cat, horizon); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(horizon)

	updated := rt.Calibrate(w.cat, w.q, w.plan, win)
	if updated == 0 {
		t.Fatal("nothing calibrated")
	}

	// Tap rates must now match measurements (Poisson: within ~15%).
	for _, leaf := range w.plan.Leaves() {
		if leaf.In.Derived {
			continue
		}
		ids := w.q.StreamsOf(leaf.Mask)
		measured := rt.WindowedRate(win, leaf.In.Sig, leaf.Loc)
		if measured <= 0 {
			t.Fatalf("no emissions from %s", leaf.In.Sig)
		}
		if got := w.cat.Stream(ids[0]).Rate; math.Abs(got-measured) > 1e-9 {
			t.Errorf("stream %d rate %g != measured %g", ids[0], got, measured)
		}
	}

	// Any calibrated pairwise selectivity approximates the engine's
	// intrinsic 2·Window/KeyDomain (loose bound: windows + Poisson noise).
	engineSel := 2 * cfg.Window / float64(cfg.KeyDomain)
	calibrated := false
	var checkJoin func(n *query.PlanNode)
	checkJoin = func(n *query.PlanNode) {
		if n == nil || n.IsLeaf() || n.IsUnary() {
			return
		}
		checkJoin(n.L)
		checkJoin(n.R)
		if n.L.IsLeaf() && n.R.IsLeaf() && !n.L.In.Derived && !n.R.In.Derived {
			l := w.q.StreamsOf(n.L.Mask)[0]
			r := w.q.StreamsOf(n.R.Mask)[0]
			sel := w.cat.Selectivity(l, r)
			if sel <= 0 || sel > 5*engineSel || sel < engineSel/5 {
				t.Errorf("calibrated sel %g far from engine %g", sel, engineSel)
			}
			calibrated = true
		}
	}
	checkJoin(w.plan)
	if !calibrated {
		t.Skip("plan has no base-base join on this seed")
	}

	// Replanning with calibrated stats still yields a valid plan.
	res, err := core.TopDown(w.h, w.cat, w.q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCalibrateNoData(t *testing.T) {
	w := makeTestWorld(t, 19)
	rt := New(w.g, DefaultConfig(), 62)
	win := rt.NewStatsWindow()
	if got := rt.Calibrate(w.cat, w.q, w.plan, win); got != 0 {
		t.Errorf("calibrated %d stats from zero elapsed time", got)
	}
	if got := rt.Calibrate(w.cat, w.q, w.plan, nil); got != 0 {
		t.Errorf("calibrated %d stats from nil window", got)
	}
	if got := rt.WindowedRate(win, "nope", 0); got != 0 {
		t.Errorf("WindowedRate of missing op = %g", got)
	}
}

// Regression: the old EmpiricalRate divided cumulative counts by total
// lifetime, so a 10× rate shift at time T still read ≈2× at 1.3·T. The
// windowed estimator must reflect the shift within one window, and
// Calibrate must feed the shifted rate into the catalog.
func TestCalibrateWindowedRateShift(t *testing.T) {
	w := makeTestWorld(t, 21)
	rt := New(w.g, DefaultConfig(), 63)
	const warmup = 100.0
	const window = 30.0
	if err := rt.Deploy(w.q, w.plan, w.cat, warmup+window); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(warmup)

	// Pick a base leaf and shift its live tap 10×.
	var leaf *query.PlanNode
	for _, l := range w.plan.Leaves() {
		if !l.In.Derived {
			leaf = l
			break
		}
	}
	if leaf == nil {
		t.Fatal("plan has no base leaf")
	}
	sid := w.q.StreamsOf(leaf.Mask)[0]
	oldRate := rt.Operator(leaf.In.Sig, leaf.Loc).rate
	newRate := oldRate * 10
	win := rt.NewStatsWindow()
	if err := rt.SetSourceRate(leaf.In.Sig, leaf.Loc, newRate); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(window)

	windowed := rt.WindowedRate(win, leaf.In.Sig, leaf.Loc)
	cumulative := float64(rt.Operator(leaf.In.Sig, leaf.Loc).OutCount) / rt.Sim.Now()
	if math.Abs(windowed-newRate) > 0.3*newRate {
		t.Errorf("windowed rate %g not within 30%% of shifted rate %g", windowed, newRate)
	}
	// The cumulative estimator is dominated by the warm-up history: over
	// 100s at r plus 30s at 10r it reads ≈3.1r, nowhere near 10r.
	if cumulative > 0.5*newRate {
		t.Errorf("cumulative estimate %g unexpectedly close to shifted rate %g", cumulative, newRate)
	}

	if updated := rt.Calibrate(w.cat, w.q, w.plan, win); updated == 0 {
		t.Fatal("nothing calibrated")
	}
	got := w.cat.Stream(sid).Rate
	if math.Abs(got-newRate) > 0.3*newRate {
		t.Errorf("calibrated catalog rate %g not within 30%% of shifted rate %g", got, newRate)
	}
}

// SetSourceRate must reject unknown taps and non-positive rates.
func TestSetSourceRateValidation(t *testing.T) {
	w := makeTestWorld(t, 22)
	rt := New(w.g, DefaultConfig(), 64)
	if err := rt.Deploy(w.q, w.plan, w.cat, 10); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetSourceRate("nope", 0, 5); err == nil {
		t.Error("retuned a missing tap")
	}
	var leaf *query.PlanNode
	for _, l := range w.plan.Leaves() {
		if !l.In.Derived {
			leaf = l
			break
		}
	}
	if err := rt.SetSourceRate(leaf.In.Sig, leaf.Loc, 0); err == nil {
		t.Error("accepted zero rate")
	}
	if err := rt.SetSourceRate(leaf.In.Sig, leaf.Loc, 12.5); err != nil {
		t.Error(err)
	}
	if got := rt.Operator(leaf.In.Sig, leaf.Loc).rate; got != 12.5 {
		t.Errorf("tap rate %g after SetSourceRate", got)
	}
}

// Calibrated statistics must survive operator reuse across a migration:
// the kept first-level join keeps its counters accumulating through the
// move, a window rolled at migration time measures only post-migration
// traffic, and a second Calibrate over that window still reproduces the
// engine's intrinsic selectivity — it neither resets to catalog defaults
// nor double-counts pre-migration history. This is the interaction the
// closed-loop controller depends on: measure, migrate, keep measuring.
func TestCalibrateSurvivesMigration(t *testing.T) {
	w := makeMigrateWorld(t, 7)
	cfg := DefaultConfig()
	rt := New(w.g, cfg, 64)
	planA := w.leftDeep([]netgraph.NodeID{5, 6, 7})
	planB := w.leftDeep([]netgraph.NodeID{5, 8, 7}) // middle join moves; A⋈B kept at 5

	const phase = 300.0
	if err := rt.Deploy(w.q, planA, w.cat, 2*phase+100); err != nil {
		t.Fatal(err)
	}
	win := rt.NewStatsWindow()
	rt.RunFor(phase)

	if updated := rt.Calibrate(w.cat, w.q, planA, win); updated == 0 {
		t.Fatal("nothing calibrated before migration")
	}
	a, b := w.q.Sources[0], w.q.Sources[1]
	engineSel := 2 * cfg.Window / float64(cfg.KeyDomain)
	selBefore := w.cat.Selectivity(a, b)
	if selBefore <= 0 || selBefore > 5*engineSel || selBefore < engineSel/5 {
		t.Fatalf("pre-migration calibrated sel %g far from engine %g", selBefore, engineSel)
	}

	keptSig := w.q.SigOf(query.Mask(3))
	keptOp := rt.Operator(keptSig, 5)
	if keptOp == nil {
		t.Fatal("first join not deployed")
	}
	outBefore := keptOp.OutCount

	rep, err := rt.Migrate(w.q, planB, w.cat, 2*phase+100)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kept == 0 {
		t.Fatalf("migration kept nothing (%s) — operator reuse not exercised", rep)
	}

	// Roll so the next calibration covers exactly the post-migration
	// interval, then keep running on the migrated plan.
	win.Roll(rt)
	rt.RunFor(phase)

	if rt.Operator(keptSig, 5) != keptOp {
		t.Fatal("kept join was recreated by the migration")
	}
	if keptOp.OutCount <= outBefore {
		t.Error("kept join stopped producing after migration")
	}
	if r := rt.WindowedRate(win, keptSig, 5); r <= 0 {
		t.Errorf("kept join windowed rate %g over post-migration window", r)
	}

	if updated := rt.Calibrate(w.cat, w.q, planB, win); updated == 0 {
		t.Fatal("nothing calibrated after migration")
	}
	selAfter := w.cat.Selectivity(a, b)
	if selAfter <= 0 || selAfter > 5*engineSel || selAfter < engineSel/5 {
		t.Errorf("post-migration calibrated sel %g far from engine %g", selAfter, engineSel)
	}
	// Both estimates measure the same stationary engine behaviour, so the
	// post-migration window must agree with the pre-migration one to well
	// under the 5× sanity band — reuse carried the statistics, not noise.
	if ratio := selAfter / selBefore; ratio > 2 || ratio < 0.5 {
		t.Errorf("sel drifted %gx across migration (%g -> %g)", ratio, selBefore, selAfter)
	}
}
