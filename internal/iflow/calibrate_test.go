package iflow

import (
	"math"
	"testing"

	"hnp/internal/core"
	"hnp/internal/query"
)

// The catalog starts with wrong statistics; after running the engine and
// calibrating, the planning model must track the engine's empirical
// behaviour (rates from taps, selectivities from join counters).
func TestCalibrateTracksEmpiricalStats(t *testing.T) {
	w := makeTestWorld(t, 18)
	cfg := DefaultConfig()
	rt := New(w.g, cfg, 61)
	const horizon = 400.0
	if err := rt.Deploy(w.q, w.plan, w.cat, horizon); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(horizon)

	updated := rt.Calibrate(w.cat, w.q, w.plan, horizon)
	if updated == 0 {
		t.Fatal("nothing calibrated")
	}

	// Tap rates must now match measurements (Poisson: within ~15%).
	for _, leaf := range w.plan.Leaves() {
		if leaf.In.Derived {
			continue
		}
		ids := w.q.StreamsOf(leaf.Mask)
		measured := rt.EmpiricalRate(leaf.In.Sig, leaf.Loc, horizon)
		if measured <= 0 {
			t.Fatalf("no emissions from %s", leaf.In.Sig)
		}
		if got := w.cat.Stream(ids[0]).Rate; math.Abs(got-measured) > 1e-9 {
			t.Errorf("stream %d rate %g != measured %g", ids[0], got, measured)
		}
	}

	// Any calibrated pairwise selectivity approximates the engine's
	// intrinsic 2·Window/KeyDomain (loose bound: windows + Poisson noise).
	engineSel := 2 * cfg.Window / float64(cfg.KeyDomain)
	calibrated := false
	var checkJoin func(n *query.PlanNode)
	checkJoin = func(n *query.PlanNode) {
		if n == nil || n.IsLeaf() || n.IsUnary() {
			return
		}
		checkJoin(n.L)
		checkJoin(n.R)
		if n.L.IsLeaf() && n.R.IsLeaf() && !n.L.In.Derived && !n.R.In.Derived {
			l := w.q.StreamsOf(n.L.Mask)[0]
			r := w.q.StreamsOf(n.R.Mask)[0]
			sel := w.cat.Selectivity(l, r)
			if sel <= 0 || sel > 5*engineSel || sel < engineSel/5 {
				t.Errorf("calibrated sel %g far from engine %g", sel, engineSel)
			}
			calibrated = true
		}
	}
	checkJoin(w.plan)
	if !calibrated {
		t.Skip("plan has no base-base join on this seed")
	}

	// Replanning with calibrated stats still yields a valid plan.
	res, err := core.TopDown(w.h, w.cat, w.q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCalibrateNoData(t *testing.T) {
	w := makeTestWorld(t, 19)
	rt := New(w.g, DefaultConfig(), 62)
	if got := rt.Calibrate(w.cat, w.q, w.plan, 0); got != 0 {
		t.Errorf("calibrated %d stats from zero elapsed time", got)
	}
	if got := rt.EmpiricalRate("nope", 0, 10); got != 0 {
		t.Errorf("EmpiricalRate of missing op = %g", got)
	}
}
