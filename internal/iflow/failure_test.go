package iflow

import (
	"testing"

	"hnp/internal/core"
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// opNode returns a node hosting a join operator of the plan that is
// neither a source nor the sink, or -1.
func opNode(w *testWorld) netgraph.NodeID {
	sources := map[netgraph.NodeID]bool{}
	for _, id := range w.q.Sources {
		sources[w.cat.Stream(id).Source] = true
	}
	for _, op := range w.plan.Operators() {
		if !sources[op.Loc] && op.Loc != w.q.Sink {
			return op.Loc
		}
	}
	return -1
}

func TestFailNodeKillsOperatorsAndReportsQueries(t *testing.T) {
	w := makeTestWorld(t, 14)
	rt := New(w.g, DefaultConfig(), 31)
	if err := rt.Deploy(w.q, w.plan, w.cat, 200); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(10)
	victim := opNode(w)
	if victim < 0 {
		t.Skip("plan colocates all operators with endpoints on this seed")
	}
	before := rt.NumOperators()
	affected := rt.FailNode(victim)
	if len(affected) != 1 || affected[0] != w.q.ID {
		t.Fatalf("affected = %v", affected)
	}
	if rt.NumOperators() >= before {
		t.Error("no operators died")
	}
	// Simulation keeps running without the dead operators (tuples to them
	// are dropped, no panic).
	rt.RunFor(10)
	// Failing an empty node affects nothing.
	if got := rt.FailNode(victim); got != nil {
		t.Errorf("second failure reported %v", got)
	}
}

func TestRecoverQueriesRestoresDelivery(t *testing.T) {
	w := makeTestWorld(t, 15)
	rt := New(w.g, DefaultConfig(), 32)
	const horizon = 400.0
	if err := rt.Deploy(w.q, w.plan, w.cat, horizon); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(50)
	delivered := rt.Sink(w.q.ID).Tuples
	if delivered == 0 {
		t.Fatal("nothing delivered before failure")
	}
	victim := opNode(w)
	if victim < 0 {
		t.Skip("plan colocates all operators with endpoints on this seed")
	}

	affected := rt.FailNode(victim)
	// The failed node also leaves the hierarchy (backup coordinator
	// promotion), so new plans avoid it.
	if err := w.h.RemoveNode(victim); err != nil {
		t.Fatal(err)
	}
	qs := map[int]*query.Query{w.q.ID: w.q}
	plans := map[int]*query.PlanNode{w.q.ID: w.plan}
	replan := func(q *query.Query) (*query.PlanNode, error) {
		res, err := core.TopDown(w.h, w.cat, q, nil)
		if err != nil {
			return nil, err
		}
		return res.Plan, nil
	}
	recovered, failed, err := rt.RecoverQueries(affected, qs, plans, w.cat, replan, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 || len(recovered) != 1 {
		t.Fatalf("recovered=%v failed=%v", recovered, failed)
	}
	// The new plan avoids the dead node.
	for _, op := range plans[w.q.ID].Operators() {
		if op.Loc == victim {
			t.Error("recovered plan still uses the failed node")
		}
	}
	rt.RunFor(200)
	after := rt.Sink(w.q.ID).Tuples
	if after <= delivered {
		t.Errorf("no deliveries after recovery: %d -> %d", delivered, after)
	}
}

func TestRecoverQueriesReportsUnplannable(t *testing.T) {
	w := makeTestWorld(t, 16)
	rt := New(w.g, DefaultConfig(), 33)
	if err := rt.Deploy(w.q, w.plan, w.cat, 100); err != nil {
		t.Fatal(err)
	}
	// Fail a SOURCE node: the stream is gone and replanning cannot succeed.
	srcNode := w.cat.Stream(w.q.Sources[0]).Source
	affected := rt.FailNode(srcNode)
	if len(affected) == 0 {
		t.Fatal("source failure affected nothing")
	}
	qs := map[int]*query.Query{w.q.ID: w.q}
	plans := map[int]*query.PlanNode{w.q.ID: w.plan}
	replan := func(q *query.Query) (*query.PlanNode, error) {
		return nil, errSourceDead
	}
	recovered, failed, err := rt.RecoverQueries(affected, qs, plans, w.cat, replan, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 || len(failed) != 1 {
		t.Errorf("recovered=%v failed=%v", recovered, failed)
	}
	// Unknown query id errors.
	if _, _, err := rt.RecoverQueries([]int{42}, qs, plans, w.cat, replan, 100); err == nil {
		t.Error("unknown query accepted")
	}
}

var errSourceDead = errSentinel("source node failed")

type errSentinel string

func (e errSentinel) Error() string { return string(e) }

// spreadPlan hand-builds a plan for the test world's query that pins its
// two joins at nodes 2 and 17 — away from the sources (4, 20, 28) and the
// sink (9) — so failure tests can target a pure operator node
// deterministically (the planner almost always colocates operators with
// endpoints, which makes planner-produced plans useless here).
func spreadPlan(w *testWorld) *query.PlanNode {
	la := query.Leaf(query.Input{Mask: 1, Rate: 20, Loc: 4, Sig: w.q.SigOf(1)})
	lb := query.Leaf(query.Input{Mask: 2, Rate: 15, Loc: 20, Sig: w.q.SigOf(2)})
	lc := query.Leaf(query.Input{Mask: 4, Rate: 10, Loc: 28, Sig: w.q.SigOf(4)})
	j1 := query.Join(la, lb, 2, 15)
	return query.Join(j1, lc, 17, 7.5)
}

// TestFailNodeSharedOperator fails a node whose operators feed two
// deployed queries at once: both must be reported affected, recovery must
// restore both, and shared-operator refcounts must survive the round trip
// (the runtime audit checks holds against refs).
func TestFailNodeSharedOperator(t *testing.T) {
	w := makeTestWorld(t, 14)
	rt := New(w.g, DefaultConfig(), 51)
	const horizon = 300.0
	plan := spreadPlan(w)
	// Second query over the same streams with the same sink: its plan is
	// identical, so every operator is shared with query 0.
	q2, err := query.NewQuery(1, w.q.Sources, w.q.Sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy(w.q, plan, w.cat, horizon); err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy(q2, plan, w.cat, horizon); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(20)
	if err := rt.CheckInvariants(nil); err != nil {
		t.Fatal(err)
	}
	victim := netgraph.NodeID(2) // hosts the shared first join
	affected := rt.FailNode(victim)
	if len(affected) != 2 || affected[0] != 0 || affected[1] != 1 {
		t.Fatalf("shared-operator failure affected %v, want [0 1]", affected)
	}
	if err := w.h.RemoveNode(victim); err != nil {
		t.Fatal(err)
	}
	qs := map[int]*query.Query{0: w.q, 1: q2}
	plans := map[int]*query.PlanNode{0: plan, 1: plan}
	replan := func(q *query.Query) (*query.PlanNode, error) {
		res, err := core.TopDown(w.h, w.cat, q, nil)
		if err != nil {
			return nil, err
		}
		return res.Plan, nil
	}
	recovered, failed, err := rt.RecoverQueries(affected, qs, plans, w.cat, replan, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 || len(recovered) != 2 {
		t.Fatalf("recovered=%v failed=%v", recovered, failed)
	}
	live := func(v netgraph.NodeID) bool { return v != victim }
	if err := rt.CheckInvariants(live); err != nil {
		t.Fatal(err)
	}
	before0, before1 := rt.Sink(0).Tuples, rt.Sink(1).Tuples
	rt.RunFor(150)
	if rt.Sink(0).Tuples <= before0 || rt.Sink(1).Tuples <= before1 {
		t.Errorf("deliveries stalled after shared recovery: q0 %d->%d q1 %d->%d",
			before0, rt.Sink(0).Tuples, before1, rt.Sink(1).Tuples)
	}
}

// TestFailNodeSinkNode fails the node hosting a query's SINK. No operator
// may live there, but the consumer is gone: the query must be reported
// affected, and recovery must tear it down (re-planning refuses a dead
// sink) leaving no subscription still delivering to it.
func TestFailNodeSinkNode(t *testing.T) {
	w := makeTestWorld(t, 15)
	rt := New(w.g, DefaultConfig(), 52)
	if err := rt.Deploy(w.q, w.plan, w.cat, 300); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(20)
	// Make sure this seed's sink is not colocated with any operator, so the
	// failure hits only the consumer.
	for _, op := range w.plan.Operators() {
		if op.Loc == w.q.Sink {
			t.Skip("plan colocates an operator with the sink on this seed")
		}
	}
	affected := rt.FailNode(w.q.Sink)
	if len(affected) != 1 || affected[0] != w.q.ID {
		t.Fatalf("sink failure affected %v, want [%d]", affected, w.q.ID)
	}
	if err := w.h.RemoveNode(w.q.Sink); err != nil {
		t.Fatal(err)
	}
	qs := map[int]*query.Query{w.q.ID: w.q}
	plans := map[int]*query.PlanNode{w.q.ID: w.plan}
	replan := func(q *query.Query) (*query.PlanNode, error) {
		return nil, errSentinel("sink node is down")
	}
	recovered, failed, err := rt.RecoverQueries(affected, qs, plans, w.cat, replan, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 || len(failed) != 1 || failed[0] != w.q.ID {
		t.Fatalf("recovered=%v failed=%v", recovered, failed)
	}
	if got := rt.DeployedQueries(); len(got) != 0 {
		t.Fatalf("query still deployed after sink death: %v", got)
	}
	live := func(v netgraph.NodeID) bool { return v != w.q.Sink }
	if err := rt.CheckInvariants(live); err != nil {
		t.Fatal(err)
	}
	// The stream must actually stop: no tuple may settle at the dead sink
	// from here on.
	delivered := rt.Sink(w.q.ID).Tuples
	rt.RunFor(100)
	if got := rt.Sink(w.q.ID).Tuples; got != delivered {
		t.Errorf("dead sink kept receiving: %d -> %d", delivered, got)
	}
}

// TestDoubleFailureBeforeRecovery crashes two nodes back to back before
// any recovery runs — the affected sets overlap and the second failure
// must cope with subscriptions already swept by the first. One recovery
// pass over the union then restores the query.
func TestDoubleFailureBeforeRecovery(t *testing.T) {
	w := makeTestWorld(t, 14)
	rt := New(w.g, DefaultConfig(), 53)
	const horizon = 300.0
	plan := spreadPlan(w)
	if err := rt.Deploy(w.q, plan, w.cat, horizon); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(20)
	// The hand-built plan pins its joins at two pure operator nodes.
	v1, v2 := netgraph.NodeID(2), netgraph.NodeID(17)
	a1 := rt.FailNode(v1)
	a2 := rt.FailNode(v2)
	if len(a1) != 1 || a1[0] != w.q.ID {
		t.Fatalf("first failure affected %v", a1)
	}
	if len(a2) != 1 || a2[0] != w.q.ID {
		t.Fatalf("second failure affected %v", a2)
	}
	if err := w.h.RemoveNode(v1); err != nil {
		t.Fatal(err)
	}
	if err := w.h.RemoveNode(v2); err != nil {
		t.Fatal(err)
	}
	// Union of the affected sets, deduplicated: one recovery pass.
	replan := func(q *query.Query) (*query.PlanNode, error) {
		res, err := core.TopDown(w.h, w.cat, q, nil)
		if err != nil {
			return nil, err
		}
		return res.Plan, nil
	}
	qs := map[int]*query.Query{w.q.ID: w.q}
	plans := map[int]*query.PlanNode{w.q.ID: plan}
	recovered, failed, err := rt.RecoverQueries([]int{w.q.ID}, qs, plans, w.cat, replan, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 || len(recovered) != 1 {
		t.Fatalf("recovered=%v failed=%v", recovered, failed)
	}
	for _, op := range plans[w.q.ID].Operators() {
		if op.Loc == v1 || op.Loc == v2 {
			t.Errorf("recovered plan uses dead node %d", op.Loc)
		}
	}
	live := func(v netgraph.NodeID) bool { return v != v1 && v != v2 }
	if err := rt.CheckInvariants(live); err != nil {
		t.Fatal(err)
	}
	before := rt.Sink(w.q.ID).Tuples
	rt.RunFor(150)
	if got := rt.Sink(w.q.ID).Tuples; got <= before {
		t.Errorf("deliveries stalled after double-failure recovery: %d -> %d", before, got)
	}
}
