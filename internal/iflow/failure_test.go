package iflow

import (
	"testing"

	"hnp/internal/core"
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// opNode returns a node hosting a join operator of the plan that is
// neither a source nor the sink, or -1.
func opNode(w *testWorld) netgraph.NodeID {
	sources := map[netgraph.NodeID]bool{}
	for _, id := range w.q.Sources {
		sources[w.cat.Stream(id).Source] = true
	}
	for _, op := range w.plan.Operators() {
		if !sources[op.Loc] && op.Loc != w.q.Sink {
			return op.Loc
		}
	}
	return -1
}

func TestFailNodeKillsOperatorsAndReportsQueries(t *testing.T) {
	w := makeTestWorld(t, 14)
	rt := New(w.g, DefaultConfig(), 31)
	if err := rt.Deploy(w.q, w.plan, w.cat, 200); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(10)
	victim := opNode(w)
	if victim < 0 {
		t.Skip("plan colocates all operators with endpoints on this seed")
	}
	before := rt.NumOperators()
	affected := rt.FailNode(victim)
	if len(affected) != 1 || affected[0] != w.q.ID {
		t.Fatalf("affected = %v", affected)
	}
	if rt.NumOperators() >= before {
		t.Error("no operators died")
	}
	// Simulation keeps running without the dead operators (tuples to them
	// are dropped, no panic).
	rt.RunFor(10)
	// Failing an empty node affects nothing.
	if got := rt.FailNode(victim); got != nil {
		t.Errorf("second failure reported %v", got)
	}
}

func TestRecoverQueriesRestoresDelivery(t *testing.T) {
	w := makeTestWorld(t, 15)
	rt := New(w.g, DefaultConfig(), 32)
	const horizon = 400.0
	if err := rt.Deploy(w.q, w.plan, w.cat, horizon); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(50)
	delivered := rt.Sink(w.q.ID).Tuples
	if delivered == 0 {
		t.Fatal("nothing delivered before failure")
	}
	victim := opNode(w)
	if victim < 0 {
		t.Skip("plan colocates all operators with endpoints on this seed")
	}

	affected := rt.FailNode(victim)
	// The failed node also leaves the hierarchy (backup coordinator
	// promotion), so new plans avoid it.
	if err := w.h.RemoveNode(victim); err != nil {
		t.Fatal(err)
	}
	qs := map[int]*query.Query{w.q.ID: w.q}
	plans := map[int]*query.PlanNode{w.q.ID: w.plan}
	replan := func(q *query.Query) (*query.PlanNode, error) {
		res, err := core.TopDown(w.h, w.cat, q, nil)
		if err != nil {
			return nil, err
		}
		return res.Plan, nil
	}
	recovered, failed, err := rt.RecoverQueries(affected, qs, plans, w.cat, replan, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 || len(recovered) != 1 {
		t.Fatalf("recovered=%v failed=%v", recovered, failed)
	}
	// The new plan avoids the dead node.
	for _, op := range plans[w.q.ID].Operators() {
		if op.Loc == victim {
			t.Error("recovered plan still uses the failed node")
		}
	}
	rt.RunFor(200)
	after := rt.Sink(w.q.ID).Tuples
	if after <= delivered {
		t.Errorf("no deliveries after recovery: %d -> %d", delivered, after)
	}
}

func TestRecoverQueriesReportsUnplannable(t *testing.T) {
	w := makeTestWorld(t, 16)
	rt := New(w.g, DefaultConfig(), 33)
	if err := rt.Deploy(w.q, w.plan, w.cat, 100); err != nil {
		t.Fatal(err)
	}
	// Fail a SOURCE node: the stream is gone and replanning cannot succeed.
	srcNode := w.cat.Stream(w.q.Sources[0]).Source
	affected := rt.FailNode(srcNode)
	if len(affected) == 0 {
		t.Fatal("source failure affected nothing")
	}
	qs := map[int]*query.Query{w.q.ID: w.q}
	plans := map[int]*query.PlanNode{w.q.ID: w.plan}
	replan := func(q *query.Query) (*query.PlanNode, error) {
		return nil, errSourceDead
	}
	recovered, failed, err := rt.RecoverQueries(affected, qs, plans, w.cat, replan, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 || len(failed) != 1 {
		t.Errorf("recovered=%v failed=%v", recovered, failed)
	}
	// Unknown query id errors.
	if _, _, err := rt.RecoverQueries([]int{42}, qs, plans, w.cat, replan, 100); err == nil {
		t.Error("unknown query accepted")
	}
}

var errSourceDead = errSentinel("source node failed")

type errSentinel string

func (e errSentinel) Error() string { return string(e) }
