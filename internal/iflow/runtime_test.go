package iflow

import (
	"math"
	"math/rand"
	"testing"

	"hnp/internal/core"
	"hnp/internal/hierarchy"
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// testWorld builds a small network, catalog and a 3-way query plan via the
// Top-Down optimizer.
type testWorld struct {
	g     *netgraph.Graph
	paths *netgraph.Paths
	h     *hierarchy.Hierarchy
	cat   *query.Catalog
	q     *query.Query
	plan  *query.PlanNode
	res   core.Result
}

func makeTestWorld(t *testing.T, seed int64) *testWorld {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := netgraph.MustTransitStub(32, rng)
	paths := g.ShortestPaths(netgraph.MetricCost)
	h, err := hierarchy.Build(g, paths, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	cat := query.NewCatalog(0.05)
	a := cat.Add("A", 20, 4)
	b := cat.Add("B", 15, 20)
	c := cat.Add("C", 10, 28)
	q, err := query.NewQuery(0, []query.StreamID{a, b, c}, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.TopDown(h, cat, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &testWorld{g, paths, h, cat, q, res.Plan, res}
}

func TestDeployAndRun(t *testing.T) {
	w := makeTestWorld(t, 1)
	rt := New(w.g, DefaultConfig(), 42)
	if err := rt.Deploy(w.q, w.plan, w.cat, 100); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(100)
	sink := rt.Sink(w.q.ID)
	if sink == nil || sink.Tuples == 0 {
		t.Fatalf("no tuples delivered: %+v", sink)
	}
	if rt.TotalCost <= 0 || rt.TotalBytes <= 0 {
		t.Errorf("no transfer accounted: cost=%g bytes=%g", rt.TotalCost, rt.TotalBytes)
	}
	if rt.CostRate() <= 0 {
		t.Error("zero cost rate")
	}
	// Latency is positive and bounded by propagation + window effects.
	if sink.LatencySum <= 0 {
		t.Error("no latency accumulated")
	}
}

func TestDoubleDeployRejected(t *testing.T) {
	w := makeTestWorld(t, 2)
	rt := New(w.g, DefaultConfig(), 1)
	if err := rt.Deploy(w.q, w.plan, w.cat, 10); err != nil {
		t.Fatal(err)
	}
	if err := rt.Deploy(w.q, w.plan, w.cat, 10); err == nil {
		t.Error("double deploy accepted")
	}
}

func TestReuseSharesOperators(t *testing.T) {
	w := makeTestWorld(t, 3)
	rt := New(w.g, DefaultConfig(), 7)
	if err := rt.Deploy(w.q, w.plan, w.cat, 50); err != nil {
		t.Fatal(err)
	}
	opsAfterFirst := rt.NumOperators()

	// Identical query from another sink reusing the root operator.
	q2, err := query.NewQuery(1, w.q.Sources, 15)
	if err != nil {
		t.Fatal(err)
	}
	rt2 := query.BuildRates(w.cat, q2)
	reusedLeaf := query.Leaf(query.Input{
		Mask: q2.All(), Rate: rt2.Rate(q2.All()), Loc: w.plan.Loc,
		Derived: true, Sig: q2.SigOf(q2.All()),
	})
	if err := rt.Deploy(q2, reusedLeaf, w.cat, 50); err != nil {
		t.Fatal(err)
	}
	if rt.NumOperators() != opsAfterFirst {
		t.Errorf("reuse created operators: %d -> %d", opsAfterFirst, rt.NumOperators())
	}
	rt.RunFor(50)
	if rt.Sink(0).Tuples == 0 || rt.Sink(1).Tuples == 0 {
		t.Errorf("deliveries: q0=%d q1=%d", rt.Sink(0).Tuples, rt.Sink(1).Tuples)
	}
	// Both sinks see the same logical stream; counts differ only by
	// in-flight boundary effects.
	d := math.Abs(float64(rt.Sink(0).Tuples - rt.Sink(1).Tuples))
	if d > 0.2*float64(rt.Sink(0).Tuples)+5 {
		t.Errorf("shared stream diverged: %d vs %d", rt.Sink(0).Tuples, rt.Sink(1).Tuples)
	}
}

func TestReuseMissingOperatorRejected(t *testing.T) {
	w := makeTestWorld(t, 4)
	rt := New(w.g, DefaultConfig(), 1)
	leaf := query.Leaf(query.Input{
		Mask: w.q.All(), Rate: 1, Loc: 3, Derived: true, Sig: w.q.SigOf(w.q.All()),
	})
	if err := rt.Deploy(w.q, leaf, w.cat, 10); err == nil {
		t.Error("reuse of undeployed stream accepted")
	}
	if len(rt.deploys) != 0 {
		t.Error("failed deploy left references")
	}
}

func TestUndeployRemovesOperators(t *testing.T) {
	w := makeTestWorld(t, 5)
	rt := New(w.g, DefaultConfig(), 9)
	if err := rt.Deploy(w.q, w.plan, w.cat, 1000); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(5)
	if err := rt.Undeploy(w.q.ID); err != nil {
		t.Fatal(err)
	}
	if n := rt.NumOperators(); n != 0 {
		t.Errorf("%d operators survive undeploy", n)
	}
	if err := rt.Undeploy(w.q.ID); err == nil {
		t.Error("double undeploy accepted")
	}
	// Tuples in flight must not crash after teardown.
	rt.RunFor(5)
}

func TestUndeployKeepsSharedOperators(t *testing.T) {
	w := makeTestWorld(t, 6)
	rt := New(w.g, DefaultConfig(), 9)
	if err := rt.Deploy(w.q, w.plan, w.cat, 100); err != nil {
		t.Fatal(err)
	}
	q2, _ := query.NewQuery(1, w.q.Sources, 15)
	rt2 := query.BuildRates(w.cat, q2)
	reusedLeaf := query.Leaf(query.Input{
		Mask: q2.All(), Rate: rt2.Rate(q2.All()), Loc: w.plan.Loc,
		Derived: true, Sig: q2.SigOf(q2.All()),
	})
	if err := rt.Deploy(q2, reusedLeaf, w.cat, 100); err != nil {
		t.Fatal(err)
	}
	if err := rt.Undeploy(w.q.ID); err != nil {
		t.Fatal(err)
	}
	// The shared operators must survive for query 1.
	if rt.Operator(w.q.SigOf(w.q.All()), w.plan.Loc) == nil {
		t.Fatal("shared root operator was torn down")
	}
	rt.RunFor(60)
	if rt.Sink(1).Tuples == 0 {
		t.Error("query 1 starved after query 0 undeployed")
	}
}

// The measured join output rate must track the analytic model:
// rate(A⋈B) ≈ rA·rB·W/D per side pairing, i.e. the empirical selectivity
// is W/KeyDomain.
func TestJoinRateMatchesAnalyticModel(t *testing.T) {
	g := netgraph.Line(3, 0.001)
	rt := New(g, Config{
		ComputePerPlan: 0, HopOverhead: 0, Window: 5, KeyDomain: 100, TupleSize: 10,
	}, 13)
	cat := query.NewCatalog(0)
	a := cat.Add("A", 40, 0)
	b := cat.Add("B", 40, 2)
	// Empirical pairwise selectivity of the engine.
	selAB := 2 * rt.Config().Window / float64(rt.Config().KeyDomain)
	cat.SetSelectivity(a, b, selAB)
	q, _ := query.NewQuery(0, []query.StreamID{a, b}, 1)
	rtbl := query.BuildRates(cat, q)
	plan := query.Join(
		query.Leaf(query.Input{Mask: 1, Rate: 40, Loc: 0, Sig: q.SigOf(1)}),
		query.Leaf(query.Input{Mask: 2, Rate: 40, Loc: 2, Sig: q.SigOf(2)}),
		1, rtbl.Rate(q.All()),
	)
	if err := rt.Deploy(q, plan, cat, 400); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(400)
	measured := float64(rt.Sink(0).Tuples) / 400
	// Analytic: each arrival probes the other window: 2·rA·rB·W/D tuples/s
	// = 40·40·5/100·2 = 160/s... in tuple units the catalog rate is in
	// cost units; here compare tuple rates directly.
	want := 2 * 40 * 40 * rt.Config().Window / float64(rt.Config().KeyDomain)
	if math.Abs(measured-want)/want > 0.25 {
		t.Errorf("join rate %g, analytic %g", measured, want)
	}
}

func TestDeployTime(t *testing.T) {
	w := makeTestWorld(t, 7)
	rt := New(w.g, DefaultConfig(), 3)
	dt := rt.DeployTime(w.res.Trace, w.q.Sink)
	if dt <= 0 {
		t.Fatalf("deploy time %g", dt)
	}
	// More planning work must take longer: scale compute per plan 10x.
	cfg := DefaultConfig()
	cfg.ComputePerPlan *= 10
	rt2 := New(w.g, cfg, 3)
	if rt2.DeployTime(w.res.Trace, w.q.Sink) <= dt {
		t.Error("deploy time insensitive to compute cost")
	}
	if rt.DeployTime(nil, w.q.Sink) != 0 {
		t.Error("nil trace should cost 0")
	}
}

func TestSourceValidation(t *testing.T) {
	g := netgraph.Line(2, 0)
	rt := New(g, DefaultConfig(), 1)
	if _, err := rt.StartSource("x", 0, 0, 10); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := rt.StartSource("x", 0, 5, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.StartSource("x", 0, 5, 10); err == nil {
		t.Error("duplicate source accepted")
	}
}
