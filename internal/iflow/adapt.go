package iflow

import (
	"fmt"

	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// UpdateLinkCost models a change in network conditions: the link's
// per-byte cost is updated and the cost-routing snapshot refreshed, so
// subsequent transfers are accounted at the new price. (Stream routes
// follow the new snapshot immediately; in-flight tuples keep their old
// accounting, as on a real network.)
func (rt *Runtime) UpdateLinkCost(a, b netgraph.NodeID, cost float64) error {
	if err := rt.G.SetLinkCost(a, b, cost); err != nil {
		return fmt.Errorf("iflow: %w", err)
	}
	rt.refreshPaths()
	return nil
}

// LinkCostUpdate names one link's new per-byte cost for UpdateLinkCosts.
type LinkCostUpdate struct {
	A, B netgraph.NodeID
	Cost float64
}

// UpdateLinkCosts applies a batch of link-cost changes with a single
// all-pairs path recomputation at the end, instead of one per link as a
// loop over UpdateLinkCost would pay. Network drift arrives in bursts
// (a congested region reprices many links at once), and the recompute is
// O(V·E·log V) — the batch turns N recomputes into one.
//
// On a bad update the error is returned after the loop finishes, so
// earlier updates in the batch stay applied and the path snapshot is
// still refreshed — routing never runs on a half-applied graph with
// stale distances.
func (rt *Runtime) UpdateLinkCosts(batch []LinkCostUpdate) error {
	var firstErr error
	for _, u := range batch {
		if err := rt.G.SetLinkCost(u.A, u.B, u.Cost); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("iflow: %w", err)
		}
	}
	rt.refreshPaths()
	return firstErr
}

// Redeploy replaces a deployed query's plan while preserving its
// cumulative sink statistics — the mechanics behind the middleware
// layer's runtime plan migration. It is a thin wrapper over Migrate, so
// the replacement is atomic: if the new plan cannot be instantiated the
// old deployment keeps running (no undeploy-then-fail window), and sink
// counters carry over natively rather than by copy.
func (rt *Runtime) Redeploy(q *query.Query, plan *query.PlanNode, cat *query.Catalog, until float64) error {
	_, err := rt.Migrate(q, plan, cat, until)
	return err
}

// ReplanFunc produces a fresh plan for a query against current conditions.
type ReplanFunc func(q *query.Query) (*query.PlanNode, error)

// MigrationStats aggregates MigrationReports across a run.
type MigrationStats struct {
	Kept         int
	Created      int
	Retired      int
	Moved        int
	Rewired      int
	StateCarried int64
	BytesSaved   float64
	TeardownOps  int
}

// Add folds one migration's report into the aggregate.
func (m *MigrationStats) Add(rep MigrationReport) {
	m.Kept += rep.Kept
	m.Created += rep.Created
	m.Retired += rep.Retired
	m.Moved += rep.Moved
	m.Rewired += rep.Rewired
	m.StateCarried += rep.StateCarried
	m.BytesSaved += rep.BytesSaved
	m.TeardownOps += rep.TeardownOps
}

// Delta returns the total operator churn the migrations cost.
func (m MigrationStats) Delta() int { return m.Created + m.Retired }

// AdaptStats reports what the middleware did.
type AdaptStats struct {
	Checks     int
	Migrations int
	// MigrationStats aggregates the diff reports of every migration the
	// loop applied: how much of the running plans it kept versus churned.
	MigrationStats MigrationStats
}

// Adapt installs the middleware layer's self-management loop: every
// interval seconds of virtual time (until the given horizon), each
// deployed query's current plan is re-costed against the present network
// and replaced when a fresh optimization undercuts it by more than the
// relative slack. Replacement is diff-based (Migrate): operators the old
// and new plan share keep running, so adaptation churns only the changed
// subtrees. It returns the stats collector, filled in as the simulation
// runs.
func (rt *Runtime) Adapt(qs []*query.Query, plans map[int]*query.PlanNode,
	cat *query.Catalog, replan ReplanFunc, slack, interval, until float64) *AdaptStats {
	stats := &AdaptStats{}
	var check func()
	check = func() {
		if rt.Sim.Now() >= until {
			return
		}
		for _, q := range qs {
			cur, ok := plans[q.ID]
			if !ok {
				continue
			}
			stats.Checks++
			curCost := cur.Cost(rt.Cost.Dist, q.Sink)
			fresh, err := replan(q)
			if err != nil {
				continue
			}
			freshCost := fresh.Cost(rt.Cost.Dist, q.Sink)
			if freshCost < curCost*(1-slack) {
				if rep, err := rt.Migrate(q, fresh, cat, until); err == nil {
					plans[q.ID] = fresh
					stats.Migrations++
					stats.MigrationStats.Add(rep)
				}
			}
		}
		rt.Sim.Schedule(interval, check)
	}
	rt.Sim.Schedule(interval, check)
	return stats
}
