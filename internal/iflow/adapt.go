package iflow

import (
	"fmt"

	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// UpdateLinkCost models a change in network conditions: the link's
// per-byte cost is updated and the cost-routing snapshot refreshed, so
// subsequent transfers are accounted at the new price. (Stream routes
// follow the new snapshot immediately; in-flight tuples keep their old
// accounting, as on a real network.)
func (rt *Runtime) UpdateLinkCost(a, b netgraph.NodeID, cost float64) error {
	if err := rt.G.SetLinkCost(a, b, cost); err != nil {
		return fmt.Errorf("iflow: %w", err)
	}
	rt.refreshPaths()
	return nil
}

// Redeploy replaces a deployed query's plan while preserving its
// cumulative sink statistics — the mechanics behind the middleware
// layer's runtime plan migration.
func (rt *Runtime) Redeploy(q *query.Query, plan *query.PlanNode, cat *query.Catalog, until float64) error {
	old := rt.sinks[q.ID]
	if err := rt.Undeploy(q.ID); err != nil {
		return err
	}
	if err := rt.Deploy(q, plan, cat, until); err != nil {
		return err
	}
	if old != nil {
		s := rt.sinks[q.ID]
		s.Tuples += old.Tuples
		s.Bytes += old.Bytes
		s.LatencySum += old.LatencySum
	}
	return nil
}

// ReplanFunc produces a fresh plan for a query against current conditions.
type ReplanFunc func(q *query.Query) (*query.PlanNode, error)

// AdaptStats reports what the middleware did.
type AdaptStats struct {
	Checks     int
	Migrations int
}

// Adapt installs the middleware layer's self-management loop: every
// interval seconds of virtual time (until the given horizon), each
// deployed query's current plan is re-costed against the present network
// and replaced when a fresh optimization undercuts it by more than the
// relative slack. It returns the stats collector, filled in as the
// simulation runs.
func (rt *Runtime) Adapt(qs []*query.Query, plans map[int]*query.PlanNode,
	cat *query.Catalog, replan ReplanFunc, slack, interval, until float64) *AdaptStats {
	stats := &AdaptStats{}
	var check func()
	check = func() {
		if rt.Sim.Now() >= until {
			return
		}
		for _, q := range qs {
			cur, ok := plans[q.ID]
			if !ok {
				continue
			}
			stats.Checks++
			curCost := cur.Cost(rt.Cost.Dist, q.Sink)
			fresh, err := replan(q)
			if err != nil {
				continue
			}
			freshCost := fresh.Cost(rt.Cost.Dist, q.Sink)
			if freshCost < curCost*(1-slack) {
				if err := rt.Redeploy(q, fresh, cat, until); err == nil {
					plans[q.ID] = fresh
					stats.Migrations++
				}
			}
		}
		rt.Sim.Schedule(interval, check)
	}
	rt.Sim.Schedule(interval, check)
	return stats
}
