package iflow

import (
	"testing"

	"hnp/internal/netgraph"
)

// TestDeployRefreshesStalePaths: mutating the runtime's graph directly
// (bypassing UpdateLinkCost) leaves the routing snapshots stale; the next
// Deploy must auto-refresh them instead of accounting transfers against
// the old network.
func TestDeployRefreshesStalePaths(t *testing.T) {
	w := makeTestWorld(t, 11)
	rt := New(w.g, DefaultConfig(), 42)
	links := w.g.Links()
	if err := w.g.SetLinkCost(links[0].A, links[0].B, links[0].Cost*10); err != nil {
		t.Fatal(err)
	}
	if !rt.Cost.StaleFor(rt.G) {
		t.Fatal("cost snapshot not stale after direct graph mutation")
	}
	if err := rt.Deploy(w.q, w.plan, w.cat, 10); err != nil {
		t.Fatal(err)
	}
	if rt.Cost.StaleFor(rt.G) || rt.Delay.StaleFor(rt.G) {
		t.Error("Deploy did not refresh stale snapshots")
	}
}

// TestUpdateLinkCostRefreshesBothMetrics: UpdateLinkCost bumps the graph
// version, so both snapshots must end up current (previously only the
// cost snapshot was recomputed, leaving the delay snapshot permanently
// flagged stale).
func TestUpdateLinkCostRefreshesBothMetrics(t *testing.T) {
	w := makeTestWorld(t, 12)
	rt := New(w.g, DefaultConfig(), 42)
	links := w.g.Links()
	if err := rt.UpdateLinkCost(links[0].A, links[0].B, links[0].Cost*4); err != nil {
		t.Fatal(err)
	}
	if rt.Cost.StaleFor(rt.G) {
		t.Error("cost snapshot stale after UpdateLinkCost")
	}
	if rt.Delay.StaleFor(rt.G) {
		t.Error("delay snapshot stale after UpdateLinkCost")
	}
	if rt.Cost.Metric() != netgraph.MetricCost || rt.Delay.Metric() != netgraph.MetricDelay {
		t.Error("snapshot metrics swapped")
	}
}
