package iflow

import (
	"fmt"

	"hnp/internal/core"
	"hnp/internal/netgraph"
	"hnp/internal/obs"
	"hnp/internal/query"
)

// Deploy instantiates a placed plan in the runtime: base-stream taps are
// started (or found) at source nodes, join operators are created at their
// assigned nodes — unless an operator with the same signature already
// runs there, in which case it is reused and merely gains a subscriber —
// and the root output is subscribed to the query's sink. cat maps base
// streams to emission rates; until bounds source lifetimes.
//
// Deploy composes the runtime's three deployment primitives: instantiate
// (build or reuse the operator tree, taking references), subscribe (wire
// the root to the sink) and, on teardown, release. Runtime.Migrate
// composes the same primitives diff-wise to replace a running plan
// without tearing down what both plans share.
func (rt *Runtime) Deploy(q *query.Query, plan *query.PlanNode, cat *query.Catalog, until float64) error {
	sp := rt.spDeploy.Start()
	defer sp.End()
	parent := rt.takeTraceParent()
	if _, ok := rt.deploys[q.ID]; ok {
		return fmt.Errorf("iflow: query %d already deployed", q.ID)
	}
	if err := plan.Validate(); err != nil {
		return fmt.Errorf("iflow: query %d: %w", q.ID, err)
	}
	rt.refreshPaths()
	inst, err := rt.instantiate(q, plan, cat, until)
	if err != nil {
		return err
	}
	rt.sinks[q.ID] = &SinkStats{Node: q.Sink, width: inst.root.width}
	inst.root.subscribe(subscription{sink: q.ID, to: q.Sink})
	rt.deploys[q.ID] = &deployment{q: q, plan: plan, held: inst.held}
	if rt.tr.On() {
		rt.tr.Emit(obs.Event{
			Kind: obs.KindQueryDeployed, Parent: parent, Trace: obs.QueryTrace(q.ID),
			Query: q.ID, Node: int(q.Sink), VTime: rt.Sim.Now(), Aux: float64(len(inst.held)),
		})
	}
	return nil
}

// instantiation records the outcome of building one plan's operator tree:
// the references taken (one per plan node, post-order), the operators the
// build newly created (vs reused from running deployments), and the root
// producer.
type instantiation struct {
	held    []opKey
	created map[opKey]bool
	root    *Operator
}

// instantiate builds or reuses the operator tree for a placed plan. An
// operator with a matching identity (signature, node) that is already
// running is reused in place — windows, statistics and subscribers
// untouched; everything else is created and wired to its children. On
// error every reference taken so far is rolled back and partially created
// operators are collected: the runtime is exactly as before the call.
func (rt *Runtime) instantiate(q *query.Query, plan *query.PlanNode, cat *query.Catalog, until float64) (*instantiation, error) {
	inst := &instantiation{created: map[opKey]bool{}}
	root, err := rt.instantiateNode(q, plan, cat, until, inst)
	if err != nil {
		rt.release(inst.held)
		return nil, err
	}
	inst.root = root
	return inst, nil
}

// instantiateNode returns the operator producing node n's output, taking
// one reference on it.
func (rt *Runtime) instantiateNode(q *query.Query, n *query.PlanNode, cat *query.Catalog, until float64, inst *instantiation) (*Operator, error) {
	hold := func(op *Operator) *Operator {
		op.refs++
		inst.held = append(inst.held, op.key)
		return op
	}
	if n.IsLeaf() {
		if n.In.Derived {
			op := rt.Operator(n.In.Sig, n.Loc)
			if op == nil && n.In.BaseSig != "" {
				// Containment reuse: attach a residual filter at the
				// producing node, narrowing the weaker stream to this
				// query's predicates.
				base := rt.Operator(n.In.BaseSig, n.Loc)
				if base == nil {
					return nil, fmt.Errorf("iflow: contained stream %s@%d not deployed", n.In.BaseSig, n.Loc)
				}
				key := opKey{sig: n.In.Sig, node: n.Loc}
				op = &Operator{key: key, isFilter: true, passProb: residualPassProb(n.Rate, base.expRate), expRate: n.Rate, width: n.Width}
				rt.ops[key] = op
				inst.created[key] = true
				base.subscribe(subscription{dst: key, side: leftSide, sink: -1, to: n.Loc})
			}
			if op == nil {
				return nil, fmt.Errorf("iflow: reused stream %s@%d not deployed", n.In.Sig, n.Loc)
			}
			return hold(op), nil
		}
		// Base stream: one tap shared by all queries.
		op := rt.Operator(n.In.Sig, n.Loc)
		if op == nil {
			ids := q.StreamsOf(n.Mask)
			if len(ids) != 1 {
				return nil, fmt.Errorf("iflow: base leaf covering %d streams", len(ids))
			}
			var err error
			op, err = rt.StartSource(n.In.Sig, n.Loc, cat.Stream(ids[0]).Rate, until)
			if err != nil {
				return nil, err
			}
			// The tap emits the plan's shipped width for this stream (the
			// pruned width when the rewrite pipeline dropped columns).
			// Differently-projected streams have different signatures, so a
			// shared tap is never re-widened by a later deployment.
			op.width = n.Width
			inst.created[op.key] = true
		}
		return hold(op), nil
	}
	if n.IsUnary() {
		child, err := rt.instantiateNode(q, n.L, cat, until, inst)
		if err != nil {
			return nil, err
		}
		key := opKey{sig: n.Unary.Sig, node: n.Loc}
		op := rt.ops[key]
		if op == nil {
			op = &Operator{
				key: key, isAgg: true, aggWindow: n.Unary.Agg.Window, expRate: n.Rate, width: n.Width,
			}
			rt.ops[key] = op
			inst.created[key] = true
			child.subscribe(subscription{dst: key, side: leftSide, sink: -1, to: n.Loc})
		}
		return hold(op), nil
	}
	l, err := rt.instantiateNode(q, n.L, cat, until, inst)
	if err != nil {
		return nil, err
	}
	r, err := rt.instantiateNode(q, n.R, cat, until, inst)
	if err != nil {
		return nil, err
	}
	sig := q.SigOf(n.Mask)
	key := opKey{sig: sig, node: n.Loc}
	op := rt.ops[key]
	if op == nil {
		op = &Operator{key: key, window: rt.cfg.Window, expRate: n.Rate, width: n.Width}
		rt.ops[key] = op
		inst.created[key] = true
		l.subscribe(subscription{dst: key, side: leftSide, sink: -1, to: n.Loc})
		r.subscribe(subscription{dst: key, side: rightSide, sink: -1, to: n.Loc})
	}
	return hold(op), nil
}

// release drops one reference per held key (nil-safe for operators a node
// failure already removed) and garbage-collects everything no deployment
// references and nothing subscribes to.
func (rt *Runtime) release(held []opKey) {
	for _, k := range held {
		if op := rt.ops[k]; op != nil {
			op.refs--
		}
	}
	rt.gc()
}

// residualPassProb returns the probability a containment residual filter
// passes an upstream tuple: the narrowed rate over the base stream's
// expected rate. The degenerate edges are explicit rather than silent —
// an uncalibrated base (expected rate <= 0) or a "narrowed" rate at or
// above the base mean the filter cannot narrow anything, so it passes
// everything; a non-positive narrowed rate passes nothing.
func residualPassProb(narrowed, base float64) float64 {
	if base <= 0 || narrowed >= base {
		return 1
	}
	if narrowed <= 0 {
		return 0
	}
	return narrowed / base
}

// subscribe adds a subscription unless an identical one exists (reuse by
// several queries must not duplicate the stream).
func (op *Operator) subscribe(s subscription) {
	for _, ex := range op.subs {
		if ex == s {
			return
		}
	}
	op.subs = append(op.subs, s)
}

func (op *Operator) unsubscribe(s subscription) {
	for i, ex := range op.subs {
		if ex == s {
			op.subs = append(op.subs[:i], op.subs[i+1:]...)
			return
		}
	}
}

// Undeploy tears a query down: its operator references are released and
// operators no longer referenced by any deployment are removed, together
// with their upstream subscriptions. Base taps persist while referenced.
func (rt *Runtime) Undeploy(queryID int) error {
	parent := rt.takeTraceParent()
	dep, ok := rt.deploys[queryID]
	if !ok {
		return fmt.Errorf("iflow: query %d not deployed", queryID)
	}
	// Remove the sink subscription.
	sinkNode := rt.sinks[queryID].Node
	for _, op := range rt.ops {
		op.unsubscribe(subscription{sink: queryID, to: sinkNode})
	}
	delete(rt.deploys, queryID)
	rt.release(dep.held)
	if rt.tr.On() {
		rt.tr.Emit(obs.Event{
			Kind: obs.KindQueryUndeployed, Parent: parent, Trace: obs.QueryTrace(queryID),
			Query: queryID, Node: int(sinkNode), VTime: rt.Sim.Now(),
		})
	}
	return nil
}

// gc garbage-collects unreferenced operators (iterating to a fixed point
// so chains collapse; subscriptions into removed operators are dropped
// eagerly here, and lazily by emit for tuples already in flight).
func (rt *Runtime) gc() {
	for changed := true; changed; {
		changed = false
		for k, op := range rt.ops {
			if op.refs <= 0 && len(op.subs) == 0 {
				delete(rt.ops, k)
				changed = true
			}
		}
		// Drop subscriptions pointing at removed operators.
		for _, op := range rt.ops {
			kept := op.subs[:0]
			for _, s := range op.subs {
				if s.sink >= 0 || rt.ops[s.dst] != nil {
					kept = append(kept, s)
				}
			}
			if len(kept) != len(op.subs) {
				op.subs = kept
				changed = true
			}
		}
	}
}

// DeployTime replays a planning trace over the simulated network and
// returns the wall-clock seconds the deployment protocol takes: the query
// registration travels from the sink to the first coordinator, each
// coordinator spends CPU proportional to the solutions it examines, and
// planning hand-offs ride delay-shortest paths with per-hop overhead.
// Children of one step proceed in parallel (Top-Down fans out; Bottom-Up
// chains).
func (rt *Runtime) DeployTime(trace *core.PlanStep, sink netgraph.NodeID) float64 {
	if trace == nil {
		return 0
	}
	rt.refreshPaths()
	var finish func(s *core.PlanStep, arrival float64) float64
	finish = func(s *core.PlanStep, arrival float64) float64 {
		done := arrival + s.Plans*rt.cfg.ComputePerPlan
		end := done
		for _, ch := range s.Children {
			t := finish(ch, done+rt.msgDelay(s.Coordinator, ch.Coordinator))
			if t > end {
				end = t
			}
		}
		return end
	}
	return finish(trace, rt.msgDelay(sink, trace.Coordinator))
}

func (rt *Runtime) msgDelay(a, b netgraph.NodeID) float64 {
	if a == b {
		return 0
	}
	hops := rt.Delay.Hops(a, b)
	if hops < 0 {
		hops = 1
	}
	return rt.Delay.Dist(a, b) + float64(hops)*rt.cfg.HopOverhead
}
