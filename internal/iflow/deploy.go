package iflow

import (
	"fmt"

	"hnp/internal/core"
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// Deploy instantiates a placed plan in the runtime: base-stream taps are
// started (or found) at source nodes, join operators are created at their
// assigned nodes — unless an operator with the same signature already
// runs there, in which case it is reused and merely gains a subscriber —
// and the root output is subscribed to the query's sink. sourceRate maps
// base signatures to emission rates; until bounds source lifetimes.
func (rt *Runtime) Deploy(q *query.Query, plan *query.PlanNode, cat *query.Catalog, until float64) error {
	if _, ok := rt.deploys[q.ID]; ok {
		return fmt.Errorf("iflow: query %d already deployed", q.ID)
	}
	if err := plan.Validate(); err != nil {
		return fmt.Errorf("iflow: query %d: %w", q.ID, err)
	}
	rt.refreshPaths()
	var held []opKey
	hold := func(op *Operator) {
		op.refs++
		held = append(held, op.key)
	}

	// instantiate returns the operator producing node n's output.
	var instantiate func(n *query.PlanNode) (*Operator, error)
	instantiate = func(n *query.PlanNode) (*Operator, error) {
		if n.IsLeaf() {
			if n.In.Derived {
				op := rt.Operator(n.In.Sig, n.Loc)
				if op == nil && n.In.BaseSig != "" {
					// Containment reuse: attach a residual filter at the
					// producing node, narrowing the weaker stream to this
					// query's predicates.
					base := rt.Operator(n.In.BaseSig, n.Loc)
					if base == nil {
						return nil, fmt.Errorf("iflow: contained stream %s@%d not deployed", n.In.BaseSig, n.Loc)
					}
					pass := 1.0
					if base.expRate > 0 && n.Rate < base.expRate {
						pass = n.Rate / base.expRate
					}
					key := opKey{sig: n.In.Sig, node: n.Loc}
					op = &Operator{key: key, isFilter: true, passProb: pass, expRate: n.Rate}
					rt.ops[key] = op
					base.subscribe(subscription{dst: key, side: leftSide, sink: -1, to: n.Loc})
				}
				if op == nil {
					return nil, fmt.Errorf("iflow: reused stream %s@%d not deployed", n.In.Sig, n.Loc)
				}
				hold(op)
				return op, nil
			}
			// Base stream: one tap shared by all queries.
			op := rt.Operator(n.In.Sig, n.Loc)
			if op == nil {
				ids := q.StreamsOf(n.Mask)
				if len(ids) != 1 {
					return nil, fmt.Errorf("iflow: base leaf covering %d streams", len(ids))
				}
				var err error
				op, err = rt.StartSource(n.In.Sig, n.Loc, cat.Stream(ids[0]).Rate, until)
				if err != nil {
					return nil, err
				}
			}
			hold(op)
			return op, nil
		}
		if n.IsUnary() {
			child, err := instantiate(n.L)
			if err != nil {
				return nil, err
			}
			key := opKey{sig: n.Unary.Sig, node: n.Loc}
			op := rt.ops[key]
			if op == nil {
				op = &Operator{
					key: key, isAgg: true, aggWindow: n.Unary.Agg.Window, expRate: n.Rate,
				}
				rt.ops[key] = op
				child.subscribe(subscription{dst: key, side: leftSide, sink: -1, to: n.Loc})
			}
			hold(op)
			return op, nil
		}
		l, err := instantiate(n.L)
		if err != nil {
			return nil, err
		}
		r, err := instantiate(n.R)
		if err != nil {
			return nil, err
		}
		sig := q.SigOf(n.Mask)
		key := opKey{sig: sig, node: n.Loc}
		op := rt.ops[key]
		if op == nil {
			op = &Operator{key: key, window: rt.cfg.Window, expRate: n.Rate}
			rt.ops[key] = op
			l.subscribe(subscription{dst: key, side: leftSide, sink: -1, to: n.Loc})
			r.subscribe(subscription{dst: key, side: rightSide, sink: -1, to: n.Loc})
		}
		hold(op)
		return op, nil
	}

	root, err := instantiate(plan)
	if err != nil {
		// Roll back references taken so far and collect any operators this
		// partial instantiation created that nothing now references.
		for _, k := range held {
			rt.ops[k].refs--
		}
		rt.gc()
		return err
	}
	rt.sinks[q.ID] = &SinkStats{Node: q.Sink}
	root.subscribe(subscription{sink: q.ID, to: q.Sink})
	rt.deploys[q.ID] = held
	return nil
}

// subscribe adds a subscription unless an identical one exists (reuse by
// several queries must not duplicate the stream).
func (op *Operator) subscribe(s subscription) {
	for _, ex := range op.subs {
		if ex == s {
			return
		}
	}
	op.subs = append(op.subs, s)
}

func (op *Operator) unsubscribe(s subscription) {
	for i, ex := range op.subs {
		if ex == s {
			op.subs = append(op.subs[:i], op.subs[i+1:]...)
			return
		}
	}
}

// Undeploy tears a query down: its operator references are released and
// operators no longer referenced by any deployment are removed, together
// with their upstream subscriptions. Base taps persist while referenced.
func (rt *Runtime) Undeploy(queryID int) error {
	held, ok := rt.deploys[queryID]
	if !ok {
		return fmt.Errorf("iflow: query %d not deployed", queryID)
	}
	for _, k := range held {
		if op := rt.ops[k]; op != nil {
			op.refs--
		}
	}
	// Remove the sink subscription.
	for _, op := range rt.ops {
		op.unsubscribe(subscription{sink: queryID, to: rt.sinks[queryID].Node})
	}
	delete(rt.deploys, queryID)
	rt.gc()
	return nil
}

// gc garbage-collects unreferenced operators (iterating to a fixed point
// so chains collapse; subscriptions into removed operators are dropped
// eagerly here, and lazily by emit for tuples already in flight).
func (rt *Runtime) gc() {
	for changed := true; changed; {
		changed = false
		for k, op := range rt.ops {
			if op.refs <= 0 && len(op.subs) == 0 {
				delete(rt.ops, k)
				changed = true
			}
		}
		// Drop subscriptions pointing at removed operators.
		for _, op := range rt.ops {
			kept := op.subs[:0]
			for _, s := range op.subs {
				if s.sink >= 0 || rt.ops[s.dst] != nil {
					kept = append(kept, s)
				}
			}
			if len(kept) != len(op.subs) {
				op.subs = kept
				changed = true
			}
		}
	}
}

// DeployTime replays a planning trace over the simulated network and
// returns the wall-clock seconds the deployment protocol takes: the query
// registration travels from the sink to the first coordinator, each
// coordinator spends CPU proportional to the solutions it examines, and
// planning hand-offs ride delay-shortest paths with per-hop overhead.
// Children of one step proceed in parallel (Top-Down fans out; Bottom-Up
// chains).
func (rt *Runtime) DeployTime(trace *core.PlanStep, sink netgraph.NodeID) float64 {
	if trace == nil {
		return 0
	}
	rt.refreshPaths()
	var finish func(s *core.PlanStep, arrival float64) float64
	finish = func(s *core.PlanStep, arrival float64) float64 {
		done := arrival + s.Plans*rt.cfg.ComputePerPlan
		end := done
		for _, ch := range s.Children {
			t := finish(ch, done+rt.msgDelay(s.Coordinator, ch.Coordinator))
			if t > end {
				end = t
			}
		}
		return end
	}
	return finish(trace, rt.msgDelay(sink, trace.Coordinator))
}

func (rt *Runtime) msgDelay(a, b netgraph.NodeID) float64 {
	if a == b {
		return 0
	}
	hops := rt.Delay.Hops(a, b)
	if hops < 0 {
		hops = 1
	}
	return rt.Delay.Dist(a, b) + float64(hops)*rt.cfg.HopOverhead
}
