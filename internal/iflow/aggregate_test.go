package iflow

import (
	"testing"

	"hnp/internal/core"
	"hnp/internal/query"
)

// A deployed aggregate must emit roughly one summary tuple per window and
// collapse the stream delivered to the sink.
func TestAggregateExecution(t *testing.T) {
	w := makeTestWorld(t, 17)
	aggQ, err := query.NewQueryAgg(5, w.q.Sources, w.q.Sink, query.PredSet{},
		query.AggSpec{Fn: "count", Window: 20, OutRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.TopDown(w.h, w.cat, aggQ, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.IsUnary() {
		t.Fatal("plan root is not the aggregate")
	}

	rt := New(w.g, DefaultConfig(), 51)
	const horizon = 600.0
	if err := rt.Deploy(aggQ, res.Plan, w.cat, horizon); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(horizon)

	sink := rt.Sink(aggQ.ID)
	if sink.Tuples == 0 {
		t.Fatal("aggregate delivered nothing")
	}
	// At most one summary per 20s window (+1 boundary effect); well below
	// the raw join output.
	maxSummaries := int64(horizon/20) + 2
	if sink.Tuples > maxSummaries {
		t.Errorf("delivered %d summaries for %d windows", sink.Tuples, maxSummaries)
	}
	aggOp := rt.Operator(aggQ.AggSig(), res.Plan.Loc)
	if aggOp == nil || !aggOp.isAgg {
		t.Fatal("aggregate operator missing")
	}
	// The raw join emits far more than the summaries delivered.
	join := rt.Operator(aggQ.SigOf(aggQ.All()), res.Plan.L.Loc)
	if join == nil {
		t.Fatal("join operator missing")
	}
	if join.OutCount <= sink.Tuples {
		t.Errorf("join emitted %d, summaries %d: no reduction", join.OutCount, sink.Tuples)
	}
	// Undeploy tears everything down, aggregate included.
	if err := rt.Undeploy(aggQ.ID); err != nil {
		t.Fatal(err)
	}
	if rt.NumOperators() != 0 {
		t.Errorf("%d operators survive undeploy", rt.NumOperators())
	}
}
