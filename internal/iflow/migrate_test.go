package iflow

import (
	"math/rand"
	"testing"

	"hnp/internal/ads"
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// migrateWorld builds a 4-stream catalog/query over the 32-node test
// topology and a helper assembling left-deep plans with explicit join
// placements, so migrations between placements can be exercised directly.
type migrateWorld struct {
	g   *netgraph.Graph
	cat *query.Catalog
	q   *query.Query
	rt  query.RateTable
}

func makeMigrateWorld(t *testing.T, seed int64) *migrateWorld {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := netgraph.MustTransitStub(32, rng)
	cat := query.NewCatalog(0.05)
	a := cat.Add("A", 20, 4)
	b := cat.Add("B", 15, 20)
	c := cat.Add("C", 10, 28)
	d := cat.Add("D", 8, 12)
	q, err := query.NewQuery(0, []query.StreamID{a, b, c, d}, 9)
	if err != nil {
		t.Fatal(err)
	}
	return &migrateWorld{g: g, cat: cat, q: q, rt: query.BuildRates(cat, q)}
}

// leftDeep places the K-1 joins of a left-deep tree at the given nodes.
func (w *migrateWorld) leftDeep(joinLocs []netgraph.NodeID) *query.PlanNode {
	leaf := func(pos int) *query.PlanNode {
		m := query.Mask(1 << uint(pos))
		return query.Leaf(query.Input{
			Mask: m,
			Rate: w.rt.Rate(m),
			Loc:  w.cat.Stream(w.q.Sources[pos]).Source,
			Sig:  w.q.SigOf(m),
		})
	}
	cur := leaf(0)
	for i := 1; i < w.q.K(); i++ {
		cur = query.Join(cur, leaf(i), joinLocs[i-1], w.rt.Rate(cur.Mask|query.Mask(1<<uint(i))))
	}
	return cur
}

// A single placement change in a K=4 plan must migrate as a strict delta:
// one create, one retire, everything else kept running in place — strictly
// cheaper than the teardown path, measured against an actual
// teardown-redeploy of the same plans on a second runtime.
func TestMigrateSinglePlacementDelta(t *testing.T) {
	w := makeMigrateWorld(t, 1)
	planA := w.leftDeep([]netgraph.NodeID{5, 6, 7})
	planB := w.leftDeep([]netgraph.NodeID{5, 8, 7}) // middle join moves 6 -> 8

	rt := New(w.g, DefaultConfig(), 42)
	if err := rt.Deploy(w.q, planA, w.cat, 200); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(50)

	sinkBefore := rt.Sink(w.q.ID)
	tuplesBefore := sinkBefore.Tuples
	if tuplesBefore == 0 {
		t.Fatal("no tuples delivered before migration")
	}
	keptSig := w.q.SigOf(query.Mask(3)) // A⋈B at node 5, kept by the diff
	keptOp := rt.Operator(keptSig, 5)
	if keptOp == nil {
		t.Fatal("first join not deployed")
	}
	keptOut := keptOp.OutCount

	rep, err := rt.Migrate(w.q, planB, w.cat, 200)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Created != 1 || rep.Retired != 1 || rep.Moved != 1 || rep.Rewired != 1 {
		t.Errorf("report %s: want created=1 retired=1 moved=1 rewired=1", rep)
	}
	if want := 2*w.q.K() - 2; rep.Kept != want {
		t.Errorf("kept=%d, want %d", rep.Kept, want)
	}
	if rep.Delta() >= rep.TeardownOps {
		t.Errorf("delta %d not cheaper than teardown bound %d", rep.Delta(), rep.TeardownOps)
	}
	if rep.StateCarried == 0 || rep.BytesSaved <= 0 {
		t.Errorf("no state carried: %s", rep)
	}

	// Kept operators are the same running instances, statistics intact.
	if now := rt.Operator(keptSig, 5); now != keptOp {
		t.Error("kept operator was recreated")
	}
	if keptOp.OutCount < keptOut {
		t.Error("kept operator lost its output statistics")
	}
	// The sink statistics object carries natively: same instance, counters
	// monotone across the migration.
	if rt.Sink(w.q.ID) != sinkBefore {
		t.Error("migration replaced the sink statistics object")
	}
	if sinkBefore.Tuples < tuplesBefore {
		t.Error("sink counters reset by migration")
	}
	if err := rt.CheckInvariants(nil); err != nil {
		t.Fatalf("invariants after migration: %v", err)
	}
	rt.RunFor(50)
	if sinkBefore.Tuples <= tuplesBefore {
		t.Error("query starved after migration")
	}
	if err := rt.CheckInvariants(nil); err != nil {
		t.Fatalf("invariants after post-migration run: %v", err)
	}

	// The same plan change via teardown-redeploy churns strictly more
	// operators: every old operator down, every new operator up.
	rt2 := New(w.g, DefaultConfig(), 42)
	if err := rt2.Deploy(w.q, planA, w.cat, 200); err != nil {
		t.Fatal(err)
	}
	torn := rt2.NumOperators()
	if err := rt2.Undeploy(w.q.ID); err != nil {
		t.Fatal(err)
	}
	torn -= rt2.NumOperators() // operators actually removed
	if err := rt2.Deploy(w.q, planB, w.cat, 200); err != nil {
		t.Fatal(err)
	}
	teardownChurn := torn + rt2.NumOperators()
	if rep.Delta() >= teardownChurn {
		t.Errorf("migration churned %d ops, teardown-redeploy %d — no delta win", rep.Delta(), teardownChurn)
	}
}

// A migration whose new plan cannot be instantiated must leave the old
// deployment exactly as it was: same plan, same operators, still flowing.
func TestMigrateRollsBackOnError(t *testing.T) {
	w := makeMigrateWorld(t, 2)
	planA := w.leftDeep([]netgraph.NodeID{5, 6, 7})
	rt := New(w.g, DefaultConfig(), 7)
	if err := rt.Deploy(w.q, planA, w.cat, 200); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(20)
	opsBefore := rt.NumOperators()
	tuplesBefore := rt.Sink(w.q.ID).Tuples

	// Valid shape, impossible instantiation: the derived leaf reuses a
	// stream nobody computes. The base-A tap is instantiated (reused)
	// before the failure, so rollback has real work to undo.
	rest := w.q.All() &^ query.Mask(1)
	bad := query.Join(
		query.Leaf(query.Input{Mask: 1, Rate: w.rt.Rate(1), Loc: 4, Sig: w.q.SigOf(1)}),
		query.Leaf(query.Input{Mask: rest, Rate: w.rt.Rate(rest), Loc: 3, Derived: true, Sig: w.q.SigOf(rest)}),
		7, w.rt.Rate(w.q.All()),
	)
	if _, err := rt.Migrate(w.q, bad, w.cat, 200); err == nil {
		t.Fatal("migration to an uninstantiable plan accepted")
	}
	if rt.NumOperators() != opsBefore {
		t.Errorf("failed migration changed operator count: %d -> %d", opsBefore, rt.NumOperators())
	}
	if rt.DeployedPlan(w.q.ID) != planA {
		t.Error("failed migration replaced the recorded plan")
	}
	if err := rt.CheckInvariants(nil); err != nil {
		t.Fatalf("invariants after failed migration: %v", err)
	}
	rt.RunFor(20)
	if rt.Sink(w.q.ID).Tuples <= tuplesBefore {
		t.Error("old deployment stopped flowing after failed migration")
	}
}

// Migrating to a plan that consumes the query's own old root as a derived
// leaf must keep that root (and, transitively, its upstream chain via
// subscriptions) without rewiring its inputs away.
func TestMigrateToLeafConsumption(t *testing.T) {
	w := makeMigrateWorld(t, 3)
	planA := w.leftDeep([]netgraph.NodeID{5, 6, 7})
	rt := New(w.g, DefaultConfig(), 11)
	if err := rt.Deploy(w.q, planA, w.cat, 200); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(20)
	full := w.q.All()
	leafPlan := query.Leaf(query.Input{
		Mask: full, Rate: w.rt.Rate(full), Loc: 7, Derived: true, Sig: w.q.SigOf(full),
	})
	rep, err := rt.Migrate(w.q, leafPlan, w.cat, 200)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kept != 1 || rep.Created != 0 {
		t.Errorf("report %s: want kept=1 created=0", rep)
	}
	// The root's upstream chain survives — it feeds the root through
	// subscriptions even though no deployment references it anymore.
	if rt.Operator(w.q.SigOf(query.Mask(3)), 5) == nil {
		t.Error("upstream of the consumed root was collected")
	}
	if err := rt.CheckInvariants(nil); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	before := rt.Sink(w.q.ID).Tuples
	rt.RunFor(30)
	if rt.Sink(w.q.ID).Tuples <= before {
		t.Error("query starved after migrating to leaf consumption")
	}
}

// Redeploy is a thin wrapper over Migrate and must be atomic: when the new
// plan cannot be deployed the query keeps running on its old plan instead
// of silently disappearing (the historical failure mode of
// undeploy-then-deploy).
func TestRedeployAtomicOnFailure(t *testing.T) {
	w := makeMigrateWorld(t, 4)
	planA := w.leftDeep([]netgraph.NodeID{5, 6, 7})
	rt := New(w.g, DefaultConfig(), 13)
	if err := rt.Deploy(w.q, planA, w.cat, 200); err != nil {
		t.Fatal(err)
	}
	bad := query.Leaf(query.Input{
		Mask: w.q.All(), Rate: 1, Loc: 3, Derived: true, Sig: "no-such-stream",
	})
	if err := rt.Redeploy(w.q, bad, w.cat, 200); err == nil {
		t.Fatal("redeploy to an uninstantiable plan accepted")
	}
	if got := rt.DeployedQueries(); len(got) != 1 || got[0] != w.q.ID {
		t.Fatalf("query vanished after failed redeploy: deployed=%v", got)
	}
	before := rt.Sink(w.q.ID).Tuples
	rt.RunFor(30)
	if rt.Sink(w.q.ID).Tuples <= before {
		t.Error("query starved after failed redeploy")
	}
	// And a valid redeploy still works, carrying sink statistics natively.
	sink := rt.Sink(w.q.ID)
	tuples := sink.Tuples
	planB := w.leftDeep([]netgraph.NodeID{5, 8, 7})
	if err := rt.Redeploy(w.q, planB, w.cat, 200); err != nil {
		t.Fatal(err)
	}
	if rt.Sink(w.q.ID) != sink || sink.Tuples < tuples {
		t.Error("redeploy lost sink statistics")
	}
}

// A moved operator's window state must ship to its new host: the new
// instance resumes with the old windows, and the shipped bytes are
// charged to the transport totals (migration is not free).
func TestMigrateShipsMovedState(t *testing.T) {
	w := makeMigrateWorld(t, 6)
	planA := w.leftDeep([]netgraph.NodeID{5, 6, 7})
	planB := w.leftDeep([]netgraph.NodeID{5, 8, 7}) // middle join moves 6 -> 8
	rt := New(w.g, DefaultConfig(), 23)
	if err := rt.Deploy(w.q, planA, w.cat, 200); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(50)

	movedSig := w.q.SigOf(query.Mask(7)) // A⋈B⋈C
	oldOp := rt.Operator(movedSig, 6)
	if oldOp == nil {
		t.Fatal("moved join not deployed")
	}
	buffered := len(oldOp.left) + len(oldOp.right)
	if buffered == 0 {
		t.Fatal("moved join has no window state to ship")
	}
	costBefore, bytesBefore := rt.TotalCost, rt.TotalBytes

	rep, err := rt.Migrate(w.q, planB, w.cat, 200)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StateShipped != int64(buffered) {
		t.Errorf("shipped %d tuples, moved op buffered %d", rep.StateShipped, buffered)
	}
	cfg := rt.Config()
	if want := cfg.TupleSize * float64(rep.StateShipped); rep.BytesShipped != want {
		t.Errorf("shipped bytes %g, want %g", rep.BytesShipped, want)
	}
	if rep.ShipCost <= 0 {
		t.Error("shipping state across 6 -> 8 cost nothing")
	}
	if !approxEq(rt.TotalCost, costBefore+rep.ShipCost) {
		t.Errorf("TotalCost %g, want %g", rt.TotalCost, costBefore+rep.ShipCost)
	}
	if !approxEq(rt.TotalBytes, bytesBefore+rep.BytesShipped) {
		t.Errorf("TotalBytes %g, want %g", rt.TotalBytes, bytesBefore+rep.BytesShipped)
	}
	if rt.StateTuplesShipped != rep.StateShipped {
		t.Errorf("runtime shipped counter %d, report %d", rt.StateTuplesShipped, rep.StateShipped)
	}
	newOp := rt.Operator(movedSig, 8)
	if newOp == nil {
		t.Fatal("moved join missing at new host")
	}
	if got := len(newOp.left) + len(newOp.right); got != buffered {
		t.Errorf("new host holds %d window tuples, old held %d", got, buffered)
	}
	if err := rt.CheckInvariants(nil); err != nil {
		t.Fatalf("invariants after shipping migration: %v", err)
	}
	rt.RunFor(30)
	if err := rt.CheckInvariants(nil); err != nil {
		t.Fatalf("invariants after post-migration run: %v", err)
	}
}

// LoadDelta must record exactly the moved operator's input rate leaving
// its old host and arriving at the new one; kept operators cancel.
func TestMigrateLoadDelta(t *testing.T) {
	w := makeMigrateWorld(t, 7)
	planA := w.leftDeep([]netgraph.NodeID{5, 6, 7})
	planB := w.leftDeep([]netgraph.NodeID{5, 8, 7})
	rt := New(w.g, DefaultConfig(), 29)
	if err := rt.Deploy(w.q, planA, w.cat, 200); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(10)
	rep, err := rt.Migrate(w.q, planB, w.cat, 200)
	if err != nil {
		t.Fatal(err)
	}
	movedRate := w.rt.Rate(query.Mask(3)) + w.rt.Rate(query.Mask(4)) // A⋈B plus C input
	if len(rep.LoadDelta) != 2 {
		t.Fatalf("LoadDelta has %d entries, want 2: %v", len(rep.LoadDelta), rep.LoadDelta)
	}
	if got := rep.LoadDelta[6]; got != -movedRate {
		t.Errorf("LoadDelta[6] = %g, want %g", got, -movedRate)
	}
	if got := rep.LoadDelta[8]; got != movedRate {
		t.Errorf("LoadDelta[8] = %g, want %g", got, movedRate)
	}
}

func TestResidualPassProbEdges(t *testing.T) {
	cases := []struct {
		narrowed, base, want float64
	}{
		{5, 0, 1},    // uncalibrated base: cannot narrow, pass everything
		{5, -2, 1},   // negative base ditto
		{10, 5, 1},   // "narrowed" above base: clamp to pass-through
		{5, 5, 1},    // equal rates: pass-through
		{0, 10, 0},   // nothing passes
		{-1, 10, 0},  // negative narrowed rate passes nothing
		{2, 10, 0.2}, // ordinary ratio
	}
	for _, c := range cases {
		if got := residualPassProb(c.narrowed, c.base); got != c.want {
			t.Errorf("residualPassProb(%g, %g) = %g, want %g", c.narrowed, c.base, got, c.want)
		}
	}
}

// Pruning the advertisement registry against the post-migration runtime
// must retract exactly the ads of retired operators: an ad whose operator
// the migration kept survives, one whose operator moved away is gone.
func TestPruneAcrossMigration(t *testing.T) {
	w := makeMigrateWorld(t, 5)
	planA := w.leftDeep([]netgraph.NodeID{5, 6, 7})
	planB := w.leftDeep([]netgraph.NodeID{5, 8, 7})
	rt := New(w.g, DefaultConfig(), 17)
	if err := rt.Deploy(w.q, planA, w.cat, 200); err != nil {
		t.Fatal(err)
	}
	reg := ads.NewRegistry()
	reg.AdvertisePlan(w.q, planA)

	if _, err := rt.Migrate(w.q, planB, w.cat, 200); err != nil {
		t.Fatal(err)
	}
	reg.AdvertisePlan(w.q, planB)
	reg.Prune(func(ad ads.Ad) bool { return rt.Operator(ad.Sig, ad.Node) != nil })

	midSig := w.q.SigOf(query.Mask(7)) // A⋈B⋈C — the moved join
	nodes := map[netgraph.NodeID]bool{}
	for _, ad := range reg.Lookup(midSig) {
		nodes[ad.Node] = true
	}
	if nodes[6] {
		t.Error("ad for the retired operator at node 6 survived the prune")
	}
	if !nodes[8] {
		t.Error("ad for the migrated operator at node 8 was pruned")
	}
	keptSig := w.q.SigOf(query.Mask(3)) // A⋈B at 5, kept by the migration
	found := false
	for _, ad := range reg.Lookup(keptSig) {
		if ad.Node == 5 {
			found = true
		}
	}
	if !found {
		t.Error("ad for a kept operator was retracted")
	}
}
