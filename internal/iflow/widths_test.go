package iflow

import (
	"math"
	"math/rand"
	"testing"

	"hnp/internal/core"
	"hnp/internal/hierarchy"
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// widthWorld builds a 3-way predicate query over a schema-bearing catalog
// with pruned source widths, planned by Top-Down so the plan arrives
// width-stamped.
func widthWorld(t *testing.T, seed int64) (*netgraph.Graph, *query.Catalog, *query.Query, *query.PlanNode) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := netgraph.MustTransitStub(32, rng)
	paths := g.ShortestPaths(netgraph.MetricCost)
	h, err := hierarchy.Build(g, paths, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	cat := query.NewCatalog(0.05)
	a := cat.Add("A", 20, 4)
	b := cat.Add("B", 15, 20)
	c := cat.Add("C", 10, 28)
	cat.SetSchema(a, query.Schema{{Name: "k", Width: 8}, {Name: "v", Width: 24}, {Name: "blob", Width: 68}})
	cat.SetSchema(b, query.Schema{{Name: "k", Width: 8}, {Name: "v", Width: 40}})
	cat.SetSchema(c, query.Schema{{Name: "k", Width: 8}, {Name: "v", Width: 16}})
	q, err := query.NewQueryPred(0, []query.StreamID{a, b, c}, 9,
		query.MustPredSet(query.Pred{Stream: a, Attr: "k", Range: query.Range{Lo: 0, Hi: 0.5}}))
	if err != nil {
		t.Fatal(err)
	}
	// Pruned as the rewrite pipeline would leave it: A ships k+v only.
	q.SrcWidths = []float64{32, 0, 0}
	spec := query.NewProjSpec()
	spec.Set(a, []string{"k", "v"})
	q.Proj = spec
	res, err := core.TopDown(h, cat, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g, cat, q, res.Plan
}

// stripWidths deep-copies a plan with every width zeroed — the identical
// tree as the pre-width runtime would have deployed it.
func stripWidths(p *query.PlanNode) *query.PlanNode {
	if p == nil {
		return nil
	}
	cp := *p
	cp.Width = 0
	if p.In != nil {
		in := *p.In
		in.Width = 0
		cp.In = &in
	}
	cp.L = stripWidths(p.L)
	cp.R = stripWidths(p.R)
	return &cp
}

// TestWidthTwinRuns is the semantic-preservation property at the physical
// layer: the same tree deployed width-stamped and width-free, on the same
// seed, delivers exactly the same tuples — pruning changes how many bytes
// each tuple carries, never which tuples exist — while moving strictly
// fewer bytes (every pruned width is below the 100-byte default). Both
// runtimes must pass the full invariant audit, including the per-operator
// width homogeneity and transport-conservation checks.
func TestWidthTwinRuns(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		g, cat, q, plan := widthWorld(t, seed)

		rtW := New(g, DefaultConfig(), 1000+seed)
		if err := rtW.Deploy(q, plan, cat, 80); err != nil {
			t.Fatalf("seed %d: stamped deploy: %v", seed, err)
		}
		rtP := New(g, DefaultConfig(), 1000+seed)
		if err := rtP.Deploy(q, stripWidths(plan), cat, 80); err != nil {
			t.Fatalf("seed %d: stripped deploy: %v", seed, err)
		}
		rtW.RunFor(80)
		rtP.RunFor(80)

		sw, sp := rtW.Sink(q.ID), rtP.Sink(q.ID)
		if sw.Tuples == 0 {
			t.Fatalf("seed %d: no deliveries", seed)
		}
		if sw.Tuples != sp.Tuples {
			t.Errorf("seed %d: widths changed delivered tuples: %d vs %d", seed, sw.Tuples, sp.Tuples)
		}
		if rtW.TuplesTransferred != rtP.TuplesTransferred {
			t.Errorf("seed %d: widths changed transfer counts: %d vs %d",
				seed, rtW.TuplesTransferred, rtP.TuplesTransferred)
		}
		if rtW.TotalBytes >= rtP.TotalBytes {
			t.Errorf("seed %d: stamped run moved %g bytes, stripped %g — pruning never bit",
				seed, rtW.TotalBytes, rtP.TotalBytes)
		}
		if err := rtW.CheckInvariants(nil); err != nil {
			t.Errorf("seed %d: stamped invariants: %v", seed, err)
		}
		if err := rtP.CheckInvariants(nil); err != nil {
			t.Errorf("seed %d: stripped invariants: %v", seed, err)
		}
	}
}

// TestWidthEmission pins the per-operator byte accounting: every operator
// emits at its own stamped width (or the global TupleSize when
// unstamped), and sink bytes equal the root width times delivered tuples.
func TestWidthEmission(t *testing.T) {
	g, cat, q, plan := widthWorld(t, 5)
	rt := New(g, DefaultConfig(), 99)
	if err := rt.Deploy(q, plan, cat, 60); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(60)
	sink := rt.Sink(q.ID)
	if sink.Tuples == 0 {
		t.Fatal("no deliveries")
	}
	rootW := plan.Width
	if rootW <= 0 {
		t.Fatalf("plan arrived unstamped: %s", plan)
	}
	if want := rootW * float64(sink.Tuples); math.Abs(sink.Bytes-want) > 1e-6*want {
		t.Errorf("sink bytes %g, want %g (%d tuples × width %g)", sink.Bytes, want, sink.Tuples, rootW)
	}
	// The invariant audit re-derives the same homogeneity for every
	// operator in the fleet.
	if err := rt.CheckInvariants(nil); err != nil {
		t.Fatal(err)
	}
}

// TestMixedWidthFleet exercises the width bracket in the conservation
// invariant: one runtime hosts a width-stamped pruned query alongside a
// width-free one (whose operators emit at the global TupleSize), so
// TotalBytes mixes tuple sizes and the audit must fall back from the
// exact uniform formula to its [min,max] bracket — and still pass.
func TestMixedWidthFleet(t *testing.T) {
	g, cat, q, plan := widthWorld(t, 9)
	rt := New(g, DefaultConfig(), 3)
	if err := rt.Deploy(q, plan, cat, 60); err != nil {
		t.Fatal(err)
	}
	// Second query over the same streams, no pruning, no widths: its
	// signatures carry no projection fragment, so it builds its own
	// operators instead of aliasing the pruned ones.
	q2, err := query.NewQueryPred(1, q.Sources, 15, q.Preds)
	if err != nil {
		t.Fatal(err)
	}
	plan2 := stripWidths(plan)
	relabel(plan2, q2)
	if err := rt.Deploy(q2, plan2, cat, 60); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(60)
	if rt.Sink(q.ID).Tuples == 0 || rt.Sink(q2.ID).Tuples == 0 {
		t.Fatalf("deliveries: q0=%d q1=%d", rt.Sink(q.ID).Tuples, rt.Sink(q2.ID).Tuples)
	}
	if rt.minTupleSize == rt.maxTupleSize {
		t.Fatalf("fleet never mixed widths (all transfers at %g) — the bracket path was not exercised", rt.maxTupleSize)
	}
	if err := rt.CheckInvariants(nil); err != nil {
		t.Fatal(err)
	}
}

// relabel rewrites a copied plan's signatures to q2's (projection-free)
// vocabulary so the two deployments cannot share operators.
func relabel(p *query.PlanNode, q2 *query.Query) {
	if p == nil {
		return
	}
	if p.In != nil {
		p.In.Sig = q2.SigOf(p.Mask)
	}
	relabel(p.L, q2)
	relabel(p.R, q2)
}
