package iflow

import (
	"fmt"
	"sort"

	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// FailNode models a node crash: every operator hosted on the node (base
// taps, joins, filters) dies immediately, subscriptions into them are
// dropped, and tuples in flight toward them are lost. It returns the IDs
// of the queries the crash affects, sorted, so the middleware can re-plan
// them: queries whose deployments referenced an operator on the failed
// node, and queries whose sink lives there (their consumer is gone — the
// delivery stream has nowhere to go until RecoverQueries re-plans them,
// which tears the orphaned deployment down and fails their re-planning
// while the sink stays dead).
func (rt *Runtime) FailNode(v netgraph.NodeID) []int {
	dead := map[opKey]bool{}
	for k := range rt.ops {
		if k.node == v {
			dead[k] = true
			delete(rt.ops, k)
		}
	}
	affected := map[int]bool{}
	for qid := range rt.deploys {
		if s := rt.sinks[qid]; s != nil && s.Node == v {
			affected[qid] = true
		}
	}
	if len(dead) == 0 && len(affected) == 0 {
		return nil
	}
	// Drop subscriptions into dead operators, then collect chains the
	// crash orphaned: an operator kept alive only by a subscriber on the
	// failed node (refs == 0 — e.g. the upstream chain of a reused stream
	// whose producing query was already undeployed) has no references and,
	// now, no subscribers, and must not outlive its consumer.
	for _, op := range rt.ops {
		kept := op.subs[:0]
		for _, s := range op.subs {
			if s.sink < 0 && dead[s.dst] {
				continue
			}
			kept = append(kept, s)
		}
		op.subs = kept
	}
	rt.gc()
	for qid, dep := range rt.deploys {
		for _, k := range dep.held {
			if dead[k] {
				affected[qid] = true
			}
		}
	}
	out := make([]int, 0, len(affected))
	for qid := range affected {
		out = append(out, qid)
	}
	sort.Ints(out)
	return out
}

// RecoverQueries re-deploys the given queries after a failure: each is
// undeployed (releasing surviving shared operators correctly), re-planned
// with replan against current conditions, and deployed again, preserving
// sink statistics. Queries whose re-planning fails (e.g. their base
// source died with the node) are reported in failedIDs rather than
// aborting the rest.
func (rt *Runtime) RecoverQueries(affected []int, qs map[int]*query.Query,
	plans map[int]*query.PlanNode, cat *query.Catalog, replan ReplanFunc,
	until float64) (recovered, failedIDs []int, err error) {
	for _, qid := range affected {
		q := qs[qid]
		if q == nil {
			return recovered, failedIDs, fmt.Errorf("iflow: unknown query %d", qid)
		}
		old := rt.sinks[qid]
		if uerr := rt.Undeploy(qid); uerr != nil {
			return recovered, failedIDs, uerr
		}
		fresh, perr := replan(q)
		if perr != nil {
			failedIDs = append(failedIDs, qid)
			continue
		}
		if derr := rt.Deploy(q, fresh, cat, until); derr != nil {
			failedIDs = append(failedIDs, qid)
			continue
		}
		if old != nil {
			s := rt.sinks[qid]
			s.Tuples += old.Tuples
			s.Bytes += old.Bytes
			s.LatencySum += old.LatencySum
		}
		plans[qid] = fresh
		recovered = append(recovered, qid)
	}
	return recovered, failedIDs, nil
}
