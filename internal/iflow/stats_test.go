package iflow

import (
	"strings"
	"testing"

	"hnp/internal/netgraph"
	"hnp/internal/obs"
	"hnp/internal/query"
)

// TestStatsZeroWindow: a freshly built runtime must report all-zero
// statistics — counts and rates alike — never NaN or a division panic.
func TestStatsZeroWindow(t *testing.T) {
	g := netgraph.Line(2, 0.001)
	rt := New(g, DefaultConfig(), 1)
	if got := rt.CostRate(); got != 0 {
		t.Errorf("CostRate on fresh runtime = %g, want 0", got)
	}
	s := rt.Stats()
	if s.TuplesTransferred != 0 || s.TuplesDropped != 0 || s.WindowExpired != 0 {
		t.Errorf("fresh counts non-zero: %+v", s)
	}
	if got := s.CostRate(); got != 0 {
		t.Errorf("Stats.CostRate on zero window = %g, want 0", got)
	}
	if got := rt.EmitRates(); got != nil {
		t.Errorf("EmitRates on zero window = %v, want nil", got)
	}
	var sink *SinkStats
	if got := sink.MeanLatency(); got != 0 {
		t.Errorf("nil SinkStats MeanLatency = %g", got)
	}
	empty := &SinkStats{}
	if got := empty.MeanLatency(); got != 0 {
		t.Errorf("empty SinkStats MeanLatency = %g", got)
	}
	if got := empty.Rate(0); got != 0 {
		t.Errorf("SinkStats.Rate over zero window = %g", got)
	}
}

// TestStatsCountsAfterRun: after a real run, counts are positive, rates
// are consistent with the counts, and the obs counters mirror the fields.
func TestStatsCountsAfterRun(t *testing.T) {
	prev := obs.Enabled.Load()
	obs.Enable()
	defer obs.Enabled.Store(prev)

	w := makeTestWorld(t, 11)
	rt := New(w.g, DefaultConfig(), 42)
	reg := obs.NewRegistry()
	rt.BindObs(reg)
	if err := rt.Deploy(w.q, w.plan, w.cat, 100); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(100)

	s := rt.Stats()
	if s.TuplesTransferred == 0 {
		t.Error("no tuples transferred")
	}
	if s.WindowExpired == 0 {
		t.Error("no window expirations over a 100s run with a 10s window")
	}
	if s.Elapsed != 100 {
		t.Errorf("elapsed %g, want 100", s.Elapsed)
	}
	if s.CostRate() != rt.CostRate() {
		t.Errorf("Stats.CostRate %g != Runtime.CostRate %g", s.CostRate(), rt.CostRate())
	}
	sink := rt.Sink(w.q.ID)
	if sink.MeanLatency() <= 0 {
		t.Error("mean latency not positive after deliveries")
	}
	if got := sink.Rate(s.Elapsed); got != float64(sink.Tuples)/100 {
		t.Errorf("sink rate %g inconsistent with %d tuples over 100s", got, sink.Tuples)
	}

	rates := rt.EmitRates()
	if len(rates) == 0 {
		t.Fatal("no emit rates for live operators")
	}
	for k, r := range rates {
		if !strings.Contains(k, "@") {
			t.Errorf("emit-rate key %q not sig@node formatted", k)
		}
		if r < 0 {
			t.Errorf("negative emit rate %g for %s", r, k)
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counter("iflow.tuples_transferred"); got != s.TuplesTransferred {
		t.Errorf("obs transferred %d != %d", got, s.TuplesTransferred)
	}
	if got := snap.Counter("iflow.window_expired"); got != s.WindowExpired {
		t.Errorf("obs expired %d != %d", got, s.WindowExpired)
	}
	if got := snap.Gauge("iflow.bytes_cost"); got != s.TotalCost {
		t.Errorf("obs bytes_cost %g != %g", got, s.TotalCost)
	}
}

// TestDroppedTuplesCounted: undeploying a query while its tuples are in
// flight must surface as an explicit drop count, not silence.
func TestDroppedTuplesCounted(t *testing.T) {
	w := makeTestWorld(t, 12)
	rt := New(w.g, DefaultConfig(), 9)
	if err := rt.Deploy(w.q, w.plan, w.cat, 1000); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(5)
	if err := rt.Undeploy(w.q.ID); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(5)
	if rt.Stats().TuplesDropped == 0 {
		t.Error("in-flight tuples vanished without a drop count")
	}
}

// TestEmitRatesKeying pins the sig@node key format against a known tap.
func TestEmitRatesKeying(t *testing.T) {
	g := netgraph.Line(2, 0.001)
	rt := New(g, DefaultConfig(), 5)
	cat := query.NewCatalog(0)
	cat.Add("A", 30, 0)
	if _, err := rt.StartSource("A", 0, 30, 50); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(50)
	rates := rt.EmitRates()
	r, ok := rates["A@0"]
	if !ok {
		t.Fatalf("key A@0 missing from %v", rates)
	}
	if r <= 0 {
		t.Errorf("source emit rate %g", r)
	}
}
