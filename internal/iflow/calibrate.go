package iflow

import (
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// This file closes the paper's statistics loop: "the expected data-rates
// of the stream sources and the selectivities of their various attributes
// [are] measured online or using gathered statistics over the stream
// sources". The runtime's operator counters provide the measurements; the
// catalog the optimizers plan with is refreshed from them, so the next
// (re-)optimization uses observed rather than assumed statistics.

// EmpiricalRate returns an operator's measured output rate in tuples per
// second over the elapsed virtual time, or 0 when nothing was observed.
func (rt *Runtime) EmpiricalRate(sig string, node netgraph.NodeID, elapsed float64) float64 {
	op := rt.Operator(sig, node)
	if op == nil || elapsed <= 0 {
		return 0
	}
	return float64(op.OutCount) / elapsed
}

// Calibrate refreshes the catalog from a deployed plan's runtime
// counters: base stream rates become their taps' measured emission rates,
// and the pairwise selectivity of every two-way join over base leaves is
// re-estimated as measuredOut / (measuredLeft × measuredRight). It
// returns the number of statistics updated. Joins above the first level
// compose from pairwise selectivities, so calibrating the leaves-level
// joins recalibrates the whole rate model.
func (rt *Runtime) Calibrate(cat *query.Catalog, q *query.Query, plan *query.PlanNode, elapsed float64) int {
	if elapsed <= 0 {
		return 0
	}
	updated := 0
	// Refresh base stream rates from their taps.
	for _, leaf := range plan.Leaves() {
		if leaf.In.Derived {
			continue
		}
		ids := q.StreamsOf(leaf.Mask)
		if len(ids) != 1 {
			continue
		}
		if r := rt.EmpiricalRate(leaf.In.Sig, leaf.Loc, elapsed); r > 0 {
			cat.SetRate(ids[0], r)
			updated++
		}
	}
	var walk func(n *query.PlanNode)
	walk = func(n *query.PlanNode) {
		if n == nil || n.IsLeaf() {
			return
		}
		walk(n.L)
		if !n.IsUnary() {
			walk(n.R)
		}
		if n.IsUnary() || !n.L.IsLeaf() || !n.R.IsLeaf() ||
			n.L.In.Derived || n.R.In.Derived {
			return
		}
		lIDs := q.StreamsOf(n.L.Mask)
		rIDs := q.StreamsOf(n.R.Mask)
		if len(lIDs) != 1 || len(rIDs) != 1 {
			return
		}
		lRate := rt.EmpiricalRate(n.L.In.Sig, n.L.Loc, elapsed)
		rRate := rt.EmpiricalRate(n.R.In.Sig, n.R.Loc, elapsed)
		join := rt.Operator(q.SigOf(n.Mask), n.Loc)
		if lRate <= 0 || rRate <= 0 || join == nil {
			return
		}
		measured := float64(join.OutCount) / elapsed
		sel := measured / (lRate * rRate)
		cat.SetSelectivity(lIDs[0], rIDs[0], sel)
		updated++
	}
	walk(plan)
	return updated
}
