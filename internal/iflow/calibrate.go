package iflow

import (
	"fmt"

	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// This file closes the paper's statistics loop: "the expected data-rates
// of the stream sources and the selectivities of their various attributes
// [are] measured online or using gathered statistics over the stream
// sources". The runtime's operator counters provide the measurements; the
// catalog the optimizers plan with is refreshed from them, so the next
// (re-)optimization uses observed rather than assumed statistics.
//
// Measurements are windowed. Dividing an operator's cumulative output
// count by its total lifetime biases the estimate toward stale history:
// after a rate shift the quotient converges to the new rate only
// asymptotically (a 10× shift at time T still reads ~2× at 9T). A
// StatsWindow snapshots every operator's counters at a point in virtual
// time, so rates are deltas over the window since — the estimate tracks
// the current rate regardless of how much history preceded the window.

// StatsWindow is a snapshot of per-operator output counters at a point in
// virtual time. Rates computed against it cover only the window between
// the snapshot and now, so drift shows up within one window instead of
// being averaged away by history. The zero start (a window taken before
// any virtual time passed) degenerates to lifetime rates.
type StatsWindow struct {
	start  float64
	counts map[opKey]int64
}

// NewStatsWindow snapshots all live operators' output counts at the
// current virtual time. Operators created after the snapshot read a zero
// baseline: their whole output lies inside the window.
func (rt *Runtime) NewStatsWindow() *StatsWindow {
	w := &StatsWindow{counts: make(map[opKey]int64, len(rt.ops))}
	w.Roll(rt)
	return w
}

// Roll advances the window to the current virtual time, re-snapshotting
// every live operator's counters. Counts of operators that disappeared
// since the last snapshot are dropped.
func (w *StatsWindow) Roll(rt *Runtime) {
	w.start = rt.Sim.Now()
	clear(w.counts)
	for k, op := range rt.ops {
		w.counts[k] = op.OutCount
	}
}

// Start returns the virtual time the window was last rolled to.
func (w *StatsWindow) Start() float64 { return w.start }

// WindowedRate returns an operator's measured output rate in tuples per
// second over the window — output since the snapshot divided by elapsed
// time since the snapshot — or 0 when the operator is missing or no time
// has passed. This replaces the cumulative-count estimate, which weighted
// all history equally and so lagged rate shifts indefinitely.
func (rt *Runtime) WindowedRate(w *StatsWindow, sig string, node netgraph.NodeID) float64 {
	op := rt.Operator(sig, node)
	if op == nil {
		return 0
	}
	elapsed := rt.Sim.Now() - w.start
	if elapsed <= 0 {
		return 0
	}
	return float64(op.OutCount-w.counts[op.key]) / elapsed
}

// Calibrate refreshes the catalog from a deployed plan's runtime counters
// measured over the given window: base stream rates become their taps'
// windowed emission rates, and the pairwise selectivity of every two-way
// join over base leaves is re-estimated as windowedOut / (windowedLeft ×
// windowedRight). It returns the number of statistics updated. Joins
// above the first level compose from pairwise selectivities, so
// calibrating the leaves-level joins recalibrates the whole rate model.
//
// Callers that recalibrate periodically should Roll the window after each
// pass so every calibration covers exactly one interval.
func (rt *Runtime) Calibrate(cat *query.Catalog, q *query.Query, plan *query.PlanNode, w *StatsWindow) int {
	if w == nil || rt.Sim.Now()-w.start <= 0 {
		return 0
	}
	elapsed := rt.Sim.Now() - w.start
	updated := 0
	// Refresh base stream rates from their taps.
	for _, leaf := range plan.Leaves() {
		if leaf.In.Derived {
			continue
		}
		ids := q.StreamsOf(leaf.Mask)
		if len(ids) != 1 {
			continue
		}
		if r := rt.WindowedRate(w, leaf.In.Sig, leaf.Loc); r > 0 {
			cat.SetRate(ids[0], r)
			updated++
		}
	}
	var walk func(n *query.PlanNode)
	walk = func(n *query.PlanNode) {
		if n == nil || n.IsLeaf() {
			return
		}
		walk(n.L)
		if !n.IsUnary() {
			walk(n.R)
		}
		if n.IsUnary() || !n.L.IsLeaf() || !n.R.IsLeaf() ||
			n.L.In.Derived || n.R.In.Derived {
			return
		}
		lIDs := q.StreamsOf(n.L.Mask)
		rIDs := q.StreamsOf(n.R.Mask)
		if len(lIDs) != 1 || len(rIDs) != 1 {
			return
		}
		lRate := rt.WindowedRate(w, n.L.In.Sig, n.L.Loc)
		rRate := rt.WindowedRate(w, n.R.In.Sig, n.R.Loc)
		join := rt.Operator(q.SigOf(n.Mask), n.Loc)
		if lRate <= 0 || rRate <= 0 || join == nil {
			return
		}
		measured := float64(join.OutCount-w.counts[join.key]) / elapsed
		sel := measured / (lRate * rRate)
		cat.SetSelectivity(lIDs[0], rIDs[0], sel)
		updated++
	}
	walk(plan)
	return updated
}

// SetSourceRate retunes a live base-stream tap: emissions scheduled from
// now on use the new rate (the gap already drawn keeps its old draw, as
// on a real feed whose next message is already on the wire). The catalog
// is deliberately not touched — the planning model learns the new rate
// through Calibrate, which is the closed loop the adaptive controller
// exercises.
func (rt *Runtime) SetSourceRate(sig string, node netgraph.NodeID, rate float64) error {
	if rate <= 0 {
		return fmt.Errorf("iflow: non-positive rate %g for source %s", rate, sig)
	}
	op := rt.Operator(sig, node)
	if op == nil || !op.isBase {
		return fmt.Errorf("iflow: no base tap %s@%d to retune", sig, node)
	}
	op.rate = rate
	op.expRate = rate
	return nil
}
