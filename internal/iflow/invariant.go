package iflow

import (
	"fmt"
	"math"
	"sort"

	"hnp/internal/netgraph"
)

// CheckInvariants audits the runtime's internal consistency and returns
// the first violation found. liveNode, when non-nil, reports whether a
// physical node is currently alive; every hosted operator must then sit on
// a live node (FailNode must have swept dead nodes clean).
//
// The checks, in order:
//
//   - every operator is indexed under its own key, holds a non-negative
//     reference count, and (with liveNode) runs on a live node;
//   - every subscription is well-formed: operator subscriptions point at
//     an existing operator at the subscription's destination node, sink
//     subscriptions name a deployed query and its recorded sink node;
//   - each deployed query holds exactly one sink subscription and only
//     references operators that exist; per-operator reference counts equal
//     the number of deployment holds on them;
//   - an operator with no references has at least one subscriber (it is
//     kept alive only to feed downstream work — anything else is garbage
//     Undeploy failed to collect);
//   - the subscription graph between operators is acyclic;
//   - per-operator emission homogeneity: every operator's produced bytes
//     equal its tuple width (stamped from the plan, or the global
//     TupleSize) times its produced tuple count — widths never change
//     over an operator's life;
//   - transport conservation: when every byte ever charged had one
//     uniform size (the width-free legacy mode, or a fleet pruned to a
//     single width) total bytes equal that size times the
//     transferred-plus-state-shipped tuple count exactly; under mixed
//     per-operator widths the total is instead bracketed by the smallest
//     and largest size ever charged. The in-flight ledger is
//     non-negative, and per-sink byte counts match delivered tuples at
//     the sink's root width (exact unless a migration changed the root
//     width mid-stream).
//
// It is a read-only audit intended for tests and the chaos harness; cost
// is linear in operators + subscriptions.
func (rt *Runtime) CheckInvariants(liveNode func(netgraph.NodeID) bool) error {
	keys := make([]opKey, 0, len(rt.ops))
	for k := range rt.ops {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].sig != keys[j].sig {
			return keys[i].sig < keys[j].sig
		}
		return keys[i].node < keys[j].node
	})

	sinkSubs := map[int]int{} // query ID -> sink subscriptions seen
	for _, k := range keys {
		op := rt.ops[k]
		if op.key != k {
			return fmt.Errorf("iflow: operator indexed at %s@%d carries key %s@%d", k.sig, k.node, op.key.sig, op.key.node)
		}
		if liveNode != nil && !liveNode(k.node) {
			return fmt.Errorf("iflow: operator %s@%d hosted on a dead node", k.sig, k.node)
		}
		if op.refs < 0 {
			return fmt.Errorf("iflow: operator %s@%d has negative refcount %d", k.sig, k.node, op.refs)
		}
		if op.refs == 0 && len(op.subs) == 0 {
			return fmt.Errorf("iflow: orphan operator %s@%d (no references, no subscribers)", k.sig, k.node)
		}
		for _, s := range op.subs {
			if s.sink >= 0 {
				stats, ok := rt.sinks[s.sink]
				if !ok {
					return fmt.Errorf("iflow: %s@%d delivers to unknown query %d", k.sig, k.node, s.sink)
				}
				if s.to != stats.Node {
					return fmt.Errorf("iflow: %s@%d delivers query %d to node %d, sink records node %d",
						k.sig, k.node, s.sink, s.to, stats.Node)
				}
				if _, deployed := rt.deploys[s.sink]; !deployed {
					return fmt.Errorf("iflow: %s@%d still delivers to undeployed query %d", k.sig, k.node, s.sink)
				}
				sinkSubs[s.sink]++
				continue
			}
			if rt.ops[s.dst] == nil {
				return fmt.Errorf("iflow: %s@%d subscribes missing operator %s@%d", k.sig, k.node, s.dst.sig, s.dst.node)
			}
			if s.to != s.dst.node {
				return fmt.Errorf("iflow: %s@%d routes %s@%d via node %d", k.sig, k.node, s.dst.sig, s.dst.node, s.to)
			}
		}
	}

	// Deployment holds vs. operator reference counts.
	qids := make([]int, 0, len(rt.deploys))
	for qid := range rt.deploys {
		qids = append(qids, qid)
	}
	sort.Ints(qids)
	holds := map[opKey]int{}
	for _, qid := range qids {
		if sinkSubs[qid] != 1 {
			return fmt.Errorf("iflow: deployed query %d has %d sink subscriptions, want 1", qid, sinkSubs[qid])
		}
		if rt.sinks[qid] == nil {
			return fmt.Errorf("iflow: deployed query %d has no sink stats", qid)
		}
		if rt.deploys[qid].plan == nil {
			return fmt.Errorf("iflow: deployed query %d records no plan", qid)
		}
		for _, k := range rt.deploys[qid].held {
			if rt.ops[k] == nil {
				return fmt.Errorf("iflow: query %d holds missing operator %s@%d", qid, k.sig, k.node)
			}
			holds[k]++
		}
	}
	for _, k := range keys {
		if op := rt.ops[k]; op.refs != holds[k] {
			return fmt.Errorf("iflow: operator %s@%d refcount %d, %d deployment holds", k.sig, k.node, op.refs, holds[k])
		}
	}

	if err := rt.checkAcyclic(keys); err != nil {
		return err
	}

	// Emission homogeneity: an operator's width is fixed at creation, so
	// its byte output is exactly width × count regardless of what mix of
	// widths the rest of the fleet runs at.
	for _, k := range keys {
		op := rt.ops[k]
		if want := rt.opWidth(op) * float64(op.OutCount); !approxEq(op.OutBytes, want) {
			return fmt.Errorf("iflow: operator %s@%d emitted %d tuples of width %g but %g bytes (want %g)",
				k.sig, k.node, op.OutCount, rt.opWidth(op), op.OutBytes, want)
		}
	}

	// Transport conservation. Every byte charged to TotalBytes came from a
	// transferred or state-shipped tuple whose size the runtime bracketed
	// in [minTupleSize, maxTupleSize]; with a uniform bracket the formulas
	// are exact.
	if rt.InFlight() < 0 {
		return fmt.Errorf("iflow: negative in-flight ledger %d (sent %d)", rt.InFlight(), rt.TuplesSent)
	}
	if rt.TuplesTransferred > rt.TuplesSent {
		return fmt.Errorf("iflow: %d tuples crossed links but only %d were sent", rt.TuplesTransferred, rt.TuplesSent)
	}
	moved := rt.TuplesTransferred + rt.StateTuplesShipped
	if rt.minTupleSize == rt.maxTupleSize {
		size := rt.maxTupleSize // 0 exactly when nothing moved yet
		if want := size * float64(moved); !approxEq(rt.TotalBytes, want) {
			return fmt.Errorf("iflow: %d transferred + %d shipped tuples of size %g account %g bytes, runtime recorded %g",
				rt.TuplesTransferred, rt.StateTuplesShipped, size, want, rt.TotalBytes)
		}
		if want := size * float64(rt.StateTuplesShipped); !approxEq(rt.StateBytesShipped, want) {
			return fmt.Errorf("iflow: %d shipped tuples of size %g account %g bytes, runtime recorded %g",
				rt.StateTuplesShipped, size, want, rt.StateBytesShipped)
		}
	} else {
		lo, hi := rt.minTupleSize*float64(moved), rt.maxTupleSize*float64(moved)
		if rt.TotalBytes < lo-1e-6 || rt.TotalBytes > hi+1e-6 {
			return fmt.Errorf("iflow: %d moved tuples of widths [%g,%g] bound bytes to [%g,%g], runtime recorded %g",
				moved, rt.minTupleSize, rt.maxTupleSize, lo, hi, rt.TotalBytes)
		}
		lo, hi = rt.minTupleSize*float64(rt.StateTuplesShipped), rt.maxTupleSize*float64(rt.StateTuplesShipped)
		if rt.StateBytesShipped < lo-1e-6 || rt.StateBytesShipped > hi+1e-6 {
			return fmt.Errorf("iflow: %d shipped tuples of widths [%g,%g] bound bytes to [%g,%g], runtime recorded %g",
				rt.StateTuplesShipped, rt.minTupleSize, rt.maxTupleSize, lo, hi, rt.StateBytesShipped)
		}
	}
	sids := make([]int, 0, len(rt.sinks))
	for qid := range rt.sinks {
		sids = append(sids, qid)
	}
	sort.Ints(sids)
	for _, qid := range sids {
		s := rt.sinks[qid]
		if s.Tuples < 0 || s.Bytes < 0 || s.LatencySum < 0 {
			return fmt.Errorf("iflow: sink %d has negative statistics %+v", qid, *s)
		}
		if s.mixed {
			continue // root width changed mid-stream; counts stay audited above
		}
		w := s.width
		if w == 0 {
			w = rt.cfg.TupleSize
		}
		if want := w * float64(s.Tuples); !approxEq(s.Bytes, want) {
			return fmt.Errorf("iflow: sink %d delivered %d tuples of width %g but %g bytes (want %g)", qid, s.Tuples, w, s.Bytes, want)
		}
	}
	return nil
}

// DeployedQueries returns the IDs of currently deployed queries, sorted.
func (rt *Runtime) DeployedQueries() []int {
	out := make([]int, 0, len(rt.deploys))
	for qid := range rt.deploys {
		out = append(out, qid)
	}
	sort.Ints(out)
	return out
}

// checkAcyclic verifies the operator-to-operator subscription graph has no
// cycles (a cycle would feed an operator its own output and melt the
// simulation into an infinite tuple loop).
func (rt *Runtime) checkAcyclic(keys []opKey) error {
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := map[opKey]int{}
	var visit func(k opKey) error
	visit = func(k opKey) error {
		switch state[k] {
		case inStack:
			return fmt.Errorf("iflow: subscription cycle through %s@%d", k.sig, k.node)
		case done:
			return nil
		}
		state[k] = inStack
		for _, s := range rt.ops[k].subs {
			if s.sink >= 0 {
				continue
			}
			if err := visit(s.dst); err != nil {
				return err
			}
		}
		state[k] = done
		return nil
	}
	for _, k := range keys {
		if err := visit(k); err != nil {
			return err
		}
	}
	return nil
}

// approxEq compares accumulated float totals with a relative tolerance.
func approxEq(a, b float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*math.Max(scale, 1)
}
