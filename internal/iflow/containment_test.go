package iflow

import (
	"math"
	"testing"

	"hnp/internal/query"
)

// A stricter query reusing a weaker operator through a residual filter
// must deliver roughly the filtered fraction of the weaker stream.
func TestResidualFilterExecution(t *testing.T) {
	w := makeTestWorld(t, 12)
	rt := New(w.g, DefaultConfig(), 21)

	// Deploy the base (weak, unconstrained) query.
	if err := rt.Deploy(w.q, w.plan, w.cat, 600); err != nil {
		t.Fatal(err)
	}

	// A stricter query over the same streams with 25%-selective predicates
	// on one stream, reusing the weak root through a filter.
	preds := query.MustPredSet(
		query.Pred{Stream: w.q.Sources[0], Attr: "dep", Range: query.Range{Lo: 0, Hi: 0.25}},
	)
	strict, err := query.NewQueryPred(1, w.q.Sources, 15, preds)
	if err != nil {
		t.Fatal(err)
	}
	srt := query.BuildRates(w.cat, strict)
	leaf := query.Leaf(query.Input{
		Mask:    strict.All(),
		Rate:    srt.Rate(strict.All()),
		Loc:     w.plan.Loc,
		Derived: true,
		Sig:     strict.SigOf(strict.All()),
		BaseSig: w.q.SigOf(w.q.All()),
	})
	if err := rt.Deploy(strict, leaf, w.cat, 600); err != nil {
		t.Fatal(err)
	}

	// The filter operator exists at the producer node under the strict sig.
	f := rt.Operator(strict.SigOf(strict.All()), w.plan.Loc)
	if f == nil || !f.isFilter {
		t.Fatal("residual filter not instantiated")
	}
	if math.Abs(f.passProb-0.25) > 1e-9 {
		t.Errorf("passProb = %g, want 0.25", f.passProb)
	}

	rt.RunFor(600)
	weakTuples := rt.Sink(w.q.ID).Tuples
	strictTuples := rt.Sink(strict.ID).Tuples
	if weakTuples == 0 {
		t.Fatal("weak query delivered nothing")
	}
	frac := float64(strictTuples) / float64(weakTuples)
	if math.Abs(frac-0.25) > 0.12 {
		t.Errorf("filtered fraction %.3f (strict %d / weak %d), want ~0.25",
			frac, strictTuples, weakTuples)
	}
}

func TestResidualFilterMissingBaseRejected(t *testing.T) {
	w := makeTestWorld(t, 13)
	rt := New(w.g, DefaultConfig(), 22)
	leaf := query.Leaf(query.Input{
		Mask: w.q.All(), Rate: 1, Loc: 4, Derived: true,
		Sig: "x#fake", BaseSig: "y|z",
	})
	if err := rt.Deploy(w.q, leaf, w.cat, 10); err == nil {
		t.Error("filter on undeployed base accepted")
	}
}
