// Package iflow is a simulated distributed stream-processing runtime in
// the mold of the IFLOW system the paper prototypes on: physical nodes
// exchange protocol messages and stream tuples over links with real
// propagation delays and per-byte costs, deployed query plans execute
// windowed symmetric hash joins, and a middleware layer re-triggers
// optimization when network conditions change. It substitutes for the
// paper's 32-node Emulab testbed with deterministic, reproducible timing.
package iflow

import (
	"fmt"
	"math/rand"

	"hnp/internal/des"
	"hnp/internal/netgraph"
	"hnp/internal/obs"
	"hnp/internal/query"
)

// Tuple is one data item on a stream.
type Tuple struct {
	// Key is the join attribute (e.g. a flight number); all streams join
	// on this shared attribute, as in the paper's OIS scenario.
	Key int64
	// Size is the tuple's size in cost units (bytes).
	Size float64
	// Born is the creation time of the oldest base tuple it contains,
	// used to measure end-to-end latency.
	Born float64
}

// Config tunes the runtime's physical constants.
type Config struct {
	// ComputePerPlan is coordinator CPU seconds per candidate solution
	// examined during planning; deployment time scales with search space.
	ComputePerPlan float64
	// HopOverhead is per-message processing overhead in seconds added to
	// propagation delay for protocol messages.
	HopOverhead float64
	// Window is the join window in seconds for symmetric hash joins.
	Window float64
	// KeyDomain is the number of distinct join-key values; the empirical
	// pairwise join selectivity is Window/KeyDomain per second of window.
	KeyDomain int64
	// TupleSize is the size of base tuples in cost units.
	TupleSize float64
}

// DefaultConfig mirrors the scale of the paper's testbed: millisecond
// link latencies dominate, planning costs microseconds per candidate.
func DefaultConfig() Config {
	return Config{
		ComputePerPlan: 2e-6,
		HopOverhead:    0.0005,
		Window:         10,
		KeyDomain:      1000,
		TupleSize:      100,
	}
}

type opKey struct {
	sig  string
	node netgraph.NodeID
}

type side int

const (
	leftSide side = iota
	rightSide
)

// subscription routes an operator's output to a consumer.
type subscription struct {
	dst  opKey
	side side
	sink int // query ID when >= 0: deliver to that query's sink counter
	to   netgraph.NodeID
}

// Operator is a deployed stream operator: a base-stream tap (no
// children), a windowed symmetric hash join, or a residual filter
// narrowing a contained stream to a stricter query's predicates.
type Operator struct {
	key    opKey
	isBase bool
	rate   float64 // base emission rate, tuples/sec (base taps only)

	// isFilter marks residual filters; passProb is the fraction of
	// upstream tuples satisfying the extra predicates.
	isFilter bool
	passProb float64

	// isAgg marks windowed aggregations; one summary tuple is emitted per
	// tumbling window that saw input.
	isAgg     bool
	aggWindow float64
	aggCount  int64
	aggBorn   float64
	aggNext   float64

	// expRate is the operator's expected output rate in the planner's
	// cost model, used to derive filter pass probabilities.
	expRate float64

	// width is the byte size of tuples this operator emits, stamped from
	// the plan node's width at creation. 0 means "no width information":
	// the operator emits at the runtime's global TupleSize, the
	// pre-schema behavior. Widths never change over an operator's life —
	// a differently-projected stream has a different signature and is a
	// different operator.
	width float64

	window      float64
	left, right []Tuple
	subs        []subscription
	refs        int // deployments using this operator

	// OutCount / OutBytes measure produced output.
	OutCount int64
	OutBytes float64
}

// StateBytes returns the size of the operator's migratable state right
// now: buffered join-window tuples plus a pending aggregation accumulator.
// This is exactly what Migrate would ship if the operator moved, so
// adaptive controllers price a candidate move's churn from it before
// committing.
func (op *Operator) StateBytes(tupleSize float64) float64 {
	var b float64
	for _, t := range op.left {
		b += t.Size
	}
	for _, t := range op.right {
		b += t.Size
	}
	if op.isAgg && op.aggCount > 0 {
		if op.width > 0 {
			b += op.width
		} else {
			b += tupleSize
		}
	}
	return b
}

// Width returns the byte size of tuples this operator emits (0 when the
// operator runs width-free on the global TupleSize).
func (op *Operator) Width() float64 { return op.width }

// Refs returns how many deployment plan nodes currently hold this
// operator. A migration that releases fewer references than this leaves
// the operator running — adaptive controllers use the count to predict
// which retired-from-the-plan operators will actually be collected (and
// stop consuming transport) versus survive shared by other deployments.
func (op *Operator) Refs() int { return op.refs }

// ExpRate returns the output rate the planner expected of this operator
// when it was deployed. Residual filter pass probabilities are derived
// from it (narrowed rate / base expected rate), so predicting a
// containment reuse's physical rate requires it alongside the measured
// base rate.
func (op *Operator) ExpRate() float64 { return op.expRate }

// ResidualPassProb exposes the pass probability a containment residual
// filter over a base stream with the given expected rate would use for a
// reuse narrowed to the given rate — the fraction of upstream tuples the
// filter forwards.
func ResidualPassProb(narrowed, base float64) float64 {
	return residualPassProb(narrowed, base)
}

// SubscribedBeyond reports whether anything other than the given consumer
// operator (sig at node) or the given query's sink subscribes to this
// operator. References alone understate sharing: a containment reuse
// subscribes a residual filter to its base operator without holding a
// reference on it, and such a subscriber keeps the operator — and its
// whole upstream chain — alive through a migration that releases every
// reference.
func (op *Operator) SubscribedBeyond(consumerSig string, consumerLoc netgraph.NodeID, queryID int) bool {
	for _, s := range op.subs {
		if s.sink >= 0 {
			if s.sink != queryID {
				return true
			}
			continue
		}
		if s.dst.sig != consumerSig || s.dst.node != consumerLoc {
			return true
		}
	}
	return false
}

// SinkStats accumulates per-query delivery statistics.
type SinkStats struct {
	Node       netgraph.NodeID
	Tuples     int64
	Bytes      float64
	LatencySum float64

	// width is the emitting root operator's tuple width (0 = global
	// TupleSize); mixed is set if a migration ever changed it after
	// deliveries, which relaxes the exact per-sink byte invariant.
	width float64
	mixed bool
}

// MeanLatency returns the average end-to-end delivery latency in seconds,
// or 0 before the first tuple arrives (never divides by zero).
func (s *SinkStats) MeanLatency() float64 {
	if s == nil || s.Tuples == 0 {
		return 0
	}
	return s.LatencySum / float64(s.Tuples)
}

// Rate returns the delivery rate in tuples per second over the elapsed
// simulation time, or 0 when no time has passed.
func (s *SinkStats) Rate(elapsed float64) float64 {
	if s == nil || elapsed <= 0 {
		return 0
	}
	return float64(s.Tuples) / elapsed
}

// Runtime is the simulated IFLOW deployment substrate.
type Runtime struct {
	Sim   *des.Sim
	G     *netgraph.Graph
	Cost  *netgraph.Paths // cost-metric paths: stream routing + accounting
	Delay *netgraph.Paths // delay-metric paths: message latency

	cfg Config
	rng *rand.Rand

	ops     map[opKey]*Operator
	sinks   map[int]*SinkStats
	deploys map[int]*deployment

	// TotalCost is the accumulated bytes×link-cost of all transfers; the
	// deployed cost per unit time is TotalCost / elapsed time.
	TotalCost  float64
	TotalBytes float64

	// Count-based transport statistics. The simulation is single-threaded
	// (see des.Sim), so plain fields suffice; rates derived from them must
	// come from Stats/CostRate/EmitRates, which guard the zero-time window.
	//
	// TuplesTransferred counts tuples that crossed at least one link
	// (node-local handoffs are free and not counted).
	TuplesTransferred int64
	// TuplesDropped counts tuples discarded in flight because their
	// consumer was undeployed before arrival.
	TuplesDropped int64
	// WindowExpired counts tuples evicted from join windows.
	WindowExpired int64
	// TuplesSent counts every tuple handed to the transport for delivery,
	// node-local handoffs included. Each sent tuple settles exactly once
	// when its delivery callback runs (sink arrival, operator receive, or
	// in-flight drop), so TuplesSent - tuplesSettled is the number of
	// tuples currently in flight — the conservation ledger the chaos
	// harness checks.
	TuplesSent    int64
	tuplesSettled int64
	// StateTuplesShipped / StateBytesShipped count window and accumulator
	// tuples Migrate copied from a moved operator's old host to its new
	// one. Shipped state crosses links synchronously (it is not re-sent
	// through the transport), so it is accounted separately from
	// TuplesTransferred; the conservation invariant ties TotalBytes to the
	// sum of both.
	StateTuplesShipped int64
	StateBytesShipped  float64

	// minTupleSize/maxTupleSize bracket the sizes of every tuple ever
	// charged to TotalBytes (link transfers and shipped state). With
	// uniform sizes the byte-conservation invariant is exact; with
	// per-operator widths it degrades to these bounds.
	minTupleSize float64
	maxTupleSize float64

	// costSpare/delaySpare are the retired halves of the two snapshot
	// ping-pong pairs refreshPaths recycles: each refresh writes into the
	// spare and demotes the previous snapshot to spare, so steady-state
	// incremental refreshes allocate nothing. The runtime exclusively owns
	// both chains (planners and the hierarchy snapshot their own paths).
	costSpare  *netgraph.Paths
	delaySpare *netgraph.Paths

	// Telemetry handles (nil until BindObs; all nil-safe no-ops then).
	obsTransferred *obs.Counter
	obsDropped     *obs.Counter
	obsExpired     *obs.Counter
	obsCost        *obs.Gauge

	// Path-maintenance telemetry (see refreshPaths).
	obsRefreshFull *obs.Counter
	obsRefreshIncr *obs.Counter
	obsRefreshRows *obs.Histogram

	// Migration telemetry (see Migrate).
	obsMigrations    *obs.Counter
	obsMigKept       *obs.Counter
	obsMigCreated    *obs.Counter
	obsMigRetired    *obs.Counter
	obsMigMoved      *obs.Counter
	obsMigBytesSaved *obs.Gauge
	obsStateShipped  *obs.Counter

	// Pre-bound span sources for the deployment primitives (nil-safe).
	spDeploy  *obs.SpanSource
	spMigrate *obs.SpanSource

	// tr is the flight recorder shared with the binding registry;
	// traceParent is the causal parent for the next deploy/migrate trace
	// emission (see SetTraceParent).
	tr          *obs.Tracer
	traceParent uint64
}

// deployment records one query's hold on the runtime: the query, the
// placed plan it currently runs (the old side of the next migration
// diff), and the operators it references.
type deployment struct {
	q    *query.Query
	plan *query.PlanNode
	held []opKey
	// ir caches the running plan's canonical IR so successive migrations
	// flatten only the incoming plan, not the deployed one again. Built
	// lazily on the first migration (Deploy never needs it).
	ir []query.IROp
}

// BindObs connects the runtime to a telemetry registry: transport counts
// ("iflow.tuples_transferred", "iflow.tuples_dropped",
// "iflow.window_expired" counters), the accumulated bytes×cost
// ("iflow.bytes_cost" gauge), and migration activity ("iflow.migrations"
// plus the per-action "iflow.migrate_ops_*" counters and the cumulative
// "iflow.migrate_bytes_saved" gauge) are recorded there.
func (rt *Runtime) BindObs(reg *obs.Registry) {
	rt.obsTransferred = reg.Counter("iflow.tuples_transferred")
	rt.obsDropped = reg.Counter("iflow.tuples_dropped")
	rt.obsExpired = reg.Counter("iflow.window_expired")
	rt.obsCost = reg.Gauge("iflow.bytes_cost")
	rt.obsMigrations = reg.Counter("iflow.migrations")
	rt.obsMigKept = reg.Counter("iflow.migrate_ops_kept")
	rt.obsMigCreated = reg.Counter("iflow.migrate_ops_created")
	rt.obsMigRetired = reg.Counter("iflow.migrate_ops_retired")
	rt.obsMigMoved = reg.Counter("iflow.migrate_ops_moved")
	rt.obsMigBytesSaved = reg.Gauge("iflow.migrate_bytes_saved")
	rt.obsStateShipped = reg.Counter("iflow.state_shipped")
	rt.obsRefreshFull = reg.Counter("paths.refresh_full")
	rt.obsRefreshIncr = reg.Counter("paths.refresh_incremental")
	rt.obsRefreshRows = reg.Histogram("paths.rows_recomputed",
		[]float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
	rt.spDeploy = reg.SpanSource("iflow.deploy")
	rt.spMigrate = reg.SpanSource("iflow.migrate")
	rt.tr = reg.Tracer()
}

// SetTraceParent sets the causal parent of the next trace event the
// runtime emits (the next Deploy/Migrate/Undeploy), consumed once. The
// adaptation controller uses it to parent MigrationApplied events on the
// gate decision that approved the migration. The runtime is
// single-threaded on its simulation clock, so a plain field suffices.
func (rt *Runtime) SetTraceParent(id uint64) { rt.traceParent = id }

func (rt *Runtime) takeTraceParent() uint64 {
	p := rt.traceParent
	rt.traceParent = 0
	return p
}

// New builds a runtime over a network. Streams route along cost-shortest
// paths; protocol messages along delay-shortest paths.
func New(g *netgraph.Graph, cfg Config, seed int64) *Runtime {
	return &Runtime{
		Sim:     des.New(),
		G:       g,
		Cost:    g.ShortestPaths(netgraph.MetricCost),
		Delay:   g.ShortestPaths(netgraph.MetricDelay),
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(seed)),
		ops:     map[opKey]*Operator{},
		sinks:   map[int]*SinkStats{},
		deploys: map[int]*deployment{},
	}
}

// Config returns the runtime's configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// refreshPaths brings any path snapshot that has gone stale because the
// underlying graph was mutated (directly or via UpdateLinkCost) back up
// to date. Entry points call it so routing and accounting never silently
// use distances from a network that no longer exists.
//
// Refreshes are incremental where the graph's delta log permits — only
// the source rows a mutation actually moved are re-run — and recycle the
// previous snapshot's slabs, so steady-state drift maintenance is
// allocation-free. Results are bit-identical to a full recompute.
func (rt *Runtime) refreshPaths() {
	rt.Cost, rt.costSpare = rt.refreshOne(rt.Cost, rt.costSpare)
	rt.Delay, rt.delaySpare = rt.refreshOne(rt.Delay, rt.delaySpare)
}

// refreshOne advances one snapshot chain, returning the fresh snapshot
// and the demoted spare, and records refresh scope telemetry.
func (rt *Runtime) refreshOne(cur, spare *netgraph.Paths) (*netgraph.Paths, *netgraph.Paths) {
	out, stats := cur.RefreshFrom(rt.G, spare)
	if out == cur {
		return cur, spare
	}
	switch stats.Mode {
	case netgraph.RefreshIncremental:
		rt.obsRefreshIncr.Inc()
	case netgraph.RefreshFull:
		rt.obsRefreshFull.Inc()
	}
	rt.obsRefreshRows.Observe(float64(stats.RowsRecomputed))
	if rt.tr.On() {
		rt.tr.Emit(obs.Event{
			Kind:  obs.KindPathRefresh,
			VTime: rt.Sim.Now(),
			Query: obs.NoID, Node: obs.NoID,
			Value:  float64(stats.RowsRecomputed),
			Aux:    float64(stats.EdgesChanged),
			Detail: stats.Mode.String() + " " + out.Metric().String(),
		})
	}
	return out, cur
}

// transfer accounts and schedules a tuple moving between two nodes, then
// invokes deliver at the destination's arrival time.
func (rt *Runtime) transfer(from, to netgraph.NodeID, t Tuple, deliver func(Tuple)) {
	if from != to {
		rt.TotalCost += t.Size * rt.Cost.Dist(from, to)
		rt.TotalBytes += t.Size
		rt.noteSize(t.Size)
		rt.TuplesTransferred++
		rt.obsTransferred.Inc()
		rt.obsCost.Set(rt.TotalCost)
	}
	delay := rt.Delay.Dist(from, to)
	rt.TuplesSent++
	rt.Sim.Schedule(delay, func() {
		rt.tuplesSettled++
		deliver(t)
	})
}

// noteSize folds one byte-charged tuple size into the min/max bracket the
// conservation invariant checks against.
func (rt *Runtime) noteSize(s float64) {
	if rt.maxTupleSize == 0 || s < rt.minTupleSize {
		rt.minTupleSize = s
	}
	if s > rt.maxTupleSize {
		rt.maxTupleSize = s
	}
}

// opWidth returns the byte size of tuples op emits: its stamped width, or
// the global TupleSize for width-free operators.
func (rt *Runtime) opWidth(op *Operator) float64 {
	if op.width > 0 {
		return op.width
	}
	return rt.cfg.TupleSize
}

// InFlight returns the number of tuples handed to the transport whose
// delivery callback has not yet run. It is never negative and reaches zero
// once the simulation quiesces (sources ended, event queue drained).
func (rt *Runtime) InFlight() int64 { return rt.TuplesSent - rt.tuplesSettled }

// emit fans an operator's output tuple out to all subscribers.
func (rt *Runtime) emit(op *Operator, t Tuple) {
	op.OutCount++
	op.OutBytes += t.Size
	for _, sub := range op.subs {
		sub := sub
		if sub.sink >= 0 {
			stats := rt.sinks[sub.sink]
			rt.transfer(op.key.node, sub.to, t, func(d Tuple) {
				stats.Tuples++
				stats.Bytes += d.Size
				stats.LatencySum += rt.Sim.Now() - d.Born
			})
			continue
		}
		dst := rt.ops[sub.dst]
		if dst == nil {
			rt.TuplesDropped++
			rt.obsDropped.Inc()
			continue // consumer undeployed mid-flight
		}
		s := sub.side
		rt.transfer(op.key.node, sub.to, t, func(d Tuple) { rt.receive(dst, s, d) })
	}
}

// receive runs one operator step: residual filters pass tuples
// probabilistically; joins expire their window, probe the opposite side,
// emit matches, and insert.
func (rt *Runtime) receive(op *Operator, s side, t Tuple) {
	if rt.ops[op.key] != op {
		rt.TuplesDropped++
		rt.obsDropped.Inc()
		return // operator was undeployed while the tuple was in flight
	}
	if op.isFilter {
		if rt.rng.Float64() < op.passProb {
			// Residual filters re-emit at their own width (a no-op for
			// width-free operators, whose upstream already ships TupleSize).
			t.Size = rt.opWidth(op)
			rt.emit(op, t)
		}
		return
	}
	if op.isAgg {
		now := rt.Sim.Now()
		if now >= op.aggNext && op.aggCount > 0 {
			rt.emit(op, Tuple{Key: op.aggCount, Size: rt.opWidth(op), Born: op.aggBorn})
			op.aggCount, op.aggBorn = 0, 0
		}
		if op.aggCount == 0 {
			op.aggBorn = t.Born
			op.aggNext = now + op.aggWindow
		}
		op.aggCount++
		return
	}
	now := rt.Sim.Now()
	before := len(op.left) + len(op.right)
	op.left = expire(op.left, now-op.window)
	op.right = expire(op.right, now-op.window)
	if n := before - len(op.left) - len(op.right); n > 0 {
		rt.WindowExpired += int64(n)
		rt.obsExpired.Add(int64(n))
	}
	mine, other := &op.left, &op.right
	if s == rightSide {
		mine, other = &op.right, &op.left
	}
	for _, o := range *other {
		if o.Key == t.Key {
			// Join outputs are projected to the operator's output width
			// (the global tuple width when no schema is declared), keeping
			// data rates in the same units as the analytic cost model.
			out := Tuple{Key: t.Key, Size: rt.opWidth(op), Born: min(t.Born, o.Born)}
			rt.emit(op, out)
		}
	}
	*mine = append(*mine, t)
}

func expire(w []Tuple, horizon float64) []Tuple {
	i := 0
	for i < len(w) && w[i].Born < horizon {
		i++
	}
	if i == 0 {
		return w
	}
	return append(w[:0], w[i:]...)
}

// StartSource registers a base stream tap at its node and schedules
// Poisson tuple emissions at the given rate (tuples per second) for the
// lifetime of the simulation window driven by RunFor.
func (rt *Runtime) StartSource(sig string, node netgraph.NodeID, rate float64, until float64) (*Operator, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("iflow: non-positive rate %g for source %s", rate, sig)
	}
	key := opKey{sig: sig, node: node}
	if _, ok := rt.ops[key]; ok {
		return nil, fmt.Errorf("iflow: source %s@%d already registered", sig, node)
	}
	op := &Operator{key: key, isBase: true, rate: rate, expRate: rate}
	rt.ops[key] = op
	var tick func()
	tick = func() {
		if rt.Sim.Now() >= until || rt.ops[key] != op {
			return
		}
		t := Tuple{
			Key:  rt.rng.Int63n(rt.cfg.KeyDomain),
			Size: rt.opWidth(op),
			Born: rt.Sim.Now(),
		}
		rt.emit(op, t)
		// Read the rate from the operator (not the captured argument) so
		// SetSourceRate retunes the very next inter-arrival gap.
		rt.Sim.Schedule(rt.rng.ExpFloat64()/op.rate, tick)
	}
	rt.Sim.Schedule(rt.rng.ExpFloat64()/op.rate, tick)
	return op, nil
}

// Operator returns the deployed operator with the given signature at the
// given node, or nil.
func (rt *Runtime) Operator(sig string, node netgraph.NodeID) *Operator {
	return rt.ops[opKey{sig: sig, node: node}]
}

// NumOperators returns the number of live operators (including base taps).
func (rt *Runtime) NumOperators() int { return len(rt.ops) }

// Sink returns the delivery statistics for a query (nil before Deploy).
func (rt *Runtime) Sink(queryID int) *SinkStats { return rt.sinks[queryID] }

// DeployedPlan returns the plan a deployed query currently runs, or nil
// when the query is not deployed. It is the old side of the diff the next
// Migrate computes.
func (rt *Runtime) DeployedPlan(queryID int) *query.PlanNode {
	if dep := rt.deploys[queryID]; dep != nil {
		return dep.plan
	}
	return nil
}

// RunFor advances the simulation by d seconds of virtual time.
func (rt *Runtime) RunFor(d float64) { rt.Sim.RunUntil(rt.Sim.Now() + d) }

// CostRate returns accumulated transfer cost divided by elapsed time —
// the measured analogue of the optimizers' cost-per-unit-time objective.
// It is 0 before any virtual time has passed; consult Stats for the raw
// counts when the rate alone cannot distinguish "no traffic" from "no
// elapsed window".
func (rt *Runtime) CostRate() float64 {
	if rt.Sim.Now() <= 0 {
		return 0
	}
	return rt.TotalCost / rt.Sim.Now()
}

// Stats is a point-in-time copy of the runtime's count-based transport
// statistics. Counts are exact; every derived rate guards the zero-time
// window, so a freshly built runtime reports zeros, not NaNs.
type Stats struct {
	TuplesTransferred  int64
	TuplesDropped      int64
	WindowExpired      int64
	TuplesSent         int64
	TuplesInFlight     int64
	StateTuplesShipped int64
	TotalCost          float64
	TotalBytes         float64
	Elapsed            float64
	Operators          int
}

// CostRate returns TotalCost per second of elapsed virtual time (0 when
// no time has passed).
func (s Stats) CostRate() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return s.TotalCost / s.Elapsed
}

// Stats snapshots the runtime's transport counters.
func (rt *Runtime) Stats() Stats {
	return Stats{
		TuplesTransferred:  rt.TuplesTransferred,
		TuplesDropped:      rt.TuplesDropped,
		WindowExpired:      rt.WindowExpired,
		TuplesSent:         rt.TuplesSent,
		TuplesInFlight:     rt.InFlight(),
		StateTuplesShipped: rt.StateTuplesShipped,
		TotalCost:          rt.TotalCost,
		TotalBytes:         rt.TotalBytes,
		Elapsed:            rt.Sim.Now(),
		Operators:          len(rt.ops),
	}
}

// EmitRates returns each live operator's output rate in tuples per second
// of elapsed virtual time, keyed "sig@node". Before any time has passed it
// returns nil rather than dividing by a zero window.
func (rt *Runtime) EmitRates() map[string]float64 {
	elapsed := rt.Sim.Now()
	if elapsed <= 0 {
		return nil
	}
	out := make(map[string]float64, len(rt.ops))
	for key, op := range rt.ops {
		out[fmt.Sprintf("%s@%d", key.sig, key.node)] = float64(op.OutCount) / elapsed
	}
	return out
}
