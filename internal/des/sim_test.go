package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []float64
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Errorf("Now = %g", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(1, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var times []float64
	s.Schedule(1, func() {
		times = append(times, s.Now())
		s.Schedule(2, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v", times)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New()
	ran := false
	s.Schedule(5, func() {
		s.Schedule(-10, func() { ran = true })
	})
	s.Run()
	if !ran || s.Now() != 5 {
		t.Errorf("ran=%v now=%g", ran, s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(float64(i), func() { count++ })
	}
	s.RunUntil(5)
	if count != 5 {
		t.Errorf("count = %d after RunUntil(5)", count)
	}
	if s.Now() != 5 {
		t.Errorf("Now = %g", s.Now())
	}
	if s.Pending() != 5 {
		t.Errorf("Pending = %d", s.Pending())
	}
	s.Run()
	if count != 10 {
		t.Errorf("count = %d after Run", count)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(42)
	if s.Now() != 42 {
		t.Errorf("Now = %g", s.Now())
	}
}

// Property: however events are scheduled, execution times are observed in
// non-decreasing order.
func TestMonotoneClock(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		var seen []float64
		n := 1 + rng.Intn(50)
		var delays []float64
		for i := 0; i < n; i++ {
			d := rng.Float64() * 100
			delays = append(delays, d)
			s.Schedule(d, func() { seen = append(seen, s.Now()) })
		}
		s.Run()
		if !sort.Float64sAreSorted(seen) {
			return false
		}
		sort.Float64s(delays)
		for i := range seen {
			if seen[i] != delays[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
