// Package des is a minimal discrete-event simulator: a time-ordered event
// queue with a virtual clock. The IFLOW runtime executes deployment
// protocols and tuple flows on top of it, substituting for the paper's
// Emulab testbed with deterministic, reproducible timing.
package des

import "container/heap"

type event struct {
	t   float64
	seq uint64
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq // FIFO among simultaneous events
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	e := old[len(old)-1]
	*q = old[:len(old)-1]
	return e
}

// Sim is a discrete-event simulation. The zero value is ready to use.
type Sim struct {
	q   eventQueue
	now float64
	seq uint64
}

// New returns a fresh simulation at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.q) }

// Schedule queues fn to run after delay seconds of virtual time. Negative
// delays are clamped to zero (run "now", after already-queued events at
// the current instant).
func (s *Sim) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.At(s.now+delay, fn)
}

// At queues fn at absolute virtual time t; times in the past run at the
// current instant.
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.q, event{t: t, seq: s.seq, fn: fn})
}

// Step runs the next event; it reports false when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.q) == 0 {
		return false
	}
	e := heap.Pop(&s.q).(event)
	s.now = e.t
	e.fn()
	return true
}

// Run executes events until the queue drains.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
// Events scheduled later stay queued.
func (s *Sim) RunUntil(t float64) {
	for len(s.q) > 0 && s.q[0].t <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}
