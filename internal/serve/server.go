// Package serve is the query-serving front end: a long-running HTTP
// server (cmd/smqd) that accepts CQL statements over the wire, plans and
// deploys them against sharded hnp.System instances, and exposes the
// lifecycle (deploy/undeploy/explain) plus the debug surfaces (/metrics,
// /snapshot, /flight) as endpoints.
//
// Sharding: the server owns N independent hnp.Systems, each built from
// the same seed over the same topology and catalog, and routes every
// statement to the shard picked by a stable hash of (tenant, statement).
// Within a shard the existing per-System concurrency contract applies —
// any number of planners run under the shard's read lock — and across
// shards deployments never contend at all. Identical statements from one
// tenant always land on one shard, so the advertisement registry sees
// every reuse opportunity the hash preserves.
//
// Admission control: each shard bounds its in-flight plans with a
// semaphore. A request arriving at a full shard is rejected immediately
// with 429 and a Retry-After header rather than queued — overload sheds
// load at the door instead of growing latency without bound, and every
// rejection is counted in "serving.rejected" so overload is measurable.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"hnp"
	"hnp/internal/obs"
	"hnp/internal/workload"
)

// Config parameterizes a server.
type Config struct {
	// Shards is the number of independent hnp.System instances statements
	// are routed across.
	Shards int
	// Nodes/MaxCS/Seed shape each shard's network and hierarchy (every
	// shard builds the identical topology from the same seed).
	Nodes, MaxCS int
	Seed         int64
	// Streams is the size of the synthesized stream catalog, drawn via
	// workload.CatalogSpec from the same seed on every shard.
	Streams int
	// MaxInFlight bounds concurrently planning deployments per shard;
	// requests beyond it are rejected with 429 (admission control).
	MaxInFlight int
	// MaxBody bounds request bodies in bytes; larger requests get 413.
	MaxBody int64
	// DefaultAlgo plans statements that don't name an algorithm.
	DefaultAlgo hnp.Algorithm
	// FlightRecorder arms each shard's causal flight recorder (served at
	// /flight?shard=N).
	FlightRecorder bool
}

// DefaultConfig returns the standard serving shape: 4 shards over the
// paper's 128-node/max_cs=32 setting, a 24-stream catalog, 32 in-flight
// plans per shard, 64 KiB bodies, Top-Down planning, recorder armed.
func DefaultConfig() Config {
	return Config{
		Shards: 4, Nodes: 128, MaxCS: 32, Seed: 1,
		Streams: 24, MaxInFlight: 32, MaxBody: 64 << 10,
		DefaultAlgo:    hnp.AlgoTopDown,
		FlightRecorder: true,
	}
}

// ParseAlgo resolves the wire name of a planning algorithm ("" selects
// the server default).
func ParseAlgo(name string) (hnp.Algorithm, bool) {
	switch name {
	case "top-down":
		return hnp.AlgoTopDown, true
	case "bottom-up":
		return hnp.AlgoBottomUp, true
	case "optimal":
		return hnp.AlgoOptimal, true
	case "plan-then-deploy":
		return hnp.AlgoPlanThenDeploy, true
	}
	return 0, false
}

// DeployRequest is the wire form of a deploy call.
type DeployRequest struct {
	// CQL is the statement to plan and deploy (see internal/cql).
	CQL string `json:"cql"`
	// Sink is the delivery node (default node 0).
	Sink int `json:"sink"`
	// Algo names the planner: "top-down", "bottom-up", "optimal",
	// "plan-then-deploy"; empty selects the server default.
	Algo string `json:"algo,omitempty"`
	// Tenant multiplexes request streams; it participates in shard
	// routing, so one tenant's identical statements share a shard.
	Tenant string `json:"tenant,omitempty"`
}

// DeployResponse is the wire form of a successful deploy.
type DeployResponse struct {
	// ID is the server-wide deployment handle for undeploy/explain.
	ID int64 `json:"id"`
	// Shard is the shard the statement was routed to.
	Shard int `json:"shard"`
	// QueryID is the query's ID inside its shard's System.
	QueryID int `json:"query_id"`
	// Plan is the chosen operator tree, Cost its marginal communication
	// cost per unit time.
	Plan string  `json:"plan"`
	Cost float64 `json:"cost"`
	// PlanLatencyNs is the server-side parse+plan+deploy time.
	PlanLatencyNs int64 `json:"plan_latency_ns"`
	// ReusedLeaves counts plan inputs satisfied by previously advertised
	// derived streams.
	ReusedLeaves int `json:"reused_leaves"`
	// PlansConsidered is the planner's search-space accounting.
	PlansConsidered float64 `json:"plans_considered"`
}

// ErrorResponse is the wire form of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Stats is a point-in-time copy of the server's request accounting.
type Stats struct {
	Deploys, Undeploys, Rejected int64
	ParseErrors, DecodeErrors    int64
	Oversized                    int64
	Outstanding                  int
}

type shard struct {
	sys *hnp.System
	sem chan struct{}
}

type record struct {
	shard  int
	tenant string
	cql    string
	dep    hnp.Deployment
	planNs int64
}

// Server is the query-serving front end; it implements http.Handler.
type Server struct {
	cfg    Config
	shards []*shard
	names  []string // catalog stream names, in StreamID order

	// Obs is the server's own registry: the serving.* metric family
	// (deploys, rejections, plan-latency histogram). Per-shard planner
	// telemetry lives in each shard System's registry (/snapshot).
	Obs *obs.Registry

	mux    *http.ServeMux
	nextID atomic.Int64
	mu     sync.RWMutex
	deps   map[int64]*record

	// planHook, when set (tests only), runs while the admission slot is
	// held, before planning: it lets tests saturate a shard
	// deterministically.
	planHook func()

	cDeploys, cUndeploys, cRejected *obs.Counter
	cParseErr, cDecodeErr, cOversz  *obs.Counter
	gInFlight                       *obs.Gauge
	hPlanSec                        *obs.Histogram
}

// NewServer builds the sharded systems and the HTTP surface. Serving is
// pointless without its measurements, so telemetry is switched on
// process-wide.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Shards < 1 || cfg.MaxInFlight < 1 {
		return nil, fmt.Errorf("serve: need at least one shard and one in-flight slot")
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultConfig().MaxBody
	}
	hnp.EnableTelemetry()
	wcfg := workload.Default(cfg.Streams, 0)
	s := &Server{
		cfg:  cfg,
		Obs:  obs.NewRegistry(),
		deps: map[int64]*record{},
	}
	for i := 0; i < cfg.Shards; i++ {
		g := hnp.TransitStubNetwork(cfg.Nodes, cfg.Seed)
		sys, err := hnp.NewSystem(g, cfg.MaxCS, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		specs, sels, err := workload.CatalogSpec(wcfg, cfg.Nodes, rand.New(rand.NewSource(cfg.Seed)))
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		ids := make([]hnp.StreamID, len(specs))
		for j, sp := range specs {
			ids[j] = sys.AddStream(sp.Name, sp.Rate, sp.Source)
			if i == 0 {
				s.names = append(s.names, sp.Name)
			}
		}
		for _, sel := range sels {
			sys.SetSelectivity(ids[sel.I], ids[sel.J], sel.Sel)
		}
		if cfg.FlightRecorder {
			sys.Obs.Tracer().Enable()
		}
		s.shards = append(s.shards, &shard{sys: sys, sem: make(chan struct{}, cfg.MaxInFlight)})
	}

	s.cDeploys = s.Obs.Counter("serving.deploys")
	s.cUndeploys = s.Obs.Counter("serving.undeploys")
	s.cRejected = s.Obs.Counter("serving.rejected")
	s.cParseErr = s.Obs.Counter("serving.parse_errors")
	s.cDecodeErr = s.Obs.Counter("serving.decode_errors")
	s.cOversz = s.Obs.Counter("serving.oversized")
	s.gInFlight = s.Obs.Gauge("serving.inflight")
	s.hPlanSec = s.Obs.Histogram("serving.plan_seconds", nil)

	mux := http.NewServeMux()
	mux.HandleFunc("/deploy", s.handleDeploy)
	mux.HandleFunc("/undeploy", s.handleUndeploy)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/metrics", obs.MetricsHandler(s.Obs.Snapshot))
	mux.HandleFunc("/flight", s.handleFlight)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux = mux
	return s, nil
}

// ServeHTTP dispatches to the server's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// StreamNames returns the catalog's stream names in StreamID order —
// what synthesized traces reference.
func (s *Server) StreamNames() []string { return append([]string(nil), s.names...) }

// NumShards returns the shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// Shard exposes one shard's System (debug surfaces, tests).
func (s *Server) Shard(i int) *hnp.System { return s.shards[i].sys }

// Stats copies the request accounting.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	outstanding := len(s.deps)
	s.mu.RUnlock()
	return Stats{
		Deploys:      s.cDeploys.Value(),
		Undeploys:    s.cUndeploys.Value(),
		Rejected:     s.cRejected.Value(),
		ParseErrors:  s.cParseErr.Value(),
		DecodeErrors: s.cDecodeErr.Value(),
		Oversized:    s.cOversz.Value(),
		Outstanding:  outstanding,
	}
}

// ShardFor returns the shard a (tenant, statement) pair routes to: a
// stable FNV-1a hash, so identical statements always meet their earlier
// advertisements.
func (s *Server) ShardFor(tenant, cql string) int {
	h := fnv.New32a()
	io.WriteString(h, tenant)
	h.Write([]byte{0})
	io.WriteString(h, cql)
	return int(h.Sum32() % uint32(len(s.shards)))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeBody reads and JSON-decodes a bounded request body into v,
// classifying failures: 413 for oversized bodies, 400 otherwise.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.cOversz.Inc()
			writeErr(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.cfg.MaxBody)
		} else {
			s.cDecodeErr.Inc()
			writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		}
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		s.cDecodeErr.Inc()
		writeErr(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

func (s *Server) handleDeploy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req DeployRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.CQL == "" {
		s.cDecodeErr.Inc()
		writeErr(w, http.StatusBadRequest, "empty cql statement")
		return
	}
	if !utf8.ValidString(req.CQL) {
		s.cDecodeErr.Inc()
		writeErr(w, http.StatusBadRequest, "cql statement is not valid UTF-8")
		return
	}
	if req.Sink < 0 || req.Sink >= s.cfg.Nodes {
		s.cDecodeErr.Inc()
		writeErr(w, http.StatusBadRequest, "sink %d outside [0,%d)", req.Sink, s.cfg.Nodes)
		return
	}
	algo := s.cfg.DefaultAlgo
	if req.Algo != "" {
		var ok bool
		if algo, ok = ParseAlgo(req.Algo); !ok {
			s.cDecodeErr.Inc()
			writeErr(w, http.StatusBadRequest, "unknown algorithm %q", req.Algo)
			return
		}
	}

	si := s.ShardFor(req.Tenant, req.CQL)
	sh := s.shards[si]
	// Admission control: claim an in-flight slot or shed the request now.
	select {
	case sh.sem <- struct{}{}:
	default:
		s.cRejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "shard %d at max in-flight plans (%d)", si, s.cfg.MaxInFlight)
		return
	}
	defer func() { <-sh.sem }()
	s.gInFlight.Add(1)
	defer s.gInFlight.Add(-1)
	if s.planHook != nil {
		s.planHook()
	}

	start := time.Now()
	dep, err := sh.sys.DeployCQL(req.CQL, hnp.NodeID(req.Sink), algo)
	lat := time.Since(start)
	if err != nil {
		s.cParseErr.Inc()
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.hPlanSec.Observe(lat.Seconds())
	s.cDeploys.Inc()

	id := s.nextID.Add(1)
	s.mu.Lock()
	s.deps[id] = &record{shard: si, tenant: req.Tenant, cql: req.CQL, dep: dep, planNs: lat.Nanoseconds()}
	s.mu.Unlock()

	writeJSON(w, http.StatusOK, DeployResponse{
		ID: id, Shard: si, QueryID: dep.Query.ID,
		Plan: dep.Plan.String(), Cost: dep.Cost,
		PlanLatencyNs:   lat.Nanoseconds(),
		ReusedLeaves:    reusedLeaves(dep.Plan),
		PlansConsidered: dep.PlansConsidered,
	})
}

// UndeployRequest is the wire form of an undeploy call (the id may also
// be passed as ?id=N).
type UndeployRequest struct {
	ID int64 `json:"id"`
}

func (s *Server) handleUndeploy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var id int64
	if q := r.URL.Query().Get("id"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil {
			s.cDecodeErr.Inc()
			writeErr(w, http.StatusBadRequest, "id must be an integer")
			return
		}
		id = n
	} else {
		var req UndeployRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		id = req.ID
	}
	s.mu.Lock()
	rec, ok := s.deps[id]
	if ok {
		delete(s.deps, id)
	}
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown deployment id %d", id)
		return
	}
	retracted := s.shards[rec.shard].sys.Undeploy(rec.dep)
	s.cUndeploys.Inc()
	writeJSON(w, http.StatusOK, map[string]any{
		"id": id, "shard": rec.shard, "ads_retracted": retracted,
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "explain needs ?id=N")
		return
	}
	s.mu.RLock()
	rec, ok := s.deps[id]
	s.mu.RUnlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown deployment id %d", id)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "deployment %d (shard %d, tenant %q)\ncql:  %s\nplan: %s\ncost: %.6g\nplan latency: %s\n\n",
		id, rec.shard, rec.tenant, rec.cql, rec.dep.Plan, rec.dep.Cost,
		time.Duration(rec.planNs))
	rec.dep.ExplainTo(w)
}

// shardParam resolves an optional ?shard=N parameter; ok=false means the
// response was already written.
func (s *Server) shardParam(w http.ResponseWriter, r *http.Request, def int) (int, bool) {
	q := r.URL.Query().Get("shard")
	if q == "" {
		return def, true
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 0 || n >= len(s.shards) {
		writeErr(w, http.StatusBadRequest, "unknown shard %q (have %d)", q, len(s.shards))
		return 0, false
	}
	return n, true
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if q := r.URL.Query().Get("shard"); q != "" {
		si, ok := s.shardParam(w, r, 0)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, s.shards[si].sys.Snapshot())
		return
	}
	shardSnaps := make([]obs.Snapshot, len(s.shards))
	for i, sh := range s.shards {
		shardSnaps[i] = sh.sys.Snapshot()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"serving": s.Obs.Snapshot(),
		"shards":  shardSnaps,
	})
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	si, ok := s.shardParam(w, r, 0)
	if !ok {
		return
	}
	obs.FlightHandler(func() *obs.Tracer { return s.shards[si].sys.Obs.Tracer() })(w, r)
}

// reusedLeaves counts plan inputs satisfied by previously advertised
// derived streams.
func reusedLeaves(n *hnp.PlanNode) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		if n.In != nil && n.In.Derived {
			return 1
		}
		return 0
	}
	return reusedLeaves(n.L) + reusedLeaves(n.R)
}
