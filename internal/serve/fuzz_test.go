package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

// fuzzServer builds one small shared server for the whole fuzz run: a
// tight MaxBody (1 KiB) so oversized inputs exercise the 413 path
// without megabyte corpus entries.
func fuzzServer(f *testing.F) *Server {
	fuzzOnce.Do(func() {
		cfg := testConfig()
		cfg.MaxBody = 1 << 10
		s, err := NewServer(cfg)
		if err != nil {
			f.Fatal(err)
		}
		fuzzSrv = s
	})
	return fuzzSrv
}

// FuzzServeDeploy feeds raw wire payloads through the server's decode
// path: the handler must never panic and must answer every input with
// one of its documented statuses. Deployments that succeed are undone
// immediately so the shared server's state stays bounded.
func FuzzServeDeploy(f *testing.F) {
	// Wire-shaped seeds: the happy path plus truncated bodies, wrong-type
	// JSON, oversized statements, non-UTF-8 bytes and hostile parameters.
	f.Add([]byte(`{"cql": "SELECT * FROM stream-1, stream-4", "sink": 3}`))
	f.Add([]byte(`{"cql": "SELECT * FROM stream-1, stream-4", "sink": 3, "algo": "bottom-up", "tenant": "t9"}`))
	f.Add([]byte(`{"cql": "SELECT * FROM stream-`)) // truncated mid-statement
	f.Add([]byte(`{"cql": 42}`))                    // wrong JSON type
	f.Add([]byte(`["not", "an", "object"]`))
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte("{\"cql\": \"SELECT \xff\xfe * FROM x\"}"))      // invalid UTF-8 in raw JSON
	f.Add([]byte(`{"cql": "SELECT \ufffd\u0000 FROM stream-0"}`)) // escapes decoding to hostile runes
	f.Add([]byte(`{"cql": "SELECT * FROM stream-0, stream-0"}`))  // duplicate stream
	f.Add([]byte(`{"cql": "SELECT * FROM stream-1, stream-2", "sink": -7}`))
	f.Add([]byte(`{"cql": "SELECT * FROM stream-1, stream-2", "sink": 1000000}`))
	f.Add([]byte(`{"cql": "SELECT * FROM stream-1, stream-2", "algo": "quantum"}`))
	f.Add([]byte(fmt.Sprintf(`{"cql": "SELECT * FROM %s"}`, strings.Repeat("x", 2048)))) // oversized
	f.Add([]byte(`{"cql": "SELECT * FROM stream-1, stream-2 WHERE stream-1.a BETWEEN 0.9 AND 0.1"}`))
	f.Add([]byte(`{"cql": "SELECT * FROM stream-1, stream-2 WINDOW -5 AGGREGATE EXPLODE"}`))

	s := fuzzServer(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/deploy", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		switch w.Code {
		case http.StatusOK:
			var dr DeployResponse
			if err := json.Unmarshal(w.Body.Bytes(), &dr); err != nil {
				t.Fatalf("200 with undecodable body %.200q: %v", w.Body.Bytes(), err)
			}
			ureq := httptest.NewRequest(http.MethodPost, fmt.Sprintf("/undeploy?id=%d", dr.ID), nil)
			uw := httptest.NewRecorder()
			s.ServeHTTP(uw, ureq)
			if uw.Code != http.StatusOK {
				t.Fatalf("undeploy of fuzz-deployed %d: %d", dr.ID, uw.Code)
			}
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge, http.StatusTooManyRequests:
			var er ErrorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Fatalf("%d with non-error body %.200q", w.Code, w.Body.Bytes())
			}
		default:
			t.Fatalf("unexpected status %d for body %.200q", w.Code, body)
		}
	})
}
