package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// admissionConfig: one shard with two in-flight slots, so saturation is
// exact and every statement routes to the same semaphore.
func admissionConfig() Config {
	cfg := DefaultConfig()
	cfg.Shards = 1
	cfg.Nodes = 48
	cfg.MaxCS = 16
	cfg.Streams = 12
	cfg.MaxInFlight = 2
	return cfg
}

// waitInFlight polls the serving.inflight gauge until it reaches want.
func waitInFlight(t *testing.T, s *Server, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Obs.Snapshot().Gauges["serving.inflight"] == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("serving.inflight never reached %g (now %g)",
		want, s.Obs.Snapshot().Gauges["serving.inflight"])
}

// TestAdmissionControl saturates the single shard with deliberately
// stalled planners and checks the whole backpressure contract: in-flight
// plans stay bounded at MaxInFlight, excess requests get 429 +
// Retry-After, the serving.rejected counter matches the observed
// rejections exactly, and the shard accepts work again once slots free.
func TestAdmissionControl(t *testing.T) {
	s, err := NewServer(admissionConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	release := make(chan struct{})
	s.planHook = func() { <-release }

	// Fill both slots with deploys that stall inside the planner.
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = postJSON(t, ts.URL+"/deploy", DeployRequest{CQL: testStmt, Sink: i})
		}(i)
	}
	waitInFlight(t, s, 2)

	// Every further request must be shed at the door, immediately.
	const extra = 5
	var observed429 int64
	for i := 0; i < extra; i++ {
		body, _ := json.Marshal(DeployRequest{CQL: testStmt, Sink: 10 + i})
		resp, err := http.Post(ts.URL+"/deploy", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("request %d while saturated: %d, want 429", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After header")
		}
		resp.Body.Close()
		observed429++
	}
	// In-flight never exceeded the bound while we hammered.
	if got := s.Obs.Snapshot().Gauges["serving.inflight"]; got != 2 {
		t.Fatalf("serving.inflight = %g during saturation, want 2", got)
	}
	// Telemetry matches the client-observed rejections exactly.
	if st := s.Stats(); st.Rejected != observed429 {
		t.Fatalf("serving.rejected = %d, observed %d rejections", st.Rejected, observed429)
	}

	// Release the stalled planners: both complete successfully.
	close(release)
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("stalled deploy %d finished with %d, want 200", i, code)
		}
	}
	waitInFlight(t, s, 0)

	// The shard admits again; no new rejections accrue.
	if code, body := postJSON(t, ts.URL+"/deploy", DeployRequest{CQL: testStmt, Sink: 3}); code != http.StatusOK {
		t.Fatalf("deploy after drain: %d %s", code, body)
	}
	if st := s.Stats(); st.Rejected != observed429 || st.Deploys != 3 {
		t.Fatalf("final stats: %+v, want rejected=%d deploys=3", st, observed429)
	}
}
