package serve

import (
	"net/http/httptest"

	"hnp/internal/benchfmt"
	"hnp/internal/workload"
)

// BenchScenario is one pinned serving-benchmark setting: a server shape,
// a synthesized trace and harness options. Scenario definitions are the
// contract behind the committed BENCH_serving.json — the same seeds
// replay the same request sequences on every machine, so only the
// measured latencies move with the hardware.
type BenchScenario struct {
	Name   string
	Server Config
	Trace  workload.TraceConfig
	Load   LoadOptions
}

// BenchScenarios returns the standard serving trajectory entries:
//
//   - ServeSteady: 4 shards at a comfortable arrival rate — the
//     steady-state serving latency and deploy throughput figures.
//   - ServeBurst: one shard, the tightest admission (1 in-flight plan),
//     20× arrival bursts — the overload shape, where backpressure (429s)
//     engages on parallel hardware and the rejection count becomes a
//     figure.
func BenchScenarios(seed int64) []BenchScenario {
	steadyTrace := workload.DefaultTrace(seed)
	steadyTrace.Duration, steadyTrace.Rate = 8, 120

	// One shard, a single in-flight plan slot, 20× bursts replayed at 8×:
	// the burst-window arrival gap drops well under one planning time, so
	// on parallel hardware admission control engages and sheds load
	// (nonzero Rejected). The count is parallelism-dependent — a
	// single-core box rarely overlaps two sub-millisecond plans, so its
	// baseline may legitimately record zero — which is why the diff treats
	// Rejected as informational; the admission-control contract itself is
	// pinned deterministically by the tests in admission_test.go.
	burstSrv := DefaultConfig()
	burstSrv.Seed = seed
	burstSrv.Shards = 1
	burstSrv.MaxInFlight = 1
	burstTrace := workload.DefaultTrace(seed + 1)
	burstTrace.Duration, burstTrace.Rate = 8, 60
	burstTrace.BurstEvery, burstTrace.BurstLen, burstTrace.BurstFactor = 2, 0.4, 20
	burstTrace.UndeployFrac = 0.1

	steadySrv := DefaultConfig()
	steadySrv.Seed = seed
	return []BenchScenario{
		{
			Name:   "ServeSteady",
			Server: steadySrv,
			Trace:  steadyTrace,
			Load:   LoadOptions{Senders: 8, Speedup: 4},
		},
		{
			Name:   "ServeBurst",
			Server: burstSrv,
			Trace:  burstTrace,
			Load:   LoadOptions{Senders: 16, Speedup: 8},
		},
	}
}

// RunBench builds the scenario's server in-process, replays its trace
// through the load harness over real HTTP (httptest), and converts the
// collector's report into a trajectory entry: ns/op carries the p50 plan
// latency, p95/p99 the tails, plus deploys/sec and the rejection count.
func RunBench(sc BenchScenario) (benchfmt.Result, *LoadReport, error) {
	srv, err := NewServer(sc.Server)
	if err != nil {
		return benchfmt.Result{}, nil, err
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	tr, err := workload.SynthesizeTrace(sc.Trace, srv.StreamNames(), sc.Server.Nodes)
	if err != nil {
		return benchfmt.Result{}, nil, err
	}
	rep, err := RunLoad(ts.URL, tr, sc.Load)
	if err != nil {
		return benchfmt.Result{}, nil, err
	}
	return benchfmt.Result{
		Name:          sc.Name,
		Iterations:    int(rep.Deploys),
		NsPerOp:       rep.Quantile(0.50).Nanoseconds(),
		P95Ns:         rep.Quantile(0.95).Nanoseconds(),
		P99Ns:         rep.Quantile(0.99).Nanoseconds(),
		DeploysPerSec: rep.DeploysPerSec(),
		Rejected:      rep.Rejected,
		Errors:        rep.Errors,
	}, rep, nil
}
