// ReqBench-style load harness: replay a synthesized workload trace
// against a serving endpoint with N concurrent senders, and collect the
// latency/throughput/rejection figures the serving trajectory
// (BENCH_serving.json) is built from.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hnp/internal/workload"
)

// LoadOptions shapes one harness run.
type LoadOptions struct {
	// Senders is the number of concurrent request goroutines.
	Senders int
	// Speedup compresses trace time: an event at trace time t fires at
	// wall time t/Speedup (default 1). Arrivals are open-loop — the
	// dispatcher follows the trace clock regardless of how the server
	// keeps up, so overload shows up as latency and rejections, not as a
	// silently slower trace.
	Speedup float64
	// Timeout bounds each request round trip (default 30s).
	Timeout time.Duration
}

// LoadReport is the collector's output for one run.
type LoadReport struct {
	// Sent counts dispatched requests; Deploys/Undeploys successful
	// lifecycle calls; Rejected admission rejections (HTTP 429); Errors
	// everything else that failed; SkippedUndeploys undeploy events that
	// found nothing outstanding to retire.
	Sent, Deploys, Undeploys, Rejected, Errors, SkippedUndeploys int64
	// Wall is the harness wall-clock time from first dispatch to last
	// response.
	Wall time.Duration
	// Latencies holds one round-trip latency per successful deploy.
	Latencies []time.Duration
}

// Quantile returns the q-quantile (0..1) of the deploy latencies by
// nearest rank, 0 with no samples.
func (r *LoadReport) Quantile(q float64) time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.Latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// DeploysPerSec returns the sustained successful-deploy throughput.
func (r *LoadReport) DeploysPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Deploys) / r.Wall.Seconds()
}

// String summarizes the report in one line.
func (r *LoadReport) String() string {
	return fmt.Sprintf("sent=%d deploys=%d undeploys=%d rejected=%d errors=%d skipped=%d wall=%s p50=%s p95=%s p99=%s deploys/s=%.1f",
		r.Sent, r.Deploys, r.Undeploys, r.Rejected, r.Errors, r.SkippedUndeploys,
		r.Wall.Round(time.Millisecond),
		r.Quantile(0.50).Round(time.Microsecond),
		r.Quantile(0.95).Round(time.Microsecond),
		r.Quantile(0.99).Round(time.Microsecond),
		r.DeploysPerSec())
}

// idQueue tracks outstanding deployment handles so undeploy events can
// retire the oldest one (FIFO keeps retirement deterministic given the
// completion order).
type idQueue struct {
	mu  sync.Mutex
	ids []int64
}

func (q *idQueue) push(id int64) {
	q.mu.Lock()
	q.ids = append(q.ids, id)
	q.mu.Unlock()
}

func (q *idQueue) pop() (int64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.ids) == 0 {
		return 0, false
	}
	id := q.ids[0]
	q.ids = q.ids[1:]
	return id, true
}

// RunLoad replays the trace against the serving endpoint at baseURL
// (e.g. "http://127.0.0.1:8080") and collects the run's figures. The
// dispatcher paces arrivals on the (speedup-compressed) trace clock;
// opt.Senders goroutines drain them concurrently.
func RunLoad(baseURL string, tr *workload.Trace, opt LoadOptions) (*LoadReport, error) {
	if len(tr.Events) == 0 {
		return nil, fmt.Errorf("serve: empty trace")
	}
	if opt.Senders < 1 {
		opt.Senders = 1
	}
	if opt.Speedup <= 0 {
		opt.Speedup = 1
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 30 * time.Second
	}
	// Keep one idle connection per sender: the default transport caches
	// only 2 per host, which would make most requests pay a fresh TCP
	// dial and measure connection setup instead of serving latency.
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConnsPerHost = opt.Senders
	client := &http.Client{Timeout: opt.Timeout, Transport: transport}

	rep := &LoadReport{}
	var (
		latMu    sync.Mutex
		deployed idQueue
	)
	jobs := make(chan workload.TraceEvent, len(tr.Events))
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < opt.Senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ev := range jobs {
				atomic.AddInt64(&rep.Sent, 1)
				switch ev.Kind {
				case workload.KindDeploy:
					body, _ := json.Marshal(DeployRequest{CQL: ev.CQL, Sink: ev.Sink, Tenant: ev.Tenant})
					t0 := time.Now()
					resp, err := client.Post(baseURL+"/deploy", "application/json", bytes.NewReader(body))
					lat := time.Since(t0)
					if err != nil {
						atomic.AddInt64(&rep.Errors, 1)
						continue
					}
					switch resp.StatusCode {
					case http.StatusOK:
						var dr DeployResponse
						if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
							atomic.AddInt64(&rep.Errors, 1)
						} else {
							atomic.AddInt64(&rep.Deploys, 1)
							deployed.push(dr.ID)
							latMu.Lock()
							rep.Latencies = append(rep.Latencies, lat)
							latMu.Unlock()
						}
					case http.StatusTooManyRequests:
						atomic.AddInt64(&rep.Rejected, 1)
					default:
						atomic.AddInt64(&rep.Errors, 1)
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				case workload.KindUndeploy:
					id, ok := deployed.pop()
					if !ok {
						atomic.AddInt64(&rep.SkippedUndeploys, 1)
						continue
					}
					resp, err := client.Post(fmt.Sprintf("%s/undeploy?id=%d", baseURL, id), "application/json", nil)
					if err != nil {
						atomic.AddInt64(&rep.Errors, 1)
						continue
					}
					if resp.StatusCode == http.StatusOK {
						atomic.AddInt64(&rep.Undeploys, 1)
					} else {
						atomic.AddInt64(&rep.Errors, 1)
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	// Open-loop dispatcher: sleep to each event's compressed arrival time.
	for _, ev := range tr.Events {
		due := start.Add(time.Duration(ev.At / opt.Speedup * float64(time.Second)))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		jobs <- ev
	}
	close(jobs)
	wg.Wait()
	rep.Wall = time.Since(start)
	return rep, nil
}
