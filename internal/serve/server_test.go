package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hnp"
)

// testConfig returns a small-but-real server shape: two shards over a
// 48-node network so suites stay fast.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Shards = 2
	cfg.Nodes = 48
	cfg.MaxCS = 16
	cfg.Streams = 12
	return cfg
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts v (pre-marshaled bytes pass through) and returns the
// status code and body.
func postJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	var body []byte
	switch b := v.(type) {
	case []byte:
		body = b
	case nil:
	default:
		var err error
		if body, err = json.Marshal(v); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

const testStmt = "SELECT * FROM stream-1, stream-4 WHERE stream-1.temp < 0.6"

// TestServeLifecycle walks the full deploy→explain→undeploy lifecycle
// over the wire and checks the planning-level bookkeeping unwinds.
func TestServeLifecycle(t *testing.T) {
	s, ts := newTestServer(t, testConfig())

	code, body := postJSON(t, ts.URL+"/deploy", DeployRequest{CQL: testStmt, Sink: 7, Tenant: "t0"})
	if code != http.StatusOK {
		t.Fatalf("deploy: %d %s", code, body)
	}
	var dr DeployResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.ID == 0 || dr.Plan == "" || dr.Cost <= 0 || dr.PlanLatencyNs <= 0 {
		t.Fatalf("implausible deploy response: %+v", dr)
	}
	if dr.Shard != s.ShardFor("t0", testStmt) {
		t.Fatalf("deployed on shard %d, routing says %d", dr.Shard, s.ShardFor("t0", testStmt))
	}

	// The same statement from the same tenant routes to the same shard and
	// meets its own advertisements.
	code, body = postJSON(t, ts.URL+"/deploy", DeployRequest{CQL: testStmt, Sink: 9, Tenant: "t0"})
	if code != http.StatusOK {
		t.Fatalf("re-deploy: %d %s", code, body)
	}
	var dr2 DeployResponse
	if err := json.Unmarshal(body, &dr2); err != nil {
		t.Fatal(err)
	}
	if dr2.Shard != dr.Shard {
		t.Fatalf("identical statement routed to shard %d then %d", dr.Shard, dr2.Shard)
	}

	code, body = get(t, fmt.Sprintf("%s/explain?id=%d", ts.URL, dr.ID))
	if code != http.StatusOK || !strings.Contains(string(body), "level ") {
		t.Fatalf("explain: %d %.200s", code, body)
	}

	code, body = get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["serving.deploys"] != 2 {
		t.Fatalf("serving.deploys = %d, want 2", snap.Counters["serving.deploys"])
	}

	if code, _ = get(t, ts.URL+"/snapshot"); code != http.StatusOK {
		t.Fatalf("snapshot: %d", code)
	}
	if code, _ = get(t, fmt.Sprintf("%s/snapshot?shard=%d", ts.URL, dr.Shard)); code != http.StatusOK {
		t.Fatalf("snapshot?shard: %d", code)
	}
	code, body = get(t, fmt.Sprintf("%s/flight?shard=%d", ts.URL, dr.Shard))
	if code != http.StatusOK || !strings.Contains(string(body), "plan_chosen") {
		t.Fatalf("flight: %d %.200s", code, body)
	}

	for _, id := range []int64{dr.ID, dr2.ID} {
		code, body = postJSON(t, fmt.Sprintf("%s/undeploy?id=%d", ts.URL, id), nil)
		if code != http.StatusOK {
			t.Fatalf("undeploy %d: %d %s", id, code, body)
		}
	}
	// Retracting both deployments must drain the shard's load ledger.
	sys := s.Shard(dr.Shard)
	for v := 0; v < testConfig().Nodes; v++ {
		if l := sys.NodeLoad(hnp.NodeID(v)); l > 1e-9 {
			t.Fatalf("node %d still carries load %g after undeploy", v, l)
		}
	}
	if st := s.Stats(); st.Outstanding != 0 || st.Undeploys != 2 {
		t.Fatalf("stats after teardown: %+v", st)
	}

	// The handle is gone: explain and a second undeploy both 404.
	if code, _ = get(t, fmt.Sprintf("%s/explain?id=%d", ts.URL, dr.ID)); code != http.StatusNotFound {
		t.Fatalf("explain after undeploy: %d, want 404", code)
	}
	if code, _ = postJSON(t, fmt.Sprintf("%s/undeploy?id=%d", ts.URL, dr.ID), nil); code != http.StatusNotFound {
		t.Fatalf("double undeploy: %d, want 404", code)
	}
}

// TestServeUndeployBody exercises the JSON-body form of undeploy.
func TestServeUndeployBody(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	code, body := postJSON(t, ts.URL+"/deploy", DeployRequest{CQL: testStmt})
	if code != http.StatusOK {
		t.Fatalf("deploy: %d %s", code, body)
	}
	var dr DeployResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if code, body = postJSON(t, ts.URL+"/undeploy", UndeployRequest{ID: dr.ID}); code != http.StatusOK {
		t.Fatalf("undeploy by body: %d %s", code, body)
	}
}

// TestServeErrorPaths covers the wire-level failure modes: malformed
// CQL, catalog misses, broken JSON, non-UTF-8 statements, oversized
// bodies, bad parameters and unknown shards.
func TestServeErrorPaths(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	cases := []struct {
		name string
		do   func() (int, []byte)
		want int
	}{
		{"malformed cql", func() (int, []byte) {
			return postJSON(t, ts.URL+"/deploy", DeployRequest{CQL: "SELECT FROM WHERE"})
		}, http.StatusBadRequest},
		{"unknown stream", func() (int, []byte) {
			return postJSON(t, ts.URL+"/deploy", DeployRequest{CQL: "SELECT * FROM nosuch, stream-1"})
		}, http.StatusBadRequest},
		{"broken json", func() (int, []byte) {
			return postJSON(t, ts.URL+"/deploy", []byte(`{"cql": "SELECT`))
		}, http.StatusBadRequest},
		{"empty statement", func() (int, []byte) {
			return postJSON(t, ts.URL+"/deploy", DeployRequest{})
		}, http.StatusBadRequest},
		{"non-utf8 statement", func() (int, []byte) {
			return postJSON(t, ts.URL+"/deploy", []byte("{\"cql\": \"SELECT \\ufffd\xff * FROM\"}"))
		}, http.StatusBadRequest},
		{"oversized body", func() (int, []byte) {
			huge := `{"cql": "SELECT * FROM ` + strings.Repeat("x", int(testConfig().MaxBody)) + `"}`
			return postJSON(t, ts.URL+"/deploy", []byte(huge))
		}, http.StatusRequestEntityTooLarge},
		{"bad sink", func() (int, []byte) {
			return postJSON(t, ts.URL+"/deploy", DeployRequest{CQL: testStmt, Sink: 4096})
		}, http.StatusBadRequest},
		{"bad algo", func() (int, []byte) {
			return postJSON(t, ts.URL+"/deploy", DeployRequest{CQL: testStmt, Algo: "quantum"})
		}, http.StatusBadRequest},
		{"get deploy", func() (int, []byte) { return get(t, ts.URL+"/deploy") }, http.StatusMethodNotAllowed},
		{"explain without id", func() (int, []byte) { return get(t, ts.URL+"/explain") }, http.StatusBadRequest},
		{"undeploy bad id", func() (int, []byte) {
			return postJSON(t, ts.URL+"/undeploy?id=banana", nil)
		}, http.StatusBadRequest},
		{"unknown shard snapshot", func() (int, []byte) { return get(t, ts.URL+"/snapshot?shard=99") }, http.StatusBadRequest},
		{"unknown shard flight", func() (int, []byte) { return get(t, ts.URL+"/flight?shard=-1") }, http.StatusBadRequest},
		{"non-numeric shard", func() (int, []byte) { return get(t, ts.URL+"/snapshot?shard=zero") }, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, body := tc.do()
		if code != tc.want {
			t.Errorf("%s: got %d (%.200s), want %d", tc.name, code, body, tc.want)
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %.200q is not an ErrorResponse", tc.name, body)
		}
	}
	if st := s.Stats(); st.Deploys != 0 || st.Outstanding != 0 {
		t.Fatalf("error paths leaked deployments: %+v", st)
	}
}

// TestServeRaceHammer runs concurrent clients through the full lifecycle
// against one server — the suite CI runs under -race. Every client mixes
// deploys, explains, undeploys and read-only surfaces.
func TestServeRaceHammer(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	stmts := []string{
		testStmt,
		"SELECT * FROM stream-0, stream-2",
		"SELECT * FROM stream-3, stream-5, stream-8",
		"SELECT * FROM stream-6, stream-7 WHERE stream-6.v BETWEEN 0.1 AND 0.9",
		"SELECT * FROM stream-9, stream-10 WINDOW 30 AGGREGATE COUNT",
	}
	const clients = 8
	const iters = 20
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var ids []int64
			for i := 0; i < iters; i++ {
				stmt := stmts[(c+i)%len(stmts)]
				code, body := postJSON(t, ts.URL+"/deploy", DeployRequest{
					CQL: stmt, Sink: (c*7 + i) % testConfig().Nodes, Tenant: fmt.Sprintf("t%d", c%3),
				})
				if code != http.StatusOK {
					t.Errorf("client %d deploy: %d %.200s", c, code, body)
					return
				}
				var dr DeployResponse
				if err := json.Unmarshal(body, &dr); err != nil {
					t.Error(err)
					return
				}
				ids = append(ids, dr.ID)
				switch i % 4 {
				case 0:
					get(t, fmt.Sprintf("%s/explain?id=%d", ts.URL, dr.ID))
				case 1:
					get(t, ts.URL+"/metrics")
				case 2:
					get(t, ts.URL+"/snapshot")
				}
				if len(ids) > 3 {
					id := ids[0]
					ids = ids[1:]
					if code, body := postJSON(t, fmt.Sprintf("%s/undeploy?id=%d", ts.URL, id), nil); code != http.StatusOK {
						t.Errorf("client %d undeploy: %d %.200s", c, code, body)
						return
					}
				}
			}
			for _, id := range ids {
				postJSON(t, fmt.Sprintf("%s/undeploy?id=%d", ts.URL, id), nil)
			}
		}(c)
	}
	wg.Wait()
	st := s.Stats()
	if st.Deploys != clients*iters {
		t.Fatalf("deploys = %d, want %d", st.Deploys, clients*iters)
	}
	if st.Outstanding != 0 || st.Deploys != st.Undeploys {
		t.Fatalf("lifecycle accounting off after hammer: %+v", st)
	}
}

// TestServeShardRouting pins routing invariants: stable, in range, and
// actually spreading distinct statements across shards.
func TestServeShardRouting(t *testing.T) {
	s, _ := newTestServer(t, testConfig())
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		stmt := fmt.Sprintf("SELECT * FROM stream-%d, stream-%d", i%12, (i+1)%12)
		a := s.ShardFor("t", stmt)
		if a != s.ShardFor("t", stmt) {
			t.Fatal("routing is not stable")
		}
		if a < 0 || a >= s.NumShards() {
			t.Fatalf("shard %d out of range", a)
		}
		seen[a] = true
	}
	if len(seen) < 2 {
		t.Fatalf("64 distinct statements all landed on one shard")
	}
}
