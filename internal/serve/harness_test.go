package serve

import (
	"net/http/httptest"
	"testing"

	"hnp/internal/workload"
)

// TestHarnessSmoke replays a short synthesized trace through the load
// harness against a real HTTP server and cross-checks the client-side
// collector against the server's own accounting.
func TestHarnessSmoke(t *testing.T) {
	s, err := NewServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	tc := workload.DefaultTrace(7)
	tc.Duration = 2
	tc.Rate = 80
	tr, err := workload.SynthesizeTrace(tc, s.StreamNames(), testConfig().Nodes)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunLoad(ts.URL, tr, LoadOptions{Senders: 4, Speedup: 40})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("harness: %s", rep)

	if rep.Errors != 0 {
		t.Fatalf("harness saw %d errors: %s", rep.Errors, rep)
	}
	if rep.Sent != int64(len(tr.Events)) {
		t.Fatalf("sent %d of %d events", rep.Sent, len(tr.Events))
	}
	if rep.Deploys == 0 {
		t.Fatal("harness deployed nothing")
	}
	if int64(len(rep.Latencies)) != rep.Deploys {
		t.Fatalf("%d latency samples for %d deploys", len(rep.Latencies), rep.Deploys)
	}
	st := s.Stats()
	if st.Deploys != rep.Deploys || st.Undeploys != rep.Undeploys || st.Rejected != rep.Rejected {
		t.Fatalf("server %+v disagrees with harness %s", st, rep)
	}
	if int64(st.Outstanding) != rep.Deploys-rep.Undeploys {
		t.Fatalf("outstanding %d != deploys-undeploys %d", st.Outstanding, rep.Deploys-rep.Undeploys)
	}
	if rep.DeploysPerSec() <= 0 {
		t.Fatal("no throughput figure")
	}
	// Quantiles are ordered and drawn from the sample set.
	p50, p95, p99 := rep.Quantile(0.5), rep.Quantile(0.95), rep.Quantile(0.99)
	if p50 > p95 || p95 > p99 || p50 <= 0 {
		t.Fatalf("quantiles out of order: p50=%s p95=%s p99=%s", p50, p95, p99)
	}
}
