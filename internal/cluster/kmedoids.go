// Package cluster implements capacity-constrained k-medoids clustering over
// an arbitrary distance oracle. The paper clusters network nodes by
// inter-node traversal cost using K-Means; traversal cost is a metric, not
// a vector space, so the standard adaptation is k-medoids: cluster centers
// are members ("medoids"), which also gives us the coordinator node of each
// network partition for free.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// DistFunc returns the distance between items i and j. It must be
// symmetric with zero self-distance.
type DistFunc func(i, j int) float64

// Result describes a clustering of items 0..n-1.
type Result struct {
	// Assign maps each item to its cluster index in [0, len(Medoids)).
	Assign []int
	// Medoids lists, for each cluster, the item serving as its center.
	Medoids []int
}

// Clusters returns the member lists, indexed by cluster, members sorted.
func (r Result) Clusters() [][]int {
	out := make([][]int, len(r.Medoids))
	for item, c := range r.Assign {
		out[c] = append(out[c], item)
	}
	for _, ms := range out {
		sort.Ints(ms)
	}
	return out
}

// Cost returns the total distance from each item to its medoid.
func (r Result) Cost(dist DistFunc) float64 {
	sum := 0.0
	for item, c := range r.Assign {
		sum += dist(item, r.Medoids[c])
	}
	return sum
}

// FarthestPointSeeds picks k well-spread items: the first uniformly at
// random, each subsequent one maximizing the distance to the closest
// already-chosen seed. This is the classic 2-approximation seeding for
// metric clustering and makes the hierarchy construction robust to the
// random seed.
func FarthestPointSeeds(n, k int, dist DistFunc, rng *rand.Rand) []int {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	seeds := make([]int, 0, k)
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	first := rng.Intn(n)
	seeds = append(seeds, first)
	for len(seeds) < k {
		last := seeds[len(seeds)-1]
		far, farD := -1, -1.0
		for i := 0; i < n; i++ {
			if d := dist(i, last); d < minDist[i] {
				minDist[i] = d
			}
			if minDist[i] > farD {
				far, farD = i, minDist[i]
			}
		}
		if farD <= 0 {
			// All remaining items coincide with a seed; fill arbitrarily.
			for i := 0; i < n && len(seeds) < k; i++ {
				if !contains(seeds, i) {
					seeds = append(seeds, i)
				}
			}
			break
		}
		seeds = append(seeds, far)
		minDist[far] = 0
	}
	return seeds
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// KMedoids clusters n items into k clusters of at most maxSize members
// each, minimizing total item-to-medoid distance. If k*maxSize < n it
// returns an error. iters bounds the assign/update rounds; the algorithm
// also stops early at a fixed point.
func KMedoids(n, k, maxSize int, dist DistFunc, rng *rand.Rand, iters int) (Result, error) {
	if n == 0 {
		return Result{}, nil
	}
	if k <= 0 {
		return Result{}, fmt.Errorf("cluster: k must be positive, got %d", k)
	}
	if maxSize <= 0 {
		return Result{}, fmt.Errorf("cluster: maxSize must be positive, got %d", maxSize)
	}
	if k > n {
		k = n
	}
	if k*maxSize < n {
		return Result{}, fmt.Errorf("cluster: %d clusters of <= %d cannot hold %d items", k, maxSize, n)
	}
	medoids := FarthestPointSeeds(n, k, dist, rng)
	var assign []int
	for round := 0; round < iters; round++ {
		assign = capacityAssign(n, medoids, maxSize, dist)
		next := updateMedoids(n, assign, medoids, dist)
		if equalInts(next, medoids) {
			medoids = next
			break
		}
		medoids = next
	}
	assign = capacityAssign(n, medoids, maxSize, dist)
	return Result{Assign: assign, Medoids: medoids}, nil
}

// capacityAssign assigns each item to the nearest medoid with remaining
// capacity. Items are processed in increasing order of the gap between
// their best and second-best medoid ("regret"), so items that would suffer
// most from losing their preferred cluster are placed first.
func capacityAssign(n int, medoids []int, maxSize int, dist DistFunc) []int {
	k := len(medoids)
	type pref struct {
		item   int
		order  []int // medoid indices sorted by distance
		regret float64
	}
	prefs := make([]pref, n)
	for i := 0; i < n; i++ {
		order := make([]int, k)
		for c := range order {
			order[c] = c
		}
		sort.Slice(order, func(a, b int) bool {
			da, db := dist(i, medoids[order[a]]), dist(i, medoids[order[b]])
			if da != db {
				return da < db
			}
			return order[a] < order[b]
		})
		regret := 0.0
		if k > 1 {
			regret = dist(i, medoids[order[1]]) - dist(i, medoids[order[0]])
		}
		prefs[i] = pref{i, order, regret}
	}
	sort.SliceStable(prefs, func(a, b int) bool { return prefs[a].regret > prefs[b].regret })

	assign := make([]int, n)
	load := make([]int, k)
	// Medoids always belong to their own cluster.
	placed := make([]bool, n)
	for c, m := range medoids {
		assign[m] = c
		load[c]++
		placed[m] = true
	}
	for _, p := range prefs {
		if placed[p.item] {
			continue
		}
		for _, c := range p.order {
			if load[c] < maxSize {
				assign[p.item] = c
				load[c]++
				placed[p.item] = true
				break
			}
		}
		if !placed[p.item] {
			// Unreachable when k*maxSize >= n, which KMedoids guarantees.
			panic("cluster: item could not be placed")
		}
	}
	return assign
}

func updateMedoids(n int, assign []int, medoids []int, dist DistFunc) []int {
	k := len(medoids)
	members := make([][]int, k)
	for i := 0; i < n; i++ {
		members[assign[i]] = append(members[assign[i]], i)
	}
	next := make([]int, k)
	for c := 0; c < k; c++ {
		if len(members[c]) == 0 {
			next[c] = medoids[c]
			continue
		}
		best, bestSum := members[c][0], math.Inf(1)
		for _, cand := range members[c] {
			sum := 0.0
			for _, o := range members[c] {
				sum += dist(cand, o)
			}
			if sum < bestSum {
				best, bestSum = cand, sum
			}
		}
		next[c] = best
	}
	return next
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Partition clusters n items under a hard size cap. The number of
// clusters adapts to the data: starting from the minimum k =
// ceil(n/maxSize), additional clusters are accepted while they cut the
// total item-to-medoid distance substantially, so natural network regions
// (stub domains) are not forced together just because the cap would
// allow it — matching the paper's observation that max_cs 32 on a
// 128-node transit-stub network yields ~26-node average clusters, not 32.
func Partition(n, maxSize int, dist DistFunc, rng *rand.Rand) (Result, error) {
	if maxSize <= 0 {
		return Result{}, fmt.Errorf("cluster: maxSize must be positive, got %d", maxSize)
	}
	if n == 0 {
		return Result{}, nil
	}
	kMin := (n + maxSize - 1) / maxSize
	if kMin <= 1 {
		// Everything fits in one cluster: this is a (potential) top level,
		// which must converge to a single cluster.
		return KMedoids(n, 1, maxSize, dist, rng, 8)
	}
	best, err := KMedoids(n, kMin, maxSize, dist, rng, 8)
	if err != nil {
		return Result{}, err
	}
	bestCost := best.Cost(dist)
	// A ≥25% cost reduction justifies one more cluster (one more
	// coordinator promoted, a slightly wider level above). Capping k at
	// n/2 guarantees each hierarchy level at least halves the node count,
	// so construction always converges.
	const improvement = 0.75
	kMax := kMin + 3
	if kMax > n/2 {
		kMax = n / 2
	}
	for k := kMin + 1; k <= kMax; k++ {
		cand, err := KMedoids(n, k, maxSize, dist, rng, 8)
		if err != nil {
			return Result{}, err
		}
		c := cand.Cost(dist)
		if c >= bestCost*improvement {
			break
		}
		best, bestCost = cand, c
	}
	return best, nil
}
