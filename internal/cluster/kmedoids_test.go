package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// lineDist is the metric |i-j|, i.e. items on a line.
func lineDist(i, j int) float64 { return math.Abs(float64(i - j)) }

func TestPartitionRespectsCapAndCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	res, err := Partition(100, 8, lineDist, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != 100 {
		t.Fatalf("assign len %d", len(res.Assign))
	}
	counts := map[int]int{}
	for i, c := range res.Assign {
		if c < 0 || c >= len(res.Medoids) {
			t.Fatalf("item %d assigned to bad cluster %d", i, c)
		}
		counts[c]++
	}
	for c, cnt := range counts {
		if cnt > 8 {
			t.Errorf("cluster %d has %d members > cap 8", c, cnt)
		}
	}
	if len(res.Medoids) != 13 { // ceil(100/8)
		t.Errorf("got %d clusters, want 13", len(res.Medoids))
	}
}

func TestMedoidBelongsToOwnCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	res, err := Partition(60, 10, lineDist, rng)
	if err != nil {
		t.Fatal(err)
	}
	for c, m := range res.Medoids {
		if res.Assign[m] != c {
			t.Errorf("medoid %d of cluster %d assigned to %d", m, c, res.Assign[m])
		}
	}
}

func TestSingleClusterWhenUnderCap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	res, err := Partition(5, 10, lineDist, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Medoids) != 1 {
		t.Fatalf("got %d clusters, want 1", len(res.Medoids))
	}
	if res.Medoids[0] != 2 {
		t.Errorf("medoid of 0..4 on a line = %d, want 2", res.Medoids[0])
	}
}

func TestLineClustersAreCompact(t *testing.T) {
	// On a line of 40 items with cap 10, total medoid cost of the result
	// should be far below a random assignment's expected cost.
	rng := rand.New(rand.NewSource(4))
	res, err := Partition(40, 10, lineDist, rng)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Cost(lineDist)
	// Ideal: 4 contiguous blocks of 10, each cost 2*(1+2+3+4)+5=25 -> 100.
	if got > 180 {
		t.Errorf("clustering cost %g too high (ideal ~100)", got)
	}
}

func TestKMedoidsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := KMedoids(10, 2, 3, lineDist, rng, 5); err == nil {
		t.Error("infeasible capacity accepted")
	}
	if _, err := KMedoids(10, 0, 3, lineDist, rng, 5); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMedoids(10, 2, 0, lineDist, rng, 5); err == nil {
		t.Error("maxSize=0 accepted")
	}
	if res, err := KMedoids(0, 2, 3, lineDist, rng, 5); err != nil || len(res.Assign) != 0 {
		t.Errorf("empty input: %v %v", res, err)
	}
}

func TestFarthestPointSeedsSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	seeds := FarthestPointSeeds(100, 4, lineDist, rng)
	if len(seeds) != 4 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	seen := map[int]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
	}
	// Seeds must include both extremes of the line (farthest-point property
	// guarantees the second seed is an endpoint relative to the first).
	hasLow, hasHigh := false, false
	for _, s := range seeds {
		if s < 20 {
			hasLow = true
		}
		if s >= 80 {
			hasHigh = true
		}
	}
	if !hasLow || !hasHigh {
		t.Errorf("seeds %v not spread across the line", seeds)
	}
}

func TestFarthestPointSeedsDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	zero := func(i, j int) float64 { return 0 }
	seeds := FarthestPointSeeds(5, 3, zero, rng)
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds under zero metric", len(seeds))
	}
	if got := FarthestPointSeeds(3, 10, lineDist, rng); len(got) != 3 {
		t.Errorf("k>n: got %d seeds, want 3", len(got))
	}
	if got := FarthestPointSeeds(3, 0, lineDist, rng); got != nil {
		t.Errorf("k=0: got %v", got)
	}
}

func TestClustersViewMatchesAssign(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	res, err := Partition(30, 7, lineDist, rng)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for c, members := range res.Clusters() {
		for _, m := range members {
			if res.Assign[m] != c {
				t.Errorf("member %d listed in cluster %d but assigned %d", m, c, res.Assign[m])
			}
		}
		total += len(members)
	}
	if total != 30 {
		t.Errorf("clusters cover %d items, want 30", total)
	}
}

// Property: for random metrics induced by random points on a line, the
// capacity constraint always holds and every item is assigned.
func TestPartitionProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(80)
		cap := 1 + rng.Intn(12)
		pos := make([]float64, n)
		for i := range pos {
			pos[i] = rng.Float64() * 100
		}
		dist := func(i, j int) float64 { return math.Abs(pos[i] - pos[j]) }
		res, err := Partition(n, cap, dist, rng)
		if err != nil {
			return false
		}
		counts := make([]int, len(res.Medoids))
		for _, c := range res.Assign {
			counts[c]++
		}
		for _, cnt := range counts {
			if cnt > cap {
				return false
			}
		}
		return len(res.Assign) == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
