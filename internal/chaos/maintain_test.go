package chaos

import (
	"testing"

	"hnp/internal/netgraph"
)

// TestChaosReportsUnchangedByDeltaRefresh is the end-to-end equivalence
// gate for incremental path maintenance: across a sweep of seeds, the
// default drift profile must produce byte-for-byte identical reports —
// event trace, transport stats, deliveries — whether link churn is
// absorbed by delta repair plus scoped rebinds (the default) or by full
// recomputation. Any divergence means a repaired snapshot was not
// bit-identical to a fresh one, or a scoped rebind missed a cluster.
func TestChaosReportsUnchangedByDeltaRefresh(t *testing.T) {
	t.Cleanup(func() { netgraph.SetDeltaRefresh(true) })
	run := func(seed int64, incremental bool) Report {
		t.Helper()
		netgraph.SetDeltaRefresh(incremental)
		cfg := DefaultConfig(seed)
		cfg.Events = 60
		w, err := New(cfg)
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		rep, err := w.Run()
		if err != nil {
			t.Fatalf("seed %d (incremental=%v): %v\ntrace:\n%s", seed, incremental, err, rep.TraceString())
		}
		return rep
	}
	for seed := int64(1); seed <= 10; seed++ {
		on := run(seed, true)
		off := run(seed, false)
		if on.TraceString() != off.TraceString() {
			t.Fatalf("seed %d: traces diverged between incremental and full maintenance:\n--- incremental\n%s\n--- full\n%s",
				seed, on.TraceString(), off.TraceString())
		}
		if on.Stats != off.Stats {
			t.Fatalf("seed %d: stats diverged: %+v vs %+v", seed, on.Stats, off.Stats)
		}
		if on.Delivered != off.Delivered {
			t.Fatalf("seed %d: deliveries diverged: %d vs %d", seed, on.Delivered, off.Delivered)
		}
		if on.Deployed != off.Deployed || on.Oscillations != off.Oscillations {
			t.Fatalf("seed %d: bookkeeping diverged: %+v vs %+v", seed, on, off)
		}
	}
}
