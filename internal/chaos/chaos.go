// Package chaos is a seed-deterministic fault and churn simulation
// harness for the full optimizer/runtime stack. It composes randomized
// adversarial schedules — node failures and recoveries, link-cost drift,
// query arrival and teardown, stream-rate shifts — against a live system
// (netgraph topology, clustering hierarchy, Top-Down/Bottom-Up planners,
// advertisement registry, IFLOW runtime on the discrete-event clock) and
// checks cross-cutting invariants after every event: hierarchy
// well-formedness, plan/deployment consistency, advertisement liveness,
// path-snapshot freshness, and transport conservation.
//
// Everything derives from one seed: the topology, the workload, the event
// schedule, and every tuple the runtime moves. A failing run therefore
// reproduces exactly from its seed, and the recorded event trace replays
// the history that led to the violation. The paper's figures (5-11)
// evaluate static snapshots; this harness is the correctness backstop for
// the adaptation machinery those figures never touch (PAPER §6).
package chaos

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"

	"hnp/internal/adapt"
	"hnp/internal/ads"
	"hnp/internal/core"
	"hnp/internal/hierarchy"
	"hnp/internal/iflow"
	"hnp/internal/load"
	"hnp/internal/netgraph"
	"hnp/internal/obs"
	"hnp/internal/query"
	"hnp/internal/query/rewrite"
	"hnp/internal/workload"
)

// ProfileRateShift selects the adaptive-control stress schedule: the whole
// query pool deploys upfront, the event mix narrows to live stream-rate
// shifts, link-cost bursts and idle time, and rate shifts hit the live
// source taps only — the catalog the planners consult learns the truth
// exclusively through the controller's windowed calibration. This is the
// schedule the closed-loop controller is validated on.
const ProfileRateShift = "rateshift"

// Config parameterizes one chaos run. Identical configs (seed included)
// produce identical runs, event for event and tuple for tuple.
type Config struct {
	// Seed drives everything: topology, hierarchy, workload, schedule,
	// and the runtime's tuple randomness.
	Seed int64
	// Nodes is the transit-stub network size.
	Nodes int
	// MaxCS is the hierarchy's cluster size cap.
	MaxCS int
	// Streams is the number of base streams in the catalog.
	Streams int
	// Queries is the size of the candidate query pool events draw from.
	Queries int
	// Events is the schedule length.
	Events int
	// MeanStep is the mean virtual seconds advanced before each event
	// (exponentially distributed, so perturbations hit at ragged times).
	MeanStep float64
	// Migrate adds plan-migration churn to the schedule: deployed queries
	// are periodically re-planned against current conditions and the new
	// plan applied as a diff-based migration (iflow.Migrate) rather than a
	// teardown. Off by default so existing seeds replay unchanged.
	Migrate bool
	// Schemas attaches a synthetic per-attribute schema to every catalog
	// stream and runs the logical rewrite pipeline over the pool's
	// predicate-bearing queries (column pruning keyed to the predicate
	// attribute), so operators run at heterogeneous tuple widths and the
	// width-bracket transport invariants are exercised. The pruning step
	// honors the global pushdown kill switch; the schemas themselves do
	// not. Off by default so existing seeds replay unchanged.
	Schemas bool
	// Profile selects the event mix: "" is the default fault/churn
	// schedule; ProfileRateShift is the adaptive-control stress schedule.
	Profile string
	// Adapt, when non-nil, attaches a closed-loop re-optimization
	// controller (internal/adapt) to the run: every pool query is placed
	// under control and the controller's migrations are mirrored into the
	// harness bookkeeping. Only meaningful with ProfileRateShift.
	Adapt *adapt.Config
	// Runtime tunes the IFLOW engine's physical constants.
	Runtime iflow.Config
}

// DefaultConfig returns the standard chaos shape: a 24-node network,
// 8 streams, a pool of 10 queries, 200 events at ~0.4 virtual seconds
// apart.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:     seed,
		Nodes:    24,
		MaxCS:    6,
		Streams:  8,
		Queries:  10,
		Events:   200,
		MeanStep: 0.4,
		Runtime:  iflow.DefaultConfig(),
	}
}

// RateShiftConfig returns the standard adaptive-control stress shape: the
// default topology and pool, 40 events at ~3 virtual seconds apart drawn
// from the rate-shift profile, with the default controller tuning at a
// 15-second control interval. The pacing matters: shifts are regime
// changes that persist for several control intervals (roughly one shift
// per stream per 45 virtual seconds), long enough for a migration's churn
// to pay back — a schedule that re-rolls every rate faster than the
// control period rewards never adapting at all.
func RateShiftConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Profile = ProfileRateShift
	cfg.Events = 40
	cfg.MeanStep = 3.0
	a := adapt.DefaultConfig()
	a.Interval = 15
	cfg.Adapt = &a
	return cfg
}

func (cfg Config) validate() error {
	switch {
	case cfg.Profile != "" && cfg.Profile != ProfileRateShift:
		return fmt.Errorf("chaos: unknown profile %q", cfg.Profile)
	case cfg.Nodes < 8:
		return fmt.Errorf("chaos: need at least 8 nodes, got %d", cfg.Nodes)
	case cfg.MaxCS < 2:
		return fmt.Errorf("chaos: maxCS must be >= 2, got %d", cfg.MaxCS)
	case cfg.Streams < 6:
		return fmt.Errorf("chaos: need at least 6 streams for the workload shape, got %d", cfg.Streams)
	case cfg.Queries < 1:
		return fmt.Errorf("chaos: empty query pool")
	case cfg.Events < 1:
		return fmt.Errorf("chaos: empty schedule")
	case cfg.MeanStep <= 0:
		return fmt.Errorf("chaos: non-positive mean step %g", cfg.MeanStep)
	}
	return nil
}

// horizon is the virtual lifetime of sources: comfortably past the
// expected schedule span so streams stay live through the whole run.
func (cfg Config) horizon() float64 {
	return cfg.MeanStep*float64(cfg.Events)*2 + 30
}

// queryState tracks one pool query through the run.
type queryState int

const (
	stateIdle queryState = iota
	stateDeployed
)

// sinkBase is the delivery baseline monotonicity is checked against.
type sinkBase struct {
	tuples  int64
	bytes   float64
	latency float64
}

// World is one chaos run in progress: the full stack plus the harness's
// own bookkeeping of what should be true.
type World struct {
	cfg   Config
	rng   *rand.Rand // event schedule + parameter draws
	g     *netgraph.Graph
	paths *netgraph.Paths
	// pathsSpare is the retired half of the harness's snapshot ping-pong:
	// link events delta-refresh w.paths into it and demote the old
	// snapshot (released by the hierarchy at RebindRows) to spare.
	pathsSpare *netgraph.Paths
	h          *hierarchy.Hierarchy
	cat        *query.Catalog
	reg        *ads.Registry
	rt         *iflow.Runtime
	pool       []*query.Query
	qByID      map[int]*query.Query
	plans      map[int]*query.PlanNode
	state      map[int]queryState
	live       []bool
	nLive      int
	minLive    int
	horizon    float64

	// tracker is the incremental load ledger, fed diff-aware at every
	// deploy/undeploy/recovery/migration; check() audits it against a
	// from-scratch recompute after every event.
	tracker *load.Tracker
	// ctl is the closed-loop controller (rate-shift profile with
	// Config.Adapt set), nil otherwise.
	ctl *adapt.Controller
	// liveRates is the ground truth the live taps emit at, keyed by
	// stream. Rate-shift profile events update it (and the taps) without
	// touching the catalog; the schedule draws shift factors from it so
	// event generation never depends on what the controller calibrated.
	liveRates map[query.StreamID]float64
	// planHist records each query's plan history (deploy + every
	// controller migration) for A→B→A oscillation detection.
	planHist     map[int][]string
	oscillations int

	trace     []Event
	counts    [9]int
	prev      iflow.Stats
	prevSinks map[int]sinkBase

	// obsReg carries the run's always-armed flight recorder: every causal
	// trace event the stack emits (deploys, calibration windows, gate
	// decisions, migrations, invariant audits) lands in its ring buffer,
	// so a violation's report can be accompanied by the decision history
	// that led to it. Metric collection stays gated on obs.Enabled; only
	// the tracer is armed unconditionally.
	obsReg *obs.Registry
	// forcedErr, when non-empty, makes the next invariant audit report a
	// violation — a test hook for exercising the flight-recorder dump path
	// without needing a real bug.
	forcedErr string
}

// Report summarizes a finished (or violated) run.
type Report struct {
	Seed      int64
	Events    int
	Counts    map[string]int
	Deployed  int
	Delivered int64
	Stats     iflow.Stats
	// Adapt carries the controller's decision counters (zero value when
	// no controller was attached).
	Adapt adapt.Stats
	// Oscillations counts A→B→A plan flips across controller migrations.
	Oscillations int
	Trace        []Event
	// Flight is the flight recorder's retained causal event history at
	// report time (oldest first) — on a violation, the decision chain
	// that led there. Dump with obs.WriteEventsJSONL.
	Flight []obs.Event
}

// TraceString renders the full replayable event trace.
func (r Report) TraceString() string {
	lines := make([]string, len(r.Trace))
	for i, e := range r.Trace {
		lines[i] = e.String()
	}
	return strings.Join(lines, "\n")
}

// New builds a world from the config: transit-stub topology, hierarchy,
// workload (a third of the pool carries a selection predicate so
// containment reuse is exercised under churn), advertisement registry and
// IFLOW runtime, all seeded from cfg.Seed.
func New(cfg Config) (*World, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	buildRng := rand.New(rand.NewSource(cfg.Seed))
	g := netgraph.MustTransitStub(cfg.Nodes, buildRng)
	paths := g.ShortestPaths(netgraph.MetricCost)
	h, err := hierarchy.Build(g, paths, cfg.MaxCS, buildRng)
	if err != nil {
		return nil, err
	}
	wlRng := rand.New(rand.NewSource(cfg.Seed ^ 0x77f00d))
	wl, err := workload.Generate(workload.Default(cfg.Streams, cfg.Queries), cfg.Nodes, wlRng)
	if err != nil {
		return nil, err
	}
	w := &World{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed ^ 0x5eed5)),
		g:         g,
		paths:     paths,
		h:         h,
		cat:       wl.Catalog,
		reg:       ads.NewRegistry(),
		rt:        iflow.New(g, cfg.Runtime, cfg.Seed^0x7f1e),
		qByID:     map[int]*query.Query{},
		plans:     map[int]*query.PlanNode{},
		state:     map[int]queryState{},
		live:      make([]bool, cfg.Nodes),
		nLive:     cfg.Nodes,
		minLive:   max(cfg.MaxCS, cfg.Nodes/2),
		horizon:   cfg.horizon(),
		tracker:   load.NewTracker(),
		liveRates: map[query.StreamID]float64{},
		planHist:  map[int][]string{},
		prevSinks: map[int]sinkBase{},
		obsReg:    obs.NewRegistry(),
	}
	w.obsReg.Tracer().Enable()
	w.rt.BindObs(w.obsReg)
	w.h.BindObs(w.obsReg)
	for i := 0; i < wl.Catalog.NumStreams(); i++ {
		w.liveRates[query.StreamID(i)] = wl.Catalog.Stream(query.StreamID(i)).Rate
	}
	for i := range w.live {
		w.live[i] = true
	}
	if cfg.Schemas {
		// Schema widths come from a dedicated rng so Schemas=false runs
		// replay byte-identically to pre-schema seeds.
		srng := rand.New(rand.NewSource(cfg.Seed ^ 0x5c4e3a))
		for i := 0; i < wl.Catalog.NumStreams(); i++ {
			wl.Catalog.SetSchema(query.StreamID(i), query.Schema{
				{Name: "a", Width: 4 + float64(srng.Intn(13))},
				{Name: "b", Width: 8 + float64(srng.Intn(25))},
				{Name: "c", Width: 16 + float64(srng.Intn(97))},
			})
		}
	}
	// Canonical nested ranges: stricter queries arriving after weaker (or
	// predicate-free) ones over the same streams reuse their operators
	// through residual filters.
	ranges := []query.Range{{Lo: 0, Hi: 0.9}, {Lo: 0.05, Hi: 0.65}, {Lo: 0.1, Hi: 0.5}}
	for i, q := range wl.Queries {
		if i%3 == 1 {
			r := ranges[wlRng.Intn(len(ranges))]
			pq, err := query.NewQueryPred(q.ID, q.Sources, q.Sink,
				query.MustPredSet(query.Pred{Stream: q.Sources[0], Attr: "a", Range: r}))
			if err != nil {
				return nil, err
			}
			q = pq
			if cfg.Schemas && rewrite.Enabled() {
				// Pred queries select only the predicate attribute: column
				// pruning shrinks every source's shipped width, so the run
				// mixes pruned and full-width operators. The projection is
				// fixed (not rng-drawn) to keep the A/B schedule identical
				// with the pipeline on and off.
				proj := rewrite.Projection{
					Cols:      map[query.StreamID][]string{},
					JoinAttrs: map[query.StreamID][]string{},
				}
				for _, sid := range q.Sources {
					proj.Cols[sid] = []string{"a"}
					proj.JoinAttrs[sid] = []string{"a"}
				}
				rewrite.Apply(wl.Catalog, q, proj)
			}
		}
		w.pool = append(w.pool, q)
		w.qByID[q.ID] = q
		w.state[q.ID] = stateIdle
	}
	return w, nil
}

// Tracer exposes the run's always-armed flight recorder — the causal
// event history behind a violation, or the raw material for timeline
// reconstruction in tests.
func (w *World) Tracer() *obs.Tracer { return w.obsReg.Tracer() }

// DumpFlight writes the flight recorder's retained events as JSONL,
// oldest first.
func (w *World) DumpFlight(out io.Writer) error {
	return w.obsReg.Tracer().WriteJSONL(out)
}

// FailNextCheck forces the next invariant audit to report the given
// violation. Test hook: it exercises the violation-to-flight-dump path
// without needing a real bug.
func (w *World) FailNextCheck(msg string) { w.forcedErr = msg }

// Run executes the schedule, checking every invariant after every event,
// then quiesces the simulation (sources end, in-flight tuples drain) and
// performs a final audit including the zero-in-flight conservation check.
// The returned report always carries the trace, violation or not.
func (w *World) Run() (Report, error) {
	if w.cfg.Profile == ProfileRateShift {
		if err := w.startRateShift(); err != nil {
			return w.report(), fmt.Errorf("chaos: seed %d, rate-shift setup: %w", w.cfg.Seed, err)
		}
		if err := w.check(); err != nil {
			return w.report(), fmt.Errorf("chaos: seed %d, after rate-shift setup: %w", w.cfg.Seed, err)
		}
	}
	for i := 0; i < w.cfg.Events; i++ {
		e := w.nextEvent(i)
		if err := w.apply(&e); err != nil {
			w.trace = append(w.trace, e)
			return w.report(), fmt.Errorf("chaos: seed %d, event %s: %w", w.cfg.Seed, e.String(), err)
		}
		w.trace = append(w.trace, e)
		if err := w.check(); err != nil {
			return w.report(), fmt.Errorf("chaos: seed %d, after event %s: %w", w.cfg.Seed, e.String(), err)
		}
	}
	// Quiesce: run sources to the end of their lifetime, then drain every
	// in-flight delivery.
	if now := w.rt.Sim.Now(); now < w.horizon {
		w.rt.RunFor(w.horizon - now)
	}
	w.rt.Sim.Run()
	if err := w.check(); err != nil {
		return w.report(), fmt.Errorf("chaos: seed %d, after quiesce: %w", w.cfg.Seed, err)
	}
	if inFlight := w.rt.InFlight(); inFlight != 0 {
		return w.report(), fmt.Errorf("chaos: seed %d: %d tuples unaccounted for after quiesce (sent %d)",
			w.cfg.Seed, inFlight, w.rt.TuplesSent)
	}
	return w.report(), nil
}

func (w *World) report() Report {
	st := w.rt.Stats()
	var delivered int64
	deployed := 0
	for _, q := range w.pool {
		if s := w.rt.Sink(q.ID); s != nil {
			delivered += s.Tuples
		}
		if w.state[q.ID] == stateDeployed {
			deployed++
		}
	}
	counts := map[string]int{}
	for k, n := range w.counts {
		if n > 0 {
			counts[Kind(k).String()] = n
		}
	}
	r := Report{
		Seed:         w.cfg.Seed,
		Events:       len(w.trace),
		Counts:       counts,
		Deployed:     deployed,
		Delivered:    delivered,
		Stats:        st,
		Oscillations: w.oscillations,
		Trace:        w.trace,
		Flight:       w.obsReg.Tracer().Snapshot(),
	}
	if w.ctl != nil {
		r.Adapt = w.ctl.Stats()
	}
	return r
}

// startRateShift prepares the adaptive-control schedule: the whole pool is
// planned (consuming the schedule rng identically regardless of controller
// policy) and deployed, and — when configured — the controller is attached
// with every query under control.
//
// Each pool query is planned against an EMPTY advertisement registry —
// every deployment stands alone, as if the queries arrived before any
// cross-query optimization ran. The default profile already exercises
// reuse-dense arrival ordering; this profile isolates the re-optimization
// loop, which must discover both kinds of improvement at run time:
// consolidating duplicated work onto advertised intermediates, and
// re-placing operators as the live rates drift. All plans are advertised
// after deployment, so controller re-plans see the full reuse surface.
func (w *World) startRateShift() error {
	for _, q := range w.pool {
		res, _, err := w.planQueryWith(q, ads.NewRegistry())
		if err != nil {
			return fmt.Errorf("planner rejected pool query %d: %w", q.ID, err)
		}
		if err := w.rt.Deploy(q, res.Plan, w.cat, w.horizon); err != nil {
			return fmt.Errorf("runtime rejected plan %s: %w", res.Plan, err)
		}
		w.plans[q.ID] = res.Plan
		w.state[q.ID] = stateDeployed
		w.prevSinks[q.ID] = sinkBase{}
		w.tracker.AddPlan(res.Plan)
		w.planHist[q.ID] = []string{res.Plan.String()}
	}
	for _, q := range w.pool {
		w.reg.AdvertisePlan(q, w.plans[q.ID])
	}
	if w.cfg.Adapt != nil {
		w.ctl = adapt.New(w.rt, w.cat, w.ctlReplan, *w.cfg.Adapt)
		w.ctl.BindObs(w.obsReg)
		w.ctl.OnMigrate = w.onCtlMigrate
		for _, q := range w.pool {
			w.ctl.Track(q, w.plans[q.ID])
		}
		w.ctl.Run(w.horizon)
	}
	return nil
}

// ctlReplan is the controller's re-planner: always Top-Down against
// current (calibrated) conditions and advertisements. It deliberately
// bypasses planQuery — the controller must not consume the schedule rng,
// or its decisions would perturb the event sequence and break cross-policy
// comparability on a shared seed.
//
// The query's own advertisements are withheld from the planner: offered
// its own deployed root, Top-Down always "reuses" it — a plan that reads
// the stream the query already computes, which migrates to a physical
// no-op (the old tree keeps running under the kept-as-leaf root) with
// predicted gain zero. Withholding them forces the planner to state how
// it would compute the query from base streams and OTHER queries'
// materialized intermediates — the comparison that surfaces real
// consolidation and re-placement wins.
func (w *World) ctlReplan(q *query.Query) (*query.PlanNode, error) {
	reg := w.reg.Clone()
	reg.Prune(func(ad ads.Ad) bool { return ad.QueryID != q.ID })
	res, err := core.TopDown(w.h, w.cat, q, reg)
	if err != nil {
		return nil, err
	}
	return res.Plan, nil
}

// onCtlMigrate mirrors a controller migration into the harness
// synchronously: plan table, advertisements, the load ledger (diff-aware
// via the report's LoadDelta), tap rates (operators the migration
// re-created started at catalog rates, which may trail the live truth) and
// the oscillation history.
func (w *World) onCtlMigrate(q *query.Query, old, fresh *query.PlanNode, rep iflow.MigrationReport) {
	w.plans[q.ID] = fresh
	w.reg.AdvertisePlan(q, fresh)
	w.pruneAds()
	w.tracker.ApplyDelta(rep.LoadDelta)
	for _, l := range fresh.Leaves() {
		if l.In.Derived {
			continue
		}
		ids := q.StreamsOf(l.Mask)
		if len(ids) != 1 {
			continue
		}
		if r, ok := w.liveRates[ids[0]]; ok {
			// The tap exists — the plan just deployed it; a failure here
			// would surface as a calibration drift the invariants audit.
			_ = w.rt.SetSourceRate(l.In.Sig, l.Loc, r)
		}
	}
	hist := append(w.planHist[q.ID], fresh.String())
	w.planHist[q.ID] = hist
	if n := len(hist); n >= 3 && hist[n-1] == hist[n-3] && hist[n-1] != hist[n-2] {
		w.oscillations++
	}
}

// nextEvent draws the next schedule entry. Kinds are weighted and gated on
// current state (no failing below the live floor, no arrivals without an
// eligible idle query); parameters are drawn by deterministic scans so the
// schedule is a pure function of the seed.
func (w *World) nextEvent(idx int) Event {
	if w.cfg.Profile == ProfileRateShift {
		return w.nextRateShiftEvent(idx)
	}
	e := Event{Index: idx, Dt: w.rng.ExpFloat64() * w.cfg.MeanStep}
	type choice struct {
		kind   Kind
		weight int
	}
	var choices []choice
	arrivals := w.eligibleArrivals()
	deployed := w.deployedIDs()
	dead := w.deadNodes()
	if len(arrivals) > 0 {
		choices = append(choices, choice{KindQueryArrive, 4})
	}
	if len(deployed) > 0 {
		choices = append(choices, choice{KindQueryUndeploy, 1})
	}
	migratable := w.eligibleMigrations()
	if w.cfg.Migrate && len(migratable) > 0 {
		choices = append(choices, choice{KindQueryMigrate, 3})
	}
	if w.nLive > w.minLive {
		choices = append(choices, choice{KindFailNode, 2})
	}
	if len(dead) > 0 {
		choices = append(choices, choice{KindRecoverNode, 2})
	}
	choices = append(choices, choice{KindLinkCost, 3}, choice{KindRateShift, 2}, choice{KindIdle, 1})
	total := 0
	for _, c := range choices {
		total += c.weight
	}
	pick := w.rng.Intn(total)
	for _, c := range choices {
		if pick < c.weight {
			e.Kind = c.kind
			break
		}
		pick -= c.weight
	}
	switch e.Kind {
	case KindQueryArrive:
		e.Query = arrivals[w.rng.Intn(len(arrivals))]
	case KindQueryUndeploy:
		e.Query = deployed[w.rng.Intn(len(deployed))]
	case KindQueryMigrate:
		e.Query = migratable[w.rng.Intn(len(migratable))]
	case KindFailNode:
		liveNodes := make([]netgraph.NodeID, 0, w.nLive)
		for v, ok := range w.live {
			if ok {
				liveNodes = append(liveNodes, netgraph.NodeID(v))
			}
		}
		e.Node = liveNodes[w.rng.Intn(len(liveNodes))]
	case KindRecoverNode:
		e.Node = dead[w.rng.Intn(len(dead))]
	case KindLinkCost:
		links := w.g.Links()
		l := links[w.rng.Intn(len(links))]
		factor := 0.5 + w.rng.Float64()*1.5
		e.A, e.B = l.A, l.B
		e.Value = clamp(l.Cost*factor, 0.05, 1e6)
	case KindRateShift:
		e.Stream = query.StreamID(w.rng.Intn(w.cat.NumStreams()))
		factor := 0.5 + w.rng.Float64()*1.5
		e.Value = clamp(w.cat.Stream(e.Stream).Rate*factor, 0.5, 200)
	}
	return e
}

// nextRateShiftEvent draws from the adaptive-control mix: live stream-rate
// shifts (weight 5), link-cost bursts (2) and idle time (3). Every
// parameter derives from the schedule rng and harness-owned state
// (liveRates, the graph) — never from anything the controller influences —
// so identical seeds yield identical schedules under every policy mode.
func (w *World) nextRateShiftEvent(idx int) Event {
	e := Event{Index: idx, Dt: w.rng.ExpFloat64() * w.cfg.MeanStep}
	pick := w.rng.Intn(10)
	switch {
	case pick < 5:
		e.Kind = KindRateShift
		e.Stream = query.StreamID(w.rng.Intn(w.cat.NumStreams()))
		// Log-uniform factor in [0.1, 10): shifts are multiplicative and
		// symmetric, so rates wander over two decades instead of creeping.
		factor := math.Pow(10, w.rng.Float64()*2-1)
		e.Value = clamp(w.liveRates[e.Stream]*factor, 0.5, 100)
	case pick < 7:
		e.Kind = KindLinkBurst
		links := w.g.Links()
		n := 2 + w.rng.Intn(3)
		for i := 0; i < n; i++ {
			l := links[w.rng.Intn(len(links))]
			factor := 0.5 + w.rng.Float64()*1.5
			e.Burst = append(e.Burst, iflow.LinkCostUpdate{
				A: l.A, B: l.B, Cost: clamp(l.Cost*factor, 0.05, 1e6),
			})
		}
	default:
		e.Kind = KindIdle
	}
	return e
}

// eligibleArrivals lists idle pool queries whose sources and sink are all
// on live nodes, in pool order.
func (w *World) eligibleArrivals() []int {
	var out []int
	for _, q := range w.pool {
		if w.state[q.ID] != stateIdle || !w.live[q.Sink] {
			continue
		}
		ok := true
		for _, sid := range q.Sources {
			if !w.live[w.cat.Stream(sid).Source] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, q.ID)
		}
	}
	return out
}

// eligibleMigrations lists deployed queries that can be re-planned from
// scratch: all their base sources and their sink on live nodes. A deployed
// query can outlive one of its source nodes when its plan consumes another
// query's derived stream (none of its own operators sat on the dead node);
// such a query keeps running but cannot be re-planned until the source
// recovers, so it is not a migration target.
func (w *World) eligibleMigrations() []int {
	var out []int
	for _, q := range w.pool {
		if w.state[q.ID] != stateDeployed || !w.live[q.Sink] {
			continue
		}
		ok := true
		for _, sid := range q.Sources {
			if !w.live[w.cat.Stream(sid).Source] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, q.ID)
		}
	}
	return out
}

func (w *World) deployedIDs() []int {
	var out []int
	for _, q := range w.pool {
		if w.state[q.ID] == stateDeployed {
			out = append(out, q.ID)
		}
	}
	return out
}

func (w *World) deadNodes() []netgraph.NodeID {
	var out []netgraph.NodeID
	for v, ok := range w.live {
		if !ok {
			out = append(out, netgraph.NodeID(v))
		}
	}
	return out
}

// apply advances virtual time by the event's Dt, then performs the
// perturbation. Errors are invariant violations: every event is chosen to
// be legal, so the stack rejecting or mishandling it is a finding.
func (w *World) apply(e *Event) error {
	w.counts[e.Kind]++
	w.rt.RunFor(e.Dt)
	switch e.Kind {
	case KindIdle:
		return nil
	case KindFailNode:
		return w.applyFail(e)
	case KindRecoverNode:
		w.live[e.Node] = true
		w.nLive++
		if err := w.h.AddNode(e.Node); err != nil {
			return fmt.Errorf("hierarchy rejected rejoin: %w", err)
		}
		return nil
	case KindLinkCost:
		if err := w.rt.UpdateLinkCost(e.A, e.B, e.Value); err != nil {
			return fmt.Errorf("link update rejected: %w", err)
		}
		return w.refreshPathsAndRebind()
	case KindQueryArrive:
		return w.applyArrive(e)
	case KindQueryUndeploy:
		q := w.qByID[e.Query]
		if err := w.rt.Undeploy(q.ID); err != nil {
			return fmt.Errorf("undeploy rejected: %w", err)
		}
		w.tracker.RemovePlan(w.plans[q.ID])
		w.state[q.ID] = stateIdle
		delete(w.plans, q.ID)
		delete(w.prevSinks, q.ID)
		w.pruneAds()
		return nil
	case KindRateShift:
		if w.cfg.Profile == ProfileRateShift {
			return w.applyLiveRateShift(e)
		}
		w.cat.SetRate(e.Stream, e.Value)
		return nil
	case KindQueryMigrate:
		return w.applyMigrate(e)
	case KindLinkBurst:
		if err := w.rt.UpdateLinkCosts(e.Burst); err != nil {
			return fmt.Errorf("link burst rejected: %w", err)
		}
		return w.refreshPathsAndRebind()
	}
	return fmt.Errorf("unknown event kind %d", e.Kind)
}

// refreshPathsAndRebind brings the harness's cost snapshot up to date
// after link churn and rebinds the hierarchy to it. The refresh is
// incremental where the graph's delta log permits, recycling the retired
// snapshot's slabs, and the rebind re-audits only clusters whose members'
// rows the refresh recomputed. If every mutation was a no-op (costs set
// to their current values), nothing moved and nothing is touched.
func (w *World) refreshPathsAndRebind() error {
	old := w.paths
	next, stats := w.paths.RefreshFrom(w.g, w.pathsSpare)
	if next == old {
		return nil
	}
	w.paths = next
	if err := w.h.RebindRows(next, stats.Rows); err != nil {
		return fmt.Errorf("hierarchy rejected fresh paths: %w", err)
	}
	w.pathsSpare = old
	return nil
}

// applyLiveRateShift retunes the live taps covering a stream without
// touching the catalog: the planning model may only learn the new rate
// through the controller's windowed calibration — the closed loop under
// test. Taps are deduplicated (queries share them) and recorded in the
// trace note.
func (w *World) applyLiveRateShift(e *Event) error {
	w.liveRates[e.Stream] = e.Value
	seen := map[string]bool{}
	taps := 0
	for _, qid := range w.deployedIDs() {
		q := w.qByID[qid]
		for _, l := range w.plans[qid].Leaves() {
			if l.In.Derived {
				continue
			}
			ids := q.StreamsOf(l.Mask)
			if len(ids) != 1 || ids[0] != e.Stream {
				continue
			}
			key := fmt.Sprintf("%s@%d", l.In.Sig, l.Loc)
			if seen[key] {
				continue
			}
			seen[key] = true
			if err := w.rt.SetSourceRate(l.In.Sig, l.Loc, e.Value); err != nil {
				return fmt.Errorf("live rate shift rejected: %w", err)
			}
			taps++
		}
	}
	e.Note = fmt.Sprintf("taps=%d", taps)
	return nil
}

func (w *World) applyFail(e *Event) error {
	affected := w.rt.FailNode(e.Node)
	if err := w.h.RemoveNode(e.Node); err != nil {
		return fmt.Errorf("hierarchy rejected removal: %w", err)
	}
	w.live[e.Node] = false
	w.nLive--
	w.pruneAds()
	if len(affected) == 0 {
		e.Note = "affected=none"
		return nil
	}
	// Snapshot the affected queries' booked plans: RecoverQueries rewrites
	// w.plans in place, and the ledger must release exactly what was
	// booked, not the recovered replacement.
	oldPlans := make(map[int]*query.PlanNode, len(affected))
	for _, qid := range affected {
		oldPlans[qid] = w.plans[qid]
	}
	recovered, failed, err := w.rt.RecoverQueries(affected, w.qByID, w.plans, w.cat, w.replan, w.horizon)
	if err != nil {
		return fmt.Errorf("recovery aborted: %w", err)
	}
	for _, qid := range failed {
		w.tracker.RemovePlan(oldPlans[qid])
		w.state[qid] = stateIdle
		delete(w.plans, qid)
		delete(w.prevSinks, qid)
	}
	for _, qid := range recovered {
		w.tracker.RemovePlan(oldPlans[qid])
		w.tracker.AddPlan(w.plans[qid])
		w.reg.AdvertisePlan(w.qByID[qid], w.plans[qid])
	}
	w.pruneAds()
	e.Note = fmt.Sprintf("affected=%s recovered=%s failed=%s",
		intList(affected), intList(recovered), intList(failed))
	return nil
}

func (w *World) applyArrive(e *Event) error {
	q := w.qByID[e.Query]
	res, algo, err := w.planQuery(q)
	e.Algo = algo
	if err != nil {
		return fmt.Errorf("planner rejected eligible query %d: %w", q.ID, err)
	}
	if err := w.rt.Deploy(q, res.Plan, w.cat, w.horizon); err != nil {
		return fmt.Errorf("runtime rejected plan %s: %w", res.Plan, err)
	}
	w.reg.AdvertisePlan(q, res.Plan)
	w.plans[q.ID] = res.Plan
	w.state[q.ID] = stateDeployed
	w.prevSinks[q.ID] = sinkBase{} // Deploy resets delivery statistics
	w.tracker.AddPlan(res.Plan)
	return nil
}

// applyMigrate re-plans a deployed query against current conditions and
// applies the fresh plan as a diff-based migration. The query's delivery
// baseline is deliberately NOT reset: Migrate must carry sink statistics
// natively, so the monotonicity invariant now also polices migrations.
func (w *World) applyMigrate(e *Event) error {
	q := w.qByID[e.Query]
	res, algo, err := w.planQuery(q)
	e.Algo = algo
	if err != nil {
		return fmt.Errorf("planner rejected deployed query %d: %w", q.ID, err)
	}
	rep, err := w.rt.Migrate(q, res.Plan, w.cat, w.horizon)
	if err != nil {
		return fmt.Errorf("migration rejected plan %s: %w", res.Plan, err)
	}
	w.tracker.ApplyDelta(rep.LoadDelta)
	w.plans[q.ID] = res.Plan
	w.reg.AdvertisePlan(q, res.Plan)
	w.pruneAds()
	e.Note = fmt.Sprintf("kept=%d created=%d retired=%d moved=%d rewired=%d",
		rep.Kept, rep.Created, rep.Retired, rep.Moved, rep.Rewired)
	return nil
}

// planQuery runs one of the paper's hierarchy planners, chosen by the
// schedule rng, against current conditions and advertisements.
func (w *World) planQuery(q *query.Query) (core.Result, string, error) {
	return w.planQueryWith(q, w.reg)
}

// planQueryWith plans against an explicit registry, consuming the schedule
// rng exactly like planQuery — callers that must not see advertisements
// (the rate-shift profile's independent arrivals) pass an empty one.
func (w *World) planQueryWith(q *query.Query, reg *ads.Registry) (core.Result, string, error) {
	if w.rng.Intn(2) == 0 {
		res, err := core.TopDown(w.h, w.cat, q, reg)
		return res, "top-down", err
	}
	res, err := core.BottomUp(w.h, w.cat, q, reg)
	return res, "bottom-up", err
}

// replan is the middleware's re-planning hook for RecoverQueries: it
// retracts advertisements orphaned by the teardown that precedes each
// re-plan, refuses queries whose sources or sink are dead, and otherwise
// plans against the surviving network.
func (w *World) replan(q *query.Query) (*query.PlanNode, error) {
	w.pruneAds()
	if !w.live[q.Sink] {
		return nil, fmt.Errorf("sink node %d is down", q.Sink)
	}
	for _, sid := range q.Sources {
		if src := w.cat.Stream(sid).Source; !w.live[src] {
			return nil, fmt.Errorf("source node %d of stream %d is down", src, sid)
		}
	}
	res, _, err := w.planQuery(q)
	if err != nil {
		return nil, err
	}
	return res.Plan, nil
}

// pruneAds retracts every advertisement whose operator the runtime no
// longer hosts, so planners are never offered streams that stopped
// existing.
func (w *World) pruneAds() {
	w.reg.Prune(func(ad ads.Ad) bool {
		return w.rt.Operator(ad.Sig, ad.Node) != nil
	})
}

func intList(xs []int) string {
	if len(xs) == 0 {
		return "none"
	}
	parts := make([]string, len(xs))
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	for i, x := range sorted {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, ",")
}

func clamp(v, lo, hi float64) float64 {
	return min(max(v, lo), hi)
}
