package chaos

import (
	"fmt"

	"hnp/internal/adapt"
)

// PolicyOutcome is one policy's result on a shared rate-shift schedule.
type PolicyOutcome struct {
	Mode   adapt.Mode
	Report Report
}

// Bytes is the headline metric: total bytes moved over links, transport
// and migration state shipping included.
func (o PolicyOutcome) Bytes() float64 { return o.Report.Stats.TotalBytes }

// CompareAdaptPolicies runs the same rate-shift schedule three times from
// identical seeds — never-migrate, always-remigrate, and the gated
// controller — and returns the outcomes in that order. All three attach a
// controller (measurement and re-planning overhead are identical; only the
// migration decision differs) and all three see byte-identical event
// schedules: the schedule rng is insulated from every controller decision.
// This is the validation harness for the closed-loop controller — it must
// strictly beat both baselines on total bytes with zero oscillation.
func CompareAdaptPolicies(cfg Config) ([3]PolicyOutcome, error) {
	var out [3]PolicyOutcome
	if cfg.Profile != ProfileRateShift {
		return out, fmt.Errorf("chaos: CompareAdaptPolicies needs Profile=%q, got %q", ProfileRateShift, cfg.Profile)
	}
	base := adapt.DefaultConfig()
	if cfg.Adapt != nil {
		base = *cfg.Adapt
	}
	modes := [3]adapt.Mode{adapt.ModeNever, adapt.ModeAlways, adapt.ModeController}
	for i, m := range modes {
		c := cfg
		a := base
		a.Mode = m
		c.Adapt = &a
		w, err := New(c)
		if err != nil {
			return out, err
		}
		rep, err := w.Run()
		out[i] = PolicyOutcome{Mode: m, Report: rep}
		if err != nil {
			// The partial outcome stays in out so callers can dump the
			// failing run's flight recorder.
			return out, fmt.Errorf("mode %d: %w", m, err)
		}
	}
	return out, nil
}
