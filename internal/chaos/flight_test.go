package chaos

import (
	"bytes"
	"strings"
	"testing"

	"hnp/internal/adapt"
	"hnp/internal/obs"
)

// TestFlightCausalChainReconstruction is the flight recorder's acceptance
// test: a controller-driven rate-shift run is dumped as JSONL, parsed
// back, and for every adapted query the full causal chain is rebuilt by
// walking parent IDs — migration_applied ← gate decisions (all passing,
// drift first) ← the calibration_window measurement that started the
// control step. Any break in the parent links, any cross-query mixup, or
// any gate emitted out of order fails here.
func TestFlightCausalChainReconstruction(t *testing.T) {
	cfg := RateShiftConfig(3)
	a := *cfg.Adapt
	a.Mode = adapt.ModeController
	cfg.Adapt = &a
	w, err := New(cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	rep, err := w.Run()
	if err != nil {
		t.Fatalf("%v\ntrace:\n%s", err, rep.TraceString())
	}
	if rep.Adapt.Migrations == 0 {
		t.Fatal("seed 3 no longer migrates; pick another pinned seed")
	}

	var buf bytes.Buffer
	if err := w.DumpFlight(&buf); err != nil {
		t.Fatalf("dump: %v", err)
	}
	events, err := obs.ParseJSONL(&buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	byID := map[uint64]obs.Event{}
	for _, e := range events {
		byID[e.ID] = e
	}

	chains := 0
	for _, e := range events {
		if e.Kind != obs.KindMigrationApplied || e.Query < 0 {
			continue
		}
		qid := e.Query
		trace := obs.QueryTrace(qid)
		if e.Trace != trace {
			t.Fatalf("migration #%d: trace %d, want %d for query %d", e.ID, e.Trace, trace, qid)
		}
		// Walk the parent links back to the measurement root.
		var gates []string
		cur := e
		for cur.Parent != 0 {
			p, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("event #%d names parent #%d which is not in the dump", cur.ID, cur.Parent)
			}
			if p.ID >= cur.ID {
				t.Fatalf("parent #%d does not precede child #%d", p.ID, cur.ID)
			}
			if p.Query != qid || p.Trace != trace {
				t.Fatalf("causal chain of query %d crossed into query %d (event #%d)", qid, p.Query, p.ID)
			}
			switch p.Kind {
			case obs.KindGateDecision:
				if !p.Pass {
					t.Fatalf("migration #%d descends from a suppressing gate %q (#%d)", e.ID, p.Gate, p.ID)
				}
				gates = append(gates, p.Gate)
			case obs.KindCalibrationWindow:
				if p.Parent != 0 {
					t.Fatalf("calibration window #%d is not a root (parent #%d)", p.ID, p.Parent)
				}
			default:
				t.Fatalf("unexpected kind %v in causal chain of migration #%d", p.Kind, e.ID)
			}
			cur = p
		}
		if cur.Kind != obs.KindCalibrationWindow {
			t.Fatalf("migration #%d chain ends at %v, want calibration_window", e.ID, cur.Kind)
		}
		if len(gates) == 0 {
			t.Fatalf("migration #%d has no gate decisions between it and the measurement", e.ID)
		}
		// Gates were collected child-to-parent, so drift is last.
		if gates[len(gates)-1] != "drift" {
			t.Fatalf("migration #%d: first gate is %q, want drift (gates child-to-parent: %v)",
				e.ID, gates[len(gates)-1], gates)
		}
		chains++
	}
	if chains != rep.Adapt.Migrations {
		t.Fatalf("reconstructed %d causal chains, controller reports %d migrations", chains, rep.Adapt.Migrations)
	}
}

// TestFlightDumpOnForcedViolation exercises the violation-to-forensics
// path without a real bug: a forced audit failure must abort the run,
// and the report's flight recording must end in the failing
// invariant_checked verdict carrying the violation text.
func TestFlightDumpOnForcedViolation(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Events = 5
	w, err := New(cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	w.FailNextCheck("synthetic ledger hole")
	rep, err := w.Run()
	if err == nil {
		t.Fatal("forced violation did not fail the run")
	}
	if !strings.Contains(err.Error(), "synthetic ledger hole") {
		t.Fatalf("violation text lost: %v", err)
	}
	if len(rep.Flight) == 0 {
		t.Fatal("violated run's report carries no flight recording")
	}
	last := rep.Flight[len(rep.Flight)-1]
	if last.Kind != obs.KindInvariantChecked || last.Pass {
		t.Fatalf("flight ends in %v pass=%v, want a failing invariant_checked", last.Kind, last.Pass)
	}
	if !strings.Contains(last.Detail, "synthetic ledger hole") {
		t.Fatalf("failing verdict detail = %q, want the violation text", last.Detail)
	}
	// Dumping and re-parsing the recording preserves the verdict.
	var buf bytes.Buffer
	if err := obs.WriteEventsJSONL(&buf, rep.Flight); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rep.Flight) || back[len(back)-1] != last {
		t.Fatal("flight dump did not round-trip")
	}
}

// TestFlightRecordsPassingAudits pins the always-on property: an
// ordinary, healthy run still records one invariant_checked verdict per
// audited event, so post-mortems of later failures can see how long the
// system had been healthy.
func TestFlightRecordsPassingAudits(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Events = 10
	w, err := New(cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	rep, err := w.Run()
	if err != nil {
		t.Fatalf("%v\ntrace:\n%s", err, rep.TraceString())
	}
	audits := 0
	for _, e := range rep.Flight {
		if e.Kind == obs.KindInvariantChecked {
			if !e.Pass {
				t.Fatalf("healthy run recorded a failing audit: %s", e.Detail)
			}
			audits++
		}
	}
	// One audit per event plus the post-quiesce one.
	if want := cfg.Events + 1; audits != want {
		t.Fatalf("recorded %d audits, want %d", audits, want)
	}
}
