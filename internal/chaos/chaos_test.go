package chaos

import (
	"testing"
)

// TestChaos runs the full schedule across many seeds: every event is an
// adversarial perturbation and every invariant is checked after each one.
// Any violation fails with the seed and the replayable trace.
func TestChaos(t *testing.T) {
	seeds, events := 20, 200
	if testing.Short() {
		seeds, events = 6, 80
	}
	for s := 0; s < seeds; s++ {
		seed := int64(s + 1)
		cfg := DefaultConfig(seed)
		cfg.Events = events
		w, err := New(cfg)
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		rep, err := w.Run()
		if err != nil {
			t.Errorf("%v\ntrace:\n%s", err, rep.TraceString())
			continue
		}
		if rep.Events != events {
			t.Errorf("seed %d: ran %d events, want %d", seed, rep.Events, events)
		}
	}
}

// TestChaosDeterministic runs the same seed twice and demands identical
// histories: the event trace, the transport statistics, and the delivered
// totals must match to the last tuple — otherwise a failing seed would not
// reproduce.
func TestChaosDeterministic(t *testing.T) {
	run := func() Report {
		cfg := DefaultConfig(42)
		cfg.Events = 120
		w, err := New(cfg)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		rep, err := w.Run()
		if err != nil {
			t.Fatalf("%v\ntrace:\n%s", err, rep.TraceString())
		}
		return rep
	}
	a, b := run(), run()
	if a.TraceString() != b.TraceString() {
		t.Fatalf("same seed, different traces:\n--- first\n%s\n--- second\n%s", a.TraceString(), b.TraceString())
	}
	if a.Stats != b.Stats {
		t.Fatalf("same seed, different stats: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.Delivered != b.Delivered {
		t.Fatalf("same seed, different deliveries: %d vs %d", a.Delivered, b.Delivered)
	}
}

// TestChaosMigration runs schedules with migration churn enabled: deployed
// queries are repeatedly re-planned and migrated diff-wise while failures,
// recoveries and cost drift keep hitting the stack. Every invariant —
// including sink-statistic monotonicity across migrations, the
// plan-bookkeeping mirror, and the zero-in-flight ledger after quiesce —
// must hold, and migrations must actually occur.
func TestChaosMigration(t *testing.T) {
	seeds, events := 12, 200
	if testing.Short() {
		seeds, events = 4, 100
	}
	migrates := 0
	for s := 0; s < seeds; s++ {
		seed := int64(s + 101)
		cfg := DefaultConfig(seed)
		cfg.Events = events
		cfg.Migrate = true
		w, err := New(cfg)
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		rep, err := w.Run()
		if err != nil {
			t.Errorf("%v\ntrace:\n%s", err, rep.TraceString())
			continue
		}
		migrates += rep.Counts["query-migrate"]
	}
	if migrates == 0 {
		t.Error("migration churn enabled but no migration was ever scheduled")
	}
}

// TestChaosMigrationDeterministic replays one migration-churn seed twice:
// migrations involve rewiring live operators, and any map-ordering leak in
// that path would show up as diverging traces or tuple counts.
func TestChaosMigrationDeterministic(t *testing.T) {
	run := func() Report {
		cfg := DefaultConfig(55)
		cfg.Events = 120
		cfg.Migrate = true
		w, err := New(cfg)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		rep, err := w.Run()
		if err != nil {
			t.Fatalf("%v\ntrace:\n%s", err, rep.TraceString())
		}
		return rep
	}
	a, b := run(), run()
	if a.TraceString() != b.TraceString() {
		t.Fatalf("same seed, different traces:\n--- first\n%s\n--- second\n%s", a.TraceString(), b.TraceString())
	}
	if a.Stats != b.Stats {
		t.Fatalf("same seed, different stats: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.Delivered != b.Delivered {
		t.Fatalf("same seed, different deliveries: %d vs %d", a.Delivered, b.Delivered)
	}
}

// TestChaosLiveness guards against a harness that vacuously passes by
// never moving data: a standard run must deploy queries, transfer tuples
// across links, and deliver tuples to sinks.
func TestChaosLiveness(t *testing.T) {
	cfg := DefaultConfig(7)
	if testing.Short() {
		cfg.Events = 80
	}
	w, err := New(cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	rep, err := w.Run()
	if err != nil {
		t.Fatalf("%v\ntrace:\n%s", err, rep.TraceString())
	}
	if rep.Counts["query-arrive"] == 0 {
		t.Error("no query ever arrived")
	}
	if rep.Counts["fail-node"] == 0 {
		t.Error("no node ever failed")
	}
	if rep.Stats.TuplesTransferred == 0 {
		t.Error("no tuple ever crossed a link")
	}
	if rep.Delivered == 0 {
		t.Error("no tuple was ever delivered to a sink")
	}
	if rep.Stats.TuplesInFlight != 0 {
		t.Errorf("%d tuples still in flight after quiesce", rep.Stats.TuplesInFlight)
	}
}
