package chaos

import (
	"testing"

	"hnp/internal/adapt"
)

// TestAdaptControllerBeatsBaselines is the closed-loop controller's
// headline validation: on pinned rate-shift seeds, the gated controller
// must strictly beat BOTH baselines — never-migrate and always-remigrate —
// on total bytes moved over links (transport plus migration state
// shipping), while migrating at least once (the win must not be vacuous)
// and never oscillating (no A→B→A plan sequence on any query). All three
// policies replay byte-identical event schedules from the shared seed, so
// the comparison isolates exactly the migration decision. Every invariant
// (load ledger included) is audited after every event inside Run.
func TestAdaptControllerBeatsBaselines(t *testing.T) {
	seeds := []int64{3, 6, 8, 9}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		out, err := CompareAdaptPolicies(RateShiftConfig(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		never, always, ctl := out[0], out[1], out[2]
		if never.Mode != adapt.ModeNever || always.Mode != adapt.ModeAlways || ctl.Mode != adapt.ModeController {
			t.Fatalf("seed %d: outcomes out of order: %v %v %v", seed, never.Mode, always.Mode, ctl.Mode)
		}
		if never.Report.Adapt.Migrations != 0 {
			t.Errorf("seed %d: never-migrate baseline migrated %d times", seed, never.Report.Adapt.Migrations)
		}
		if ctl.Report.Adapt.Migrations == 0 {
			t.Errorf("seed %d: controller never migrated — the win would be vacuous", seed)
		}
		if ctl.Report.Oscillations != 0 {
			t.Errorf("seed %d: controller oscillated %d times", seed, ctl.Report.Oscillations)
		}
		if !(ctl.Bytes() < never.Bytes()) {
			t.Errorf("seed %d: controller %.0f bytes does not strictly beat never-migrate %.0f",
				seed, ctl.Bytes(), never.Bytes())
		}
		if !(ctl.Bytes() < always.Bytes()) {
			t.Errorf("seed %d: controller %.0f bytes does not strictly beat always-remigrate %.0f",
				seed, ctl.Bytes(), always.Bytes())
		}
	}
}

// TestAdaptAntiOscillationPin pins one rate-shift seed exactly: the
// controller's migration count, total bytes, and zero-oscillation property
// are asserted to the digit. Any change to the gate chain, the marginal
// byte estimator, the calibration windows, or the schedule generator that
// alters this run's decisions shows up here as a diff to investigate, not
// as silent drift.
func TestAdaptAntiOscillationPin(t *testing.T) {
	cfg := RateShiftConfig(3)
	a := *cfg.Adapt
	a.Mode = adapt.ModeController
	cfg.Adapt = &a
	w, err := New(cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	rep, err := w.Run()
	if err != nil {
		t.Fatalf("%v\ntrace:\n%s", err, rep.TraceString())
	}
	if rep.Oscillations != 0 {
		t.Errorf("oscillations = %d, want 0", rep.Oscillations)
	}
	if got, want := rep.Adapt.Migrations, 8; got != want {
		t.Errorf("migrations = %d, want exactly %d", got, want)
	}
	if got, want := rep.Stats.TotalBytes, 15939700.0; got != want {
		t.Errorf("TotalBytes = %.0f, want exactly %.0f", got, want)
	}
}

// TestAdaptRateShiftDeterministic replays one controller-driven rate-shift
// seed twice: the control loop (windowed measurement, calibration,
// migration decisions) must be fully deterministic — identical traces,
// transport statistics, controller decisions and deliveries — or a failing
// seed would not reproduce.
func TestAdaptRateShiftDeterministic(t *testing.T) {
	run := func() Report {
		cfg := RateShiftConfig(9)
		a := *cfg.Adapt
		a.Mode = adapt.ModeController
		cfg.Adapt = &a
		w, err := New(cfg)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		rep, err := w.Run()
		if err != nil {
			t.Fatalf("%v\ntrace:\n%s", err, rep.TraceString())
		}
		return rep
	}
	a, b := run(), run()
	if a.TraceString() != b.TraceString() {
		t.Fatalf("same seed, different traces:\n--- first\n%s\n--- second\n%s", a.TraceString(), b.TraceString())
	}
	if a.Stats != b.Stats {
		t.Fatalf("same seed, different stats: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.Adapt != b.Adapt {
		t.Fatalf("same seed, different controller decisions: %+v vs %+v", a.Adapt, b.Adapt)
	}
	if a.Delivered != b.Delivered {
		t.Fatalf("same seed, different deliveries: %d vs %d", a.Delivered, b.Delivered)
	}
}
