package chaos

import (
	"fmt"
	"math"

	"hnp/internal/netgraph"
	"hnp/internal/obs"
)

// check runs the full invariant audit and records its verdict in the
// flight recorder: a passing audit leaves one KindInvariantChecked event
// (Pass=true), a violation leaves the same event carrying the violation
// text — the last entry in a dumped flight, preceded by the causal
// history that led there.
func (w *World) check() error {
	err := w.audit()
	if w.forcedErr != "" {
		if err == nil {
			err = fmt.Errorf("forced invariant violation: %s", w.forcedErr)
		}
		w.forcedErr = ""
	}
	if tr := w.obsReg.Tracer(); tr.On() {
		ev := obs.Event{
			Kind: obs.KindInvariantChecked, Query: obs.NoID, Node: obs.NoID,
			VTime: w.rt.Sim.Now(), Pass: err == nil,
		}
		if err != nil {
			ev.Detail = err.Error()
		}
		tr.Emit(ev)
	}
	return err
}

// audit checks every cross-cutting invariant after an event has fully
// applied. Each layer's internal audit runs first, then the properties
// that span layers: hierarchy membership must mirror node liveness,
// every path snapshot must be fresh for the current graph, the runtime's
// deployed set must agree with the harness's bookkeeping, advertisements
// must name running operators on live nodes, and all cumulative counters
// — global transport statistics and per-query delivery statistics — must
// be monotone across the run (recoveries preserve history; only an
// explicit re-arrival resets a query's baseline).
func (w *World) audit() error {
	// Layer-internal audits.
	if err := w.h.CheckInvariants(); err != nil {
		return err
	}
	liveFn := func(v netgraph.NodeID) bool { return w.live[v] }
	if err := w.rt.CheckInvariants(liveFn); err != nil {
		return err
	}

	// Hierarchy membership mirrors liveness exactly: a failed node is out,
	// a recovered node is back in.
	for v, ok := range w.live {
		if w.h.Contains(netgraph.NodeID(v)) != ok {
			return fmt.Errorf("node %d live=%v but hierarchy membership=%v",
				v, ok, w.h.Contains(netgraph.NodeID(v)))
		}
	}

	// No layer may hold a stale routing snapshot after link churn.
	if w.paths.StaleFor(w.g) {
		return fmt.Errorf("harness path snapshot is stale for graph version %d", w.g.Version())
	}
	if w.h.Paths().StaleFor(w.g) {
		return fmt.Errorf("hierarchy path snapshot is stale for graph version %d", w.g.Version())
	}
	if w.rt.Cost.StaleFor(w.g) {
		return fmt.Errorf("runtime cost snapshot is stale for graph version %d", w.g.Version())
	}
	if w.rt.Delay.StaleFor(w.g) {
		return fmt.Errorf("runtime delay snapshot is stale for graph version %d", w.g.Version())
	}

	// The runtime's deployed set is exactly the harness's.
	want := w.deployedIDs()
	got := w.rt.DeployedQueries()
	if len(want) != len(got) {
		return fmt.Errorf("runtime deploys %v, harness expects %v", got, want)
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("runtime deploys %v, harness expects %v", got, want)
		}
	}

	// Each deployed query runs exactly the plan the harness last installed
	// (via Deploy or Migrate) — migrations must not desync the bookkeeping.
	for _, qid := range want {
		if w.rt.DeployedPlan(qid) != w.plans[qid] {
			return fmt.Errorf("query %d: runtime's deployed plan diverges from the harness's", qid)
		}
	}

	// The incremental load ledger equals a from-scratch recompute over the
	// deployed plans: diff-aware migration accounting (ApplyDelta) must
	// leave exactly the same per-node load as tearing the books down and
	// re-adding every plan would — no holes, no double counting, no
	// residue.
	expect := map[netgraph.NodeID]float64{}
	for _, qid := range want {
		for _, op := range w.plans[qid].Operators() {
			expect[op.Loc] += op.InputRate()
		}
	}
	snap := w.tracker.Snapshot()
	for v, r := range expect {
		if diff := math.Abs(snap[v] - r); diff > 1e-6*math.Max(1, math.Abs(r)) {
			return fmt.Errorf("load ledger drift at node %d: ledger %g, recompute %g", v, snap[v], r)
		}
	}
	for v, r := range snap {
		if _, ok := expect[v]; !ok && math.Abs(r) > 1e-9 {
			return fmt.Errorf("load ledger books %g on node %d no deployed plan loads", r, v)
		}
	}

	// Every advertisement names an operator the runtime actually hosts, on
	// a live node — planners are never offered dead streams.
	for _, ad := range w.reg.All() {
		if !w.live[ad.Node] {
			return fmt.Errorf("advertisement %s@%d survives on a dead node", ad.Sig, ad.Node)
		}
		if w.rt.Operator(ad.Sig, ad.Node) == nil {
			return fmt.Errorf("advertisement %s@%d names an operator the runtime does not host", ad.Sig, ad.Node)
		}
	}

	// Global counters never move backwards.
	st := w.rt.Stats()
	switch {
	case st.TuplesTransferred < w.prev.TuplesTransferred:
		return fmt.Errorf("TuplesTransferred regressed %d -> %d", w.prev.TuplesTransferred, st.TuplesTransferred)
	case st.TuplesSent < w.prev.TuplesSent:
		return fmt.Errorf("TuplesSent regressed %d -> %d", w.prev.TuplesSent, st.TuplesSent)
	case st.TuplesDropped < w.prev.TuplesDropped:
		return fmt.Errorf("TuplesDropped regressed %d -> %d", w.prev.TuplesDropped, st.TuplesDropped)
	case st.WindowExpired < w.prev.WindowExpired:
		return fmt.Errorf("WindowExpired regressed %d -> %d", w.prev.WindowExpired, st.WindowExpired)
	case st.TotalBytes < w.prev.TotalBytes:
		return fmt.Errorf("TotalBytes regressed %g -> %g", w.prev.TotalBytes, st.TotalBytes)
	case st.TotalCost < w.prev.TotalCost:
		return fmt.Errorf("TotalCost regressed %g -> %g", w.prev.TotalCost, st.TotalCost)
	case st.Elapsed < w.prev.Elapsed:
		return fmt.Errorf("virtual clock ran backwards %g -> %g", w.prev.Elapsed, st.Elapsed)
	}
	w.prev = st

	// Per-query delivery statistics are monotone from each query's
	// baseline: zero at arrival, carried across failure recovery.
	for _, qid := range want {
		s := w.rt.Sink(qid)
		if s == nil {
			return fmt.Errorf("deployed query %d has no sink statistics", qid)
		}
		base := w.prevSinks[qid]
		if s.Tuples < base.tuples || s.Bytes < base.bytes || s.LatencySum < base.latency {
			return fmt.Errorf("query %d delivery statistics regressed: %d/%g/%g below baseline %d/%g/%g",
				qid, s.Tuples, s.Bytes, s.LatencySum, base.tuples, base.bytes, base.latency)
		}
		w.prevSinks[qid] = sinkBase{tuples: s.Tuples, bytes: s.Bytes, latency: s.LatencySum}
	}
	return nil
}
