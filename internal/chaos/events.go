package chaos

import (
	"fmt"
	"strings"

	"hnp/internal/iflow"
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// Kind identifies one class of adversarial event the harness injects.
type Kind int

const (
	// KindIdle advances virtual time without perturbing anything (tuples
	// keep flowing; windows expire; nothing structural changes).
	KindIdle Kind = iota
	// KindFailNode crashes a live node: its operators die, it leaves the
	// hierarchy, and every affected query is immediately re-planned
	// against the surviving network (queries that cannot be re-planned —
	// dead source or sink — are left undeployed).
	KindFailNode
	// KindRecoverNode brings a previously failed node back: it rejoins
	// the hierarchy via the paper's join protocol and becomes usable for
	// future placements and sources.
	KindRecoverNode
	// KindLinkCost drifts one link's per-byte cost; routing snapshots are
	// refreshed and the hierarchy re-binds to fresh paths.
	KindLinkCost
	// KindQueryArrive plans (Top-Down or Bottom-Up, chosen per event) and
	// deploys one idle query from the pool, advertising its operators.
	KindQueryArrive
	// KindQueryUndeploy tears one deployed query down and retracts
	// advertisements that no longer correspond to a running operator.
	KindQueryUndeploy
	// KindRateShift drifts one base stream's catalog rate, shifting the
	// model future plans are costed against.
	KindRateShift
	// KindQueryMigrate re-plans one deployed query (Top-Down or Bottom-Up,
	// chosen per event) and applies the new plan as a diff-based migration:
	// operators shared by both plans keep running, only changed subtrees
	// churn, and delivery statistics must carry across without a reset.
	// Only scheduled when Config.Migrate is set.
	KindQueryMigrate
	// KindLinkBurst drifts several links' per-byte costs at once through
	// the runtime's batched UpdateLinkCosts (one all-pairs refresh for the
	// whole burst), then refreshes the harness snapshot and re-binds the
	// hierarchy. Only scheduled by the rate-shift profile.
	KindLinkBurst
)

// String names the kind for traces.
func (k Kind) String() string {
	switch k {
	case KindIdle:
		return "idle"
	case KindFailNode:
		return "fail-node"
	case KindRecoverNode:
		return "recover-node"
	case KindLinkCost:
		return "link-cost"
	case KindQueryArrive:
		return "query-arrive"
	case KindQueryUndeploy:
		return "query-undeploy"
	case KindRateShift:
		return "rate-shift"
	case KindQueryMigrate:
		return "query-migrate"
	case KindLinkBurst:
		return "link-burst"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one schedule entry. Events are generated deterministically from
// the run's seed, so a recorded trace replays the run exactly.
type Event struct {
	// Index is the 0-based position in the schedule.
	Index int
	// Dt is the virtual time advanced before the event applies.
	Dt float64
	// Kind selects the perturbation.
	Kind Kind
	// Node is the failed/recovered node (KindFailNode, KindRecoverNode).
	Node netgraph.NodeID
	// A, B name the perturbed link (KindLinkCost).
	A, B netgraph.NodeID
	// Burst carries the batch of link-cost changes (KindLinkBurst).
	Burst []iflow.LinkCostUpdate
	// Value carries the new link cost or stream rate.
	Value float64
	// Stream is the shifted stream (KindRateShift).
	Stream query.StreamID
	// Query is the arriving/undeploying query ID.
	Query int
	// Algo names the planner used for an arrival ("top-down"/"bottom-up").
	Algo string
	// Note records the outcome (affected/recovered/failed query IDs, ...),
	// filled during application.
	Note string
}

// String renders one replayable trace line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%03d +%.4fs %s", e.Index, e.Dt, e.Kind)
	switch e.Kind {
	case KindFailNode, KindRecoverNode:
		fmt.Fprintf(&b, " node=%d", e.Node)
	case KindLinkCost:
		fmt.Fprintf(&b, " link=%d-%d cost=%.4f", e.A, e.B, e.Value)
	case KindQueryArrive, KindQueryMigrate:
		fmt.Fprintf(&b, " query=%d algo=%s", e.Query, e.Algo)
	case KindQueryUndeploy:
		fmt.Fprintf(&b, " query=%d", e.Query)
	case KindRateShift:
		fmt.Fprintf(&b, " stream=%d rate=%.4f", e.Stream, e.Value)
	case KindLinkBurst:
		parts := make([]string, len(e.Burst))
		for i, u := range e.Burst {
			parts[i] = fmt.Sprintf("%d-%d=%.4f", u.A, u.B, u.Cost)
		}
		fmt.Fprintf(&b, " links=[%s]", strings.Join(parts, " "))
	}
	if e.Note != "" {
		fmt.Fprintf(&b, " [%s]", e.Note)
	}
	return b.String()
}
