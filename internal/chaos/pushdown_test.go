package chaos

import (
	"testing"

	"hnp/internal/query/rewrite"
)

// TestChaosPushdownAB sweeps schema-enabled chaos schedules with the
// rewrite pipeline on and off, using the rate-shift profile: the whole
// pool deploys upfront and no event changes the deployed set, so the two
// modes run the same queries against the same perturbations and their
// transport totals are directly comparable. Both modes must survive the
// schedule — every invariant (including the width-bracket transport
// conservation that heterogeneous tuple sizes exercise) checked after
// every event, a clean quiesce at the end — and the pipeline must
// actually bite: with pushdown on, the same seeds move strictly fewer
// bytes in total, while still delivering tuples.
func TestChaosPushdownAB(t *testing.T) {
	t.Cleanup(func() { rewrite.SetPushdown(true) })
	seeds, events := 10, 30
	if testing.Short() {
		seeds, events = 3, 12
	}
	run := func(seed int64, enabled bool) Report {
		rewrite.SetPushdown(enabled)
		cfg := DefaultConfig(seed)
		cfg.Profile = ProfileRateShift
		cfg.Events = events
		cfg.MeanStep = 3.0
		cfg.Schemas = true
		w, err := New(cfg)
		if err != nil {
			t.Fatalf("seed %d (pushdown=%v): build: %v", seed, enabled, err)
		}
		rep, err := w.Run()
		if err != nil {
			t.Fatalf("seed %d (pushdown=%v): %v\ntrace:\n%s", seed, enabled, err, rep.TraceString())
		}
		return rep
	}
	var onBytes, offBytes float64
	var onDelivered, offDelivered int64
	for s := 0; s < seeds; s++ {
		seed := int64(s + 1)
		on := run(seed, true)
		off := run(seed, false)
		if on.Deployed != off.Deployed {
			t.Errorf("seed %d: pushdown changed the deployed set: %d vs %d queries", seed, on.Deployed, off.Deployed)
		}
		onBytes += on.Stats.TotalBytes
		offBytes += off.Stats.TotalBytes
		onDelivered += on.Delivered
		offDelivered += off.Delivered
	}
	if onBytes >= offBytes {
		t.Errorf("pushdown on moved %.0f bytes, off moved %.0f — pruning never bit", onBytes, offBytes)
	}
	if onDelivered == 0 || offDelivered == 0 {
		t.Fatalf("vacuous sweep: delivered on=%d off=%d", onDelivered, offDelivered)
	}
	t.Logf("pushdown A/B over %d seeds: bytes %.3g (on) vs %.3g (off), %.1f%% saved; delivered %d vs %d",
		seeds, onBytes, offBytes, 100*(1-onBytes/offBytes), onDelivered, offDelivered)
}

// TestChaosSchemasFaults runs the default fault/churn schedule — node
// failures, recoveries, arrivals, teardowns, migrations — with schemas
// attached, in both pipeline modes. No byte comparison here (failures
// hit different placements in each mode, so the surviving query sets
// diverge); the point is that every invariant holds under faults while
// operators run at heterogeneous widths.
func TestChaosSchemasFaults(t *testing.T) {
	t.Cleanup(func() { rewrite.SetPushdown(true) })
	seeds, events := 6, 150
	if testing.Short() {
		seeds, events = 2, 60
	}
	for _, enabled := range []bool{true, false} {
		rewrite.SetPushdown(enabled)
		for s := 0; s < seeds; s++ {
			seed := int64(s + 1)
			cfg := DefaultConfig(seed)
			cfg.Events = events
			cfg.Migrate = true
			cfg.Schemas = true
			w, err := New(cfg)
			if err != nil {
				t.Fatalf("seed %d (pushdown=%v): build: %v", seed, enabled, err)
			}
			if rep, err := w.Run(); err != nil {
				t.Errorf("seed %d (pushdown=%v): %v\ntrace:\n%s", seed, enabled, err, rep.TraceString())
			}
		}
	}
}

// TestChaosSchemasDeterministic replays one schema-enabled seed twice:
// width stamping and pruning must not introduce any map-ordering or
// pointer-identity leak into the schedule or the tuple flow.
func TestChaosSchemasDeterministic(t *testing.T) {
	run := func() Report {
		cfg := DefaultConfig(33)
		cfg.Events = 100
		cfg.Schemas = true
		w, err := New(cfg)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		rep, err := w.Run()
		if err != nil {
			t.Fatalf("%v\ntrace:\n%s", err, rep.TraceString())
		}
		return rep
	}
	a, b := run(), run()
	if a.TraceString() != b.TraceString() {
		t.Fatalf("same seed, different traces:\n--- first\n%s\n--- second\n%s", a.TraceString(), b.TraceString())
	}
	if a.Stats != b.Stats {
		t.Fatalf("same seed, different stats: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.Delivered != b.Delivered {
		t.Fatalf("same seed, different deliveries: %d vs %d", a.Delivered, b.Delivered)
	}
}
