package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hnp/internal/ads"
	"hnp/internal/core"
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

type fixture struct {
	g     *netgraph.Graph
	paths *netgraph.Paths
	cat   *query.Catalog
	q     *query.Query
	rt    query.RateTable
}

func makeFixture(seed int64, n, k int) *fixture {
	rng := rand.New(rand.NewSource(seed))
	g := netgraph.MustTransitStub(n, rng)
	paths := g.ShortestPaths(netgraph.MetricCost)
	cat := query.NewCatalog(0.01)
	ids := make([]query.StreamID, k)
	for i := range ids {
		ids[i] = cat.Add("s", 1+rng.Float64()*50, netgraph.NodeID(rng.Intn(n)))
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			cat.SetSelectivity(ids[i], ids[j], 0.005+rng.Float64()*0.05)
		}
	}
	q, err := query.NewQuery(0, ids, netgraph.NodeID(rng.Intn(n)))
	if err != nil {
		panic(err)
	}
	return &fixture{g, paths, cat, q, query.BuildRates(cat, q)}
}

func TestSelectivityTreeMinimizesIntermediates(t *testing.T) {
	// Three streams where sel(0,1) is tiny: the tree must join 0 and 1
	// first.
	cat := query.NewCatalog(0.5)
	a := cat.Add("A", 100, 0)
	b := cat.Add("B", 100, 1)
	c := cat.Add("C", 100, 2)
	cat.SetSelectivity(a, b, 0.0001)
	q, _ := query.NewQuery(0, []query.StreamID{a, b, c}, 0)
	rt := query.BuildRates(cat, q)
	tree, err := SelectivityTree(core.BaseInputs(cat, q, rt), rt, q.All())
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// One child of the root must be the {a,b} join.
	if tree.L.Mask != 0b011 && tree.R.Mask != 0b011 {
		t.Errorf("tree does not join the selective pair first: %s", tree)
	}
}

func TestSelectivityTreeMissingInput(t *testing.T) {
	cat := query.NewCatalog(0.1)
	a := cat.Add("A", 1, 0)
	b := cat.Add("B", 1, 1)
	q, _ := query.NewQuery(0, []query.StreamID{a, b}, 0)
	rt := query.BuildRates(cat, q)
	ins := core.BaseInputs(cat, q, rt)[:1]
	if _, err := SelectivityTree(ins, rt, q.All()); err == nil {
		t.Error("missing base input accepted")
	}
}

// PlaceFixedTree must equal the core DP when the core DP is restricted to
// the same single tree. We verify the weaker but tight property that its
// cost matches the rebuilt plan's cost and never beats the joint optimum.
func TestPlaceFixedTreeConsistency(t *testing.T) {
	check := func(seed int64) bool {
		f := makeFixture(seed, 24, 3)
		tree, err := SelectivityTree(core.BaseInputs(f.cat, f.q, f.rt), f.rt, f.q.All())
		if err != nil {
			return false
		}
		placed, cost, err := PlaceFixedTree(tree, f.q, AllNodes(f.g), f.paths.Dist, f.q.Sink, nil)
		if err != nil {
			return false
		}
		if placed.Validate() != nil {
			return false
		}
		actual := placed.Cost(f.paths.Dist, f.q.Sink)
		if math.Abs(actual-cost) > 1e-6*(1+cost) {
			return false
		}
		opt, err := core.Optimal(f.g, f.paths, f.cat, f.q, nil)
		if err != nil {
			return false
		}
		return cost >= opt.Cost-1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPlaceFixedTreeUsesGoodAd(t *testing.T) {
	f := makeFixture(7, 24, 3)
	tree, err := SelectivityTree(core.BaseInputs(f.cat, f.q, f.rt), f.rt, f.q.All())
	if err != nil {
		t.Fatal(err)
	}
	// Advertise the full query result at the sink itself: reuse is free.
	reg := ads.NewRegistry()
	reg.Advertise(ads.Ad{
		Sig:     f.q.SigOf(f.q.All()),
		Streams: f.q.Sources,
		Node:    f.q.Sink,
		Rate:    f.rt.Rate(f.q.All()),
	})
	placed, cost, err := PlaceFixedTree(tree, f.q, AllNodes(f.g), f.paths.Dist, f.q.Sink, reg)
	if err != nil {
		t.Fatal(err)
	}
	if cost > 1e-9 {
		t.Errorf("cost = %g, want ~0 via reuse at sink", cost)
	}
	if !placed.IsLeaf() || !placed.In.Derived {
		t.Errorf("plan should be a derived leaf, got %s", placed)
	}
}

func TestPlanThenDeployNeverBeatsOptimal(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		f := makeFixture(seed, 32, 4)
		ptd, err := PlanThenDeploy(f.g, f.paths, f.cat, f.q, nil)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := core.Optimal(f.g, f.paths, f.cat, f.q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ptd.Cost < opt.Cost-1e-6 {
			t.Errorf("seed %d: plan-then-deploy %g beats optimal %g", seed, ptd.Cost, opt.Cost)
		}
	}
}

func TestEmbeddingQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := netgraph.MustTransitStub(64, rng)
	paths := g.ShortestPaths(netgraph.MetricCost)
	emb := NewEmbedding(g, paths, rng)
	if len(emb.Pos) != 64 {
		t.Fatalf("embedding size %d", len(emb.Pos))
	}
	stress := emb.Stress(paths, 500, rng)
	if stress > 0.8 {
		t.Errorf("embedding stress %g too high; cost space unusable", stress)
	}
	// Nearest of a node's own coordinate is that node (or a co-located one
	// at distance zero).
	v := netgraph.NodeID(10)
	near := emb.Nearest(emb.Pos[v])
	if Dist3(emb.Pos[near], emb.Pos[v]) > 1e-12 {
		t.Errorf("Nearest(%d's pos) = %d at nonzero distance", v, near)
	}
}

func TestEmbedDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := netgraph.New(1)
	paths := g.ShortestPaths(netgraph.MetricCost)
	emb := Embed(g, paths, 4, rng)
	if len(emb.Pos) != 1 {
		t.Fatal("single-node embedding broken")
	}
	empty := Embed(netgraph.New(0), netgraph.New(0).ShortestPaths(netgraph.MetricCost), 4, rng)
	if len(empty.Pos) != 0 {
		t.Fatal("empty embedding broken")
	}
}

func TestRelaxationProducesValidPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for seed := int64(0); seed < 8; seed++ {
		f := makeFixture(seed, 32, 4)
		emb := NewEmbedding(f.g, f.paths, rng)
		res, err := Relaxation(f.g, f.paths, emb, f.cat, f.q, nil, DefaultRelaxation())
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan.Mask != f.q.All() {
			t.Errorf("seed %d: coverage %b", seed, res.Plan.Mask)
		}
		opt, err := core.Optimal(f.g, f.paths, f.cat, f.q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost < opt.Cost-1e-6 {
			t.Errorf("seed %d: relaxation %g beats optimal %g", seed, res.Cost, opt.Cost)
		}
	}
}

func TestMakeZones(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := netgraph.MustTransitStub(40, rng)
	paths := g.ShortestPaths(netgraph.MetricCost)
	z, err := MakeZones(g, paths, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(z.Reps) != 5 {
		t.Fatalf("zones = %d", len(z.Reps))
	}
	total := 0
	for _, ms := range z.Members {
		total += len(ms)
	}
	if total != 40 {
		t.Errorf("zone members cover %d nodes", total)
	}
	if _, err := MakeZones(g, paths, 0, rng); err == nil {
		t.Error("nZones=0 accepted")
	}
	if z2, err := MakeZones(g, paths, 100, rng); err != nil || len(z2.Reps) > 40 {
		t.Errorf("nZones>n mishandled: %v", err)
	}
}

func TestInNetworkProducesValidPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := makeFixture(9, 48, 4)
	z, err := MakeZones(f.g, f.paths, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := InNetwork(f.g, f.paths, z, f.cat, f.q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	opt, err := core.Optimal(f.g, f.paths, f.cat, f.q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost < opt.Cost-1e-6 {
		t.Errorf("in-network %g beats optimal %g", res.Cost, opt.Cost)
	}
}

func TestRandomPlacement(t *testing.T) {
	f := makeFixture(11, 32, 3)
	rng := rand.New(rand.NewSource(8))
	res, err := RandomPlacement(f.g, f.paths, f.cat, f.q, rng.Intn)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	opt, err := core.Optimal(f.g, f.paths, f.cat, f.q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost < opt.Cost-1e-6 {
		t.Error("random placement beats optimal")
	}
}

func TestSelectivityTreeLeftDeepShape(t *testing.T) {
	f := makeFixture(13, 24, 5)
	tree, err := SelectivityTreeLeftDeep(core.BaseInputs(f.cat, f.q, f.rt), f.rt, f.q.All())
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every join's right child must be a base leaf.
	for _, op := range tree.Operators() {
		if !op.R.IsLeaf() {
			t.Fatalf("not left-deep: right child covers %b", op.R.Mask)
		}
	}
	// The bushy optimum over intermediate sizes can only be ≤ the
	// left-deep one.
	bushy, err := SelectivityTree(core.BaseInputs(f.cat, f.q, f.rt), f.rt, f.q.All())
	if err != nil {
		t.Fatal(err)
	}
	sum := func(n *query.PlanNode) float64 {
		s := 0.0
		for _, op := range n.Operators() {
			s += op.Rate
		}
		return s
	}
	if sum(bushy) > sum(tree)+1e-9 {
		t.Errorf("bushy intermediates %g exceed left-deep %g", sum(bushy), sum(tree))
	}
	// Missing input detection.
	if _, err := SelectivityTreeLeftDeep(nil, f.rt, f.q.All()); err == nil {
		t.Error("missing inputs accepted")
	}
}
