package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"hnp/internal/ads"
	"hnp/internal/cluster"
	"hnp/internal/core"
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// Zones is a flat partition of the network into placement zones, the
// granularity the In-network algorithm plans at.
type Zones struct {
	// Assign maps each node to its zone.
	Assign []int
	// Reps holds one representative (medoid) node per zone.
	Reps []netgraph.NodeID
	// Members lists each zone's nodes.
	Members [][]netgraph.NodeID
}

// MakeZones partitions the network into nZones zones by k-medoids over
// path costs.
func MakeZones(g *netgraph.Graph, paths *netgraph.Paths, nZones int, rng *rand.Rand) (*Zones, error) {
	n := g.NumNodes()
	if nZones < 1 {
		return nil, fmt.Errorf("baseline: nZones must be >= 1")
	}
	if nZones > n {
		nZones = n
	}
	maxSize := (n + nZones - 1) / nZones
	// Allow slack so k clusters can always hold n items.
	res, err := cluster.KMedoids(n, nZones, maxSize+nZones, func(i, j int) float64 {
		return paths.Dist(netgraph.NodeID(i), netgraph.NodeID(j))
	}, rng, 8)
	if err != nil {
		return nil, err
	}
	z := &Zones{Assign: res.Assign, Members: make([][]netgraph.NodeID, len(res.Medoids))}
	for _, m := range res.Medoids {
		z.Reps = append(z.Reps, netgraph.NodeID(m))
	}
	for node, c := range res.Assign {
		z.Members[c] = append(z.Members[c], netgraph.NodeID(node))
	}
	return z, nil
}

// InNetwork implements the zone-based network-aware placement in the
// spirit of Ahmad & Çetintemel (VLDB 2004) as the paper compared against:
// a phased approach that fixes the selectivity-optimal tree, then places
// each operator bottom-up at the representative of the best zone. The
// placement objective for an operator is the cost of pulling its
// children's streams in plus pushing its output toward the sink;
// placement granularity is the zone, which is what the paper's cluster
// experiments show costs efficiency. Reuse is post-hoc, as in the other
// phased baselines.
func InNetwork(g *netgraph.Graph, paths *netgraph.Paths, zones *Zones,
	cat *query.Catalog, q *query.Query, reg *ads.Registry) (core.Result, error) {
	rt := query.BuildRates(cat, q)
	tree, err := SelectivityTree(core.BaseInputs(cat, q, rt), rt, q.All())
	if err != nil {
		return core.Result{}, fmt.Errorf("in-network: %w", err)
	}
	if reg != nil {
		tree = reuseSubtrees(tree, q, reg, paths, q.Sink)
	}

	considered := 0
	// A zone-granular scheme knows base streams' advertised locations
	// exactly, but tracks in-flight intermediate results only at zone
	// granularity: an operator's output is "in zone Z", i.e. at Z's
	// representative, for downstream placement decisions.
	seenAt := func(n *query.PlanNode) netgraph.NodeID {
		if n.IsLeaf() {
			return n.Loc
		}
		return zones.Reps[zones.Assign[n.Loc]]
	}
	var place func(n *query.PlanNode) *query.PlanNode
	place = func(n *query.PlanNode) *query.PlanNode {
		if n.IsLeaf() {
			return query.Leaf(*n.In)
		}
		l := place(n.L)
		r := place(n.R)
		lAt, rAt := seenAt(l), seenAt(r)
		objective := func(v netgraph.NodeID) float64 {
			return l.Rate*paths.Dist(lAt, v) +
				r.Rate*paths.Dist(rAt, v) +
				n.Rate*paths.Dist(v, q.Sink)
		}
		// Phase 1: the algorithm plans at zone granularity — pick the best
		// zone via its representative under the full objective.
		bestZone, bestObj := 0, math.Inf(1)
		for zi, rep := range zones.Reps {
			considered++
			if o := objective(rep); o < bestObj {
				bestZone, bestObj = zi, o
			}
		}
		// Phase 2: a zone-based scheme routes traffic through the zone
		// center, so the refinement only considers the center's immediate
		// vicinity — the representative and its in-zone neighbors — not
		// arbitrary zone-edge nodes.
		rep := zones.Reps[bestZone]
		cands := []netgraph.NodeID{rep}
		for _, nb := range g.Neighbors(rep) {
			if zones.Assign[nb] == bestZone {
				cands = append(cands, nb)
			}
		}
		bestNode, bestPull := rep, math.Inf(1)
		for _, v := range cands {
			considered++
			pull := l.Rate*paths.Dist(lAt, v) + r.Rate*paths.Dist(rAt, v) +
				n.Rate*paths.Dist(v, q.Sink)
			if pull < bestPull {
				bestNode, bestPull = v, pull
			}
		}
		return query.Join(l, r, bestNode, n.Rate)
	}
	placed := place(tree)
	if err := placed.Validate(); err != nil {
		return core.Result{}, fmt.Errorf("in-network: invalid plan: %w", err)
	}
	return core.Result{
		Plan:            placed,
		Cost:            placed.Cost(paths.Dist, q.Sink),
		PlansConsidered: float64(considered),
		ClustersPlanned: len(zones.Reps),
		LevelsVisited:   1,
	}, nil
}
