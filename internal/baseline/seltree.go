// Package baseline implements the comparison systems of the paper's
// evaluation: the classic "plan, then deploy" pipeline (selectivity-only
// join ordering followed by placement), the Relaxation algorithm of
// Pietzuch et al. (placement by spring relaxation in a 3-D cost space),
// the zone-based In-network placement of Ahmad & Çetintemel, and random
// placement. All operate on the same query/cost model as the core
// algorithms so costs are directly comparable.
package baseline

import (
	"fmt"
	"math"

	"hnp/internal/ads"
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// SelectivityTree picks the join order a network-oblivious optimizer
// would: the bushy tree minimizing the total size (rate) of intermediate
// results, ignoring placement entirely. Leaves carry the query's base
// inputs; operator locations are left unassigned (-1).
func SelectivityTree(inputs []query.Input, rt query.RateTable, goal query.Mask) (*query.PlanNode, error) {
	byMask := map[query.Mask]query.Input{}
	for _, in := range inputs {
		if in.Mask.Count() == 1 {
			byMask[in.Mask] = in
		}
	}
	for _, p := range goal.Positions() {
		if _, ok := byMask[1<<uint(p)]; !ok {
			return nil, fmt.Errorf("baseline: no base input for position %d", p)
		}
	}
	cost := map[query.Mask]float64{}
	split := map[query.Mask]query.Mask{}
	var solve func(m query.Mask) float64
	solve = func(m query.Mask) float64 {
		if c, ok := cost[m]; ok {
			return c
		}
		if m.Count() == 1 {
			cost[m] = 0
			return 0
		}
		low := m & -m
		best := math.MaxFloat64
		var bestSplit query.Mask
		for m1 := (m - 1) & m; m1 > 0; m1 = (m1 - 1) & m {
			if m1&low == 0 {
				continue
			}
			m2 := m ^ m1
			if c := solve(m1) + solve(m2) + rt.Rate(m); c < best {
				best, bestSplit = c, m1
			}
		}
		cost[m], split[m] = best, bestSplit
		return best
	}
	solve(goal)

	var build func(m query.Mask) *query.PlanNode
	build = func(m query.Mask) *query.PlanNode {
		if m.Count() == 1 {
			return query.Leaf(byMask[m])
		}
		l := build(split[m])
		r := build(m ^ split[m])
		return query.Join(l, r, -1, rt.Rate(m))
	}
	return build(goal), nil
}

// SelectivityTreeLeftDeep is SelectivityTree restricted to left-deep
// shapes (every join's right child is a base stream), the plan space of
// classic System-R style optimizers. It exists for the bushy-vs-left-deep
// ablation benchmark.
func SelectivityTreeLeftDeep(inputs []query.Input, rt query.RateTable, goal query.Mask) (*query.PlanNode, error) {
	byMask := map[query.Mask]query.Input{}
	for _, in := range inputs {
		if in.Mask.Count() == 1 {
			byMask[in.Mask] = in
		}
	}
	for _, p := range goal.Positions() {
		if _, ok := byMask[1<<uint(p)]; !ok {
			return nil, fmt.Errorf("baseline: no base input for position %d", p)
		}
	}
	cost := map[query.Mask]float64{}
	last := map[query.Mask]query.Mask{} // the singleton joined last
	var solve func(m query.Mask) float64
	solve = func(m query.Mask) float64 {
		if c, ok := cost[m]; ok {
			return c
		}
		if m.Count() == 1 {
			cost[m] = 0
			return 0
		}
		best := math.MaxFloat64
		var bestLast query.Mask
		for _, p := range m.Positions() {
			single := query.Mask(1) << uint(p)
			rest := m ^ single
			if rest == 0 {
				continue
			}
			if c := solve(rest) + rt.Rate(m); c < best {
				best, bestLast = c, single
			}
		}
		cost[m], last[m] = best, bestLast
		return best
	}
	solve(goal)

	var build func(m query.Mask) *query.PlanNode
	build = func(m query.Mask) *query.PlanNode {
		if m.Count() == 1 {
			return query.Leaf(byMask[m])
		}
		single := last[m]
		l := build(m ^ single)
		r := query.Leaf(byMask[single])
		return query.Join(l, r, -1, rt.Rate(m))
	}
	return build(goal), nil
}

// fixedChoice records how a subtree's output is realized for one
// destination site: as a fresh operator at site index u, or by reusing a
// derived stream at adLoc (adLoc also encodes plain leaves).
type fixedChoice struct {
	op    bool
	u     int
	adLoc netgraph.NodeID
}

// fixedDP carries the per-node placement tables for PlaceFixedTree.
type fixedDP struct {
	sites []netgraph.NodeID
	dist  query.DistFunc
	q     *query.Query
	reg   *ads.Registry
	avail map[*query.PlanNode][]float64
	pick  map[*query.PlanNode][]fixedChoice
	op    map[*query.PlanNode][]float64
}

func (d *fixedDP) adsOf(m query.Mask) []ads.Ad {
	if d.reg == nil || m.Count() < 2 {
		return nil
	}
	return d.reg.Lookup(d.q.SigOf(m))
}

// eval fills avail/pick/op for node n bottom-up: avail[n][s] is the
// cheapest way to have n's output at sites[s].
func (d *fixedDP) eval(n *query.PlanNode) {
	m := len(d.sites)
	avail := make([]float64, m)
	pick := make([]fixedChoice, m)
	if n.IsLeaf() {
		for s, sv := range d.sites {
			avail[s] = n.Rate * d.dist(n.Loc, sv)
			pick[s] = fixedChoice{adLoc: n.Loc}
		}
		d.avail[n], d.pick[n] = avail, pick
		return
	}
	d.eval(n.L)
	d.eval(n.R)
	opCost := make([]float64, m)
	for s := range d.sites {
		opCost[s] = d.avail[n.L][s] + d.avail[n.R][s]
	}
	for s, sv := range d.sites {
		best, bu := math.MaxFloat64, -1
		for u, uv := range d.sites {
			if c := opCost[u] + n.Rate*d.dist(uv, sv); c < best {
				best, bu = c, u
			}
		}
		avail[s], pick[s] = best, fixedChoice{op: true, u: bu}
		for _, ad := range d.adsOf(n.Mask) {
			if c := n.Rate * d.dist(ad.Node, sv); c < avail[s] {
				avail[s], pick[s] = c, fixedChoice{adLoc: ad.Node}
			}
		}
	}
	d.avail[n], d.pick[n], d.op[n] = avail, pick, opCost
}

// rebuild materializes the placed copy of subtree n given the choice that
// realizes it.
func (d *fixedDP) rebuild(n *query.PlanNode, c fixedChoice) *query.PlanNode {
	if !c.op {
		if n.IsLeaf() {
			return query.Leaf(*n.In)
		}
		return query.Leaf(query.Input{
			Mask: n.Mask, Rate: n.Rate, Loc: c.adLoc, Derived: true, Sig: d.q.SigOf(n.Mask),
		})
	}
	l := d.rebuild(n.L, d.pick[n.L][c.u])
	r := d.rebuild(n.R, d.pick[n.R][c.u])
	return query.Join(l, r, d.sites[c.u], n.Rate)
}

// PlaceFixedTree assigns every operator of a fixed join tree to a site,
// minimizing communication cost — the optimal "deploy" phase for a
// network-oblivious plan. When a registry is given, any subtree whose
// signature is advertised may instead be replaced by the derived stream
// (reuse after planning, the best a phased approach can do). The input
// tree is not modified; a placed copy and its cost including delivery to
// the sink are returned.
func PlaceFixedTree(tree *query.PlanNode, q *query.Query, sites []netgraph.NodeID,
	dist query.DistFunc, sink netgraph.NodeID, reg *ads.Registry) (*query.PlanNode, float64, error) {
	if len(sites) == 0 {
		return nil, 0, fmt.Errorf("baseline: no sites")
	}
	d := &fixedDP{
		sites: sites, dist: dist, q: q, reg: reg,
		avail: map[*query.PlanNode][]float64{},
		pick:  map[*query.PlanNode][]fixedChoice{},
		op:    map[*query.PlanNode][]float64{},
	}
	d.eval(tree)

	best := math.MaxFloat64
	var bestChoice fixedChoice
	if tree.IsLeaf() {
		best = tree.Rate * dist(tree.Loc, sink)
		bestChoice = fixedChoice{adLoc: tree.Loc}
	} else {
		for u, uv := range sites {
			if c := d.op[tree][u] + tree.Rate*dist(uv, sink); c < best {
				best, bestChoice = c, fixedChoice{op: true, u: u}
			}
		}
		for _, ad := range d.adsOf(tree.Mask) {
			if c := tree.Rate * dist(ad.Node, sink); c < best {
				best, bestChoice = c, fixedChoice{adLoc: ad.Node}
			}
		}
	}
	placed := d.rebuild(tree, bestChoice)
	return placed, best, nil
}

// AllNodes lists every node of a graph as a candidate site slice.
func AllNodes(g *netgraph.Graph) []netgraph.NodeID {
	out := make([]netgraph.NodeID, g.NumNodes())
	for i := range out {
		out[i] = netgraph.NodeID(i)
	}
	return out
}
