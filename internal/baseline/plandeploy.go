package baseline

import (
	"fmt"

	"hnp/internal/ads"
	"hnp/internal/core"
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// PlanThenDeploy is the conventional phased approach of Figure 1(a): pick
// the join order by selectivities alone at "compile time", then deploy
// that fixed tree with an optimal placement (and post-hoc reuse when a
// registry is given). Its gap to the joint optimizers quantifies the
// paper's Figure 2 claim.
func PlanThenDeploy(g *netgraph.Graph, paths *netgraph.Paths, cat *query.Catalog,
	q *query.Query, reg *ads.Registry) (core.Result, error) {
	rt := query.BuildRates(cat, q)
	tree, err := SelectivityTree(core.BaseInputs(cat, q, rt), rt, q.All())
	if err != nil {
		return core.Result{}, fmt.Errorf("plan-then-deploy: %w", err)
	}
	placed, cost, err := PlaceFixedTree(tree, q, AllNodes(g), paths.Dist, q.Sink, reg)
	if err != nil {
		return core.Result{}, fmt.Errorf("plan-then-deploy: %w", err)
	}
	if err := placed.Validate(); err != nil {
		return core.Result{}, fmt.Errorf("plan-then-deploy: invalid plan: %w", err)
	}
	// The phased planner searches placements width-blind (its point is to
	// be the conventional baseline), but its plans still execute and are
	// costed under the schema width model so comparisons stay apples to
	// apples.
	if wt := query.BuildWidths(cat, q); wt != nil {
		wt.Stamp(placed)
		cost = placed.Cost(paths.Dist, q.Sink)
	}
	// The phased search considers one tree but all placements of it:
	// N^(K-1) deployments.
	considered := 1.0
	for i := 1; i < q.K(); i++ {
		considered *= float64(g.NumNodes())
	}
	return core.Result{
		Plan:            placed,
		Cost:            cost,
		PlansConsidered: considered,
		ClustersPlanned: 1,
		LevelsVisited:   1,
	}, nil
}

// RandomPlacement deploys the selectivity-optimal tree with every operator
// on a uniformly random node — the floor any placement heuristic must
// beat. The rng must be supplied for reproducibility.
func RandomPlacement(g *netgraph.Graph, paths *netgraph.Paths, cat *query.Catalog,
	q *query.Query, pick func(n int) int) (core.Result, error) {
	rt := query.BuildRates(cat, q)
	tree, err := SelectivityTree(core.BaseInputs(cat, q, rt), rt, q.All())
	if err != nil {
		return core.Result{}, fmt.Errorf("random: %w", err)
	}
	var place func(n *query.PlanNode) *query.PlanNode
	place = func(n *query.PlanNode) *query.PlanNode {
		if n.IsLeaf() {
			return query.Leaf(*n.In)
		}
		return query.Join(place(n.L), place(n.R),
			netgraph.NodeID(pick(g.NumNodes())), n.Rate)
	}
	placed := place(tree)
	query.BuildWidths(cat, q).Stamp(placed)
	return core.Result{
		Plan:            placed,
		Cost:            placed.Cost(paths.Dist, q.Sink),
		PlansConsidered: 1,
		ClustersPlanned: 1,
		LevelsVisited:   1,
	}, nil
}
