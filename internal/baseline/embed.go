package baseline

import (
	"math"
	"math/rand"

	"hnp/internal/netgraph"
)

// Point3 is a coordinate in the 3-dimensional cost space used by the
// Relaxation algorithm.
type Point3 [3]float64

func (p Point3) sub(o Point3) Point3 { return Point3{p[0] - o[0], p[1] - o[1], p[2] - o[2]} }
func (p Point3) add(o Point3) Point3 { return Point3{p[0] + o[0], p[1] + o[1], p[2] + o[2]} }
func (p Point3) scale(f float64) Point3 {
	return Point3{p[0] * f, p[1] * f, p[2] * f}
}
func (p Point3) norm() float64 {
	return math.Sqrt(p[0]*p[0] + p[1]*p[1] + p[2]*p[2])
}

// Dist returns the Euclidean distance between two points.
func Dist3(a, b Point3) float64 { return a.sub(b).norm() }

// Embedding is a spring-relaxed placement of every network node in a 3-D
// cost space, so that Euclidean distances approximate traversal costs —
// the substrate the Relaxation algorithm plans in.
type Embedding struct {
	Pos []Point3
}

// Embed computes a 3-D embedding of the network by Vivaldi-style spring
// relaxation against shortest-path costs: rounds × N random node pairs
// pull or push each other until coordinate distances track path costs.
func Embed(g *netgraph.Graph, paths *netgraph.Paths, rounds int, rng *rand.Rand) *Embedding {
	n := g.NumNodes()
	e := &Embedding{Pos: make([]Point3, n)}
	if n == 0 {
		return e
	}
	// Seed positions randomly in a box scaled to the network diameter.
	diam := 1.0
	for v := 0; v < n; v++ {
		if d := paths.Eccentricity(netgraph.NodeID(v)); d > diam {
			diam = d
		}
	}
	for i := range e.Pos {
		for d := 0; d < 3; d++ {
			e.Pos[i][d] = (rng.Float64() - 0.5) * diam
		}
	}
	if n == 1 {
		return e
	}
	for r := 0; r < rounds; r++ {
		step := 0.5 * (1 - float64(r)/float64(rounds))
		for it := 0; it < 8*n; it++ {
			a := rng.Intn(n)
			b := rng.Intn(n)
			if a == b {
				continue
			}
			target := paths.Dist(netgraph.NodeID(a), netgraph.NodeID(b))
			if math.IsInf(target, 1) {
				continue
			}
			diff := e.Pos[b].sub(e.Pos[a])
			d := diff.norm()
			var dir Point3
			if d < 1e-12 {
				dir = Point3{rng.Float64() - 0.5, rng.Float64() - 0.5, rng.Float64() - 0.5}
				d = dir.norm()
				if d < 1e-12 {
					continue
				}
			} else {
				dir = diff
			}
			// Move both endpoints half the error along the connecting line.
			force := dir.scale(step * (d - target) / d / 2)
			e.Pos[a] = e.Pos[a].add(force)
			e.Pos[b] = e.Pos[b].sub(force)
		}
	}
	return e
}

// Nearest returns the node whose embedded coordinate is closest to p.
func (e *Embedding) Nearest(p Point3) netgraph.NodeID {
	best, bestD := netgraph.NodeID(0), math.Inf(1)
	for v, pos := range e.Pos {
		if d := Dist3(pos, p); d < bestD {
			best, bestD = netgraph.NodeID(v), d
		}
	}
	return best
}

// Stress returns the average relative error between embedded distances
// and path costs over sampled pairs — an embedding-quality diagnostic.
func (e *Embedding) Stress(paths *netgraph.Paths, samples int, rng *rand.Rand) float64 {
	n := len(e.Pos)
	if n < 2 || samples <= 0 {
		return 0
	}
	sum, cnt := 0.0, 0
	for i := 0; i < samples; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		target := paths.Dist(netgraph.NodeID(a), netgraph.NodeID(b))
		if target <= 0 || math.IsInf(target, 1) {
			continue
		}
		got := Dist3(e.Pos[a], e.Pos[b])
		sum += math.Abs(got-target) / target
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}
