package baseline

import (
	"fmt"
	"math/rand"

	"hnp/internal/ads"
	"hnp/internal/core"
	"hnp/internal/netgraph"
	"hnp/internal/query"
)

// RelaxationConfig tunes the Relaxation baseline. The paper used a
// 3-dimensional cost space computed with 4 iterations; those are the
// defaults of DefaultRelaxation.
type RelaxationConfig struct {
	// EmbedRounds is the number of spring-relaxation rounds building the
	// cost space.
	EmbedRounds int
	// PlaceIters is the number of operator relaxation iterations.
	PlaceIters int
}

// DefaultRelaxation mirrors the paper's experimental configuration.
func DefaultRelaxation() RelaxationConfig {
	return RelaxationConfig{EmbedRounds: 4, PlaceIters: 4}
}

// Relaxation implements the placement heuristic of Pietzuch et al. (ICDE
// 2006) as the paper evaluated it: a phased approach that first fixes the
// selectivity-optimal join tree, then relaxes operator coordinates in a
// 3-D cost space — each operator is pulled by its children, its parent and
// (for the root) the sink with spring strengths equal to the stream rates
// on those edges — and finally snaps every operator to the nearest
// physical node. When a registry is given, advertised subtrees are reused
// post-hoc exactly like the other phased baselines.
func Relaxation(g *netgraph.Graph, paths *netgraph.Paths, emb *Embedding,
	cat *query.Catalog, q *query.Query, reg *ads.Registry, cfg RelaxationConfig) (core.Result, error) {
	rt := query.BuildRates(cat, q)
	tree, err := SelectivityTree(core.BaseInputs(cat, q, rt), rt, q.All())
	if err != nil {
		return core.Result{}, fmt.Errorf("relaxation: %w", err)
	}
	// Post-hoc reuse: replace maximal advertised subtrees by the derived
	// stream materialized closest (in path cost) to the sink.
	if reg != nil {
		tree = reuseSubtrees(tree, q, reg, paths, q.Sink)
	}

	ops := tree.Operators()
	if len(ops) == 0 {
		// Whole query satisfied by a single stream.
		placed := query.Leaf(*tree.In)
		return core.Result{
			Plan: placed, Cost: placed.Cost(paths.Dist, q.Sink),
			PlansConsidered: 1, ClustersPlanned: 1, LevelsVisited: 1,
		}, nil
	}

	// Initialize operator coordinates at the centroid of their leaves.
	pos := map[*query.PlanNode]Point3{}
	var centroid func(n *query.PlanNode) Point3
	centroid = func(n *query.PlanNode) Point3 {
		if n.IsLeaf() {
			return emb.Pos[n.Loc]
		}
		c := centroid(n.L).add(centroid(n.R)).scale(0.5)
		pos[n] = c
		return c
	}
	centroid(tree)

	parent := map[*query.PlanNode]*query.PlanNode{}
	for _, op := range ops {
		for _, ch := range []*query.PlanNode{op.L, op.R} {
			parent[ch] = op
		}
	}
	at := func(n *query.PlanNode) Point3 {
		if n.IsLeaf() {
			return emb.Pos[n.Loc]
		}
		return pos[n]
	}

	// Spring relaxation: weighted average of neighbors, weights = rates.
	for it := 0; it < cfg.PlaceIters; it++ {
		for _, op := range ops {
			var num Point3
			den := 0.0
			for _, ch := range []*query.PlanNode{op.L, op.R} {
				num = num.add(at(ch).scale(ch.Rate))
				den += ch.Rate
			}
			if p := parent[op]; p != nil {
				num = num.add(at(p).scale(op.Rate))
				den += op.Rate
			} else {
				num = num.add(emb.Pos[q.Sink].scale(op.Rate))
				den += op.Rate
			}
			if den > 0 {
				pos[op] = num.scale(1 / den)
			}
		}
	}

	// Snap to the nearest physical node in the cost space.
	var place func(n *query.PlanNode) *query.PlanNode
	place = func(n *query.PlanNode) *query.PlanNode {
		if n.IsLeaf() {
			return query.Leaf(*n.In)
		}
		return query.Join(place(n.L), place(n.R), emb.Nearest(pos[n]), n.Rate)
	}
	placed := place(tree)
	if err := placed.Validate(); err != nil {
		return core.Result{}, fmt.Errorf("relaxation: invalid plan: %w", err)
	}
	return core.Result{
		Plan:            placed,
		Cost:            placed.Cost(paths.Dist, q.Sink),
		PlansConsidered: float64(len(ops) * cfg.PlaceIters),
		ClustersPlanned: 1,
		LevelsVisited:   1,
	}, nil
}

// reuseSubtrees replaces every maximal subtree that has an advertisement
// with a derived leaf at the ad node closest to the sink.
func reuseSubtrees(n *query.PlanNode, q *query.Query, reg *ads.Registry,
	paths *netgraph.Paths, sink netgraph.NodeID) *query.PlanNode {
	if n.IsLeaf() {
		return n
	}
	if as := reg.Lookup(q.SigOf(n.Mask)); len(as) > 0 {
		best := as[0]
		for _, ad := range as[1:] {
			if paths.Dist(ad.Node, sink) < paths.Dist(best.Node, sink) {
				best = ad
			}
		}
		return query.Leaf(query.Input{
			Mask: n.Mask, Rate: n.Rate, Loc: best.Node, Derived: true, Sig: q.SigOf(n.Mask),
		})
	}
	n.L = reuseSubtrees(n.L, q, reg, paths, sink)
	n.R = reuseSubtrees(n.R, q, reg, paths, sink)
	return n
}

// NewEmbedding is a convenience wrapper building the 3-D cost space for a
// network with the default number of relaxation rounds.
func NewEmbedding(g *netgraph.Graph, paths *netgraph.Paths, rng *rand.Rand) *Embedding {
	return Embed(g, paths, 48, rng)
}
