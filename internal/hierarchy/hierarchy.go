// Package hierarchy builds and maintains the virtual clustering hierarchy
// of network partitions at the core of the paper. Physical nodes are
// clustered by inter-node traversal cost into clusters of at most max_cs
// members (Level 1); each cluster promotes its most central member as
// coordinator to the next level, which is clustered again, until a single
// top-level cluster remains.
//
// The hierarchy exposes the per-level estimated inter-node costs the
// optimizers plan against, and the per-level maximum intra-cluster
// traversal costs d_i that bound the cost approximation (Theorem 1) and
// the Top-Down algorithm's sub-optimality (Theorem 3).
package hierarchy

import (
	"fmt"
	"math/rand"
	"sync"

	"hnp/internal/cluster"
	"hnp/internal/netgraph"
	"hnp/internal/obs"
)

// Cluster is one network partition at some level of the hierarchy.
type Cluster struct {
	// Level is 1-based: level 1 holds physical nodes.
	Level int
	// Members are the nodes present at this level that belong to this
	// cluster. At level 1 these are physical nodes; above, coordinators
	// promoted from the level below. All IDs are physical node IDs.
	Members []netgraph.NodeID
	// Coordinator is the member promoted to the next level (the medoid).
	Coordinator netgraph.NodeID
	// Diameter is the maximum pairwise traversal cost between members,
	// measured on the physical network.
	Diameter float64
}

// Level groups the clusters of one hierarchy level.
type Level struct {
	// Index is 1-based.
	Index    int
	Clusters []*Cluster
	byNode   map[netgraph.NodeID]*Cluster
}

// MaxDiameter returns d_i, the maximum intra-cluster traversal cost at
// this level.
func (l *Level) MaxDiameter() float64 {
	d := 0.0
	for _, c := range l.Clusters {
		if c.Diameter > d {
			d = c.Diameter
		}
	}
	return d
}

// Hierarchy is a virtual clustering hierarchy over a physical network.
//
// Concurrency: read-only queries (Cover, Rep, EstCost, ClusterOf, ...) are
// safe to call from multiple goroutines, so several planners can share one
// hierarchy; the lazily-filled cover cache is internally locked. Mutations
// (Rebind, AddNode, RemoveNode) are NOT safe to run concurrently with
// queries or each other — callers must serialize them externally (the hnp
// System does so with its own lock).
type Hierarchy struct {
	g     *netgraph.Graph
	paths *netgraph.Paths
	maxCS int
	lvls  []*Level

	// rep is the dense representative table: rep[l-1][v] is the level-l
	// representative of physical node v (v's coordinator chain walked up
	// front), or -1 if v is not part of the hierarchy. It turns Rep — the
	// innermost probe of every per-level cost estimate — into a single
	// array index instead of one map lookup per level. Built by Build and
	// rebuilt after every mutation (Rebind, AddNode, RemoveNode).
	rep [][]netgraph.NodeID

	coverMu sync.Mutex
	cover   map[*Cluster][]netgraph.NodeID

	// rowMark is scratch for RebindRows: a dense changed-node mark,
	// cleared after each use so rebinding allocates nothing steady-state.
	rowMark []bool

	// Telemetry handles (nil until BindObs; all nil-safe no-ops then).
	// obsReg is kept so maintenance operations can open spans.
	obsReg           *obs.Registry
	obsHits          *obs.Counter
	obsMisses        *obs.Counter
	obsRebindFull    *obs.Counter
	obsRebindDelta   *obs.Counter
	obsRebindAudited *obs.Counter
}

// BindObs connects the hierarchy to a telemetry registry: cover-cache
// effectiveness ("hierarchy.cover_hits", "hierarchy.cover_misses"),
// rebind scope ("hierarchy.rebind_full", "hierarchy.rebind_delta",
// "hierarchy.rebind_clusters_reaudited"), and maintenance timings
// ("hierarchy.rebind.*", "hierarchy.add_node.*", "hierarchy.remove_node.*"
// span metrics) are recorded there.
func (h *Hierarchy) BindObs(reg *obs.Registry) {
	h.obsReg = reg
	h.obsHits = reg.Counter("hierarchy.cover_hits")
	h.obsMisses = reg.Counter("hierarchy.cover_misses")
	h.obsRebindFull = reg.Counter("hierarchy.rebind_full")
	h.obsRebindDelta = reg.Counter("hierarchy.rebind_delta")
	h.obsRebindAudited = reg.Counter("hierarchy.rebind_clusters_reaudited")
}

// Build constructs a hierarchy over the nodes of g with at most maxCS
// nodes per cluster, clustering by traversal cost under paths (which must
// be a MetricCost snapshot of g). The rng drives k-medoids seeding;
// identical seeds give identical hierarchies.
func Build(g *netgraph.Graph, paths *netgraph.Paths, maxCS int, rng *rand.Rand) (*Hierarchy, error) {
	if maxCS < 1 {
		return nil, fmt.Errorf("hierarchy: maxCS must be >= 1, got %d", maxCS)
	}
	if maxCS == 1 {
		return nil, fmt.Errorf("hierarchy: maxCS of 1 cannot form a converging hierarchy")
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("hierarchy: empty graph")
	}
	h := &Hierarchy{g: g, paths: paths, maxCS: maxCS, cover: map[*Cluster][]netgraph.NodeID{}}
	nodes := make([]netgraph.NodeID, g.NumNodes())
	for i := range nodes {
		nodes[i] = netgraph.NodeID(i)
	}
	levelIdx := 1
	for {
		dist := func(i, j int) float64 { return paths.Dist(nodes[i], nodes[j]) }
		res, err := cluster.Partition(len(nodes), maxCS, dist, rng)
		if err != nil {
			return nil, err
		}
		lvl := &Level{Index: levelIdx, byNode: map[netgraph.NodeID]*Cluster{}}
		coords := make([]netgraph.NodeID, 0, len(res.Medoids))
		for ci, items := range res.Clusters() {
			members := make([]netgraph.NodeID, len(items))
			for k, it := range items {
				members[k] = nodes[it]
			}
			c := &Cluster{
				Level:       levelIdx,
				Members:     members,
				Coordinator: nodes[res.Medoids[ci]],
				Diameter:    paths.MaxPairwise(members),
			}
			lvl.Clusters = append(lvl.Clusters, c)
			for _, m := range members {
				lvl.byNode[m] = c
			}
			coords = append(coords, c.Coordinator)
		}
		h.lvls = append(h.lvls, lvl)
		if len(lvl.Clusters) == 1 {
			break
		}
		nodes = coords
		levelIdx++
	}
	h.rebuildRep()
	return h, nil
}

// rebuildRep (re)materializes the dense representative table from the
// level structure. Cost is O(height × nodes); mutations are rare next to
// the millions of Rep probes the planners make between them.
func (h *Hierarchy) rebuildRep() {
	n := h.g.NumNodes()
	height := len(h.lvls)
	if cap(h.rep) < height {
		h.rep = make([][]netgraph.NodeID, height)
	}
	h.rep = h.rep[:height]
	for l := range h.rep {
		if cap(h.rep[l]) < n {
			h.rep[l] = make([]netgraph.NodeID, n)
		}
		h.rep[l] = h.rep[l][:n]
	}
	for v := 0; v < n; v++ {
		r := netgraph.NodeID(v)
		if h.lvls[0].byNode[r] == nil {
			// Not part of the hierarchy (e.g. removed): poison every level
			// so Rep keeps panicking exactly where the chain walk did.
			for l := 0; l < height; l++ {
				h.rep[l][v] = -1
			}
			continue
		}
		h.rep[0][v] = r
		for l := 1; l < height; l++ {
			c := h.lvls[l-1].byNode[r]
			if c == nil {
				for ; l < height; l++ {
					h.rep[l][v] = -1
				}
				break
			}
			r = c.Coordinator
			h.rep[l][v] = r
		}
	}
}

// MustBuild is Build but panics on error; convenient in experiments where
// the configuration is static and known-good.
func MustBuild(g *netgraph.Graph, paths *netgraph.Paths, maxCS int, rng *rand.Rand) *Hierarchy {
	h, err := Build(g, paths, maxCS, rng)
	if err != nil {
		panic(err)
	}
	return h
}

// Graph returns the underlying physical network.
func (h *Hierarchy) Graph() *netgraph.Graph { return h.g }

// Paths returns the all-pairs cost snapshot the hierarchy was built over.
func (h *Hierarchy) Paths() *netgraph.Paths { return h.paths }

// MaxCS returns the cluster size cap.
func (h *Hierarchy) MaxCS() int { return h.maxCS }

// Height returns the number of levels.
func (h *Hierarchy) Height() int { return len(h.lvls) }

// LevelAt returns the given 1-based level.
func (h *Hierarchy) LevelAt(i int) *Level {
	if i < 1 || i > len(h.lvls) {
		panic(fmt.Sprintf("hierarchy: level %d out of range [1,%d]", i, len(h.lvls)))
	}
	return h.lvls[i-1]
}

// Top returns the single top-level cluster.
func (h *Hierarchy) Top() *Cluster {
	top := h.lvls[len(h.lvls)-1]
	return top.Clusters[0]
}

// ClusterOf returns the cluster containing node v at the given level. The
// node must be present at that level (at level 1 every active node is; at
// level l >= 2 only coordinators promoted from below are). Returns nil if
// v is not present at the level.
func (h *Hierarchy) ClusterOf(v netgraph.NodeID, level int) *Cluster {
	return h.LevelAt(level).byNode[v]
}

// Contains reports whether node v is still part of the hierarchy (it may
// have been removed via RemoveNode).
func (h *Hierarchy) Contains(v netgraph.NodeID) bool {
	return h.lvls[0].byNode[v] != nil
}

// Rep returns the node that represents physical node v at the given level:
// v itself at level 1, otherwise the coordinator chain up the hierarchy.
// The chain is precomputed into the dense rep table, so the answer is a
// single array index (the equivalence with the explicit walk, including
// after maintenance operations, is pinned by TestRepTableMatchesChainWalk).
func (h *Hierarchy) Rep(v netgraph.NodeID, level int) netgraph.NodeID {
	if level == 1 {
		// The chain walk is empty at level 1: v is returned as-is even if
		// it is no longer part of the hierarchy.
		return v
	}
	if level < 1 || level > len(h.lvls) {
		panic(fmt.Sprintf("hierarchy: level %d out of range [1,%d]", level, len(h.lvls)))
	}
	r := h.rep[level-1][v]
	if r < 0 {
		panic(fmt.Sprintf("hierarchy: node %d not present at level %d", v, level))
	}
	return r
}

// EstCost returns the estimated traversal cost between physical nodes a
// and b as seen at the given level: the physical path cost between their
// level-l representatives. At level 1 this is the actual cost.
func (h *Hierarchy) EstCost(a, b netgraph.NodeID, level int) float64 {
	return h.paths.Dist(h.Rep(a, level), h.Rep(b, level))
}

// SumD returns Σ_{i<level} 2·d_i, the Theorem 1 bound on the gap between
// estimated cost at the given level and actual cost.
func (h *Hierarchy) SumD(level int) float64 {
	sum := 0.0
	for i := 1; i < level; i++ {
		sum += 2 * h.lvls[i-1].MaxDiameter()
	}
	return sum
}

// ChildCluster returns the cluster at level-1 whose coordinator is m,
// i.e. the partition that member m of a level-l cluster stands for.
// For level == 1 there is no child; it returns nil.
func (h *Hierarchy) ChildCluster(m netgraph.NodeID, level int) *Cluster {
	if level <= 1 {
		return nil
	}
	return h.lvls[level-2].byNode[m]
}

// Cover returns all physical nodes under cluster c (its transitive
// membership). The result is cached; mutations invalidate the cache. The
// cache is internally locked so concurrent planners may share one
// hierarchy; callers must treat the returned slice as read-only.
func (h *Hierarchy) Cover(c *Cluster) []netgraph.NodeID {
	h.coverMu.Lock()
	defer h.coverMu.Unlock()
	return h.coverLocked(c)
}

func (h *Hierarchy) coverLocked(c *Cluster) []netgraph.NodeID {
	if got, ok := h.cover[c]; ok {
		h.obsHits.Inc()
		return got
	}
	h.obsMisses.Inc()
	var out []netgraph.NodeID
	if c.Level == 1 {
		out = append([]netgraph.NodeID(nil), c.Members...)
	} else {
		for _, m := range c.Members {
			out = append(out, h.coverLocked(h.ChildCluster(m, c.Level))...)
		}
	}
	h.cover[c] = out
	return out
}

func (h *Hierarchy) invalidate() {
	h.coverMu.Lock()
	h.cover = map[*Cluster][]netgraph.NodeID{}
	h.coverMu.Unlock()
}

// NumClusters returns the total number of clusters across all levels.
func (h *Hierarchy) NumClusters() int {
	n := 0
	for _, l := range h.lvls {
		n += len(l.Clusters)
	}
	return n
}
