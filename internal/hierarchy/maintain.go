package hierarchy

import (
	"fmt"
	"math/rand"

	"hnp/internal/cluster"
	"hnp/internal/netgraph"
	"hnp/internal/obs"
)

// Rebind replaces the path snapshot the hierarchy measures costs against.
// Call it after the physical graph changed (new node, link cost update)
// before using AddNode or cost queries; cluster membership is untouched.
// The replacement snapshot must itself be current for the hierarchy's
// graph — rebinding to an already-stale snapshot is rejected, because
// every cost the hierarchy reports would silently reflect a network that
// no longer exists.
func (h *Hierarchy) Rebind(paths *netgraph.Paths) error {
	return h.RebindRows(paths, nil)
}

// RebindRows is Rebind informed by the scope of a delta path refresh:
// rows, when non-nil, is the set of source rows the refresh recomputed
// (netgraph.RefreshStats.Rows). Because changed distances always flag
// both endpoints' rows, a cluster none of whose members appear in rows
// has provably unchanged pairwise distances, so only clusters
// intersecting rows re-measure their diameter. A nil rows (full
// recompute, or scope unknown) re-measures every cluster.
//
// The representative table is not rebuilt in either case: it depends only
// on cluster membership and coordinators, which Rebind never changes.
func (h *Hierarchy) RebindRows(paths *netgraph.Paths, rows []netgraph.NodeID) error {
	sp := obs.StartSpan(h.obsReg, "hierarchy.rebind")
	defer sp.End()
	if paths.StaleFor(h.g) {
		return fmt.Errorf("hierarchy: Rebind with stale path snapshot (snapshot version %d, graph version %d)",
			paths.Version(), h.g.Version())
	}
	h.paths = paths
	n := h.g.NumNodes()
	if len(h.rep) != len(h.lvls) || len(h.rep) > 0 && len(h.rep[0]) != n {
		// The graph gained nodes since the table was built (membership
		// mutations rebuild it themselves): re-materialize so Rep keeps
		// panicking with its poison value instead of indexing out of range.
		h.rebuildRep()
	}
	reaudited := 0
	if rows == nil {
		for _, lvl := range h.lvls {
			for _, c := range lvl.Clusters {
				c.Diameter = paths.MaxPairwise(c.Members)
				reaudited++
			}
		}
		h.obsRebindFull.Inc()
	} else {
		if cap(h.rowMark) < n {
			h.rowMark = make([]bool, n)
		}
		mark := h.rowMark[:n]
		for _, r := range rows {
			mark[r] = true
		}
		for _, lvl := range h.lvls {
			for _, c := range lvl.Clusters {
				for _, m := range c.Members {
					if mark[m] {
						c.Diameter = paths.MaxPairwise(c.Members)
						reaudited++
						break
					}
				}
			}
		}
		for _, r := range rows {
			mark[r] = false
		}
		h.obsRebindDelta.Inc()
	}
	h.obsRebindAudited.Add(int64(reaudited))
	if tr := h.obsReg.Tracer(); tr.On() {
		tr.Emit(obs.Event{Kind: obs.KindHierarchyChanged, Query: obs.NoID, Node: obs.NoID,
			Value: float64(reaudited), Detail: "rebind"})
	}
	return nil
}

// AddNode inserts a new physical node into the hierarchy following the
// paper's join protocol: the request descends from the top, at each level
// moving to the member closest to the new node, until the node lands in a
// bottom-level cluster. Overfull clusters split in two; the new
// coordinator is promoted, which can cascade splits up the hierarchy and,
// at the very top, grow a new level.
//
// The node must already exist in the graph and be covered by the current
// path snapshot (use Rebind after extending the graph).
func (h *Hierarchy) AddNode(v netgraph.NodeID) error {
	sp := obs.StartSpan(h.obsReg, "hierarchy.add_node")
	defer sp.End()
	if int(v) >= h.g.NumNodes() {
		return fmt.Errorf("hierarchy: node %d not in graph", v)
	}
	if h.paths.StaleFor(h.g) {
		return fmt.Errorf("hierarchy: AddNode(%d) against a stale path snapshot; Rebind with a fresh one first", v)
	}
	if h.Contains(v) {
		return fmt.Errorf("hierarchy: node %d already present", v)
	}
	// Descend from the top to the closest bottom-level cluster.
	c := h.Top()
	for c.Level > 1 {
		best, bestD := c.Members[0], h.paths.Dist(v, c.Members[0])
		for _, m := range c.Members[1:] {
			if d := h.paths.Dist(v, m); d < bestD {
				best, bestD = m, d
			}
		}
		c = h.ChildCluster(best, c.Level)
	}
	h.insert(c, v)
	h.invalidate()
	h.rebuildRep()
	if tr := h.obsReg.Tracer(); tr.On() {
		tr.Emit(obs.Event{Kind: obs.KindHierarchyChanged, Query: obs.NoID, Node: int(v), Detail: "add_node"})
	}
	return nil
}

// insert places node v into cluster c (bottom-up recursion target) and
// splits c if it exceeds max_cs.
func (h *Hierarchy) insert(c *Cluster, v netgraph.NodeID) {
	lvl := h.lvls[c.Level-1]
	c.Members = append(c.Members, v)
	lvl.byNode[v] = c
	c.Diameter = h.paths.MaxPairwise(c.Members)
	if len(c.Members) <= h.maxCS {
		return
	}
	h.split(c)
}

// split divides an overfull cluster into two. The half containing the old
// coordinator keeps it; the other half elects a fresh coordinator, which
// is promoted into the parent cluster (possibly cascading).
func (h *Hierarchy) split(c *Cluster) {
	lvl := h.lvls[c.Level-1]
	members := c.Members
	dist := func(i, j int) float64 { return h.paths.Dist(members[i], members[j]) }
	// Splits are rare and local; a fixed seed keeps the structure
	// reproducible without threading the construction rng through mutations.
	res, err := cluster.KMedoids(len(members), 2, h.maxCS, dist, rand.New(rand.NewSource(1)), 8)
	if err != nil {
		// Unreachable: 2*maxCS >= maxCS+1 for maxCS >= 1.
		panic(err)
	}
	groups := res.Clusters()
	// Decide which group keeps the old cluster identity (the one holding
	// the old coordinator keeps its coordinator so upper levels stay valid).
	keepIdx := 0
	for gi, items := range groups {
		for _, it := range items {
			if members[it] == c.Coordinator {
				keepIdx = gi
			}
		}
	}
	toNodes := func(items []int) []netgraph.NodeID {
		out := make([]netgraph.NodeID, len(items))
		for i, it := range items {
			out[i] = members[it]
		}
		return out
	}
	keep := toNodes(groups[keepIdx])
	moved := toNodes(groups[1-keepIdx])
	if len(moved) == 0 {
		// Degenerate split; nothing to do (can only happen with duplicate
		// coordinates, where the cluster cannot actually shrink).
		c.Members = keep
		return
	}
	c.Members = keep
	c.Diameter = h.paths.MaxPairwise(keep)

	nc := &Cluster{
		Level:       c.Level,
		Members:     moved,
		Coordinator: h.paths.Medoid(moved),
		Diameter:    h.paths.MaxPairwise(moved),
	}
	lvl.Clusters = append(lvl.Clusters, nc)
	for _, m := range moved {
		lvl.byNode[m] = nc
	}

	// Promote the new coordinator one level up.
	if c.Level == len(h.lvls) {
		// Splitting the top cluster: grow a new top level.
		top := &Level{Index: c.Level + 1, byNode: map[netgraph.NodeID]*Cluster{}}
		members := []netgraph.NodeID{c.Coordinator, nc.Coordinator}
		tc := &Cluster{
			Level:       c.Level + 1,
			Members:     members,
			Coordinator: h.paths.Medoid(members),
			Diameter:    h.paths.MaxPairwise(members),
		}
		top.Clusters = []*Cluster{tc}
		for _, m := range members {
			top.byNode[m] = tc
		}
		h.lvls = append(h.lvls, top)
		return
	}
	parent := h.lvls[c.Level].byNode[c.Coordinator]
	h.insert(parent, nc.Coordinator)
}

// RemoveNode removes a physical node (e.g. on failure or departure). If
// the node coordinated clusters, the affected clusters elect new medoids
// and the replacement propagates up the hierarchy, mirroring the paper's
// coordinator back-up promotion. Empty clusters dissolve.
func (h *Hierarchy) RemoveNode(v netgraph.NodeID) error {
	sp := obs.StartSpan(h.obsReg, "hierarchy.remove_node")
	defer sp.End()
	c := h.lvls[0].byNode[v]
	if c == nil {
		return fmt.Errorf("hierarchy: node %d not present", v)
	}
	h.removeFrom(c, v)
	h.invalidate()
	h.rebuildRep()
	if tr := h.obsReg.Tracer(); tr.On() {
		tr.Emit(obs.Event{Kind: obs.KindHierarchyChanged, Query: obs.NoID, Node: int(v), Detail: "remove_node"})
	}
	return nil
}

func (h *Hierarchy) removeFrom(c *Cluster, v netgraph.NodeID) {
	lvl := h.lvls[c.Level-1]
	c.Members = removeID(c.Members, v)
	delete(lvl.byNode, v)

	if len(c.Members) == 0 {
		h.dropCluster(c)
		// The cluster's coordinator (== v, the last member) may still be
		// referenced above; remove it there too.
		if c.Level < len(h.lvls) {
			if up := h.lvls[c.Level].byNode[v]; up != nil {
				h.removeFrom(up, v)
			}
		}
		h.shrinkTop()
		return
	}

	c.Diameter = h.paths.MaxPairwise(c.Members)
	if c.Coordinator != v {
		return
	}
	// Elect a replacement coordinator and substitute it wherever v appeared
	// higher up.
	newCoord := h.paths.Medoid(c.Members)
	c.Coordinator = newCoord
	for l := c.Level + 1; l <= len(h.lvls); l++ {
		up := h.lvls[l-1].byNode[v]
		if up == nil {
			break
		}
		for i, m := range up.Members {
			if m == v {
				up.Members[i] = newCoord
			}
		}
		delete(h.lvls[l-1].byNode, v)
		h.lvls[l-1].byNode[newCoord] = up
		up.Diameter = h.paths.MaxPairwise(up.Members)
		if up.Coordinator != v {
			break
		}
		up.Coordinator = newCoord
	}
}

func (h *Hierarchy) dropCluster(c *Cluster) {
	lvl := h.lvls[c.Level-1]
	for i, cc := range lvl.Clusters {
		if cc == c {
			lvl.Clusters = append(lvl.Clusters[:i], lvl.Clusters[i+1:]...)
			return
		}
	}
}

// shrinkTop trims now-redundant top levels (a top level whose single
// cluster has a single member adds no information).
func (h *Hierarchy) shrinkTop() {
	for len(h.lvls) > 1 {
		top := h.lvls[len(h.lvls)-1]
		if len(top.Clusters) == 1 && len(top.Clusters[0].Members) <= 1 {
			h.lvls = h.lvls[:len(h.lvls)-1]
			continue
		}
		if len(top.Clusters) == 0 {
			h.lvls = h.lvls[:len(h.lvls)-1]
			continue
		}
		break
	}
}

func removeID(s []netgraph.NodeID, v netgraph.NodeID) []netgraph.NodeID {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}
