package hierarchy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hnp/internal/netgraph"
)

func buildTest(t *testing.T, n, maxCS int, seed int64) (*Hierarchy, *netgraph.Graph, *netgraph.Paths) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := netgraph.MustTransitStub(n, rng)
	p := g.ShortestPaths(netgraph.MetricCost)
	h, err := Build(g, p, maxCS, rng)
	if err != nil {
		t.Fatal(err)
	}
	return h, g, p
}

// validate checks all structural invariants of a hierarchy.
func validate(t *testing.T, h *Hierarchy) {
	t.Helper()
	if h.Height() < 1 {
		t.Fatal("height < 1")
	}
	top := h.LevelAt(h.Height())
	if len(top.Clusters) != 1 {
		t.Fatalf("top level has %d clusters", len(top.Clusters))
	}
	for l := 1; l <= h.Height(); l++ {
		lvl := h.LevelAt(l)
		if lvl.Index != l {
			t.Errorf("level %d has Index %d", l, lvl.Index)
		}
		seen := map[netgraph.NodeID]bool{}
		for _, c := range lvl.Clusters {
			if c.Level != l {
				t.Errorf("cluster at level %d labelled %d", l, c.Level)
			}
			if len(c.Members) == 0 {
				t.Errorf("empty cluster at level %d", l)
			}
			if len(c.Members) > h.MaxCS() {
				t.Errorf("level %d cluster has %d members > max_cs %d", l, len(c.Members), h.MaxCS())
			}
			foundCoord := false
			for _, m := range c.Members {
				if seen[m] {
					t.Errorf("node %d in two clusters at level %d", m, l)
				}
				seen[m] = true
				if h.ClusterOf(m, l) != c {
					t.Errorf("byNode inconsistent for %d at level %d", m, l)
				}
				if m == c.Coordinator {
					foundCoord = true
				}
			}
			if !foundCoord {
				t.Errorf("coordinator %d not a member at level %d", c.Coordinator, l)
			}
		}
		// Nodes at level l+1 are exactly the coordinators of level l.
		if l < h.Height() {
			up := h.LevelAt(l + 1)
			upNodes := map[netgraph.NodeID]bool{}
			for _, c := range up.Clusters {
				for _, m := range c.Members {
					upNodes[m] = true
				}
			}
			coords := map[netgraph.NodeID]bool{}
			for _, c := range lvl.Clusters {
				coords[c.Coordinator] = true
			}
			if len(upNodes) != len(coords) {
				t.Errorf("level %d: %d nodes above vs %d coordinators", l, len(upNodes), len(coords))
			}
			for m := range upNodes {
				if !coords[m] {
					t.Errorf("node %d at level %d is not a level-%d coordinator", m, l+1, l)
				}
			}
		}
	}
	// Cover of the top cluster is every active node, exactly once.
	cover := h.Cover(h.Top())
	seen := map[netgraph.NodeID]bool{}
	for _, v := range cover {
		if seen[v] {
			t.Errorf("node %d covered twice", v)
		}
		seen[v] = true
	}
	for _, c := range h.LevelAt(1).Clusters {
		for _, m := range c.Members {
			if !seen[m] {
				t.Errorf("active node %d missing from top cover", m)
			}
		}
	}
}

func TestBuildInvariants(t *testing.T) {
	for _, tc := range []struct{ n, maxCS int }{
		{8, 4}, {32, 4}, {64, 8}, {128, 32}, {128, 2},
	} {
		h, _, _ := buildTest(t, tc.n, tc.maxCS, int64(tc.n*100+tc.maxCS))
		validate(t, h)
	}
}

func TestBuildErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := netgraph.Line(4, 0)
	p := g.ShortestPaths(netgraph.MetricCost)
	if _, err := Build(g, p, 0, rng); err == nil {
		t.Error("maxCS=0 accepted")
	}
	if _, err := Build(g, p, 1, rng); err == nil {
		t.Error("maxCS=1 accepted")
	}
	if _, err := Build(netgraph.New(0), p, 4, rng); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestSingleNode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := netgraph.New(1)
	p := g.ShortestPaths(netgraph.MetricCost)
	h, err := Build(g, p, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if h.Height() != 1 {
		t.Errorf("height = %d", h.Height())
	}
	if h.Rep(0, 1) != 0 {
		t.Error("Rep broken for single node")
	}
}

func TestHeightGrowsAsMaxCSShrinks(t *testing.T) {
	h2, _, _ := buildTest(t, 128, 2, 1)
	h32, _, _ := buildTest(t, 128, 32, 1)
	if h2.Height() <= h32.Height() {
		t.Errorf("height(maxCS=2)=%d should exceed height(maxCS=32)=%d", h2.Height(), h32.Height())
	}
	// Sanity versus the log bound: height is near log_maxCS(N).
	if h32.Height() > 4 {
		t.Errorf("height %d too large for 128 nodes / max_cs 32", h32.Height())
	}
}

func TestRepAndEstCostLevel1IsExact(t *testing.T) {
	h, _, p := buildTest(t, 64, 8, 2)
	for v := netgraph.NodeID(0); v < 64; v++ {
		if h.Rep(v, 1) != v {
			t.Fatalf("Rep(%d,1) = %d", v, h.Rep(v, 1))
		}
	}
	if got, want := h.EstCost(3, 40, 1), p.Dist(3, 40); got != want {
		t.Errorf("EstCost at level 1 = %g, want %g", got, want)
	}
}

// Theorem 1: |actual - estimated at level l| <= sum_{i<l} 2*d_i.
func TestTheorem1Bound(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(100)
		maxCS := 2 + rng.Intn(10)
		g := netgraph.MustTransitStub(n, rng)
		p := g.ShortestPaths(netgraph.MetricCost)
		h, err := Build(g, p, maxCS, rng)
		if err != nil {
			return false
		}
		for trial := 0; trial < 50; trial++ {
			a := netgraph.NodeID(rng.Intn(n))
			b := netgraph.NodeID(rng.Intn(n))
			for l := 1; l <= h.Height(); l++ {
				act := p.Dist(a, b)
				est := h.EstCost(a, b, l)
				if math.Abs(act-est) > h.SumD(l)+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCoverPartitionsNetwork(t *testing.T) {
	h, g, _ := buildTest(t, 128, 16, 3)
	total := 0
	for _, c := range h.LevelAt(h.Height()).Clusters {
		total += len(h.Cover(c))
	}
	if total != g.NumNodes() {
		t.Errorf("top cover size %d, want %d", total, g.NumNodes())
	}
	// Covers of sibling level-2 clusters are disjoint.
	if h.Height() >= 2 {
		seen := map[netgraph.NodeID]int{}
		for ci, c := range h.LevelAt(2).Clusters {
			for _, v := range h.Cover(c) {
				if prev, ok := seen[v]; ok {
					t.Fatalf("node %d in covers of clusters %d and %d", v, prev, ci)
				}
				seen[v] = ci
			}
		}
	}
}

func TestChildCluster(t *testing.T) {
	h, _, _ := buildTest(t, 64, 8, 4)
	if h.ChildCluster(0, 1) != nil {
		t.Error("level-1 child should be nil")
	}
	for _, c := range h.LevelAt(2).Clusters {
		for _, m := range c.Members {
			child := h.ChildCluster(m, 2)
			if child == nil || child.Coordinator != m {
				t.Errorf("child of %d has coordinator %v", m, child)
			}
		}
	}
}

func TestRemoveLeafNode(t *testing.T) {
	h, _, _ := buildTest(t, 64, 8, 5)
	// Pick a non-coordinator node at level 1.
	var victim netgraph.NodeID = -1
	for _, c := range h.LevelAt(1).Clusters {
		for _, m := range c.Members {
			if m != c.Coordinator {
				victim = m
				break
			}
		}
		if victim >= 0 {
			break
		}
	}
	if err := h.RemoveNode(victim); err != nil {
		t.Fatal(err)
	}
	if h.Contains(victim) {
		t.Error("victim still present")
	}
	validate(t, h)
	if err := h.RemoveNode(victim); err == nil {
		t.Error("double remove accepted")
	}
}

func TestRemoveCoordinatorPromotesReplacement(t *testing.T) {
	h, _, _ := buildTest(t, 64, 8, 6)
	// Remove the root coordinator: the worst case for propagation.
	root := h.Top().Coordinator
	if err := h.RemoveNode(root); err != nil {
		t.Fatal(err)
	}
	if h.Contains(root) {
		t.Error("root still present at level 1")
	}
	validate(t, h)
	for l := 1; l <= h.Height(); l++ {
		if h.ClusterOf(root, l) != nil {
			t.Errorf("removed root still at level %d", l)
		}
	}
}

func TestRemoveManyNodesKeepsInvariants(t *testing.T) {
	h, g, _ := buildTest(t, 64, 4, 7)
	rng := rand.New(rand.NewSource(77))
	removed := map[netgraph.NodeID]bool{}
	for i := 0; i < 40; i++ {
		v := netgraph.NodeID(rng.Intn(g.NumNodes()))
		if removed[v] {
			continue
		}
		if err := h.RemoveNode(v); err != nil {
			t.Fatalf("remove %d: %v", v, err)
		}
		removed[v] = true
		validate(t, h)
	}
}

func TestAddNodeJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := netgraph.MustTransitStub(32, rng)
	p := g.ShortestPaths(netgraph.MetricCost)
	h, err := Build(g, p, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate arrival: remove a node, then re-join it.
	if err := h.RemoveNode(20); err != nil {
		t.Fatal(err)
	}
	if err := h.AddNode(20); err != nil {
		t.Fatal(err)
	}
	if !h.Contains(20) {
		t.Error("node 20 not present after join")
	}
	validate(t, h)
	if err := h.AddNode(20); err == nil {
		t.Error("double add accepted")
	}
	if err := h.AddNode(netgraph.NodeID(g.NumNodes())); err == nil {
		t.Error("out-of-graph node accepted")
	}
}

func TestAddNodeCascadingSplits(t *testing.T) {
	// Remove a third of the nodes then add them all back with max_cs 3:
	// splits must cascade and invariants must hold throughout.
	rng := rand.New(rand.NewSource(9))
	g := netgraph.MustTransitStub(48, rng)
	p := g.ShortestPaths(netgraph.MetricCost)
	h, err := Build(g, p, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	var victims []netgraph.NodeID
	for v := netgraph.NodeID(4); v < 20; v++ {
		victims = append(victims, v)
	}
	for _, v := range victims {
		if err := h.RemoveNode(v); err != nil {
			t.Fatalf("remove %d: %v", v, err)
		}
	}
	validate(t, h)
	for _, v := range victims {
		if err := h.AddNode(v); err != nil {
			t.Fatalf("add %d: %v", v, err)
		}
		validate(t, h)
	}
	for _, v := range victims {
		if !h.Contains(v) {
			t.Errorf("node %d missing after re-add", v)
		}
	}
}

func TestRebindUpdatesDiameters(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := netgraph.Line(8, 0)
	p := g.ShortestPaths(netgraph.MetricCost)
	h, err := Build(g, p, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	before := h.LevelAt(1).MaxDiameter()
	if err := g.SetLinkCost(0, 1, 100); err != nil {
		t.Fatal(err)
	}
	h.Rebind(g.ShortestPaths(netgraph.MetricCost))
	after := h.LevelAt(1).MaxDiameter()
	if after <= before {
		t.Errorf("diameter %g not increased after cost bump (was %g)", after, before)
	}
}

func TestNumClusters(t *testing.T) {
	h, _, _ := buildTest(t, 64, 8, 11)
	want := 0
	for l := 1; l <= h.Height(); l++ {
		want += len(h.LevelAt(l).Clusters)
	}
	if got := h.NumClusters(); got != want {
		t.Errorf("NumClusters = %d, want %d", got, want)
	}
}

// Property: arbitrary interleavings of node departures and re-joins keep
// every structural invariant intact.
func TestChurnProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(48)
		maxCS := 3 + rng.Intn(8)
		g := netgraph.MustTransitStub(n, rng)
		p := g.ShortestPaths(netgraph.MetricCost)
		h, err := Build(g, p, maxCS, rng)
		if err != nil {
			return false
		}
		out := map[netgraph.NodeID]bool{}
		present := n
		for step := 0; step < 30; step++ {
			v := netgraph.NodeID(rng.Intn(n))
			if out[v] {
				if err := h.AddNode(v); err != nil {
					return false
				}
				delete(out, v)
				present++
			} else if present > 2 {
				if err := h.RemoveNode(v); err != nil {
					return false
				}
				out[v] = true
				present--
			}
			// Spot-check the key invariants cheaply each step.
			if len(h.LevelAt(h.Height()).Clusters) != 1 {
				return false
			}
			if len(h.Cover(h.Top())) != present {
				return false
			}
			for l := 1; l <= h.Height(); l++ {
				for _, c := range h.LevelAt(l).Clusters {
					if len(c.Members) == 0 || len(c.Members) > maxCS {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
