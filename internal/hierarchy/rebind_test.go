package hierarchy

import (
	"math/rand"
	"testing"

	"hnp/internal/netgraph"
	"hnp/internal/obs"
)

// TestRebindRowsMatchesFull drives random link churn through two
// identically built hierarchies — one maintained with full Rebind, one
// with delta RebindRows fed by incremental path refreshes — and asserts
// every cluster diameter, coordinator, and rep-table entry stays
// identical, while the delta side re-audits strictly fewer clusters.
func TestRebindRowsMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := netgraph.MustTransitStub(64, rng)
	paths := g.ShortestPaths(netgraph.MetricCost)
	full := MustBuild(g, paths, 4, rand.New(rand.NewSource(52)))
	delta := MustBuild(g, paths, 4, rand.New(rand.NewSource(52)))

	prev := obs.Enabled.Load()
	obs.Enable()
	defer obs.Enabled.Store(prev)
	reg := obs.NewRegistry()
	delta.BindObs(reg)
	audited := reg.Counter("hierarchy.rebind_clusters_reaudited")

	// Churn only links whose drift stays local (a leaf node's only link
	// legitimately shifts every row's column to it and must recompute
	// fully): probe each link with a mild wiggle and keep the ones an
	// incremental refresh can absorb. Probes are reverted, and reverts
	// coalesce out of the delta log.
	var localLinks []netgraph.Link
	for _, l := range g.Links() {
		c, _ := g.LinkCost(l.A, l.B)
		if err := g.SetLinkCost(l.A, l.B, c*1.05); err != nil {
			t.Fatal(err)
		}
		_, stats := paths.RefreshFrom(g, nil)
		if err := g.SetLinkCost(l.A, l.B, c); err != nil {
			t.Fatal(err)
		}
		if stats.Mode == netgraph.RefreshIncremental && stats.RowsRecomputed > 0 {
			localLinks = append(localLinks, l)
		}
	}
	if len(localLinks) < 3 {
		t.Fatalf("topology has only %d links with local drift", len(localLinks))
	}

	cur, spare := paths, (*netgraph.Paths)(nil)
	churn := rand.New(rand.NewSource(53))
	totalAudited := int64(0)
	for step := 0; step < 30; step++ {
		l := localLinks[churn.Intn(len(localLinks))]
		c, _ := g.LinkCost(l.A, l.B)
		if err := g.SetLinkCost(l.A, l.B, c*(0.9+churn.Float64()*0.2)); err != nil {
			t.Fatal(err)
		}
		old := cur
		next, stats := cur.RefreshFrom(g, spare)
		cur, spare = next, old

		if err := full.Rebind(g.ShortestPaths(netgraph.MetricCost)); err != nil {
			t.Fatal(err)
		}
		before := audited.Value()
		if err := delta.RebindRows(cur, stats.Rows); err != nil {
			t.Fatal(err)
		}
		totalAudited += audited.Value() - before

		if full.Height() != delta.Height() {
			t.Fatalf("step %d: heights diverged: %d vs %d", step, full.Height(), delta.Height())
		}
		for li := 1; li <= full.Height(); li++ {
			fl, dl := full.LevelAt(li), delta.LevelAt(li)
			if len(fl.Clusters) != len(dl.Clusters) {
				t.Fatalf("step %d level %d: cluster counts diverged", step, li)
			}
			for ci := range fl.Clusters {
				fc, dc := fl.Clusters[ci], dl.Clusters[ci]
				if fc.Coordinator != dc.Coordinator {
					t.Fatalf("step %d level %d cluster %d: coordinators diverged", step, li, ci)
				}
				if fc.Diameter != dc.Diameter {
					t.Fatalf("step %d level %d cluster %d: diameter %g (full) vs %g (delta)",
						step, li, ci, fc.Diameter, dc.Diameter)
				}
			}
		}
		for v := 0; v < g.NumNodes(); v++ {
			for li := 1; li <= full.Height(); li++ {
				if full.Rep(netgraph.NodeID(v), li) != delta.Rep(netgraph.NodeID(v), li) {
					t.Fatalf("step %d: rep(%d, %d) diverged", step, v, li)
				}
			}
		}
		if err := delta.CheckInvariants(); err != nil {
			t.Fatalf("step %d: delta-maintained hierarchy: %v", step, err)
		}
	}
	if maxAudit := int64(30 * delta.NumClusters()); totalAudited >= maxAudit {
		t.Errorf("delta rebind re-audited %d clusters, no better than full's %d", totalAudited, maxAudit)
	}
	deltas := reg.Counter("hierarchy.rebind_delta").Value()
	fulls := reg.Counter("hierarchy.rebind_full").Value()
	if deltas+fulls != 30 {
		t.Errorf("rebind counters = %d delta + %d full, want 30 total", deltas, fulls)
	}
	if deltas < 10 {
		t.Errorf("only %d of 30 mild-drift rebinds took the delta path", deltas)
	}
}
