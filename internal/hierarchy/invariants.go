package hierarchy

import (
	"fmt"
	"math"

	"hnp/internal/netgraph"
)

// diameterTolerance absorbs float accumulation differences between the
// stored cluster diameter and a recomputation over the same path snapshot.
const diameterTolerance = 1e-9

// CheckInvariants verifies the structural well-formedness the rest of the
// system plans against, and returns the first violation found:
//
//   - every level is non-empty, 1-indexed, and its byNode index maps
//     exactly the members of its clusters, each member to its one cluster;
//   - every cluster is non-empty, holds at most max_cs members, has its
//     coordinator among its members, and stores a diameter equal to the
//     maximum pairwise traversal cost of its members under the current
//     path snapshot;
//   - the members of level l+1 are exactly the coordinators of level l
//     (the promotion bijection), and the top level has a single cluster;
//   - the dense representative table agrees with an explicit walk up the
//     coordinator chain for every present node at every level, and holds
//     the -1 poison for absent nodes;
//   - the path snapshot the hierarchy measures costs against is not stale
//     for its graph.
//
// It is a read-only audit: safe to call between mutations, intended for
// tests and the chaos harness rather than hot paths (cost is roughly one
// Rebind).
func (h *Hierarchy) CheckInvariants() error {
	if len(h.lvls) == 0 {
		return fmt.Errorf("hierarchy: no levels")
	}
	if h.paths.StaleFor(h.g) {
		return fmt.Errorf("hierarchy: path snapshot stale (snapshot version %d, graph version %d)",
			h.paths.Version(), h.g.Version())
	}
	for li, lvl := range h.lvls {
		if lvl.Index != li+1 {
			return fmt.Errorf("hierarchy: level at position %d has index %d", li, lvl.Index)
		}
		if len(lvl.Clusters) == 0 {
			return fmt.Errorf("hierarchy: level %d has no clusters", lvl.Index)
		}
		seen := map[netgraph.NodeID]*Cluster{}
		for ci, c := range lvl.Clusters {
			if c.Level != lvl.Index {
				return fmt.Errorf("hierarchy: cluster %d at level %d claims level %d", ci, lvl.Index, c.Level)
			}
			if len(c.Members) == 0 {
				return fmt.Errorf("hierarchy: empty cluster %d at level %d", ci, lvl.Index)
			}
			if len(c.Members) > h.maxCS {
				return fmt.Errorf("hierarchy: cluster %d at level %d has %d members, max_cs is %d",
					ci, lvl.Index, len(c.Members), h.maxCS)
			}
			coordSeen := false
			for _, m := range c.Members {
				if prev := seen[m]; prev != nil {
					return fmt.Errorf("hierarchy: node %d in two clusters at level %d", m, lvl.Index)
				}
				seen[m] = c
				if lvl.byNode[m] != c {
					return fmt.Errorf("hierarchy: byNode[%d] at level %d does not point at the node's cluster", m, lvl.Index)
				}
				if m == c.Coordinator {
					coordSeen = true
				}
			}
			if !coordSeen {
				return fmt.Errorf("hierarchy: coordinator %d of cluster %d at level %d is not a member",
					c.Coordinator, ci, lvl.Index)
			}
			if want := h.paths.MaxPairwise(c.Members); math.Abs(want-c.Diameter) > diameterTolerance {
				return fmt.Errorf("hierarchy: cluster %d at level %d stores diameter %g, members measure %g",
					ci, lvl.Index, c.Diameter, want)
			}
		}
		if len(lvl.byNode) != len(seen) {
			return fmt.Errorf("hierarchy: level %d byNode has %d entries for %d members (stale index entries)",
				lvl.Index, len(lvl.byNode), len(seen))
		}
		if li+1 < len(h.lvls) {
			// Promotion bijection: the level above holds exactly this
			// level's coordinators.
			above := h.lvls[li+1]
			promoted := map[netgraph.NodeID]bool{}
			for _, c := range lvl.Clusters {
				promoted[c.Coordinator] = true
			}
			if len(above.byNode) != len(promoted) {
				return fmt.Errorf("hierarchy: level %d has %d members for %d coordinators below",
					above.Index, len(above.byNode), len(promoted))
			}
			for m := range above.byNode {
				if !promoted[m] {
					return fmt.Errorf("hierarchy: node %d at level %d is not a coordinator at level %d",
						m, above.Index, lvl.Index)
				}
			}
		} else if len(lvl.Clusters) != 1 {
			return fmt.Errorf("hierarchy: top level %d has %d clusters, want 1", lvl.Index, len(lvl.Clusters))
		}
	}
	return h.checkRepTable()
}

// checkRepTable pins the dense representative table to an explicit walk up
// the coordinator chain.
func (h *Hierarchy) checkRepTable() error {
	n := h.g.NumNodes()
	height := len(h.lvls)
	if len(h.rep) != height {
		return fmt.Errorf("hierarchy: rep table has %d levels, hierarchy has %d", len(h.rep), height)
	}
	for l := 0; l < height; l++ {
		if len(h.rep[l]) != n {
			return fmt.Errorf("hierarchy: rep table level %d has %d entries for %d nodes", l+1, len(h.rep[l]), n)
		}
	}
	for v := 0; v < n; v++ {
		id := netgraph.NodeID(v)
		if !h.Contains(id) {
			for l := 0; l < height; l++ {
				if h.rep[l][v] != -1 {
					return fmt.Errorf("hierarchy: absent node %d has rep %d at level %d, want -1", v, h.rep[l][v], l+1)
				}
			}
			continue
		}
		r := id
		for l := 1; l <= height; l++ {
			if l > 1 {
				c := h.lvls[l-2].byNode[r]
				if c == nil {
					return fmt.Errorf("hierarchy: coordinator chain of node %d breaks at level %d", v, l)
				}
				r = c.Coordinator
			}
			if got := h.rep[l-1][v]; got != r {
				return fmt.Errorf("hierarchy: rep[%d][%d] = %d, chain walk gives %d", l, v, got, r)
			}
		}
	}
	return nil
}
