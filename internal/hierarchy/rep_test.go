package hierarchy

import (
	"fmt"
	"math/rand"
	"testing"

	"hnp/internal/netgraph"
)

// repWalk is the pre-table reference implementation of Rep: walk the
// coordinator chain up the hierarchy one byNode lookup per level. The
// dense rep table must agree with it everywhere, always.
func repWalk(h *Hierarchy, v netgraph.NodeID, level int) netgraph.NodeID {
	r := v
	for i := 1; i < level; i++ {
		c := h.lvls[i-1].byNode[r]
		if c == nil {
			panic("rep_test: node absent mid-chain")
		}
		r = c.Coordinator
	}
	return r
}

// checkRepAgainstWalk asserts Rep and EstCost computed via the dense table
// match the chain walk for every present node at every level.
func checkRepAgainstWalk(t *testing.T, h *Hierarchy, tag string) {
	t.Helper()
	n := h.Graph().NumNodes()
	for v := 0; v < n; v++ {
		id := netgraph.NodeID(v)
		if !h.Contains(id) {
			continue
		}
		for l := 1; l <= h.Height(); l++ {
			want := repWalk(h, id, l)
			if got := h.Rep(id, l); got != want {
				t.Fatalf("%s: Rep(%d, %d) = %d, walk gives %d", tag, v, l, got, want)
			}
		}
	}
	// EstCost spot check across a few random pairs at each level.
	rng := rand.New(rand.NewSource(int64(n)))
	for l := 1; l <= h.Height(); l++ {
		for trial := 0; trial < 32; trial++ {
			a := netgraph.NodeID(rng.Intn(n))
			b := netgraph.NodeID(rng.Intn(n))
			if !h.Contains(a) || !h.Contains(b) {
				continue
			}
			want := h.Paths().Dist(repWalk(h, a, l), repWalk(h, b, l))
			if got := h.EstCost(a, b, l); got != want {
				t.Fatalf("%s: EstCost(%d, %d, %d) = %g, walk gives %g", tag, a, b, l, got, want)
			}
		}
	}
}

// TestRepTableMatchesChainWalk pins the dense rep table to the explicit
// coordinator-chain walk across random hierarchies, including after every
// maintenance operation (Rebind, AddNode, RemoveNode) that rebuilds it.
func TestRepTableMatchesChainWalk(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 24 + rng.Intn(40)
		g := netgraph.Random(n, 2.5, netgraph.CostRange{Lo: 1, Hi: 10}, netgraph.CostRange{Lo: 0.001, Hi: 0.05}, rng)
		paths := g.ShortestPaths(netgraph.MetricCost)
		maxCS := 3 + rng.Intn(6)
		h, err := Build(g, paths, maxCS, rng)
		if err != nil {
			t.Fatal(err)
		}
		checkRepAgainstWalk(t, h, "fresh build")

		// RemoveNode: drop a few members, some of them coordinators
		// (removing a level-1 coordinator exercises promotion substitution).
		var removed []netgraph.NodeID
		for i := 0; i < 3; i++ {
			var victim netgraph.NodeID = -1
			if i == 0 {
				victim = h.LevelAt(1).Clusters[0].Coordinator
			} else {
				for {
					cand := netgraph.NodeID(rng.Intn(n))
					if h.Contains(cand) {
						victim = cand
						break
					}
				}
			}
			if err := h.RemoveNode(victim); err != nil {
				t.Fatal(err)
			}
			removed = append(removed, victim)
			checkRepAgainstWalk(t, h, "after RemoveNode")
		}

		// Rebind: mutate a link cost and swap in a fresh snapshot.
		links := g.Links()
		l := links[rng.Intn(len(links))]
		if err := g.SetLinkCost(l.A, l.B, l.Cost+1); err != nil {
			t.Fatal(err)
		}
		paths = g.ShortestPaths(netgraph.MetricCost)
		if err := h.Rebind(paths); err != nil {
			t.Fatal(err)
		}
		checkRepAgainstWalk(t, h, "after Rebind")

		// AddNode: re-join the removed nodes (splits can cascade and grow
		// new levels).
		for _, v := range removed {
			if err := h.AddNode(v); err != nil {
				t.Fatal(err)
			}
			checkRepAgainstWalk(t, h, "after AddNode")
		}
	}
}

// TestChurnInvariants is a property test: under long random sequences of
// RemoveNode / AddNode / Rebind churn, every structural invariant the
// hierarchy promises (partition per level, size caps, coordinator
// membership, exact diameters, promotion bijection, single top cluster,
// fresh paths, dense rep table) must hold after every single operation.
func TestChurnInvariants(t *testing.T) {
	ops := 120
	if testing.Short() {
		ops = 40
	}
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(30)
		g := netgraph.Random(n, 2.5, netgraph.CostRange{Lo: 1, Hi: 10}, netgraph.CostRange{Lo: 0.001, Hi: 0.05}, rng)
		paths := g.ShortestPaths(netgraph.MetricCost)
		maxCS := 3 + rng.Intn(5)
		h, err := Build(g, paths, maxCS, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: fresh build: %v", seed, err)
		}

		present := make([]bool, n)
		absent := make([]netgraph.NodeID, 0, n)
		for i := range present {
			present[i] = true
		}
		minPresent := n / 3
		nPresent := n

		for op := 0; op < ops; op++ {
			var desc string
			switch k := rng.Intn(5); {
			case k <= 1 && nPresent > minPresent: // remove
				var members []netgraph.NodeID
				for v, ok := range present {
					if ok {
						members = append(members, netgraph.NodeID(v))
					}
				}
				v := members[rng.Intn(len(members))]
				desc = fmt.Sprintf("RemoveNode(%d)", v)
				if err := h.RemoveNode(v); err != nil {
					t.Fatalf("seed %d op %d: %s: %v", seed, op, desc, err)
				}
				present[v] = false
				absent = append(absent, v)
				nPresent--
			case k <= 3 && len(absent) > 0: // add back
				i := rng.Intn(len(absent))
				v := absent[i]
				desc = fmt.Sprintf("AddNode(%d)", v)
				if err := h.AddNode(v); err != nil {
					t.Fatalf("seed %d op %d: %s: %v", seed, op, desc, err)
				}
				absent = append(absent[:i], absent[i+1:]...)
				present[v] = true
				nPresent++
			default: // rebind after link churn
				links := g.Links()
				l := links[rng.Intn(len(links))]
				cost := l.Cost * (0.5 + rng.Float64()*1.5)
				desc = fmt.Sprintf("Rebind(link %d-%d -> %.3f)", l.A, l.B, cost)
				if err := g.SetLinkCost(l.A, l.B, cost); err != nil {
					t.Fatalf("seed %d op %d: %s: %v", seed, op, desc, err)
				}
				if err := h.Rebind(g.ShortestPaths(netgraph.MetricCost)); err != nil {
					t.Fatalf("seed %d op %d: %s: %v", seed, op, desc, err)
				}
			}
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("seed %d op %d: after %s: %v", seed, op, desc, err)
			}
			for v, ok := range present {
				if h.Contains(netgraph.NodeID(v)) != ok {
					t.Fatalf("seed %d op %d: after %s: node %d present=%v, hierarchy says %v",
						seed, op, desc, v, ok, !ok)
				}
			}
		}
	}
}
