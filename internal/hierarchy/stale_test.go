package hierarchy

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"hnp/internal/netgraph"
)

func staleWorld(t *testing.T) (*netgraph.Graph, *Hierarchy) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	g := netgraph.MustTransitStub(32, rng)
	p := g.ShortestPaths(netgraph.MetricCost)
	h, err := Build(g, p, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g, h
}

// TestRebindRejectsStaleSnapshot: a snapshot computed before the latest
// graph mutation must be refused — rebinding to it would measure every
// cluster diameter against a network that no longer exists.
func TestRebindRejectsStaleSnapshot(t *testing.T) {
	g, h := staleWorld(t)
	old := g.ShortestPaths(netgraph.MetricCost)
	links := g.Links()
	if err := g.SetLinkCost(links[0].A, links[0].B, links[0].Cost*5); err != nil {
		t.Fatal(err)
	}
	if err := h.Rebind(old); err == nil {
		t.Fatal("Rebind accepted a stale snapshot")
	}
	if err := h.Rebind(g.ShortestPaths(netgraph.MetricCost)); err != nil {
		t.Fatalf("Rebind rejected a fresh snapshot: %v", err)
	}
}

// TestAddNodeRejectsStaleSnapshot: after the graph mutates, AddNode must
// demand a Rebind instead of routing the join through outdated distances.
func TestAddNodeRejectsStaleSnapshot(t *testing.T) {
	g, h := staleWorld(t)
	if err := h.RemoveNode(20); err != nil {
		t.Fatal(err)
	}
	links := g.Links()
	if err := g.SetLinkCost(links[0].A, links[0].B, links[0].Cost*5); err != nil {
		t.Fatal(err)
	}
	if err := h.AddNode(20); err == nil {
		t.Fatal("AddNode accepted a stale snapshot")
	}
	if err := h.Rebind(g.ShortestPaths(netgraph.MetricCost)); err != nil {
		t.Fatal(err)
	}
	if err := h.AddNode(20); err != nil {
		t.Fatalf("AddNode after Rebind: %v", err)
	}
}

// TestCoverConcurrent exercises the lazily-filled cover cache from many
// goroutines at once (run with -race): concurrent planners share one
// hierarchy.
func TestCoverConcurrent(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	_, h := staleWorld(t)
	want := len(h.Cover(h.Top()))
	h.invalidate()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if got := len(h.Cover(h.Top())); got != want {
					t.Errorf("cover size %d, want %d", got, want)
					return
				}
				for l := 1; l <= h.Height(); l++ {
					for _, c := range h.LevelAt(l).Clusters {
						h.Cover(c)
					}
				}
			}
		}()
	}
	wg.Wait()
}
