package hnp

import (
	"testing"

	"hnp/internal/obs"
)

// countDerived tallies derived-leaf ground truth for a deployment's plan,
// independently of the telemetry path under test.
func countDerived(n *PlanNode) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		if n.In != nil && n.In.Derived {
			return 1
		}
		return 0
	}
	return countDerived(n.L) + countDerived(n.R)
}

// TestSnapshotReuseCountersMatchRegistry runs three overlapping Deploy
// calls and checks the snapshot's reuse accounting against ground truth
// recomputed from the deployed plans and the advertisement registry.
func TestSnapshotReuseCountersMatchRegistry(t *testing.T) {
	prev := obs.Enabled.Load()
	EnableTelemetry()
	defer obs.Enabled.Store(prev)

	g := TransitStubNetwork(64, 3)
	sys, err := NewSystem(g, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := sys.AddStream("A", 40, 4)
	b := sys.AddStream("B", 30, 20)
	c := sys.AddStream("C", 25, 50)
	d := sys.AddStream("D", 20, 33)
	for _, p := range [][2]StreamID{{a, b}, {a, c}, {a, d}, {b, c}, {b, d}, {c, d}} {
		sys.SetSelectivity(p[0], p[1], 0.01)
	}

	// Three overlapping queries: the second and third share the {A,B}
	// (and for the third, possibly {A,B,C}) subexpressions with earlier
	// deployments, so reuse is on the table each time after the first.
	var wantHits int
	for _, spec := range []struct {
		sources []StreamID
		sink    NodeID
	}{
		{[]StreamID{a, b, c}, 9},
		{[]StreamID{a, b, c}, 41},
		{[]StreamID{a, b, c, d}, 17},
	} {
		dep, err := sys.Deploy(spec.sources, spec.sink, AlgoTopDown)
		if err != nil {
			t.Fatal(err)
		}
		wantHits += countDerived(dep.Plan)
	}

	snap := sys.Snapshot()
	if got := snap.Counter("ads.reuse_hits"); got != int64(wantHits) {
		t.Errorf("ads.reuse_hits = %d, ground truth %d", got, wantHits)
	}
	// The first deployment faces an empty registry, so hits and misses
	// together can cover at most the two later deployments.
	misses := snap.Counter("ads.reuse_misses")
	if misses < 0 || misses > 2 {
		t.Errorf("ads.reuse_misses = %d, want within [0,2]", misses)
	}
	// Advertised-count ground truth: the registry is the source of record.
	if got := snap.Counter("ads.advertised"); got != int64(sys.Registry.Len()) {
		t.Errorf("ads.advertised = %d, registry holds %d", got, sys.Registry.Len())
	}
	if wantHits == 0 {
		t.Log("note: no reuse occurred in this scenario; hits ground truth is 0")
	}
	// Identical repeat query: its whole result is already materialized, so
	// reuse must hit and the counter must move by exactly the plan's
	// derived leaves.
	before := snap.Counter("ads.reuse_hits")
	rep, err := sys.Deploy([]StreamID{a, b, c}, 9, AlgoTopDown)
	if err != nil {
		t.Fatal(err)
	}
	gotDelta := sys.Snapshot().Counter("ads.reuse_hits") - before
	if want := int64(countDerived(rep.Plan)); gotDelta != want {
		t.Errorf("repeat deploy moved reuse_hits by %d, plan has %d derived leaves", gotDelta, want)
	}
	if countDerived(rep.Plan) == 0 {
		t.Error("repeat of an identical deployed query did not reuse anything")
	}
}

// TestSnapshotDisabledEmpty: with telemetry off, deployments leave no
// trace in the snapshot.
func TestSnapshotDisabledEmpty(t *testing.T) {
	prev := obs.Enabled.Load()
	DisableTelemetry()
	defer obs.Enabled.Store(prev)

	sys, ids := newTestSystem(t)
	if _, err := sys.Deploy(ids, 9, AlgoTopDown); err != nil {
		t.Fatal(err)
	}
	snap := sys.Snapshot()
	for _, name := range snap.Names() {
		if snap.Counter(name) != 0 || snap.Gauge(name) != 0 {
			t.Errorf("metric %q recorded while telemetry disabled", name)
		}
	}
}

// TestPlanLeavesCountersUntouched: what-if planning must not move
// deployment counters — Plan has no side effects on reuse accounting.
func TestPlanLeavesCountersUntouched(t *testing.T) {
	prev := obs.Enabled.Load()
	EnableTelemetry()
	defer obs.Enabled.Store(prev)

	sys, ids := newTestSystem(t)
	if _, err := sys.Plan(ids, 9, AlgoTopDown); err != nil {
		t.Fatal(err)
	}
	snap := sys.Snapshot()
	if snap.Counter("ads.advertised") != 0 {
		t.Error("Plan advertised operators")
	}
	if snap.Counter("ads.reuse_hits") != 0 || snap.Counter("ads.reuse_misses") != 0 {
		t.Error("Plan recorded reuse outcomes")
	}
	// Planner telemetry still flows: the search itself is instrumented.
	if snap.Counter("core.topdown.plan.calls") != 1 {
		t.Error("planner span not recorded")
	}
}
