// Containment demonstrates the query-containment extension (the paper's
// §5 future work): a broad monitoring query is deployed first; narrower
// queries over the same streams then reuse its operators through residual
// filters applied at the producing nodes, instead of re-joining the base
// streams from scratch.
package main

import (
	"fmt"
	"log"

	"hnp"
)

func main() {
	g := hnp.TransitStubNetwork(64, 17)
	sys, err := hnp.NewSystem(g, 16, 17)
	if err != nil {
		log.Fatal(err)
	}

	flights := sys.AddStream("FLIGHTS", 60, 11)
	checkins := sys.AddStream("CHECK-INS", 45, 40)
	sys.SetSelectivity(flights, checkins, 0.004)
	srcs := []hnp.StreamID{flights, checkins}

	// A broad operations dashboard: all flights departing within 24h
	// (dp_time normalized to [0,1] over the horizon).
	broad := hnp.MustPredSet(hnp.Pred{
		Stream: flights, Attr: "dp_time", Range: hnp.Range{Lo: 0, Hi: 1},
	})
	dash, err := sys.DeployWhere(srcs, 9, hnp.AlgoTopDown, broad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("broad dashboard (24h horizon):")
	fmt.Printf("  plan: %s\n  cost: %.1f\n\n", dash.Plan, dash.Cost)

	// A gate display needs only the next 3 hours — strictly contained in
	// the dashboard's results.
	narrow := hnp.MustPredSet(hnp.Pred{
		Stream: flights, Attr: "dp_time", Range: hnp.Range{Lo: 0, Hi: 0.125},
	})
	gate, err := sys.DeployWhere(srcs, 33, hnp.AlgoTopDown, narrow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("gate display (3h horizon), planned with containment:")
	fmt.Printf("  plan: %s\n  marginal cost: %.1f\n", gate.Plan, gate.Cost)
	for _, leaf := range gate.Plan.Leaves() {
		if leaf.In.Derived {
			fmt.Printf("  -> reuses [%s] at node %d", leaf.In.Sig, leaf.Loc)
			if leaf.In.BaseSig != "" {
				fmt.Printf(" via residual filter on the broader stream [%s]", leaf.In.BaseSig)
			}
			fmt.Println()
		}
	}

	// The same query in a world without the dashboard: full price.
	fresh, err := hnp.NewSystem(g, 16, 17)
	if err != nil {
		log.Fatal(err)
	}
	f2 := fresh.AddStream("FLIGHTS", 60, 11)
	c2 := fresh.AddStream("CHECK-INS", 45, 40)
	fresh.SetSelectivity(f2, c2, 0.004)
	narrow2 := hnp.MustPredSet(hnp.Pred{
		Stream: f2, Attr: "dp_time", Range: hnp.Range{Lo: 0, Hi: 0.125},
	})
	alone, err := fresh.PlanWhere([]hnp.StreamID{f2, c2}, 33, hnp.AlgoTopDown, narrow2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwithout containment the gate display would cost %.1f (%.0f%% more)\n",
		alone.Cost, 100*(alone.Cost/gate.Cost-1))

	// The reverse is impossible: a broader query cannot be answered from a
	// narrower stream; it deploys fresh operators instead.
	wider := hnp.MustPredSet(hnp.Pred{
		Stream: flights, Attr: "dp_time", Range: hnp.Range{Lo: 0, Hi: 0.5},
	})
	half, err := sys.DeployWhere(srcs, 50, hnp.AlgoTopDown, wider)
	if err != nil {
		log.Fatal(err)
	}
	fromGate := false
	for _, leaf := range half.Plan.Leaves() {
		if leaf.In.Derived && leaf.In.BaseSig != "" && leaf.In.BaseSig == gate.Query.SigOf(gate.Query.All()) {
			fromGate = true
		}
	}
	fmt.Printf("\n12h query deployed (cost %.1f); reused the 3h gate stream: %v "+
		"(it can reuse the 24h dashboard, never the narrower gate stream)\n",
		half.Cost, fromGate)
}
