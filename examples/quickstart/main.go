// Quickstart: build a network, register streams, and deploy one query
// with each optimizer, comparing plans, costs, and search-space sizes.
package main

import (
	"fmt"
	"log"

	"hnp"
)

func main() {
	// A 64-node Internet-style (transit-stub) network; stub links are
	// cheap intranet links, the 4-node backbone is expensive.
	g := hnp.TransitStubNetwork(64, 1)

	// Cluster it into a virtual hierarchy with at most 8 nodes/cluster.
	sys, err := hnp.NewSystem(g, 8, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Three geographically spread stream sources with measured rates
	// (cost units per unit time) and pairwise join selectivities.
	orders := sys.AddStream("ORDERS", 80, 10)
	inventory := sys.AddStream("INVENTORY", 35, 33)
	shipments := sys.AddStream("SHIPMENTS", 20, 55)
	sys.SetSelectivity(orders, inventory, 0.004)
	sys.SetSelectivity(orders, shipments, 0.010)
	sys.SetSelectivity(inventory, shipments, 0.008)

	sources := []hnp.StreamID{orders, inventory, shipments}
	const sink = hnp.NodeID(7)

	fmt.Println("Deploying ORDERS ⋈ INVENTORY ⋈ SHIPMENTS to node 7:")
	fmt.Println()
	for _, algo := range []hnp.Algorithm{
		hnp.AlgoTopDown, hnp.AlgoBottomUp, hnp.AlgoPlanThenDeploy, hnp.AlgoOptimal,
	} {
		d, err := sys.Plan(sources, sink, algo)
		if err != nil {
			log.Fatalf("%v: %v", algo, err)
		}
		fmt.Printf("%-17s cost/unit-time %8.1f   plans examined %10.0f\n",
			algo.String(), d.Cost, d.PlansConsidered)
		fmt.Printf("%-17s plan: %s\n\n", "", d.Plan)
	}

	fmt.Println("The hierarchical algorithms examine a small fraction of the")
	fmt.Println("exhaustive space while staying close to the optimal cost.")
}
