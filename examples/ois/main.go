// OIS recreates the paper's motivating scenario (Section 1.1): Delta Air
// Lines' Operational Information System with WEATHER, FLIGHTS and
// CHECK-INS streams, using the paper's own SQL-like query text. Query Q2
// (FLIGHTS ⋈ CHECK-INS for Atlanta departures) is deployed first; query
// Q1 then joins all three streams with the same predicates, and the
// optimizer decides — during planning, not after — whether to reuse Q2's
// deployed join or to duplicate it, exactly the trade-off the paper
// motivates with this example.
package main

import (
	"fmt"
	"log"

	"hnp"
)

// The paper's queries, §1.1, with DP-TIME - CURRENT TIME < 12:00 written
// as a normalized departure-time predicate (12h of a 24h horizon = 0.5).
const (
	q2SQL = `SELECT FLIGHTS.STATUS, CHECK-INS.STATUS
	         FROM FLIGHTS, CHECK-INS
	         WHERE FLIGHTS.DEPARTING = 'ATLANTA'
	           AND FLIGHTS.NUM = CHECK-INS.FLNUM
	           AND FLIGHTS.DP_TIME < 0.5`

	q1SQL = `SELECT FLIGHTS.STATUS, WEATHER.FORECAST, CHECK-INS.STATUS
	         FROM FLIGHTS, WEATHER, CHECK-INS
	         WHERE FLIGHTS.DEPARTING = 'ATLANTA'
	           AND FLIGHTS.DESTN = WEATHER.CITY
	           AND FLIGHTS.NUM = CHECK-INS.FLNUM
	           AND FLIGHTS.DP_TIME < 0.5`
)

func main() {
	// A 32-node airline network: cheap intranet clusters (airports/hubs)
	// behind a costly backbone.
	g := hnp.TransitStubNetwork(32, 7)
	sys, err := hnp.NewSystem(g, 8, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Stream sources: flight events are high volume; weather updates and
	// check-in events are lighter. Joins on flight number / destination
	// city are selective.
	weather := sys.AddStream("WEATHER", 18, 5)
	flights := sys.AddStream("FLIGHTS", 60, 12)
	checkins := sys.AddStream("CHECK-INS", 45, 13)
	sys.SetSelectivity(flights, weather, 0.012)
	sys.SetSelectivity(flights, checkins, 0.004)
	sys.SetSelectivity(weather, checkins, 0.020)

	// Q2: gate-agent display near the check-in systems (sink node 14).
	q2, err := sys.DeployCQL(q2SQL, 14, hnp.AlgoTopDown)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q2 = FLIGHTS ⋈ CHECK-INS (Atlanta, <12h)  ->  sink 14")
	fmt.Printf("  plan: %s\n  cost: %.1f per unit time\n\n", q2.Plan, q2.Cost)

	// Q1: terminal overhead display elsewhere (sink node 9).
	q1, err := sys.DeployCQL(q1SQL, 9, hnp.AlgoTopDown)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q1 = FLIGHTS ⋈ WEATHER ⋈ CHECK-INS (same predicates)  ->  sink 9")
	fmt.Printf("  plan: %s\n  marginal cost: %.1f per unit time\n", q1.Plan, q1.Cost)

	reused := false
	for _, leaf := range q1.Plan.Leaves() {
		if leaf.In.Derived {
			reused = true
			fmt.Printf("  -> reuses deployed operator [%s] at node %d (derived stream)\n",
				leaf.In.Sig, leaf.Loc)
		}
	}
	if !reused {
		fmt.Println("  -> duplicating FLIGHTS ⋈ CHECK-INS was cheaper than reuse here")
	}

	// What would Q1 have cost without knowing about Q2's operators?
	fresh, err := hnp.NewSystem(g, 8, 7)
	if err != nil {
		log.Fatal(err)
	}
	fresh.AddStream("WEATHER", 18, 5)
	f2 := fresh.AddStream("FLIGHTS", 60, 12)
	c2 := fresh.AddStream("CHECK-INS", 45, 13)
	fresh.SetSelectivity(f2, weather, 0.012)
	fresh.SetSelectivity(f2, c2, 0.004)
	fresh.SetSelectivity(weather, c2, 0.020)
	alone, err := fresh.DeployCQL(q1SQL, 9, hnp.AlgoTopDown)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ1 planned in isolation would cost %.1f; multi-query awareness saves %.1f%%\n",
		alone.Cost, 100*(1-q1.Cost/alone.Cost))
}
