// Adaptive runs a query inside the simulated IFLOW runtime, degrades the
// network mid-flight, and shows the middleware layer re-triggering the
// optimizer and migrating the deployment — the self-adaptivity loop of
// Figure 1(b).
package main

import (
	"fmt"
	"log"

	"hnp"
	"hnp/internal/core"
	"hnp/internal/iflow"
	"hnp/internal/query"
)

func main() {
	g := hnp.TransitStubNetwork(32, 11)
	sys, err := hnp.NewSystem(g, 8, 11)
	if err != nil {
		log.Fatal(err)
	}
	a := sys.AddStream("SENSORS-A", 50, 3)
	b := sys.AddStream("SENSORS-B", 40, 21)
	c := sys.AddStream("ALERTS", 10, 28)
	sys.SetSelectivity(a, b, 0.006)
	sys.SetSelectivity(a, c, 0.015)
	sys.SetSelectivity(b, c, 0.020)

	dep, err := sys.Deploy([]hnp.StreamID{a, b, c}, 8, hnp.AlgoTopDown)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial plan (cost %.1f): %s\n", dep.Cost, dep.Plan)

	// Bring the plan up in the runtime.
	rt := iflow.New(g, iflow.DefaultConfig(), 11)
	const horizon = 120.0
	if err := rt.Deploy(dep.Query, dep.Plan, sys.Catalog, horizon); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment protocol took %.3fs (simulated)\n\n", rt.DeployTime(dep.Trace, 8))

	// Middleware: every 10s, replan against current conditions and
	// migrate when a 10% cheaper plan exists.
	plans := map[int]*query.PlanNode{dep.Query.ID: dep.Plan}
	replan := func(q *query.Query) (*query.PlanNode, error) {
		sys.Refresh()
		res, err := core.TopDown(sys.Hierarchy, sys.Catalog, q, nil)
		if err != nil {
			return nil, err
		}
		return res.Plan, nil
	}
	stats := rt.Adapt([]*query.Query{dep.Query}, plans, sys.Catalog, replan, 0.10, 10, horizon)

	// At t=40s, congestion: every link touching the current operators
	// becomes 50x more expensive.
	rt.Sim.Schedule(40, func() {
		fmt.Printf("t=%.0fs: congestion! links around deployed operators now 50x the price\n", rt.Sim.Now())
		for _, op := range plans[dep.Query.ID].Operators() {
			for _, nb := range g.Neighbors(op.Loc) {
				cost, _ := g.LinkCost(op.Loc, nb)
				if err := rt.UpdateLinkCost(op.Loc, nb, cost*50); err != nil {
					log.Fatal(err)
				}
			}
		}
	})

	rt.RunFor(horizon)

	fmt.Printf("\nmiddleware checks: %d, plan migrations: %d\n", stats.Checks, stats.Migrations)
	if stats.Migrations > 0 {
		m := stats.MigrationStats
		fmt.Printf("migration churn: kept %d ops running, created %d, retired %d (moved %d, rewired %d)\n",
			m.Kept, m.Created, m.Retired, m.Moved, m.Rewired)
		fmt.Printf("  teardown would have churned %d ops; carried %d buffered tuples (%.0f bytes) in place\n",
			m.TeardownOps, m.StateCarried, m.BytesSaved)
	}
	fmt.Printf("final plan: %s\n", plans[dep.Query.ID])
	sink := rt.Sink(dep.Query.ID)
	fmt.Printf("delivered %d result tuples; mean latency %.0fms; measured cost rate %.1f\n",
		sink.Tuples, 1000*sink.LatencySum/float64(max(int64(1), sink.Tuples)), rt.CostRate())
	if stats.Migrations > 0 {
		fmt.Println("the deployment adapted to the congestion without stopping the query")
	}
}
