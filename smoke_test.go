package hnp

import (
	"bytes"
	"math/rand"
	"testing"

	"hnp/internal/netgraph"
	"hnp/internal/obs"
)

// TestTopologyRoundTripSmoke exercises the tool pipeline end to end: a
// generated transit-stub topology is serialized to the edge-list format
// cmd/topogen prints, parsed back (as a downstream tool would), built
// into a System, and queried — and the telemetry snapshot of that
// deployment must be non-trivial.
func TestTopologyRoundTripSmoke(t *testing.T) {
	prev := obs.Enabled.Load()
	EnableTelemetry()
	defer obs.Enabled.Store(prev)

	cfg := netgraph.DefaultTransitStub(64)
	g0, err := netgraph.TransitStub(cfg, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := netgraph.WriteEdgeList(&buf, g0); err != nil {
		t.Fatal(err)
	}
	g, err := netgraph.ParseEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != g0.NumNodes() || g.NumLinks() != g0.NumLinks() {
		t.Fatalf("round trip changed topology: %d/%d nodes, %d/%d links",
			g.NumNodes(), g0.NumNodes(), g.NumLinks(), g0.NumLinks())
	}

	sys, err := NewSystem(g, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	a := sys.AddStream("A", 40, 4)
	b := sys.AddStream("B", 30, 20)
	c := sys.AddStream("C", 25, 50)
	sys.SetSelectivity(a, b, 0.01)
	sys.SetSelectivity(b, c, 0.02)
	dep, err := sys.Deploy([]StreamID{a, b, c}, 9, AlgoTopDown)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Cost <= 0 {
		t.Fatalf("deployment cost %g", dep.Cost)
	}

	snap := sys.Snapshot()
	if snap.Counter("core.topdown.clusters_planned") == 0 {
		t.Error("snapshot shows no planner activity")
	}
	if snap.Counter("ads.advertised") == 0 {
		t.Error("snapshot shows no advertisements from a deployed plan")
	}
	if snap.Counter("hierarchy.cover_misses") == 0 {
		t.Error("snapshot shows no cover-cache activity")
	}
	if snap.Gauge("load.total_rate") <= 0 {
		t.Error("snapshot shows no tracked load after deployment")
	}
	if snap.Histograms["core.topdown.plan.seconds"].Count == 0 {
		t.Error("snapshot shows no plan span")
	}
}
